#include "store/artifact_store.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <utility>

#include "common/serial.h"
#include "crypto/sha256.h"
#include "obs/metrics.h"
#include "storage/record_io.h"

namespace pds2::store {

namespace fs = std::filesystem;

using common::Bytes;
using common::Reader;
using common::Result;
using common::Status;
using common::Writer;

namespace {

// 8-byte file magics; trailing byte is the format version (see chain_store).
constexpr char kPackMagic[8] = {'P', 'D', 'S', '2', 'P', 'A', 'K', '\x01'};
constexpr char kManifestMagic[8] = {'P', 'D', 'S', '2', 'M', 'A', 'N', '\x01'};
constexpr char kRootsMagic[8] = {'P', 'D', 'S', '2', 'R', 'T', 'S', '\x01'};

// Domain-separates the manifest hash from raw-chunk hashes so a one-chunk
// artifact's address can never collide with its own chunk's address.
constexpr char kManifestDomain[] = "pds2.store.manifest.v1";

Status ReadFileBytes(const std::string& path, Bytes* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open file: " + path);
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return Status::Ok();
}

Status AppendRecord(const std::string& path, const char magic[8],
                    const Bytes& payload, bool fsync) {
  const bool fresh = !fs::exists(path);
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return Status::Internal("cannot open " + path);
  Status status = Status::Ok();
  if (fresh && std::fwrite(magic, 1, 8, f) != 8) {
    status = Status::Internal("cannot write magic to " + path);
  }
  if (status.ok()) {
    const Bytes record = storage::EncodeCrcRecord(payload);
    if (std::fwrite(record.data(), 1, record.size(), f) != record.size()) {
      status = Status::Internal("cannot append record to " + path);
    }
  }
  if (status.ok() && std::fflush(f) != 0) {
    status = Status::Internal("flush failed for " + path);
  }
  if (status.ok() && fsync) ::fsync(::fileno(f));
  std::fclose(f);
  return status;
}

/// Reads every intact record from `path`; stops (without error) at the
/// first torn or bit-rotted record, like chain-log replay.
Result<std::vector<Bytes>> ReadRecords(const std::string& path,
                                       const char magic[8]) {
  std::vector<Bytes> records;
  if (!fs::exists(path)) return records;
  Bytes buf;
  PDS2_RETURN_IF_ERROR(ReadFileBytes(path, &buf));
  if (buf.size() < 8 ||
      std::memcmp(buf.data(), magic, 8) != 0) {
    return Status::Corruption("bad magic in " + path);
  }
  Bytes body(buf.begin() + 8, buf.end());
  Reader r(body);
  while (true) {
    auto payload = storage::ReadCrcRecord(r);
    if (!payload.ok()) break;  // clean end, torn tail, or bit rot
    records.push_back(std::move(*payload));
  }
  return records;
}

Status WriteAllRecords(const std::string& path, const char magic[8],
                       const std::vector<Bytes>& payloads) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::Internal("cannot open " + tmp);
    out.write(magic, 8);
    for (const Bytes& payload : payloads) {
      const Bytes record = storage::EncodeCrcRecord(payload);
      out.write(reinterpret_cast<const char*>(record.data()),
                static_cast<std::streamsize>(record.size()));
    }
    if (!out) return Status::Internal("write failed for " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) return Status::Internal("rename failed: " + ec.message());
  return Status::Ok();
}

}  // namespace

ArtifactStore::ArtifactStore(ArtifactStoreOptions options)
    : options_(std::move(options)) {}

ArtifactStore::~ArtifactStore() = default;

Result<std::unique_ptr<ArtifactStore>> ArtifactStore::Open(
    ArtifactStoreOptions options) {
  if (options.chunk_size == 0) {
    return Status::InvalidArgument("chunk_size must be > 0");
  }
  std::unique_ptr<ArtifactStore> s(new ArtifactStore(std::move(options)));
  if (!s->options_.dir.empty()) {
    std::error_code ec;
    fs::create_directories(s->options_.dir, ec);
    if (ec) {
      return Status::Internal("cannot create store directory " +
                              s->options_.dir + ": " + ec.message());
    }
    PDS2_RETURN_IF_ERROR(s->ReplayDisk());
  }
  return s;
}

Bytes ArtifactStore::EncodeManifest(const Manifest& m) const {
  Writer w;
  w.PutU64(m.blob_size);
  w.PutU32(static_cast<uint32_t>(m.chunk_hashes.size()));
  for (const Bytes& h : m.chunk_hashes) w.PutBytes(h);
  return w.Take();
}

Result<ArtifactStore::Manifest> ArtifactStore::DecodeManifest(
    const Bytes& raw) {
  Reader r(raw);
  Manifest m;
  PDS2_ASSIGN_OR_RETURN(m.blob_size, r.GetU64());
  PDS2_ASSIGN_OR_RETURN(uint32_t n, r.GetU32());
  m.chunk_hashes.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    PDS2_ASSIGN_OR_RETURN(Bytes h, r.GetBytes());
    m.chunk_hashes.push_back(std::move(h));
  }
  if (!r.AtEnd()) return Status::Corruption("trailing bytes in manifest");
  m.logical_size = m.blob_size;
  return m;
}

Result<Bytes> ArtifactStore::Put(const Bytes& blob) {
  Manifest m;
  m.blob_size = blob.size();
  m.logical_size = blob.size();
  std::vector<std::pair<Bytes, const uint8_t*>> new_chunks;
  for (size_t off = 0; off < blob.size(); off += options_.chunk_size) {
    const size_t len = std::min(options_.chunk_size, blob.size() - off);
    Bytes chunk(blob.begin() + static_cast<ptrdiff_t>(off),
                blob.begin() + static_cast<ptrdiff_t>(off + len));
    Bytes hash = crypto::Sha256::Hash(chunk);
    if (chunks_.find(hash) == chunks_.end()) {
      stored_bytes_ += chunk.size();
      PDS2_M_COUNT("store.chunks_stored", 1);
      if (!options_.dir.empty()) {
        PDS2_RETURN_IF_ERROR(AppendChunkRecord(hash, chunk));
      }
      chunks_.emplace(hash, std::move(chunk));
    } else {
      PDS2_M_COUNT("store.chunks_deduped", 1);
    }
    m.chunk_hashes.push_back(std::move(hash));
  }
  const Bytes manifest_bytes = EncodeManifest(m);
  crypto::Sha256 hasher;
  hasher.Update(std::string_view(kManifestDomain));
  hasher.Update(manifest_bytes);
  Bytes address = hasher.Finish();
  if (manifests_.find(address) == manifests_.end()) {
    logical_bytes_ += m.logical_size;
    if (!options_.dir.empty()) {
      PDS2_RETURN_IF_ERROR(AppendManifestRecord(address, manifest_bytes));
    }
    manifests_.emplace(address, std::move(m));
  }
  PDS2_M_COUNT("store.puts", 1);
  return address;
}

Result<Bytes> ArtifactStore::Get(const Bytes& address) const {
  auto it = manifests_.find(address);
  if (it == manifests_.end()) return Status::NotFound("unknown artifact");
  const Manifest& m = it->second;
  Bytes blob;
  blob.reserve(m.blob_size);
  for (const Bytes& hash : m.chunk_hashes) {
    auto cit = chunks_.find(hash);
    if (cit == chunks_.end()) {
      return Status::NotFound("artifact chunk missing (lost to corruption?)");
    }
    // Verified read: the store never trusts its own memory/disk state.
    if (crypto::Sha256::Hash(cit->second) != hash) {
      PDS2_M_COUNT("store.corrupt_chunks_rejected", 1);
      return Status::Corruption("chunk content does not match its address");
    }
    common::Append(blob, cit->second);
  }
  if (blob.size() != m.blob_size) {
    return Status::Corruption("reassembled size mismatch");
  }
  PDS2_M_COUNT("store.gets", 1);
  return blob;
}

bool ArtifactStore::Contains(const Bytes& address) const {
  return manifests_.find(address) != manifests_.end();
}

Status ArtifactStore::AddRoot(const Bytes& address) {
  if (manifests_.find(address) == manifests_.end()) {
    return Status::NotFound("cannot root unknown artifact");
  }
  roots_[address] += 1;
  if (!options_.dir.empty()) {
    PDS2_RETURN_IF_ERROR(AppendRootRecord(address, 1));
  }
  return Status::Ok();
}

Status ArtifactStore::RemoveRoot(const Bytes& address) {
  auto it = roots_.find(address);
  if (it == roots_.end()) return Status::NotFound("not a GC root");
  if (--it->second == 0) roots_.erase(it);
  if (!options_.dir.empty()) {
    PDS2_RETURN_IF_ERROR(AppendRootRecord(address, -1));
  }
  return Status::Ok();
}

Result<GcStats> ArtifactStore::CollectGarbage() {
  GcStats stats;
  // Mark: every manifest reachable from a root, and every chunk those
  // manifests reference.
  std::set<Bytes> live_chunks;
  for (auto it = manifests_.begin(); it != manifests_.end();) {
    if (roots_.find(it->first) == roots_.end()) {
      logical_bytes_ -= it->second.logical_size;
      stats.manifests_removed++;
      it = manifests_.erase(it);
    } else {
      for (const Bytes& h : it->second.chunk_hashes) live_chunks.insert(h);
      ++it;
    }
  }
  // Sweep unreferenced chunks.
  for (auto it = chunks_.begin(); it != chunks_.end();) {
    if (live_chunks.find(it->first) == live_chunks.end()) {
      stats.chunks_removed++;
      stats.bytes_reclaimed += it->second.size();
      stored_bytes_ -= it->second.size();
      it = chunks_.erase(it);
    } else {
      ++it;
    }
  }
  if (!options_.dir.empty() &&
      (stats.manifests_removed > 0 || stats.chunks_removed > 0)) {
    PDS2_RETURN_IF_ERROR(RewriteDisk());
  }
  PDS2_M_COUNT("store.gc_runs", 1);
  PDS2_M_COUNT("store.gc_chunks_removed", stats.chunks_removed);
  return stats;
}

Status ArtifactStore::ReplayDisk() {
  // Chunks: payload = [hash][data]; the content hash is re-verified so a
  // record whose CRC survived but whose payload lies is still rejected.
  PDS2_ASSIGN_OR_RETURN(
      std::vector<Bytes> chunk_records,
      ReadRecords(options_.dir + "/chunks.pack", kPackMagic));
  for (const Bytes& rec : chunk_records) {
    Reader r(rec);
    PDS2_ASSIGN_OR_RETURN(Bytes hash, r.GetBytes());
    PDS2_ASSIGN_OR_RETURN(Bytes data, r.GetBytes());
    if (!r.AtEnd() || crypto::Sha256::Hash(data) != hash) {
      return Status::Corruption("chunk record fails content verification");
    }
    if (chunks_.find(hash) == chunks_.end()) {
      stored_bytes_ += data.size();
      chunks_.emplace(std::move(hash), std::move(data));
    }
  }
  PDS2_ASSIGN_OR_RETURN(
      std::vector<Bytes> manifest_records,
      ReadRecords(options_.dir + "/manifests.log", kManifestMagic));
  for (const Bytes& rec : manifest_records) {
    Reader r(rec);
    PDS2_ASSIGN_OR_RETURN(Bytes address, r.GetBytes());
    PDS2_ASSIGN_OR_RETURN(Bytes manifest_bytes, r.GetBytes());
    if (!r.AtEnd()) return Status::Corruption("trailing manifest bytes");
    PDS2_ASSIGN_OR_RETURN(Manifest m, DecodeManifest(manifest_bytes));
    if (manifests_.find(address) == manifests_.end()) {
      logical_bytes_ += m.logical_size;
      manifests_.emplace(std::move(address), std::move(m));
    }
  }
  PDS2_ASSIGN_OR_RETURN(std::vector<Bytes> root_records,
                        ReadRecords(options_.dir + "/roots.log", kRootsMagic));
  for (const Bytes& rec : root_records) {
    Reader r(rec);
    PDS2_ASSIGN_OR_RETURN(Bytes address, r.GetBytes());
    PDS2_ASSIGN_OR_RETURN(int64_t delta, r.GetI64());
    if (!r.AtEnd()) return Status::Corruption("trailing root bytes");
    if (delta > 0) {
      roots_[address] += static_cast<uint64_t>(delta);
    } else {
      auto it = roots_.find(address);
      if (it != roots_.end() && it->second >= static_cast<uint64_t>(-delta)) {
        it->second -= static_cast<uint64_t>(-delta);
        if (it->second == 0) roots_.erase(it);
      }
    }
  }
  return Status::Ok();
}

Status ArtifactStore::AppendChunkRecord(const Bytes& hash, const Bytes& data) {
  Writer w;
  w.PutBytes(hash);
  w.PutBytes(data);
  return AppendRecord(options_.dir + "/chunks.pack", kPackMagic, w.Take(),
                     options_.fsync);
}

Status ArtifactStore::AppendManifestRecord(const Bytes& address,
                                           const Bytes& manifest) {
  Writer w;
  w.PutBytes(address);
  w.PutBytes(manifest);
  return AppendRecord(options_.dir + "/manifests.log", kManifestMagic,
                      w.Take(), options_.fsync);
}

Status ArtifactStore::AppendRootRecord(const Bytes& address, int64_t delta) {
  Writer w;
  w.PutBytes(address);
  w.PutI64(delta);
  return AppendRecord(options_.dir + "/roots.log", kRootsMagic, w.Take(),
                      options_.fsync);
}

Status ArtifactStore::RewriteDisk() {
  std::vector<Bytes> chunk_payloads;
  for (const auto& [hash, data] : chunks_) {
    Writer w;
    w.PutBytes(hash);
    w.PutBytes(data);
    chunk_payloads.push_back(w.Take());
  }
  std::vector<Bytes> manifest_payloads;
  for (const auto& [address, m] : manifests_) {
    Writer w;
    w.PutBytes(address);
    w.PutBytes(EncodeManifest(m));
    manifest_payloads.push_back(w.Take());
  }
  std::vector<Bytes> root_payloads;
  for (const auto& [address, count] : roots_) {
    Writer w;
    w.PutBytes(address);
    w.PutI64(static_cast<int64_t>(count));
    root_payloads.push_back(w.Take());
  }
  PDS2_RETURN_IF_ERROR(WriteAllRecords(options_.dir + "/chunks.pack",
                                       kPackMagic, chunk_payloads));
  PDS2_RETURN_IF_ERROR(WriteAllRecords(options_.dir + "/manifests.log",
                                       kManifestMagic, manifest_payloads));
  return WriteAllRecords(options_.dir + "/roots.log", kRootsMagic,
                         root_payloads);
}

}  // namespace pds2::store
