#ifndef PDS2_STORE_DISCOVERY_H_
#define PDS2_STORE_DISCOVERY_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/serial.h"
#include "dml/netsim.h"

namespace pds2::store {

/// Gossip discovery for the content-addressed store: providers advertise
/// what they hold — (content hash, schema tags, size, price) — and the
/// records anti-entropy their way across the network, so a consumer can
/// resolve "who has an artifact matching these tags / this memo key"
/// without a central index (the paper's open "data discovery" challenge).

/// One advertisement. The (content_hash, provider) pair is the identity;
/// `version` orders revisions from the same provider (last-writer-wins).
struct Advert {
  common::Bytes content_hash;
  std::string provider;
  std::vector<std::string> tags;  // schema tags, "memo:<hex>" keys, ...
  uint64_t size_bytes = 0;
  uint64_t price = 0;
  uint64_t version = 1;

  common::Bytes Serialize() const;
  static common::Result<Advert> Deserialize(common::Reader& r);
};

/// CRDT-style advert set: merge is commutative, associative and idempotent
/// (LWW per (content_hash, provider); version ties broken by serialized
/// bytes), so any gossip delivery order converges every replica to the
/// same state — asserted bit-exactly via Digest() in the discovery tests.
class DiscoveryIndex {
 public:
  /// True if the advert changed the index (new entry or newer version).
  bool Upsert(const Advert& advert);

  std::vector<Advert> FindByTag(const std::string& tag) const;
  std::vector<Advert> FindByHash(const common::Bytes& content_hash) const;

  size_t size() const { return entries_.size(); }

  /// Canonical digest over the sorted entry set. Two replicas with the
  /// same adverts produce the same digest, whatever order they learned
  /// them in.
  common::Bytes Digest() const;

  /// Whole-index wire form for anti-entropy pushes.
  common::Bytes SerializeAll() const;

  struct MergeResult {
    size_t applied = 0;     // adverts that changed our state
    bool sender_stale = false;  // we hold entries newer than the sender's
  };
  /// Merges a peer's serialized index. Corruption (e.g. a fault-injected
  /// bit flip in flight) rejects the whole message and changes nothing.
  common::Result<MergeResult> Merge(const common::Bytes& serialized);

 private:
  /// Identity key: (content_hash, provider).
  using Key = std::pair<common::Bytes, std::string>;
  std::map<Key, Advert> entries_;
};

/// Gossip parameters for DiscoveryNode.
struct DiscoveryConfig {
  common::SimTime push_interval = common::kMicrosPerSecond;
  size_t fanout = 2;  // peers contacted per push round
};

/// NetSim endpoint running the anti-entropy protocol: a timer-driven push
/// of the full index to `fanout` random peers, plus a one-shot reply when
/// an incoming push reveals the sender is stale (push-pull, bounded to one
/// round trip so gossip storms can't start). Crash/rejoin is survived the
/// same way GossipNode does: the index state persists, OnRestart re-arms
/// the dead timer chain.
class DiscoveryNode : public dml::Node {
 public:
  explicit DiscoveryNode(DiscoveryConfig config) : config_(config) {}

  /// Seeds a local advert (provider = this node). Takes effect on the
  /// next push; call before or during the simulation.
  void Announce(Advert advert) { index_.Upsert(advert); }

  void OnStart(dml::NodeContext& ctx) override;
  void OnRestart(dml::NodeContext& ctx) override { OnStart(ctx); }
  void OnMessage(dml::NodeContext& ctx, size_t from,
                 const common::Bytes& payload) override;
  void OnTimer(dml::NodeContext& ctx, uint64_t timer_id) override;

  const DiscoveryIndex& index() const { return index_; }
  DiscoveryIndex& index() { return index_; }

 private:
  void Push(dml::NodeContext& ctx, size_t to, bool is_reply);

  DiscoveryConfig config_;
  DiscoveryIndex index_;
};

}  // namespace pds2::store

#endif  // PDS2_STORE_DISCOVERY_H_
