#ifndef PDS2_STORE_ARTIFACT_STORE_H_
#define PDS2_STORE_ARTIFACT_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace pds2::store {

/// Content-addressed artifact store — the "Nix binary cache for models"
/// (ROADMAP item 4). An artifact (dataset blob, trained model parameters)
/// is split into fixed-size chunks addressed by SHA-256 of their content;
/// a manifest lists the chunk hashes, and the artifact's address is the
/// hash of the manifest. Identical chunks are stored once, so overlapping
/// datasets and incremental model revisions deduplicate naturally.
///
/// Lifecycle safety:
///  - Reads are verified: every chunk is re-hashed against the manifest
///    before reassembly, so silent corruption cannot escape the store.
///  - GC roots pin artifacts; `CollectGarbage` mark-and-sweeps manifests
///    and chunks reachable from no root.
///  - The optional on-disk layout reuses the storage layer's CRC-framed
///    record format (storage/record_io.h): `chunks.pack`, `manifests.log`
///    and `roots.log` are append-only record streams with 8-byte magics;
///    a torn or bit-rotted tail record is detected by its CRC and the
///    affected artifact fails closed on read instead of returning garbage.
struct ArtifactStoreOptions {
  /// Chunking granularity. Smaller chunks dedup better, cost more hashes.
  size_t chunk_size = 4096;
  /// Directory for the durable layout; empty = in-memory only.
  std::string dir;
  /// fsync after appends (disk mode). Off by default: tests and benches
  /// exercise the format, not the disk.
  bool fsync = false;
};

/// What `CollectGarbage` reclaimed.
struct GcStats {
  uint64_t manifests_removed = 0;
  uint64_t chunks_removed = 0;
  uint64_t bytes_reclaimed = 0;
};

class ArtifactStore {
 public:
  /// Opens the store, replaying any durable state in `options.dir`. A
  /// corrupt tail record (torn write) is truncated away, matching the
  /// chain log's recovery policy; artifacts whose chunks were lost that
  /// way fail closed on Get.
  static common::Result<std::unique_ptr<ArtifactStore>> Open(
      ArtifactStoreOptions options = {});

  ~ArtifactStore();

  /// Stores a blob; returns its content address (hash of the manifest).
  /// Idempotent: re-putting the same bytes returns the same address and
  /// stores nothing new.
  common::Result<common::Bytes> Put(const common::Bytes& blob);

  /// Verified read: re-hashes every chunk against the manifest. Corruption
  /// if a chunk's content no longer matches its address, NotFound for an
  /// unknown address or a chunk lost to a torn write.
  common::Result<common::Bytes> Get(const common::Bytes& address) const;

  bool Contains(const common::Bytes& address) const;

  /// GC roots are refcounted: AddRoot twice requires RemoveRoot twice.
  common::Status AddRoot(const common::Bytes& address);
  common::Status RemoveRoot(const common::Bytes& address);

  /// Mark-and-sweep: drops every manifest not reachable from a root, then
  /// every chunk referenced by no surviving manifest. In disk mode the
  /// pack and manifest log are compacted through a tmp-file + rename, the
  /// same crash-safe pattern as the chain snapshot.
  common::Result<GcStats> CollectGarbage();

  /// Dedup accounting. Logical = sum of blob sizes accepted by Put;
  /// stored = bytes of unique live chunks. Ratio >= 1.0, and > 1.0 as
  /// soon as two artifacts share a chunk.
  uint64_t LogicalBytes() const { return logical_bytes_; }
  uint64_t StoredBytes() const { return stored_bytes_; }
  double DedupRatio() const {
    return stored_bytes_ == 0
               ? 1.0
               : static_cast<double>(logical_bytes_) /
                     static_cast<double>(stored_bytes_);
  }
  size_t NumArtifacts() const { return manifests_.size(); }
  size_t NumChunks() const { return chunks_.size(); }

 private:
  explicit ArtifactStore(ArtifactStoreOptions options);

  struct Manifest {
    uint64_t blob_size = 0;
    std::vector<common::Bytes> chunk_hashes;
    /// Logical bytes this artifact contributed (for GC accounting).
    uint64_t logical_size = 0;
  };

  common::Bytes EncodeManifest(const Manifest& m) const;
  static common::Result<Manifest> DecodeManifest(const common::Bytes& raw);

  common::Status ReplayDisk();
  common::Status AppendChunkRecord(const common::Bytes& hash,
                                   const common::Bytes& data);
  common::Status AppendManifestRecord(const common::Bytes& address,
                                      const common::Bytes& manifest);
  common::Status AppendRootRecord(const common::Bytes& address, int64_t delta);
  common::Status RewriteDisk();

  ArtifactStoreOptions options_;
  std::map<common::Bytes, common::Bytes> chunks_;    // chunk hash -> data
  std::map<common::Bytes, Manifest> manifests_;      // address -> manifest
  std::map<common::Bytes, uint64_t> roots_;          // address -> refcount
  uint64_t logical_bytes_ = 0;
  uint64_t stored_bytes_ = 0;
};

}  // namespace pds2::store

#endif  // PDS2_STORE_ARTIFACT_STORE_H_
