#include "store/memo.h"

#include <algorithm>
#include <utility>

#include "common/serial.h"
#include "crypto/sha256.h"

namespace pds2::store {

using common::Bytes;

namespace {
constexpr char kMemoDomain[] = "pds2.memo.v1";
}  // namespace

Bytes ComputeMemoKey(const Bytes& code_measurement,
                     std::vector<Bytes> input_hashes,
                     const Bytes& hyperparams_fingerprint) {
  std::sort(input_hashes.begin(), input_hashes.end());
  // Length-prefixed fields, so no concatenation of two keys' material can
  // collide across field boundaries.
  common::Writer w;
  w.PutString(kMemoDomain);
  w.PutBytes(code_measurement);
  w.PutU32(static_cast<uint32_t>(input_hashes.size()));
  for (const Bytes& h : input_hashes) w.PutBytes(h);
  w.PutBytes(hyperparams_fingerprint);
  return crypto::Sha256::Hash(w.Take());
}

bool MemoIndex::Insert(MemoEntry entry) {
  return entries_.emplace(entry.memo_key, std::move(entry)).second;
}

const MemoEntry* MemoIndex::Lookup(const Bytes& memo_key) const {
  auto it = entries_.find(memo_key);
  return it == entries_.end() ? nullptr : &it->second;
}

}  // namespace pds2::store
