#include "store/discovery.h"

#include <utility>

#include "common/crc32.h"
#include "crypto/sha256.h"
#include "obs/metrics.h"

namespace pds2::store {

using common::Bytes;
using common::Reader;
using common::Result;
using common::Status;
using common::Writer;

namespace {

// Message kinds for the anti-entropy protocol.
constexpr uint8_t kMsgPush = 0;   // periodic push; stale senders get a reply
constexpr uint8_t kMsgReply = 1;  // one-shot catch-up; never answered

constexpr uint64_t kPushTimer = 1;

}  // namespace

Bytes Advert::Serialize() const {
  Writer w;
  w.PutBytes(content_hash);
  w.PutString(provider);
  w.PutU32(static_cast<uint32_t>(tags.size()));
  for (const std::string& t : tags) w.PutString(t);
  w.PutU64(size_bytes);
  w.PutU64(price);
  w.PutU64(version);
  return w.Take();
}

Result<Advert> Advert::Deserialize(Reader& r) {
  Advert a;
  PDS2_ASSIGN_OR_RETURN(a.content_hash, r.GetBytes());
  PDS2_ASSIGN_OR_RETURN(a.provider, r.GetString());
  PDS2_ASSIGN_OR_RETURN(uint32_t n, r.GetU32());
  a.tags.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    PDS2_ASSIGN_OR_RETURN(std::string t, r.GetString());
    a.tags.push_back(std::move(t));
  }
  PDS2_ASSIGN_OR_RETURN(a.size_bytes, r.GetU64());
  PDS2_ASSIGN_OR_RETURN(a.price, r.GetU64());
  PDS2_ASSIGN_OR_RETURN(a.version, r.GetU64());
  return a;
}

bool DiscoveryIndex::Upsert(const Advert& advert) {
  const Key key{advert.content_hash, advert.provider};
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    entries_.emplace(key, advert);
    PDS2_M_COUNT("store.discovery.adverts_added", 1);
    return true;
  }
  if (advert.version < it->second.version) return false;
  if (advert.version == it->second.version) {
    // Deterministic tie-break so concurrent same-version revisions still
    // converge: the lexicographically larger serialization wins.
    if (advert.Serialize() <= it->second.Serialize()) return false;
  }
  it->second = advert;
  PDS2_M_COUNT("store.discovery.adverts_updated", 1);
  return true;
}

std::vector<Advert> DiscoveryIndex::FindByTag(const std::string& tag) const {
  std::vector<Advert> out;
  for (const auto& [key, advert] : entries_) {
    for (const std::string& t : advert.tags) {
      if (t == tag) {
        out.push_back(advert);
        break;
      }
    }
  }
  return out;
}

std::vector<Advert> DiscoveryIndex::FindByHash(
    const Bytes& content_hash) const {
  std::vector<Advert> out;
  auto it = entries_.lower_bound(Key{content_hash, ""});
  for (; it != entries_.end() && it->first.first == content_hash; ++it) {
    out.push_back(it->second);
  }
  return out;
}

Bytes DiscoveryIndex::Digest() const {
  // entries_ is an ordered map, so iteration is already canonical.
  crypto::Sha256 hasher;
  hasher.Update(std::string_view("pds2.discovery.digest.v1"));
  for (const auto& [key, advert] : entries_) {
    const Bytes serialized = advert.Serialize();
    hasher.Update(serialized);
  }
  return hasher.Finish();
}

Bytes DiscoveryIndex::SerializeAll() const {
  Writer body;
  body.PutU32(static_cast<uint32_t>(entries_.size()));
  for (const auto& [key, advert] : entries_) {
    body.PutBytes(advert.Serialize());
  }
  const Bytes payload = body.Take();
  // CRC-framed like the storage layer's records: gossip travels links the
  // fault injector flips bits on, and a flipped byte that still parses
  // (e.g. inside a price or a tag) would otherwise pollute every replica
  // it anti-entropies to.
  Writer w;
  w.PutU32(common::Crc32c(payload));
  w.PutRaw(payload);
  return w.Take();
}

Result<DiscoveryIndex::MergeResult> DiscoveryIndex::Merge(
    const Bytes& serialized) {
  // Parse fully before applying: a fault-injected bit flip mid-message
  // must not leave half a merge behind.
  Reader framed(serialized);
  PDS2_ASSIGN_OR_RETURN(uint32_t crc, framed.GetU32());
  PDS2_ASSIGN_OR_RETURN(Bytes payload, framed.GetRaw(framed.remaining()));
  if (common::Crc32c(payload) != crc) {
    return Status::Corruption("discovery index checksum mismatch");
  }
  Reader r(payload);
  PDS2_ASSIGN_OR_RETURN(uint32_t n, r.GetU32());
  std::vector<Advert> incoming;
  incoming.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    PDS2_ASSIGN_OR_RETURN(Bytes advert_bytes, r.GetBytes());
    Reader ar(advert_bytes);
    PDS2_ASSIGN_OR_RETURN(Advert a, Advert::Deserialize(ar));
    if (!ar.AtEnd()) return Status::Corruption("trailing advert bytes");
    incoming.push_back(std::move(a));
  }
  if (!r.AtEnd()) return Status::Corruption("trailing index bytes");

  MergeResult result;
  std::map<Key, uint64_t> sender_versions;
  for (const Advert& a : incoming) {
    sender_versions[Key{a.content_hash, a.provider}] = a.version;
    if (Upsert(a)) result.applied++;
  }
  // The sender is stale if we hold any entry they lack or have older.
  for (const auto& [key, advert] : entries_) {
    auto it = sender_versions.find(key);
    if (it == sender_versions.end() || it->second < advert.version) {
      result.sender_stale = true;
      break;
    }
  }
  return result;
}

void DiscoveryNode::OnStart(dml::NodeContext& ctx) {
  // Desynchronize the first push (deterministically, from the node's seed
  // stream) so all nodes don't flood the same instant.
  const common::SimTime jitter = static_cast<common::SimTime>(
      ctx.rng().NextU64(static_cast<uint64_t>(config_.push_interval)));
  ctx.SetTimer(config_.push_interval + jitter, kPushTimer);
}

void DiscoveryNode::Push(dml::NodeContext& ctx, size_t to, bool is_reply) {
  Writer w;
  w.PutU8(is_reply ? kMsgReply : kMsgPush);
  w.PutRaw(index_.SerializeAll());
  ctx.Send(to, w.Take());
  PDS2_M_COUNT("store.discovery.pushes", 1);
}

void DiscoveryNode::OnTimer(dml::NodeContext& ctx, uint64_t timer_id) {
  if (timer_id != kPushTimer) return;
  const size_t n = ctx.NumNodes();
  if (n > 1 && index_.size() > 0) {
    for (size_t i = 0; i < config_.fanout; ++i) {
      size_t peer = ctx.rng().NextU64(n - 1);
      if (peer >= ctx.self()) peer++;  // uniform over everyone but self
      Push(ctx, peer, /*is_reply=*/false);
    }
  }
  ctx.SetTimer(config_.push_interval, kPushTimer);
}

void DiscoveryNode::OnMessage(dml::NodeContext& ctx, size_t from,
                              const common::Bytes& payload) {
  Reader r(payload);
  auto kind = r.GetU8();
  if (!kind.ok()) return;
  auto body = r.GetRaw(r.remaining());
  if (!body.ok()) return;
  auto merged = index_.Merge(*body);
  if (!merged.ok()) {
    // Corrupted in flight (see NetSim fault injection) — drop it.
    PDS2_M_COUNT("store.discovery.corrupt_messages_dropped", 1);
    return;
  }
  PDS2_M_COUNT("store.discovery.merges", 1);
  // Push-pull: answer a stale pusher exactly once, never answer a reply.
  if (*kind == kMsgPush && merged->sender_stale) {
    Push(ctx, from, /*is_reply=*/true);
  }
}

}  // namespace pds2::store
