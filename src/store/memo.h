#ifndef PDS2_STORE_MEMO_H_
#define PDS2_STORE_MEMO_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace pds2::store {

/// Memoized computation ("substitution", in Nix terms): a workload is a
/// pure function of (enclave code measurement, input dataset hashes,
/// hyperparameter fingerprint). If the network has already evaluated that
/// function, a consumer can fetch the attested artifact instead of paying
/// for a recompute. The memo key is the function's content address.

/// Deterministic key: H(domain || measurement || sorted input hashes ||
/// hyperparams fingerprint). Input hashes are sorted so provider order —
/// an accident of matching — never splits the cache.
common::Bytes ComputeMemoKey(const common::Bytes& code_measurement,
                             std::vector<common::Bytes> input_hashes,
                             const common::Bytes& hyperparams_fingerprint);

/// Who gets paid when a memoized result is reused, mirroring the original
/// finalize split: executors computed it, providers supplied the data.
struct MemoBeneficiary {
  enum class Role : uint8_t { kExecutor = 0, kProvider = 1 };
  std::string account;
  Role role = Role::kExecutor;
  /// Relative weight within the role's share (providers: records used).
  uint64_t weight = 1;
};

/// One cache entry: where the artifact lives and how reuse is settled.
struct MemoEntry {
  common::Bytes memo_key;
  common::Bytes artifact_address;  // content address in the ArtifactStore
  common::Bytes result_hash;       // the chain-agreed result hash
  uint64_t source_instance = 0;    // workload that produced it (chain anchor)
  std::vector<MemoBeneficiary> beneficiaries;
};

/// Local view of the network's memo cache. Insert-once semantics: the
/// first producer of a key wins, later identical computations are the
/// cache hits this index exists to prevent.
class MemoIndex {
 public:
  /// Returns false (and changes nothing) if the key is already present.
  bool Insert(MemoEntry entry);

  /// nullptr on miss.
  const MemoEntry* Lookup(const common::Bytes& memo_key) const;

  size_t size() const { return entries_.size(); }

 private:
  std::map<common::Bytes, MemoEntry> entries_;
};

}  // namespace pds2::store

#endif  // PDS2_STORE_MEMO_H_
