#ifndef PDS2_OBS_TRACE_H_
#define PDS2_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/sim_clock.h"
#include "obs/metrics.h"  // PDS2_METRICS compile-out switch

namespace pds2::obs {

/// Runtime switch for span recording, independent of the metrics flag so a
/// bench can measure counters without paying for traces (and vice versa).
inline std::atomic<bool> g_tracing_enabled{false};

inline bool TracingEnabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}
inline void SetTracingEnabled(bool enabled) {
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

/// Nanoseconds since an arbitrary process-wide steady-clock epoch.
uint64_t WallNowNs();

/// One recorded span. Spans carry wall-clock times always and simulated
/// times when the span was opened against a SimClock / SimTime source —
/// the DES advances sim time in jumps, so sim_start == sim_end for spans
/// that complete within one event, while lifecycle-stage spans show the
/// simulated latency the experiments care about.
struct SpanRecord {
  uint64_t id = 0;      // 1-based; 0 means "no parent"
  uint64_t parent = 0;  // enclosing span on the same thread, 0 for roots
  std::string name;
  uint32_t thread = 0;  // small per-thread index (see ThisThreadIndex)
  uint64_t wall_start_ns = 0;
  uint64_t wall_end_ns = 0;  // 0 while the span is still open
  bool has_sim = false;
  common::SimTime sim_start = 0;
  common::SimTime sim_end = 0;
};

/// Collects hierarchical spans. Parent linkage is tracked per thread (a
/// span opened on a ThreadPool worker does not parent under a span opened
/// on the main thread). Begin/End take one mutex each — spans mark
/// millisecond-scale stages, not nanosecond-scale inner loops.
class Tracer {
 public:
  /// The process-wide tracer every PDS2_TRACE_* macro records into.
  static Tracer& Global();

  /// Opens a span and returns its id. Call only while TracingEnabled().
  uint64_t Begin(const char* name, bool has_sim, common::SimTime sim_start);

  /// Closes span `id` opened in generation `epoch` (no-op if a Reset
  /// happened in between).
  void End(uint64_t id, uint64_t epoch, bool has_sim,
           common::SimTime sim_end);

  /// Generation stamp, bumped by Reset; guards ids across resets.
  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }

  /// Copy of all recorded spans (open spans have wall_end_ns == 0).
  std::vector<SpanRecord> Snapshot() const;

  size_t SpanCount() const;

  /// One JSON object per line per completed span — the per-run trace
  /// export. Open spans are skipped.
  void WriteJsonLines(std::ostream& out) const;

  /// Drops every record and starts a new generation. Do not call while
  /// spans are open (their End becomes a no-op and parentage of spans
  /// opened before the reset is meaningless).
  void Reset();

 private:
  mutable std::mutex mu_;
  std::vector<SpanRecord> records_;
  std::atomic<uint64_t> epoch_{1};
};

/// RAII span handle. Construction is a single relaxed load + branch while
/// tracing is disabled. `End()` may be called early to close the span
/// before scope exit (used for sequential sibling stages inside one
/// function); the destructor then does nothing.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) { Start(name, false, 0); }

  /// Span whose sim times are read from `clock` at start and end.
  ScopedSpan(const char* name, const common::SimClock* clock)
      : clock_(clock) {
    Start(name, clock != nullptr, clock != nullptr ? clock->Now() : 0);
  }

  /// Span whose sim times are read from `*sim_now` at start and end (for
  /// owners that keep a bare SimTime instead of a SimClock).
  ScopedSpan(const char* name, const common::SimTime* sim_now)
      : sim_now_(sim_now) {
    Start(name, sim_now != nullptr, sim_now != nullptr ? *sim_now : 0);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() { End(); }

  void End();

  /// 0 when tracing was disabled at construction.
  uint64_t id() const { return id_; }

 private:
  void Start(const char* name, bool has_sim, common::SimTime sim_start);

  uint64_t id_ = 0;
  uint64_t epoch_ = 0;
  bool has_sim_ = false;
  const common::SimClock* clock_ = nullptr;
  const common::SimTime* sim_now_ = nullptr;
};

}  // namespace pds2::obs

#if PDS2_METRICS

#define PDS2_OBS_CONCAT_INNER(a, b) a##b
#define PDS2_OBS_CONCAT(a, b) PDS2_OBS_CONCAT_INNER(a, b)

/// Wall-clock-only span covering the rest of the enclosing scope.
#define PDS2_TRACE_SPAN(name) \
  ::pds2::obs::ScopedSpan PDS2_OBS_CONCAT(pds2_trace_span_, __COUNTER__)(name)

/// Span that also records sim time from `sim` (a const SimClock* or a
/// const SimTime*).
#define PDS2_TRACE_SPAN_SIM(name, sim)                                \
  ::pds2::obs::ScopedSpan PDS2_OBS_CONCAT(pds2_trace_span_,           \
                                          __COUNTER__)(name, sim)

#else  // !PDS2_METRICS

#define PDS2_TRACE_SPAN(name) \
  do {                        \
  } while (0)
#define PDS2_TRACE_SPAN_SIM(name, sim) \
  do {                                 \
  } while (0)

#endif  // PDS2_METRICS

#endif  // PDS2_OBS_TRACE_H_
