#ifndef PDS2_OBS_TRACE_H_
#define PDS2_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/sim_clock.h"
#include "obs/metrics.h"  // PDS2_METRICS compile-out switch

namespace pds2::obs {

/// Runtime switch for span recording, independent of the metrics flag so a
/// bench can measure counters without paying for traces (and vice versa).
inline std::atomic<bool> g_tracing_enabled{false};

inline bool TracingEnabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}
inline void SetTracingEnabled(bool enabled) {
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

/// Nanoseconds since an arbitrary process-wide steady-clock epoch.
uint64_t WallNowNs();

/// A portable reference to a span, carried across causal boundaries —
/// message envelopes (NetSim / p2p), timers, chain transactions — so a span
/// opened on the receiving side can parent under the sender's span even
/// though the two run on different simulated nodes (and possibly different
/// threads). The epoch pins the ids to one Tracer generation: a context
/// that survives a Tracer::Reset is silently treated as absent.
struct TraceContext {
  uint64_t trace_id = 0;  // 0 = no trace
  uint64_t span_id = 0;   // the causal parent span
  uint64_t epoch = 0;     // Tracer generation the ids belong to

  bool valid() const { return trace_id != 0 && span_id != 0; }
};

/// The innermost open span on the calling thread (or the remote context
/// installed by a TraceContextScope), as a propagatable TraceContext.
/// Invalid (all zero) when tracing is disabled or nothing is open.
TraceContext CurrentTraceContext();

/// One recorded span. Spans carry wall-clock times always and simulated
/// times when the span was opened against a SimClock / SimTime source —
/// the DES advances sim time in jumps, so sim_start == sim_end for spans
/// that complete within one event, while lifecycle-stage spans show the
/// simulated latency the experiments care about.
struct SpanRecord {
  uint64_t id = 0;      // 1-based; 0 means "no parent"
  uint64_t parent = 0;  // causal parent (same-thread enclosing span, or the
                        // remote sender installed via TraceContextScope)
  uint64_t trace_id = 0;  // connected-trace identity, inherited from parent
  std::string name;
  std::string node;     // logical node/role label (see NodeScope), may be ""
  uint32_t thread = 0;  // small per-thread index (see ThisThreadIndex)
  /// Extra causal parents beyond `parent` — e.g. a block-apply span links
  /// to the submit context of every transaction it executes. Span ids in
  /// the same tracer generation.
  std::vector<uint64_t> links;
  uint64_t wall_start_ns = 0;
  uint64_t wall_end_ns = 0;  // 0 while the span is still open
  bool has_sim = false;
  common::SimTime sim_start = 0;
  common::SimTime sim_end = 0;
};

/// Collects hierarchical spans. Parent linkage is tracked per thread (a
/// span opened on a ThreadPool worker does not parent under a span opened
/// on the main thread unless a TraceContextScope carries the context
/// across). Begin/End take one mutex each — spans mark millisecond-scale
/// stages, not nanosecond-scale inner loops.
class Tracer {
 public:
  /// Default bound on stored spans (see SetCapacity).
  static constexpr size_t kDefaultCapacity = 1'000'000;

  /// The process-wide tracer every PDS2_TRACE_* macro records into.
  static Tracer& Global();

  /// Opens a span and returns its id. Call only while TracingEnabled().
  /// Returns 0 when the tracer is at capacity (the drop is counted in
  /// the "obs.trace.dropped" counter); children of a dropped span attach
  /// to its parent instead.
  uint64_t Begin(const char* name, bool has_sim, common::SimTime sim_start);

  /// Closes span `id` opened in generation `epoch` (no-op if a Reset
  /// happened in between).
  void End(uint64_t id, uint64_t epoch, bool has_sim,
           common::SimTime sim_end);

  /// Appends `ctx.span_id` to the links of span `id` — an extra causal
  /// parent edge in the exported DAG. No-op when either side is from a
  /// stale generation or invalid.
  void AddLink(uint64_t id, uint64_t epoch, const TraceContext& ctx);

  /// Generation stamp, bumped by Reset; guards ids across resets.
  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }

  /// Caps stored SpanRecords; spans beyond the cap are dropped at Begin
  /// (counted in DroppedCount and the "obs.trace.dropped" counter) so the
  /// record vector — and span ids, which index it — stays dense. 0 means
  /// unbounded. Takes effect for subsequent Begins.
  void SetCapacity(size_t capacity);
  size_t capacity() const;

  /// Spans dropped at Begin since the last Reset.
  uint64_t DroppedCount() const;

  /// Copy of all recorded spans (open spans have wall_end_ns == 0).
  std::vector<SpanRecord> Snapshot() const;

  size_t SpanCount() const;

  /// One JSON object per line per completed span — the per-run trace
  /// export (schema: docs/PROTOCOL.md "Trace export schema"). Open spans
  /// are skipped.
  void WriteJsonLines(std::ostream& out) const;

  /// Drops every record and starts a new generation. Do not call while
  /// spans are open (their End becomes a no-op and parentage of spans
  /// opened before the reset is meaningless). Trace ids restart from 1 so
  /// two identical seeded runs export identical causal skeletons.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::vector<SpanRecord> records_;
  std::atomic<uint64_t> epoch_{1};
  std::atomic<uint64_t> next_trace_id_{1};
  std::atomic<uint64_t> dropped_{0};
  size_t capacity_ = kDefaultCapacity;  // guarded by mu_
  Counter* dropped_counter_ = nullptr;  // lazily bound registry counter
};

/// RAII span handle. Construction is a single relaxed load + branch while
/// tracing is disabled. `End()` may be called early to close the span
/// before scope exit (used for sequential sibling stages inside one
/// function); the destructor then does nothing — including across an
/// intervening Tracer::Reset().
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) { Start(name, false, 0); }

  /// Span whose sim times are read from `clock` at start and end.
  ScopedSpan(const char* name, const common::SimClock* clock)
      : clock_(clock) {
    Start(name, clock != nullptr, clock != nullptr ? clock->Now() : 0);
  }

  /// Span whose sim times are read from `*sim_now` at start and end (for
  /// owners that keep a bare SimTime instead of a SimClock).
  ScopedSpan(const char* name, const common::SimTime* sim_now)
      : sim_now_(sim_now) {
    Start(name, sim_now != nullptr, sim_now != nullptr ? *sim_now : 0);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() { End(); }

  void End();

  /// Adds an extra causal parent to this span (see Tracer::AddLink).
  void AddLink(const TraceContext& ctx);

  /// This span as a propagatable context (invalid if not recording).
  TraceContext context() const { return {trace_id_, id_, epoch_}; }

  /// 0 when tracing was disabled at construction (or the span was dropped
  /// by the capacity bound).
  uint64_t id() const { return id_; }

 private:
  void Start(const char* name, bool has_sim, common::SimTime sim_start);

  uint64_t id_ = 0;
  uint64_t epoch_ = 0;
  uint64_t trace_id_ = 0;
  bool has_sim_ = false;
  const common::SimClock* clock_ = nullptr;
  const common::SimTime* sim_now_ = nullptr;
};

/// Installs a remote causal parent on the calling thread for the scope's
/// lifetime: the next span opened with an empty local stack parents under
/// `ctx.span_id` and joins `ctx.trace_id`. Used by the NetSim delivery
/// loop to stitch the sender's span to the receiver's handler spans, and
/// by ThreadPool users to carry a span across Submit(). A context from a
/// stale tracer generation (Reset in between) installs nothing.
class TraceContextScope {
 public:
  explicit TraceContextScope(const TraceContext& ctx);
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;
  ~TraceContextScope();

 private:
  bool installed_ = false;
  uint64_t span_id_ = 0;
  uint64_t epoch_ = 0;
};

/// Labels every span opened on the calling thread during its lifetime
/// with a logical node identity ("validator/2", "provider/alice", …), so
/// the exported DAG shows which role did the work even though the whole
/// simulation runs in one process. No-op while tracing is disabled (the
/// label string is never built).
class NodeScope {
 public:
  explicit NodeScope(std::string label);
  /// Convenience forms that only concatenate when tracing is enabled.
  NodeScope(const char* prefix, const std::string& name);
  NodeScope(const char* prefix, size_t index);
  NodeScope(const NodeScope&) = delete;
  NodeScope& operator=(const NodeScope&) = delete;
  ~NodeScope();

 private:
  void Install(std::string label);

  bool installed_ = false;
  std::string saved_;
};

/// The node label NodeScope installed on this thread ("" outside scopes).
const std::string& CurrentNodeLabel();

}  // namespace pds2::obs

#if PDS2_METRICS

#define PDS2_OBS_CONCAT_INNER(a, b) a##b
#define PDS2_OBS_CONCAT(a, b) PDS2_OBS_CONCAT_INNER(a, b)

/// Wall-clock-only span covering the rest of the enclosing scope.
#define PDS2_TRACE_SPAN(name) \
  ::pds2::obs::ScopedSpan PDS2_OBS_CONCAT(pds2_trace_span_, __COUNTER__)(name)

/// Span that also records sim time from `sim` (a const SimClock* or a
/// const SimTime*).
#define PDS2_TRACE_SPAN_SIM(name, sim)                                \
  ::pds2::obs::ScopedSpan PDS2_OBS_CONCAT(pds2_trace_span_,           \
                                          __COUNTER__)(name, sim)

#else  // !PDS2_METRICS

#define PDS2_TRACE_SPAN(name) \
  do {                        \
  } while (0)
#define PDS2_TRACE_SPAN_SIM(name, sim) \
  do {                                 \
  } while (0)

#endif  // PDS2_METRICS

#endif  // PDS2_OBS_TRACE_H_
