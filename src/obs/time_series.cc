#include "obs/time_series.h"

#include <algorithm>
#include <cmath>

namespace pds2::obs {

namespace {

// Metric names are dotted identifiers; escaping keeps arbitrary names safe.
std::string EscapeJson(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

void WriteDouble(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    out << "0";
    return;
  }
  // Integral values (the common case: counters, gauges, quantile
  // midpoints) print exactly; everything else round-trips via %.17g.
  if (v == std::floor(v) && std::abs(v) < 9.0e15) {
    out << static_cast<long long>(v);
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out << buf;
}

}  // namespace

const char* SeriesKindName(SeriesKind kind) {
  switch (kind) {
    case SeriesKind::kCounter:
      return "counter";
    case SeriesKind::kGauge:
      return "gauge";
    case SeriesKind::kQuantile:
      return "quantile";
  }
  return "?";
}

TimeSeries::TimeSeries(TimeSeriesConfig config, Registry* registry)
    : config_(config),
      registry_(registry != nullptr ? registry : &Registry::Global()) {
  if (config_.capacity == 0) config_.capacity = 1;
  time_ring_.resize(config_.capacity);
}

void TimeSeries::AppendLocked(const std::string& name, SeriesKind kind,
                              double value) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    if (series_.size() >= config_.max_series) {
      ++dropped_series_;
      PDS2_M_COUNT("obs.timeseries.dropped_series", 1);
      return;
    }
    Series s;
    s.kind = kind;
    s.first_sample = samples_;
    s.ring.resize(config_.capacity, 0.0);
    it = series_.emplace(name, std::move(s)).first;
  }
  it->second.ring[samples_ % config_.capacity] = value;
}

size_t TimeSeries::Sample(uint64_t wall_ns, bool has_sim,
                          common::SimTime sim_us) {
  const Snapshot snapshot = registry_->TakeSnapshot();
  std::lock_guard<std::mutex> lock(mu_);
  time_ring_[samples_ % config_.capacity] = {wall_ns, has_sim, sim_us};
  for (const auto& [name, value] : snapshot.counters) {
    AppendLocked(name, SeriesKind::kCounter, static_cast<double>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    AppendLocked(name, SeriesKind::kGauge, static_cast<double>(value));
  }
  for (const auto& [name, summary] : snapshot.histograms) {
    AppendLocked(name + "#count", SeriesKind::kCounter,
                 static_cast<double>(summary.count));
    AppendLocked(name + "#p50", SeriesKind::kQuantile,
                 static_cast<double>(summary.p50));
    AppendLocked(name + "#p90", SeriesKind::kQuantile,
                 static_cast<double>(summary.p90));
    AppendLocked(name + "#p99", SeriesKind::kQuantile,
                 static_cast<double>(summary.p99));
  }
  return samples_++;
}

size_t TimeSeries::SampleCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

size_t TimeSeries::OldestRetainedLocked() const {
  return samples_ > config_.capacity ? samples_ - config_.capacity : 0;
}

size_t TimeSeries::OldestRetained() const {
  std::lock_guard<std::mutex> lock(mu_);
  return OldestRetainedLocked();
}

size_t TimeSeries::Capacity() const { return config_.capacity; }

size_t TimeSeries::SeriesCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_.size();
}

uint64_t TimeSeries::DroppedSeries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_series_;
}

std::optional<TimeSeries::SampleInfo> TimeSeries::InfoAt(
    size_t sample_index) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (sample_index >= samples_ || sample_index < OldestRetainedLocked()) {
    return std::nullopt;
  }
  return time_ring_[sample_index % config_.capacity];
}

std::optional<double> TimeSeries::ValueAtLocked(const Series& s,
                                                size_t index) const {
  if (index >= samples_) return std::nullopt;
  if (index < s.first_sample || index < OldestRetainedLocked()) {
    return std::nullopt;
  }
  return s.ring[index % config_.capacity];
}

std::optional<double> TimeSeries::ValueAt(const std::string& series,
                                          size_t sample_index) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(series);
  if (it == series_.end()) return std::nullopt;
  return ValueAtLocked(it->second, sample_index);
}

std::optional<double> TimeSeries::Latest(const std::string& series) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(series);
  if (it == series_.end() || samples_ == 0) return std::nullopt;
  return ValueAtLocked(it->second, samples_ - 1);
}

std::optional<double> TimeSeries::Delta(const std::string& series,
                                        size_t window) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(series);
  if (it == series_.end() || samples_ == 0) return std::nullopt;
  const size_t last = samples_ - 1;
  const size_t lo =
      std::max(it->second.first_sample,
               std::max(OldestRetainedLocked(),
                        last >= window ? last - window : size_t{0}));
  const auto newest = ValueAtLocked(it->second, last);
  const auto oldest = ValueAtLocked(it->second, lo);
  if (!newest || !oldest) return std::nullopt;
  return *newest - *oldest;
}

std::optional<double> TimeSeries::RatePerSecond(const std::string& series,
                                                size_t window) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(series);
  if (it == series_.end() || samples_ == 0) return std::nullopt;
  const size_t last = samples_ - 1;
  const size_t lo =
      std::max(it->second.first_sample,
               std::max(OldestRetainedLocked(),
                        last >= window ? last - window : size_t{0}));
  if (lo >= last) return std::nullopt;  // need two distinct samples
  const auto newest = ValueAtLocked(it->second, last);
  const auto oldest = ValueAtLocked(it->second, lo);
  if (!newest || !oldest) return std::nullopt;
  const SampleInfo& a = time_ring_[lo % config_.capacity];
  const SampleInfo& b = time_ring_[last % config_.capacity];
  double seconds = 0.0;
  if (a.has_sim && b.has_sim) {
    seconds = static_cast<double>(b.sim_us - a.sim_us) /
              static_cast<double>(common::kMicrosPerSecond);
  } else {
    seconds = static_cast<double>(b.wall_ns - a.wall_ns) / 1.0e9;
  }
  if (seconds <= 0.0) return std::nullopt;
  return (*newest - *oldest) / seconds;
}

std::vector<double> TimeSeries::WindowLocked(const Series& s,
                                             size_t window) const {
  std::vector<double> values;
  if (samples_ == 0 || window == 0) return values;
  const size_t last = samples_ - 1;
  const size_t lo =
      std::max(s.first_sample,
               std::max(OldestRetainedLocked(),
                        last + 1 >= window ? last + 1 - window : size_t{0}));
  for (size_t i = lo; i <= last; ++i) {
    values.push_back(s.ring[i % config_.capacity]);
  }
  return values;
}

std::optional<double> TimeSeries::WindowMin(const std::string& series,
                                            size_t window) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(series);
  if (it == series_.end()) return std::nullopt;
  const std::vector<double> values = WindowLocked(it->second, window);
  if (values.empty()) return std::nullopt;
  return *std::min_element(values.begin(), values.end());
}

std::optional<double> TimeSeries::WindowMax(const std::string& series,
                                            size_t window) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(series);
  if (it == series_.end()) return std::nullopt;
  const std::vector<double> values = WindowLocked(it->second, window);
  if (values.empty()) return std::nullopt;
  return *std::max_element(values.begin(), values.end());
}

std::optional<double> TimeSeries::WindowQuantile(const std::string& series,
                                                 size_t window,
                                                 double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(series);
  if (it == series_.end()) return std::nullopt;
  std::vector<double> values = WindowLocked(it->second, window);
  if (values.empty()) return std::nullopt;
  std::sort(values.begin(), values.end());
  q = std::min(1.0, std::max(0.0, q));
  const size_t rank = std::min(
      values.size() - 1,
      static_cast<size_t>(q * static_cast<double>(values.size() - 1) + 0.5));
  return values[rank];
}

std::optional<size_t> TimeSeries::SamplesSinceChange(
    const std::string& series) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(series);
  if (it == series_.end() || samples_ == 0) return std::nullopt;
  const size_t last = samples_ - 1;
  const auto latest = ValueAtLocked(it->second, last);
  if (!latest) return std::nullopt;
  size_t stale = 0;
  for (size_t i = last; i > 0; --i) {
    const auto prev = ValueAtLocked(it->second, i - 1);
    if (!prev || *prev != *latest) break;
    ++stale;
  }
  return stale;
}

std::optional<SeriesKind> TimeSeries::KindOf(const std::string& series) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(series);
  if (it == series_.end()) return std::nullopt;
  return it->second.kind;
}

std::vector<std::string> TimeSeries::SeriesNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, s] : series_) names.push_back(name);
  return names;
}

void TimeSeries::WriteJsonLines(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t lo = OldestRetainedLocked();
  out << "{\"type\":\"meta\",\"samples\":" << samples_
      << ",\"retained\":" << (samples_ - lo)
      << ",\"capacity\":" << config_.capacity
      << ",\"series\":" << series_.size()
      << ",\"dropped_series\":" << dropped_series_ << "}\n";
  for (size_t i = lo; i < samples_; ++i) {
    const SampleInfo& info = time_ring_[i % config_.capacity];
    out << "{\"type\":\"sample\",\"index\":" << i
        << ",\"wall_ns\":" << info.wall_ns;
    if (info.has_sim) out << ",\"sim_us\":" << info.sim_us;
    out << "}\n";
  }
  for (const auto& [name, s] : series_) {
    const size_t start = std::max(s.first_sample, lo);
    if (start >= samples_) continue;
    out << "{\"type\":\"series\",\"name\":\"" << EscapeJson(name)
        << "\",\"kind\":\"" << SeriesKindName(s.kind)
        << "\",\"start\":" << start << ",\"values\":[";
    for (size_t i = start; i < samples_; ++i) {
      if (i != start) out << ",";
      WriteDouble(out, s.ring[i % config_.capacity]);
    }
    out << "]}\n";
  }
}

void TimeSeries::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  series_.clear();
  samples_ = 0;
  dropped_series_ = 0;
}

}  // namespace pds2::obs
