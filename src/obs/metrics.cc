#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace pds2::obs {

namespace internal_metrics {

size_t ThisThreadIndex() {
  static std::atomic<size_t> next{0};
  thread_local const size_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

}  // namespace internal_metrics

uint64_t Histogram::ValueAtQuantile(double q) const {
  const uint64_t total = Count();
  if (total == 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the order statistic we are after, 1-based.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             std::ceil(q * static_cast<double>(total))));
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) return BucketMidpoint(i);
  }
  // A concurrent Observe bumped count_ before its bucket: fall back to the
  // highest non-empty bucket.
  return Max();
}

uint64_t Histogram::Min() const {
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i].load(std::memory_order_relaxed) > 0) {
      return BucketMidpoint(i);
    }
  }
  return 0;
}

uint64_t Histogram::Max() const {
  for (size_t i = kNumBuckets; i-- > 0;) {
    if (buckets_[i].load(std::memory_order_relaxed) > 0) {
      return BucketMidpoint(i);
    }
  }
  return 0;
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // never destroyed: handles
  return *registry;                            // outlive static teardown
}

Registry::Registry() {
  // The spill counter and the per-kind overflow sinks are created before
  // any cap can bind, so Get* under pressure returns an existing handle
  // instead of allocating (and never recurses into itself).
  auto counter = std::make_unique<Counter>();
  dropped_series_ = counter.get();
  counters_["obs.metrics.dropped_series"] = std::move(counter);
  counter = std::make_unique<Counter>();
  overflow_counter_ = counter.get();
  counters_["obs.metrics.overflow"] = std::move(counter);
  auto gauge = std::make_unique<Gauge>();
  overflow_gauge_ = gauge.get();
  gauges_["obs.metrics.overflow"] = std::move(gauge);
  auto histogram = std::make_unique<Histogram>();
  overflow_histogram_ = histogram.get();
  histograms_["obs.metrics.overflow"] = std::move(histogram);
}

Counter& Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  if (counters_.size() >= max_series_) {
    dropped_series_->Add(1);
    return *overflow_counter_;
  }
  return *(counters_[name] = std::make_unique<Counter>());
}

Gauge& Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  if (gauges_.size() >= max_series_) {
    dropped_series_->Add(1);
    return *overflow_gauge_;
  }
  return *(gauges_[name] = std::make_unique<Gauge>());
}

Histogram& Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  if (histograms_.size() >= max_series_) {
    dropped_series_->Add(1);
    return *overflow_histogram_;
  }
  return *(histograms_[name] = std::make_unique<Histogram>());
}

void Registry::SetMaxSeries(size_t max_series) {
  std::lock_guard<std::mutex> lock(mu_);
  max_series_ = max_series == 0 ? 1 : max_series;
}

size_t Registry::MaxSeries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_series_;
}

uint64_t Registry::DroppedSeries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_series_->Value();
}

Snapshot Registry::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->Value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->Value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSummary summary;
    summary.count = histogram->Count();
    summary.sum = histogram->Sum();
    summary.min = histogram->Min();
    summary.p50 = histogram->ValueAtQuantile(0.50);
    summary.p90 = histogram->ValueAtQuantile(0.90);
    summary.p99 = histogram->ValueAtQuantile(0.99);
    summary.max = histogram->Max();
    snapshot.histograms.emplace_back(name, summary);
  }
  return snapshot;
}

void Registry::ResetValues() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace pds2::obs
