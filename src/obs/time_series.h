#ifndef PDS2_OBS_TIME_SERIES_H_
#define PDS2_OBS_TIME_SERIES_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "common/sim_clock.h"
#include "obs/metrics.h"

namespace pds2::obs {

/// Shape of one stored series. Counters keep their cumulative value per
/// sample (queries derive deltas/rates); gauges keep the sampled value;
/// histograms fan out into quantile sub-series ("<name>#p50", "#p90",
/// "#p99") plus a cumulative "#count" that behaves like a counter.
enum class SeriesKind : uint8_t { kCounter, kGauge, kQuantile };

const char* SeriesKindName(SeriesKind kind);

struct TimeSeriesConfig {
  /// Ring slots retained per series (and for the shared time index). Memory
  /// is bounded by capacity * series regardless of run length.
  size_t capacity = 1024;
  /// Cardinality cap: snapshots may introduce at most this many series;
  /// later names are dropped (counted, never stored) instead of growing the
  /// map without bound.
  size_t max_series = 4096;
};

/// Compact ring-buffer time-series store over the metrics Registry: each
/// Sample() takes one registry snapshot and appends one point per known
/// series, stamped with wall time and (when the caller runs under a DES)
/// sim time. Old points are overwritten once the ring wraps, so a sampler
/// ticking for hours holds the same memory as one that ticked twice.
///
/// All public methods are thread-safe; Sample() is expected to be called
/// from one place (a NetSim tick hook, a Marketplace tick, or the wall
/// sampler in tools) while queries run from rule evaluation or tests.
class TimeSeries {
 public:
  explicit TimeSeries(TimeSeriesConfig config = {},
                      Registry* registry = nullptr);  // nullptr = Global()

  /// Snapshots the registry and appends one sample at (wall_ns, sim_us).
  /// Returns the new sample's index (0-based, monotonically increasing for
  /// the lifetime of the object — ring eviction never renumbers).
  size_t Sample(uint64_t wall_ns, bool has_sim = false,
                common::SimTime sim_us = 0);

  /// Total samples taken (not the retained count).
  size_t SampleCount() const;
  /// Oldest retained sample index (SampleCount() - retained span).
  size_t OldestRetained() const;
  size_t Capacity() const;
  size_t SeriesCount() const;
  /// Series dropped by the max_series cap.
  uint64_t DroppedSeries() const;

  struct SampleInfo {
    uint64_t wall_ns = 0;
    bool has_sim = false;
    common::SimTime sim_us = 0;
  };
  /// Timestamp of a retained sample; nullopt if evicted / out of range.
  std::optional<SampleInfo> InfoAt(size_t sample_index) const;

  /// Value of `series` at a retained sample (counters: cumulative value).
  /// nullopt when the series is unknown, the sample was evicted, or the
  /// series first appeared after `sample_index`.
  std::optional<double> ValueAt(const std::string& series,
                                size_t sample_index) const;
  /// Value at the latest sample.
  std::optional<double> Latest(const std::string& series) const;

  /// v[latest] - v[latest - window], clamped to the retained range (a
  /// window larger than history degrades to "since first retained point").
  std::optional<double> Delta(const std::string& series, size_t window) const;

  /// Delta(window) divided by the covered time span. Uses sim seconds when
  /// both endpoint samples carry sim time, wall seconds otherwise; nullopt
  /// when the span is zero.
  std::optional<double> RatePerSecond(const std::string& series,
                                      size_t window) const;

  /// Aggregations over the last `window` retained points (clamped).
  std::optional<double> WindowMin(const std::string& series,
                                  size_t window) const;
  std::optional<double> WindowMax(const std::string& series,
                                  size_t window) const;
  /// Order statistic at q in [0,1] over the last `window` points.
  std::optional<double> WindowQuantile(const std::string& series,
                                       size_t window, double q) const;

  /// Number of trailing samples whose value equals the latest (staleness:
  /// 0 = the series changed at the latest sample). Clamped to the retained
  /// span; nullopt for unknown series or when nothing is retained.
  std::optional<size_t> SamplesSinceChange(const std::string& series) const;

  /// Kind of a known series.
  std::optional<SeriesKind> KindOf(const std::string& series) const;
  std::vector<std::string> SeriesNames() const;

  /// JSON-lines export (schema: docs/PROTOCOL.md "Health export schema"):
  ///   {"type":"meta",...}
  ///   {"type":"sample","index":I,"wall_ns":W[,"sim_us":S]}   per retained
  ///   {"type":"series","name":N,"kind":K,"start":I,"values":[...]}
  void WriteJsonLines(std::ostream& out) const;

  /// Drops all samples and series (config and registry binding stay).
  void Clear();

 private:
  struct Series {
    SeriesKind kind = SeriesKind::kGauge;
    /// Sample index of this series' first point (series may appear after
    /// sampling started; earlier samples have no value for it).
    size_t first_sample = 0;
    /// Ring of points, slot = sample_index % capacity. Valid range is
    /// [max(first_sample, oldest retained), SampleCount()).
    std::vector<double> ring;
  };

  // All Require a held mu_.
  void AppendLocked(const std::string& name, SeriesKind kind, double value);
  std::optional<double> ValueAtLocked(const Series& s, size_t index) const;
  size_t OldestRetainedLocked() const;
  /// Last `window` values of `series` (clamped), oldest first.
  std::vector<double> WindowLocked(const Series& s, size_t window) const;

  mutable std::mutex mu_;
  TimeSeriesConfig config_;
  Registry* registry_;
  std::map<std::string, Series> series_;
  std::vector<SampleInfo> time_ring_;  // slot = sample_index % capacity
  size_t samples_ = 0;
  uint64_t dropped_series_ = 0;
};

}  // namespace pds2::obs

#endif  // PDS2_OBS_TIME_SERIES_H_
