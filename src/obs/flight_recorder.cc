#include "obs/flight_recorder.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <utility>

#include "obs/trace.h"

namespace pds2::obs {

namespace {

std::string EscapeJson(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += ' ';
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* KindName(FlightEntry::Kind kind) {
  switch (kind) {
    case FlightEntry::Kind::kSpanBegin:
      return "span_begin";
    case FlightEntry::Kind::kSpanEnd:
      return "span_end";
    case FlightEntry::Kind::kLog:
      return "log";
    case FlightEntry::Kind::kNote:
      return "note";
  }
  return "?";
}

// File-name-safe version of a dump reason.
std::string SanitizeReason(const std::string& reason) {
  std::string out;
  for (char c : reason) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    out += ok ? c : '-';
  }
  if (out.empty()) out = "dump";
  if (out.size() > 64) out.resize(64);
  return out;
}

}  // namespace

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();  // never destroyed
  return *recorder;
}

void FlightRecorder::SetEnabled(bool enabled) {
  if (enabled) {
    std::lock_guard<std::mutex> lock(config_mu_);
    baseline_ = Registry::Global().TakeSnapshot();
  }
  enabled_.store(enabled, std::memory_order_relaxed);
}

void FlightRecorder::SetCapacityPerShard(size_t capacity) {
  std::lock_guard<std::mutex> lock(config_mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
}

void FlightRecorder::SetDumpDir(std::string dir) {
  std::lock_guard<std::mutex> lock(config_mu_);
  dump_dir_ = dir.empty() ? "." : std::move(dir);
}

void FlightRecorder::Record(FlightEntry entry) {
  if (!enabled()) return;  // callers gate too; direct Note() may not
  size_t capacity;
  {
    std::lock_guard<std::mutex> lock(config_mu_);
    capacity = capacity_;
  }
  entry.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  entry.thread =
      static_cast<uint32_t>(internal_metrics::ThisThreadIndex());
  Ring& ring = rings_[entry.thread % kShards];
  std::lock_guard<std::mutex> lock(ring.mu);
  if (ring.slots.size() < capacity) {
    ring.slots.push_back(std::move(entry));
    ring.next = ring.slots.size() % capacity;
    ring.wrapped = ring.next == 0 && ring.slots.size() == capacity;
    return;
  }
  // Full (or capacity shrank): overwrite the oldest slot.
  if (ring.next >= ring.slots.size()) ring.next = 0;
  ring.slots[ring.next] = std::move(entry);
  ring.next = (ring.next + 1) % ring.slots.size();
  ring.wrapped = true;
}

void FlightRecorder::OnSpanBegin(uint64_t id, const char* name,
                                 const std::string& node, uint64_t wall_ns,
                                 bool has_sim, common::SimTime sim_us) {
  FlightEntry entry;
  entry.kind = FlightEntry::Kind::kSpanBegin;
  entry.wall_ns = wall_ns;
  entry.span_id = id;
  entry.has_sim = has_sim;
  entry.sim_us = sim_us;
  entry.text = name;
  entry.node = node;
  Record(std::move(entry));
}

void FlightRecorder::OnSpanEnd(uint64_t id, const std::string& name,
                               const std::string& node, uint64_t wall_ns,
                               bool has_sim, common::SimTime sim_us) {
  FlightEntry entry;
  entry.kind = FlightEntry::Kind::kSpanEnd;
  entry.wall_ns = wall_ns;
  entry.span_id = id;
  entry.has_sim = has_sim;
  entry.sim_us = sim_us;
  entry.text = name;
  entry.node = node;
  Record(std::move(entry));
}

void FlightRecorder::OnLog(const common::LogRecord& record) {
  FlightEntry entry;
  entry.kind = FlightEntry::Kind::kLog;
  entry.wall_ns = WallNowNs();
  entry.text = std::string(common::LogLevelName(record.level)) + " " +
               record.message;
  for (const auto& [key, value] : record.fields) {
    entry.text += " " + key + "=" + value;
  }
  entry.node = CurrentNodeLabel();
  Record(std::move(entry));
}

void FlightRecorder::Note(std::string text, bool has_sim,
                          common::SimTime sim_us) {
  FlightEntry entry;
  entry.kind = FlightEntry::Kind::kNote;
  entry.wall_ns = WallNowNs();
  entry.has_sim = has_sim;
  entry.sim_us = sim_us;
  entry.text = std::move(text);
  entry.node = CurrentNodeLabel();
  Record(std::move(entry));
}

std::vector<FlightEntry> FlightRecorder::SnapshotEntries() const {
  std::vector<FlightEntry> entries;
  for (const Ring& ring : rings_) {
    std::lock_guard<std::mutex> lock(ring.mu);
    entries.insert(entries.end(), ring.slots.begin(), ring.slots.end());
  }
  std::sort(entries.begin(), entries.end(),
            [](const FlightEntry& a, const FlightEntry& b) {
              return a.seq < b.seq;
            });
  return entries;
}

void FlightRecorder::WriteDump(const std::string& reason,
                               std::ostream& out) const {
  const std::vector<FlightEntry> entries = SnapshotEntries();
  const Snapshot current = Registry::Global().TakeSnapshot();
  Snapshot baseline;
  {
    std::lock_guard<std::mutex> lock(config_mu_);
    baseline = baseline_;
  }
  std::map<std::string, uint64_t> base_counters(baseline.counters.begin(),
                                                baseline.counters.end());

  out << "{\n  \"reason\": \"" << EscapeJson(reason) << "\",\n";
  out << "  \"entries\": [";
  for (size_t i = 0; i < entries.size(); ++i) {
    const FlightEntry& entry = entries[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"seq\":" << entry.seq
        << ",\"thread\":" << entry.thread << ",\"kind\":\""
        << KindName(entry.kind) << "\",\"wall_ns\":" << entry.wall_ns;
    if (entry.span_id != 0) out << ",\"span_id\":" << entry.span_id;
    if (entry.has_sim) out << ",\"sim_us\":" << entry.sim_us;
    if (!entry.node.empty()) {
      out << ",\"node\":\"" << EscapeJson(entry.node) << "\"";
    }
    out << ",\"text\":\"" << EscapeJson(entry.text) << "\"}";
  }
  out << "\n  ],\n";
  out << "  \"counter_deltas\": {";
  bool first = true;
  for (const auto& [name, value] : current.counters) {
    const auto it = base_counters.find(name);
    const uint64_t base = it == base_counters.end() ? 0 : it->second;
    if (value <= base) continue;  // unchanged (or reset) since baseline
    out << (first ? "\n" : ",\n") << "    \"" << EscapeJson(name)
        << "\": " << (value - base);
    first = false;
  }
  out << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : current.gauges) {
    out << (first ? "\n" : ",\n") << "    \"" << EscapeJson(name)
        << "\": " << value;
    first = false;
  }
  out << "\n  }\n}\n";
}

std::string FlightRecorder::DumpNow(const std::string& reason) {
  std::string dir;
  {
    std::lock_guard<std::mutex> lock(config_mu_);
    dir = dump_dir_;
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort
  const uint64_t n = dumps_written_.fetch_add(1, std::memory_order_relaxed);
  const std::string path = dir + "/flight-" + std::to_string(n) + "-" +
                           SanitizeReason(reason) + ".json";
  std::ofstream out(path);
  if (!out.is_open()) return "";
  WriteDump(reason, out);
  out.flush();
  if (!out.good()) return "";
  {
    std::lock_guard<std::mutex> lock(config_mu_);
    last_dump_path_ = path;
  }
  return path;
}

std::string FlightRecorder::LastDumpPath() const {
  std::lock_guard<std::mutex> lock(config_mu_);
  return last_dump_path_;
}

void FlightRecorder::Clear() {
  for (Ring& ring : rings_) {
    std::lock_guard<std::mutex> lock(ring.mu);
    ring.slots.clear();
    ring.next = 0;
    ring.wrapped = false;
  }
  std::lock_guard<std::mutex> lock(config_mu_);
  baseline_ = Registry::Global().TakeSnapshot();
  last_dump_path_.clear();
}

}  // namespace pds2::obs
