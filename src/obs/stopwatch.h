#ifndef PDS2_OBS_STOPWATCH_H_
#define PDS2_OBS_STOPWATCH_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "obs/metrics.h"

namespace pds2::obs {

/// Wall-clock stopwatch. The one timing primitive shared by benches
/// (bench_util.h aliases this as pds2::bench::Timer) and by the
/// histogram-feeding PDS2_M_TIME_US macro, so bench numbers and metric
/// quantiles come from the same clock.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  void Reset() { start_ = std::chrono::steady_clock::now(); }

  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  double ElapsedUs() const { return ElapsedMs() * 1000.0; }

  uint64_t ElapsedNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

namespace internal_metrics {

/// Call-site histogram handle cache for PDS2_M_TIME_US: nullptr while
/// metrics are disabled (one relaxed load + branch, no registry touch, no
/// static-init guard — `cache` is constant-initialized); resolves and
/// caches the handle on first enabled pass.
inline Histogram* ResolveHistogram(std::atomic<Histogram*>& cache,
                                   const char* name) {
  if (!MetricsEnabled()) return nullptr;
  Histogram* histogram = cache.load(std::memory_order_acquire);
  if (histogram == nullptr) {
    histogram = &Registry::Global().GetHistogram(name);
    cache.store(histogram, std::memory_order_release);
  }
  return histogram;
}

}  // namespace internal_metrics

/// RAII timer that records the scope's duration (µs) into a histogram at
/// destruction. A null histogram makes it inert — not even a clock read.
class ScopedHistogramTimer {
 public:
  explicit ScopedHistogramTimer(Histogram* histogram)
      : histogram_(histogram) {
    if (histogram_ != nullptr) watch_.Reset();
  }

  ScopedHistogramTimer(const ScopedHistogramTimer&) = delete;
  ScopedHistogramTimer& operator=(const ScopedHistogramTimer&) = delete;

  ~ScopedHistogramTimer() {
    if (histogram_ != nullptr) {
      histogram_->Observe(static_cast<uint64_t>(watch_.ElapsedUs()));
    }
  }

 private:
  Histogram* histogram_;
  Stopwatch watch_;
};

}  // namespace pds2::obs

#if PDS2_METRICS

/// Times the rest of the enclosing scope into histogram `name` (µs).
#define PDS2_M_TIME_US(name)                                              \
  static ::std::atomic<::pds2::obs::Histogram*> pds2_m_time_hist{nullptr}; \
  ::pds2::obs::ScopedHistogramTimer pds2_m_time_timer(                    \
      ::pds2::obs::internal_metrics::ResolveHistogram(pds2_m_time_hist,   \
                                                      name))

#else  // !PDS2_METRICS

#define PDS2_M_TIME_US(name) \
  do {                       \
  } while (0)

#endif  // PDS2_METRICS

#endif  // PDS2_OBS_STOPWATCH_H_
