#ifndef PDS2_OBS_HEALTH_H_
#define PDS2_OBS_HEALTH_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "obs/time_series.h"

namespace pds2::obs {

enum class Severity : uint8_t { kInfo = 0, kWarning = 1, kCritical = 2 };
const char* SeverityName(Severity severity);

enum class Comparison : uint8_t { kGt, kGe, kLt, kLe, kEq, kNe };
const char* ComparisonName(Comparison cmp);
bool Compare(double lhs, Comparison cmp, double rhs);

/// Result of one cross-metric invariant check (supply conservation, escrow
/// balance, ...). `observed`/`bound` feed the alert event so a post-mortem
/// shows how far off the invariant was.
struct InvariantResult {
  bool ok = true;
  double observed = 0.0;
  double bound = 0.0;
  std::string detail;
};

/// One declarative health rule. Use the factory functions below; the
/// kind-specific fields are only meaningful for their kind.
struct HealthRule {
  enum class Kind : uint8_t { kThreshold, kRate, kAbsence, kInvariant };

  std::string id;  // unique, dotted ("chain.supply-conservation")
  Kind kind = Kind::kThreshold;
  Severity severity = Severity::kWarning;

  // kThreshold: alert while Compare(latest(series), cmp, bound) holds.
  // kRate: alert while RatePerSecond(series, window) cmp bound holds.
  std::string series;
  Comparison cmp = Comparison::kGt;
  double bound = 0.0;
  size_t window = 8;  // kRate lookback, in samples

  // kAbsence: alert when `series` has not changed for more than
  // `max_stale_samples` samples while `activity_series` (when set) moved —
  // "the system is doing work but this signal is stuck".
  size_t max_stale_samples = 8;
  std::string activity_series;

  // kInvariant: arbitrary cross-metric predicate over the time series.
  std::function<InvariantResult(const TimeSeries&)> invariant;
};

HealthRule ThresholdRule(std::string id, Severity severity, std::string series,
                         Comparison cmp, double bound);
HealthRule RateRule(std::string id, Severity severity, std::string series,
                    size_t window, Comparison cmp,
                    double bound_per_second);
HealthRule AbsenceRule(std::string id, Severity severity, std::string series,
                       size_t max_stale_samples,
                       std::string activity_series = "");
HealthRule InvariantRule(
    std::string id, Severity severity,
    std::function<InvariantResult(const TimeSeries&)> invariant);

/// Structured fire/resolve record. Digest-relevant fields are all
/// sim-deterministic; wall_ns is carried for reports but excluded from
/// EventsDigest() so 1-vs-N-thread runs stay bit-identical.
struct AlertEvent {
  std::string rule_id;
  Severity severity = Severity::kWarning;
  bool fired = true;  // false = resolve
  size_t sample_index = 0;
  size_t first_bad_sample = 0;  // first sample of the current bad streak
  uint64_t wall_ns = 0;
  bool has_sim = false;
  common::SimTime sim_us = 0;
  double observed = 0.0;
  double bound = 0.0;
  std::string detail;
};

struct HealthConfig {
  /// Consecutive bad samples required before a rule fires (debounce).
  size_t min_consecutive = 1;
  /// DumpNow("alert-<rule>") on the first fire of a critical rule.
  bool dump_on_critical = true;
  /// Alert events retained (oldest dropped beyond this).
  size_t max_events = 4096;
};

/// Declarative SLO/invariant engine over a TimeSeries: Evaluate() checks
/// every rule against the latest sample, tracks per-rule fire/resolve state
/// with debounce, and emits AlertEvents into (a) its own bounded event log,
/// (b) the metrics registry (obs.health.* counters), (c) the log sink, and
/// (d) on critical fires, an automatic FlightRecorder dump — so a seeded
/// chaos run that goes bad leaves a post-mortem artifact without crashing.
///
/// Rules that reference series absent from the time series are skipped
/// (treated healthy): packs register rules for subsystems that may not be
/// instrumented in a given run, and clean runs must never false-fire.
class HealthMonitor {
 public:
  explicit HealthMonitor(const TimeSeries* ts, HealthConfig config = {});

  void AddRule(HealthRule rule);
  void AddRules(std::vector<HealthRule> rules);
  size_t RuleCount() const;

  /// Evaluates every rule at the latest sample. No-op before the first
  /// sample. Returns the number of events (fires + resolves) emitted.
  size_t EvaluateLatest();

  std::vector<AlertEvent> Events() const;
  /// Rule ids currently in the fired state.
  std::vector<std::string> ActiveAlerts() const;
  /// Distinct rule ids that ever fired.
  std::vector<std::string> FiredRuleIds() const;
  uint64_t FireCount() const;

  /// FNV-1a over the sim-deterministic fields of every event (rule id,
  /// fired, sample index, first-bad, sim time, observed, bound). Equal
  /// digests across thread counts ⇒ identical alert behaviour.
  uint64_t EventsDigest() const;

  /// JSON-lines alert export, one {"type":"alert",...} object per event
  /// (appended after TimeSeries::WriteJsonLines for pds2_health).
  void WriteJsonLines(std::ostream& out) const;

  /// Drops events and per-rule state; rules stay registered.
  void Clear();

 private:
  struct RuleState {
    size_t bad_streak = 0;
    bool active = false;
    size_t first_bad_sample = 0;
  };
  struct Check {
    bool applicable = false;  // series present / invariant evaluable
    bool bad = false;
    double observed = 0.0;
    double bound = 0.0;
    std::string detail;
  };

  Check EvaluateRuleLocked(const HealthRule& rule) const;
  void EmitLocked(const HealthRule& rule, const RuleState& state, bool fired,
                  const Check& check, size_t sample_index,
                  const TimeSeries::SampleInfo& info);

  mutable std::mutex mu_;
  const TimeSeries* ts_;
  HealthConfig config_;
  std::vector<HealthRule> rules_;
  std::vector<RuleState> states_;
  std::vector<AlertEvent> events_;
  uint64_t fires_ = 0;
  size_t evaluated_through_ = 0;  // SampleCount() already evaluated
};

}  // namespace pds2::obs

#endif  // PDS2_OBS_HEALTH_H_
