#ifndef PDS2_OBS_EXPORT_H_
#define PDS2_OBS_EXPORT_H_

#include <ostream>
#include <string>

#include "obs/metrics.h"

namespace pds2::obs {

/// Writes a snapshot as JSON lines: one {"type":...,"name":...,...} object
/// per metric, suitable for appending per-run exports side by side.
void WriteSnapshotJsonLines(const Snapshot& snapshot, std::ostream& out);

/// Writes a snapshot as one self-contained JSON object
/// {"counters":{...},"gauges":{...},"histograms":{...}}.
void WriteSnapshotJson(const Snapshot& snapshot, std::ostream& out);

/// Writes a snapshot in the Prometheus text exposition format (metric
/// names sanitized: every character outside [a-zA-Z0-9_] becomes '_', so
/// "chain.blocks_applied" exports as "chain_blocks_applied"). Histograms
/// export as <name>_count / <name>_sum plus quantile gauges.
void WriteSnapshotPrometheus(const Snapshot& snapshot, std::ostream& out);

/// Prometheus-safe metric name ("chain.produce.us" -> "chain_produce_us").
std::string PrometheusName(const std::string& name);

}  // namespace pds2::obs

#endif  // PDS2_OBS_EXPORT_H_
