#include "obs/trace_analysis.h"

#include <algorithm>
#include <set>

namespace pds2::obs {

namespace {

// ---------------------------------------------------------------------------
// Minimal parser for the flat one-object-per-line span schema. Not a general
// JSON parser: objects are flat, keys are from a fixed set, values are
// unsigned integers, strings, or arrays of unsigned integers — exactly what
// Tracer::WriteJsonLines emits.
// ---------------------------------------------------------------------------

class LineParser {
 public:
  explicit LineParser(const std::string& line) : s_(line) {}

  bool Fail(std::string* error, const std::string& what) {
    if (error != nullptr) {
      *error = what + " at offset " + std::to_string(i_);
    }
    return false;
  }

  void SkipSpace() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t')) ++i_;
  }

  bool Consume(char c) {
    SkipSpace();
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }

  bool Peek(char c) {
    SkipSpace();
    return i_ < s_.size() && s_[i_] == c;
  }

  bool AtEnd() {
    SkipSpace();
    return i_ >= s_.size();
  }

  bool ParseString(std::string* out, std::string* error) {
    if (!Consume('"')) return Fail(error, "expected string");
    out->clear();
    while (i_ < s_.size() && s_[i_] != '"') {
      char c = s_[i_++];
      if (c == '\\') {
        if (i_ >= s_.size()) return Fail(error, "bad escape");
        char e = s_[i_++];
        switch (e) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 't':
            out->push_back('\t');
            break;
          case '/':
            out->push_back('/');
            break;
          default:
            return Fail(error, "unsupported escape");
        }
      } else {
        out->push_back(c);
      }
    }
    if (i_ >= s_.size()) return Fail(error, "unterminated string");
    ++i_;  // closing quote
    return true;
  }

  bool ParseUint(uint64_t* out, std::string* error) {
    SkipSpace();
    if (i_ >= s_.size() || s_[i_] < '0' || s_[i_] > '9') {
      return Fail(error, "expected number");
    }
    uint64_t value = 0;
    while (i_ < s_.size() && s_[i_] >= '0' && s_[i_] <= '9') {
      value = value * 10 + static_cast<uint64_t>(s_[i_] - '0');
      ++i_;
    }
    *out = value;
    return true;
  }

  bool ParseUintArray(std::vector<uint64_t>* out, std::string* error) {
    if (!Consume('[')) return Fail(error, "expected array");
    out->clear();
    if (Consume(']')) return true;
    while (true) {
      uint64_t value = 0;
      if (!ParseUint(&value, error)) return false;
      out->push_back(value);
      if (Consume(']')) return true;
      if (!Consume(',')) return Fail(error, "expected ',' in array");
    }
  }

 private:
  const std::string& s_;
  size_t i_ = 0;
};

bool ParseSpanLine(const std::string& line, SpanRecord* record,
                   std::string* error) {
  LineParser p(line);
  if (!p.Consume('{')) return p.Fail(error, "expected '{'");
  bool saw_id = false;
  bool saw_name = false;
  uint64_t wall_dur = 0;
  common::SimTime sim_dur = 0;
  bool saw_sim_start = false;
  bool first = true;
  while (!p.Consume('}')) {
    if (!first && !p.Consume(',')) return p.Fail(error, "expected ','");
    first = false;
    std::string key;
    if (!p.ParseString(&key, error)) return false;
    if (!p.Consume(':')) return p.Fail(error, "expected ':'");
    if (key == "name") {
      if (!p.ParseString(&record->name, error)) return false;
      saw_name = true;
    } else if (key == "node") {
      if (!p.ParseString(&record->node, error)) return false;
    } else if (key == "links") {
      if (!p.ParseUintArray(&record->links, error)) return false;
    } else {
      uint64_t value = 0;
      if (!p.ParseUint(&value, error)) return false;
      if (key == "id") {
        record->id = value;
        saw_id = true;
      } else if (key == "parent") {
        record->parent = value;
      } else if (key == "trace") {
        record->trace_id = value;
      } else if (key == "thread") {
        record->thread = static_cast<uint32_t>(value);
      } else if (key == "wall_start_ns") {
        record->wall_start_ns = value;
      } else if (key == "wall_dur_ns") {
        wall_dur = value;
      } else if (key == "sim_start_us") {
        record->sim_start = static_cast<common::SimTime>(value);
        record->has_sim = true;
        saw_sim_start = true;
      } else if (key == "sim_dur_us") {
        sim_dur = static_cast<common::SimTime>(value);
      } else {
        return p.Fail(error, "unknown key \"" + key + "\"");
      }
    }
  }
  if (!p.AtEnd()) return p.Fail(error, "trailing characters");
  if (!saw_id || record->id == 0) return p.Fail(error, "missing span id");
  if (!saw_name) return p.Fail(error, "missing span name");
  record->wall_end_ns = record->wall_start_ns + wall_dur;
  if (saw_sim_start) record->sim_end = record->sim_start + sim_dur;
  return true;
}

std::string EscapeJson(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

bool ParseSpanJsonLines(std::istream& in, std::vector<SpanRecord>* out,
                        std::string* error) {
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    SpanRecord record;
    std::string line_error;
    if (!ParseSpanLine(line, &record, &line_error)) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": " + line_error;
      }
      return false;
    }
    out->push_back(std::move(record));
  }
  return true;
}

TraceDag::TraceDag(std::vector<SpanRecord> spans) : spans_(std::move(spans)) {
  for (size_t i = 0; i < spans_.size(); ++i) {
    index_[spans_[i].id] = i;
  }
  for (const SpanRecord& span : spans_) {
    if (span.parent != 0 && index_.count(span.parent) != 0) {
      children_[span.parent].push_back(span.id);
    }
    for (uint64_t link : span.links) {
      if (link != span.parent && index_.count(link) != 0) {
        children_[link].push_back(span.id);
      }
    }
  }
  for (auto& [id, kids] : children_) {
    std::sort(kids.begin(), kids.end());
    kids.erase(std::unique(kids.begin(), kids.end()), kids.end());
  }
}

const SpanRecord* TraceDag::Get(uint64_t id) const {
  const auto it = index_.find(id);
  return it == index_.end() ? nullptr : &spans_[it->second];
}

const SpanRecord* TraceDag::Find(const std::string& name) const {
  const SpanRecord* best = nullptr;
  for (const SpanRecord& span : spans_) {
    if (span.name == name && (best == nullptr || span.id < best->id)) {
      best = &span;
    }
  }
  return best;
}

std::vector<uint64_t> TraceDag::Children(uint64_t id) const {
  const auto it = children_.find(id);
  return it == children_.end() ? std::vector<uint64_t>{} : it->second;
}

namespace {

// Causal parents of `span` that exist in `index`.
std::vector<uint64_t> PresentParents(
    const SpanRecord& span, const std::map<uint64_t, size_t>& index) {
  std::vector<uint64_t> parents;
  if (span.parent != 0 && index.count(span.parent) != 0) {
    parents.push_back(span.parent);
  }
  for (uint64_t link : span.links) {
    if (link != span.parent && index.count(link) != 0) {
      parents.push_back(link);
    }
  }
  return parents;
}

}  // namespace

std::vector<uint64_t> TraceDag::Roots() const {
  std::vector<uint64_t> roots;
  for (const SpanRecord& span : spans_) {
    if (PresentParents(span, index_).empty()) roots.push_back(span.id);
  }
  std::sort(roots.begin(), roots.end());
  return roots;
}

std::vector<uint64_t> TraceDag::Component(uint64_t id) const {
  std::vector<uint64_t> component;
  if (index_.count(id) == 0) return component;
  std::set<uint64_t> seen;
  std::vector<uint64_t> frontier{id};
  seen.insert(id);
  while (!frontier.empty()) {
    const uint64_t cur = frontier.back();
    frontier.pop_back();
    component.push_back(cur);
    std::vector<uint64_t> neighbors = Children(cur);
    const std::vector<uint64_t> parents =
        PresentParents(spans_[index_.at(cur)], index_);
    neighbors.insert(neighbors.end(), parents.begin(), parents.end());
    for (uint64_t next : neighbors) {
      if (seen.insert(next).second) frontier.push_back(next);
    }
  }
  std::sort(component.begin(), component.end());
  return component;
}

size_t TraceDag::NumComponents() const {
  std::set<uint64_t> assigned;
  size_t components = 0;
  for (const SpanRecord& span : spans_) {
    if (assigned.count(span.id) != 0) continue;
    ++components;
    for (uint64_t id : Component(span.id)) assigned.insert(id);
  }
  return components;
}

std::vector<std::string> TraceDag::NodesInComponent(uint64_t id) const {
  std::set<std::string> nodes;
  for (uint64_t member : Component(id)) {
    const std::string& node = spans_[index_.at(member)].node;
    if (!node.empty()) nodes.insert(node);
  }
  return {nodes.begin(), nodes.end()};
}

std::vector<uint64_t> TraceDag::Descendants(uint64_t root) const {
  std::vector<uint64_t> result;
  if (index_.count(root) == 0) return result;
  std::set<uint64_t> seen{root};
  std::vector<uint64_t> frontier{root};
  while (!frontier.empty()) {
    const uint64_t cur = frontier.back();
    frontier.pop_back();
    result.push_back(cur);
    for (uint64_t child : Children(cur)) {
      if (seen.insert(child).second) frontier.push_back(child);
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<CriticalPathStep> TraceDag::CriticalPathSim(uint64_t root) const {
  std::vector<CriticalPathStep> path;
  const std::vector<uint64_t> down = Descendants(root);
  if (down.empty()) return path;
  const std::set<uint64_t> down_set(down.begin(), down.end());

  // Predecessor of each descendant: the causal parent (within the
  // descendant set) whose sim_end is largest — the edge that gated it.
  std::map<uint64_t, uint64_t> pred;
  for (uint64_t id : down) {
    if (id == root) continue;
    uint64_t best = 0;
    common::SimTime best_end = 0;
    for (uint64_t parent : PresentParents(spans_[index_.at(id)], index_)) {
      if (down_set.count(parent) == 0) continue;
      const SpanRecord& p = spans_[index_.at(parent)];
      const common::SimTime end = p.has_sim ? p.sim_end : 0;
      if (best == 0 || end > best_end || (end == best_end && parent > best)) {
        best = parent;
        best_end = end;
      }
    }
    if (best != 0) pred[id] = best;
  }

  // The path endpoint: descendant whose sim_end is latest. On ties the
  // LARGER id wins — it began later, so it sits deeper in the DAG and the
  // walk back yields the most informative chain (an enclosing stage span
  // and its last gating child end at the same instant; we want the child).
  uint64_t endpoint = root;
  common::SimTime endpoint_end =
      spans_[index_.at(root)].has_sim ? spans_[index_.at(root)].sim_end : 0;
  for (uint64_t id : down) {
    const SpanRecord& span = spans_[index_.at(id)];
    const common::SimTime end = span.has_sim ? span.sim_end : 0;
    if (end > endpoint_end || (end == endpoint_end && id > endpoint)) {
      endpoint = id;
      endpoint_end = end;
    }
  }

  std::vector<uint64_t> chain;
  std::set<uint64_t> walked;
  for (uint64_t cur = endpoint;; ) {
    if (!walked.insert(cur).second) break;  // cycle guard (malformed links)
    chain.push_back(cur);
    if (cur == root) break;
    const auto it = pred.find(cur);
    if (it == pred.end()) break;
    cur = it->second;
  }
  std::reverse(chain.begin(), chain.end());

  common::SimTime prev_end = 0;
  bool have_prev = false;
  for (uint64_t id : chain) {
    const SpanRecord& span = spans_[index_.at(id)];
    CriticalPathStep step;
    step.id = span.id;
    step.name = span.name;
    step.node = span.node;
    step.sim_start = span.has_sim ? span.sim_start : 0;
    step.sim_end = span.has_sim ? span.sim_end : 0;
    step.wall_dur_ns = span.wall_end_ns >= span.wall_start_ns
                           ? span.wall_end_ns - span.wall_start_ns
                           : 0;
    const common::SimTime base = have_prev ? prev_end : step.sim_start;
    step.charged_sim_us = step.sim_end > base ? step.sim_end - base : 0;
    prev_end = step.sim_end > base ? step.sim_end : base;
    have_prev = true;
    path.push_back(std::move(step));
  }
  return path;
}

std::vector<StageStat> TraceDag::StageStats() const {
  std::map<std::string, StageStat> by_name;
  for (const SpanRecord& span : spans_) {
    StageStat& stat = by_name[span.name];
    stat.name = span.name;
    stat.count += 1;
    const uint64_t wall = span.wall_end_ns >= span.wall_start_ns
                              ? span.wall_end_ns - span.wall_start_ns
                              : 0;
    stat.total_wall_ns += wall;
    stat.max_wall_ns = std::max(stat.max_wall_ns, wall);
    if (span.has_sim && span.sim_end >= span.sim_start) {
      const common::SimTime sim = span.sim_end - span.sim_start;
      stat.total_sim_us += sim;
      stat.max_sim_us = std::max(stat.max_sim_us, sim);
    }
  }
  std::vector<StageStat> stats;
  stats.reserve(by_name.size());
  for (auto& [name, stat] : by_name) stats.push_back(std::move(stat));
  std::sort(stats.begin(), stats.end(),
            [](const StageStat& a, const StageStat& b) {
              if (a.total_sim_us != b.total_sim_us) {
                return a.total_sim_us > b.total_sim_us;
              }
              return a.name < b.name;
            });
  return stats;
}

FanOutStats TraceDag::FanOut() const {
  FanOutStats stats;
  stats.spans = spans_.size();
  for (const SpanRecord& span : spans_) {
    const auto it = children_.find(span.id);
    const size_t degree = it == children_.end() ? 0 : it->second.size();
    stats.edges += degree;
    if (degree == 0) ++stats.leaves;
    if (degree > stats.max_out_degree) {
      stats.max_out_degree = degree;
      stats.max_out_degree_span = span.id;
    }
  }
  stats.mean_out_degree =
      stats.spans == 0
          ? 0.0
          : static_cast<double>(stats.edges) / static_cast<double>(stats.spans);
  return stats;
}

void WriteChromeTrace(const std::vector<SpanRecord>& spans, std::ostream& out,
                      bool use_sim_time) {
  // One Chrome "process" per node label so Perfetto groups tracks by role.
  std::map<std::string, uint64_t> pid_of;
  for (const SpanRecord& span : spans) {
    pid_of.emplace(span.node, 0);
  }
  uint64_t next_pid = 1;
  for (auto& [node, pid] : pid_of) pid = next_pid++;

  std::map<uint64_t, const SpanRecord*> by_id;
  for (const SpanRecord& span : spans) by_id[span.id] = &span;

  const auto usable = [&](const SpanRecord& span) {
    if (span.wall_end_ns == 0) return false;  // never closed
    return !use_sim_time || span.has_sim;
  };
  const auto start_ts = [&](const SpanRecord& span) -> uint64_t {
    return use_sim_time ? static_cast<uint64_t>(span.sim_start)
                        : span.wall_start_ns / 1000;
  };
  const auto end_ts = [&](const SpanRecord& span) -> uint64_t {
    return use_sim_time ? static_cast<uint64_t>(span.sim_end)
                        : span.wall_end_ns / 1000;
  };

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&]() -> std::ostream& {
    out << (first ? "\n" : ",\n");
    first = false;
    return out;
  };

  for (const auto& [node, pid] : pid_of) {
    sep() << "{\"ph\":\"M\",\"pid\":" << pid
          << ",\"name\":\"process_name\",\"args\":{\"name\":\""
          << EscapeJson(node.empty() ? "(unlabeled)" : node) << "\"}}";
  }

  for (const SpanRecord& span : spans) {
    if (!usable(span)) continue;
    const uint64_t ts = start_ts(span);
    const uint64_t dur = end_ts(span) >= ts ? end_ts(span) - ts : 0;
    sep() << "{\"ph\":\"X\",\"pid\":" << pid_of.at(span.node)
          << ",\"tid\":" << span.thread << ",\"ts\":" << ts
          << ",\"dur\":" << dur << ",\"name\":\"" << EscapeJson(span.name)
          << "\",\"cat\":\"span\",\"args\":{\"id\":" << span.id
          << ",\"parent\":" << span.parent << ",\"trace\":" << span.trace_id
          << "}}";
  }

  // Flow arrows: cross-node parent edges and all link edges.
  uint64_t flow_id = 0;
  for (const SpanRecord& span : spans) {
    if (!usable(span)) continue;
    std::vector<uint64_t> sources;
    if (span.parent != 0) {
      const auto it = by_id.find(span.parent);
      if (it != by_id.end() && it->second->node != span.node) {
        sources.push_back(span.parent);
      }
    }
    for (uint64_t link : span.links) {
      if (link != span.parent) sources.push_back(link);
    }
    for (uint64_t source_id : sources) {
      const auto it = by_id.find(source_id);
      if (it == by_id.end() || !usable(*it->second)) continue;
      const SpanRecord& source = *it->second;
      ++flow_id;
      sep() << "{\"ph\":\"s\",\"pid\":" << pid_of.at(source.node)
            << ",\"tid\":" << source.thread << ",\"ts\":" << start_ts(source)
            << ",\"id\":" << flow_id
            << ",\"name\":\"causal\",\"cat\":\"causal\"}";
      sep() << "{\"ph\":\"f\",\"bp\":\"e\",\"pid\":" << pid_of.at(span.node)
            << ",\"tid\":" << span.thread << ",\"ts\":" << start_ts(span)
            << ",\"id\":" << flow_id
            << ",\"name\":\"causal\",\"cat\":\"causal\"}";
    }
  }

  out << "\n]}\n";
}

}  // namespace pds2::obs
