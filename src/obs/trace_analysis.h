#ifndef PDS2_OBS_TRACE_ANALYSIS_H_
#define PDS2_OBS_TRACE_ANALYSIS_H_

#include <cstdint>
#include <istream>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace pds2::obs {

/// Parses the one-object-per-line span export written by
/// Tracer::WriteJsonLines back into SpanRecords. Returns false and sets
/// `*error` (if non-null) on the first malformed line; blank lines are
/// skipped. Only the fields the exporter emits are understood — this is a
/// schema check as much as a loader, and scripts/check_trace_schema.py
/// validates the same schema from the outside.
bool ParseSpanJsonLines(std::istream& in, std::vector<SpanRecord>* out,
                        std::string* error);

/// One step of a critical path, innermost cause last.
struct CriticalPathStep {
  uint64_t id = 0;
  std::string name;
  std::string node;
  common::SimTime sim_start = 0;
  common::SimTime sim_end = 0;
  uint64_t wall_dur_ns = 0;
  /// Sim time this step is "charged": its sim_end minus the previous
  /// step's sim_end (the path-local latency contribution).
  common::SimTime charged_sim_us = 0;
};

/// Per-span-name latency attribution over a set of spans.
struct StageStat {
  std::string name;
  size_t count = 0;
  uint64_t total_wall_ns = 0;
  uint64_t max_wall_ns = 0;
  common::SimTime total_sim_us = 0;  // spans without sim time contribute 0
  common::SimTime max_sim_us = 0;
};

/// Fan-out shape of the causal DAG (children = parent edges + links).
struct FanOutStats {
  size_t spans = 0;
  size_t edges = 0;
  size_t leaves = 0;
  size_t max_out_degree = 0;
  uint64_t max_out_degree_span = 0;  // span id with the widest fan-out
  double mean_out_degree = 0.0;
};

/// In-memory causal DAG over exported spans. Edges are the tree parent
/// (SpanRecord::parent) plus every link (SpanRecord::links); components,
/// descendants and critical paths all follow both edge kinds, so a
/// block-apply span linked to a tx-submit span is causally downstream of
/// it even though its tree parent is the validator's delivery span.
class TraceDag {
 public:
  explicit TraceDag(std::vector<SpanRecord> spans);

  const std::vector<SpanRecord>& spans() const { return spans_; }
  size_t size() const { return spans_.size(); }

  /// Record by span id (nullptr if unknown).
  const SpanRecord* Get(uint64_t id) const;

  /// First span (lowest id) with this name, nullptr if none.
  const SpanRecord* Find(const std::string& name) const;

  /// Causal children of `id`: spans whose parent or links include it,
  /// ascending by id.
  std::vector<uint64_t> Children(uint64_t id) const;

  /// Ids of spans with no causal parent present in the set, ascending.
  std::vector<uint64_t> Roots() const;

  /// Number of weakly connected components (a fully stitched run has 1
  /// per workload).
  size_t NumComponents() const;

  /// All span ids weakly connected to `id` (including itself), ascending.
  std::vector<uint64_t> Component(uint64_t id) const;

  /// Distinct non-empty node labels in `id`'s component, sorted — the
  /// roles a trace spans ("executor/e0", "provider/alice", "validator/0").
  std::vector<std::string> NodesInComponent(uint64_t id) const;

  /// Ids causally downstream of `root` (including it), ascending.
  std::vector<uint64_t> Descendants(uint64_t root) const;

  /// Sim-time critical path from `root`: walks causal predecessor edges
  /// back from the descendant with the largest sim_end, so the returned
  /// chain explains when the slowest effect of `root` completed. Steps are
  /// ordered root first; charged_sim_us attributes each step's marginal
  /// latency. Empty if `root` is unknown. Ties break toward larger span
  /// ids (the later, deeper span), keeping the path deterministic for
  /// seeded runs.
  std::vector<CriticalPathStep> CriticalPathSim(uint64_t root) const;

  /// Per-name latency attribution over the whole span set, sorted by
  /// descending total sim time then name.
  std::vector<StageStat> StageStats() const;

  FanOutStats FanOut() const;

 private:
  std::vector<SpanRecord> spans_;
  std::map<uint64_t, size_t> index_;               // id -> spans_ index
  std::map<uint64_t, std::vector<uint64_t>> children_;  // causal edges
};

/// Writes spans as a Chrome trace_event JSON document (catapult / Perfetto
/// "traceEvents" array): one complete ("ph":"X") event per finished span,
/// one process per node label, plus flow arrows ("s"/"f") for every
/// cross-node parent edge and every link. With `use_sim_time` timestamps
/// are simulated microseconds; otherwise wall-clock microseconds.
void WriteChromeTrace(const std::vector<SpanRecord>& spans, std::ostream& out,
                      bool use_sim_time);

}  // namespace pds2::obs

#endif  // PDS2_OBS_TRACE_ANALYSIS_H_
