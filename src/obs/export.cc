#include "obs/export.h"

#include <cctype>

namespace pds2::obs {

namespace {

// Metric names are dotted identifiers chosen at the call sites; escaping
// quotes/backslashes anyway keeps the emitted JSON well-formed for any name.
std::string EscapeJson(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

void WriteHistogramFieldsJson(const HistogramSummary& summary,
                              std::ostream& out) {
  out << "\"count\":" << summary.count << ",\"sum\":" << summary.sum
      << ",\"min\":" << summary.min << ",\"p50\":" << summary.p50
      << ",\"p90\":" << summary.p90 << ",\"p99\":" << summary.p99
      << ",\"max\":" << summary.max;
}

}  // namespace

std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    out += ok ? c : '_';
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

void WriteSnapshotJsonLines(const Snapshot& snapshot, std::ostream& out) {
  for (const auto& [name, value] : snapshot.counters) {
    out << "{\"type\":\"counter\",\"name\":\"" << EscapeJson(name)
        << "\",\"value\":" << value << "}\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out << "{\"type\":\"gauge\",\"name\":\"" << EscapeJson(name)
        << "\",\"value\":" << value << "}\n";
  }
  for (const auto& [name, summary] : snapshot.histograms) {
    out << "{\"type\":\"histogram\",\"name\":\"" << EscapeJson(name) << "\",";
    WriteHistogramFieldsJson(summary, out);
    out << "}\n";
  }
}

void WriteSnapshotJson(const Snapshot& snapshot, std::ostream& out) {
  out << "{\n  \"counters\": {";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    const auto& [name, value] = snapshot.counters[i];
    out << (i == 0 ? "\n" : ",\n") << "    \"" << EscapeJson(name)
        << "\": " << value;
  }
  out << "\n  },\n  \"gauges\": {";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const auto& [name, value] = snapshot.gauges[i];
    out << (i == 0 ? "\n" : ",\n") << "    \"" << EscapeJson(name)
        << "\": " << value;
  }
  out << "\n  },\n  \"histograms\": {";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& [name, summary] = snapshot.histograms[i];
    out << (i == 0 ? "\n" : ",\n") << "    \"" << EscapeJson(name) << "\": {";
    WriteHistogramFieldsJson(summary, out);
    out << "}";
  }
  out << "\n  }\n}\n";
}

void WriteSnapshotPrometheus(const Snapshot& snapshot, std::ostream& out) {
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = PrometheusName(name);
    out << "# TYPE " << prom << " counter\n" << prom << " " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PrometheusName(name);
    out << "# TYPE " << prom << " gauge\n" << prom << " " << value << "\n";
  }
  for (const auto& [name, summary] : snapshot.histograms) {
    const std::string prom = PrometheusName(name);
    out << "# TYPE " << prom << " summary\n";
    out << prom << "{quantile=\"0.5\"} " << summary.p50 << "\n";
    out << prom << "{quantile=\"0.9\"} " << summary.p90 << "\n";
    out << prom << "{quantile=\"0.99\"} " << summary.p99 << "\n";
    out << prom << "_sum " << summary.sum << "\n";
    out << prom << "_count " << summary.count << "\n";
  }
}

}  // namespace pds2::obs
