#ifndef PDS2_OBS_HEALTH_RULES_H_
#define PDS2_OBS_HEALTH_RULES_H_

#include <string>
#include <vector>

#include "obs/health.h"

/// Default health rule packs, one per instrumented subsystem. Each pack
/// only references metrics that subsystem already publishes; the
/// HealthMonitor skips rules whose series are absent, so registering every
/// pack on a run that exercises one subsystem is safe and a fault-free
/// seeded run fires nothing.
///
/// Rules deliberately avoid thread-count-dependent series (chain.parallel.*,
/// pool.*, chain.sig_cache_hits): alert streams must be bit-identical when
/// the same seeded run executes on 1 vs N pool threads.
namespace pds2::obs::rules {

/// Chain: supply conservation (circulating + staked + burned == genesis,
/// gauges published by Chain after every commit), block rejections, and
/// mempool saturation against the admission cap.
inline std::vector<HealthRule> ChainRules(
    double mempool_depth_bound = 60000.0) {
  std::vector<HealthRule> pack;
  pack.push_back(InvariantRule(
      "chain.supply-conservation", Severity::kCritical,
      [](const TimeSeries& ts) {
        InvariantResult r;
        const auto circulating = ts.Latest("chain.supply.circulating");
        const auto staked = ts.Latest("chain.supply.staked");
        const auto burned = ts.Latest("chain.supply.burned");
        const auto genesis = ts.Latest("chain.supply.genesis");
        if (!circulating || !staked || !burned || !genesis || *genesis <= 0) {
          return r;  // chain not instrumented in this run
        }
        r.observed = *circulating + *staked + *burned;
        r.bound = *genesis;
        r.ok = r.observed == r.bound;
        if (!r.ok) r.detail = "balances+stakes+burned != genesis mint";
        return r;
      }));
  pack.push_back(ThresholdRule("chain.blocks-rejected", Severity::kWarning,
                               "chain.blocks_rejected", Comparison::kGt, 0.0));
  pack.push_back(ThresholdRule("chain.mempool-saturated", Severity::kWarning,
                               "chain.mempool.depth", Comparison::kGt,
                               mempool_depth_bound));
  pack.push_back(ThresholdRule("chain.mempool-evicting", Severity::kInfo,
                               "chain.mempool.evicted_below_floor",
                               Comparison::kGt, 0.0));
  return pack;
}

/// P2P validator network: equivocation evidence is critical (a slashing
/// condition was observed); sustained sync retries mean peers cannot catch
/// up faster than they fall behind.
inline std::vector<HealthRule> P2pRules(
    double sync_retry_rate_per_sec = 50.0) {
  std::vector<HealthRule> pack;
  pack.push_back(ThresholdRule("p2p.equivocation-detected",
                               Severity::kCritical, "p2p.evidence.detected",
                               Comparison::kGt, 0.0));
  pack.push_back(ThresholdRule("p2p.blocks-rejected", Severity::kWarning,
                               "p2p.blocks_rejected", Comparison::kGt, 0.0));
  pack.push_back(RateRule("p2p.sync-retry-storm", Severity::kWarning,
                          "p2p.sync_retries", /*window=*/8, Comparison::kGt,
                          sync_retry_rate_per_sec));
  return pack;
}

/// Marketplace: lifecycle fault counters that stay zero on a healthy run.
/// Substitution verify failures are critical — a cached artifact that does
/// not match its chain-anchored hash is a store integrity breach.
inline std::vector<HealthRule> MarketRules() {
  std::vector<HealthRule> pack;
  pack.push_back(ThresholdRule("market.substitution-verify-failure",
                               Severity::kCritical,
                               "market.substitution_verify_failures",
                               Comparison::kGt, 0.0));
  pack.push_back(ThresholdRule("market.executor-dropped", Severity::kWarning,
                               "market.executors_dropped", Comparison::kGt,
                               0.0));
  pack.push_back(ThresholdRule("market.attestation-fault", Severity::kWarning,
                               "market.attestation_faults_reported",
                               Comparison::kGt, 0.0));
  pack.push_back(ThresholdRule("market.workload-aborted", Severity::kWarning,
                               "market.workloads_aborted", Comparison::kGt,
                               0.0));
  pack.push_back(ThresholdRule("market.executor-slashed", Severity::kWarning,
                               "market.executors_slashed", Comparison::kGt,
                               0.0));
  return pack;
}

/// DML / NetSim: link corruption and partition drops are injected-fault
/// tells; gossip convergence lag is an absence rule — merges must keep
/// happening while the network is still delivering traffic.
inline std::vector<HealthRule> DmlRules(size_t gossip_stall_samples = 8) {
  std::vector<HealthRule> pack;
  pack.push_back(ThresholdRule("dml.corruption-observed", Severity::kWarning,
                               "dml.net.messages_corrupted", Comparison::kGt,
                               0.0));
  pack.push_back(ThresholdRule("dml.partition-active", Severity::kWarning,
                               "dml.net.partition_drops", Comparison::kGt,
                               0.0));
  pack.push_back(AbsenceRule("dml.gossip-stalled", Severity::kWarning,
                             "dml.gossip.merges", gossip_stall_samples,
                             /*activity_series=*/"dml.net.messages_sent"));
  return pack;
}

/// Store: a chunk failing its content-address re-hash is critical (data
/// integrity); corrupt discovery messages are expected only under injected
/// corruption.
inline std::vector<HealthRule> StoreRules() {
  std::vector<HealthRule> pack;
  pack.push_back(ThresholdRule("store.verification-failure",
                               Severity::kCritical,
                               "store.corrupt_chunks_rejected",
                               Comparison::kGt, 0.0));
  pack.push_back(ThresholdRule("store.discovery-corrupt", Severity::kWarning,
                               "store.discovery.corrupt_messages_dropped",
                               Comparison::kGt, 0.0));
  return pack;
}

/// Every subsystem's defaults in one call (what tools and benches use).
inline std::vector<HealthRule> DefaultRules() {
  std::vector<HealthRule> all;
  for (auto pack : {ChainRules(), P2pRules(), MarketRules(), DmlRules(),
                    StoreRules()}) {
    for (HealthRule& rule : pack) all.push_back(std::move(rule));
  }
  return all;
}

}  // namespace pds2::obs::rules

#endif  // PDS2_OBS_HEALTH_RULES_H_
