#include "obs/health.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>

#include "common/logging.h"
#include "obs/flight_recorder.h"

namespace pds2::obs {

namespace {

std::string EscapeJson(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

void HashMix(uint64_t* h, uint64_t v) {
  // FNV-1a over the value's 8 bytes.
  for (int i = 0; i < 8; ++i) {
    *h ^= (v >> (i * 8)) & 0xff;
    *h *= 1099511628211ull;
  }
}

void HashMixString(uint64_t* h, const std::string& s) {
  for (unsigned char c : s) {
    *h ^= c;
    *h *= 1099511628211ull;
  }
  HashMix(h, s.size());
}

uint64_t DoubleBits(double v) {
  // Canonicalize -0.0 so digests do not depend on how a zero was produced.
  if (v == 0.0) v = 0.0;
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kCritical:
      return "critical";
  }
  return "?";
}

const char* ComparisonName(Comparison cmp) {
  switch (cmp) {
    case Comparison::kGt:
      return ">";
    case Comparison::kGe:
      return ">=";
    case Comparison::kLt:
      return "<";
    case Comparison::kLe:
      return "<=";
    case Comparison::kEq:
      return "==";
    case Comparison::kNe:
      return "!=";
  }
  return "?";
}

bool Compare(double lhs, Comparison cmp, double rhs) {
  switch (cmp) {
    case Comparison::kGt:
      return lhs > rhs;
    case Comparison::kGe:
      return lhs >= rhs;
    case Comparison::kLt:
      return lhs < rhs;
    case Comparison::kLe:
      return lhs <= rhs;
    case Comparison::kEq:
      return lhs == rhs;
    case Comparison::kNe:
      return lhs != rhs;
  }
  return false;
}

HealthRule ThresholdRule(std::string id, Severity severity, std::string series,
                         Comparison cmp, double bound) {
  HealthRule rule;
  rule.id = std::move(id);
  rule.kind = HealthRule::Kind::kThreshold;
  rule.severity = severity;
  rule.series = std::move(series);
  rule.cmp = cmp;
  rule.bound = bound;
  return rule;
}

HealthRule RateRule(std::string id, Severity severity, std::string series,
                    size_t window, Comparison cmp, double bound_per_second) {
  HealthRule rule;
  rule.id = std::move(id);
  rule.kind = HealthRule::Kind::kRate;
  rule.severity = severity;
  rule.series = std::move(series);
  rule.window = window;
  rule.cmp = cmp;
  rule.bound = bound_per_second;
  return rule;
}

HealthRule AbsenceRule(std::string id, Severity severity, std::string series,
                       size_t max_stale_samples, std::string activity_series) {
  HealthRule rule;
  rule.id = std::move(id);
  rule.kind = HealthRule::Kind::kAbsence;
  rule.severity = severity;
  rule.series = std::move(series);
  rule.max_stale_samples = max_stale_samples;
  rule.activity_series = std::move(activity_series);
  return rule;
}

HealthRule InvariantRule(
    std::string id, Severity severity,
    std::function<InvariantResult(const TimeSeries&)> invariant) {
  HealthRule rule;
  rule.id = std::move(id);
  rule.kind = HealthRule::Kind::kInvariant;
  rule.severity = severity;
  rule.invariant = std::move(invariant);
  return rule;
}

HealthMonitor::HealthMonitor(const TimeSeries* ts, HealthConfig config)
    : ts_(ts), config_(config) {
  if (config_.min_consecutive == 0) config_.min_consecutive = 1;
}

void HealthMonitor::AddRule(HealthRule rule) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.push_back(std::move(rule));
  states_.emplace_back();
}

void HealthMonitor::AddRules(std::vector<HealthRule> rules) {
  std::lock_guard<std::mutex> lock(mu_);
  for (HealthRule& rule : rules) {
    rules_.push_back(std::move(rule));
    states_.emplace_back();
  }
}

size_t HealthMonitor::RuleCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rules_.size();
}

HealthMonitor::Check HealthMonitor::EvaluateRuleLocked(
    const HealthRule& rule) const {
  Check check;
  switch (rule.kind) {
    case HealthRule::Kind::kThreshold: {
      const auto value = ts_->Latest(rule.series);
      if (!value) return check;
      check.applicable = true;
      check.observed = *value;
      check.bound = rule.bound;
      check.bad = Compare(*value, rule.cmp, rule.bound);
      return check;
    }
    case HealthRule::Kind::kRate: {
      const auto rate = ts_->RatePerSecond(rule.series, rule.window);
      if (!rate) return check;  // needs >= 2 samples with a time span
      check.applicable = true;
      check.observed = *rate;
      check.bound = rule.bound;
      check.bad = Compare(*rate, rule.cmp, rule.bound);
      return check;
    }
    case HealthRule::Kind::kAbsence: {
      const auto stale = ts_->SamplesSinceChange(rule.series);
      if (!stale) return check;
      if (!rule.activity_series.empty()) {
        // Only meaningful while the gating signal is moving: a quiesced
        // system is allowed to have a flat series.
        const auto activity =
            ts_->Delta(rule.activity_series, rule.max_stale_samples);
        if (!activity || *activity <= 0.0) return check;
      }
      check.applicable = true;
      check.observed = static_cast<double>(*stale);
      check.bound = static_cast<double>(rule.max_stale_samples);
      check.bad = *stale > rule.max_stale_samples;
      return check;
    }
    case HealthRule::Kind::kInvariant: {
      if (!rule.invariant) return check;
      InvariantResult result = rule.invariant(*ts_);
      check.applicable = true;
      check.observed = result.observed;
      check.bound = result.bound;
      check.bad = !result.ok;
      check.detail = std::move(result.detail);
      return check;
    }
  }
  return check;
}

void HealthMonitor::EmitLocked(const HealthRule& rule, const RuleState& state,
                               bool fired, const Check& check,
                               size_t sample_index,
                               const TimeSeries::SampleInfo& info) {
  AlertEvent event;
  event.rule_id = rule.id;
  event.severity = rule.severity;
  event.fired = fired;
  event.sample_index = sample_index;
  event.first_bad_sample = state.first_bad_sample;
  event.wall_ns = info.wall_ns;
  event.has_sim = info.has_sim;
  event.sim_us = info.sim_us;
  event.observed = check.observed;
  event.bound = check.bound;
  event.detail = check.detail;
  events_.push_back(std::move(event));
  if (events_.size() > config_.max_events) {
    events_.erase(events_.begin(),
                  events_.begin() +
                      static_cast<ptrdiff_t>(events_.size() -
                                             config_.max_events));
  }

  if (fired) {
    ++fires_;
    PDS2_M_COUNT("obs.health.alerts_fired", 1);
    if (rule.severity >= Severity::kCritical) {
      PDS2_M_COUNT("obs.health.alerts_critical", 1);
      PDS2_LOG(kError)
          .Field("rule", rule.id)
          .Field("severity", SeverityName(rule.severity))
          .Field("observed", check.observed)
          .Field("bound", check.bound)
          .Field("first_bad_sample", state.first_bad_sample)
          << "health alert fired: " << rule.id << " (observed "
          << check.observed << " vs bound " << check.bound << ")";
    } else {
      PDS2_LOG(kWarn)
          .Field("rule", rule.id)
          .Field("severity", SeverityName(rule.severity))
          .Field("observed", check.observed)
          .Field("bound", check.bound)
          .Field("first_bad_sample", state.first_bad_sample)
          << "health alert fired: " << rule.id << " (observed "
          << check.observed << " vs bound " << check.bound << ")";
    }
    if (rule.severity >= Severity::kCritical && config_.dump_on_critical) {
      FlightRecorder::Global().Note("health alert: " + rule.id, info.has_sim,
                                    info.sim_us);
      FlightRecorder::Global().DumpNow("alert-" + rule.id);
    }
  } else {
    PDS2_M_COUNT("obs.health.alerts_resolved", 1);
    PDS2_LOG(kInfo) << "health alert resolved: " << rule.id;
  }
}

size_t HealthMonitor::EvaluateLatest() {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t samples = ts_->SampleCount();
  if (samples == 0 || samples == evaluated_through_) return 0;
  evaluated_through_ = samples;
  const size_t sample_index = samples - 1;
  const auto info_opt = ts_->InfoAt(sample_index);
  const TimeSeries::SampleInfo info =
      info_opt ? *info_opt : TimeSeries::SampleInfo{};

  size_t emitted = 0;
  for (size_t i = 0; i < rules_.size(); ++i) {
    const HealthRule& rule = rules_[i];
    RuleState& state = states_[i];
    const Check check = EvaluateRuleLocked(rule);
    const bool bad = check.applicable && check.bad;
    if (bad) {
      if (state.bad_streak == 0) state.first_bad_sample = sample_index;
      ++state.bad_streak;
      if (!state.active && state.bad_streak >= config_.min_consecutive) {
        state.active = true;
        EmitLocked(rule, state, /*fired=*/true, check, sample_index, info);
        ++emitted;
      }
    } else {
      state.bad_streak = 0;
      if (state.active) {
        state.active = false;
        EmitLocked(rule, state, /*fired=*/false, check, sample_index, info);
        ++emitted;
      }
    }
  }
  return emitted;
}

std::vector<AlertEvent> HealthMonitor::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::vector<std::string> HealthMonitor::ActiveAlerts() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> active;
  for (size_t i = 0; i < rules_.size(); ++i) {
    if (states_[i].active) active.push_back(rules_[i].id);
  }
  return active;
}

std::vector<std::string> HealthMonitor::FiredRuleIds() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::set<std::string> ids;
  for (const AlertEvent& event : events_) {
    if (event.fired) ids.insert(event.rule_id);
  }
  return {ids.begin(), ids.end()};
}

uint64_t HealthMonitor::FireCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fires_;
}

uint64_t HealthMonitor::EventsDigest() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (const AlertEvent& event : events_) {
    HashMixString(&h, event.rule_id);
    HashMix(&h, event.fired ? 1 : 0);
    HashMix(&h, event.sample_index);
    HashMix(&h, event.first_bad_sample);
    HashMix(&h, event.has_sim ? event.sim_us : 0);
    HashMix(&h, DoubleBits(event.observed));
    HashMix(&h, DoubleBits(event.bound));
  }
  return h;
}

void HealthMonitor::WriteJsonLines(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const AlertEvent& event : events_) {
    out << "{\"type\":\"alert\",\"rule\":\"" << EscapeJson(event.rule_id)
        << "\",\"severity\":\"" << SeverityName(event.severity)
        << "\",\"fired\":" << (event.fired ? "true" : "false")
        << ",\"sample\":" << event.sample_index
        << ",\"first_bad\":" << event.first_bad_sample
        << ",\"wall_ns\":" << event.wall_ns;
    if (event.has_sim) out << ",\"sim_us\":" << event.sim_us;
    out << ",\"observed\":" << event.observed
        << ",\"bound\":" << event.bound;
    if (!event.detail.empty()) {
      out << ",\"detail\":\"" << EscapeJson(event.detail) << "\"";
    }
    out << "}\n";
  }
}

void HealthMonitor::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  fires_ = 0;
  evaluated_through_ = 0;
  for (RuleState& state : states_) state = RuleState{};
}

}  // namespace pds2::obs
