#ifndef PDS2_OBS_METRICS_H_
#define PDS2_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

/// PDS2_METRICS=0 (cmake -DPDS2_METRICS=OFF) compiles every PDS2_M_* /
/// PDS2_TRACE_* instrumentation macro down to nothing. The obs library and
/// its direct API stay available either way; only the macro call sites in
/// hot paths disappear.
#ifndef PDS2_METRICS
#define PDS2_METRICS 1
#endif

namespace pds2::obs {

/// Process-wide runtime switch gating every PDS2_M_* macro. When false, an
/// instrumented hot path pays exactly one relaxed atomic load and a
/// predictable branch per macro site — the "disabled path" whose overhead
/// BENCH_observability.json tracks (< 2% on block validation by budget).
inline std::atomic<bool> g_metrics_enabled{false};

inline bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}
inline void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

namespace internal_metrics {
/// Stable small index for the calling thread, used to spread counter
/// traffic across shards. Assigned on first use, round-robin.
size_t ThisThreadIndex();
}  // namespace internal_metrics

/// Monotonic event counter, sharded across cache lines so concurrent
/// ThreadPool workers never contend on one atomic. Reads sum the shards
/// (racy-but-consistent snapshot semantics: a concurrent Add may or may not
/// be included, never torn).
class Counter {
 public:
  static constexpr size_t kShards = 8;

  void Add(uint64_t delta = 1) {
    shards_[internal_metrics::ThisThreadIndex() % kShards].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Shard& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  Shard shards_[kShards];
};

/// Point-in-time signed value (queue depths, pool utilization).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log-linear-bucket histogram over uint64 values (HdrHistogram-style):
/// each power-of-two range is split into kSubBuckets linear sub-buckets, so
/// any recorded value lands in a bucket whose width is at most value /
/// kSubBuckets — quantile queries carry a bounded relative error of
/// 1 / (2 * kSubBuckets) ≈ 1.6% while the whole uint64 range fits in
/// kNumBuckets fixed slots. Observe() is two relaxed atomic adds plus a
/// bit-scan; safe under any number of concurrent writers.
class Histogram {
 public:
  static constexpr size_t kSubBucketBits = 5;
  static constexpr size_t kSubBuckets = size_t{1} << kSubBucketBits;  // 32
  static constexpr size_t kNumBuckets = kSubBuckets * (64 - kSubBucketBits + 1);

  Histogram() : buckets_(kNumBuckets) {}

  void Observe(uint64_t value) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const {
    const uint64_t n = Count();
    return n == 0 ? 0.0 : static_cast<double>(Sum()) / static_cast<double>(n);
  }

  /// Representative value (bucket midpoint) at quantile q in [0, 1]. 0 when
  /// empty. The estimate is within 1/(2*kSubBuckets) relative error of the
  /// exact order statistic for values >= kSubBuckets, exact below that.
  uint64_t ValueAtQuantile(double q) const;

  /// Smallest / largest non-empty bucket's representative value (0 if empty).
  uint64_t Min() const;
  uint64_t Max() const;

  void Reset();

  /// Index of the bucket holding `value`.
  static size_t BucketIndex(uint64_t value) {
    if (value < kSubBuckets) return static_cast<size_t>(value);
    const int top = 63 - std::countl_zero(value);  // >= kSubBucketBits
    const size_t group = static_cast<size_t>(top) - kSubBucketBits + 1;
    const size_t sub = static_cast<size_t>(
        (value >> (static_cast<size_t>(top) - kSubBucketBits)) - kSubBuckets);
    return group * kSubBuckets + sub;
  }

  /// Inclusive lower bound of bucket `index`.
  static uint64_t BucketLowerBound(size_t index) {
    const size_t group = index / kSubBuckets;
    const size_t sub = index % kSubBuckets;
    if (group == 0) return sub;
    return static_cast<uint64_t>(kSubBuckets + sub) << (group - 1);
  }

  /// Midpoint used as the bucket's representative value.
  static uint64_t BucketMidpoint(size_t index) {
    const size_t group = index / kSubBuckets;
    if (group == 0) return BucketLowerBound(index);
    const uint64_t width = uint64_t{1} << (group - 1);
    return BucketLowerBound(index) + width / 2;
  }

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::vector<std::atomic<uint64_t>> buckets_;
};

/// Read-only summary of one histogram, as captured in a Snapshot.
struct HistogramSummary {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;
  uint64_t max = 0;
};

/// Point-in-time copy of every metric in a registry, sorted by name.
struct Snapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSummary>> histograms;
};

/// Named-metric registry. Get* returns a reference that stays valid for the
/// registry's lifetime (metrics are never removed; ResetValues zeroes them
/// in place), so hot paths can cache the handle — which is exactly what the
/// PDS2_M_* macros do with a function-local static. Creation takes a mutex;
/// updates through the returned handles are lock-free.
///
/// Cardinality guard: dynamically named series (per-shard mempool depths,
/// per-node labels at 10^5-node scale) could otherwise grow the maps
/// without bound. Once a kind's map reaches the cap, Get* for a NEW name
/// returns that kind's shared overflow sink instead of allocating, and the
/// "obs.metrics.dropped_series" counter records the spill. Existing names
/// — including every statically named metric created before the flood —
/// keep their own handles.
class Registry {
 public:
  /// Default cap on distinct series per metric kind.
  static constexpr size_t kDefaultMaxSeries = 4096;

  Registry();

  /// The process-wide registry every PDS2_M_* macro records into.
  static Registry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  Snapshot TakeSnapshot() const;

  /// Zeroes every metric, keeping all handles valid (per-run isolation for
  /// tests and benches).
  void ResetValues();

  /// Adjusts the per-kind cardinality cap (names already registered stay).
  void SetMaxSeries(size_t max_series);
  size_t MaxSeries() const;
  /// Series turned away by the cap so far (also published as the
  /// "obs.metrics.dropped_series" counter).
  uint64_t DroppedSeries() const;

 private:
  mutable std::mutex mu_;
  size_t max_series_ = kDefaultMaxSeries;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  // Overflow sinks + spill counter, created eagerly in the constructor so
  // they exist below any cap and Get* never recurses.
  Counter* overflow_counter_ = nullptr;
  Gauge* overflow_gauge_ = nullptr;
  Histogram* overflow_histogram_ = nullptr;
  Counter* dropped_series_ = nullptr;
};

}  // namespace pds2::obs

// ---------------------------------------------------------------------------
// Instrumentation macros. `name` must be a string literal; the metric handle
// is resolved once per call site (function-local static) and the whole body
// is skipped — one relaxed load, one branch — while metrics are disabled.
// ---------------------------------------------------------------------------

#if PDS2_METRICS

#define PDS2_M_COUNT(name, delta)                                     \
  do {                                                                \
    if (::pds2::obs::MetricsEnabled()) {                              \
      static ::pds2::obs::Counter& pds2_m_counter =                   \
          ::pds2::obs::Registry::Global().GetCounter(name);           \
      pds2_m_counter.Add(static_cast<uint64_t>(delta));               \
    }                                                                 \
  } while (0)

#define PDS2_M_GAUGE_ADD(name, delta)                                 \
  do {                                                                \
    if (::pds2::obs::MetricsEnabled()) {                              \
      static ::pds2::obs::Gauge& pds2_m_gauge =                       \
          ::pds2::obs::Registry::Global().GetGauge(name);             \
      pds2_m_gauge.Add(static_cast<int64_t>(delta));                  \
    }                                                                 \
  } while (0)

#define PDS2_M_GAUGE_SET(name, value)                                 \
  do {                                                                \
    if (::pds2::obs::MetricsEnabled()) {                              \
      static ::pds2::obs::Gauge& pds2_m_gauge =                       \
          ::pds2::obs::Registry::Global().GetGauge(name);             \
      pds2_m_gauge.Set(static_cast<int64_t>(value));                  \
    }                                                                 \
  } while (0)

#define PDS2_M_OBSERVE(name, value)                                   \
  do {                                                                \
    if (::pds2::obs::MetricsEnabled()) {                              \
      static ::pds2::obs::Histogram& pds2_m_hist =                    \
          ::pds2::obs::Registry::Global().GetHistogram(name);         \
      pds2_m_hist.Observe(static_cast<uint64_t>(value));              \
    }                                                                 \
  } while (0)

#else  // !PDS2_METRICS

#define PDS2_M_COUNT(name, delta) \
  do {                            \
  } while (0)
#define PDS2_M_GAUGE_ADD(name, delta) \
  do {                                \
  } while (0)
#define PDS2_M_GAUGE_SET(name, value) \
  do {                                \
  } while (0)
#define PDS2_M_OBSERVE(name, value) \
  do {                              \
  } while (0)

#endif  // PDS2_METRICS

#endif  // PDS2_OBS_METRICS_H_
