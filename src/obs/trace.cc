#include "obs/trace.h"

#include <chrono>
#include <utility>

#include "obs/flight_recorder.h"

namespace pds2::obs {

namespace {

// One open-span stack per thread; parent of a new span is the innermost
// still-open span *on the same thread*, or a remote context installed by a
// TraceContextScope. Entries carry the tracer epoch so stale ids left
// behind by a Tracer::Reset are ignored.
struct OpenSpan {
  uint64_t id;
  uint64_t trace_id;
  uint64_t epoch;
  bool remote;  // installed by TraceContextScope; never closed by End()
};
thread_local std::vector<OpenSpan> t_open_spans;
thread_local std::string t_node_label;

std::string EscapeJson(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

uint64_t WallNowNs() {
  static const auto process_epoch = std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - process_epoch)
          .count());
}

const std::string& CurrentNodeLabel() { return t_node_label; }

TraceContext CurrentTraceContext() {
  if (!TracingEnabled()) return {};
  const uint64_t epoch = Tracer::Global().epoch();
  for (size_t i = t_open_spans.size(); i-- > 0;) {
    const OpenSpan& open = t_open_spans[i];
    if (open.epoch != epoch) continue;  // predates a Reset
    return {open.trace_id, open.id, open.epoch};
  }
  return {};
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // never destroyed, like the registry
  return *tracer;
}

uint64_t Tracer::Begin(const char* name, bool has_sim,
                       common::SimTime sim_start) {
  const uint64_t now_ns = WallNowNs();
  const uint64_t epoch = this->epoch();

  uint64_t parent = 0;
  uint64_t trace_id = 0;
  while (!t_open_spans.empty() && t_open_spans.back().epoch != epoch) {
    t_open_spans.pop_back();  // stack predates a Reset
  }
  if (!t_open_spans.empty()) {
    parent = t_open_spans.back().id;
    trace_id = t_open_spans.back().trace_id;
  }

  uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (capacity_ != 0 && records_.size() >= capacity_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      if (dropped_counter_ == nullptr) {
        dropped_counter_ = &Registry::Global().GetCounter("obs.trace.dropped");
      }
      dropped_counter_->Add(1);
      return 0;
    }
    id = static_cast<uint64_t>(records_.size()) + 1;
    if (trace_id == 0) {
      trace_id = next_trace_id_.fetch_add(1, std::memory_order_relaxed);
    }
    SpanRecord record;
    record.id = id;
    record.parent = parent;
    record.trace_id = trace_id;
    record.name = name;
    record.node = t_node_label;
    record.thread =
        static_cast<uint32_t>(internal_metrics::ThisThreadIndex());
    record.wall_start_ns = now_ns;
    record.has_sim = has_sim;
    record.sim_start = sim_start;
    record.sim_end = sim_start;
    records_.push_back(std::move(record));
  }
  t_open_spans.push_back({id, trace_id, epoch, /*remote=*/false});
  FlightRecorder& recorder = FlightRecorder::Global();
  if (recorder.enabled()) {
    recorder.OnSpanBegin(id, name, t_node_label, now_ns, has_sim, sim_start);
  }
  return id;
}

void Tracer::End(uint64_t id, uint64_t epoch, bool has_sim,
                 common::SimTime sim_end) {
  // Pop this span from the thread's open stack. Sequential stage spans that
  // call End() early always sit on top; tolerate out-of-order ends anyway.
  for (size_t i = t_open_spans.size(); i-- > 0;) {
    if (t_open_spans[i].id == id && t_open_spans[i].epoch == epoch &&
        !t_open_spans[i].remote) {
      t_open_spans.erase(t_open_spans.begin() + static_cast<long>(i));
      break;
    }
  }
  if (epoch != this->epoch()) return;  // tracer was Reset since Begin
  const uint64_t now_ns = WallNowNs();
  std::string name;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (id == 0 || id > records_.size()) return;
    SpanRecord& record = records_[id - 1];
    record.wall_end_ns = now_ns;
    if (has_sim && record.has_sim) record.sim_end = sim_end;
    name = record.name;
  }
  FlightRecorder& recorder = FlightRecorder::Global();
  if (recorder.enabled()) {
    recorder.OnSpanEnd(id, name, t_node_label, now_ns, has_sim, sim_end);
  }
}

void Tracer::AddLink(uint64_t id, uint64_t epoch, const TraceContext& ctx) {
  if (id == 0 || !ctx.valid()) return;
  if (epoch != this->epoch() || ctx.epoch != epoch) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (id > records_.size()) return;
  records_[id - 1].links.push_back(ctx.span_id);
}

void Tracer::SetCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity;
}

size_t Tracer::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

uint64_t Tracer::DroppedCount() const {
  return dropped_.load(std::memory_order_relaxed);
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

size_t Tracer::SpanCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

void Tracer::WriteJsonLines(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const SpanRecord& record : records_) {
    if (record.wall_end_ns == 0) continue;  // still open
    out << "{\"id\":" << record.id << ",\"parent\":" << record.parent
        << ",\"trace\":" << record.trace_id
        << ",\"name\":\"" << EscapeJson(record.name) << "\""
        << ",\"node\":\"" << EscapeJson(record.node) << "\""
        << ",\"thread\":" << record.thread;
    if (!record.links.empty()) {
      out << ",\"links\":[";
      for (size_t i = 0; i < record.links.size(); ++i) {
        out << (i == 0 ? "" : ",") << record.links[i];
      }
      out << "]";
    }
    out << ",\"wall_start_ns\":" << record.wall_start_ns
        << ",\"wall_dur_ns\":" << (record.wall_end_ns - record.wall_start_ns);
    if (record.has_sim) {
      out << ",\"sim_start_us\":" << record.sim_start
          << ",\"sim_dur_us\":" << (record.sim_end - record.sim_start);
    }
    out << "}\n";
  }
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
  epoch_.fetch_add(1, std::memory_order_relaxed);
  next_trace_id_.store(1, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

void ScopedSpan::Start(const char* name, bool has_sim,
                       common::SimTime sim_start) {
  if (!TracingEnabled()) return;
  Tracer& tracer = Tracer::Global();
  epoch_ = tracer.epoch();
  has_sim_ = has_sim;
  id_ = tracer.Begin(name, has_sim, sim_start);
  if (id_ != 0) {
    // Begin left this span on top of the thread's open stack.
    trace_id_ = t_open_spans.back().trace_id;
  }
}

void ScopedSpan::End() {
  if (id_ == 0) return;
  common::SimTime sim_end = 0;
  if (has_sim_) {
    if (clock_ != nullptr) {
      sim_end = clock_->Now();
    } else if (sim_now_ != nullptr) {
      sim_end = *sim_now_;
    }
  }
  Tracer::Global().End(id_, epoch_, has_sim_, sim_end);
  id_ = 0;
  trace_id_ = 0;
}

void ScopedSpan::AddLink(const TraceContext& ctx) {
  if (id_ == 0) return;
  Tracer::Global().AddLink(id_, epoch_, ctx);
}

TraceContextScope::TraceContextScope(const TraceContext& ctx) {
  if (!TracingEnabled() || !ctx.valid()) return;
  if (ctx.epoch != Tracer::Global().epoch()) return;  // predates a Reset
  t_open_spans.push_back({ctx.span_id, ctx.trace_id, ctx.epoch,
                          /*remote=*/true});
  installed_ = true;
  span_id_ = ctx.span_id;
  epoch_ = ctx.epoch;
}

TraceContextScope::~TraceContextScope() {
  if (!installed_) return;
  // Normally ours is the top entry (spans opened inside the scope closed
  // before it); tolerate leftovers above it from mismatched early-End use.
  for (size_t i = t_open_spans.size(); i-- > 0;) {
    const OpenSpan& open = t_open_spans[i];
    if (open.remote && open.id == span_id_ && open.epoch == epoch_) {
      t_open_spans.erase(t_open_spans.begin() + static_cast<long>(i));
      return;
    }
  }
}

NodeScope::NodeScope(std::string label) {
  if (!TracingEnabled()) return;
  Install(std::move(label));
}

NodeScope::NodeScope(const char* prefix, const std::string& name) {
  if (!TracingEnabled()) return;
  Install(std::string(prefix) + name);
}

NodeScope::NodeScope(const char* prefix, size_t index) {
  if (!TracingEnabled()) return;
  Install(std::string(prefix) + std::to_string(index));
}

void NodeScope::Install(std::string label) {
  saved_ = std::move(t_node_label);
  t_node_label = std::move(label);
  installed_ = true;
}

NodeScope::~NodeScope() {
  if (!installed_) return;
  t_node_label = std::move(saved_);
}

}  // namespace pds2::obs
