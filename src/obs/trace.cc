#include "obs/trace.h"

#include <chrono>
#include <utility>

namespace pds2::obs {

namespace {

// One open-span stack per thread; parent of a new span is the innermost
// still-open span *on the same thread*. Entries carry the tracer epoch so
// stale ids left behind by a Tracer::Reset are ignored.
struct OpenSpan {
  uint64_t id;
  uint64_t epoch;
};
thread_local std::vector<OpenSpan> t_open_spans;

std::string EscapeJson(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

uint64_t WallNowNs() {
  static const auto process_epoch = std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - process_epoch)
          .count());
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // never destroyed, like the registry
  return *tracer;
}

uint64_t Tracer::Begin(const char* name, bool has_sim,
                       common::SimTime sim_start) {
  const uint64_t now_ns = WallNowNs();
  const uint64_t epoch = this->epoch();

  uint64_t parent = 0;
  while (!t_open_spans.empty() && t_open_spans.back().epoch != epoch) {
    t_open_spans.pop_back();  // stack predates a Reset
  }
  if (!t_open_spans.empty()) parent = t_open_spans.back().id;

  uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = static_cast<uint64_t>(records_.size()) + 1;
    SpanRecord record;
    record.id = id;
    record.parent = parent;
    record.name = name;
    record.thread =
        static_cast<uint32_t>(internal_metrics::ThisThreadIndex());
    record.wall_start_ns = now_ns;
    record.has_sim = has_sim;
    record.sim_start = sim_start;
    record.sim_end = sim_start;
    records_.push_back(std::move(record));
  }
  t_open_spans.push_back({id, epoch});
  return id;
}

void Tracer::End(uint64_t id, uint64_t epoch, bool has_sim,
                 common::SimTime sim_end) {
  // Pop this span from the thread's open stack. Sequential stage spans that
  // call End() early always sit on top; tolerate out-of-order ends anyway.
  for (size_t i = t_open_spans.size(); i-- > 0;) {
    if (t_open_spans[i].id == id && t_open_spans[i].epoch == epoch) {
      t_open_spans.erase(t_open_spans.begin() + static_cast<long>(i));
      break;
    }
  }
  if (epoch != this->epoch()) return;  // tracer was Reset since Begin
  const uint64_t now_ns = WallNowNs();
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id > records_.size()) return;
  SpanRecord& record = records_[id - 1];
  record.wall_end_ns = now_ns;
  if (has_sim && record.has_sim) record.sim_end = sim_end;
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

size_t Tracer::SpanCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

void Tracer::WriteJsonLines(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const SpanRecord& record : records_) {
    if (record.wall_end_ns == 0) continue;  // still open
    out << "{\"id\":" << record.id << ",\"parent\":" << record.parent
        << ",\"name\":\"" << EscapeJson(record.name) << "\""
        << ",\"thread\":" << record.thread
        << ",\"wall_start_ns\":" << record.wall_start_ns
        << ",\"wall_dur_ns\":" << (record.wall_end_ns - record.wall_start_ns);
    if (record.has_sim) {
      out << ",\"sim_start_us\":" << record.sim_start
          << ",\"sim_dur_us\":" << (record.sim_end - record.sim_start);
    }
    out << "}\n";
  }
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
  epoch_.fetch_add(1, std::memory_order_relaxed);
}

void ScopedSpan::Start(const char* name, bool has_sim,
                       common::SimTime sim_start) {
  if (!TracingEnabled()) return;
  Tracer& tracer = Tracer::Global();
  epoch_ = tracer.epoch();
  has_sim_ = has_sim;
  id_ = tracer.Begin(name, has_sim, sim_start);
}

void ScopedSpan::End() {
  if (id_ == 0) return;
  common::SimTime sim_end = 0;
  if (has_sim_) {
    if (clock_ != nullptr) {
      sim_end = clock_->Now();
    } else if (sim_now_ != nullptr) {
      sim_end = *sim_now_;
    }
  }
  Tracer::Global().End(id_, epoch_, has_sim_, sim_end);
  id_ = 0;
}

}  // namespace pds2::obs
