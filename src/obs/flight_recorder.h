#ifndef PDS2_OBS_FLIGHT_RECORDER_H_
#define PDS2_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/sim_clock.h"
#include "obs/metrics.h"

namespace pds2::obs {

/// One event captured by the flight recorder.
struct FlightEntry {
  enum class Kind : uint8_t { kSpanBegin, kSpanEnd, kLog, kNote };
  Kind kind = Kind::kNote;
  uint64_t seq = 0;       // global capture order across threads
  uint32_t thread = 0;    // capturing thread's small index
  uint64_t wall_ns = 0;   // WallNowNs at capture
  uint64_t span_id = 0;   // span events only
  bool has_sim = false;
  common::SimTime sim_us = 0;
  std::string text;  // span name / formatted log line / note
  std::string node;  // NodeScope label at capture time, may be ""
};

/// Crash-survivable "black box": fixed-size per-thread ring buffers of the
/// most recent spans, log lines and notes, plus metric deltas since the
/// recorder was enabled. Recording costs one ring slot write under a
/// per-shard mutex; old entries are overwritten, so memory stays bounded
/// no matter how long the run. DumpNow() serializes everything to a JSON
/// file for post-mortem analysis — it is invoked by common::CrashPoint
/// scripted kills, by dml::FaultInjector node crashes, and by chaos tests
/// on failure, giving the chaos suites an artifact to assert on instead of
/// only exit codes.
class FlightRecorder {
 public:
  static constexpr size_t kShards = 16;
  static constexpr size_t kDefaultCapacityPerShard = 256;

  static FlightRecorder& Global();

  /// Enabling captures a metrics baseline so dumps can report deltas.
  /// Recording is off by default and costs one relaxed load when off.
  void SetEnabled(bool enabled);
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Ring capacity per shard (shard = thread index mod kShards). Applies
  /// on the next Clear/SetEnabled(true).
  void SetCapacityPerShard(size_t capacity);

  /// Directory DumpNow writes into (default "."). Created lazily.
  void SetDumpDir(std::string dir);

  // Capture hooks (called by Tracer, LogDispatch, and user code).
  void OnSpanBegin(uint64_t id, const char* name, const std::string& node,
                   uint64_t wall_ns, bool has_sim, common::SimTime sim_us);
  void OnSpanEnd(uint64_t id, const std::string& name,
                 const std::string& node, uint64_t wall_ns, bool has_sim,
                 common::SimTime sim_us);
  void OnLog(const common::LogRecord& record);
  /// Free-form breadcrumb ("marketplace phase 6 begin", …).
  void Note(std::string text, bool has_sim = false,
            common::SimTime sim_us = 0);

  /// Writes every buffered entry (globally ordered by capture sequence)
  /// plus counter/gauge deltas since enable to
  /// `<dump_dir>/flight-<n>-<reason>.json`. Returns the path, or "" when
  /// the file could not be written. Thread-safe; never throws.
  std::string DumpNow(const std::string& reason);

  /// Serializes the dump JSON to a stream (what DumpNow writes).
  void WriteDump(const std::string& reason, std::ostream& out) const;

  /// Entries in capture order (tests / post-mortem tooling).
  std::vector<FlightEntry> SnapshotEntries() const;

  /// Drops all buffered entries and re-baselines the metric deltas.
  void Clear();

  uint64_t dumps_written() const {
    return dumps_written_.load(std::memory_order_relaxed);
  }
  /// Path of the most recent dump ("" if none since Clear).
  std::string LastDumpPath() const;

 private:
  struct Ring {
    mutable std::mutex mu;
    std::vector<FlightEntry> slots;  // circular once full
    size_t next = 0;
    bool wrapped = false;
  };

  void Record(FlightEntry entry);

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> seq_{0};
  std::atomic<uint64_t> dumps_written_{0};
  Ring rings_[kShards];
  mutable std::mutex config_mu_;
  size_t capacity_ = kDefaultCapacityPerShard;
  std::string dump_dir_ = ".";
  std::string last_dump_path_;
  Snapshot baseline_;  // metrics at SetEnabled(true) / Clear
};

}  // namespace pds2::obs

#endif  // PDS2_OBS_FLIGHT_RECORDER_H_
