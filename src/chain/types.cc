#include "chain/types.h"

#include "common/hex.h"
#include "crypto/sha256.h"

namespace pds2::chain {

Address AddressFromPublicKey(const common::Bytes& public_key) {
  common::Bytes digest = crypto::Sha256::Hash(public_key);
  return Address(digest.begin(), digest.begin() + kAddressSize);
}

Address ContractAddress(const std::string& contract_name,
                        uint64_t instance_id) {
  crypto::Sha256 h;
  h.Update("pds2.contract.address");
  h.Update(contract_name);
  uint8_t id_bytes[8];
  for (int i = 0; i < 8; ++i) id_bytes[i] = static_cast<uint8_t>(instance_id >> (8 * i));
  h.Update(id_bytes, sizeof(id_bytes));
  common::Bytes digest = h.Finish();
  return Address(digest.begin(), digest.begin() + kAddressSize);
}

std::string ShortHex(const common::Bytes& bytes) {
  return common::HexPrefix(bytes, 8) + (bytes.size() > 4 ? "…" : "");
}

}  // namespace pds2::chain
