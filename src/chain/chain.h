#ifndef PDS2_CHAIN_CHAIN_H_
#define PDS2_CHAIN_CHAIN_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "chain/block.h"
#include "chain/contract.h"
#include "chain/gas.h"
#include "chain/mempool.h"
#include "chain/parallel_exec.h"
#include "chain/state.h"
#include "chain/transaction.h"
#include "common/result.h"
#include "obs/trace.h"

namespace pds2::common {
class ThreadPool;
}  // namespace pds2::common

namespace pds2::chain {

/// Outcome of one executed transaction, the audit record exposed by the
/// governance layer.
struct Receipt {
  Hash tx_id;
  uint64_t block_number = 0;
  bool success = false;
  std::string error;          // status string when !success
  uint64_t gas_used = 0;
  common::Bytes output;       // contract return value (instance id on deploy)
  std::vector<Event> events;
};

class Blockchain;

/// Observer of block commits, notified after a block has fully executed and
/// joined the chain (ProduceBlock or ApplyExternalBlock). The durability
/// layer (storage::ChainStore) implements this to append the block to its
/// on-disk log and cut periodic state snapshots; chain stays independent of
/// the storage module.
class CommitListener {
 public:
  virtual ~CommitListener() = default;
  /// `chain` is the chain that just committed `block` (its new head).
  virtual void OnBlockCommitted(const Blockchain& chain,
                                const Block& block) = 0;
};

/// Chain-wide parameters.
struct ChainConfig {
  /// Network floor on the per-gas-unit fee. Transactions offer their own
  /// Transaction::gas_price (the fee actually charged); submission and
  /// external-block validation reject offers below this floor. Evidence
  /// transactions are exempt (fee-free, see chain/evidence.h).
  uint64_t gas_price = 1;
  uint64_t block_gas_limit = 100'000'000;  // per-block execution budget
  /// Accountability deposit per validator. When > 0, the constructor mints
  /// this amount to every validator address and immediately bonds it (the
  /// stake ledger, StateView::StakeOf), counted against the genesis supply
  /// cap. Accepted equivocation evidence slashes the offender's full bond.
  /// 0 (the default) leaves genesis state byte-identical to older chains.
  uint64_t validator_stake = 0;
  /// Share of a slashed stake paid to the evidence reporter, in basis
  /// points; the remainder is burned.
  uint32_t slash_reporter_bps = 5'000;
  /// Optional pool for parallel block validation (signature batches + tx
  /// root) and optimistic parallel transaction execution. nullptr uses the
  /// process-wide ThreadPool::Global(); a 1-thread pool follows the
  /// sequential code path exactly. Any pool size yields bit-identical
  /// blocks, receipts and state (see DESIGN.md "Parallel execution").
  common::ThreadPool* thread_pool = nullptr;
  /// Mempool shape (shard count, admission bound).
  Mempool::Config mempool;
  /// Crash tolerance of the PoA rotation. 0 = strict round-robin: only
  /// validators_[height % n] may propose, so an offline proposer stalls the
  /// chain forever. > 0 = deadline fallback: for every `proposer_grace` of
  /// sim-time that elapses after the parent block's timestamp, the right to
  /// propose shifts to the next validator in rotation order. The rule is a
  /// pure function of (height, parent timestamp, block timestamp), so every
  /// replica accepts exactly the same proposer for a given block — but two
  /// proposers CAN now legitimately build at the same height in different
  /// windows (e.g. the primary's block was lost in a partition), so
  /// replicas need a fork-choice rule (see p2p::ValidatorNode).
  common::SimTime proposer_grace = 0;
};

/// The PDS2 governance blockchain: an account-based ledger with
/// proof-of-authority consensus (a fixed validator set proposing in
/// round-robin order) executing native C++ contracts with Ethereum-style
/// gas accounting. Execution semantics are sequential and deterministic by
/// design — it is the ground truth of the marketplace simulation — but the
/// implementation may run non-conflicting transactions concurrently:
/// blocks are partitioned into conflict lanes by access set and executed
/// optimistically on a ThreadPool, with a sequential re-run whenever a
/// transaction strays outside its inferred footprint. Every pool size
/// (including none) produces bit-identical receipts, state and block
/// hashes: see ChainConfig::thread_pool and DESIGN.md "Parallel
/// execution".
class Blockchain {
 public:
  Blockchain(std::vector<common::Bytes> validator_public_keys,
             std::unique_ptr<ContractRegistry> registry,
             ChainConfig config = {});

  /// Pre-consensus token allocation (genesis only; fails after block 0).
  common::Status CreditGenesis(const Address& addr, uint64_t amount);

  /// Validates a transaction's signature and queues it.
  common::Status SubmitTransaction(const Transaction& tx);

  /// Produces, executes and appends the next block. Fails unless `proposer`
  /// is the validator whose round-robin turn it is. `timestamp` must be
  /// strictly after the previous block's.
  common::Result<Block> ProduceBlock(const crypto::SigningKey& proposer,
                                     common::SimTime timestamp);

  /// Validates an externally produced block (proposer turn, signatures,
  /// parent linkage, tx root) and executes it. Used when replicating
  /// another node's chain.
  common::Status ApplyExternalBlock(const Block& block);

  // --- Queries -------------------------------------------------------------

  uint64_t GetBalance(const Address& addr) const {
    return state_.GetBalance(addr);
  }
  uint64_t GetNonce(const Address& addr) const { return state_.GetNonce(addr); }

  /// Receipt of an executed transaction.
  common::Result<Receipt> GetReceipt(const Hash& tx_id) const;

  /// Read-only contract call: executes against current state and rolls
  /// everything back. Never mutates the ledger.
  common::Result<common::Bytes> Query(const std::string& contract,
                                      uint64_t instance,
                                      const std::string& method,
                                      const common::Bytes& args,
                                      const Address& caller = Address{}) const;

  /// Height = number of blocks (genesis is implicit; first block is 0).
  uint64_t Height() const { return blocks_.size(); }
  Hash LastBlockHash() const;
  const std::vector<Block>& blocks() const { return blocks_; }
  size_t MempoolSize() const { return mempool_.Size(); }
  const std::vector<common::Bytes>& validators() const { return validators_; }
  /// Validator whose turn it is to propose the next block.
  const common::Bytes& NextProposer() const;

  /// Validator allowed to propose the next block at `timestamp` under the
  /// proposer_grace fallback rule (equals NextProposer() when grace is 0 or
  /// within the primary's window).
  const common::Bytes& ProposerAt(common::SimTime timestamp) const;

  /// Total gas consumed by all executed transactions (experiment E6).
  uint64_t TotalGasUsed() const { return total_gas_used_; }

  /// Number of Schnorr signature checks actually performed on transactions.
  /// A (tx, signature) pair is verified at most once: SubmitTransaction and
  /// ApplyExternalBlock share a verification cache keyed by tx id (which
  /// covers the signature bytes), eliminating the historical double-verify
  /// on the submit→validate path.
  uint64_t SignatureVerifications() const { return signature_verifications_; }

  /// Total native supply: circulating balances plus bonded stakes plus
  /// burned (slashed-and-destroyed) tokens. Only genesis allocations and
  /// validator bonds mint, so this is exactly invariant across every
  /// transaction, slash and burn — the conservation the audit tests assert.
  /// Equals WorldState::TotalBalance() on a chain that never staked.
  uint64_t TotalSupply() const;

  // --- Accountability (stake ledger / evidence) ----------------------------

  /// Bonded stake of an account (validators bond at construction when
  /// ChainConfig::validator_stake > 0; executors bond via the workload
  /// contract escrow, which is tracked per-instance, not here).
  uint64_t StakeOf(const Address& addr) const { return state_.StakeOf(addr); }
  /// Sum of all bonded stakes.
  uint64_t TotalStaked() const { return state_.TotalStaked(); }
  /// Tokens destroyed by slashing so far.
  uint64_t BurnedTotal() const { return state_.BurnedTotal(); }
  /// Whether accepted evidence already slashed `offender` for `height`
  /// (each offence is punished exactly once, however many reporters race).
  bool HasEvidenceFor(const Address& offender, uint64_t height) const;

  /// All events a contract instance emitted, across every executed
  /// transaction, in block/receipt order — the audit-trail view of the
  /// governance layer (paper §II-C).
  std::vector<Event> EventsFor(const std::string& contract,
                               uint64_t instance) const;

  /// Commitment to the current world state (equals the head block's
  /// state_root right after a commit). Exposed for durability verification.
  Hash StateDigest() const { return state_.Digest(); }

  // --- Durability ----------------------------------------------------------

  /// Registers (or clears, with nullptr) the observer notified after every
  /// block commit. Not owned; must outlive the chain or be cleared first.
  void SetCommitListener(CommitListener* listener) { listener_ = listener; }

  /// Serializes everything a snapshot needs beyond the block history:
  /// execution counters plus the full WorldState. Paired with
  /// RestoreFromSnapshot; the byte format is versioned by the caller
  /// (storage::ChainStore wraps it in a checksummed container).
  common::Bytes EncodeSnapshotState() const;

  /// Rebuilds a freshly constructed chain (no blocks, no genesis credits)
  /// from a snapshot payload plus the block history up to the snapshot
  /// height. Header linkage of `history` is verified and the restored
  /// state's digest must equal the last history block's state_root — the
  /// snapshot cannot smuggle in a state the chain never committed.
  /// Receipts and mempool start empty (pre-snapshot receipts are gone, as
  /// documented in DESIGN.md "Durability & recovery").
  common::Status RestoreFromSnapshot(const common::Bytes& snapshot_state,
                                     std::vector<Block> history);

 private:
  /// Executes one transaction against an arbitrary state view. Pure with
  /// respect to the chain: receipts, gas and instance-id allocation go
  /// through the arguments, so the same routine serves sequential
  /// execution on the real WorldState, the access-tracing pre-pass and
  /// optimistic lane execution. Counters/metrics are the caller's job.
  Receipt ExecuteTransactionOn(StateView& state, uint64_t* next_instance_id,
                               const Transaction& tx, uint64_t block_number,
                               common::SimTime timestamp) const;

  /// Executes a fee-exempt evidence transaction: verifies the equivocation
  /// proof, slashes the offender's full bond (reporter bounty + burn) and
  /// records the (offender, height) marker so the offence cannot be
  /// punished twice. Dispatched from ExecuteTransactionOn.
  Receipt ExecuteEvidenceOn(StateView& state, const Transaction& tx,
                            uint64_t block_number) const;

  /// Publishes the chain.supply.* gauges (circulating/staked/burned/genesis)
  /// after a commit so the health plane can watch supply conservation live.
  /// No-op (one relaxed load) while metrics are disabled; the O(accounts)
  /// balance walk only runs when they are on.
  void PublishSupplyGauges() const;

  /// Access set per transaction: declared for plain transfers, inferred by
  /// a rolled-back tracing execution for contract calls, global for
  /// deploys (they allocate the shared instance-id counter).
  std::vector<AccessSet> ComputeAccessSets(
      const std::vector<Transaction>& txs, uint64_t block_number,
      common::SimTime timestamp);

  /// Executes a block's transactions — in parallel conflict lanes when a
  /// multi-thread pool is available and the block splits, sequentially
  /// otherwise — and returns the receipts in transaction order. Updates
  /// total gas and execution metrics exactly once per transaction.
  std::vector<Receipt> ExecuteBlockTxs(const std::vector<Transaction>& txs,
                                       uint64_t block_number,
                                       common::SimTime timestamp);

  /// The optimistic lane path of ExecuteBlockTxs. False (with no state
  /// mutated) when the block does not split into >1 lane or any lane
  /// violated its access set; true after overlays merged and `*receipts`
  /// holds the per-transaction results.
  bool TryExecuteLanes(const std::vector<Transaction>& txs,
                       uint64_t block_number, common::SimTime timestamp,
                       common::ThreadPool* pool,
                       std::vector<Receipt>* receipts);

  /// ApplyExternalBlock's validation/execution body; the public wrapper
  /// adds the applied/rejected accounting around it.
  common::Status ApplyExternalBlockInner(const Block& block);

  /// Verifies one signature through the cache (submit path).
  common::Status VerifyTransactionCached(const Transaction& tx);

  /// Verifies a block's signatures, skipping cached ones and checking the
  /// rest with batched Schnorr verification (one randomized linear
  /// combination per chunk, chunks sized from the block and spread over
  /// the pool). A failing chunk falls back to per-signature checks, so the
  /// returned status is the first failure in tx order — the same status
  /// the sequential loop produced.
  common::Status VerifyBlockSignatures(const std::vector<Transaction>& txs);

  /// The pool every parallel path uses: the configured one, or the
  /// process-wide shared pool when none was plumbed through.
  common::ThreadPool* ExecutionPool() const;

  void CacheVerified(Hash tx_id);

  /// Adds a causal link from `span` to the recorded submit context of every
  /// transaction in `txs`, then forgets those contexts. The resulting trace
  /// edge (submit -> block execution) is what connects a producer's
  /// market.post span to the validator's block-apply span even though the
  /// transaction itself carries no trace bytes.
  void LinkAndForgetTxContexts(const std::vector<Transaction>& txs,
                               obs::ScopedSpan* span);

  std::vector<common::Bytes> validators_;
  std::unique_ptr<ContractRegistry> registry_;
  ChainConfig config_;

  WorldState state_;
  std::vector<Block> blocks_;
  Mempool mempool_;
  std::map<Hash, Receipt> receipts_;
  CommitListener* listener_ = nullptr;
  uint64_t next_instance_id_ = 1;
  uint64_t total_gas_used_ = 0;
  uint64_t genesis_minted_ = 0;  // running CreditGenesis supply cap
  std::set<Hash> verified_txs_;  // successful signature checks, by tx id
  uint64_t signature_verifications_ = 0;
  /// Trace context active when each mempool tx was submitted (populated
  /// only while tracing is enabled; entries are consumed when the tx is
  /// executed or dropped as stale).
  std::map<Hash, obs::TraceContext> tx_trace_ctx_;
};

/// Helper for reading a deploy receipt's output as the new instance id.
common::Result<uint64_t> InstanceIdFromReceipt(const Receipt& receipt);

}  // namespace pds2::chain

#endif  // PDS2_CHAIN_CHAIN_H_
