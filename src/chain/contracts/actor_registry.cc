#include "chain/contracts/actor_registry.h"

#include "common/serial.h"

namespace pds2::chain::contracts {

using common::Bytes;
using common::Reader;
using common::Result;
using common::Status;
using common::ToBytes;
using common::Writer;

namespace {

Bytes ActorKey(const Address& addr) {
  Bytes key = ToBytes("actor/");
  common::Append(key, addr);
  return key;
}

}  // namespace

Result<Bytes> ActorRegistry::Call(CallContext& ctx, const std::string& method,
                                  const Bytes& args) {
  Reader r(args);

  if (method == "register") {
    PDS2_ASSIGN_OR_RETURN(Bytes public_key, r.GetBytes());
    PDS2_ASSIGN_OR_RETURN(uint64_t roles, r.GetU64());
    PDS2_ASSIGN_OR_RETURN(std::string metadata, r.GetString());
    if (roles == 0) return Status::InvalidArgument("no roles declared");
    // The registration must come from the key owner: the sender address
    // must be derived from the registered public key.
    if (AddressFromPublicKey(public_key) != ctx.sender()) {
      return Status::PermissionDenied(
          "sender address does not match the registered key");
    }
    PDS2_ASSIGN_OR_RETURN(auto existing, ctx.Read(ActorKey(ctx.sender())));
    const bool is_new = !existing.has_value();
    Writer w;
    w.PutBytes(public_key);
    w.PutU64(roles);
    w.PutString(metadata);
    PDS2_RETURN_IF_ERROR(ctx.Write(ActorKey(ctx.sender()), w.Take()));

    if (is_new) {
      PDS2_ASSIGN_OR_RETURN(auto count_bytes, ctx.Read(ToBytes("count")));
      uint64_t count = 0;
      if (count_bytes.has_value()) {
        Reader cr(*count_bytes);
        PDS2_ASSIGN_OR_RETURN(count, cr.GetU64());
      }
      Writer cw;
      cw.PutU64(count + 1);
      PDS2_RETURN_IF_ERROR(ctx.Write(ToBytes("count"), cw.Take()));
    }
    PDS2_RETURN_IF_ERROR(ctx.Emit("Registered", ctx.sender()));
    return Bytes{};
  }

  if (method == "get") {
    PDS2_ASSIGN_OR_RETURN(Bytes addr, r.GetBytes());
    PDS2_ASSIGN_OR_RETURN(auto record, ctx.Read(ActorKey(addr)));
    if (!record.has_value()) return Status::NotFound("actor not registered");
    return *record;
  }

  if (method == "count") {
    PDS2_ASSIGN_OR_RETURN(auto count_bytes, ctx.Read(ToBytes("count")));
    return count_bytes.value_or(Bytes(8, 0));
  }

  return Status::NotFound("actors: unknown method " + method);
}

}  // namespace pds2::chain::contracts
