#ifndef PDS2_CHAIN_CONTRACTS_WORKLOAD_H_
#define PDS2_CHAIN_CONTRACTS_WORKLOAD_H_

#include <string>

#include "chain/contract.h"
#include "crypto/schnorr.h"

namespace pds2::chain::contracts {

/// Lifecycle phases of a workload contract (paper Fig. 2).
enum class WorkloadPhase : uint8_t {
  kAccepting = 0,  // providers/executors may register participation
  kRunning = 1,    // conditions met, executors instructed to proceed
  kCompleted = 2,  // result hash agreed by executor quorum
  kPaid = 3,       // escrow distributed
  kAborted = 4,    // cancelled; escrow refunded to the consumer
};

/// A provider's signed consent to contribute a committed dataset to one
/// workload through one executor. Executors submit these on-chain when
/// registering (paper §II-D: certificates "confirming that they have indeed
/// accepted to participate"). The signature binds provider, workload
/// instance, executor and data commitment together, so a certificate can
/// neither be forged nor replayed for another executor or workload.
struct ParticipationCert {
  uint64_t workload_instance = 0;
  common::Bytes provider_public_key;
  common::Bytes executor_public_key;
  common::Bytes data_commitment;  // Merkle root of the contributed records
  uint64_t num_records = 0;
  common::Bytes signature;        // provider's, domain "pds2.cert"

  /// Byte string covered by the provider signature.
  common::Bytes SigningBytes() const;
  /// Signs with the provider key (fills `signature`).
  void Sign(const crypto::SigningKey& provider_key);
  /// Full wire encoding including the signature.
  common::Bytes Serialize() const;
  static common::Result<ParticipationCert> Deserialize(
      const common::Bytes& data);

  /// The signing domain.
  static const char* Domain() { return "pds2.cert"; }
};

/// The per-workload governance contract: escrow, participation tracking,
/// executor quorum on the result, and reward distribution.
///
/// Deploy args (consumer): bytes spec_hash, u64 reward_pool (must equal the
/// escrowed tx value), u64 min_providers, u64 max_providers, u64
/// executor_reward_permille, u64 deadline (sim-time), string aggregation,
/// [u64 executor_stake] (optional accountability bond; older encodings
/// omit it, meaning 0).
///
/// Methods:
///   "register_executor" (bytes executor_pubkey, u32 n, n x cert) -> ()
///       sender must be the executor; each certificate is verified on-chain;
///       the tx value must escrow exactly `executor_stake`
///   "start"             () -> ()    anyone, once min_providers reached
///   "submit_result"     (bytes result_hash) -> ()   registered executors;
///       completes when a strict majority agrees on one hash
///   "report_attestation" (bytes executor_addr) -> ()   consumer only, in
///       Running/Completed; flags an attestation mismatch, converting the
///       executor's bond into a slash (and forfeiting its reward share)
///   "finalize"          (u32 n, n x (bytes provider_addr, u64 weight)) -> ()
///       consumer only, in Completed; pays executors evenly from the
///       executor pool and providers by weight from the remainder, then
///       settles bonds: matching voters refunded, wrong-voters and
///       fault-reported executors slashed (half to the consumer, half
///       burned), non-voters refunded (silence is not provable fraud)
///   "abort"             () -> ()    consumer, in Accepting or past
///       deadline; refunds the pool and every executor bond
///   "anchor_artifact"   (bytes artifact_address, bytes result_hash) -> ()
///       consumer only, in Paid, once; records the content address of the
///       off-chain result artifact (must carry the agreed result hash), so
///       substitution consumers can verify fetched artifacts against chain
///       state
///   -- queries --
///   "phase"             () -> u8
///   "result"            () -> bytes result_hash
///   "artifact"          () -> bytes artifact_address
///   "spec"              () -> deploy args echo
///   "provider_records"  (bytes provider_addr) -> u64
///   "participants"      () -> (u32 p, p x bytes, u32 e, e x bytes)
class WorkloadContract : public Contract {
 public:
  std::string Name() const override { return "workload"; }
  common::Status Deploy(CallContext& ctx, const common::Bytes& args) override;
  common::Result<common::Bytes> Call(CallContext& ctx,
                                     const std::string& method,
                                     const common::Bytes& args) override;
};

}  // namespace pds2::chain::contracts

#endif  // PDS2_CHAIN_CONTRACTS_WORKLOAD_H_
