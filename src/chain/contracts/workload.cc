#include "chain/contracts/workload.h"

#include <vector>

#include "common/serial.h"

namespace pds2::chain::contracts {

using common::Bytes;
using common::Reader;
using common::Result;
using common::Status;
using common::ToBytes;
using common::Writer;

// ---------------------------------------------------------------------------
// ParticipationCert

Bytes ParticipationCert::SigningBytes() const {
  Writer w;
  w.PutU64(workload_instance);
  w.PutBytes(provider_public_key);
  w.PutBytes(executor_public_key);
  w.PutBytes(data_commitment);
  w.PutU64(num_records);
  return w.Take();
}

void ParticipationCert::Sign(const crypto::SigningKey& provider_key) {
  signature = provider_key.SignWithDomain(Domain(), SigningBytes());
}

Bytes ParticipationCert::Serialize() const {
  Writer w;
  w.PutRaw(SigningBytes());
  w.PutBytes(signature);
  return w.Take();
}

Result<ParticipationCert> ParticipationCert::Deserialize(const Bytes& data) {
  Reader r(data);
  ParticipationCert cert;
  PDS2_ASSIGN_OR_RETURN(cert.workload_instance, r.GetU64());
  PDS2_ASSIGN_OR_RETURN(cert.provider_public_key, r.GetBytes());
  PDS2_ASSIGN_OR_RETURN(cert.executor_public_key, r.GetBytes());
  PDS2_ASSIGN_OR_RETURN(cert.data_commitment, r.GetBytes());
  PDS2_ASSIGN_OR_RETURN(cert.num_records, r.GetU64());
  PDS2_ASSIGN_OR_RETURN(cert.signature, r.GetBytes());
  if (!r.AtEnd()) return Status::Corruption("trailing bytes in certificate");
  return cert;
}

// ---------------------------------------------------------------------------
// Storage layout helpers

namespace {

Bytes EncodeU64(uint64_t v) {
  Writer w;
  w.PutU64(v);
  return w.Take();
}

Result<uint64_t> AsU64(const Bytes& data) {
  Reader r(data);
  PDS2_ASSIGN_OR_RETURN(uint64_t v, r.GetU64());
  return v;
}

Result<uint64_t> ReadCounter(CallContext& ctx, const char* key) {
  PDS2_ASSIGN_OR_RETURN(auto bytes, ctx.Read(ToBytes(key)));
  if (!bytes.has_value()) return uint64_t{0};
  return AsU64(*bytes);
}

Bytes ProviderKey(const Address& addr) {
  Bytes key = ToBytes("prov/");
  common::Append(key, addr);
  return key;
}

Bytes ExecutorKey(const Address& addr) {
  Bytes key = ToBytes("exec/");
  common::Append(key, addr);
  return key;
}

Bytes ResultVoteKey(const Address& executor) {
  Bytes key = ToBytes("vote/");
  common::Append(key, executor);
  return key;
}

Bytes StakeKey(const Address& executor) {
  Bytes key = ToBytes("stake/");
  common::Append(key, executor);
  return key;
}

Bytes FaultKey(const Address& executor) {
  Bytes key = ToBytes("fault/");
  common::Append(key, executor);
  return key;
}

// Refunds every outstanding executor bond (abort path: no executor is
// judged, so every bond goes home).
Status RefundAllStakes(CallContext& ctx) {
  PDS2_ASSIGN_OR_RETURN(auto stakes, ctx.Scan(ToBytes("stake/")));
  for (const auto& [key, value] : stakes) {
    const Address executor(key.begin() + 6, key.end());
    PDS2_ASSIGN_OR_RETURN(uint64_t stake, AsU64(value));
    if (stake > 0) PDS2_RETURN_IF_ERROR(ctx.PayOut(executor, stake));
    PDS2_RETURN_IF_ERROR(ctx.Delete(key));
  }
  return Status::Ok();
}

Bytes ResultTallyKey(const Bytes& result_hash) {
  Bytes key = ToBytes("tally/");
  common::Append(key, result_hash);
  return key;
}

Result<WorkloadPhase> ReadPhase(CallContext& ctx) {
  PDS2_ASSIGN_OR_RETURN(auto bytes, ctx.Read(ToBytes("phase")));
  if (!bytes.has_value() || bytes->size() != 1) {
    return Status::Corruption("workload phase missing");
  }
  return static_cast<WorkloadPhase>((*bytes)[0]);
}

Status WritePhase(CallContext& ctx, WorkloadPhase phase) {
  PDS2_RETURN_IF_ERROR(ctx.Write(ToBytes("phase"),
                                 Bytes{static_cast<uint8_t>(phase)}));
  return ctx.Emit("PhaseChanged", Bytes{static_cast<uint8_t>(phase)});
}

}  // namespace

// ---------------------------------------------------------------------------
// WorkloadContract

Status WorkloadContract::Deploy(CallContext& ctx, const Bytes& args) {
  Reader r(args);
  PDS2_ASSIGN_OR_RETURN(Bytes spec_hash, r.GetBytes());
  PDS2_ASSIGN_OR_RETURN(uint64_t reward_pool, r.GetU64());
  PDS2_ASSIGN_OR_RETURN(uint64_t min_providers, r.GetU64());
  PDS2_ASSIGN_OR_RETURN(uint64_t max_providers, r.GetU64());
  PDS2_ASSIGN_OR_RETURN(uint64_t executor_permille, r.GetU64());
  PDS2_ASSIGN_OR_RETURN(uint64_t deadline, r.GetU64());
  PDS2_ASSIGN_OR_RETURN(std::string aggregation, r.GetString());
  // Optional trailing accountability bond (older encodings omit it): every
  // registering executor must escrow this much, refunded at settlement
  // unless it provably misbehaved.
  uint64_t executor_stake = 0;
  if (!r.AtEnd()) {
    PDS2_ASSIGN_OR_RETURN(executor_stake, r.GetU64());
  }

  if (reward_pool == 0) {
    return Status::InvalidArgument("reward pool must be positive");
  }
  if (ctx.value() != reward_pool) {
    return Status::InvalidArgument(
        "escrowed value must equal the declared reward pool");
  }
  if (min_providers == 0 || max_providers < min_providers) {
    return Status::InvalidArgument("invalid provider bounds");
  }
  if (executor_permille > 1000) {
    return Status::InvalidArgument("executor share above 100%");
  }

  PDS2_RETURN_IF_ERROR(ctx.Write(ToBytes("spec"), args));
  PDS2_RETURN_IF_ERROR(ctx.Write(ToBytes("spec_hash"), spec_hash));
  PDS2_RETURN_IF_ERROR(ctx.Write(ToBytes("consumer"), ctx.sender()));
  PDS2_RETURN_IF_ERROR(ctx.Write(ToBytes("pool"), EncodeU64(reward_pool)));
  PDS2_RETURN_IF_ERROR(ctx.Write(ToBytes("min_prov"), EncodeU64(min_providers)));
  PDS2_RETURN_IF_ERROR(ctx.Write(ToBytes("max_prov"), EncodeU64(max_providers)));
  PDS2_RETURN_IF_ERROR(
      ctx.Write(ToBytes("exec_permille"), EncodeU64(executor_permille)));
  PDS2_RETURN_IF_ERROR(ctx.Write(ToBytes("deadline"), EncodeU64(deadline)));
  PDS2_RETURN_IF_ERROR(ctx.Write(ToBytes("aggregation"), ToBytes(aggregation)));
  PDS2_RETURN_IF_ERROR(
      ctx.Write(ToBytes("exec_stake"), EncodeU64(executor_stake)));
  PDS2_RETURN_IF_ERROR(ctx.Write(ToBytes("n_providers"), EncodeU64(0)));
  PDS2_RETURN_IF_ERROR(ctx.Write(ToBytes("n_executors"), EncodeU64(0)));
  PDS2_RETURN_IF_ERROR(ctx.Write(ToBytes("n_votes"), EncodeU64(0)));
  return WritePhase(ctx, WorkloadPhase::kAccepting);
}

Result<Bytes> WorkloadContract::Call(CallContext& ctx,
                                     const std::string& method,
                                     const Bytes& args) {
  Reader r(args);

  if (method == "register_executor") {
    PDS2_ASSIGN_OR_RETURN(WorkloadPhase phase, ReadPhase(ctx));
    if (phase != WorkloadPhase::kAccepting) {
      return Status::FailedPrecondition("workload is not accepting");
    }
    PDS2_ASSIGN_OR_RETURN(Bytes executor_pubkey, r.GetBytes());
    if (AddressFromPublicKey(executor_pubkey) != ctx.sender()) {
      return Status::PermissionDenied(
          "executor must register with its own key");
    }
    PDS2_ASSIGN_OR_RETURN(uint32_t n_certs, r.GetU32());
    if (n_certs == 0) {
      return Status::InvalidArgument("executor brings no certificates");
    }
    PDS2_ASSIGN_OR_RETURN(auto existing, ctx.Read(ExecutorKey(ctx.sender())));
    if (existing.has_value()) {
      return Status::AlreadyExists("executor already registered");
    }
    // Accountability bond: the registration must escrow exactly the stake
    // the workload demands. It is held by the contract until settlement —
    // refunded to honest executors, slashed for provable fraud.
    PDS2_ASSIGN_OR_RETURN(uint64_t required_stake,
                          ReadCounter(ctx, "exec_stake"));
    if (ctx.value() != required_stake) {
      return Status::InvalidArgument(
          "registration must escrow exactly the executor stake");
    }
    if (required_stake > 0) {
      PDS2_RETURN_IF_ERROR(
          ctx.Write(StakeKey(ctx.sender()), EncodeU64(required_stake)));
    }

    PDS2_ASSIGN_OR_RETURN(uint64_t n_providers, ReadCounter(ctx, "n_providers"));
    PDS2_ASSIGN_OR_RETURN(auto max_bytes, ctx.Read(ToBytes("max_prov")));
    PDS2_ASSIGN_OR_RETURN(uint64_t max_providers, AsU64(*max_bytes));

    uint64_t new_records = 0;
    for (uint32_t i = 0; i < n_certs; ++i) {
      PDS2_ASSIGN_OR_RETURN(Bytes cert_bytes, r.GetBytes());
      PDS2_ASSIGN_OR_RETURN(ParticipationCert cert,
                            ParticipationCert::Deserialize(cert_bytes));
      if (cert.workload_instance != ctx.instance()) {
        return Status::PermissionDenied(
            "certificate issued for another workload");
      }
      if (cert.executor_public_key != executor_pubkey) {
        return Status::PermissionDenied(
            "certificate issued for another executor");
      }
      if (cert.num_records == 0) {
        return Status::InvalidArgument("certificate covers no records");
      }
      PDS2_RETURN_IF_ERROR(ctx.VerifySig(cert.provider_public_key,
                                         ParticipationCert::Domain(),
                                         cert.SigningBytes(), cert.signature));

      const Address provider = AddressFromPublicKey(cert.provider_public_key);
      PDS2_ASSIGN_OR_RETURN(auto prior, ctx.Read(ProviderKey(provider)));
      if (prior.has_value()) {
        return Status::AlreadyExists(
            "provider already participates in this workload");
      }
      if (n_providers >= max_providers) {
        return Status::FailedPrecondition("provider limit reached");
      }
      Writer record;
      record.PutU64(cert.num_records);
      record.PutBytes(cert.data_commitment);
      record.PutBytes(ctx.sender());  // serving executor
      PDS2_RETURN_IF_ERROR(ctx.Write(ProviderKey(provider), record.Take()));
      ++n_providers;
      new_records += cert.num_records;
      PDS2_RETURN_IF_ERROR(ctx.Emit("ProviderJoined", provider));
    }

    PDS2_RETURN_IF_ERROR(
        ctx.Write(ToBytes("n_providers"), EncodeU64(n_providers)));
    PDS2_ASSIGN_OR_RETURN(uint64_t n_exec, ReadCounter(ctx, "n_executors"));
    PDS2_RETURN_IF_ERROR(
        ctx.Write(ToBytes("n_executors"), EncodeU64(n_exec + 1)));
    PDS2_RETURN_IF_ERROR(
        ctx.Write(ExecutorKey(ctx.sender()), EncodeU64(new_records)));
    PDS2_RETURN_IF_ERROR(ctx.Emit("ExecutorRegistered", ctx.sender()));
    return Bytes{};
  }

  if (method == "start") {
    PDS2_ASSIGN_OR_RETURN(WorkloadPhase phase, ReadPhase(ctx));
    if (phase != WorkloadPhase::kAccepting) {
      return Status::FailedPrecondition("workload is not accepting");
    }
    PDS2_ASSIGN_OR_RETURN(uint64_t n_providers, ReadCounter(ctx, "n_providers"));
    PDS2_ASSIGN_OR_RETURN(auto min_bytes, ctx.Read(ToBytes("min_prov")));
    PDS2_ASSIGN_OR_RETURN(uint64_t min_providers, AsU64(*min_bytes));
    if (n_providers < min_providers) {
      return Status::FailedPrecondition(
          "not enough providers to start the workload");
    }
    PDS2_RETURN_IF_ERROR(WritePhase(ctx, WorkloadPhase::kRunning));
    return Bytes{};
  }

  if (method == "submit_result") {
    PDS2_ASSIGN_OR_RETURN(WorkloadPhase phase, ReadPhase(ctx));
    // Votes are accepted while running AND after completion (until payout):
    // an executor that did the work but whose vote arrived after the quorum
    // formed must still be able to put its vote on record, because finalize
    // pays only executors whose recorded vote matches the agreed result.
    if (phase != WorkloadPhase::kRunning &&
        phase != WorkloadPhase::kCompleted) {
      return Status::FailedPrecondition("workload is not running");
    }
    PDS2_ASSIGN_OR_RETURN(Bytes result_hash, r.GetBytes());
    if (result_hash.empty()) {
      return Status::InvalidArgument("empty result hash");
    }
    PDS2_ASSIGN_OR_RETURN(auto exec_record, ctx.Read(ExecutorKey(ctx.sender())));
    if (!exec_record.has_value()) {
      return Status::PermissionDenied("sender is not a registered executor");
    }
    PDS2_ASSIGN_OR_RETURN(auto prior_vote, ctx.Read(ResultVoteKey(ctx.sender())));
    if (prior_vote.has_value()) {
      return Status::AlreadyExists("executor already submitted a result");
    }
    PDS2_RETURN_IF_ERROR(ctx.Write(ResultVoteKey(ctx.sender()), result_hash));

    PDS2_ASSIGN_OR_RETURN(auto tally_bytes, ctx.Read(ResultTallyKey(result_hash)));
    uint64_t tally = 0;
    if (tally_bytes.has_value()) {
      PDS2_ASSIGN_OR_RETURN(tally, AsU64(*tally_bytes));
    }
    ++tally;
    PDS2_RETURN_IF_ERROR(
        ctx.Write(ResultTallyKey(result_hash), EncodeU64(tally)));
    PDS2_ASSIGN_OR_RETURN(uint64_t n_votes, ReadCounter(ctx, "n_votes"));
    PDS2_RETURN_IF_ERROR(ctx.Write(ToBytes("n_votes"), EncodeU64(n_votes + 1)));

    PDS2_ASSIGN_OR_RETURN(uint64_t n_exec, ReadCounter(ctx, "n_executors"));
    // Strict majority of registered executors agreeing completes the
    // workload; a lone executor needs only its own vote. Late votes (phase
    // already kCompleted) are recorded above but cannot re-agree.
    if (phase == WorkloadPhase::kRunning && tally * 2 > n_exec) {
      PDS2_RETURN_IF_ERROR(ctx.Write(ToBytes("result"), result_hash));
      PDS2_RETURN_IF_ERROR(WritePhase(ctx, WorkloadPhase::kCompleted));
      PDS2_RETURN_IF_ERROR(ctx.Emit("ResultAgreed", result_hash));
    }
    return Bytes{};
  }

  if (method == "report_attestation") {
    // The consumer puts an attestation mismatch on record: the executor's
    // runtime quote no longer matches the measurement it registered with
    // (paper §II-D audit). The flag converts the executor's bond into a
    // slash at settlement; reporting is idempotent.
    PDS2_ASSIGN_OR_RETURN(WorkloadPhase phase, ReadPhase(ctx));
    if (phase != WorkloadPhase::kRunning &&
        phase != WorkloadPhase::kCompleted) {
      return Status::FailedPrecondition("workload is not running");
    }
    PDS2_ASSIGN_OR_RETURN(auto consumer, ctx.Read(ToBytes("consumer")));
    if (*consumer != ctx.sender()) {
      return Status::PermissionDenied(
          "only the consumer may report attestation faults");
    }
    PDS2_ASSIGN_OR_RETURN(Bytes executor, r.GetBytes());
    PDS2_ASSIGN_OR_RETURN(auto exec_record, ctx.Read(ExecutorKey(executor)));
    if (!exec_record.has_value()) {
      return Status::NotFound("reported executor is not registered");
    }
    PDS2_RETURN_IF_ERROR(ctx.Write(FaultKey(executor), Bytes{1}));
    PDS2_RETURN_IF_ERROR(ctx.Emit("AttestationFault", executor));
    return Bytes{};
  }

  if (method == "finalize") {
    PDS2_ASSIGN_OR_RETURN(WorkloadPhase phase, ReadPhase(ctx));
    if (phase != WorkloadPhase::kCompleted) {
      return Status::FailedPrecondition("workload has no agreed result yet");
    }
    PDS2_ASSIGN_OR_RETURN(auto consumer, ctx.Read(ToBytes("consumer")));
    if (*consumer != ctx.sender()) {
      return Status::PermissionDenied("only the consumer may finalize");
    }
    PDS2_ASSIGN_OR_RETURN(uint32_t n_weights, r.GetU32());
    PDS2_ASSIGN_OR_RETURN(uint64_t n_providers, ReadCounter(ctx, "n_providers"));
    if (n_weights != n_providers) {
      return Status::InvalidArgument(
          "weights must cover every registered provider exactly once");
    }

    std::vector<std::pair<Address, uint64_t>> weights;
    weights.reserve(n_weights);
    uint64_t weight_total = 0;
    for (uint32_t i = 0; i < n_weights; ++i) {
      PDS2_ASSIGN_OR_RETURN(Bytes addr, r.GetBytes());
      PDS2_ASSIGN_OR_RETURN(uint64_t weight, r.GetU64());
      PDS2_ASSIGN_OR_RETURN(auto record, ctx.Read(ProviderKey(addr)));
      if (!record.has_value()) {
        return Status::InvalidArgument("weight for unknown provider");
      }
      for (const auto& [seen, _] : weights) {
        if (seen == addr) {
          return Status::InvalidArgument("duplicate provider weight");
        }
      }
      weights.emplace_back(addr, weight);
      weight_total += weight;
    }
    if (weight_total == 0) {
      return Status::InvalidArgument("all weights are zero");
    }

    PDS2_ASSIGN_OR_RETURN(auto pool_bytes, ctx.Read(ToBytes("pool")));
    PDS2_ASSIGN_OR_RETURN(uint64_t pool, AsU64(*pool_bytes));
    PDS2_ASSIGN_OR_RETURN(auto permille_bytes, ctx.Read(ToBytes("exec_permille")));
    PDS2_ASSIGN_OR_RETURN(uint64_t exec_permille, AsU64(*permille_bytes));
    PDS2_ASSIGN_OR_RETURN(uint64_t n_exec, ReadCounter(ctx, "n_executors"));

    // Executor pool, split evenly among the executors whose recorded vote
    // matches the agreed result (paper §II-B: infrastructure actors receive
    // a share of the sellers' rewards). An executor that crashed before
    // voting — or voted for a different result — earns nothing; its share
    // goes to the survivors, so faults never strand tokens in escrow.
    const uint64_t executor_pool = pool * exec_permille / 1000;
    uint64_t paid = 0;
    if (n_exec > 0 && executor_pool > 0) {
      PDS2_ASSIGN_OR_RETURN(auto agreed, ctx.Read(ToBytes("result")));
      PDS2_ASSIGN_OR_RETURN(auto executors, ctx.Scan(ToBytes("exec/")));
      std::vector<Address> survivors;
      for (const auto& [key, _] : executors) {
        const Address executor(key.begin() + 5, key.end());
        PDS2_ASSIGN_OR_RETURN(auto vote, ctx.Read(ResultVoteKey(executor)));
        // A consumer-reported attestation fault forfeits the reward too,
        // not just the bond — a compromised enclave earned nothing.
        PDS2_ASSIGN_OR_RETURN(auto fault, ctx.Read(FaultKey(executor)));
        if (vote.has_value() && agreed.has_value() && *vote == *agreed &&
            !fault.has_value()) {
          survivors.push_back(executor);
        }
      }
      if (!survivors.empty()) {
        const uint64_t per_executor = executor_pool / survivors.size();
        for (const Address& executor : survivors) {
          PDS2_RETURN_IF_ERROR(ctx.PayOut(executor, per_executor));
          paid += per_executor;
        }
      }
    }

    // Provider pool, split by the submitted weights.
    const uint64_t provider_pool = pool - executor_pool;
    for (const auto& [addr, weight] : weights) {
      // Integer split; dust is refunded to the consumer below.
      const uint64_t share =
          static_cast<uint64_t>(static_cast<unsigned __int128>(provider_pool) *
                                weight / weight_total);
      if (share > 0) {
        PDS2_RETURN_IF_ERROR(ctx.PayOut(addr, share));
        paid += share;
      }
      Writer ev;
      ev.PutBytes(addr);
      ev.PutU64(share);
      PDS2_RETURN_IF_ERROR(ctx.Emit("ProviderPaid", ev.Take()));
    }

    // Rounding dust back to the consumer, so the escrow always fully
    // discharges (audited by tests: no tokens stuck in the contract).
    if (paid < pool) {
      PDS2_RETURN_IF_ERROR(ctx.PayOut(ctx.sender(), pool - paid));
    }

    // Executor bond settlement. Honest executors — recorded vote matches
    // the agreed result and no attestation fault on record — get their
    // bond back. Provable fraud (a vote committed to a losing result, or a
    // consumer-reported attestation mismatch) forfeits it: half
    // compensates the consumer, the remainder is burned out of circulation
    // (total supply = balances + stakes + burned stays exactly conserved;
    // see StateView::BurnedTotal). Silence is NOT slashed: a crashed
    // executor is indistinguishable from a partitioned honest one, so a
    // missing vote only forfeits the reward share, never the bond.
    PDS2_ASSIGN_OR_RETURN(auto agreed_result, ctx.Read(ToBytes("result")));
    PDS2_ASSIGN_OR_RETURN(auto stakes, ctx.Scan(ToBytes("stake/")));
    for (const auto& [key, value] : stakes) {
      const Address executor(key.begin() + 6, key.end());
      PDS2_ASSIGN_OR_RETURN(uint64_t stake, AsU64(value));
      PDS2_ASSIGN_OR_RETURN(auto fault, ctx.Read(FaultKey(executor)));
      PDS2_ASSIGN_OR_RETURN(auto vote, ctx.Read(ResultVoteKey(executor)));
      const bool wrong_vote = vote.has_value() && agreed_result.has_value() &&
                              *vote != *agreed_result;
      if (fault.has_value() || wrong_vote) {
        const uint64_t to_consumer = stake / 2;
        if (to_consumer > 0) {
          PDS2_RETURN_IF_ERROR(ctx.PayOut(ctx.sender(), to_consumer));
        }
        if (stake - to_consumer > 0) {
          PDS2_RETURN_IF_ERROR(ctx.Burn(stake - to_consumer));
        }
        Writer ev;
        ev.PutBytes(executor);
        ev.PutU64(stake);
        PDS2_RETURN_IF_ERROR(ctx.Emit("ExecutorSlashed", ev.Take()));
      } else if (stake > 0) {
        PDS2_RETURN_IF_ERROR(ctx.PayOut(executor, stake));
      }
      PDS2_RETURN_IF_ERROR(ctx.Delete(key));
    }
    PDS2_RETURN_IF_ERROR(WritePhase(ctx, WorkloadPhase::kPaid));
    return Bytes{};
  }

  if (method == "abort") {
    PDS2_ASSIGN_OR_RETURN(WorkloadPhase phase, ReadPhase(ctx));
    if (phase == WorkloadPhase::kPaid || phase == WorkloadPhase::kAborted) {
      return Status::FailedPrecondition("workload already settled");
    }
    PDS2_ASSIGN_OR_RETURN(auto consumer, ctx.Read(ToBytes("consumer")));
    if (*consumer != ctx.sender()) {
      return Status::PermissionDenied("only the consumer may abort");
    }
    PDS2_ASSIGN_OR_RETURN(auto deadline_bytes, ctx.Read(ToBytes("deadline")));
    PDS2_ASSIGN_OR_RETURN(uint64_t deadline, AsU64(*deadline_bytes));
    if (phase != WorkloadPhase::kAccepting &&
        ctx.block().timestamp < deadline) {
      return Status::FailedPrecondition(
          "running workloads can only be aborted past their deadline");
    }
    PDS2_ASSIGN_OR_RETURN(auto pool_bytes, ctx.Read(ToBytes("pool")));
    PDS2_ASSIGN_OR_RETURN(uint64_t pool, AsU64(*pool_bytes));
    PDS2_RETURN_IF_ERROR(ctx.PayOut(*consumer, pool));
    // No judgement on abort: every escrowed executor bond goes home.
    PDS2_RETURN_IF_ERROR(RefundAllStakes(ctx));
    PDS2_RETURN_IF_ERROR(WritePhase(ctx, WorkloadPhase::kAborted));
    return Bytes{};
  }

  if (method == "anchor_artifact") {
    // Anchors the content address of the off-chain result artifact (the
    // content-addressed store's manifest hash) next to the agreed result
    // hash, so substitution consumers can verify a fetched artifact
    // against chain state without trusting the provider.
    PDS2_ASSIGN_OR_RETURN(WorkloadPhase phase, ReadPhase(ctx));
    if (phase != WorkloadPhase::kPaid) {
      return Status::FailedPrecondition(
          "artifacts anchor only after settlement");
    }
    PDS2_ASSIGN_OR_RETURN(auto consumer, ctx.Read(ToBytes("consumer")));
    if (*consumer != ctx.sender()) {
      return Status::PermissionDenied("only the consumer may anchor");
    }
    PDS2_ASSIGN_OR_RETURN(auto existing, ctx.Read(ToBytes("artifact")));
    if (existing.has_value()) {
      return Status::FailedPrecondition("artifact already anchored");
    }
    PDS2_ASSIGN_OR_RETURN(Bytes artifact_address, r.GetBytes());
    PDS2_ASSIGN_OR_RETURN(Bytes result_hash, r.GetBytes());
    if (artifact_address.empty()) {
      return Status::InvalidArgument("empty artifact address");
    }
    PDS2_ASSIGN_OR_RETURN(auto agreed, ctx.Read(ToBytes("result")));
    if (!agreed.has_value() || *agreed != result_hash) {
      return Status::InvalidArgument(
          "anchored result hash must match the agreed result");
    }
    PDS2_RETURN_IF_ERROR(ctx.Write(ToBytes("artifact"), artifact_address));
    PDS2_RETURN_IF_ERROR(ctx.Emit("ArtifactAnchored", artifact_address));
    return Bytes{};
  }

  // ---- Read-only queries ----

  if (method == "phase") {
    PDS2_ASSIGN_OR_RETURN(WorkloadPhase phase, ReadPhase(ctx));
    return Bytes{static_cast<uint8_t>(phase)};
  }

  if (method == "result") {
    PDS2_ASSIGN_OR_RETURN(auto result, ctx.Read(ToBytes("result")));
    if (!result.has_value()) return Status::NotFound("no agreed result yet");
    return *result;
  }

  if (method == "artifact") {
    PDS2_ASSIGN_OR_RETURN(auto artifact, ctx.Read(ToBytes("artifact")));
    if (!artifact.has_value()) return Status::NotFound("no anchored artifact");
    return *artifact;
  }

  if (method == "spec") {
    PDS2_ASSIGN_OR_RETURN(auto spec, ctx.Read(ToBytes("spec")));
    return spec.value_or(Bytes{});
  }

  if (method == "provider_records") {
    PDS2_ASSIGN_OR_RETURN(Bytes addr, r.GetBytes());
    PDS2_ASSIGN_OR_RETURN(auto record, ctx.Read(ProviderKey(addr)));
    if (!record.has_value()) return Status::NotFound("unknown provider");
    Reader rr(*record);
    PDS2_ASSIGN_OR_RETURN(uint64_t num_records, rr.GetU64());
    return EncodeU64(num_records);
  }

  if (method == "participants") {
    PDS2_ASSIGN_OR_RETURN(auto providers, ctx.Scan(ToBytes("prov/")));
    PDS2_ASSIGN_OR_RETURN(auto executors, ctx.Scan(ToBytes("exec/")));
    Writer w;
    w.PutU32(static_cast<uint32_t>(providers.size()));
    for (const auto& [key, _] : providers) {
      w.PutBytes(Bytes(key.begin() + 5, key.end()));
    }
    w.PutU32(static_cast<uint32_t>(executors.size()));
    for (const auto& [key, _] : executors) {
      w.PutBytes(Bytes(key.begin() + 5, key.end()));
    }
    return w.Take();
  }

  return Status::NotFound("workload: unknown method " + method);
}

}  // namespace pds2::chain::contracts
