#include "chain/contracts/erc20.h"

#include "common/serial.h"

namespace pds2::chain::contracts {

using common::Bytes;
using common::Reader;
using common::Result;
using common::Status;
using common::ToBytes;
using common::Writer;

namespace {

Bytes BalanceKey(const Address& addr) {
  Bytes key = ToBytes("bal/");
  common::Append(key, addr);
  return key;
}

Bytes AllowanceKey(const Address& owner, const Address& spender) {
  Bytes key = ToBytes("alw/");
  common::Append(key, owner);
  key.push_back('/');
  common::Append(key, spender);
  return key;
}

Bytes EncodeU64(uint64_t v) {
  Writer w;
  w.PutU64(v);
  return w.Take();
}

Result<uint64_t> DecodeU64(const Bytes& data) {
  Reader r(data);
  PDS2_ASSIGN_OR_RETURN(uint64_t v, r.GetU64());
  return v;
}

Result<uint64_t> ReadU64(CallContext& ctx, const Bytes& key) {
  PDS2_ASSIGN_OR_RETURN(auto value, ctx.Read(key));
  if (!value.has_value()) return uint64_t{0};
  return DecodeU64(*value);
}

Status AddressValid(const Bytes& addr) {
  if (addr.size() != kAddressSize) {
    return Status::InvalidArgument("malformed address");
  }
  return Status::Ok();
}

Status CreditBalance(CallContext& ctx, const Address& addr, uint64_t amount) {
  PDS2_ASSIGN_OR_RETURN(uint64_t balance, ReadU64(ctx, BalanceKey(addr)));
  if (balance + amount < balance) {
    return Status::OutOfRange("balance overflow");
  }
  return ctx.Write(BalanceKey(addr), EncodeU64(balance + amount));
}

Status DebitBalance(CallContext& ctx, const Address& addr, uint64_t amount) {
  PDS2_ASSIGN_OR_RETURN(uint64_t balance, ReadU64(ctx, BalanceKey(addr)));
  if (balance < amount) {
    return Status::InsufficientFunds("token balance too low");
  }
  return ctx.Write(BalanceKey(addr), EncodeU64(balance - amount));
}

}  // namespace

Status Erc20Token::Deploy(CallContext& ctx, const Bytes& args) {
  Reader r(args);
  PDS2_ASSIGN_OR_RETURN(std::string name, r.GetString());
  PDS2_ASSIGN_OR_RETURN(uint64_t initial_supply, r.GetU64());

  PDS2_RETURN_IF_ERROR(ctx.Write(ToBytes("meta/name"), ToBytes(name)));
  PDS2_RETURN_IF_ERROR(ctx.Write(ToBytes("meta/owner"), ctx.sender()));
  PDS2_RETURN_IF_ERROR(
      ctx.Write(ToBytes("meta/supply"), EncodeU64(initial_supply)));
  if (initial_supply > 0) {
    PDS2_RETURN_IF_ERROR(CreditBalance(ctx, ctx.sender(), initial_supply));
  }
  return ctx.Emit("Deployed", ToBytes(name));
}

Result<Bytes> Erc20Token::Call(CallContext& ctx, const std::string& method,
                               const Bytes& args) {
  Reader r(args);

  if (method == "transfer") {
    PDS2_ASSIGN_OR_RETURN(Bytes to, r.GetBytes());
    PDS2_ASSIGN_OR_RETURN(uint64_t amount, r.GetU64());
    PDS2_RETURN_IF_ERROR(AddressValid(to));
    PDS2_RETURN_IF_ERROR(DebitBalance(ctx, ctx.sender(), amount));
    PDS2_RETURN_IF_ERROR(CreditBalance(ctx, to, amount));
    Writer ev;
    ev.PutBytes(ctx.sender());
    ev.PutBytes(to);
    ev.PutU64(amount);
    PDS2_RETURN_IF_ERROR(ctx.Emit("Transfer", ev.Take()));
    return Bytes{};
  }

  if (method == "approve") {
    PDS2_ASSIGN_OR_RETURN(Bytes spender, r.GetBytes());
    PDS2_ASSIGN_OR_RETURN(uint64_t amount, r.GetU64());
    PDS2_RETURN_IF_ERROR(AddressValid(spender));
    PDS2_RETURN_IF_ERROR(
        ctx.Write(AllowanceKey(ctx.sender(), spender), EncodeU64(amount)));
    return Bytes{};
  }

  if (method == "transfer_from") {
    PDS2_ASSIGN_OR_RETURN(Bytes from, r.GetBytes());
    PDS2_ASSIGN_OR_RETURN(Bytes to, r.GetBytes());
    PDS2_ASSIGN_OR_RETURN(uint64_t amount, r.GetU64());
    PDS2_RETURN_IF_ERROR(AddressValid(from));
    PDS2_RETURN_IF_ERROR(AddressValid(to));
    PDS2_ASSIGN_OR_RETURN(uint64_t allowance,
                          ReadU64(ctx, AllowanceKey(from, ctx.sender())));
    if (allowance < amount) {
      return Status::PermissionDenied("allowance exceeded");
    }
    PDS2_RETURN_IF_ERROR(DebitBalance(ctx, from, amount));
    PDS2_RETURN_IF_ERROR(CreditBalance(ctx, to, amount));
    PDS2_RETURN_IF_ERROR(ctx.Write(AllowanceKey(from, ctx.sender()),
                                   EncodeU64(allowance - amount)));
    return Bytes{};
  }

  if (method == "mint") {
    PDS2_ASSIGN_OR_RETURN(Bytes to, r.GetBytes());
    PDS2_ASSIGN_OR_RETURN(uint64_t amount, r.GetU64());
    PDS2_RETURN_IF_ERROR(AddressValid(to));
    PDS2_ASSIGN_OR_RETURN(auto owner, ctx.Read(ToBytes("meta/owner")));
    if (!owner.has_value() || *owner != ctx.sender()) {
      return Status::PermissionDenied("only the token owner may mint");
    }
    PDS2_ASSIGN_OR_RETURN(uint64_t supply, ReadU64(ctx, ToBytes("meta/supply")));
    if (supply + amount < supply) return Status::OutOfRange("supply overflow");
    PDS2_RETURN_IF_ERROR(
        ctx.Write(ToBytes("meta/supply"), EncodeU64(supply + amount)));
    PDS2_RETURN_IF_ERROR(CreditBalance(ctx, to, amount));
    return Bytes{};
  }

  if (method == "balance_of") {
    PDS2_ASSIGN_OR_RETURN(Bytes addr, r.GetBytes());
    PDS2_RETURN_IF_ERROR(AddressValid(addr));
    PDS2_ASSIGN_OR_RETURN(uint64_t balance, ReadU64(ctx, BalanceKey(addr)));
    return EncodeU64(balance);
  }

  if (method == "allowance") {
    PDS2_ASSIGN_OR_RETURN(Bytes owner, r.GetBytes());
    PDS2_ASSIGN_OR_RETURN(Bytes spender, r.GetBytes());
    PDS2_ASSIGN_OR_RETURN(uint64_t allowance,
                          ReadU64(ctx, AllowanceKey(owner, spender)));
    return EncodeU64(allowance);
  }

  if (method == "total_supply") {
    PDS2_ASSIGN_OR_RETURN(uint64_t supply, ReadU64(ctx, ToBytes("meta/supply")));
    return EncodeU64(supply);
  }

  if (method == "token_name") {
    PDS2_ASSIGN_OR_RETURN(auto name, ctx.Read(ToBytes("meta/name")));
    return name.value_or(Bytes{});
  }

  return Status::NotFound("erc20: unknown method " + method);
}

}  // namespace pds2::chain::contracts
