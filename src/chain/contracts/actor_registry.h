#ifndef PDS2_CHAIN_CONTRACTS_ACTOR_REGISTRY_H_
#define PDS2_CHAIN_CONTRACTS_ACTOR_REGISTRY_H_

#include <string>

#include "chain/contract.h"

namespace pds2::chain::contracts {

/// On-chain registration of platform actors by blockchain address
/// (paper §III-A: "registration of all actors, by using their blockchain
/// addresses"). An actor declares one or more roles; the marketplace layer
/// consults this registry when matching providers, executors and consumers.
///
/// Roles are a bitmask so a single entity can act in several roles
/// (paper §II-C: "each entity ... can act in multiple roles").
enum ActorRole : uint64_t {
  kRoleProvider = 1 << 0,
  kRoleConsumer = 1 << 1,
  kRoleExecutor = 1 << 2,
  kRoleStorage = 1 << 3,
};

/// Deploy args: none.
///
/// Methods:
///   "register" (bytes public_key, u64 roles, string metadata) -> ()
///       sender must be the address of public_key
///   "get"      (bytes address) -> (bytes public_key, u64 roles, string metadata)
///   "count"    () -> u64
class ActorRegistry : public Contract {
 public:
  std::string Name() const override { return "actors"; }
  common::Result<common::Bytes> Call(CallContext& ctx,
                                     const std::string& method,
                                     const common::Bytes& args) override;
};

}  // namespace pds2::chain::contracts

#endif  // PDS2_CHAIN_CONTRACTS_ACTOR_REGISTRY_H_
