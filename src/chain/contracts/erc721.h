#ifndef PDS2_CHAIN_CONTRACTS_ERC721_H_
#define PDS2_CHAIN_CONTRACTS_ERC721_H_

#include <string>

#include "chain/contract.h"

namespace pds2::chain::contracts {

/// Non-fungible token registry following ERC-721 semantics (EIP-721). The
/// platform models datasets and workload code as NFTs (paper §III-A): the
/// token id is the content hash registered by its owner, and the metadata
/// blob carries the semantic description. The data itself never touches the
/// chain.
///
/// Deploy args: string name.
///
/// Methods:
///   "mint"        (bytes token_id, bytes metadata) -> ()    [id must be new]
///   "transfer"    (bytes token_id, bytes to) -> ()          [owner only]
///   "owner_of"    (bytes token_id) -> bytes address
///   "metadata_of" (bytes token_id) -> bytes
///   "count"       () -> u64
class Erc721Registry : public Contract {
 public:
  std::string Name() const override { return "erc721"; }
  common::Status Deploy(CallContext& ctx, const common::Bytes& args) override;
  common::Result<common::Bytes> Call(CallContext& ctx,
                                     const std::string& method,
                                     const common::Bytes& args) override;
};

}  // namespace pds2::chain::contracts

#endif  // PDS2_CHAIN_CONTRACTS_ERC721_H_
