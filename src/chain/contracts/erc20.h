#ifndef PDS2_CHAIN_CONTRACTS_ERC20_H_
#define PDS2_CHAIN_CONTRACTS_ERC20_H_

#include <string>

#include "chain/contract.h"

namespace pds2::chain::contracts {

/// Fungible token following ERC-20 semantics (EIP-20): balances,
/// allowances, transfer / approve / transferFrom, owner-gated minting. The
/// marketplace uses instances of this for reward tokens beyond the native
/// coin.
///
/// Deploy args: string name, u64 initial_supply (minted to the deployer).
///
/// Methods (args -> result):
///   "transfer"      (bytes to_addr, u64 amount) -> ()
///   "approve"       (bytes spender, u64 amount) -> ()
///   "transfer_from" (bytes from, bytes to, u64 amount) -> ()
///   "mint"          (bytes to, u64 amount) -> ()            [owner only]
///   "balance_of"    (bytes addr) -> u64
///   "allowance"     (bytes owner, bytes spender) -> u64
///   "total_supply"  () -> u64
///   "token_name"    () -> string
class Erc20Token : public Contract {
 public:
  std::string Name() const override { return "erc20"; }
  common::Status Deploy(CallContext& ctx, const common::Bytes& args) override;
  common::Result<common::Bytes> Call(CallContext& ctx,
                                     const std::string& method,
                                     const common::Bytes& args) override;
};

}  // namespace pds2::chain::contracts

#endif  // PDS2_CHAIN_CONTRACTS_ERC20_H_
