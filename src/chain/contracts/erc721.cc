#include "chain/contracts/erc721.h"

#include "common/serial.h"

namespace pds2::chain::contracts {

using common::Bytes;
using common::Reader;
using common::Result;
using common::Status;
using common::ToBytes;
using common::Writer;

namespace {

Bytes OwnerKey(const Bytes& token_id) {
  Bytes key = ToBytes("own/");
  common::Append(key, token_id);
  return key;
}

Bytes MetadataKey(const Bytes& token_id) {
  Bytes key = ToBytes("meta/");
  common::Append(key, token_id);
  return key;
}

}  // namespace

Status Erc721Registry::Deploy(CallContext& ctx, const Bytes& args) {
  Reader r(args);
  PDS2_ASSIGN_OR_RETURN(std::string name, r.GetString());
  PDS2_RETURN_IF_ERROR(ctx.Write(ToBytes("registry/name"), ToBytes(name)));
  Writer zero;
  zero.PutU64(0);
  return ctx.Write(ToBytes("registry/count"), zero.Take());
}

Result<Bytes> Erc721Registry::Call(CallContext& ctx, const std::string& method,
                                   const Bytes& args) {
  Reader r(args);

  if (method == "mint") {
    PDS2_ASSIGN_OR_RETURN(Bytes token_id, r.GetBytes());
    PDS2_ASSIGN_OR_RETURN(Bytes metadata, r.GetBytes());
    if (token_id.empty()) {
      return Status::InvalidArgument("empty token id");
    }
    PDS2_ASSIGN_OR_RETURN(auto existing, ctx.Read(OwnerKey(token_id)));
    if (existing.has_value()) {
      return Status::AlreadyExists("token id already minted");
    }
    PDS2_RETURN_IF_ERROR(ctx.Write(OwnerKey(token_id), ctx.sender()));
    PDS2_RETURN_IF_ERROR(ctx.Write(MetadataKey(token_id), metadata));

    PDS2_ASSIGN_OR_RETURN(auto count_bytes, ctx.Read(ToBytes("registry/count")));
    uint64_t count = 0;
    if (count_bytes.has_value()) {
      Reader cr(*count_bytes);
      PDS2_ASSIGN_OR_RETURN(count, cr.GetU64());
    }
    Writer w;
    w.PutU64(count + 1);
    PDS2_RETURN_IF_ERROR(ctx.Write(ToBytes("registry/count"), w.Take()));
    PDS2_RETURN_IF_ERROR(ctx.Emit("Minted", token_id));
    return Bytes{};
  }

  if (method == "transfer") {
    PDS2_ASSIGN_OR_RETURN(Bytes token_id, r.GetBytes());
    PDS2_ASSIGN_OR_RETURN(Bytes to, r.GetBytes());
    if (to.size() != kAddressSize) {
      return Status::InvalidArgument("malformed destination address");
    }
    PDS2_ASSIGN_OR_RETURN(auto owner, ctx.Read(OwnerKey(token_id)));
    if (!owner.has_value()) return Status::NotFound("unknown token id");
    if (*owner != ctx.sender()) {
      return Status::PermissionDenied("sender does not own this token");
    }
    PDS2_RETURN_IF_ERROR(ctx.Write(OwnerKey(token_id), to));
    PDS2_RETURN_IF_ERROR(ctx.Emit("Transferred", token_id));
    return Bytes{};
  }

  if (method == "owner_of") {
    PDS2_ASSIGN_OR_RETURN(Bytes token_id, r.GetBytes());
    PDS2_ASSIGN_OR_RETURN(auto owner, ctx.Read(OwnerKey(token_id)));
    if (!owner.has_value()) return Status::NotFound("unknown token id");
    return *owner;
  }

  if (method == "metadata_of") {
    PDS2_ASSIGN_OR_RETURN(Bytes token_id, r.GetBytes());
    PDS2_ASSIGN_OR_RETURN(auto metadata, ctx.Read(MetadataKey(token_id)));
    if (!metadata.has_value()) return Status::NotFound("unknown token id");
    return *metadata;
  }

  if (method == "count") {
    PDS2_ASSIGN_OR_RETURN(auto count_bytes, ctx.Read(ToBytes("registry/count")));
    return count_bytes.value_or(Bytes(8, 0));
  }

  return Status::NotFound("erc721: unknown method " + method);
}

}  // namespace pds2::chain::contracts
