#include "chain/evidence.h"

#include <algorithm>

#include "common/serial.h"

namespace pds2::chain {

using common::Bytes;
using common::Reader;
using common::Result;
using common::Status;
using common::Writer;

Address EquivocationEvidence::Offender() const {
  return AddressFromPublicKey(header_a.proposer_public_key);
}

Status EquivocationEvidence::Verify(
    const std::vector<common::Bytes>& validators) const {
  if (header_a.number != header_b.number) {
    return Status::InvalidArgument("evidence headers disagree on height");
  }
  if (header_a.proposer_public_key != header_b.proposer_public_key) {
    return Status::InvalidArgument("evidence headers disagree on proposer");
  }
  if (std::find(validators.begin(), validators.end(),
                header_a.proposer_public_key) == validators.end()) {
    return Status::InvalidArgument("evidence proposer is not a validator");
  }
  if (header_a.Id() == header_b.Id()) {
    return Status::InvalidArgument("evidence headers are identical");
  }
  PDS2_RETURN_IF_ERROR(crypto::VerifySignatureWithDomain(
      header_a.proposer_public_key, BlockHeader::Domain(),
      header_a.SigningBytes(), header_a.signature));
  PDS2_RETURN_IF_ERROR(crypto::VerifySignatureWithDomain(
      header_b.proposer_public_key, BlockHeader::Domain(),
      header_b.SigningBytes(), header_b.signature));
  return Status::Ok();
}

Bytes EquivocationEvidence::Serialize() const {
  Writer w;
  w.PutBytes(header_a.Serialize());
  w.PutBytes(header_b.Serialize());
  return w.Take();
}

Result<EquivocationEvidence> EquivocationEvidence::Deserialize(
    const Bytes& data) {
  Reader r(data);
  EquivocationEvidence evidence;
  PDS2_ASSIGN_OR_RETURN(Bytes a, r.GetBytes());
  PDS2_ASSIGN_OR_RETURN(Bytes b, r.GetBytes());
  PDS2_ASSIGN_OR_RETURN(evidence.header_a, BlockHeader::Deserialize(a));
  PDS2_ASSIGN_OR_RETURN(evidence.header_b, BlockHeader::Deserialize(b));
  if (!r.AtEnd()) return Status::Corruption("trailing bytes in evidence");
  return evidence;
}

Bytes EvidenceKey(const Address& offender, uint64_t height) {
  Writer w;
  w.PutRaw(offender);
  w.PutU64(height);
  return w.Take();
}

Transaction MakeEvidenceTransaction(const crypto::SigningKey& reporter,
                                    uint64_t nonce,
                                    const EquivocationEvidence& evidence) {
  CallPayload payload;
  payload.contract = kEvidenceContract;
  payload.method = "submit";
  payload.args = evidence.Serialize();
  return Transaction::Make(reporter, nonce, Address{}, /*value=*/0,
                           /*gas_limit=*/0, std::move(payload),
                           /*gas_price=*/0);
}

}  // namespace pds2::chain
