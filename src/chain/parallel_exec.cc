#include "chain/parallel_exec.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "common/checked_math.h"

namespace pds2::chain {

using common::Bytes;
using common::Status;

void AccessSet::Merge(const AccessSet& other) {
  accounts.insert(other.accounts.begin(), other.accounts.end());
  spaces.insert(other.spaces.begin(), other.spaces.end());
  global = global || other.global;
}

// --- AccessTracingView ------------------------------------------------------

uint64_t AccessTracingView::GetBalance(const Address& addr) const {
  out_->accounts.insert(addr);
  return inner_.GetBalance(addr);
}

uint64_t AccessTracingView::GetNonce(const Address& addr) const {
  out_->accounts.insert(addr);
  return inner_.GetNonce(addr);
}

Status AccessTracingView::Credit(const Address& addr, uint64_t amount) {
  out_->accounts.insert(addr);
  return inner_.Credit(addr, amount);
}

Status AccessTracingView::Debit(const Address& addr, uint64_t amount) {
  out_->accounts.insert(addr);
  return inner_.Debit(addr, amount);
}

Status AccessTracingView::Transfer(const Address& from, const Address& to,
                                   uint64_t amount) {
  out_->accounts.insert(from);
  out_->accounts.insert(to);
  return inner_.Transfer(from, to, amount);
}

void AccessTracingView::BumpNonce(const Address& addr) {
  out_->accounts.insert(addr);
  inner_.BumpNonce(addr);
}

std::optional<Bytes> AccessTracingView::StorageGet(const std::string& space,
                                                   const Bytes& key) const {
  out_->spaces.insert(space);
  return inner_.StorageGet(space, key);
}

bool AccessTracingView::StoragePut(const std::string& space, const Bytes& key,
                                   const Bytes& value) {
  out_->spaces.insert(space);
  return inner_.StoragePut(space, key, value);
}

void AccessTracingView::StorageDelete(const std::string& space,
                                      const Bytes& key) {
  out_->spaces.insert(space);
  inner_.StorageDelete(space, key);
}

std::vector<std::pair<Bytes, Bytes>> AccessTracingView::StorageScan(
    const std::string& space, const Bytes& prefix) const {
  out_->spaces.insert(space);
  return inner_.StorageScan(space, prefix);
}

// --- LaneStateView ----------------------------------------------------------

void LaneStateView::CheckAccount(const Address& addr) const {
  if (allowed_.accounts.count(addr) == 0) violated_ = true;
}

void LaneStateView::CheckSpace(const std::string& space) const {
  if (allowed_.spaces.count(space) == 0) violated_ = true;
}

std::optional<Account> LaneStateView::LookupAccount(const Address& addr) const {
  auto it = accounts_.find(addr);
  if (it != accounts_.end()) return it->second;
  return base_.GetAccount(addr);
}

void LaneStateView::PutOverlayAccount(const Address& addr,
                                      const Account& account) {
  if (!checkpoints_.empty()) {
    JournalEntry entry;
    entry.kind = JournalEntry::Kind::kAccount;
    entry.addr = addr;
    // The outer optional distinguishes "not in overlay" (empty) from "in
    // overlay with this record" (engaged).
    auto it = accounts_.find(addr);
    if (it != accounts_.end()) {
      entry.prior_account = std::optional<Account>(it->second);
    }
    journal_.push_back(std::move(entry));
  }
  accounts_[addr] = account;
}

uint64_t LaneStateView::GetBalance(const Address& addr) const {
  CheckAccount(addr);
  auto account = LookupAccount(addr);
  return account ? account->balance : 0;
}

uint64_t LaneStateView::GetNonce(const Address& addr) const {
  CheckAccount(addr);
  auto account = LookupAccount(addr);
  return account ? account->nonce : 0;
}

Status LaneStateView::Credit(const Address& addr, uint64_t amount) {
  CheckAccount(addr);
  auto account = LookupAccount(addr);
  Account updated = account.value_or(Account{});
  uint64_t new_balance;
  if (!common::CheckedAdd(updated.balance, amount, &new_balance)) {
    return Status::InvalidArgument("credit would overflow account balance");
  }
  updated.balance = new_balance;
  PutOverlayAccount(addr, updated);
  return Status::Ok();
}

Status LaneStateView::Debit(const Address& addr, uint64_t amount) {
  CheckAccount(addr);
  auto account = LookupAccount(addr);
  if (!account || account->balance < amount) {
    return Status::InsufficientFunds("balance below debit amount");
  }
  Account updated = *account;
  updated.balance -= amount;
  PutOverlayAccount(addr, updated);
  return Status::Ok();
}

Status LaneStateView::Transfer(const Address& from, const Address& to,
                               uint64_t amount) {
  // Same check order as WorldState::Transfer so failures match bit for bit.
  uint64_t new_balance;
  if (!common::CheckedAdd(GetBalance(to), amount, &new_balance)) {
    return Status::InvalidArgument("transfer would overflow recipient");
  }
  PDS2_RETURN_IF_ERROR(Debit(from, amount));
  return Credit(to, amount);
}

void LaneStateView::BumpNonce(const Address& addr) {
  CheckAccount(addr);
  Account updated = LookupAccount(addr).value_or(Account{});
  updated.nonce += 1;
  PutOverlayAccount(addr, updated);
}

void LaneStateView::JournalStorageSlot(const std::string& space,
                                       const Bytes& key) {
  if (checkpoints_.empty()) return;
  JournalEntry entry;
  entry.kind = JournalEntry::Kind::kStorage;
  entry.space = space;
  entry.key = key;
  // The outer optional distinguishes "not in overlay" (empty) from "in
  // overlay" (engaged, possibly holding a tombstone).
  auto space_it = storage_.find(space);
  if (space_it != storage_.end()) {
    auto it = space_it->second.find(key);
    if (it != space_it->second.end()) entry.prior_value = it->second;
  }
  journal_.push_back(std::move(entry));
}

std::optional<Bytes> LaneStateView::StorageGet(const std::string& space,
                                               const Bytes& key) const {
  CheckSpace(space);
  auto space_it = storage_.find(space);
  if (space_it != storage_.end()) {
    auto it = space_it->second.find(key);
    if (it != space_it->second.end()) return it->second;  // value or tombstone
  }
  return base_.StorageGet(space, key);
}

bool LaneStateView::StoragePut(const std::string& space, const Bytes& key,
                               const Bytes& value) {
  const bool existed = StorageGet(space, key).has_value();  // checks space
  JournalStorageSlot(space, key);
  storage_[space][key] = value;
  return existed;
}

void LaneStateView::StorageDelete(const std::string& space, const Bytes& key) {
  if (!StorageGet(space, key).has_value()) return;  // checks space; no-op
  JournalStorageSlot(space, key);
  storage_[space][key] = std::nullopt;  // tombstone
}

std::vector<std::pair<Bytes, Bytes>> LaneStateView::StorageScan(
    const std::string& space, const Bytes& prefix) const {
  CheckSpace(space);
  std::vector<std::pair<Bytes, Bytes>> base_entries =
      base_.StorageScan(space, prefix);
  auto space_it = storage_.find(space);
  if (space_it == storage_.end()) return base_entries;

  // Merge the sorted base scan with the overlay's entries in prefix range.
  std::vector<std::pair<Bytes, Bytes>> out;
  auto overlay_it = space_it->second.lower_bound(prefix);
  auto overlay_end = space_it->second.end();
  auto in_prefix = [&prefix](const Bytes& key) {
    return key.size() >= prefix.size() &&
           std::equal(prefix.begin(), prefix.end(), key.begin());
  };
  size_t b = 0;
  while (true) {
    const bool overlay_ok =
        overlay_it != overlay_end && in_prefix(overlay_it->first);
    const bool base_ok = b < base_entries.size();
    if (!overlay_ok && !base_ok) break;
    if (overlay_ok &&
        (!base_ok || overlay_it->first <= base_entries[b].first)) {
      if (base_ok && overlay_it->first == base_entries[b].first) ++b;
      if (overlay_it->second.has_value()) {
        out.emplace_back(overlay_it->first, *overlay_it->second);
      }
      ++overlay_it;
    } else {
      out.push_back(base_entries[b]);
      ++b;
    }
  }
  return out;
}

void LaneStateView::Begin() { checkpoints_.push_back(journal_.size()); }

void LaneStateView::Commit() {
  assert(!checkpoints_.empty());
  checkpoints_.pop_back();
  if (checkpoints_.empty()) journal_.clear();
}

void LaneStateView::Rollback() {
  assert(!checkpoints_.empty());
  const size_t mark = checkpoints_.back();
  checkpoints_.pop_back();
  while (journal_.size() > mark) {
    const JournalEntry& entry = journal_.back();
    if (entry.kind == JournalEntry::Kind::kAccount) {
      if (entry.prior_account.has_value() && entry.prior_account->has_value()) {
        accounts_[entry.addr] = **entry.prior_account;
      } else {
        accounts_.erase(entry.addr);
      }
    } else {
      if (entry.prior_value.has_value()) {
        storage_[entry.space][entry.key] = *entry.prior_value;
      } else {
        auto space_it = storage_.find(entry.space);
        if (space_it != storage_.end()) space_it->second.erase(entry.key);
      }
    }
    journal_.pop_back();
  }
}

void LaneStateView::MergeInto(WorldState* target) const {
  assert(checkpoints_.empty());
  assert(!violated_);
  for (const auto& [addr, account] : accounts_) {
    target->PutAccount(addr, account);
  }
  for (const auto& [space, kv] : storage_) {
    for (const auto& [key, value] : kv) {
      if (value.has_value()) {
        target->StoragePut(space, key, *value);
      } else {
        target->StorageDelete(space, key);
      }
    }
  }
}

// --- Lane partition ---------------------------------------------------------

namespace {

size_t Find(std::vector<size_t>& parent, size_t i) {
  while (parent[i] != i) {
    parent[i] = parent[parent[i]];
    i = parent[i];
  }
  return i;
}

void Unite(std::vector<size_t>& parent, size_t a, size_t b) {
  a = Find(parent, a);
  b = Find(parent, b);
  if (a != b) parent[std::max(a, b)] = std::min(a, b);
}

}  // namespace

std::vector<std::vector<size_t>> PartitionIntoLanes(
    const std::vector<AccessSet>& sets) {
  const size_t n = sets.size();
  std::vector<std::vector<size_t>> lanes;
  if (n == 0) return lanes;
  for (const AccessSet& set : sets) {
    if (set.global) {
      lanes.emplace_back(n);
      std::iota(lanes.back().begin(), lanes.back().end(), size_t{0});
      return lanes;
    }
  }

  std::vector<size_t> parent(n);
  std::iota(parent.begin(), parent.end(), size_t{0});
  std::map<Address, size_t> account_owner;
  std::map<std::string, size_t> space_owner;
  for (size_t i = 0; i < n; ++i) {
    for (const Address& addr : sets[i].accounts) {
      auto [it, inserted] = account_owner.emplace(addr, i);
      if (!inserted) Unite(parent, it->second, i);
    }
    for (const std::string& space : sets[i].spaces) {
      auto [it, inserted] = space_owner.emplace(space, i);
      if (!inserted) Unite(parent, it->second, i);
    }
  }

  // Lanes ordered by their lowest transaction index; members ascending.
  std::map<size_t, size_t> root_to_lane;
  for (size_t i = 0; i < n; ++i) {
    const size_t root = Find(parent, i);
    auto [it, inserted] = root_to_lane.emplace(root, lanes.size());
    if (inserted) lanes.emplace_back();
    lanes[it->second].push_back(i);
  }
  return lanes;
}

}  // namespace pds2::chain
