#include "chain/gas.h"

namespace pds2::chain {

const GasSchedule& DefaultGasSchedule() {
  static const GasSchedule kSchedule;
  return kSchedule;
}

common::Status GasMeter::Charge(uint64_t amount) {
  if (used_ + amount > limit_ || used_ + amount < used_) {
    used_ = limit_;  // burn everything, as a failed EVM call would
    return common::Status::ResourceExhausted("out of gas");
  }
  used_ += amount;
  return common::Status::Ok();
}

}  // namespace pds2::chain
