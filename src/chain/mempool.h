#ifndef PDS2_CHAIN_MEMPOOL_H_
#define PDS2_CHAIN_MEMPOOL_H_

#include <atomic>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "chain/state.h"
#include "chain/transaction.h"
#include "chain/types.h"
#include "common/result.h"

namespace pds2::chain {

/// Sharded transaction pool. Transactions are bucketed by a hash of the
/// sender address — all of one sender's pending transactions share a shard,
/// which is what lets selection walk nonce chains under a single shard lock
/// — and every shard has its own mutex, so concurrent submitters no longer
/// serialize against each other or against block production. A global
/// submission sequence number preserves the first-come-first-served
/// ordering of the previous deque-based pool.
///
/// Admission is bounded (ResourceExhausted beyond `max_transactions`), and
/// selection evicts transactions that can never execute: stale nonces and
/// pool heads whose sender balance no longer covers the worst-case cost
/// `gas_limit * gas_price + value` — a produced block never carries a
/// pre-doomed transaction.
class Mempool {
 public:
  struct Config {
    size_t num_shards = 16;
    size_t max_transactions = 1 << 16;
  };

  Mempool() : Mempool(Config{}) {}
  explicit Mempool(Config config);

  /// Moves transplant the shard vector wholesale (a vector move never moves
  /// its elements, so the per-shard mutexes stay put). Not safe while any
  /// other thread touches either pool — moving a live mempool is a bug.
  Mempool(Mempool&& other) noexcept
      : config_(other.config_),
        shards_(std::move(other.shards_)),
        next_seq_(other.next_seq_.load(std::memory_order_relaxed)),
        count_(other.count_.load(std::memory_order_relaxed)) {
    other.count_.store(0, std::memory_order_relaxed);
  }
  Mempool& operator=(Mempool&& other) noexcept {
    if (this != &other) {
      config_ = other.config_;
      shards_ = std::move(other.shards_);
      next_seq_.store(other.next_seq_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
      count_.store(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
      other.count_.store(0, std::memory_order_relaxed);
    }
    return *this;
  }

  /// Queues a transaction the chain has already signature-checked.
  /// AlreadyExists on a duplicate id or an occupied (sender, nonce) slot
  /// (first submission wins); ResourceExhausted when the pool is full.
  common::Status Add(const Transaction& tx);

  /// Whether a transaction id is currently queued.
  bool Contains(const Hash& id) const;

  /// Total queued transactions across all shards.
  size_t Size() const;

  struct Selection {
    std::vector<Transaction> selected;  // canonical block order
    std::vector<Hash> dropped;          // stale/pre-doomed, evicted for good
  };

  /// Drains the next block's transactions: per sender, consecutive nonces
  /// starting at the account nonce, affordable under worst-case fees
  /// (each transaction's own gas_price) against `state`, packed under the
  /// sum of gas limits in priority order — evidence transactions first,
  /// then by offered gas price descending, submission order (FIFO) as the
  /// deterministic tiebreak. Stale entries (nonce below the account's),
  /// below-floor offers (`gas_price_floor`) and unaffordable chain heads
  /// are evicted and reported in `dropped`; future-nonce and
  /// not-yet-fitting transactions stay queued.
  Selection SelectForBlock(const WorldState& state, uint64_t block_gas_limit,
                           uint64_t gas_price_floor);

  /// Removes transactions executed via an external block.
  void RemoveExecuted(const std::vector<Transaction>& txs);

 private:
  struct Entry {
    Transaction tx;
    Hash id;
    uint64_t seq = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    // sender -> nonce -> entry; nonce order is selection order.
    std::map<Address, std::map<uint64_t, Entry>> by_sender;
    std::set<Hash> ids;
  };

  size_t ShardIndexFor(const Address& sender) const;
  void PublishShardDepth(size_t shard_index, size_t depth) const;

  Config config_;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> next_seq_{0};
  std::atomic<size_t> count_{0};
};

}  // namespace pds2::chain

#endif  // PDS2_CHAIN_MEMPOOL_H_
