#ifndef PDS2_CHAIN_STATE_H_
#define PDS2_CHAIN_STATE_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "chain/types.h"
#include "common/result.h"

namespace pds2::chain {

/// Balance, nonce and existence of one account.
struct Account {
  uint64_t balance = 0;
  uint64_t nonce = 0;
};

/// The replicated ledger state: native-token accounts plus raw contract
/// storage. Mutations are journaled so a failed transaction can be rolled
/// back precisely (only the keys it touched are restored).
class WorldState {
 public:
  WorldState() = default;

  // --- Accounts -----------------------------------------------------------

  /// Balance of `addr` (0 for unknown accounts).
  uint64_t GetBalance(const Address& addr) const;
  /// Current nonce of `addr` (0 for unknown accounts).
  uint64_t GetNonce(const Address& addr) const;
  /// Credits an account (used for genesis allocations, block rewards and
  /// gas refunds). Guarded: InvalidArgument when the credit would wrap the
  /// balance past uint64, leaving the account untouched. Transfers and fee
  /// credits can never trip the guard (conservation bounds every balance by
  /// the total supply, which CreditGenesis caps below uint64), so callers
  /// on those paths may assert success.
  common::Status Credit(const Address& addr, uint64_t amount);
  /// Debits; InsufficientFunds if the balance is too small.
  common::Status Debit(const Address& addr, uint64_t amount);
  /// Atomic transfer from -> to.
  common::Status Transfer(const Address& from, const Address& to,
                          uint64_t amount);
  /// Increments the account nonce.
  void BumpNonce(const Address& addr);

  // --- Contract storage ----------------------------------------------------

  /// Reads a storage slot; nullopt when unset.
  std::optional<common::Bytes> StorageGet(const std::string& space,
                                          const common::Bytes& key) const;
  /// Writes a storage slot. Returns true if the slot already existed
  /// (drives the cheaper "update" gas price).
  bool StoragePut(const std::string& space, const common::Bytes& key,
                  const common::Bytes& value);
  /// Deletes a slot (no-op if absent).
  void StorageDelete(const std::string& space, const common::Bytes& key);
  /// All (key, value) pairs in a namespace whose key starts with `prefix`,
  /// in key order. Used by read-only enumeration queries.
  std::vector<std::pair<common::Bytes, common::Bytes>> StorageScan(
      const std::string& space, const common::Bytes& prefix) const;

  // --- Journaling -----------------------------------------------------------

  /// Opens a nested checkpoint. Every mutation after this point can be
  /// undone with Rollback or kept with Commit.
  void Begin();
  /// Discards the most recent checkpoint, keeping its mutations.
  void Commit();
  /// Undoes all mutations since the most recent checkpoint.
  void Rollback();
  /// Depth of open checkpoints (0 outside any transaction).
  size_t CheckpointDepth() const { return checkpoints_.size(); }

  /// Commitment to the full state (order-independent digest of accounts
  /// and storage). Included in block headers.
  Hash Digest() const;

  /// Sum of all account balances — the circulating native supply. Only
  /// genesis allocations create tokens, so this is invariant across
  /// transaction execution (fees merely move value to the proposer); the
  /// audit tests assert it.
  uint64_t TotalBalance() const;

  // --- Snapshots ------------------------------------------------------------

  /// Canonical byte serialization of the full state (accounts in address
  /// order, then storage spaces in name/key order — the same iteration
  /// order Digest() hashes, so a restored state digests identically).
  /// Requires no open checkpoints.
  common::Bytes SerializeSnapshot() const;

  /// Rebuilds a state from SerializeSnapshot bytes. Corruption on any
  /// malformed input; never crashes.
  static common::Result<WorldState> DeserializeSnapshot(
      const common::Bytes& data);

 private:
  struct JournalEntry {
    enum class Kind { kAccount, kStorage } kind;
    // Account entries.
    Address addr;
    std::optional<Account> prior_account;
    // Storage entries.
    std::string space;
    common::Bytes key;
    std::optional<common::Bytes> prior_value;
  };

  void JournalAccount(const Address& addr);
  void JournalStorage(const std::string& space, const common::Bytes& key);

  std::map<Address, Account> accounts_;
  // space -> key -> value.
  std::map<std::string, std::map<common::Bytes, common::Bytes>> storage_;
  std::vector<JournalEntry> journal_;
  std::vector<size_t> checkpoints_;  // journal sizes at Begin()
};

}  // namespace pds2::chain

#endif  // PDS2_CHAIN_STATE_H_
