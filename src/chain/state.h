#ifndef PDS2_CHAIN_STATE_H_
#define PDS2_CHAIN_STATE_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "chain/types.h"
#include "common/result.h"

namespace pds2::chain {

/// Balance, nonce and existence of one account.
struct Account {
  uint64_t balance = 0;
  uint64_t nonce = 0;
};

/// Reserved storage space holding the stake ledger: 20-byte address keys map
/// to u64 bonded amounts, plus the (non-address-sized) burned-total key. The
/// space lives in ordinary contract storage, so journaling, digests,
/// snapshots and lane overlays all cover it with no special cases.
inline constexpr char kStakeSpace[] = "pds2.stake";
/// Key under kStakeSpace accumulating burned (slashed-and-destroyed) tokens.
/// Deliberately not 20 bytes long, so it can never collide with an address.
inline constexpr char kBurnedKey[] = "burned-total";
/// Denominator of the reporter's share of a slash (basis points).
inline constexpr uint32_t kSlashBpsDenominator = 10'000;

/// Abstract ledger surface transaction execution runs against. WorldState
/// is the canonical implementation; the parallel executor substitutes
/// per-lane overlay views (see parallel_exec.h) that buffer writes and
/// validate the inferred access sets, so the same execution code serves
/// both the sequential and the optimistic-parallel paths.
class StateView {
 public:
  virtual ~StateView() = default;

  // Accounts.
  virtual uint64_t GetBalance(const Address& addr) const = 0;
  virtual uint64_t GetNonce(const Address& addr) const = 0;
  virtual common::Status Credit(const Address& addr, uint64_t amount) = 0;
  virtual common::Status Debit(const Address& addr, uint64_t amount) = 0;
  virtual common::Status Transfer(const Address& from, const Address& to,
                                  uint64_t amount) = 0;
  virtual void BumpNonce(const Address& addr) = 0;

  // Contract storage.
  virtual std::optional<common::Bytes> StorageGet(
      const std::string& space, const common::Bytes& key) const = 0;
  virtual bool StoragePut(const std::string& space, const common::Bytes& key,
                          const common::Bytes& value) = 0;
  virtual void StorageDelete(const std::string& space,
                             const common::Bytes& key) = 0;
  virtual std::vector<std::pair<common::Bytes, common::Bytes>> StorageScan(
      const std::string& space, const common::Bytes& prefix) const = 0;

  // Journaling (transaction checkpoint scope).
  virtual void Begin() = 0;
  virtual void Commit() = 0;
  virtual void Rollback() = 0;

  // --- Stake ledger ---------------------------------------------------------
  // Accountability deposits (paper's D2M-style incentive layer). These are
  // non-virtual helpers layered entirely on the virtual primitives above, so
  // WorldState, lane overlays and tracing views all support them with
  // identical semantics: stake lives in the kStakeSpace storage namespace
  // and bonding/releasing moves value between an account's spendable balance
  // and its stake record. The conserved quantity is
  //   TotalBalance() + TotalStaked() + BurnedTotal().

  /// Bonded stake of `addr` (0 when none).
  uint64_t StakeOf(const Address& addr) const;
  /// Moves `amount` from `addr`'s balance into its stake record.
  common::Status StakeBond(const Address& addr, uint64_t amount);
  /// Moves `amount` from `addr`'s stake record back to its balance.
  common::Status StakeRelease(const Address& addr, uint64_t amount);
  /// Confiscates `amount` from `offender`'s stake: `reporter_bps` basis
  /// points go to `reporter` as a bounty, the remainder is burned (added to
  /// the burned-total record, never to any balance). Exact: the three-way
  /// split always sums to `amount`.
  common::Status StakeSlash(const Address& offender, uint64_t amount,
                            const Address& reporter, uint32_t reporter_bps);
  /// Total tokens destroyed by slashing so far.
  uint64_t BurnedTotal() const;
  /// Sum of all bonded stakes.
  uint64_t TotalStaked() const;
};

/// The replicated ledger state: native-token accounts plus raw contract
/// storage. Mutations are journaled so a failed transaction can be rolled
/// back precisely (only the keys it touched are restored).
class WorldState final : public StateView {
 public:
  WorldState() = default;

  // --- Accounts -----------------------------------------------------------

  /// Balance of `addr` (0 for unknown accounts).
  uint64_t GetBalance(const Address& addr) const override;
  /// Current nonce of `addr` (0 for unknown accounts).
  uint64_t GetNonce(const Address& addr) const override;
  /// Credits an account (used for genesis allocations, block rewards and
  /// gas refunds). Guarded: InvalidArgument when the credit would wrap the
  /// balance past uint64, leaving the account untouched. Transfers and fee
  /// credits can never trip the guard (conservation bounds every balance by
  /// the total supply, which CreditGenesis caps below uint64), so callers
  /// on those paths may assert success.
  common::Status Credit(const Address& addr, uint64_t amount) override;
  /// Debits; InsufficientFunds if the balance is too small.
  common::Status Debit(const Address& addr, uint64_t amount) override;
  /// Atomic transfer from -> to.
  common::Status Transfer(const Address& from, const Address& to,
                          uint64_t amount) override;
  /// Increments the account nonce.
  void BumpNonce(const Address& addr) override;
  /// Raw account record; nullopt when the account does not exist. The
  /// existence distinction is observable (created-but-empty accounts are
  /// hashed by Digest()), so overlay views replicate it exactly.
  std::optional<Account> GetAccount(const Address& addr) const;
  /// Installs an account record verbatim (journaled like any mutation).
  /// Used by the parallel executor to merge lane overlays.
  void PutAccount(const Address& addr, const Account& account);

  // --- Contract storage ----------------------------------------------------

  /// Reads a storage slot; nullopt when unset.
  std::optional<common::Bytes> StorageGet(
      const std::string& space, const common::Bytes& key) const override;
  /// Writes a storage slot. Returns true if the slot already existed
  /// (drives the cheaper "update" gas price).
  bool StoragePut(const std::string& space, const common::Bytes& key,
                  const common::Bytes& value) override;
  /// Deletes a slot (no-op if absent).
  void StorageDelete(const std::string& space,
                     const common::Bytes& key) override;
  /// All (key, value) pairs in a namespace whose key starts with `prefix`,
  /// in key order. Used by read-only enumeration queries.
  std::vector<std::pair<common::Bytes, common::Bytes>> StorageScan(
      const std::string& space, const common::Bytes& prefix) const override;

  // --- Journaling -----------------------------------------------------------

  /// Opens a nested checkpoint. Every mutation after this point can be
  /// undone with Rollback or kept with Commit.
  void Begin() override;
  /// Discards the most recent checkpoint, keeping its mutations.
  void Commit() override;
  /// Undoes all mutations since the most recent checkpoint.
  void Rollback() override;
  /// Depth of open checkpoints (0 outside any transaction).
  size_t CheckpointDepth() const { return checkpoints_.size(); }

  /// Commitment to the full state (order-independent digest of accounts
  /// and storage). Included in block headers.
  Hash Digest() const;

  /// Sum of all account balances — the circulating native supply. Only
  /// genesis allocations create tokens, so this is invariant across
  /// transaction execution (fees merely move value to the proposer); the
  /// audit tests assert it.
  uint64_t TotalBalance() const;

  // --- Snapshots ------------------------------------------------------------

  /// Canonical byte serialization of the full state (accounts in address
  /// order, then storage spaces in name/key order — the same iteration
  /// order Digest() hashes, so a restored state digests identically).
  /// Requires no open checkpoints.
  common::Bytes SerializeSnapshot() const;

  /// Rebuilds a state from SerializeSnapshot bytes. Corruption on any
  /// malformed input; never crashes.
  static common::Result<WorldState> DeserializeSnapshot(
      const common::Bytes& data);

 private:
  struct JournalEntry {
    enum class Kind { kAccount, kStorage } kind;
    // Account entries.
    Address addr;
    std::optional<Account> prior_account;
    // Storage entries.
    std::string space;
    common::Bytes key;
    std::optional<common::Bytes> prior_value;
  };

  void JournalAccount(const Address& addr);
  void JournalStorage(const std::string& space, const common::Bytes& key);

  std::map<Address, Account> accounts_;
  // space -> key -> value.
  std::map<std::string, std::map<common::Bytes, common::Bytes>> storage_;
  std::vector<JournalEntry> journal_;
  std::vector<size_t> checkpoints_;  // journal sizes at Begin()
};

}  // namespace pds2::chain

#endif  // PDS2_CHAIN_STATE_H_
