#include "chain/contract.h"

#include "chain/contracts/actor_registry.h"
#include "chain/contracts/erc20.h"
#include "chain/contracts/erc721.h"
#include "chain/contracts/workload.h"
#include "common/bytes.h"
#include "common/checked_math.h"
#include "common/serial.h"
#include "crypto/schnorr.h"

namespace pds2::chain {

using common::Bytes;
using common::Result;
using common::Status;

CallContext::CallContext(StateView& state, GasMeter& gas, Address sender,
                         uint64_t value, std::string contract_name,
                         uint64_t instance, const BlockContext& block,
                         std::vector<Event>* events)
    : state_(state),
      gas_(gas),
      sender_(std::move(sender)),
      value_(value),
      contract_name_(std::move(contract_name)),
      instance_(instance),
      space_(contract_name_ + "/" + std::to_string(instance)),
      block_(block),
      events_(events) {}

Result<std::optional<Bytes>> CallContext::Read(const Bytes& key) {
  PDS2_RETURN_IF_ERROR(gas_.Charge(DefaultGasSchedule().storage_read));
  return state_.StorageGet(space_, key);
}

Status CallContext::Write(const Bytes& key, const Bytes& value) {
  // Peek existence first to charge the cheaper update price.
  const bool existed = state_.StorageGet(space_, key).has_value();
  const auto& schedule = DefaultGasSchedule();
  PDS2_RETURN_IF_ERROR(gas_.Charge(existed ? schedule.storage_update
                                           : schedule.storage_write));
  state_.StoragePut(space_, key, value);
  return Status::Ok();
}

Status CallContext::Delete(const Bytes& key) {
  PDS2_RETURN_IF_ERROR(gas_.Charge(DefaultGasSchedule().storage_update));
  state_.StorageDelete(space_, key);
  return Status::Ok();
}

Result<std::vector<std::pair<Bytes, Bytes>>> CallContext::Scan(
    const Bytes& prefix) {
  auto entries = state_.StorageScan(space_, prefix);
  PDS2_RETURN_IF_ERROR(gas_.Charge(
      DefaultGasSchedule().storage_read * (entries.size() + 1)));
  return entries;
}

Status CallContext::Emit(const std::string& name, const Bytes& data) {
  const auto& schedule = DefaultGasSchedule();
  PDS2_RETURN_IF_ERROR(
      gas_.Charge(schedule.event_emit + (data.size() / 8) * schedule.event_emit / 8));
  if (events_ != nullptr) {
    events_->push_back(Event{contract_name_, instance_, name, data});
  }
  return Status::Ok();
}

Status CallContext::VerifySig(const Bytes& public_key,
                              const std::string& domain, const Bytes& message,
                              const Bytes& signature) {
  PDS2_RETURN_IF_ERROR(gas_.Charge(DefaultGasSchedule().signature_check));
  return crypto::VerifySignatureWithDomain(public_key, domain, message,
                                           signature);
}

Status CallContext::PayOut(const Address& to, uint64_t amount) {
  PDS2_RETURN_IF_ERROR(gas_.Charge(DefaultGasSchedule().transfer));
  return state_.Transfer(SelfAddress(), to, amount);
}

Status CallContext::Burn(uint64_t amount) {
  PDS2_RETURN_IF_ERROR(gas_.Charge(DefaultGasSchedule().transfer));
  PDS2_RETURN_IF_ERROR(state_.Debit(SelfAddress(), amount));
  uint64_t new_burned;
  if (!common::CheckedAdd(state_.BurnedTotal(), amount, &new_burned)) {
    return Status::InvalidArgument("burn would overflow burned total");
  }
  common::Writer w;
  w.PutU64(new_burned);
  state_.StoragePut(kStakeSpace, common::ToBytes(kBurnedKey), w.Take());
  return Status::Ok();
}

Address CallContext::SelfAddress() const {
  return ContractAddress(contract_name_, instance_);
}

Status ContractRegistry::Register(std::unique_ptr<Contract> contract) {
  const std::string name = contract->Name();
  auto [it, inserted] = contracts_.emplace(name, std::move(contract));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("contract type already registered: " + name);
  }
  return Status::Ok();
}

Contract* ContractRegistry::Find(const std::string& name) const {
  auto it = contracts_.find(name);
  return it == contracts_.end() ? nullptr : it->second.get();
}

std::unique_ptr<ContractRegistry> ContractRegistry::CreateDefault() {
  auto registry = std::make_unique<ContractRegistry>();
  // Built-ins can never collide at startup.
  (void)registry->Register(std::make_unique<contracts::Erc20Token>());
  (void)registry->Register(std::make_unique<contracts::Erc721Registry>());
  (void)registry->Register(std::make_unique<contracts::ActorRegistry>());
  (void)registry->Register(std::make_unique<contracts::WorkloadContract>());
  return registry;
}

}  // namespace pds2::chain
