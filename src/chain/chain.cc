#include "chain/chain.h"

#include <cassert>

#include "common/checked_math.h"
#include "common/logging.h"
#include "common/serial.h"
#include "common/thread_pool.h"
#include "obs/stopwatch.h"
#include "obs/trace.h"

namespace pds2::chain {

using common::Bytes;
using common::Reader;
using common::Result;
using common::Status;
using common::Writer;

Blockchain::Blockchain(std::vector<Bytes> validator_public_keys,
                       std::unique_ptr<ContractRegistry> registry,
                       ChainConfig config)
    : validators_(std::move(validator_public_keys)),
      registry_(std::move(registry)),
      config_(config) {
  assert(!validators_.empty());
  assert(registry_ != nullptr);
}

Status Blockchain::CreditGenesis(const Address& addr, uint64_t amount) {
  if (!blocks_.empty()) {
    return Status::FailedPrecondition(
        "genesis allocation after the first block");
  }
  // Cap the minted supply below uint64 so conservation keeps every later
  // balance, fee and TotalBalance() sum exactly representable: transfers
  // and fee settlement only move existing tokens, so no account can ever
  // reach a value the genesis total did not.
  uint64_t new_supply;
  if (!common::CheckedAdd(state_.TotalBalance(), amount, &new_supply)) {
    return Status::InvalidArgument("genesis allocation overflows total supply");
  }
  return state_.Credit(addr, amount);
}

namespace {

// Bound on the verification cache; far above any realistic working set
// (mempool + a few blocks in flight). On overflow the cache resets — the
// only cost is re-verifying, never a correctness change.
constexpr size_t kMaxVerifiedTxCacheEntries = 1 << 17;

// Below this many uncached signatures the pool dispatch overhead exceeds
// the win; verify inline.
constexpr size_t kParallelVerifyThreshold = 4;

}  // namespace

void Blockchain::CacheVerified(Hash tx_id) {
  if (verified_txs_.size() >= kMaxVerifiedTxCacheEntries) {
    verified_txs_.clear();
  }
  verified_txs_.insert(std::move(tx_id));
}

Status Blockchain::VerifyTransactionCached(const Transaction& tx) {
  Hash id = tx.Id();
  if (verified_txs_.count(id) > 0) {
    PDS2_M_COUNT("chain.sig_cache_hits", 1);
    return Status::Ok();
  }
  ++signature_verifications_;
  PDS2_M_COUNT("chain.sig_verifications", 1);
  PDS2_RETURN_IF_ERROR(tx.VerifySignature());
  CacheVerified(std::move(id));
  return Status::Ok();
}

Status Blockchain::VerifyBlockSignatures(
    const std::vector<Transaction>& txs) {
  PDS2_TRACE_SPAN("chain.verify_block_signatures");
  // Partition into cached and still-unverified transactions. The id covers
  // the signature bytes, so a cache hit certifies this exact (tx, sig) pair.
  std::vector<size_t> unverified;
  std::vector<Hash> unverified_ids;
  for (size_t i = 0; i < txs.size(); ++i) {
    Hash id = txs[i].Id();
    if (verified_txs_.count(id) == 0) {
      unverified.push_back(i);
      unverified_ids.push_back(std::move(id));
    }
  }

  std::vector<Status> statuses(unverified.size(), Status::Ok());
  auto verify_one = [&](size_t k) {
    statuses[k] = txs[unverified[k]].VerifySignature();
  };
  common::ThreadPool* pool = config_.thread_pool;
  if (pool != nullptr && pool->NumThreads() > 1 &&
      unverified.size() >= kParallelVerifyThreshold) {
    pool->ParallelFor(0, unverified.size(), verify_one);
  } else {
    for (size_t k = 0; k < unverified.size(); ++k) verify_one(k);
  }
  signature_verifications_ += unverified.size();
  PDS2_M_COUNT("chain.sig_verifications", unverified.size());
  PDS2_M_COUNT("chain.sig_cache_hits", txs.size() - unverified.size());

  Status first_failure = Status::Ok();
  for (size_t k = 0; k < unverified.size(); ++k) {
    if (statuses[k].ok()) {
      CacheVerified(std::move(unverified_ids[k]));
    } else if (first_failure.ok()) {
      first_failure = statuses[k];
    }
  }
  return first_failure;
}

Status Blockchain::SubmitTransaction(const Transaction& tx) {
  obs::ScopedSpan span("chain.submit_tx");
  PDS2_RETURN_IF_ERROR(VerifyTransactionCached(tx));
  // A tx id already queued or already executed is a duplicate: the
  // signature cache would happily re-admit it (it only dedups the
  // *verification*), so check the mempool and the receipt history before
  // queueing a second copy that would burn the sender's fee twice.
  const Hash id = tx.Id();
  if (mempool_ids_.count(id) > 0) {
    return Status::AlreadyExists("transaction already queued in mempool");
  }
  if (receipts_.count(id) > 0) {
    return Status::AlreadyExists("transaction already executed");
  }
  const auto& schedule = DefaultGasSchedule();
  const uint64_t floor_cost =
      schedule.tx_base + schedule.tx_payload_byte * tx.payload().args.size();
  if (tx.gas_limit() < floor_cost) {
    return Status::InvalidArgument("gas limit below intrinsic cost");
  }
  // Reject settlement arithmetic the ledger cannot represent: a gas_limit
  // whose worst-case fee (gas_limit * gas_price) or whose fee + value sum
  // wraps uint64 would slip past the affordability check wrapped to a tiny
  // number and be silently under-charged.
  uint64_t max_fee, max_cost;
  if (!common::CheckedMul(tx.gas_limit(), config_.gas_price, &max_fee) ||
      !common::CheckedAdd(tx.value(), max_fee, &max_cost)) {
    return Status::InvalidArgument(
        "gas limit * gas price + value overflows settlement arithmetic");
  }
  if (!tx.payload().IsPlainTransfer() &&
      registry_->Find(tx.payload().contract) == nullptr) {
    return Status::NotFound("unknown contract type: " + tx.payload().contract);
  }
  mempool_.push_back(tx);
  mempool_ids_.insert(id);
  // Remember where the tx came from so the block that executes it can
  // link back to the submitter's span (the tx bytes stay trace-free).
  if (span.id() != 0) tx_trace_ctx_[id] = span.context();
  return Status::Ok();
}

void Blockchain::LinkAndForgetTxContexts(const std::vector<Transaction>& txs,
                                         obs::ScopedSpan* span) {
  if (tx_trace_ctx_.empty()) return;
  for (const Transaction& tx : txs) {
    const auto it = tx_trace_ctx_.find(tx.Id());
    if (it == tx_trace_ctx_.end()) continue;
    span->AddLink(it->second);
    tx_trace_ctx_.erase(it);
  }
}

Hash Blockchain::LastBlockHash() const {
  if (blocks_.empty()) return Hash(32, 0);  // genesis sentinel
  return blocks_.back().header.Id();
}

const Bytes& Blockchain::NextProposer() const {
  return validators_[blocks_.size() % validators_.size()];
}

const Bytes& Blockchain::ProposerAt(common::SimTime timestamp) const {
  if (config_.proposer_grace == 0) return NextProposer();
  const common::SimTime parent_ts =
      blocks_.empty() ? 0 : blocks_.back().header.timestamp;
  const common::SimTime elapsed =
      timestamp > parent_ts ? timestamp - parent_ts : 0;
  // One allowed proposer per grace window: the primary for the first
  // window, then the rotation shifts one position per elapsed window.
  const uint64_t shift = elapsed / config_.proposer_grace;
  return validators_[(blocks_.size() + shift) % validators_.size()];
}

Receipt Blockchain::ExecuteTransaction(const Transaction& tx,
                                       uint64_t block_number,
                                       common::SimTime timestamp) {
  Receipt receipt;
  receipt.tx_id = tx.Id();
  receipt.block_number = block_number;

  const Address sender = tx.SenderAddress();
  const auto& schedule = DefaultGasSchedule();
  GasMeter gas(tx.gas_limit());

  // The sender must afford worst-case gas plus the transferred value. Both
  // the fee multiply and the fee + value sum are overflow-checked: a
  // wrapped max_fee would pass this check while the real worst-case cost
  // exceeds any balance (SubmitTransaction rejects such txs up front, but
  // blocks arriving via ApplyExternalBlock reach execution directly).
  uint64_t max_fee, max_cost;
  if (!common::CheckedMul(tx.gas_limit(), config_.gas_price, &max_fee) ||
      !common::CheckedAdd(tx.value(), max_fee, &max_cost)) {
    receipt.success = false;
    receipt.error = Status::InvalidArgument(
                        "gas limit * gas price + value overflows "
                        "settlement arithmetic")
                        .ToString();
    receipt.gas_used = 0;
    return receipt;
  }
  if (state_.GetBalance(sender) < max_cost) {
    receipt.success = false;
    receipt.error = "InsufficientFunds: cannot cover value + max gas fee";
    receipt.gas_used = 0;
    return receipt;
  }

  state_.BumpNonce(sender);

  // Intrinsic gas is charged regardless of the execution outcome.
  Status status = gas.Charge(schedule.tx_base);
  if (status.ok()) {
    status =
        gas.Charge(schedule.tx_payload_byte * tx.payload().args.size());
  }

  Bytes output;
  std::vector<Event> events;
  if (status.ok()) {
    state_.Begin();
    const CallPayload& payload = tx.payload();
    BlockContext block_ctx{block_number, timestamp};

    if (payload.IsPlainTransfer()) {
      if (tx.to().size() != kAddressSize) {
        status = Status::InvalidArgument("malformed recipient address");
      } else {
        status = state_.Transfer(sender, tx.to(), tx.value());
      }
    } else {
      Contract* contract = registry_->Find(payload.contract);
      if (contract == nullptr) {
        status = Status::NotFound("unknown contract: " + payload.contract);
      } else if (payload.method == "deploy") {
        const uint64_t instance = next_instance_id_;
        // Escrow the transferred value into the new instance's account.
        status = tx.value() > 0
                     ? state_.Transfer(
                           sender, ContractAddress(payload.contract, instance),
                           tx.value())
                     : Status::Ok();
        if (status.ok()) {
          CallContext ctx(state_, gas, sender, tx.value(), payload.contract,
                          instance, block_ctx, &events);
          status = contract->Deploy(ctx, payload.args);
        }
        if (status.ok()) {
          ++next_instance_id_;
          Writer w;
          w.PutU64(instance);
          output = w.Take();
        }
      } else {
        if (payload.instance == 0 || payload.instance >= next_instance_id_) {
          status = Status::NotFound("contract instance not deployed");
        } else {
          status = tx.value() > 0
                       ? state_.Transfer(sender,
                                         ContractAddress(payload.contract,
                                                         payload.instance),
                                         tx.value())
                       : Status::Ok();
          if (status.ok()) {
            CallContext ctx(state_, gas, sender, tx.value(), payload.contract,
                            payload.instance, block_ctx, &events);
            auto result = contract->Call(ctx, payload.method, payload.args);
            if (result.ok()) {
              output = std::move(result).value();
            } else {
              status = result.status();
            }
          }
        }
      }
    }

    if (status.ok()) {
      state_.Commit();
    } else {
      state_.Rollback();
    }
  }

  // Settle gas: sender pays, proposer is credited by the caller.
  receipt.gas_used = gas.used();
  const uint64_t fee = receipt.gas_used * config_.gas_price;
  Status fee_status = state_.Debit(sender, fee);
  assert(fee_status.ok());  // guaranteed by the upfront balance check
  (void)fee_status;
  total_gas_used_ += receipt.gas_used;

  receipt.success = status.ok();
  if (!status.ok()) {
    receipt.error = status.ToString();
  } else {
    receipt.output = std::move(output);
    receipt.events = std::move(events);
  }
  PDS2_M_COUNT("chain.txs_executed", 1);
  PDS2_M_COUNT("chain.gas_used", receipt.gas_used);
  return receipt;
}

Result<Block> Blockchain::ProduceBlock(const crypto::SigningKey& proposer,
                                       common::SimTime timestamp) {
  // The block's own timestamp is the span's sim time: block production is
  // instantaneous in simulated time but anchored where the block lands.
  const common::SimTime span_sim = timestamp;
  obs::ScopedSpan span("chain.produce_block", &span_sim);
  PDS2_M_TIME_US("chain.produce_block_us");
  if (proposer.PublicKey() != ProposerAt(timestamp)) {
    return Status::PermissionDenied("not this validator's turn to propose");
  }
  if (!blocks_.empty() && timestamp <= blocks_.back().header.timestamp) {
    return Status::InvalidArgument("block timestamp must increase");
  }

  const uint64_t block_number = blocks_.size();
  const Address proposer_addr = AddressFromPublicKey(proposer.PublicKey());

  Block block;
  uint64_t block_gas = 0;
  uint64_t fees = 0;

  // Drain the mempool in submission order; a transaction whose nonce is
  // ahead of the account stays queued, one that is behind is dropped.
  // Multiple passes let several transactions from one sender land in a
  // single block.
  bool progressed = true;
  while (progressed && block_gas < config_.block_gas_limit) {
    progressed = false;
    for (auto it = mempool_.begin(); it != mempool_.end();) {
      const uint64_t account_nonce = state_.GetNonce(it->SenderAddress());
      if (it->nonce() < account_nonce) {
        mempool_ids_.erase(it->Id());
        tx_trace_ctx_.erase(it->Id());
        it = mempool_.erase(it);  // stale, superseded
        continue;
      }
      if (it->nonce() > account_nonce ||
          block_gas + it->gas_limit() > config_.block_gas_limit) {
        ++it;
        continue;
      }
      Receipt receipt = ExecuteTransaction(*it, block_number, timestamp);
      block_gas += receipt.gas_used;
      fees += receipt.gas_used * config_.gas_price;
      receipts_[receipt.tx_id] = receipt;
      block.transactions.push_back(*it);
      mempool_ids_.erase(receipt.tx_id);
      it = mempool_.erase(it);
      progressed = true;
    }
  }

  // Fees go to the proposer. Cannot overflow: fees were just debited from
  // senders, so crediting them merely moves supply (conservation).
  if (fees > 0) {
    Status credit_status = state_.Credit(proposer_addr, fees);
    assert(credit_status.ok());
    (void)credit_status;
  }

  block.header.parent_hash = LastBlockHash();
  block.header.number = block_number;
  block.header.timestamp = timestamp;
  block.header.tx_root =
      Block::ComputeTxRoot(block.transactions, config_.thread_pool);
  block.header.state_root = state_.Digest();
  block.header.proposer_public_key = proposer.PublicKey();
  block.header.signature = proposer.SignWithDomain(
      BlockHeader::Domain(), block.header.SigningBytes());

  blocks_.push_back(block);
  LinkAndForgetTxContexts(block.transactions, &span);
  PDS2_M_COUNT("chain.blocks_produced", 1);
  PDS2_LOG(kDebug) << "produced block " << block_number << " with "
                   << block.transactions.size() << " txs, gas " << block_gas;
  if (listener_ != nullptr) listener_->OnBlockCommitted(*this, blocks_.back());
  return block;
}

Status Blockchain::ApplyExternalBlock(const Block& block) {
  const common::SimTime span_sim = block.header.timestamp;
  obs::ScopedSpan span("chain.apply_block", &span_sim);
  PDS2_M_TIME_US("chain.apply_block_us");
  Status status = ApplyExternalBlockInner(block);
  if (status.ok()) {
    PDS2_M_COUNT("chain.blocks_applied", 1);
    LinkAndForgetTxContexts(block.transactions, &span);
  } else {
    PDS2_M_COUNT("chain.blocks_rejected", 1);
  }
  return status;
}

Status Blockchain::ApplyExternalBlockInner(const Block& block) {
  // Consensus validation.
  if (block.header.number != blocks_.size()) {
    return Status::InvalidArgument("block number out of sequence");
  }
  if (block.header.parent_hash != LastBlockHash()) {
    return Status::InvalidArgument("parent hash mismatch");
  }
  if (block.header.proposer_public_key != ProposerAt(block.header.timestamp)) {
    return Status::PermissionDenied("proposer out of turn");
  }
  if (!blocks_.empty() &&
      block.header.timestamp <= blocks_.back().header.timestamp) {
    return Status::InvalidArgument("non-monotonic block timestamp");
  }
  PDS2_RETURN_IF_ERROR(crypto::VerifySignatureWithDomain(
      block.header.proposer_public_key, BlockHeader::Domain(),
      block.header.SigningBytes(), block.header.signature));
  if (block.header.tx_root !=
      Block::ComputeTxRoot(block.transactions, config_.thread_pool)) {
    return Status::Corruption("transaction root mismatch");
  }
  PDS2_RETURN_IF_ERROR(VerifyBlockSignatures(block.transactions));

  // Execute and check the resulting state commitment.
  uint64_t fees = 0;
  for (const Transaction& tx : block.transactions) {
    Receipt receipt =
        ExecuteTransaction(tx, block.header.number, block.header.timestamp);
    fees += receipt.gas_used * config_.gas_price;
    receipts_[receipt.tx_id] = receipt;
  }
  if (fees > 0) {
    Status credit_status = state_.Credit(
        AddressFromPublicKey(block.header.proposer_public_key), fees);
    assert(credit_status.ok());  // fees were debited from senders above
    (void)credit_status;
  }
  if (state_.Digest() != block.header.state_root) {
    return Status::Corruption("state root mismatch after execution");
  }
  blocks_.push_back(block);
  if (listener_ != nullptr) listener_->OnBlockCommitted(*this, blocks_.back());
  return Status::Ok();
}

std::vector<Event> Blockchain::EventsFor(const std::string& contract,
                                         uint64_t instance) const {
  // Receipts are re-walked in chain order so the audit view is stable.
  std::vector<Event> events;
  for (const Block& block : blocks_) {
    for (const Transaction& tx : block.transactions) {
      auto it = receipts_.find(tx.Id());
      if (it == receipts_.end()) continue;
      for (const Event& event : it->second.events) {
        if (event.contract == contract && event.instance == instance) {
          events.push_back(event);
        }
      }
    }
  }
  return events;
}

Result<Receipt> Blockchain::GetReceipt(const Hash& tx_id) const {
  auto it = receipts_.find(tx_id);
  if (it == receipts_.end()) {
    return Status::NotFound("no receipt for transaction");
  }
  return it->second;
}

Result<Bytes> Blockchain::Query(const std::string& contract, uint64_t instance,
                                const std::string& method, const Bytes& args,
                                const Address& caller) const {
  Contract* logic = registry_->Find(contract);
  if (logic == nullptr) {
    return Status::NotFound("unknown contract: " + contract);
  }
  // Queries run against a scratch checkpoint that is always rolled back.
  auto* mutable_this = const_cast<Blockchain*>(this);
  WorldState& state = mutable_this->state_;
  GasMeter gas(config_.block_gas_limit);
  BlockContext block_ctx{
      blocks_.empty() ? 0 : blocks_.back().header.number,
      blocks_.empty() ? 0 : blocks_.back().header.timestamp};
  state.Begin();
  CallContext ctx(state, gas, caller, 0, contract, instance, block_ctx,
                  nullptr);
  auto result = logic->Call(ctx, method, args);
  state.Rollback();
  return result;
}

Bytes Blockchain::EncodeSnapshotState() const {
  Writer w;
  w.PutU64(blocks_.size());  // snapshot height, for cross-checking
  w.PutU64(next_instance_id_);
  w.PutU64(total_gas_used_);
  w.PutBytes(state_.SerializeSnapshot());
  return w.Take();
}

Status Blockchain::RestoreFromSnapshot(const Bytes& snapshot_state,
                                       std::vector<Block> history) {
  if (!blocks_.empty() || !mempool_.empty() || state_.TotalBalance() != 0) {
    return Status::FailedPrecondition(
        "snapshot restore requires a freshly constructed chain");
  }
  if (history.empty()) {
    return Status::InvalidArgument("snapshot restore needs a block history");
  }

  Reader r(snapshot_state);
  PDS2_ASSIGN_OR_RETURN(uint64_t height, r.GetU64());
  PDS2_ASSIGN_OR_RETURN(uint64_t next_instance_id, r.GetU64());
  PDS2_ASSIGN_OR_RETURN(uint64_t total_gas_used, r.GetU64());
  PDS2_ASSIGN_OR_RETURN(Bytes state_bytes, r.GetBytes());
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes in chain snapshot");
  }
  if (height != history.size()) {
    return Status::Corruption("snapshot height does not match block history");
  }
  PDS2_ASSIGN_OR_RETURN(WorldState state,
                        WorldState::DeserializeSnapshot(state_bytes));

  // Verify the history's header chain: numbering, parent linkage, monotone
  // timestamps, and each proposer's signature. Transaction execution and
  // per-tx signatures are skipped — that is the whole point of a snapshot —
  // but the final state_root must match the restored state's digest, so a
  // snapshot can only reproduce a state some validator actually signed.
  Hash parent = Hash(32, 0);  // genesis sentinel
  common::SimTime last_ts = 0;
  for (size_t i = 0; i < history.size(); ++i) {
    const BlockHeader& header = history[i].header;
    if (header.number != i) {
      return Status::Corruption("snapshot history numbering out of sequence");
    }
    if (header.parent_hash != parent) {
      return Status::Corruption("snapshot history parent hash mismatch");
    }
    if (i > 0 && header.timestamp <= last_ts) {
      return Status::Corruption("snapshot history timestamps not increasing");
    }
    bool known_proposer = false;
    for (const Bytes& validator : validators_) {
      if (validator == header.proposer_public_key) {
        known_proposer = true;
        break;
      }
    }
    if (!known_proposer) {
      return Status::PermissionDenied("snapshot history proposer unknown");
    }
    PDS2_RETURN_IF_ERROR(crypto::VerifySignatureWithDomain(
        header.proposer_public_key, BlockHeader::Domain(),
        header.SigningBytes(), header.signature));
    if (header.tx_root !=
        Block::ComputeTxRoot(history[i].transactions, config_.thread_pool)) {
      return Status::Corruption("snapshot history transaction root mismatch");
    }
    parent = header.Id();
    last_ts = header.timestamp;
  }
  if (state.Digest() != history.back().header.state_root) {
    return Status::Corruption(
        "snapshot state digest does not match head state root");
  }

  state_ = std::move(state);
  blocks_ = std::move(history);
  next_instance_id_ = next_instance_id;
  total_gas_used_ = total_gas_used;
  return Status::Ok();
}

Result<uint64_t> InstanceIdFromReceipt(const Receipt& receipt) {
  if (!receipt.success) {
    return Status::FailedPrecondition("deploy failed: " + receipt.error);
  }
  Reader r(receipt.output);
  PDS2_ASSIGN_OR_RETURN(uint64_t instance, r.GetU64());
  return instance;
}

}  // namespace pds2::chain
