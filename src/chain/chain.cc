#include "chain/chain.h"

#include <algorithm>
#include <cassert>

#include "chain/evidence.h"
#include "common/checked_math.h"
#include "common/logging.h"
#include "common/serial.h"
#include "common/thread_pool.h"
#include "obs/stopwatch.h"
#include "obs/trace.h"

namespace pds2::chain {

using common::Bytes;
using common::Reader;
using common::Result;
using common::Status;
using common::Writer;

Blockchain::Blockchain(std::vector<Bytes> validator_public_keys,
                       std::unique_ptr<ContractRegistry> registry,
                       ChainConfig config)
    : validators_(std::move(validator_public_keys)),
      registry_(std::move(registry)),
      config_(config),
      mempool_(config_.mempool) {
  assert(!validators_.empty());
  assert(registry_ != nullptr);
  // Accountability bonds: mint and immediately stake the deposit of every
  // validator. Deterministic (config + validator set only), so replicas,
  // fork-choice candidate rebuilds and recovery all reproduce the same
  // genesis state bit for bit.
  if (config_.validator_stake > 0) {
    for (const Bytes& validator : validators_) {
      const Address addr = AddressFromPublicKey(validator);
      uint64_t new_supply;
      if (!common::CheckedAdd(genesis_minted_, config_.validator_stake,
                              &new_supply)) {
        assert(false && "validator stakes overflow total supply");
        break;
      }
      Status status = state_.Credit(addr, config_.validator_stake);
      assert(status.ok());
      status = state_.StakeBond(addr, config_.validator_stake);
      assert(status.ok());
      (void)status;
      genesis_minted_ = new_supply;
    }
  }
}

uint64_t Blockchain::TotalSupply() const {
  return common::SaturatingAdd(
      common::SaturatingAdd(state_.TotalBalance(), state_.TotalStaked()),
      state_.BurnedTotal());
}

void Blockchain::PublishSupplyGauges() const {
  PDS2_M_GAUGE_SET("chain.supply.circulating", state_.TotalBalance());
  PDS2_M_GAUGE_SET("chain.supply.staked", state_.TotalStaked());
  PDS2_M_GAUGE_SET("chain.supply.burned", state_.BurnedTotal());
  PDS2_M_GAUGE_SET("chain.supply.genesis", genesis_minted_);
}

bool Blockchain::HasEvidenceFor(const Address& offender,
                                uint64_t height) const {
  return state_.StorageGet(kEvidenceSpace, EvidenceKey(offender, height))
      .has_value();
}

common::ThreadPool* Blockchain::ExecutionPool() const {
  return config_.thread_pool != nullptr ? config_.thread_pool
                                        : &common::ThreadPool::Global();
}

Status Blockchain::CreditGenesis(const Address& addr, uint64_t amount) {
  if (!blocks_.empty()) {
    return Status::FailedPrecondition(
        "genesis allocation after the first block");
  }
  // Cap the minted supply below uint64 so conservation keeps every later
  // balance, fee and TotalBalance() sum exactly representable: transfers
  // and fee settlement only move existing tokens, so no account can ever
  // reach a value the genesis total did not. Before the first block the
  // only balances are prior genesis credits, so the running counter equals
  // state_.TotalBalance() without the O(accounts) walk per credit.
  uint64_t new_supply;
  if (!common::CheckedAdd(genesis_minted_, amount, &new_supply)) {
    return Status::InvalidArgument("genesis allocation overflows total supply");
  }
  PDS2_RETURN_IF_ERROR(state_.Credit(addr, amount));
  genesis_minted_ = new_supply;
  return Status::Ok();
}

namespace {

// Bound on the verification cache; far above any realistic working set
// (mempool + a few blocks in flight). On overflow the cache resets — the
// only cost is re-verifying, never a correctness change.
constexpr size_t kMaxVerifiedTxCacheEntries = 1 << 17;

// Below this many signatures a batch chunk stops amortizing the two fixed
// base-point multiplications, so chunks never shrink under this size.
constexpr size_t kMinSignatureBatch = 16;

// Below this many transactions the lane-planning pre-pass costs more than
// any conceivable parallel win; execute sequentially.
constexpr size_t kMinParallelBlockTxs = 4;

// Structural shape every evidence transaction must have: only the "submit"
// method exists, and the fee exemption is all-or-nothing — an evidence tx
// cannot smuggle value or occupy block gas.
Status CheckEvidencePayload(const Transaction& tx) {
  if (tx.payload().method != "submit") {
    return Status::InvalidArgument("unknown evidence method: " +
                                   tx.payload().method);
  }
  if (tx.value() != 0 || tx.gas_limit() != 0 || tx.gas_price() != 0) {
    return Status::InvalidArgument(
        "evidence transactions must carry zero value, gas limit and gas "
        "price");
  }
  return Status::Ok();
}

}  // namespace

void Blockchain::CacheVerified(Hash tx_id) {
  if (verified_txs_.size() >= kMaxVerifiedTxCacheEntries) {
    verified_txs_.clear();
  }
  verified_txs_.insert(std::move(tx_id));
}

Status Blockchain::VerifyTransactionCached(const Transaction& tx) {
  Hash id = tx.Id();
  if (verified_txs_.count(id) > 0) {
    PDS2_M_COUNT("chain.sig_cache_hits", 1);
    return Status::Ok();
  }
  ++signature_verifications_;
  PDS2_M_COUNT("chain.sig_verifications", 1);
  PDS2_RETURN_IF_ERROR(tx.VerifySignature());
  CacheVerified(std::move(id));
  return Status::Ok();
}

Status Blockchain::VerifyBlockSignatures(
    const std::vector<Transaction>& txs) {
  PDS2_TRACE_SPAN("chain.verify_block_signatures");
  // Partition into cached and still-unverified transactions. The id covers
  // the signature bytes, so a cache hit certifies this exact (tx, sig) pair.
  std::vector<size_t> unverified;
  std::vector<Hash> unverified_ids;
  for (size_t i = 0; i < txs.size(); ++i) {
    Hash id = txs[i].Id();
    if (verified_txs_.count(id) == 0) {
      unverified.push_back(i);
      unverified_ids.push_back(std::move(id));
    }
  }

  const size_t n = unverified.size();
  std::vector<Status> statuses(n, Status::Ok());
  if (n > 0) {
    // One randomized linear combination verifies a whole chunk of
    // signatures at a fraction of the per-signature cost; chunk count is
    // derived from the block (enough to feed the pool, never so many that
    // chunks fall under the amortization floor), so a bigger block means
    // bigger batches, not more dispatch overhead.
    std::vector<crypto::BatchVerifyEntry> entries(n);
    for (size_t k = 0; k < n; ++k) {
      const Transaction& tx = txs[unverified[k]];
      entries[k].public_key = tx.sender_public_key();
      entries[k].message =
          crypto::DomainSeparatedMessage(Transaction::Domain(),
                                         tx.SigningBytes());
      entries[k].signature = tx.signature();
    }
    common::ThreadPool* pool = ExecutionPool();
    const size_t num_chunks =
        std::max<size_t>(1, std::min(pool->NumThreads(),
                                     (n + kMinSignatureBatch - 1) /
                                         kMinSignatureBatch));
    pool->ParallelForChunks(
        n, num_chunks, [&](size_t, size_t begin, size_t end) {
          std::vector<crypto::BatchVerifyEntry> chunk(
              entries.begin() + begin, entries.begin() + end);
          if (crypto::VerifySignatureBatch(chunk)) return;
          // The batch cannot name the culprit: re-check this chunk's
          // entries individually so the caller sees the exact per-tx
          // status the sequential loop produced.
          for (size_t k = begin; k < end; ++k) {
            statuses[k] = txs[unverified[k]].VerifySignature();
          }
        });
  }
  signature_verifications_ += n;
  PDS2_M_COUNT("chain.sig_verifications", n);
  PDS2_M_COUNT("chain.sig_cache_hits", txs.size() - n);

  Status first_failure = Status::Ok();
  for (size_t k = 0; k < n; ++k) {
    if (statuses[k].ok()) {
      CacheVerified(std::move(unverified_ids[k]));
    } else if (first_failure.ok()) {
      first_failure = statuses[k];
    }
  }
  return first_failure;
}

Status Blockchain::SubmitTransaction(const Transaction& tx) {
  obs::ScopedSpan span("chain.submit_tx");
  PDS2_RETURN_IF_ERROR(VerifyTransactionCached(tx));
  // A tx id already executed is a duplicate: the signature cache would
  // happily re-admit it (it only dedups the *verification*), so check the
  // receipt history before queueing a copy that would burn the sender's
  // fee twice. Mempool duplicates are caught by Mempool::Add itself.
  const Hash id = tx.Id();
  if (receipts_.count(id) > 0) {
    return Status::AlreadyExists("transaction already executed");
  }
  if (tx.payload().contract == kEvidenceContract) {
    // Evidence is fee-exempt (no intrinsic gas, no floor, no funded
    // account needed), but the proof itself must verify before it may
    // occupy mempool space — spam cannot ride the exemption.
    PDS2_RETURN_IF_ERROR(CheckEvidencePayload(tx));
    auto evidence = EquivocationEvidence::Deserialize(tx.payload().args);
    if (!evidence.ok()) return evidence.status();
    PDS2_RETURN_IF_ERROR(evidence->Verify(validators_));
    if (HasEvidenceFor(evidence->Offender(), evidence->Height())) {
      return Status::AlreadyExists("offence already punished on chain");
    }
    PDS2_RETURN_IF_ERROR(mempool_.Add(tx));
    if (span.id() != 0) tx_trace_ctx_[id] = span.context();
    return Status::Ok();
  }
  if (tx.gas_price() < config_.gas_price) {
    return Status::InvalidArgument("gas price below network floor");
  }
  const auto& schedule = DefaultGasSchedule();
  const uint64_t floor_cost =
      schedule.tx_base + schedule.tx_payload_byte * tx.payload().args.size();
  if (tx.gas_limit() < floor_cost) {
    return Status::InvalidArgument("gas limit below intrinsic cost");
  }
  // Reject settlement arithmetic the ledger cannot represent: a gas_limit
  // whose worst-case fee (gas_limit * gas_price) or whose fee + value sum
  // wraps uint64 would slip past the affordability check wrapped to a tiny
  // number and be silently under-charged.
  uint64_t max_fee, max_cost;
  if (!common::CheckedMul(tx.gas_limit(), tx.gas_price(), &max_fee) ||
      !common::CheckedAdd(tx.value(), max_fee, &max_cost)) {
    return Status::InvalidArgument(
        "gas limit * gas price + value overflows settlement arithmetic");
  }
  if (!tx.payload().IsPlainTransfer() &&
      registry_->Find(tx.payload().contract) == nullptr) {
    return Status::NotFound("unknown contract type: " + tx.payload().contract);
  }
  PDS2_RETURN_IF_ERROR(mempool_.Add(tx));
  // Remember where the tx came from so the block that executes it can
  // link back to the submitter's span (the tx bytes stay trace-free).
  if (span.id() != 0) tx_trace_ctx_[id] = span.context();
  return Status::Ok();
}

void Blockchain::LinkAndForgetTxContexts(const std::vector<Transaction>& txs,
                                         obs::ScopedSpan* span) {
  if (tx_trace_ctx_.empty()) return;
  for (const Transaction& tx : txs) {
    const auto it = tx_trace_ctx_.find(tx.Id());
    if (it == tx_trace_ctx_.end()) continue;
    span->AddLink(it->second);
    tx_trace_ctx_.erase(it);
  }
}

Hash Blockchain::LastBlockHash() const {
  if (blocks_.empty()) return Hash(32, 0);  // genesis sentinel
  return blocks_.back().header.Id();
}

const Bytes& Blockchain::NextProposer() const {
  return validators_[blocks_.size() % validators_.size()];
}

const Bytes& Blockchain::ProposerAt(common::SimTime timestamp) const {
  if (config_.proposer_grace == 0) return NextProposer();
  const common::SimTime parent_ts =
      blocks_.empty() ? 0 : blocks_.back().header.timestamp;
  const common::SimTime elapsed =
      timestamp > parent_ts ? timestamp - parent_ts : 0;
  // One allowed proposer per grace window: the primary for the first
  // window, then the rotation shifts one position per elapsed window.
  const uint64_t shift = elapsed / config_.proposer_grace;
  return validators_[(blocks_.size() + shift) % validators_.size()];
}

Receipt Blockchain::ExecuteTransactionOn(StateView& state,
                                         uint64_t* next_instance_id,
                                         const Transaction& tx,
                                         uint64_t block_number,
                                         common::SimTime timestamp) const {
  if (tx.payload().contract == kEvidenceContract) {
    return ExecuteEvidenceOn(state, tx, block_number);
  }

  Receipt receipt;
  receipt.tx_id = tx.Id();
  receipt.block_number = block_number;

  const Address sender = tx.SenderAddress();
  const auto& schedule = DefaultGasSchedule();
  GasMeter gas(tx.gas_limit());

  // The sender must afford worst-case gas plus the transferred value. Both
  // the fee multiply and the fee + value sum are overflow-checked: a
  // wrapped max_fee would pass this check while the real worst-case cost
  // exceeds any balance (SubmitTransaction rejects such txs up front, but
  // blocks arriving via ApplyExternalBlock reach execution directly).
  uint64_t max_fee, max_cost;
  if (!common::CheckedMul(tx.gas_limit(), tx.gas_price(), &max_fee) ||
      !common::CheckedAdd(tx.value(), max_fee, &max_cost)) {
    receipt.success = false;
    receipt.error = Status::InvalidArgument(
                        "gas limit * gas price + value overflows "
                        "settlement arithmetic")
                        .ToString();
    receipt.gas_used = 0;
    return receipt;
  }
  if (state.GetBalance(sender) < max_cost) {
    receipt.success = false;
    receipt.error = "InsufficientFunds: cannot cover value + max gas fee";
    receipt.gas_used = 0;
    return receipt;
  }

  state.BumpNonce(sender);

  // Intrinsic gas is charged regardless of the execution outcome.
  Status status = gas.Charge(schedule.tx_base);
  if (status.ok()) {
    status =
        gas.Charge(schedule.tx_payload_byte * tx.payload().args.size());
  }

  Bytes output;
  std::vector<Event> events;
  if (status.ok()) {
    state.Begin();
    const CallPayload& payload = tx.payload();
    BlockContext block_ctx{block_number, timestamp};

    if (payload.IsPlainTransfer()) {
      if (tx.to().size() != kAddressSize) {
        status = Status::InvalidArgument("malformed recipient address");
      } else {
        status = state.Transfer(sender, tx.to(), tx.value());
      }
    } else {
      Contract* contract = registry_->Find(payload.contract);
      if (contract == nullptr) {
        status = Status::NotFound("unknown contract: " + payload.contract);
      } else if (payload.method == "deploy") {
        const uint64_t instance = *next_instance_id;
        // Escrow the transferred value into the new instance's account.
        status = tx.value() > 0
                     ? state.Transfer(
                           sender, ContractAddress(payload.contract, instance),
                           tx.value())
                     : Status::Ok();
        if (status.ok()) {
          CallContext ctx(state, gas, sender, tx.value(), payload.contract,
                          instance, block_ctx, &events);
          status = contract->Deploy(ctx, payload.args);
        }
        if (status.ok()) {
          ++*next_instance_id;
          Writer w;
          w.PutU64(instance);
          output = w.Take();
        }
      } else {
        if (payload.instance == 0 || payload.instance >= *next_instance_id) {
          status = Status::NotFound("contract instance not deployed");
        } else {
          status = tx.value() > 0
                       ? state.Transfer(sender,
                                        ContractAddress(payload.contract,
                                                        payload.instance),
                                        tx.value())
                       : Status::Ok();
          if (status.ok()) {
            CallContext ctx(state, gas, sender, tx.value(), payload.contract,
                            payload.instance, block_ctx, &events);
            auto result = contract->Call(ctx, payload.method, payload.args);
            if (result.ok()) {
              output = std::move(result).value();
            } else {
              status = result.status();
            }
          }
        }
      }
    }

    if (status.ok()) {
      state.Commit();
    } else {
      state.Rollback();
    }
  }

  // Settle gas: sender pays its offered price, proposer is credited by the
  // caller. gas_used <= gas_limit, so the checked max_fee bound above
  // guarantees this multiply cannot wrap.
  receipt.gas_used = gas.used();
  const uint64_t fee = receipt.gas_used * tx.gas_price();
  Status fee_status = state.Debit(sender, fee);
  assert(fee_status.ok());  // guaranteed by the upfront balance check
  (void)fee_status;

  receipt.success = status.ok();
  if (!status.ok()) {
    receipt.error = status.ToString();
  } else {
    receipt.output = std::move(output);
    receipt.events = std::move(events);
  }
  return receipt;
}

Receipt Blockchain::ExecuteEvidenceOn(StateView& state, const Transaction& tx,
                                      uint64_t block_number) const {
  Receipt receipt;
  receipt.tx_id = tx.Id();
  receipt.block_number = block_number;
  receipt.gas_used = 0;  // fee-exempt by construction

  const Address reporter = tx.SenderAddress();
  state.BumpNonce(reporter);

  Status status = CheckEvidencePayload(tx);
  EquivocationEvidence evidence;
  if (status.ok()) {
    auto parsed = EquivocationEvidence::Deserialize(tx.payload().args);
    if (parsed.ok()) {
      evidence = *std::move(parsed);
      status = evidence.Verify(validators_);
    } else {
      status = parsed.status();
    }
  }
  if (status.ok()) {
    const Address offender = evidence.Offender();
    const common::Bytes marker = EvidenceKey(offender, evidence.Height());
    if (state.StorageGet(kEvidenceSpace, marker).has_value()) {
      status = Status::AlreadyExists("offence already punished on chain");
    } else {
      const uint64_t stake = state.StakeOf(offender);
      if (stake == 0) {
        status = Status::FailedPrecondition("offender has no bonded stake");
      } else {
        state.Begin();
        status = state.StakeSlash(offender, stake, reporter,
                                  config_.slash_reporter_bps);
        if (status.ok()) {
          Writer w;
          w.PutU64(block_number);
          state.StoragePut(kEvidenceSpace, marker, w.Take());
          state.Commit();
          const uint64_t bounty = static_cast<uint64_t>(
              static_cast<unsigned __int128>(stake) *
              config_.slash_reporter_bps / kSlashBpsDenominator);
          PDS2_M_COUNT("chain.slash.count", 1);
          PDS2_M_COUNT("chain.slash.amount", stake);
          PDS2_M_COUNT("chain.slash.burned", stake - bounty);
          Writer event_data;
          event_data.PutRaw(offender);
          event_data.PutU64(evidence.Height());
          event_data.PutU64(stake);
          receipt.events.push_back(Event{kEvidenceContract, 0, "slashed",
                                         event_data.Take()});
        } else {
          state.Rollback();
        }
      }
    }
  }

  receipt.success = status.ok();
  if (!status.ok()) receipt.error = status.ToString();
  return receipt;
}

std::vector<AccessSet> Blockchain::ComputeAccessSets(
    const std::vector<Transaction>& txs, uint64_t block_number,
    common::SimTime timestamp) {
  PDS2_TRACE_SPAN("chain.parallel.plan");
  std::vector<AccessSet> sets(txs.size());
  for (size_t i = 0; i < txs.size(); ++i) {
    const Transaction& tx = txs[i];
    if (tx.payload().IsPlainTransfer()) {
      // Transfers declare their footprint exactly; a malformed recipient
      // still only over-approximates (supersets merely merge lanes).
      sets[i].accounts.insert(tx.SenderAddress());
      if (tx.to().size() == kAddressSize) sets[i].accounts.insert(tx.to());
    } else if (tx.payload().contract == kEvidenceContract) {
      // Evidence declares its footprint exactly: the reporter's account
      // (nonce bump + bounty), the stake ledger and the evidence markers.
      sets[i].accounts.insert(tx.SenderAddress());
      sets[i].spaces.insert(kStakeSpace);
      sets[i].spaces.insert(kEvidenceSpace);
    } else if (tx.payload().method == "deploy") {
      // Deploys allocate the shared instance-id counter; serialize the
      // whole block rather than model that dependency.
      sets[i].global = true;
    } else {
      // Contract call: run it against the pre-block state under a tracing
      // view inside a checkpoint that is always rolled back. The traced
      // footprint can diverge from the real one once earlier block txs
      // mutate state — lane execution validates accesses at runtime and
      // aborts to the sequential path on any miss.
      AccessTracingView tracing(state_, &sets[i]);
      uint64_t scratch_instance_id = next_instance_id_;
      state_.Begin();
      ExecuteTransactionOn(tracing, &scratch_instance_id, tx, block_number,
                           timestamp);
      state_.Rollback();
    }
  }
  return sets;
}

bool Blockchain::TryExecuteLanes(const std::vector<Transaction>& txs,
                                 uint64_t block_number,
                                 common::SimTime timestamp,
                                 common::ThreadPool* pool,
                                 std::vector<Receipt>* receipts) {
  const std::vector<AccessSet> sets =
      ComputeAccessSets(txs, block_number, timestamp);
  const std::vector<std::vector<size_t>> lanes = PartitionIntoLanes(sets);
  if (lanes.size() <= 1) return false;

  // One private overlay view per lane over the frozen pre-block state.
  std::vector<LaneStateView> views;
  views.reserve(lanes.size());
  for (const std::vector<size_t>& lane : lanes) {
    AccessSet merged;
    for (size_t i : lane) merged.Merge(sets[i]);
    views.emplace_back(state_, std::move(merged));
  }

  std::vector<Receipt> lane_receipts(txs.size());
  const obs::TraceContext parent_ctx = obs::CurrentTraceContext();
  pool->ParallelFor(0, lanes.size(), [&](size_t li) {
    obs::TraceContextScope causal_parent(parent_ctx);
    PDS2_TRACE_SPAN("chain.parallel.lane");
    // No deploys reach the lane path (they are global), so the instance-id
    // counter is read-only here; a per-lane copy keeps the executor
    // oblivious.
    uint64_t scratch_instance_id = next_instance_id_;
    for (size_t i : lanes[li]) {
      lane_receipts[i] = ExecuteTransactionOn(views[li], &scratch_instance_id,
                                              txs[i], block_number, timestamp);
    }
  });

  for (const LaneStateView& view : views) {
    if (view.violated()) {
      // A transaction strayed outside its traced footprint. Nothing has
      // touched state_ yet: drop every overlay and let the caller re-run
      // the block sequentially.
      PDS2_M_COUNT("chain.parallel.aborts", 1);
      return false;
    }
  }
  // Lane footprints are pairwise disjoint, so merge order cannot matter;
  // lane order keeps it deterministic anyway.
  for (const LaneStateView& view : views) view.MergeInto(&state_);
  *receipts = std::move(lane_receipts);
  PDS2_M_COUNT("chain.parallel.blocks_parallel", 1);
  PDS2_M_COUNT("chain.parallel.lanes", lanes.size());
  return true;
}

std::vector<Receipt> Blockchain::ExecuteBlockTxs(
    const std::vector<Transaction>& txs, uint64_t block_number,
    common::SimTime timestamp) {
  PDS2_TRACE_SPAN("chain.execute_block_txs");
  std::vector<Receipt> receipts;
  common::ThreadPool* pool = ExecutionPool();
  bool parallel = false;
  if (pool->NumThreads() > 1 && txs.size() >= kMinParallelBlockTxs) {
    parallel = TryExecuteLanes(txs, block_number, timestamp, pool, &receipts);
  }
  if (!parallel) {
    PDS2_M_COUNT("chain.parallel.blocks_serial", 1);
    receipts.reserve(txs.size());
    for (const Transaction& tx : txs) {
      receipts.push_back(ExecuteTransactionOn(state_, &next_instance_id_, tx,
                                              block_number, timestamp));
    }
  }

  uint64_t block_gas = 0;
  for (const Receipt& receipt : receipts) block_gas += receipt.gas_used;
  total_gas_used_ += block_gas;
  PDS2_M_COUNT("chain.txs_executed", txs.size());
  PDS2_M_COUNT("chain.gas_used", block_gas);
  return receipts;
}

Result<Block> Blockchain::ProduceBlock(const crypto::SigningKey& proposer,
                                       common::SimTime timestamp) {
  // The block's own timestamp is the span's sim time: block production is
  // instantaneous in simulated time but anchored where the block lands.
  const common::SimTime span_sim = timestamp;
  obs::ScopedSpan span("chain.produce_block", &span_sim);
  PDS2_M_TIME_US("chain.produce_block_us");
  if (proposer.PublicKey() != ProposerAt(timestamp)) {
    return Status::PermissionDenied("not this validator's turn to propose");
  }
  if (!blocks_.empty() && timestamp <= blocks_.back().header.timestamp) {
    return Status::InvalidArgument("block timestamp must increase");
  }

  const uint64_t block_number = blocks_.size();
  const Address proposer_addr = AddressFromPublicKey(proposer.PublicKey());

  Block block;
  uint64_t block_gas = 0;
  uint64_t fees = 0;

  // Selection is separated from execution: the mempool hands over the
  // block's transactions in canonical order (per-sender nonce runs,
  // first-come-first-served, packed under the gas limit by worst case) and
  // evicts entries that can never execute — stale nonces and heads the
  // sender can no longer afford.
  Mempool::Selection selection = mempool_.SelectForBlock(
      state_, config_.block_gas_limit, config_.gas_price);
  for (const Hash& dropped : selection.dropped) tx_trace_ctx_.erase(dropped);
  block.transactions = std::move(selection.selected);

  std::vector<Receipt> receipts =
      ExecuteBlockTxs(block.transactions, block_number, timestamp);
  for (size_t i = 0; i < receipts.size(); ++i) {
    Receipt& receipt = receipts[i];
    block_gas += receipt.gas_used;
    fees += receipt.gas_used * block.transactions[i].gas_price();
    receipts_[receipt.tx_id] = std::move(receipt);
  }

  // Fees go to the proposer. Cannot overflow: fees were just debited from
  // senders, so crediting them merely moves supply (conservation).
  if (fees > 0) {
    Status credit_status = state_.Credit(proposer_addr, fees);
    assert(credit_status.ok());
    (void)credit_status;
  }

  block.header.parent_hash = LastBlockHash();
  block.header.number = block_number;
  block.header.timestamp = timestamp;
  block.header.tx_root =
      Block::ComputeTxRoot(block.transactions, config_.thread_pool);
  block.header.state_root = state_.Digest();
  block.header.proposer_public_key = proposer.PublicKey();
  block.header.signature = proposer.SignWithDomain(
      BlockHeader::Domain(), block.header.SigningBytes());

  blocks_.push_back(block);
  LinkAndForgetTxContexts(block.transactions, &span);
  PDS2_M_COUNT("chain.blocks_produced", 1);
  PublishSupplyGauges();
  PDS2_LOG(kDebug) << "produced block " << block_number << " with "
                   << block.transactions.size() << " txs, gas " << block_gas;
  if (listener_ != nullptr) listener_->OnBlockCommitted(*this, blocks_.back());
  return block;
}

Status Blockchain::ApplyExternalBlock(const Block& block) {
  const common::SimTime span_sim = block.header.timestamp;
  obs::ScopedSpan span("chain.apply_block", &span_sim);
  PDS2_M_TIME_US("chain.apply_block_us");
  Status status = ApplyExternalBlockInner(block);
  if (status.ok()) {
    PDS2_M_COUNT("chain.blocks_applied", 1);
    LinkAndForgetTxContexts(block.transactions, &span);
    PublishSupplyGauges();
  } else {
    PDS2_M_COUNT("chain.blocks_rejected", 1);
  }
  return status;
}

Status Blockchain::ApplyExternalBlockInner(const Block& block) {
  // Consensus validation.
  if (block.header.number != blocks_.size()) {
    return Status::InvalidArgument("block number out of sequence");
  }
  if (block.header.parent_hash != LastBlockHash()) {
    return Status::InvalidArgument("parent hash mismatch");
  }
  if (block.header.proposer_public_key != ProposerAt(block.header.timestamp)) {
    return Status::PermissionDenied("proposer out of turn");
  }
  if (!blocks_.empty() &&
      block.header.timestamp <= blocks_.back().header.timestamp) {
    return Status::InvalidArgument("non-monotonic block timestamp");
  }
  PDS2_RETURN_IF_ERROR(crypto::VerifySignatureWithDomain(
      block.header.proposer_public_key, BlockHeader::Domain(),
      block.header.SigningBytes(), block.header.signature));
  if (block.header.tx_root !=
      Block::ComputeTxRoot(block.transactions, config_.thread_pool)) {
    return Status::Corruption("transaction root mismatch");
  }
  // Per-block resource rules: the sum of gas limits is the proposer's
  // worst-case execution budget and must respect the consensus cap (a
  // gas-cheating proposer packs more), and every non-evidence transaction
  // must offer at least the network's floor price.
  uint64_t gas_limit_sum = 0;
  for (const Transaction& tx : block.transactions) {
    if (!common::CheckedAdd(gas_limit_sum, tx.gas_limit(), &gas_limit_sum)) {
      return Status::InvalidArgument("block gas limits overflow");
    }
    if (tx.payload().contract != kEvidenceContract &&
        tx.gas_price() < config_.gas_price) {
      return Status::InvalidArgument("block carries tx below gas price floor");
    }
  }
  if (gas_limit_sum > config_.block_gas_limit) {
    return Status::InvalidArgument("block exceeds the block gas limit");
  }
  PDS2_RETURN_IF_ERROR(VerifyBlockSignatures(block.transactions));

  // Execute and check the resulting state commitment — transactionally: a
  // Byzantine proposer can sign a block whose state_root does not match its
  // own transactions, and rejecting it must leave no trace (no mutated
  // balances, no receipts, no counter drift), or the replica silently forks
  // from every honest peer. Lane merges are journaled writes, so one outer
  // checkpoint covers the parallel path too.
  const uint64_t saved_gas_used = total_gas_used_;
  const uint64_t saved_instance_id = next_instance_id_;
  state_.Begin();
  uint64_t fees = 0;
  std::vector<Receipt> receipts = ExecuteBlockTxs(
      block.transactions, block.header.number, block.header.timestamp);
  for (size_t i = 0; i < receipts.size(); ++i) {
    fees += receipts[i].gas_used * block.transactions[i].gas_price();
  }
  if (fees > 0) {
    Status credit_status = state_.Credit(
        AddressFromPublicKey(block.header.proposer_public_key), fees);
    assert(credit_status.ok());  // fees were debited from senders above
    (void)credit_status;
  }
  if (state_.Digest() != block.header.state_root) {
    state_.Rollback();
    total_gas_used_ = saved_gas_used;
    next_instance_id_ = saved_instance_id;
    return Status::Corruption("state root mismatch after execution");
  }
  state_.Commit();
  for (Receipt& receipt : receipts) {
    receipts_[receipt.tx_id] = std::move(receipt);
  }
  blocks_.push_back(block);
  // Locally queued copies of the block's transactions are now executed;
  // drop them instead of waiting for stale-nonce eviction at the next
  // production turn.
  mempool_.RemoveExecuted(block.transactions);
  if (listener_ != nullptr) listener_->OnBlockCommitted(*this, blocks_.back());
  return Status::Ok();
}

std::vector<Event> Blockchain::EventsFor(const std::string& contract,
                                         uint64_t instance) const {
  // Receipts are re-walked in chain order so the audit view is stable.
  std::vector<Event> events;
  for (const Block& block : blocks_) {
    for (const Transaction& tx : block.transactions) {
      auto it = receipts_.find(tx.Id());
      if (it == receipts_.end()) continue;
      for (const Event& event : it->second.events) {
        if (event.contract == contract && event.instance == instance) {
          events.push_back(event);
        }
      }
    }
  }
  return events;
}

Result<Receipt> Blockchain::GetReceipt(const Hash& tx_id) const {
  auto it = receipts_.find(tx_id);
  if (it == receipts_.end()) {
    return Status::NotFound("no receipt for transaction");
  }
  return it->second;
}

Result<Bytes> Blockchain::Query(const std::string& contract, uint64_t instance,
                                const std::string& method, const Bytes& args,
                                const Address& caller) const {
  Contract* logic = registry_->Find(contract);
  if (logic == nullptr) {
    return Status::NotFound("unknown contract: " + contract);
  }
  // Queries run against a scratch checkpoint that is always rolled back.
  auto* mutable_this = const_cast<Blockchain*>(this);
  WorldState& state = mutable_this->state_;
  GasMeter gas(config_.block_gas_limit);
  BlockContext block_ctx{
      blocks_.empty() ? 0 : blocks_.back().header.number,
      blocks_.empty() ? 0 : blocks_.back().header.timestamp};
  state.Begin();
  CallContext ctx(state, gas, caller, 0, contract, instance, block_ctx,
                  nullptr);
  auto result = logic->Call(ctx, method, args);
  state.Rollback();
  return result;
}

Bytes Blockchain::EncodeSnapshotState() const {
  Writer w;
  w.PutU64(blocks_.size());  // snapshot height, for cross-checking
  w.PutU64(next_instance_id_);
  w.PutU64(total_gas_used_);
  w.PutBytes(state_.SerializeSnapshot());
  return w.Take();
}

Status Blockchain::RestoreFromSnapshot(const Bytes& snapshot_state,
                                       std::vector<Block> history) {
  if (!blocks_.empty() || mempool_.Size() != 0 || state_.TotalBalance() != 0) {
    return Status::FailedPrecondition(
        "snapshot restore requires a freshly constructed chain");
  }
  if (history.empty()) {
    return Status::InvalidArgument("snapshot restore needs a block history");
  }

  Reader r(snapshot_state);
  PDS2_ASSIGN_OR_RETURN(uint64_t height, r.GetU64());
  PDS2_ASSIGN_OR_RETURN(uint64_t next_instance_id, r.GetU64());
  PDS2_ASSIGN_OR_RETURN(uint64_t total_gas_used, r.GetU64());
  PDS2_ASSIGN_OR_RETURN(Bytes state_bytes, r.GetBytes());
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes in chain snapshot");
  }
  if (height != history.size()) {
    return Status::Corruption("snapshot height does not match block history");
  }
  PDS2_ASSIGN_OR_RETURN(WorldState state,
                        WorldState::DeserializeSnapshot(state_bytes));

  // Verify the history's header chain: numbering, parent linkage, monotone
  // timestamps, and each proposer's signature. Transaction execution and
  // per-tx signatures are skipped — that is the whole point of a snapshot —
  // but the final state_root must match the restored state's digest, so a
  // snapshot can only reproduce a state some validator actually signed.
  Hash parent = Hash(32, 0);  // genesis sentinel
  common::SimTime last_ts = 0;
  for (size_t i = 0; i < history.size(); ++i) {
    const BlockHeader& header = history[i].header;
    if (header.number != i) {
      return Status::Corruption("snapshot history numbering out of sequence");
    }
    if (header.parent_hash != parent) {
      return Status::Corruption("snapshot history parent hash mismatch");
    }
    if (i > 0 && header.timestamp <= last_ts) {
      return Status::Corruption("snapshot history timestamps not increasing");
    }
    bool known_proposer = false;
    for (const Bytes& validator : validators_) {
      if (validator == header.proposer_public_key) {
        known_proposer = true;
        break;
      }
    }
    if (!known_proposer) {
      return Status::PermissionDenied("snapshot history proposer unknown");
    }
    PDS2_RETURN_IF_ERROR(crypto::VerifySignatureWithDomain(
        header.proposer_public_key, BlockHeader::Domain(),
        header.SigningBytes(), header.signature));
    if (header.tx_root !=
        Block::ComputeTxRoot(history[i].transactions, config_.thread_pool)) {
      return Status::Corruption("snapshot history transaction root mismatch");
    }
    parent = header.Id();
    last_ts = header.timestamp;
  }
  if (state.Digest() != history.back().header.state_root) {
    return Status::Corruption(
        "snapshot state digest does not match head state root");
  }

  state_ = std::move(state);
  blocks_ = std::move(history);
  next_instance_id_ = next_instance_id;
  total_gas_used_ = total_gas_used;
  return Status::Ok();
}

Result<uint64_t> InstanceIdFromReceipt(const Receipt& receipt) {
  if (!receipt.success) {
    return Status::FailedPrecondition("deploy failed: " + receipt.error);
  }
  Reader r(receipt.output);
  PDS2_ASSIGN_OR_RETURN(uint64_t instance, r.GetU64());
  return instance;
}

}  // namespace pds2::chain
