#include "chain/block.h"

#include "common/thread_pool.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"

namespace pds2::chain {

using common::Bytes;
using common::Reader;
using common::Result;
using common::Status;
using common::Writer;

Bytes BlockHeader::SigningBytes() const {
  Writer w;
  w.PutBytes(parent_hash);
  w.PutU64(number);
  w.PutU64(timestamp);
  w.PutBytes(tx_root);
  w.PutBytes(state_root);
  w.PutBytes(proposer_public_key);
  return w.Take();
}

Bytes BlockHeader::Serialize() const {
  Writer w;
  w.PutRaw(SigningBytes());
  w.PutBytes(signature);
  return w.Take();
}

Result<BlockHeader> BlockHeader::Deserialize(const Bytes& data) {
  Reader r(data);
  BlockHeader h;
  PDS2_ASSIGN_OR_RETURN(h.parent_hash, r.GetBytes());
  PDS2_ASSIGN_OR_RETURN(h.number, r.GetU64());
  PDS2_ASSIGN_OR_RETURN(h.timestamp, r.GetU64());
  PDS2_ASSIGN_OR_RETURN(h.tx_root, r.GetBytes());
  PDS2_ASSIGN_OR_RETURN(h.state_root, r.GetBytes());
  PDS2_ASSIGN_OR_RETURN(h.proposer_public_key, r.GetBytes());
  PDS2_ASSIGN_OR_RETURN(h.signature, r.GetBytes());
  if (!r.AtEnd()) return Status::Corruption("trailing bytes in block header");
  return h;
}

Hash BlockHeader::Id() const { return crypto::Sha256::Hash(Serialize()); }

Bytes Block::Serialize() const {
  Writer w;
  w.PutBytes(header.Serialize());
  w.PutU32(static_cast<uint32_t>(transactions.size()));
  for (const Transaction& tx : transactions) w.PutBytes(tx.Serialize());
  return w.Take();
}

Result<Block> Block::Deserialize(const Bytes& data) {
  Reader r(data);
  Block block;
  PDS2_ASSIGN_OR_RETURN(Bytes header_bytes, r.GetBytes());
  PDS2_ASSIGN_OR_RETURN(block.header, BlockHeader::Deserialize(header_bytes));
  PDS2_ASSIGN_OR_RETURN(uint32_t n, r.GetU32());
  block.transactions.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    PDS2_ASSIGN_OR_RETURN(Bytes tx_bytes, r.GetBytes());
    PDS2_ASSIGN_OR_RETURN(Transaction tx, Transaction::Deserialize(tx_bytes));
    block.transactions.push_back(std::move(tx));
  }
  if (!r.AtEnd()) return Status::Corruption("trailing bytes in block");
  return block;
}

Hash Block::ComputeTxRoot(const std::vector<Transaction>& txs,
                          common::ThreadPool* pool) {
  std::vector<Bytes> leaves(txs.size());
  if (pool != nullptr && pool->NumThreads() > 1 && txs.size() >= 16) {
    pool->ParallelFor(0, txs.size(),
                      [&](size_t i) { leaves[i] = txs[i].Id(); });
  } else {
    for (size_t i = 0; i < txs.size(); ++i) leaves[i] = txs[i].Id();
  }
  return crypto::MerkleTree(leaves, pool).Root();
}

}  // namespace pds2::chain
