#include "chain/state.h"

#include <cassert>

#include "common/bytes.h"
#include "common/checked_math.h"
#include "common/serial.h"
#include "crypto/sha256.h"

namespace pds2::chain {

using common::Bytes;
using common::Status;

namespace {

common::Bytes EncodeStakeAmount(uint64_t amount) {
  common::Writer w;
  w.PutU64(amount);
  return w.Take();
}

uint64_t DecodeStakeAmount(const std::optional<Bytes>& value) {
  if (!value.has_value()) return 0;
  common::Reader r(*value);
  auto amount = r.GetU64();
  return amount.ok() ? *amount : 0;
}

common::Bytes BurnedKeyBytes() { return common::ToBytes(kBurnedKey); }

}  // namespace

uint64_t StateView::StakeOf(const Address& addr) const {
  return DecodeStakeAmount(StorageGet(kStakeSpace, addr));
}

Status StateView::StakeBond(const Address& addr, uint64_t amount) {
  uint64_t new_stake;
  if (!common::CheckedAdd(StakeOf(addr), amount, &new_stake)) {
    return Status::InvalidArgument("bond would overflow stake record");
  }
  PDS2_RETURN_IF_ERROR(Debit(addr, amount));
  StoragePut(kStakeSpace, addr, EncodeStakeAmount(new_stake));
  return Status::Ok();
}

Status StateView::StakeRelease(const Address& addr, uint64_t amount) {
  const uint64_t stake = StakeOf(addr);
  if (stake < amount) {
    return Status::InsufficientFunds("stake below release amount");
  }
  PDS2_RETURN_IF_ERROR(Credit(addr, amount));
  if (stake == amount) {
    StorageDelete(kStakeSpace, addr);
  } else {
    StoragePut(kStakeSpace, addr, EncodeStakeAmount(stake - amount));
  }
  return Status::Ok();
}

Status StateView::StakeSlash(const Address& offender, uint64_t amount,
                             const Address& reporter, uint32_t reporter_bps) {
  if (reporter_bps > kSlashBpsDenominator) {
    return Status::InvalidArgument("reporter share above 100%");
  }
  const uint64_t stake = StakeOf(offender);
  if (stake < amount) {
    return Status::InsufficientFunds("stake below slash amount");
  }
  // Exact split: bounty rounds down, the burn picks up the remainder, so
  // bounty + burn == amount with no drift.
  const uint64_t bounty = static_cast<uint64_t>(
      static_cast<unsigned __int128>(amount) * reporter_bps /
      kSlashBpsDenominator);
  const uint64_t burn = amount - bounty;
  uint64_t new_burned;
  if (!common::CheckedAdd(BurnedTotal(), burn, &new_burned)) {
    return Status::InvalidArgument("slash would overflow burned total");
  }
  PDS2_RETURN_IF_ERROR(Credit(reporter, bounty));
  if (stake == amount) {
    StorageDelete(kStakeSpace, offender);
  } else {
    StoragePut(kStakeSpace, offender, EncodeStakeAmount(stake - amount));
  }
  StoragePut(kStakeSpace, BurnedKeyBytes(), EncodeStakeAmount(new_burned));
  return Status::Ok();
}

uint64_t StateView::BurnedTotal() const {
  return DecodeStakeAmount(StorageGet(kStakeSpace, BurnedKeyBytes()));
}

uint64_t StateView::TotalStaked() const {
  uint64_t total = 0;
  for (const auto& [key, value] : StorageScan(kStakeSpace, {})) {
    if (key.size() != kAddressSize) continue;  // skip the burned-total record
    total = common::SaturatingAdd(total, DecodeStakeAmount(value));
  }
  return total;
}

uint64_t WorldState::GetBalance(const Address& addr) const {
  auto it = accounts_.find(addr);
  return it == accounts_.end() ? 0 : it->second.balance;
}

uint64_t WorldState::GetNonce(const Address& addr) const {
  auto it = accounts_.find(addr);
  return it == accounts_.end() ? 0 : it->second.nonce;
}

void WorldState::JournalAccount(const Address& addr) {
  if (checkpoints_.empty()) return;
  JournalEntry entry;
  entry.kind = JournalEntry::Kind::kAccount;
  entry.addr = addr;
  auto it = accounts_.find(addr);
  if (it != accounts_.end()) entry.prior_account = it->second;
  journal_.push_back(std::move(entry));
}

void WorldState::JournalStorage(const std::string& space, const Bytes& key) {
  if (checkpoints_.empty()) return;
  JournalEntry entry;
  entry.kind = JournalEntry::Kind::kStorage;
  entry.space = space;
  entry.key = key;
  auto space_it = storage_.find(space);
  if (space_it != storage_.end()) {
    auto it = space_it->second.find(key);
    if (it != space_it->second.end()) entry.prior_value = it->second;
  }
  journal_.push_back(std::move(entry));
}

Status WorldState::Credit(const Address& addr, uint64_t amount) {
  uint64_t new_balance;
  if (!common::CheckedAdd(GetBalance(addr), amount, &new_balance)) {
    return Status::InvalidArgument("credit would overflow account balance");
  }
  JournalAccount(addr);
  accounts_[addr].balance = new_balance;
  return Status::Ok();
}

Status WorldState::Debit(const Address& addr, uint64_t amount) {
  auto it = accounts_.find(addr);
  if (it == accounts_.end() || it->second.balance < amount) {
    return Status::InsufficientFunds("balance below debit amount");
  }
  JournalAccount(addr);
  it->second.balance -= amount;
  return Status::Ok();
}

Status WorldState::Transfer(const Address& from, const Address& to,
                            uint64_t amount) {
  // Guard the credit side *before* debiting so a failed transfer has no
  // side effects. With a capped total supply the credit cannot actually
  // overflow, but the check keeps Transfer safe on its own terms.
  uint64_t new_balance;
  if (!common::CheckedAdd(GetBalance(to), amount, &new_balance)) {
    return Status::InvalidArgument("transfer would overflow recipient");
  }
  PDS2_RETURN_IF_ERROR(Debit(from, amount));
  return Credit(to, amount);
}

void WorldState::BumpNonce(const Address& addr) {
  JournalAccount(addr);
  accounts_[addr].nonce += 1;
}

std::optional<Account> WorldState::GetAccount(const Address& addr) const {
  auto it = accounts_.find(addr);
  if (it == accounts_.end()) return std::nullopt;
  return it->second;
}

void WorldState::PutAccount(const Address& addr, const Account& account) {
  JournalAccount(addr);
  accounts_[addr] = account;
}

std::optional<Bytes> WorldState::StorageGet(const std::string& space,
                                            const Bytes& key) const {
  auto space_it = storage_.find(space);
  if (space_it == storage_.end()) return std::nullopt;
  auto it = space_it->second.find(key);
  if (it == space_it->second.end()) return std::nullopt;
  return it->second;
}

bool WorldState::StoragePut(const std::string& space, const Bytes& key,
                            const Bytes& value) {
  JournalStorage(space, key);
  auto& space_map = storage_[space];
  auto [it, inserted] = space_map.insert_or_assign(key, value);
  (void)it;
  return !inserted;
}

void WorldState::StorageDelete(const std::string& space, const Bytes& key) {
  auto space_it = storage_.find(space);
  if (space_it == storage_.end()) return;
  if (space_it->second.find(key) == space_it->second.end()) return;
  JournalStorage(space, key);
  space_it->second.erase(key);
}

std::vector<std::pair<Bytes, Bytes>> WorldState::StorageScan(
    const std::string& space, const Bytes& prefix) const {
  std::vector<std::pair<Bytes, Bytes>> out;
  auto space_it = storage_.find(space);
  if (space_it == storage_.end()) return out;
  for (auto it = space_it->second.lower_bound(prefix);
       it != space_it->second.end(); ++it) {
    const Bytes& key = it->first;
    if (key.size() < prefix.size() ||
        !std::equal(prefix.begin(), prefix.end(), key.begin())) {
      break;
    }
    out.emplace_back(key, it->second);
  }
  return out;
}

void WorldState::Begin() { checkpoints_.push_back(journal_.size()); }

void WorldState::Commit() {
  assert(!checkpoints_.empty());
  const size_t mark = checkpoints_.back();
  checkpoints_.pop_back();
  // If an outer checkpoint is still open, keep the journal entries so the
  // outer Rollback can still undo; otherwise drop them.
  if (checkpoints_.empty()) {
    journal_.clear();
  } else {
    (void)mark;
  }
}

void WorldState::Rollback() {
  assert(!checkpoints_.empty());
  const size_t mark = checkpoints_.back();
  checkpoints_.pop_back();
  while (journal_.size() > mark) {
    const JournalEntry& entry = journal_.back();
    if (entry.kind == JournalEntry::Kind::kAccount) {
      if (entry.prior_account.has_value()) {
        accounts_[entry.addr] = *entry.prior_account;
      } else {
        accounts_.erase(entry.addr);
      }
    } else {
      if (entry.prior_value.has_value()) {
        storage_[entry.space][entry.key] = *entry.prior_value;
      } else {
        auto space_it = storage_.find(entry.space);
        if (space_it != storage_.end()) space_it->second.erase(entry.key);
      }
    }
    journal_.pop_back();
  }
}

uint64_t WorldState::TotalBalance() const {
  // Saturating: CreditGenesis caps the minted supply below uint64, so in a
  // well-formed chain the sum is exact; a hand-built state that exceeds the
  // cap reads as uint64-max instead of a wrapped small number.
  uint64_t total = 0;
  for (const auto& [addr, account] : accounts_) {
    (void)addr;
    total = common::SaturatingAdd(total, account.balance);
  }
  return total;
}

common::Bytes WorldState::SerializeSnapshot() const {
  assert(checkpoints_.empty() && "snapshot inside an open transaction");
  common::Writer w;
  w.PutU64(accounts_.size());
  for (const auto& [addr, account] : accounts_) {
    w.PutBytes(addr);
    w.PutU64(account.balance);
    w.PutU64(account.nonce);
  }
  w.PutU64(storage_.size());
  for (const auto& [space, kv] : storage_) {
    w.PutString(space);
    w.PutU64(kv.size());
    for (const auto& [key, value] : kv) {
      w.PutBytes(key);
      w.PutBytes(value);
    }
  }
  return w.Take();
}

common::Result<WorldState> WorldState::DeserializeSnapshot(
    const common::Bytes& data) {
  common::Reader r(data);
  WorldState state;
  PDS2_ASSIGN_OR_RETURN(uint64_t num_accounts, r.GetU64());
  for (uint64_t i = 0; i < num_accounts; ++i) {
    PDS2_ASSIGN_OR_RETURN(Address addr, r.GetBytes());
    Account account;
    PDS2_ASSIGN_OR_RETURN(account.balance, r.GetU64());
    PDS2_ASSIGN_OR_RETURN(account.nonce, r.GetU64());
    if (!state.accounts_.emplace(std::move(addr), account).second) {
      return Status::Corruption("duplicate account in state snapshot");
    }
  }
  PDS2_ASSIGN_OR_RETURN(uint64_t num_spaces, r.GetU64());
  for (uint64_t i = 0; i < num_spaces; ++i) {
    PDS2_ASSIGN_OR_RETURN(std::string space, r.GetString());
    auto [space_it, space_inserted] = state.storage_.try_emplace(space);
    if (!space_inserted) {
      return Status::Corruption("duplicate storage space in state snapshot");
    }
    PDS2_ASSIGN_OR_RETURN(uint64_t num_slots, r.GetU64());
    for (uint64_t j = 0; j < num_slots; ++j) {
      PDS2_ASSIGN_OR_RETURN(Bytes key, r.GetBytes());
      PDS2_ASSIGN_OR_RETURN(Bytes value, r.GetBytes());
      if (!space_it->second.emplace(std::move(key), std::move(value))
               .second) {
        return Status::Corruption("duplicate storage key in state snapshot");
      }
    }
  }
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes in state snapshot");
  }
  return state;
}

Hash WorldState::Digest() const {
  crypto::Sha256 h;
  h.Update("pds2.state");
  for (const auto& [addr, account] : accounts_) {
    h.Update(addr);
    common::Writer w;
    w.PutU64(account.balance);
    w.PutU64(account.nonce);
    h.Update(w.data());
  }
  for (const auto& [space, kv] : storage_) {
    h.Update(space);
    for (const auto& [key, value] : kv) {
      h.Update(key);
      h.Update(value);
    }
  }
  return h.Finish();
}

}  // namespace pds2::chain
