#ifndef PDS2_CHAIN_GAS_H_
#define PDS2_CHAIN_GAS_H_

#include <cstdint>

#include "common/status.h"

namespace pds2::chain {

/// Gas cost schedule, loosely modeled on Ethereum's so that the governance
/// cost experiment (E6) reports figures in a familiar unit.
struct GasSchedule {
  uint64_t tx_base = 21000;         // flat cost of any transaction
  uint64_t tx_payload_byte = 16;    // per byte of call payload
  uint64_t storage_write = 20000;   // per contract storage write
  uint64_t storage_update = 5000;   // overwrite of an existing slot
  uint64_t storage_read = 800;      // per contract storage read
  uint64_t event_emit = 1000;       // per emitted event + per 8 bytes of data
  uint64_t signature_check = 3000;  // per signature verified in-contract
  uint64_t transfer = 9000;         // value transfer initiated by a contract
  uint64_t compute_unit = 10;       // generic per-unit contract computation
};

/// Returns the process-wide schedule (constant; defined once).
const GasSchedule& DefaultGasSchedule();

/// Tracks gas consumption against a transaction's gas limit. Contracts
/// charge through this; exceeding the limit fails the call with
/// ResourceExhausted and the transaction's effects are rolled back (the gas
/// itself stays consumed, as on Ethereum).
class GasMeter {
 public:
  explicit GasMeter(uint64_t limit) : limit_(limit) {}

  /// Consumes `amount` gas; ResourceExhausted if the limit is exceeded.
  common::Status Charge(uint64_t amount);

  uint64_t used() const { return used_; }
  uint64_t limit() const { return limit_; }
  uint64_t remaining() const { return limit_ - used_; }

 private:
  uint64_t limit_;
  uint64_t used_ = 0;
};

}  // namespace pds2::chain

#endif  // PDS2_CHAIN_GAS_H_
