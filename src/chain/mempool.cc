#include "chain/mempool.h"

#include <algorithm>

#include "chain/evidence.h"
#include "common/checked_math.h"
#include "obs/metrics.h"

namespace pds2::chain {

using common::Status;

Mempool::Mempool(Config config) : config_(config) {
  if (config_.num_shards == 0) config_.num_shards = 1;
  shards_ = std::vector<Shard>(config_.num_shards);
}

size_t Mempool::ShardIndexFor(const Address& sender) const {
  // FNV-1a over the address bytes; senders map stably to shards.
  uint64_t h = 1469598103934665603ull;
  for (uint8_t b : sender) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return static_cast<size_t>(h % config_.num_shards);
}

void Mempool::PublishShardDepth(size_t shard_index, size_t depth) const {
#if PDS2_METRICS
  if (obs::MetricsEnabled()) {
    obs::Registry::Global()
        .GetGauge("chain.mempool.shard_depth." + std::to_string(shard_index))
        .Set(static_cast<int64_t>(depth));
    PDS2_M_GAUGE_SET("chain.mempool.depth",
                     count_.load(std::memory_order_relaxed));
  }
#else
  (void)shard_index;
  (void)depth;
#endif
}

Status Mempool::Add(const Transaction& tx) {
  // Reserve capacity optimistically; release on any rejection.
  if (count_.fetch_add(1, std::memory_order_relaxed) >=
      config_.max_transactions) {
    count_.fetch_sub(1, std::memory_order_relaxed);
    PDS2_M_COUNT("chain.mempool.admission_rejected", 1);
    return Status::ResourceExhausted("mempool is full");
  }
  const Address sender = tx.SenderAddress();
  const size_t shard_index = ShardIndexFor(sender);
  Shard& shard = shards_[shard_index];
  size_t depth;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    Hash id = tx.Id();
    if (shard.ids.count(id) > 0) {
      count_.fetch_sub(1, std::memory_order_relaxed);
      return Status::AlreadyExists("transaction already queued in mempool");
    }
    auto& chain = shard.by_sender[sender];
    Entry entry{tx, id, next_seq_.fetch_add(1, std::memory_order_relaxed)};
    auto [it, inserted] = chain.emplace(tx.nonce(), std::move(entry));
    (void)it;
    if (!inserted) {
      count_.fetch_sub(1, std::memory_order_relaxed);
      return Status::AlreadyExists(
          "transaction with this sender nonce already queued");
    }
    shard.ids.insert(std::move(id));
    depth = shard.ids.size();
  }
  PublishShardDepth(shard_index, depth);
  return Status::Ok();
}

bool Mempool::Contains(const Hash& id) const {
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.ids.count(id) > 0) return true;
  }
  return false;
}

size_t Mempool::Size() const {
  return count_.load(std::memory_order_relaxed);
}

Mempool::Selection Mempool::SelectForBlock(const WorldState& state,
                                           uint64_t block_gas_limit,
                                           uint64_t gas_price_floor) {
  Selection result;

  // Pass 1, per shard under its lock: evict stale nonces and pre-doomed
  // chain heads, then pull each sender's executable run (consecutive nonces
  // from the account nonce, affordable under a worst-case running balance)
  // into a shared candidate list.
  struct Candidate {
    const Transaction* tx;
    const Hash* id;
    uint64_t seq;
    uint64_t max_cost;  // value + gas_limit * gas_price
    Address sender;
    uint64_t gas_price;
    bool is_evidence;
  };
  std::vector<Candidate> candidates;
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (Shard& shard : shards_) {
    locks.emplace_back(shard.mu);
    for (auto sender_it = shard.by_sender.begin();
         sender_it != shard.by_sender.end();) {
      const Address& sender = sender_it->first;
      auto& chain = sender_it->second;
      const uint64_t account_nonce = state.GetNonce(sender);

      // Stale: superseded by an executed transaction with the same nonce.
      while (!chain.empty() && chain.begin()->first < account_nonce) {
        result.dropped.push_back(chain.begin()->second.id);
        shard.ids.erase(chain.begin()->second.id);
        chain.erase(chain.begin());
        count_.fetch_sub(1, std::memory_order_relaxed);
      }

      uint64_t balance = state.GetBalance(sender);
      uint64_t expected_nonce = account_nonce;
      for (auto it = chain.begin(); it != chain.end(); ++it) {
        if (it->first != expected_nonce) break;  // gap: rest is future
        const Transaction& tx = it->second.tx;
        const bool is_evidence = tx.payload().contract == kEvidenceContract;
        uint64_t max_fee, max_cost;
        const bool representable =
            common::CheckedMul(tx.gas_limit(), tx.gas_price(), &max_fee) &&
            common::CheckedAdd(tx.value(), max_fee, &max_cost);
        // A below-floor offer can never be carried by a valid block; treat
        // it like an unaffordable head (evidence is fee-exempt).
        const bool below_floor =
            !is_evidence && tx.gas_price() < gas_price_floor;
        if (!representable || below_floor || max_cost > balance) {
          // The chain head can never execute before anything tops the
          // sender up: it is pre-doomed, evict it so no block carries it.
          // Later entries in the run merely wait for the head's actual
          // (possibly smaller) spend and stay queued.
          if (it->first == account_nonce) {
            result.dropped.push_back(it->second.id);
            shard.ids.erase(it->second.id);
            chain.erase(it);
            count_.fetch_sub(1, std::memory_order_relaxed);
            PDS2_M_COUNT("chain.mempool.predoomed_evicted", 1);
            if (below_floor) {
              PDS2_M_COUNT("chain.mempool.evicted_below_floor", 1);
            }
          }
          break;
        }
        balance -= max_cost;
        candidates.push_back(Candidate{&tx, &it->second.id, it->second.seq,
                                       max_cost, sender, tx.gas_price(),
                                       is_evidence});
        ++expected_nonce;
      }

      if (chain.empty()) {
        sender_it = shard.by_sender.erase(sender_it);
      } else {
        ++sender_it;
      }
    }
  }

  // Pass 2: priority packing under the block gas budget (worst case: the
  // sum of gas limits). Evidence rides a priority lane ahead of everything
  // (accountability must not be crowded out by fee pressure), then higher
  // gas-price offers, then submission order — a strict total order (seq is
  // unique), so selection is deterministic. Multiple passes let a sender's
  // nonce run land in one block even when priority orders its later
  // entries first.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.is_evidence != b.is_evidence) return a.is_evidence;
              if (a.gas_price != b.gas_price) return a.gas_price > b.gas_price;
              return a.seq < b.seq;
            });
  std::map<Address, uint64_t> included_upto;  // sender -> next expected nonce
  std::vector<bool> taken(candidates.size(), false);
  uint64_t block_gas = 0;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (taken[i]) continue;
      const Candidate& cand = candidates[i];
      auto [it, inserted] = included_upto.try_emplace(
          cand.sender, state.GetNonce(cand.sender));
      if (cand.tx->nonce() != it->second) continue;
      if (block_gas + cand.tx->gas_limit() > block_gas_limit) continue;
      block_gas += cand.tx->gas_limit();
      it->second = cand.tx->nonce() + 1;
      taken[i] = true;
      result.selected.push_back(*cand.tx);
      progressed = true;
    }
  }

  // Remove the selected entries from their shards (still locked).
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (!taken[i]) continue;
    const Candidate& cand = candidates[i];
    Shard& shard = shards_[ShardIndexFor(cand.sender)];
    auto sender_it = shard.by_sender.find(cand.sender);
    if (sender_it == shard.by_sender.end()) continue;
    shard.ids.erase(*cand.id);
    sender_it->second.erase(cand.tx->nonce());
    if (sender_it->second.empty()) shard.by_sender.erase(sender_it);
    count_.fetch_sub(1, std::memory_order_relaxed);
  }
  locks.clear();
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mu);
    PublishShardDepth(s, shards_[s].ids.size());
  }
  return result;
}

void Mempool::RemoveExecuted(const std::vector<Transaction>& txs) {
  for (const Transaction& tx : txs) {
    const Address sender = tx.SenderAddress();
    const size_t shard_index = ShardIndexFor(sender);
    Shard& shard = shards_[shard_index];
    size_t depth;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      const Hash id = tx.Id();
      if (shard.ids.erase(id) == 0) continue;
      auto sender_it = shard.by_sender.find(sender);
      if (sender_it != shard.by_sender.end()) {
        auto it = sender_it->second.find(tx.nonce());
        if (it != sender_it->second.end() && it->second.id == id) {
          sender_it->second.erase(it);
        }
        if (sender_it->second.empty()) shard.by_sender.erase(sender_it);
      }
      count_.fetch_sub(1, std::memory_order_relaxed);
      depth = shard.ids.size();
    }
    PublishShardDepth(shard_index, depth);
  }
}

}  // namespace pds2::chain
