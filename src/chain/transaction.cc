#include "chain/transaction.h"

#include "crypto/sha256.h"

namespace pds2::chain {

using common::Bytes;
using common::Reader;
using common::Result;
using common::Status;
using common::Writer;

namespace {
constexpr char kTxDomain[] = "pds2.tx";
}  // namespace

const char* Transaction::Domain() { return kTxDomain; }

Transaction Transaction::Make(const crypto::SigningKey& sender, uint64_t nonce,
                              const Address& to, uint64_t value,
                              uint64_t gas_limit, CallPayload payload,
                              uint64_t gas_price) {
  Transaction tx;
  tx.sender_public_key_ = sender.PublicKey();
  tx.nonce_ = nonce;
  tx.to_ = to;
  tx.value_ = value;
  tx.gas_limit_ = gas_limit;
  tx.gas_price_ = gas_price;
  tx.payload_ = std::move(payload);
  tx.signature_ = sender.SignWithDomain(kTxDomain, tx.SigningBytes());
  return tx;
}

Bytes Transaction::SigningBytes() const {
  Writer w;
  w.PutBytes(sender_public_key_);
  w.PutU64(nonce_);
  w.PutBytes(to_);
  w.PutU64(value_);
  w.PutU64(gas_limit_);
  w.PutU64(gas_price_);
  w.PutString(payload_.contract);
  w.PutU64(payload_.instance);
  w.PutString(payload_.method);
  w.PutBytes(payload_.args);
  return w.Take();
}

Bytes Transaction::Serialize() const {
  Writer w;
  w.PutRaw(SigningBytes());
  w.PutBytes(signature_);
  return w.Take();
}

Result<Transaction> Transaction::Deserialize(const Bytes& data) {
  Reader r(data);
  Transaction tx;
  PDS2_ASSIGN_OR_RETURN(tx.sender_public_key_, r.GetBytes());
  PDS2_ASSIGN_OR_RETURN(tx.nonce_, r.GetU64());
  PDS2_ASSIGN_OR_RETURN(tx.to_, r.GetBytes());
  PDS2_ASSIGN_OR_RETURN(tx.value_, r.GetU64());
  PDS2_ASSIGN_OR_RETURN(tx.gas_limit_, r.GetU64());
  PDS2_ASSIGN_OR_RETURN(tx.gas_price_, r.GetU64());
  PDS2_ASSIGN_OR_RETURN(tx.payload_.contract, r.GetString());
  PDS2_ASSIGN_OR_RETURN(tx.payload_.instance, r.GetU64());
  PDS2_ASSIGN_OR_RETURN(tx.payload_.method, r.GetString());
  PDS2_ASSIGN_OR_RETURN(tx.payload_.args, r.GetBytes());
  PDS2_ASSIGN_OR_RETURN(tx.signature_, r.GetBytes());
  if (!r.AtEnd()) return Status::Corruption("trailing bytes in transaction");
  return tx;
}

Hash Transaction::Id() const { return crypto::Sha256::Hash(Serialize()); }

Status Transaction::VerifySignature() const {
  return crypto::VerifySignatureWithDomain(sender_public_key_, kTxDomain,
                                           SigningBytes(), signature_);
}

}  // namespace pds2::chain
