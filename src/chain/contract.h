#ifndef PDS2_CHAIN_CONTRACT_H_
#define PDS2_CHAIN_CONTRACT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chain/gas.h"
#include "chain/state.h"
#include "chain/types.h"
#include "common/result.h"
#include "common/sim_clock.h"

namespace pds2::chain {

/// Block-level information visible to contract code.
struct BlockContext {
  uint64_t number = 0;
  common::SimTime timestamp = 0;
};

/// An event emitted by contract code into the transaction receipt — the
/// audit trail the governance layer exposes to all actors.
struct Event {
  std::string contract;
  uint64_t instance = 0;
  std::string name;
  common::Bytes data;
};

/// Everything a contract method may touch during execution. All state
/// access goes through this object, which meters gas and scopes storage to
/// the contract instance's namespace.
class CallContext {
 public:
  CallContext(StateView& state, GasMeter& gas, Address sender, uint64_t value,
              std::string contract_name, uint64_t instance,
              const BlockContext& block, std::vector<Event>* events);

  /// Gas-metered storage read within this instance's namespace.
  common::Result<std::optional<common::Bytes>> Read(const common::Bytes& key);
  /// Gas-metered storage write.
  common::Status Write(const common::Bytes& key, const common::Bytes& value);
  /// Gas-metered storage delete.
  common::Status Delete(const common::Bytes& key);
  /// Gas-metered prefix scan (charged one read per returned entry).
  common::Result<std::vector<std::pair<common::Bytes, common::Bytes>>> Scan(
      const common::Bytes& prefix);

  /// Emits an audit event into the receipt.
  common::Status Emit(const std::string& name, const common::Bytes& data);

  /// Gas-metered signature verification (contracts validating certificates
  /// pay for the check).
  common::Status VerifySig(const common::Bytes& public_key,
                           const std::string& domain,
                           const common::Bytes& message,
                           const common::Bytes& signature);

  /// Pays `amount` native tokens out of the contract's own balance
  /// (escrowed funds) to `to`.
  common::Status PayOut(const Address& to, uint64_t amount);

  /// Destroys `amount` native tokens out of the contract's own balance:
  /// the funds move to the global burned-total record (see
  /// StateView::BurnedTotal), never to any account. Used by slashing paths
  /// so confiscated escrow provably leaves circulation while total supply
  /// (balances + stakes + burned) stays exactly conserved.
  common::Status Burn(uint64_t amount);

  const Address& sender() const { return sender_; }
  uint64_t value() const { return value_; }
  const BlockContext& block() const { return block_; }
  uint64_t instance() const { return instance_; }
  /// The contract instance's own account address (escrow holder).
  Address SelfAddress() const;
  GasMeter& gas() { return gas_; }
  StateView& state() { return state_; }

 private:
  StateView& state_;
  GasMeter& gas_;
  Address sender_;
  uint64_t value_;
  std::string contract_name_;
  uint64_t instance_;
  std::string space_;
  BlockContext block_;
  std::vector<Event>* events_;
};

/// A contract type: stateless logic whose persistent state lives in the
/// WorldState namespace of each deployed instance. Mirrors how Solidity
/// code is shared while storage is per-deployment.
class Contract {
 public:
  virtual ~Contract() = default;

  /// Registered type name ("erc20", "workload", ...).
  virtual std::string Name() const = 0;

  /// Called once at deployment with constructor arguments.
  virtual common::Status Deploy(CallContext& ctx, const common::Bytes& args) {
    (void)ctx;
    (void)args;
    return common::Status::Ok();
  }

  /// Dispatches a method call; returns the method's serialized result.
  virtual common::Result<common::Bytes> Call(CallContext& ctx,
                                             const std::string& method,
                                             const common::Bytes& args) = 0;
};

/// Maps contract type names to their logic singletons.
class ContractRegistry {
 public:
  /// Registers a contract type; AlreadyExists if the name is taken.
  common::Status Register(std::unique_ptr<Contract> contract);

  /// Looks up a contract by type name; nullptr when unknown.
  Contract* Find(const std::string& name) const;

  /// Registry preloaded with every built-in PDS2 contract (erc20, erc721,
  /// actor registry, workload).
  static std::unique_ptr<ContractRegistry> CreateDefault();

 private:
  std::map<std::string, std::unique_ptr<Contract>> contracts_;
};

}  // namespace pds2::chain

#endif  // PDS2_CHAIN_CONTRACT_H_
