#ifndef PDS2_CHAIN_TRANSACTION_H_
#define PDS2_CHAIN_TRANSACTION_H_

#include <string>

#include "chain/types.h"
#include "common/result.h"
#include "common/serial.h"
#include "crypto/schnorr.h"

namespace pds2::chain {

/// What a transaction invokes: a plain value transfer (empty contract
/// name), a contract deployment ("deploy"), or a contract method call.
struct CallPayload {
  std::string contract;   // registered contract type, "" = plain transfer
  uint64_t instance = 0;  // deployed instance id (0 for deploys)
  std::string method;
  common::Bytes args;     // method-specific serialized arguments

  bool IsPlainTransfer() const { return contract.empty(); }
};

/// A signed transaction. The signing domain is "pds2.tx" so transaction
/// signatures can never be replayed as blocks or certificates.
class Transaction {
 public:
  Transaction() = default;

  /// Builds and signs a transaction. `gas_price` is the fee the sender
  /// offers per gas unit; ChainConfig::gas_price is the network floor and
  /// the mempool prefers higher offers (see Mempool::SelectForBlock).
  static Transaction Make(const crypto::SigningKey& sender, uint64_t nonce,
                          const Address& to, uint64_t value,
                          uint64_t gas_limit, CallPayload payload,
                          uint64_t gas_price = 1);

  /// The canonical byte serialization (including signature).
  common::Bytes Serialize() const;
  static common::Result<Transaction> Deserialize(const common::Bytes& data);

  /// SHA-256 of the serialized transaction.
  Hash Id() const;

  /// Verifies the sender signature.
  common::Status VerifySignature() const;

  /// Bytes covered by the sender's signature (pre domain separation).
  common::Bytes SigningBytes() const;
  /// The transaction signing domain ("pds2.tx").
  static const char* Domain();

  const common::Bytes& sender_public_key() const { return sender_public_key_; }
  Address SenderAddress() const {
    return AddressFromPublicKey(sender_public_key_);
  }
  uint64_t nonce() const { return nonce_; }
  const Address& to() const { return to_; }
  uint64_t value() const { return value_; }
  uint64_t gas_limit() const { return gas_limit_; }
  uint64_t gas_price() const { return gas_price_; }
  const CallPayload& payload() const { return payload_; }
  const common::Bytes& signature() const { return signature_; }

 private:
  common::Bytes sender_public_key_;
  uint64_t nonce_ = 0;
  Address to_;
  uint64_t value_ = 0;
  uint64_t gas_limit_ = 0;
  uint64_t gas_price_ = 1;
  CallPayload payload_;
  common::Bytes signature_;
};

}  // namespace pds2::chain

#endif  // PDS2_CHAIN_TRANSACTION_H_
