#ifndef PDS2_CHAIN_TYPES_H_
#define PDS2_CHAIN_TYPES_H_

#include <string>

#include "common/bytes.h"

namespace pds2::chain {

/// A 20-byte account address (truncated SHA-256 of the public key,
/// Ethereum-style).
using Address = common::Bytes;

/// A 32-byte SHA-256 content hash.
using Hash = common::Bytes;

constexpr size_t kAddressSize = 20;

/// Derives the account address for a Schnorr public key.
Address AddressFromPublicKey(const common::Bytes& public_key);

/// Deterministic address of a deployed contract instance (derived from its
/// creator and instance id, so contracts can hold escrowed balances).
Address ContractAddress(const std::string& contract_name, uint64_t instance_id);

/// Short printable form "a3f9c02e…" for logs and error messages.
std::string ShortHex(const common::Bytes& bytes);

}  // namespace pds2::chain

#endif  // PDS2_CHAIN_TYPES_H_
