#ifndef PDS2_CHAIN_BLOCK_H_
#define PDS2_CHAIN_BLOCK_H_

#include <vector>

#include "chain/transaction.h"
#include "chain/types.h"
#include "common/result.h"
#include "common/sim_clock.h"
#include "crypto/schnorr.h"

namespace pds2::common {
class ThreadPool;
}  // namespace pds2::common

namespace pds2::chain {

/// Block header, signed by the proposing validator (domain "pds2.block").
struct BlockHeader {
  Hash parent_hash;
  uint64_t number = 0;
  common::SimTime timestamp = 0;
  Hash tx_root;     // Merkle root over transaction ids
  Hash state_root;  // WorldState digest after execution
  common::Bytes proposer_public_key;
  common::Bytes signature;

  /// Bytes covered by the proposer's signature.
  common::Bytes SigningBytes() const;
  common::Bytes Serialize() const;
  static common::Result<BlockHeader> Deserialize(const common::Bytes& data);

  /// SHA-256 of the serialized header — the block's identity.
  Hash Id() const;

  static const char* Domain() { return "pds2.block"; }
};

/// A full block: header plus ordered transactions.
struct Block {
  BlockHeader header;
  std::vector<Transaction> transactions;

  common::Bytes Serialize() const;
  static common::Result<Block> Deserialize(const common::Bytes& data);

  /// Merkle root over the transaction ids, as committed in the header.
  /// With a pool, transaction ids and tree levels are computed in parallel;
  /// the root is bit-identical for every pool size.
  static Hash ComputeTxRoot(const std::vector<Transaction>& txs,
                            common::ThreadPool* pool = nullptr);
};

}  // namespace pds2::chain

#endif  // PDS2_CHAIN_BLOCK_H_
