#ifndef PDS2_CHAIN_PARALLEL_EXEC_H_
#define PDS2_CHAIN_PARALLEL_EXEC_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "chain/state.h"
#include "chain/types.h"

namespace pds2::chain {

/// The ledger footprint of one transaction: the native accounts and the
/// contract storage spaces it may read or write. Plain transfers declare
/// their sets exactly ({sender, recipient}); contract calls get theirs
/// inferred by a tracing pre-pass (see Blockchain). `global` marks a
/// transaction that conflicts with everything (deploys, which allocate the
/// shared instance-id counter) and forces the whole block sequential.
struct AccessSet {
  std::set<Address> accounts;
  std::set<std::string> spaces;
  bool global = false;

  /// Absorbs `other` into this set (lane union).
  void Merge(const AccessSet& other);
};

/// StateView decorator that records every account and storage space an
/// execution touches. The tracing pre-pass runs each contract transaction
/// against the pre-block state under one of these (inside a checkpoint that
/// is rolled back), and the recorded footprint becomes the transaction's
/// declared access set.
class AccessTracingView final : public StateView {
 public:
  AccessTracingView(StateView& inner, AccessSet* out)
      : inner_(inner), out_(out) {}

  uint64_t GetBalance(const Address& addr) const override;
  uint64_t GetNonce(const Address& addr) const override;
  common::Status Credit(const Address& addr, uint64_t amount) override;
  common::Status Debit(const Address& addr, uint64_t amount) override;
  common::Status Transfer(const Address& from, const Address& to,
                          uint64_t amount) override;
  void BumpNonce(const Address& addr) override;
  std::optional<common::Bytes> StorageGet(
      const std::string& space, const common::Bytes& key) const override;
  bool StoragePut(const std::string& space, const common::Bytes& key,
                  const common::Bytes& value) override;
  void StorageDelete(const std::string& space,
                     const common::Bytes& key) override;
  std::vector<std::pair<common::Bytes, common::Bytes>> StorageScan(
      const std::string& space, const common::Bytes& prefix) const override;
  void Begin() override { inner_.Begin(); }
  void Commit() override { inner_.Commit(); }
  void Rollback() override { inner_.Rollback(); }

 private:
  StateView& inner_;
  AccessSet* out_;
};

/// A lane's private view of the world during optimistic parallel execution:
/// reads fall through to the frozen pre-block WorldState, writes are
/// buffered in an overlay. Lanes have pairwise-disjoint access sets, so the
/// base is never mutated while lanes run and overlay merging is
/// order-independent.
///
/// Every access is validated against the lane's allowed set. A transaction
/// that strays outside it (the traced footprint diverged from the real one)
/// sets the `violated` flag — the access itself stays memory-safe because
/// it only touches the immutable base and this lane's private overlay — and
/// the executor discards all overlays and re-runs the block sequentially.
///
/// Semantics (including error strings, account-existence effects and the
/// journaled Begin/Commit/Rollback contract) replicate WorldState exactly:
/// a lane-executed transaction must produce a bit-identical receipt.
class LaneStateView final : public StateView {
 public:
  LaneStateView(const WorldState& base, AccessSet allowed)
      : base_(base), allowed_(std::move(allowed)) {}

  uint64_t GetBalance(const Address& addr) const override;
  uint64_t GetNonce(const Address& addr) const override;
  common::Status Credit(const Address& addr, uint64_t amount) override;
  common::Status Debit(const Address& addr, uint64_t amount) override;
  common::Status Transfer(const Address& from, const Address& to,
                          uint64_t amount) override;
  void BumpNonce(const Address& addr) override;
  std::optional<common::Bytes> StorageGet(
      const std::string& space, const common::Bytes& key) const override;
  bool StoragePut(const std::string& space, const common::Bytes& key,
                  const common::Bytes& value) override;
  void StorageDelete(const std::string& space,
                     const common::Bytes& key) override;
  std::vector<std::pair<common::Bytes, common::Bytes>> StorageScan(
      const std::string& space, const common::Bytes& prefix) const override;
  void Begin() override;
  void Commit() override;
  void Rollback() override;

  /// True once any access fell outside the allowed set.
  bool violated() const { return violated_; }

  /// Applies the buffered writes to `target` (the base this view was built
  /// over). Must only be called with no open checkpoints and when no lane
  /// violated its set.
  void MergeInto(WorldState* target) const;

 private:
  struct JournalEntry {
    enum class Kind { kAccount, kStorage } kind;
    Address addr;
    std::optional<std::optional<Account>> prior_account;  // outer: in overlay?
    std::string space;
    common::Bytes key;
    std::optional<std::optional<common::Bytes>> prior_value;
  };

  std::optional<Account> LookupAccount(const Address& addr) const;
  void PutOverlayAccount(const Address& addr, const Account& account);
  void JournalStorageSlot(const std::string& space, const common::Bytes& key);
  void CheckAccount(const Address& addr) const;
  void CheckSpace(const std::string& space) const;

  const WorldState& base_;
  AccessSet allowed_;
  mutable bool violated_ = false;
  std::map<Address, Account> accounts_;
  // space -> key -> value (nullopt = deleted relative to base).
  std::map<std::string, std::map<common::Bytes, std::optional<common::Bytes>>>
      storage_;
  std::vector<JournalEntry> journal_;
  std::vector<size_t> checkpoints_;
};

/// Partitions transactions [0, n) into conflict lanes: union-find over
/// overlapping access sets, so two transactions land in the same lane iff
/// they are connected through shared accounts or storage spaces. Lane order
/// and in-lane order both follow the canonical (block) transaction order.
/// If any set is global the result is a single lane holding everything.
std::vector<std::vector<size_t>> PartitionIntoLanes(
    const std::vector<AccessSet>& sets);

}  // namespace pds2::chain

#endif  // PDS2_CHAIN_PARALLEL_EXEC_H_
