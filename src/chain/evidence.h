#ifndef PDS2_CHAIN_EVIDENCE_H_
#define PDS2_CHAIN_EVIDENCE_H_

#include <vector>

#include "chain/block.h"
#include "chain/transaction.h"
#include "chain/types.h"
#include "common/result.h"

namespace pds2::chain {

/// Proof that a validator double-signed: two validly signed block headers
/// for the same height from the same proposer with different identities.
/// This is the one self-contained, objectively verifiable misbehaviour in a
/// PoA chain — an honest proposer signs at most one header per height, so
/// the pair alone convicts, with no appeal to which fork "won". Invalid
/// state-root and gas-cheating blocks reduce to the same proof: the cheater
/// must also publish a correct variant to keep its slot (or the chain
/// ignores it entirely), and the (correct, cheating) pair is a double-sign.
///
/// Withholding is deliberately NOT evidence: an absent block is
/// indistinguishable from a partitioned honest proposer, so it is handled
/// by liveness machinery (ChainConfig::proposer_grace), never by slashing.
struct EquivocationEvidence {
  BlockHeader header_a;
  BlockHeader header_b;

  /// The convicted proposer's address (from header_a's public key).
  Address Offender() const;
  /// Height both headers claim.
  uint64_t Height() const { return header_a.number; }

  /// Structural + cryptographic validity: same height, same proposer, the
  /// proposer is in `validators`, both signatures verify under the
  /// "pds2.block" domain, and the two headers have different identities.
  /// Deterministic, so every replica accepts/rejects identically.
  common::Status Verify(const std::vector<common::Bytes>& validators) const;

  common::Bytes Serialize() const;
  static common::Result<EquivocationEvidence> Deserialize(
      const common::Bytes& data);
};

/// Contract name routing a transaction to the native evidence handler.
inline constexpr char kEvidenceContract[] = "evidence";
/// Reserved storage space recording accepted evidence, keyed
/// (offender address || height), so each offence slashes exactly once no
/// matter how many reporters race.
inline constexpr char kEvidenceSpace[] = "pds2.evidence";

/// Storage key marking evidence against `offender` at `height` as spent.
common::Bytes EvidenceKey(const Address& offender, uint64_t height);

/// Builds the signed evidence transaction. Evidence is fee-exempt
/// (gas_limit 0, gas_price 0): a reporter needs no funded account to make
/// the chain act on proof of misbehaviour — the bounty is its incentive.
Transaction MakeEvidenceTransaction(const crypto::SigningKey& reporter,
                                    uint64_t nonce,
                                    const EquivocationEvidence& evidence);

}  // namespace pds2::chain

#endif  // PDS2_CHAIN_EVIDENCE_H_
