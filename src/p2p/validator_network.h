#ifndef PDS2_P2P_VALIDATOR_NETWORK_H_
#define PDS2_P2P_VALIDATOR_NETWORK_H_

#include <map>
#include <memory>
#include <vector>

#include "chain/chain.h"
#include "dml/netsim.h"

namespace pds2::p2p {

/// Genesis allocation for a replicated chain deployment.
struct GenesisAlloc {
  chain::Address address;
  uint64_t amount = 0;
};

/// One validator's network endpoint: a full chain replica that
///  - gossips transactions submitted to it,
///  - produces a block when the PoA rotation reaches it (timer-driven) and
///    broadcasts it,
///  - applies peer blocks in order, buffering out-of-order arrivals,
///  - recovers from message loss with an explicit sync protocol (a node
///    that sees a block from the future asks the sender for the gap).
///
/// Every replica executes every block, so the network converges to one
/// state without any node trusting another's execution — the §II-E
/// "trustless decentralized" audit property, here made operational.
class ValidatorNode : public dml::Node {
 public:
  /// `index` is this validator's position in `validator_keys` (its own
  /// signing key); `peers` are the NetSim ids of all validator nodes
  /// (including self; self is skipped when broadcasting).
  ValidatorNode(size_t index, std::vector<common::Bytes> validator_keys,
                crypto::SigningKey key,
                const std::vector<GenesisAlloc>& genesis,
                common::SimTime block_interval);

  void OnStart(dml::NodeContext& ctx) override;
  void OnMessage(dml::NodeContext& ctx, size_t from,
                 const common::Bytes& payload) override;
  void OnTimer(dml::NodeContext& ctx, uint64_t timer_id) override;

  /// Peer ids must be assigned after all nodes are added to the sim.
  void SetPeers(std::vector<size_t> peers) { peers_ = std::move(peers); }

  /// Local ingress: a client hands a transaction to this validator, which
  /// pools and gossips it.
  common::Status SubmitTransaction(const chain::Transaction& tx,
                                   dml::NodeContext& ctx);

  const chain::Blockchain& chain() const { return *chain_; }
  chain::Blockchain& chain() { return *chain_; }

  uint64_t blocks_produced() const { return blocks_produced_; }
  uint64_t sync_requests_sent() const { return sync_requests_sent_; }

 private:
  void Broadcast(dml::NodeContext& ctx, const common::Bytes& payload);
  void TryProduce(dml::NodeContext& ctx);
  void ApplyOrBuffer(dml::NodeContext& ctx, size_t from, chain::Block block);
  void DrainBuffer();

  size_t index_;
  crypto::SigningKey key_;
  std::unique_ptr<chain::Blockchain> chain_;
  std::vector<size_t> peers_;
  common::SimTime block_interval_;

  // Blocks that arrived ahead of our height, keyed by number.
  std::map<uint64_t, chain::Block> future_blocks_;
  // Tx ids already seen, to stop gossip loops.
  std::map<chain::Hash, bool> seen_txs_;

  uint64_t blocks_produced_ = 0;
  uint64_t sync_requests_sent_ = 0;
};

/// Convenience: builds a NetSim with `n` validators wired as full mesh.
/// Returns the sim; `nodes` receives non-owning pointers to the nodes.
std::unique_ptr<dml::NetSim> MakeValidatorNetwork(
    size_t n, const std::vector<GenesisAlloc>& genesis,
    common::SimTime block_interval, const dml::NetConfig& net_config,
    uint64_t seed, std::vector<ValidatorNode*>* nodes);

}  // namespace pds2::p2p

#endif  // PDS2_P2P_VALIDATOR_NETWORK_H_
