#ifndef PDS2_P2P_VALIDATOR_NETWORK_H_
#define PDS2_P2P_VALIDATOR_NETWORK_H_

#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "chain/chain.h"
#include "chain/evidence.h"
#include "common/fault.h"
#include "dml/netsim.h"
#include "storage/chain_store.h"
#include "store/discovery.h"

namespace pds2::p2p {

/// Genesis allocation for a replicated chain deployment.
struct GenesisAlloc {
  chain::Address address;
  uint64_t amount = 0;
};

/// One validator's network endpoint: a full chain replica that
///  - gossips transactions submitted to it,
///  - produces a block when the PoA rotation reaches it (timer-driven) and
///    broadcasts it,
///  - applies peer blocks in order, buffering a bounded window of
///    out-of-order arrivals,
///  - recovers from message loss with an explicit sync protocol: a node
///    that sees a block or head from the future asks for the gap, and
///    retries with capped exponential backoff until it catches up,
///  - resolves forks (possible when ChainConfig::proposer_grace lets a
///    fallback proposer take over a dead primary's slot) by exchanging full
///    chain snapshots and deterministically preferring the longer chain,
///    ties broken toward the lexicographically smaller head hash,
///  - survives crash/restart: OnRestart re-arms the timer chains the crash
///    destroyed,
///  - optionally persists its replica through a storage::ChainStore
///    (`store_dir`): every committed block is appended to the on-disk log,
///    periodic state snapshots are cut, and a node constructed over an
///    existing directory resumes from disk at its old height instead of a
///    genesis full-sync.
///
/// Every replica executes every block, so the network converges to one
/// state without any node trusting another's execution — the §II-E
/// "trustless decentralized" audit property, here made operational.
class ValidatorNode : public dml::Node {
 public:
  /// `index` is this validator's position in `validator_keys` (its own
  /// signing key); `peers` are the NetSim ids of all validator nodes
  /// (including self; self is skipped when broadcasting). A non-empty
  /// `store_dir` makes the replica durable: it is recovered from that
  /// directory (snapshot + log-tail replay) if one exists, and every
  /// commit is persisted there. An unrecoverable directory falls back to a
  /// fresh in-memory replica (logged), keeping the node live.
  /// `chain_config` is passed through to the replica's Blockchain, so
  /// block production and external-block apply run on
  /// `chain_config.thread_pool` — or on the shared process pool when that
  /// is nullptr (the default): validators get batched signature checks
  /// and conflict-lane execution without plumbing a pool here.
  ValidatorNode(size_t index, std::vector<common::Bytes> validator_keys,
                crypto::SigningKey key,
                const std::vector<GenesisAlloc>& genesis,
                common::SimTime block_interval,
                chain::ChainConfig chain_config = {},
                std::string store_dir = "",
                storage::ChainStoreOptions store_options = {});

  void OnStart(dml::NodeContext& ctx) override;
  void OnRestart(dml::NodeContext& ctx) override;
  void OnMessage(dml::NodeContext& ctx, size_t from,
                 const common::Bytes& payload) override;
  void OnTimer(dml::NodeContext& ctx, uint64_t timer_id) override;

  /// Peer ids must be assigned after all nodes are added to the sim.
  void SetPeers(std::vector<size_t> peers) { peers_ = std::move(peers); }

  /// Scripts this validator to misbehave (chaos/bench harnesses only). An
  /// honest node never calls this; see common::ByzantineBehavior for the
  /// menu and chain/evidence.h for why the provable ones get slashed.
  void SetByzantine(common::ByzantineBehavior behavior) {
    byzantine_ = behavior;
  }
  common::ByzantineBehavior byzantine() const { return byzantine_; }

  /// Local ingress: a client hands a transaction to this validator, which
  /// pools and gossips it.
  common::Status SubmitTransaction(const chain::Transaction& tx,
                                   dml::NodeContext& ctx);

  /// Local ingress for the discovery layer: a provider hands this
  /// validator a dataset/artifact advert, which joins the local index and
  /// floods to peers (dedup'd by the index's LWW merge, exactly like tx
  /// gossip). Quarantined peers' adverts are dropped on receipt.
  void AnnounceAdvert(const store::Advert& advert, dml::NodeContext& ctx);

  /// This validator's replica of the gossip discovery index.
  const store::DiscoveryIndex& discovery() const { return discovery_; }

  const chain::Blockchain& chain() const { return *chain_; }
  chain::Blockchain& chain() { return *chain_; }

  /// The durability layer, nullptr for a pure in-memory node.
  const storage::ChainStore* store() const { return store_.get(); }
  /// Height at which this node resumed from disk (0 = fresh start).
  uint64_t recovered_height() const { return recovered_height_; }

  uint64_t blocks_produced() const { return blocks_produced_; }
  uint64_t sync_requests_sent() const { return sync_requests_sent_; }
  uint64_t sync_retries() const { return sync_retries_; }
  uint64_t forks_resolved() const { return forks_resolved_; }
  uint64_t future_blocks_evicted() const { return future_blocks_evicted_; }
  uint64_t evidence_detected() const { return evidence_detected_; }
  uint64_t evidence_submitted() const { return evidence_submitted_; }
  size_t pending_evidence_count() const { return pending_evidence_.size(); }
  const std::set<size_t>& quarantined_peers() const {
    return quarantined_peers_;
  }

 private:
  void Broadcast(dml::NodeContext& ctx, const common::Bytes& payload);
  void TryProduce(dml::NodeContext& ctx);
  void ApplyOrBuffer(dml::NodeContext& ctx, size_t from, chain::Block block);
  void DrainBuffer();
  /// Records interest in blocks up to `height` (seen on a peer) and starts
  /// the sync retry loop if it is not already running.
  void NoteRemoteHead(dml::NodeContext& ctx, size_t from, uint64_t height);
  void SendSyncRequest(dml::NodeContext& ctx, size_t to);
  void RequestChain(dml::NodeContext& ctx, size_t from);
  /// Rebuilds a candidate replica from a full snapshot and swaps it in if
  /// it is valid and strictly preferred by the fork-choice rule.
  void MaybeAdoptChain(const std::vector<chain::Block>& blocks);
  /// Emits this node's scripted misbehaviour right after it produced the
  /// honest block for its slot: a second conflicting signed header (the
  /// double-sign every provable behaviour reduces to).
  void BroadcastByzantineVariant(dml::NodeContext& ctx,
                                 const chain::Block& block);
  /// Accountability watchtower: remembers every validly signed header seen
  /// per (height, proposer) and turns a conflicting pair into pending
  /// equivocation evidence, quarantining the offender's peer.
  void RecordHeader(dml::NodeContext& ctx, const chain::BlockHeader& header);
  /// Submits pending evidence transactions (retried every slot until the
  /// chain records the slash, robust across fork adoption).
  void MaybeSubmitEvidence(dml::NodeContext& ctx);
  void QuarantinePeerOf(const chain::Address& proposer);

  size_t index_;
  crypto::SigningKey key_;
  std::vector<common::Bytes> validator_keys_;  // kept for chain rebuilds
  std::vector<GenesisAlloc> genesis_;          // kept for chain rebuilds
  chain::ChainConfig chain_config_;
  std::string store_dir_;  // "" = in-memory only
  storage::ChainStoreOptions store_options_;
  std::unique_ptr<chain::Blockchain> chain_;
  std::unique_ptr<storage::ChainStore> store_;  // after chain_: detach first
  uint64_t recovered_height_ = 0;
  std::vector<size_t> peers_;
  common::SimTime block_interval_;

  // Blocks that arrived ahead of our height, keyed by number. Bounded: on
  // overflow the farthest-ahead block is evicted (it is the cheapest to
  // re-fetch, since sync fills the gap front first).
  std::map<uint64_t, chain::Block> future_blocks_;
  // Tx ids already seen, to stop gossip loops.
  std::map<chain::Hash, bool> seen_txs_;

  // Sync retry state. `sync_target_` is the highest peer height observed;
  // while behind it, a kSyncTimer fires with exponential backoff (capped)
  // and re-asks a random peer, so one lost sync exchange cannot strand the
  // replica until the next head announce.
  uint64_t sync_target_ = 0;
  bool sync_timer_armed_ = false;
  common::SimTime sync_backoff_ = 0;

  // Scripted misbehaviour (kNone on every honest node).
  common::ByzantineBehavior byzantine_ = common::ByzantineBehavior::kNone;

  // Watchtower state: first validly-signed header seen per (height,
  // proposer address); a second one with a different id is a double-sign.
  // Pruned below (height - 64) as the chain advances.
  std::map<std::pair<uint64_t, chain::Address>, chain::BlockHeader>
      seen_headers_;
  // Header ids whose proposer signature already verified (dedup work).
  std::set<chain::Hash> verified_headers_;
  // Evidence built locally but not yet recorded on chain, keyed
  // (offender, height). Erased once chain_->HasEvidenceFor confirms.
  std::map<std::pair<chain::Address, uint64_t>, chain::EquivocationEvidence>
      pending_evidence_;
  // Replica of the network's content-discovery adverts (store/discovery.h);
  // fed by AnnounceAdvert locally and kMsgAdvert gossip remotely.
  store::DiscoveryIndex discovery_;

  // Peers whose validator double-signed: their tx gossip is dropped and
  // sync avoids them when an honest peer is available. Never gates block
  // or snapshot processing — consensus safety cannot depend on scoring.
  std::set<size_t> quarantined_peers_;

  uint64_t blocks_produced_ = 0;
  uint64_t sync_requests_sent_ = 0;
  uint64_t sync_retries_ = 0;
  uint64_t forks_resolved_ = 0;
  uint64_t future_blocks_evicted_ = 0;
  uint64_t evidence_detected_ = 0;
  uint64_t evidence_submitted_ = 0;
};

/// Convenience: builds a NetSim with `n` validators wired as full mesh.
/// Returns the sim; `nodes` receives non-owning pointers to the nodes. A
/// non-empty `store_root` gives validator i the durable directory
/// `<store_root>/validator-<i>`; rebuilding the network over the same root
/// resumes every replica from disk.
std::unique_ptr<dml::NetSim> MakeValidatorNetwork(
    size_t n, const std::vector<GenesisAlloc>& genesis,
    common::SimTime block_interval, const dml::NetConfig& net_config,
    uint64_t seed, std::vector<ValidatorNode*>* nodes,
    chain::ChainConfig chain_config = {}, const std::string& store_root = "",
    storage::ChainStoreOptions store_options = {});

/// Applies a FaultPlan's scripted Byzantine validator assignments to the
/// nodes of a network built by MakeValidatorNetwork.
void ApplyByzantineSpecs(const common::FaultPlan& plan,
                         const std::vector<ValidatorNode*>& nodes);

}  // namespace pds2::p2p

#endif  // PDS2_P2P_VALIDATOR_NETWORK_H_
