#include "p2p/validator_network.h"

#include <algorithm>

#include "common/crc32.h"
#include "common/logging.h"
#include "common/serial.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pds2::p2p {

using common::Bytes;
using common::Reader;
using common::Status;
using common::Writer;

namespace {

constexpr uint64_t kSlotTimer = 1;
constexpr uint64_t kSyncTimer = 2;

// Wire message kinds.
constexpr uint8_t kMsgTx = 1;
constexpr uint8_t kMsgBlock = 2;
constexpr uint8_t kMsgSyncRequest = 3;
constexpr uint8_t kMsgSyncResponse = 4;
constexpr uint8_t kMsgHeadAnnounce = 5;
constexpr uint8_t kMsgChainRequest = 6;
constexpr uint8_t kMsgChainResponse = 7;
constexpr uint8_t kMsgAdvert = 8;

// Out-of-order block window. Anything farther ahead is evicted and
// re-fetched by the sync protocol once the gap in front is filled.
constexpr size_t kMaxFutureBlocks = 32;

// Sync retry backoff doubles from one block interval up to this many.
constexpr uint64_t kMaxSyncBackoffIntervals = 8;

// Sanity cap when decoding a full-chain snapshot.
constexpr uint64_t kMaxSnapshotBlocks = 1 << 20;

Bytes EncodeTx(const chain::Transaction& tx) {
  Writer w;
  w.PutU8(kMsgTx);
  w.PutBytes(tx.Serialize());
  return w.Take();
}

Bytes EncodeBlock(uint8_t kind, const chain::Block& block) {
  Writer w;
  w.PutU8(kind);
  w.PutBytes(block.Serialize());
  return w.Take();
}

}  // namespace

ValidatorNode::ValidatorNode(size_t index,
                             std::vector<Bytes> validator_keys,
                             crypto::SigningKey key,
                             const std::vector<GenesisAlloc>& genesis,
                             common::SimTime block_interval,
                             chain::ChainConfig chain_config,
                             std::string store_dir,
                             storage::ChainStoreOptions store_options)
    : index_(index),
      key_(std::move(key)),
      validator_keys_(std::move(validator_keys)),
      genesis_(genesis),
      chain_config_(chain_config),
      store_dir_(std::move(store_dir)),
      store_options_(store_options),
      block_interval_(block_interval) {
  if (!store_dir_.empty()) {
    std::vector<storage::GenesisAccount> accounts;
    accounts.reserve(genesis_.size());
    for (const GenesisAlloc& alloc : genesis_) {
      accounts.push_back({alloc.address, alloc.amount});
    }
    auto recovered = storage::OpenBlockchain(
        store_dir_, validator_keys_, accounts, chain_config_, store_options_);
    if (recovered.ok()) {
      chain_ = std::move(recovered->chain);
      store_ = std::move(recovered->store);
      recovered_height_ = recovered->info.snapshot_height +
                          recovered->info.replayed_blocks;
      if (recovered_height_ > 0) {
        PDS2_LOG(kInfo) << "validator " << index_ << " resumed from "
                        << store_dir_ << " at height " << recovered_height_;
      }
      return;
    }
    // An unrecoverable directory must not take the validator down with it:
    // fall through to a fresh in-memory replica and let sync rebuild state.
    PDS2_LOG(kWarn) << "validator " << index_ << " could not recover "
                    << store_dir_ << ": " << recovered.status().ToString()
                    << "; running in-memory";
  }
  chain_ = std::make_unique<chain::Blockchain>(
      validator_keys_, chain::ContractRegistry::CreateDefault(), chain_config_);
  for (const GenesisAlloc& alloc : genesis_) {
    (void)chain_->CreditGenesis(alloc.address, alloc.amount);
  }
}

void ValidatorNode::OnStart(dml::NodeContext& ctx) {
  // Stagger slot timers slightly by index so a round-robin slot's proposer
  // usually fires first.
  ctx.SetTimer(block_interval_ + index_ * 199, kSlotTimer);
}

void ValidatorNode::OnRestart(dml::NodeContext& ctx) {
  // The crash destroyed every armed timer and all in-memory buffers; the
  // chain itself survives (a real validator replays it from disk). Re-arm
  // the slot chain and let head announces re-trigger sync.
  future_blocks_.clear();
  sync_timer_armed_ = false;
  sync_backoff_ = 0;
  OnStart(ctx);
}

void ValidatorNode::Broadcast(dml::NodeContext& ctx, const Bytes& payload) {
  for (size_t peer : peers_) {
    if (peer != ctx.self()) ctx.Send(peer, payload);
  }
}

Status ValidatorNode::SubmitTransaction(const chain::Transaction& tx,
                                        dml::NodeContext& ctx) {
  PDS2_RETURN_IF_ERROR(chain_->SubmitTransaction(tx));
  seen_txs_[tx.Id()] = true;
  Broadcast(ctx, EncodeTx(tx));
  return Status::Ok();
}

void ValidatorNode::AnnounceAdvert(const store::Advert& advert,
                                   dml::NodeContext& ctx) {
  if (!discovery_.Upsert(advert)) return;  // already known or stale
  const Bytes serialized = advert.Serialize();
  Writer w;
  w.PutU8(kMsgAdvert);
  // CRC-framed: adverts travel the same fault-injected links as blocks,
  // and a flipped-but-parseable advert would pollute every replica.
  w.PutU32(common::Crc32c(serialized));
  w.PutBytes(serialized);
  Broadcast(ctx, w.Take());
  PDS2_M_COUNT("p2p.advert.announced", 1);
}

void ValidatorNode::TryProduce(dml::NodeContext& ctx) {
  if (chain_->ProposerAt(ctx.Now()) != key_.PublicKey()) return;
  if (byzantine_ == common::ByzantineBehavior::kWithhold) {
    // Silence. Indistinguishable from a partitioned honest proposer, so it
    // is never slashable — the proposer_grace fallback absorbs the slot.
    PDS2_M_COUNT("p2p.byzantine.withheld", 1);
    return;
  }
  auto block = chain_->ProduceBlock(key_, ctx.Now());
  if (!block.ok()) return;  // e.g. non-monotonic timestamp: wait a slot
  ++blocks_produced_;
  PDS2_M_COUNT("p2p.blocks_produced", 1);
  Broadcast(ctx, EncodeBlock(kMsgBlock, *block));
  if (byzantine_ != common::ByzantineBehavior::kNone) {
    BroadcastByzantineVariant(ctx, *block);
  }
  DrainBuffer();
}

void ValidatorNode::BroadcastByzantineVariant(dml::NodeContext& ctx,
                                              const chain::Block& block) {
  // Every provable misbehaviour is expressed as a second signed header at
  // the height we just produced honestly (we must keep producing honest
  // blocks or the chain simply ignores us) — exactly the double-sign that
  // chain::EquivocationEvidence convicts.
  chain::Block variant = block;
  switch (byzantine_) {
    case common::ByzantineBehavior::kEquivocate:
      // A perfectly well-formed competing block: honest replicas that see
      // it first adopt it and the fork-choice rule must reconverge them.
      variant.header.timestamp += 1;
      break;
    case common::ByzantineBehavior::kInvalidStateRoot:
      // Commits to a state no replica can reproduce; honest replicas
      // reject it (and the rejection is transactional — no residue).
      variant.header.state_root[0] ^= 0xff;
      break;
    case common::ByzantineBehavior::kGasCheat: {
      // Pads the block with a self-signed transfer whose gas limit alone
      // busts the block budget, recommitting the tx root so the header is
      // internally consistent — only the gas-sum consensus rule catches it.
      chain::Transaction filler = chain::Transaction::Make(
          key_, /*nonce=*/1ull << 30,
          chain::AddressFromPublicKey(key_.PublicKey()), /*value=*/0,
          /*gas_limit=*/chain_config_.block_gas_limit + 1, {},
          chain_config_.gas_price);
      variant.transactions.push_back(std::move(filler));
      variant.header.tx_root =
          chain::Block::ComputeTxRoot(variant.transactions);
      break;
    }
    default:
      return;
  }
  variant.header.signature = key_.SignWithDomain(
      chain::BlockHeader::Domain(), variant.header.SigningBytes());
  PDS2_M_COUNT("p2p.byzantine.variants_broadcast", 1);
  Broadcast(ctx, EncodeBlock(kMsgBlock, variant));
}

void ValidatorNode::RecordHeader(dml::NodeContext& ctx,
                                 const chain::BlockHeader& header) {
  // Watchtower: only a validly signed header from a known validator is
  // attributable; anything else is noise a forger could plant.
  const std::vector<Bytes>& validators = chain_->validators();
  if (std::find(validators.begin(), validators.end(),
                header.proposer_public_key) == validators.end()) {
    return;
  }
  const chain::Hash id = header.Id();
  if (verified_headers_.count(id) == 0) {
    if (!crypto::VerifySignatureWithDomain(
             header.proposer_public_key, chain::BlockHeader::Domain(),
             header.SigningBytes(), header.signature)
             .ok()) {
      return;
    }
    if (verified_headers_.size() >= 4096) verified_headers_.clear();
    verified_headers_.insert(id);
  }
  const chain::Address offender =
      chain::AddressFromPublicKey(header.proposer_public_key);
  auto [it, inserted] =
      seen_headers_.emplace(std::make_pair(header.number, offender), header);
  if (inserted) {
    // Keep the watchtower bounded: anything far below our height can no
    // longer pair up (its counterpart would be equally stale).
    const uint64_t floor =
        chain_->Height() > 64 ? chain_->Height() - 64 : 0;
    while (!seen_headers_.empty() &&
           seen_headers_.begin()->first.first < floor) {
      seen_headers_.erase(seen_headers_.begin());
    }
    return;
  }
  if (it->second.Id() == id) return;  // same header re-gossiped
  const auto ev_key = std::make_pair(offender, header.number);
  if (pending_evidence_.count(ev_key) > 0 ||
      chain_->HasEvidenceFor(offender, header.number)) {
    return;  // already being prosecuted / already punished
  }
  chain::EquivocationEvidence evidence;
  evidence.header_a = it->second;
  evidence.header_b = header;
  if (!evidence.Verify(validators).ok()) return;
  ++evidence_detected_;
  PDS2_M_COUNT("p2p.evidence.detected", 1);
  PDS2_LOG(kWarn) << "validator " << index_ << " detected double-sign at "
                  << "height " << header.number << " by "
                  << chain::ShortHex(offender);
  QuarantinePeerOf(offender);
  pending_evidence_.emplace(ev_key, std::move(evidence));
  MaybeSubmitEvidence(ctx);
}

void ValidatorNode::QuarantinePeerOf(const chain::Address& proposer) {
  for (size_t i = 0; i < validator_keys_.size() && i < peers_.size(); ++i) {
    if (chain::AddressFromPublicKey(validator_keys_[i]) != proposer) continue;
    if (quarantined_peers_.insert(peers_[i]).second) {
      PDS2_M_COUNT("p2p.evidence.quarantined", 1);
      PDS2_LOG(kWarn) << "validator " << index_ << " quarantined peer "
                      << peers_[i] << " (double-signing validator " << i
                      << ")";
    }
  }
}

void ValidatorNode::MaybeSubmitEvidence(dml::NodeContext& ctx) {
  if (pending_evidence_.empty()) return;
  const chain::Address self = chain::AddressFromPublicKey(key_.PublicKey());
  uint64_t nonce_offset = 0;
  for (auto it = pending_evidence_.begin(); it != pending_evidence_.end();) {
    if (chain_->HasEvidenceFor(it->first.first, it->first.second)) {
      // The slash is on chain (ours or another reporter's); case closed.
      it = pending_evidence_.erase(it);
      continue;
    }
    chain::Transaction tx = chain::MakeEvidenceTransaction(
        key_, chain_->GetNonce(self) + nonce_offset, it->second);
    Status status = chain_->SubmitTransaction(tx);
    if (status.ok()) {
      ++nonce_offset;
      ++evidence_submitted_;
      PDS2_M_COUNT("p2p.evidence.submitted", 1);
      seen_txs_[tx.Id()] = true;
      Broadcast(ctx, EncodeTx(tx));
    }
    // AlreadyExists (still queued, or a racing reporter landed first) is
    // expected: the entry stays pending and is retried every slot until
    // the on-chain marker appears. Deterministic signing makes a retry
    // byte-identical, so it can never double-queue.
    ++it;
  }
}

void ValidatorNode::SendSyncRequest(dml::NodeContext& ctx, size_t to) {
  Writer w;
  w.PutU8(kMsgSyncRequest);
  w.PutU64(chain_->Height());
  ctx.Send(to, w.Take());
  ++sync_requests_sent_;
  PDS2_M_COUNT("p2p.sync_requests_sent", 1);
}

void ValidatorNode::RequestChain(dml::NodeContext& ctx, size_t from) {
  Writer w;
  w.PutU8(kMsgChainRequest);
  ctx.Send(from, w.Take());
}

void ValidatorNode::NoteRemoteHead(dml::NodeContext& ctx, size_t from,
                                   uint64_t height) {
  sync_target_ = std::max(sync_target_, height);
  if (chain_->Height() >= sync_target_) return;
  // Ask the peer that revealed the gap right away — redundant requests are
  // cheap and stale responses are ignored, so eagerness buys catch-up speed
  // under loss. The backoff timer is the safety net for when requests or
  // responses themselves are lost (or the responder is partitioned away).
  SendSyncRequest(ctx, from);
  if (sync_timer_armed_) return;
  sync_backoff_ = block_interval_;
  sync_timer_armed_ = true;
  // Seeded jitter (up to 25% of the backoff) desynchronizes replicas that
  // discovered the same gap in the same slot, so their retries do not all
  // land on one responder at once. Drawn from the node's deterministic RNG:
  // the same seed still reproduces the same run bit for bit.
  ctx.SetTimer(sync_backoff_ + ctx.rng().NextU64(sync_backoff_ / 4 + 1),
               kSyncTimer);
}

void ValidatorNode::OnTimer(dml::NodeContext& ctx, uint64_t timer_id) {
  if (timer_id == kSyncTimer) {
    sync_timer_armed_ = false;
    if (chain_->Height() >= sync_target_) {
      sync_backoff_ = 0;  // caught up; next gap starts fresh
      return;
    }
    // Still behind: retry against a random peer (the original responder may
    // be the one that is partitioned away from us). Quarantined peers are
    // deprioritized, not excluded: the last draws accept anyone, so
    // down-scoring can never strand sync when only offenders remain.
    size_t peer = ctx.self();
    for (int tries = 0; tries < 8 && peer == ctx.self(); ++tries) {
      size_t cand = peers_[ctx.rng().NextU64(peers_.size())];
      if (cand == ctx.self()) continue;
      if (tries < 5 && quarantined_peers_.count(cand) > 0) continue;
      peer = cand;
    }
    if (peer != ctx.self()) {
      SendSyncRequest(ctx, peer);
      ++sync_retries_;
      PDS2_M_COUNT("p2p.sync_retries", 1);
      ctx.CountRetry();
    }
    sync_backoff_ = std::min(sync_backoff_ * 2,
                             block_interval_ * kMaxSyncBackoffIntervals);
    sync_timer_armed_ = true;
    // Same seeded jitter as the initial arm (see NoteRemoteHead).
    ctx.SetTimer(sync_backoff_ + ctx.rng().NextU64(sync_backoff_ / 4 + 1),
                 kSyncTimer);
    return;
  }
  if (timer_id != kSlotTimer) return;
  TryProduce(ctx);
  MaybeSubmitEvidence(ctx);
  // Head announcement every slot: lets peers that missed a block (lossy
  // links) discover the gap and pull it via the sync protocol, and carries
  // the head hash so same-height divergence (a fork from a proposer_grace
  // takeover) is detected and resolved.
  Writer w;
  w.PutU8(kMsgHeadAnnounce);
  w.PutU64(chain_->Height());
  w.PutBytes(chain_->LastBlockHash());
  Broadcast(ctx, w.Take());
  ctx.SetTimer(block_interval_, kSlotTimer);
}

void ValidatorNode::ApplyOrBuffer(dml::NodeContext& ctx, size_t from,
                                  chain::Block block) {
  const uint64_t height = chain_->Height();
  if (block.header.number < height) return;  // stale duplicate
  if (block.header.number > height) {
    // A gap: buffer the block (within the window) and pull what we miss.
    const uint64_t number = block.header.number;
    if (future_blocks_.count(number) == 0) {
      if (future_blocks_.size() >= kMaxFutureBlocks) {
        // Full: keep the window closest to our height — those blocks are
        // consumed first; the far end is cheap for sync to re-fetch.
        auto last = std::prev(future_blocks_.end());
        if (number >= last->first) {
          ++future_blocks_evicted_;
          PDS2_M_COUNT("p2p.future_blocks_evicted", 1);
          NoteRemoteHead(ctx, from, number);
          return;
        }
        future_blocks_.erase(last);
        ++future_blocks_evicted_;
        PDS2_M_COUNT("p2p.future_blocks_evicted", 1);
      }
      future_blocks_.emplace(number, std::move(block));
    }
    NoteRemoteHead(ctx, from, number);
    return;
  }
  Status status = chain_->ApplyExternalBlock(block);
  if (!status.ok()) {
    // Same height but unappliable: either garbage (corrupted in flight) or
    // a legitimate fork — a proposer_grace fallback built on a head we did
    // not keep. A full snapshot lets the fork-choice rule decide; garbage
    // snapshots simply fail validation and change nothing.
    PDS2_M_COUNT("p2p.blocks_rejected", 1);
    PDS2_LOG(kWarn) << "validator " << index_ << " rejected block "
                    << block.header.number << ": " << status.ToString();
    RequestChain(ctx, from);
    return;
  }
  DrainBuffer();
}

void ValidatorNode::DrainBuffer() {
  for (;;) {
    auto it = future_blocks_.find(chain_->Height());
    if (it == future_blocks_.end()) break;
    Status status = chain_->ApplyExternalBlock(it->second);
    future_blocks_.erase(it);
    if (!status.ok()) break;
  }
  // Drop anything at or below the new height.
  while (!future_blocks_.empty() &&
         future_blocks_.begin()->first < chain_->Height()) {
    future_blocks_.erase(future_blocks_.begin());
  }
}

void ValidatorNode::MaybeAdoptChain(const std::vector<chain::Block>& blocks) {
  PDS2_TRACE_SPAN("p2p.maybe_adopt_chain");
  const uint64_t ours = chain_->Height();
  // Fast path: the snapshot extends the chain we already have — apply the
  // suffix in place, keeping mempool and receipts.
  if (blocks.size() > ours &&
      (ours == 0 || blocks[ours - 1].header.Id() == chain_->LastBlockHash())) {
    for (uint64_t h = ours; h < blocks.size(); ++h) {
      if (!chain_->ApplyExternalBlock(blocks[h]).ok()) return;
    }
    DrainBuffer();
    return;
  }
  // Divergent history. Deterministic fork choice: adopt iff strictly
  // longer, or equally long with a lexicographically smaller head hash —
  // a total order every replica applies identically, so both sides of a
  // fork settle on the same branch.
  if (blocks.size() < ours) return;
  if (blocks.size() == ours) {
    if (ours == 0) return;
    if (!(blocks.back().header.Id() < chain_->LastBlockHash())) return;
  }
  auto candidate = std::make_unique<chain::Blockchain>(
      validator_keys_, chain::ContractRegistry::CreateDefault(),
      chain_config_);
  for (const GenesisAlloc& alloc : genesis_) {
    (void)candidate->CreditGenesis(alloc.address, alloc.amount);
  }
  for (const chain::Block& block : blocks) {
    if (!candidate->ApplyExternalBlock(block).ok()) return;  // invalid snapshot
  }
  // Local mempool content is not carried over: pending txs were gossiped
  // to every replica when submitted, so the network still holds them.
  chain_ = std::move(candidate);
  future_blocks_.clear();
  if (store_ != nullptr) {
    // The on-disk log describes the orphaned branch; atomically rewrite it
    // with the adopted one, then resume persisting commits on it.
    Status status = store_->Rewrite(*chain_);
    if (!status.ok()) {
      PDS2_LOG(kWarn) << "validator " << index_
                      << " failed to persist adopted fork: "
                      << status.ToString();
    }
    chain_->SetCommitListener(store_.get());
  }
  ++forks_resolved_;
  PDS2_M_COUNT("p2p.forks_resolved", 1);
  PDS2_LOG(kInfo) << "validator " << index_ << " adopted fork at height "
                  << chain_->Height();
}

void ValidatorNode::OnMessage(dml::NodeContext& ctx, size_t from,
                              const Bytes& payload) {
  Reader r(payload);
  auto kind = r.GetU8();
  if (!kind.ok()) return;

  switch (*kind) {
    case kMsgTx: {
      if (quarantined_peers_.count(from) > 0) {
        // Down-scored: a double-signer's gossip is not worth validating.
        // Blocks and sync traffic are still processed — quarantine never
        // gates consensus, only discretionary relaying.
        PDS2_M_COUNT("p2p.evidence.tx_dropped", 1);
        return;
      }
      auto tx_bytes = r.GetBytes();
      if (!tx_bytes.ok()) return;
      auto tx = chain::Transaction::Deserialize(*tx_bytes);
      if (!tx.ok()) return;
      const chain::Hash id = tx->Id();
      if (seen_txs_.count(id)) return;  // already gossiped
      if (!chain_->SubmitTransaction(*tx).ok()) return;
      seen_txs_[id] = true;
      Broadcast(ctx, payload);  // re-gossip once
      break;
    }
    case kMsgBlock: {
      auto block_bytes = r.GetBytes();
      if (!block_bytes.ok()) return;
      auto block = chain::Block::Deserialize(*block_bytes);
      if (!block.ok()) return;
      RecordHeader(ctx, block->header);
      ApplyOrBuffer(ctx, from, std::move(*block));
      break;
    }
    case kMsgSyncRequest: {
      auto from_height = r.GetU64();
      if (!from_height.ok()) return;
      // Send every block the requester is missing, individually (they
      // apply in order on arrival; the event queue preserves send order).
      const auto& blocks = chain_->blocks();
      for (uint64_t h = *from_height; h < blocks.size(); ++h) {
        ctx.Send(from, EncodeBlock(kMsgSyncResponse, blocks[h]));
      }
      break;
    }
    case kMsgHeadAnnounce: {
      auto peer_height = r.GetU64();
      if (!peer_height.ok()) return;
      auto peer_hash = r.GetBytes();
      if (!peer_hash.ok()) return;
      if (*peer_height > chain_->Height()) {
        NoteRemoteHead(ctx, from, *peer_height);
      } else if (*peer_height == chain_->Height() && *peer_height > 0 &&
                 *peer_hash != chain_->LastBlockHash()) {
        // Same height, different head: we are on one side of a fork.
        RequestChain(ctx, from);
      }
      break;
    }
    case kMsgSyncResponse: {
      auto block_bytes = r.GetBytes();
      if (!block_bytes.ok()) return;
      auto block = chain::Block::Deserialize(*block_bytes);
      if (!block.ok()) return;
      RecordHeader(ctx, block->header);
      ApplyOrBuffer(ctx, from, std::move(*block));
      break;
    }
    case kMsgChainRequest: {
      const auto& blocks = chain_->blocks();
      Writer w;
      w.PutU8(kMsgChainResponse);
      w.PutU64(blocks.size());
      for (const chain::Block& block : blocks) {
        w.PutBytes(block.Serialize());
      }
      ctx.Send(from, w.Take());
      break;
    }
    case kMsgAdvert: {
      if (quarantined_peers_.count(from) > 0) {
        // Like tx gossip, advert relaying is discretionary: a
        // double-signer's adverts are dropped unvalidated.
        PDS2_M_COUNT("p2p.advert.quarantine_dropped", 1);
        return;
      }
      auto crc = r.GetU32();
      if (!crc.ok()) return;
      auto advert_bytes = r.GetBytes();
      if (!advert_bytes.ok()) return;
      if (common::Crc32c(*advert_bytes) != *crc) return;  // bit rot in flight
      Reader ar(*advert_bytes);
      auto advert = store::Advert::Deserialize(ar);
      if (!advert.ok() || !ar.AtEnd()) return;
      // Flood-with-dedup, the tx gossip pattern: Upsert returning false
      // means we already knew (or held newer), which breaks the loop.
      if (!discovery_.Upsert(*advert)) return;
      PDS2_M_COUNT("p2p.advert.relayed", 1);
      Broadcast(ctx, payload);
      break;
    }
    case kMsgChainResponse: {
      auto count = r.GetU64();
      if (!count.ok() || *count > kMaxSnapshotBlocks) return;
      std::vector<chain::Block> blocks;
      blocks.reserve(*count);
      for (uint64_t i = 0; i < *count; ++i) {
        auto block_bytes = r.GetBytes();
        if (!block_bytes.ok()) return;
        auto block = chain::Block::Deserialize(*block_bytes);
        if (!block.ok()) return;
        blocks.push_back(std::move(*block));
      }
      MaybeAdoptChain(blocks);
      break;
    }
    default:
      break;
  }
}

std::unique_ptr<dml::NetSim> MakeValidatorNetwork(
    size_t n, const std::vector<GenesisAlloc>& genesis,
    common::SimTime block_interval, const dml::NetConfig& net_config,
    uint64_t seed, std::vector<ValidatorNode*>* nodes,
    chain::ChainConfig chain_config, const std::string& store_root,
    storage::ChainStoreOptions store_options) {
  std::vector<crypto::SigningKey> keys;
  std::vector<Bytes> public_keys;
  for (size_t i = 0; i < n; ++i) {
    keys.push_back(crypto::SigningKey::FromSeed(common::ToBytes(
        "pds2.p2p.validator." + std::to_string(seed) + "." +
        std::to_string(i))));
    public_keys.push_back(keys.back().PublicKey());
  }

  auto sim = std::make_unique<dml::NetSim>(net_config, seed);
  sim->Reserve(n);
  std::vector<size_t> ids;
  std::vector<ValidatorNode*> raw_nodes;
  for (size_t i = 0; i < n; ++i) {
    const std::string store_dir =
        store_root.empty() ? ""
                           : store_root + "/validator-" + std::to_string(i);
    auto node = std::make_unique<ValidatorNode>(
        i, public_keys, std::move(keys[i]), genesis, block_interval,
        chain_config, store_dir, store_options);
    raw_nodes.push_back(node.get());
    ids.push_back(sim->AddNode(std::move(node)));
    sim->SetNodeName(ids.back(), "validator/" + std::to_string(i));
  }
  for (ValidatorNode* node : raw_nodes) node->SetPeers(ids);
  if (nodes != nullptr) *nodes = raw_nodes;
  return sim;
}

void ApplyByzantineSpecs(const common::FaultPlan& plan,
                         const std::vector<ValidatorNode*>& nodes) {
  for (const common::ByzantineValidatorSpec& spec :
       plan.byzantine_validators) {
    if (spec.node < nodes.size()) {
      nodes[spec.node]->SetByzantine(spec.behavior);
    }
  }
}

}  // namespace pds2::p2p
