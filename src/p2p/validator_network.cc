#include "p2p/validator_network.h"

#include "common/logging.h"
#include "common/serial.h"

namespace pds2::p2p {

using common::Bytes;
using common::Reader;
using common::Status;
using common::Writer;

namespace {

constexpr uint64_t kSlotTimer = 1;

// Wire message kinds.
constexpr uint8_t kMsgTx = 1;
constexpr uint8_t kMsgBlock = 2;
constexpr uint8_t kMsgSyncRequest = 3;
constexpr uint8_t kMsgSyncResponse = 4;
constexpr uint8_t kMsgHeadAnnounce = 5;

Bytes EncodeTx(const chain::Transaction& tx) {
  Writer w;
  w.PutU8(kMsgTx);
  w.PutBytes(tx.Serialize());
  return w.Take();
}

Bytes EncodeBlock(uint8_t kind, const chain::Block& block) {
  Writer w;
  w.PutU8(kind);
  w.PutBytes(block.Serialize());
  return w.Take();
}

}  // namespace

ValidatorNode::ValidatorNode(size_t index,
                             std::vector<Bytes> validator_keys,
                             crypto::SigningKey key,
                             const std::vector<GenesisAlloc>& genesis,
                             common::SimTime block_interval)
    : index_(index), key_(std::move(key)), block_interval_(block_interval) {
  chain_ = std::make_unique<chain::Blockchain>(
      std::move(validator_keys), chain::ContractRegistry::CreateDefault());
  for (const GenesisAlloc& alloc : genesis) {
    (void)chain_->CreditGenesis(alloc.address, alloc.amount);
  }
}

void ValidatorNode::OnStart(dml::NodeContext& ctx) {
  // Stagger slot timers slightly by index so a round-robin slot's proposer
  // usually fires first.
  ctx.SetTimer(block_interval_ + index_ * 199, kSlotTimer);
}

void ValidatorNode::Broadcast(dml::NodeContext& ctx, const Bytes& payload) {
  for (size_t peer : peers_) {
    if (peer != ctx.self()) ctx.Send(peer, payload);
  }
}

Status ValidatorNode::SubmitTransaction(const chain::Transaction& tx,
                                        dml::NodeContext& ctx) {
  PDS2_RETURN_IF_ERROR(chain_->SubmitTransaction(tx));
  seen_txs_[tx.Id()] = true;
  Broadcast(ctx, EncodeTx(tx));
  return Status::Ok();
}

void ValidatorNode::TryProduce(dml::NodeContext& ctx) {
  if (chain_->NextProposer() != key_.PublicKey()) return;
  auto block = chain_->ProduceBlock(key_, ctx.Now());
  if (!block.ok()) return;  // e.g. non-monotonic timestamp: wait a slot
  ++blocks_produced_;
  Broadcast(ctx, EncodeBlock(kMsgBlock, *block));
  DrainBuffer();
}

void ValidatorNode::OnTimer(dml::NodeContext& ctx, uint64_t timer_id) {
  if (timer_id != kSlotTimer) return;
  TryProduce(ctx);
  // Head announcement every slot: lets peers that missed a block (lossy
  // links) discover the gap and pull it via the sync protocol, so the
  // round-robin rotation can never deadlock on a single lost broadcast.
  Writer w;
  w.PutU8(kMsgHeadAnnounce);
  w.PutU64(chain_->Height());
  Broadcast(ctx, w.Take());
  ctx.SetTimer(block_interval_, kSlotTimer);
}

void ValidatorNode::ApplyOrBuffer(dml::NodeContext& ctx, size_t from,
                                  chain::Block block) {
  const uint64_t height = chain_->Height();
  if (block.header.number < height) return;  // stale duplicate
  if (block.header.number > height) {
    // A gap: buffer the block and ask the sender for what we miss.
    future_blocks_.emplace(block.header.number, std::move(block));
    Writer w;
    w.PutU8(kMsgSyncRequest);
    w.PutU64(height);
    ctx.Send(from, w.Take());
    ++sync_requests_sent_;
    return;
  }
  Status status = chain_->ApplyExternalBlock(block);
  if (!status.ok()) {
    PDS2_LOG(kWarn) << "validator " << index_ << " rejected block "
                    << block.header.number << ": " << status.ToString();
    return;
  }
  DrainBuffer();
}

void ValidatorNode::DrainBuffer() {
  for (;;) {
    auto it = future_blocks_.find(chain_->Height());
    if (it == future_blocks_.end()) break;
    Status status = chain_->ApplyExternalBlock(it->second);
    future_blocks_.erase(it);
    if (!status.ok()) break;
  }
  // Drop anything at or below the new height.
  while (!future_blocks_.empty() &&
         future_blocks_.begin()->first < chain_->Height()) {
    future_blocks_.erase(future_blocks_.begin());
  }
}

void ValidatorNode::OnMessage(dml::NodeContext& ctx, size_t from,
                              const Bytes& payload) {
  Reader r(payload);
  auto kind = r.GetU8();
  if (!kind.ok()) return;

  switch (*kind) {
    case kMsgTx: {
      auto tx_bytes = r.GetBytes();
      if (!tx_bytes.ok()) return;
      auto tx = chain::Transaction::Deserialize(*tx_bytes);
      if (!tx.ok()) return;
      const chain::Hash id = tx->Id();
      if (seen_txs_.count(id)) return;  // already gossiped
      if (!chain_->SubmitTransaction(*tx).ok()) return;
      seen_txs_[id] = true;
      Broadcast(ctx, payload);  // re-gossip once
      break;
    }
    case kMsgBlock: {
      auto block_bytes = r.GetBytes();
      if (!block_bytes.ok()) return;
      auto block = chain::Block::Deserialize(*block_bytes);
      if (!block.ok()) return;
      ApplyOrBuffer(ctx, from, std::move(*block));
      break;
    }
    case kMsgSyncRequest: {
      auto from_height = r.GetU64();
      if (!from_height.ok()) return;
      // Send every block the requester is missing, individually (they
      // apply in order on arrival; the event queue preserves send order).
      const auto& blocks = chain_->blocks();
      for (uint64_t h = *from_height; h < blocks.size(); ++h) {
        ctx.Send(from, EncodeBlock(kMsgSyncResponse, blocks[h]));
      }
      break;
    }
    case kMsgHeadAnnounce: {
      auto peer_height = r.GetU64();
      if (!peer_height.ok()) return;
      if (*peer_height > chain_->Height()) {
        Writer w;
        w.PutU8(kMsgSyncRequest);
        w.PutU64(chain_->Height());
        ctx.Send(from, w.Take());
        ++sync_requests_sent_;
      }
      break;
    }
    case kMsgSyncResponse: {
      auto block_bytes = r.GetBytes();
      if (!block_bytes.ok()) return;
      auto block = chain::Block::Deserialize(*block_bytes);
      if (!block.ok()) return;
      ApplyOrBuffer(ctx, from, std::move(*block));
      break;
    }
    default:
      break;
  }
}

std::unique_ptr<dml::NetSim> MakeValidatorNetwork(
    size_t n, const std::vector<GenesisAlloc>& genesis,
    common::SimTime block_interval, const dml::NetConfig& net_config,
    uint64_t seed, std::vector<ValidatorNode*>* nodes) {
  std::vector<crypto::SigningKey> keys;
  std::vector<Bytes> public_keys;
  for (size_t i = 0; i < n; ++i) {
    keys.push_back(crypto::SigningKey::FromSeed(common::ToBytes(
        "pds2.p2p.validator." + std::to_string(seed) + "." +
        std::to_string(i))));
    public_keys.push_back(keys.back().PublicKey());
  }

  auto sim = std::make_unique<dml::NetSim>(net_config, seed);
  std::vector<size_t> ids;
  std::vector<ValidatorNode*> raw_nodes;
  for (size_t i = 0; i < n; ++i) {
    auto node = std::make_unique<ValidatorNode>(
        i, public_keys, std::move(keys[i]), genesis, block_interval);
    raw_nodes.push_back(node.get());
    ids.push_back(sim->AddNode(std::move(node)));
  }
  for (ValidatorNode* node : raw_nodes) node->SetPeers(ids);
  if (nodes != nullptr) *nodes = raw_nodes;
  return sim;
}

}  // namespace pds2::p2p
