#ifndef PDS2_DML_EXPERIMENT_H_
#define PDS2_DML_EXPERIMENT_H_

#include <vector>

#include "dml/fedavg.h"
#include "dml/gossip.h"
#include "dml/netsim.h"

namespace pds2::dml {

/// One configured decentralized-learning run: data generation and
/// partitioning, the network, the protocol, churn and the evaluation
/// schedule. Shared by the unit tests and the E2/E3 benchmark harnesses so
/// both protocols are compared under identical conditions.
struct DmlExperimentConfig {
  size_t num_nodes = 32;
  size_t features = 8;
  size_t samples_per_node = 50;
  double separation = 3.0;   // class separability of the synthetic task
  bool non_iid = false;      // label-skewed partitions when true
  size_t test_samples = 1000;

  NetConfig net;
  common::SimTime duration = 30 * common::kMicrosPerSecond;
  common::SimTime eval_interval = common::kMicrosPerSecond;

  GossipConfig gossip;
  FedAvgConfig fedavg;

  /// Fraction of (non-server) nodes offline at any time; membership is
  /// reshuffled at every evaluation tick.
  double churn_offline_fraction = 0.0;

  uint64_t seed = 1;
};

/// One evaluation sample along a run.
struct DmlTimelinePoint {
  common::SimTime time = 0;
  double accuracy = 0.0;          // mean node accuracy (gossip) / server's
  uint64_t bytes_sent = 0;        // network-wide cumulative traffic
  uint64_t max_node_rx_bytes = 0; // hottest receiver (bottleneck indicator)
};

/// Full run output.
struct DmlResult {
  std::vector<DmlTimelinePoint> timeline;
  NetStats final_stats;
  double final_accuracy = 0.0;
};

/// Runs gossip learning under `config` (logistic regression task).
DmlResult RunGossip(const DmlExperimentConfig& config);

/// Runs federated averaging under the same conditions; node 0 is the
/// central server and holds no data.
DmlResult RunFedAvg(const DmlExperimentConfig& config);

}  // namespace pds2::dml

#endif  // PDS2_DML_EXPERIMENT_H_
