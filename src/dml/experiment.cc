#include "dml/experiment.h"

#include <algorithm>
#include <numeric>

#include "ml/metrics.h"

namespace pds2::dml {

using common::Rng;
using common::SimTime;

namespace {

struct TaskData {
  std::vector<ml::Dataset> partitions;
  ml::Dataset test;
};

TaskData MakeTask(const DmlExperimentConfig& config, size_t num_holders,
                  Rng& rng) {
  TaskData task;
  ml::Dataset all = ml::MakeTwoGaussians(
      config.samples_per_node * num_holders + config.test_samples,
      config.features, config.separation, rng);
  auto [train, test] = ml::TrainTestSplit(
      all, static_cast<double>(config.test_samples) /
               static_cast<double>(all.Size()),
      rng);
  task.test = std::move(test);
  task.partitions = config.non_iid
                        ? ml::PartitionByLabel(train, num_holders, 2, rng)
                        : ml::PartitionIid(train, num_holders, rng);
  return task;
}

// Reshuffles which nodes are offline. `first_node` skips the server.
void ApplyChurn(NetSim& sim, size_t first_node, double offline_fraction,
                Rng& rng) {
  if (offline_fraction <= 0.0) return;
  std::vector<size_t> ids;
  for (size_t i = first_node; i < sim.NumNodes(); ++i) ids.push_back(i);
  rng.Shuffle(ids);
  const size_t offline =
      static_cast<size_t>(offline_fraction * static_cast<double>(ids.size()));
  for (size_t k = 0; k < ids.size(); ++k) {
    sim.SetOnline(ids[k], k >= offline);
  }
}

}  // namespace

DmlResult RunGossip(const DmlExperimentConfig& config) {
  Rng rng(config.seed);
  TaskData task = MakeTask(config, config.num_nodes, rng);

  NetSim sim(config.net, config.seed ^ 0x9e3779b9);
  sim.Reserve(config.num_nodes);
  std::vector<GossipNode*> nodes;
  for (size_t i = 0; i < config.num_nodes; ++i) {
    auto node = std::make_unique<GossipNode>(
        std::make_unique<ml::LogisticRegressionModel>(config.features),
        std::move(task.partitions[i]), config.gossip);
    nodes.push_back(node.get());
    sim.AddNode(std::move(node));
  }
  sim.Start();

  DmlResult result;
  for (SimTime t = config.eval_interval; t <= config.duration;
       t += config.eval_interval) {
    ApplyChurn(sim, 0, config.churn_offline_fraction, rng);
    sim.RunUntil(t);

    double acc_sum = 0.0;
    for (GossipNode* node : nodes) {
      acc_sum += ml::Accuracy(node->model(), task.test);
    }
    DmlTimelinePoint point;
    point.time = t;
    point.accuracy = acc_sum / static_cast<double>(nodes.size());
    const NetStats stats = sim.stats();
    point.bytes_sent = stats.bytes_sent;
    point.max_node_rx_bytes =
        *std::max_element(stats.bytes_received_per_node.begin(),
                          stats.bytes_received_per_node.end());
    result.timeline.push_back(point);
  }
  result.final_stats = sim.stats();
  result.final_accuracy = result.timeline.empty()
                              ? 0.0
                              : result.timeline.back().accuracy;
  return result;
}

DmlResult RunFedAvg(const DmlExperimentConfig& config) {
  Rng rng(config.seed);
  // Same number of data holders as the gossip run; the server is an extra
  // data-less node 0.
  TaskData task = MakeTask(config, config.num_nodes, rng);

  NetSim sim(config.net, config.seed ^ 0x9e3779b9);
  sim.Reserve(config.num_nodes + 1);  // clients + the server node
  std::vector<size_t> client_ids(config.num_nodes);
  std::iota(client_ids.begin(), client_ids.end(), 1);

  auto server = std::make_unique<FedServerNode>(
      std::make_unique<ml::LogisticRegressionModel>(config.features),
      config.fedavg, client_ids);
  FedServerNode* server_ptr = server.get();
  sim.AddNode(std::move(server));
  for (size_t i = 0; i < config.num_nodes; ++i) {
    sim.AddNode(std::make_unique<FedClientNode>(
        std::make_unique<ml::LogisticRegressionModel>(config.features),
        std::move(task.partitions[i]), config.fedavg.local_sgd));
  }
  sim.Start();

  DmlResult result;
  for (SimTime t = config.eval_interval; t <= config.duration;
       t += config.eval_interval) {
    ApplyChurn(sim, 1, config.churn_offline_fraction, rng);
    sim.RunUntil(t);

    DmlTimelinePoint point;
    point.time = t;
    point.accuracy = ml::Accuracy(server_ptr->model(), task.test);
    const NetStats stats = sim.stats();
    point.bytes_sent = stats.bytes_sent;
    point.max_node_rx_bytes =
        *std::max_element(stats.bytes_received_per_node.begin(),
                          stats.bytes_received_per_node.end());
    result.timeline.push_back(point);
  }
  result.final_stats = sim.stats();
  result.final_accuracy = result.timeline.empty()
                              ? 0.0
                              : result.timeline.back().accuracy;
  return result;
}

}  // namespace pds2::dml
