#include "dml/fedavg.h"

#include <algorithm>

#include "common/serial.h"
#include "obs/metrics.h"

namespace pds2::dml {

using common::Bytes;
using common::Reader;
using common::Writer;

namespace {
constexpr uint64_t kRoundTimeoutTimer = 1;

// Message tags.
constexpr uint8_t kMsgTrainRequest = 1;
constexpr uint8_t kMsgTrainResponse = 2;
}  // namespace

FedServerNode::FedServerNode(std::unique_ptr<ml::Model> model,
                             FedAvgConfig config,
                             std::vector<size_t> client_ids)
    : model_(std::move(model)),
      config_(config),
      client_ids_(std::move(client_ids)) {}

void FedServerNode::OnStart(NodeContext& ctx) { BeginRound(ctx); }

void FedServerNode::BeginRound(NodeContext& ctx) {
  ++round_;
  round_params_.clear();
  round_weights_.clear();

  // Sample C * K online clients uniformly.
  std::vector<size_t> online;
  for (size_t id : client_ids_) {
    if (ctx.IsOnline(id)) online.push_back(id);
  }
  const size_t target = std::max<size_t>(
      1, static_cast<size_t>(config_.client_fraction *
                             static_cast<double>(online.size())));
  ctx.rng().Shuffle(online);
  awaiting_ = std::min(target, online.size());
  if (awaiting_ == 0) {
    // Nobody reachable; retry after the timeout.
    ctx.SetTimer(config_.round_timeout, kRoundTimeoutTimer + round_);
    return;
  }

  Writer w;
  w.PutU8(kMsgTrainRequest);
  w.PutU64(round_);
  w.PutDoubleVector(model_->GetParams());
  const Bytes request = w.Take();
  for (size_t i = 0; i < awaiting_; ++i) ctx.Send(online[i], request);
  ctx.SetTimer(config_.round_timeout, kRoundTimeoutTimer + round_);
}

void FedServerNode::FinishRound(NodeContext& ctx) {
  if (!round_params_.empty()) {
    model_->SetParams(ml::WeightedAverage(round_params_, round_weights_));
    ++rounds_completed_;
    PDS2_M_COUNT("dml.fedavg.rounds_completed", 1);
  }
  BeginRound(ctx);
}

void FedServerNode::OnMessage(NodeContext& ctx, size_t /*from*/,
                              const Bytes& payload) {
  Reader r(payload);
  auto tag = r.GetU8();
  if (!tag.ok() || *tag != kMsgTrainResponse) return;
  auto round = r.GetU64();
  auto params = r.GetDoubleVector();
  auto samples = r.GetU64();
  if (!round.ok() || !params.ok() || !samples.ok()) return;
  if (*round != round_) return;  // stale response from a previous round
  if (params->size() != model_->NumParams()) return;

  round_params_.push_back(std::move(*params));
  round_weights_.push_back(static_cast<double>(std::max<uint64_t>(1, *samples)));
  PDS2_M_COUNT("dml.fedavg.responses", 1);
  if (round_params_.size() >= awaiting_) FinishRound(ctx);
}

void FedServerNode::OnTimer(NodeContext& ctx, uint64_t timer_id) {
  // Only the current round's timeout matters; older ones are stale.
  if (timer_id != kRoundTimeoutTimer + round_) return;
  FinishRound(ctx);
}

FedClientNode::FedClientNode(std::unique_ptr<ml::Model> model,
                             ml::Dataset local_data, ml::SgdConfig local_sgd)
    : model_(std::move(model)),
      data_(std::move(local_data)),
      local_sgd_(local_sgd) {}

void FedClientNode::OnMessage(NodeContext& ctx, size_t from,
                              const Bytes& payload) {
  Reader r(payload);
  auto tag = r.GetU8();
  if (!tag.ok() || *tag != kMsgTrainRequest) return;
  auto round = r.GetU64();
  auto params = r.GetDoubleVector();
  if (!round.ok() || !params.ok()) return;
  if (params->size() != model_->NumParams()) return;

  model_->SetParams(*params);
  ml::Train(*model_, data_, local_sgd_, ctx.rng());

  Writer w;
  w.PutU8(kMsgTrainResponse);
  w.PutU64(*round);
  w.PutDoubleVector(model_->GetParams());
  w.PutU64(data_.Size());
  ctx.Send(from, w.Take());
}

}  // namespace pds2::dml
