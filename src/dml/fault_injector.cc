#include "dml/fault_injector.h"

#include <cassert>
#include <string>
#include <utility>

#include "obs/flight_recorder.h"

namespace pds2::dml {

FaultInjector::FaultInjector(common::FaultPlan plan)
    : plan_(std::move(plan)) {}

FaultInjector* FaultInjector::Install(NetSim& sim, common::FaultPlan plan) {
  auto injector =
      std::unique_ptr<FaultInjector>(new FaultInjector(std::move(plan)));
  FaultInjector* raw = injector.get();
  raw->sim_ = &sim;
  sim.AddNode(std::move(injector));
  sim.SetLinkFaultHook(raw);
  return raw;
}

void FaultInjector::OnStart(NodeContext& ctx) {
  // One timer per churn transition, identified by its index in the plan.
  // The injector itself never goes offline, so none of these are dropped.
  for (size_t i = 0; i < plan_.churn.size(); ++i) {
    ctx.SetTimer(plan_.churn[i].at, i);
  }
  // Leave the adversary roster in the black box: the Byzantine specs are
  // enacted by the protocol layer (p2p::ApplyByzantineSpecs, the
  // marketplace harnesses), not by this injector, so a chaos dump would
  // otherwise not show who was scripted to cheat.
  obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  if (recorder.enabled()) {
    for (const common::ByzantineValidatorSpec& spec :
         plan_.byzantine_validators) {
      recorder.Note("fault plan scripts byzantine behavior " +
                        std::to_string(static_cast<int>(spec.behavior)) +
                        " on validator " + std::to_string(spec.node),
                    /*has_sim=*/true, ctx.Now());
    }
    for (const common::ByzantineExecutorSpec& spec :
         plan_.byzantine_executors) {
      recorder.Note("fault plan scripts executor fault " +
                        std::to_string(static_cast<int>(spec.fault)) +
                        " on executor slot " + std::to_string(spec.executor),
                    /*has_sim=*/true, ctx.Now());
    }
  }
}

void FaultInjector::OnMessage(NodeContext& ctx, size_t from,
                              const common::Bytes& payload) {
  // Nothing addresses the injector; ignore stray traffic defensively.
  (void)ctx;
  (void)from;
  (void)payload;
}

void FaultInjector::OnTimer(NodeContext& ctx, uint64_t timer_id) {
  assert(timer_id < plan_.churn.size());
  const common::ChurnEvent& event = plan_.churn[timer_id];
  // Through the context, not sim_->SetOnline directly: inside a parallel
  // batch the transition must be deferred to the deterministic merge phase
  // (a direct call would mutate online_/epoch_ under concurrent readers).
  ctx.SetOnline(event.node, event.restart);
  if (!event.restart) {
    // A node just died: dump the black box so the chaos run leaves a
    // readable record of what that node (and the rest of the fleet) was
    // doing in its final moments.
    obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
    if (recorder.enabled()) {
      recorder.Note("fault injector crashed " + sim_->NodeName(event.node),
                    /*has_sim=*/true, sim_->Now());
      (void)recorder.DumpNow("node-crash-" + sim_->NodeName(event.node));
    }
  }
}

FaultInjector::Effect FaultInjector::OnLink(size_t from, size_t to,
                                            common::SimTime now) {
  const common::FaultPlan::LinkEffect effect = plan_.EffectAt(from, to, now);
  Effect out;
  out.blocked = effect.blocked;
  out.extra_drop = effect.extra_drop;
  out.latency_mult = effect.latency_mult;
  out.corrupt_rate = effect.corrupt_rate;
  return out;
}

}  // namespace pds2::dml
