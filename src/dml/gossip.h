#ifndef PDS2_DML_GOSSIP_H_
#define PDS2_DML_GOSSIP_H_

#include <memory>

#include "dml/netsim.h"
#include "ml/model.h"
#include "ml/sgd.h"

namespace pds2::dml {

/// How a node combines an incoming peer model with its own.
enum class GossipMergeRule {
  kAgeWeighted,   // weight by model age (Ormándi et al.) — default
  kPlainAverage,  // unweighted 50/50 average — ablation baseline
  kOverwrite,     // adopt the peer model wholesale — degenerate baseline
};

/// Gossip-learning parameters (Ormándi et al. [22]).
struct GossipConfig {
  common::SimTime push_interval = common::kMicrosPerSecond;  // gossip period
  size_t fanout = 1;            // peers contacted per round
  GossipMergeRule merge_rule = GossipMergeRule::kAgeWeighted;
  ml::SgdConfig local_sgd;      // local update applied after each merge
  ml::DpConfig dp;              // DP-SGD for every local update (§IV-D):
                                // models leave the node each round, so the
                                // noise bounds what a curious peer learns
};

/// One gossip-learning participant: periodically pushes (parameters, age,
/// sample count) to a uniformly random peer; on receipt, merges the peer
/// model with an age-weighted average and takes a local SGD pass on its own
/// data. Fully decentralized — there is no aggregator to bottleneck,
/// surveil, or bias the process (the §III-C argument for gossip).
class GossipNode : public Node {
 public:
  GossipNode(std::unique_ptr<ml::Model> model, ml::Dataset local_data,
             GossipConfig config);

  void OnStart(NodeContext& ctx) override;
  /// Rejoin after churn: the push-timer chain died with the crash, so the
  /// node re-desynchronizes and starts a fresh one (model state survives —
  /// churn costs rounds, not learned progress).
  void OnRestart(NodeContext& ctx) override { OnStart(ctx); }
  void OnMessage(NodeContext& ctx, size_t from,
                 const common::Bytes& payload) override;
  void OnTimer(NodeContext& ctx, uint64_t timer_id) override;

  /// Read-only access for evaluation harnesses. (In the full marketplace
  /// the model lives inside a TEE; here the DML layer is benchmarked in
  /// isolation.)
  const ml::Model& model() const { return *model_; }
  uint64_t age() const { return age_; }
  size_t local_samples() const { return data_.Size(); }

 private:
  void LocalUpdate(NodeContext& ctx);
  common::Bytes EncodeState() const;

  std::unique_ptr<ml::Model> model_;
  ml::Dataset data_;
  GossipConfig config_;
  uint64_t age_ = 0;  // number of merge+update steps this model absorbed
};

}  // namespace pds2::dml

#endif  // PDS2_DML_GOSSIP_H_
