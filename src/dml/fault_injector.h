#ifndef PDS2_DML_FAULT_INJECTOR_H_
#define PDS2_DML_FAULT_INJECTOR_H_

#include <memory>

#include "common/fault.h"
#include "dml/netsim.h"

namespace pds2::dml {

/// Drives a common::FaultPlan through a NetSim: an extra simulator node that
/// arms one timer per scheduled churn transition (and toggles SetOnline when
/// it fires), plus a LinkFaultHook that answers partition / degradation /
/// corruption queries from FaultPlan::EffectAt. Because the plan is pure
/// data and the injector draws no randomness of its own, replaying the same
/// (plan, sim seed) pair reproduces the same run bit for bit.
///
/// Works in sequential and parallel mode: churn goes through
/// NodeContext::SetOnline, which applies immediately in the sequential
/// loop and defers to the deterministic merge phase inside a parallel
/// batch, so timer callbacks never mutate shared simulator state from a
/// worker thread.
class FaultInjector : public Node, public LinkFaultHook {
 public:
  /// Adds the injector to `sim` (as the highest node index) and installs it
  /// as the link-fault hook. Call after adding every protocol node and
  /// before Start(). The returned pointer is owned by `sim` and stays valid
  /// for the simulation's lifetime.
  static FaultInjector* Install(NetSim& sim, common::FaultPlan plan);

  // Node: schedule every churn transition as a timer against this node.
  void OnStart(NodeContext& ctx) override;
  void OnMessage(NodeContext& ctx, size_t from,
                 const common::Bytes& payload) override;
  void OnTimer(NodeContext& ctx, uint64_t timer_id) override;

  // LinkFaultHook: the plan's aggregate effect on one directed link.
  Effect OnLink(size_t from, size_t to, common::SimTime now) override;

  const common::FaultPlan& plan() const { return plan_; }

 private:
  explicit FaultInjector(common::FaultPlan plan);

  common::FaultPlan plan_;
  NetSim* sim_ = nullptr;  // set by Install; needed for SetOnline
};

}  // namespace pds2::dml

#endif  // PDS2_DML_FAULT_INJECTOR_H_
