#include "dml/netsim.h"

#include <cassert>

namespace pds2::dml {

using common::Bytes;
using common::SimTime;

SimTime NodeContext::Now() const { return sim_.Now(); }
size_t NodeContext::NumNodes() const { return sim_.NumNodes(); }
bool NodeContext::IsOnline(size_t node) const { return sim_.IsOnline(node); }
void NodeContext::Send(size_t to, Bytes payload) {
  sim_.SendFrom(self_, to, std::move(payload));
}
void NodeContext::SetTimer(SimTime delay, uint64_t timer_id) {
  sim_.SetTimerFor(self_, delay, timer_id);
}
common::Rng& NodeContext::rng() { return sim_.rng(); }

NetSim::NetSim(NetConfig config, uint64_t seed)
    : config_(config), rng_(seed) {}

size_t NetSim::AddNode(std::unique_ptr<Node> node) {
  assert(!started_);
  nodes_.push_back(std::move(node));
  online_.push_back(true);
  stats_.bytes_received_per_node.push_back(0);
  return nodes_.size() - 1;
}

void NetSim::Start() {
  assert(!started_);
  started_ = true;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    NodeContext ctx(*this, i);
    nodes_[i]->OnStart(ctx);
  }
}

void NetSim::SendFrom(size_t from, size_t to, Bytes payload) {
  assert(to < nodes_.size());
  ++stats_.messages_sent;
  stats_.bytes_sent += payload.size();

  if (config_.drop_rate > 0.0 && rng_.NextBool(config_.drop_rate)) {
    ++stats_.messages_dropped;
    return;
  }

  SimTime latency = config_.base_latency;
  if (config_.latency_jitter > 0) {
    latency += rng_.NextU64(config_.latency_jitter);
  }
  if (config_.bandwidth_bytes_per_sec > 0) {
    latency += static_cast<SimTime>(
        static_cast<double>(payload.size()) /
        config_.bandwidth_bytes_per_sec * common::kMicrosPerSecond);
  }

  PdsEvent event;
  event.time = clock_.Now() + latency;
  event.seq = seq_++;
  event.kind = PdsEvent::Kind::kMessage;
  event.target = to;
  event.from = from;
  event.payload = std::move(payload);
  queue_.push(std::move(event));
}

void NetSim::SetTimerFor(size_t node, SimTime delay, uint64_t timer_id) {
  PdsEvent event;
  event.time = clock_.Now() + delay;
  event.seq = seq_++;
  event.kind = PdsEvent::Kind::kTimer;
  event.target = node;
  event.timer_id = timer_id;
  queue_.push(std::move(event));
}

void NetSim::SetOnline(size_t node, bool online) {
  assert(node < online_.size());
  const bool was_online = online_[node];
  online_[node] = online;
  // A node rejoining after churn restarts its protocol (its pending timers
  // were dropped while offline).
  if (started_ && online && !was_online) {
    NodeContext ctx(*this, node);
    nodes_[node]->OnStart(ctx);
  }
}

void NetSim::RunUntil(SimTime t) {
  assert(started_);
  while (!queue_.empty() && queue_.top().time <= t) {
    PdsEvent event = queue_.top();
    queue_.pop();
    clock_.AdvanceTo(event.time);
    if (!online_[event.target]) {
      if (event.kind == PdsEvent::Kind::kMessage) ++stats_.messages_dropped;
      continue;
    }
    NodeContext ctx(*this, event.target);
    if (event.kind == PdsEvent::Kind::kMessage) {
      ++stats_.messages_delivered;
      stats_.bytes_received_per_node[event.target] += event.payload.size();
      nodes_[event.target]->OnMessage(ctx, event.from, event.payload);
    } else {
      nodes_[event.target]->OnTimer(ctx, event.timer_id);
    }
  }
  clock_.AdvanceTo(t);
}

}  // namespace pds2::dml
