#include "dml/netsim.h"

#include <algorithm>
#include <cassert>

#include "common/thread_pool.h"
#include "obs/trace.h"

namespace pds2::dml {

using common::Bytes;
using common::SimTime;

SimTime NodeContext::Now() const { return sim_.Now(); }
size_t NodeContext::NumNodes() const { return sim_.NumNodes(); }
bool NodeContext::IsOnline(size_t node) const { return sim_.IsOnline(node); }
void NodeContext::Send(size_t to, Bytes payload) {
  if (outbox_ != nullptr) {
    outbox_->sends.push_back(
        {to, std::move(payload), obs::CurrentTraceContext()});
    return;
  }
  sim_.SendFrom(self_, to, std::move(payload), obs::CurrentTraceContext());
}
void NodeContext::SetTimer(SimTime delay, uint64_t timer_id) {
  if (outbox_ != nullptr) {
    outbox_->timers.push_back({delay, timer_id, obs::CurrentTraceContext()});
    return;
  }
  sim_.SetTimerFor(self_, delay, timer_id, obs::CurrentTraceContext());
}
common::Rng& NodeContext::rng() { return sim_.RngFor(self_); }
void NodeContext::CountRetry() {
  if (outbox_ != nullptr) {
    ++outbox_->retries;
    return;
  }
  sim_.CountRetryFor();
}

NetSim::NetSim(NetConfig config, uint64_t seed)
    : config_(config), rng_(seed) {}

void NetSim::EnableParallel(common::ThreadPool* pool, SimTime batch_window) {
  assert(!started_);
  assert(pool != nullptr);
  pool_ = pool;
  batch_window_ = batch_window;
}

common::Rng& NetSim::RngFor(size_t node) {
  if (pool_ == nullptr) return rng_;
  assert(node < node_rngs_.size());
  return node_rngs_[node];
}

size_t NetSim::AddNode(std::unique_ptr<Node> node) {
  assert(!started_);
  nodes_.push_back(std::move(node));
  node_names_.push_back("node/" + std::to_string(nodes_.size() - 1));
  online_.push_back(true);
  epoch_.push_back(0);
  bytes_received_per_node_.push_back(0);
  return nodes_.size() - 1;
}

void NetSim::SetNodeName(size_t node, std::string name) {
  assert(node < node_names_.size());
  node_names_[node] = std::move(name);
}

NetStats NetSim::stats() const {
  NetStats stats;
  stats.messages_sent = live_stats_.messages_sent.Value();
  stats.messages_delivered = live_stats_.messages_delivered.Value();
  stats.messages_dropped = live_stats_.messages_dropped.Value();
  stats.bytes_sent = live_stats_.bytes_sent.Value();
  stats.partition_drops = live_stats_.partition_drops.Value();
  stats.messages_corrupted = live_stats_.messages_corrupted.Value();
  stats.retries = live_stats_.retries.Value();
  stats.timers_dropped_offline = live_stats_.timers_dropped_offline.Value();
  stats.bytes_received_per_node = bytes_received_per_node_;
  return stats;
}

void NetSim::CountRetryFor() {
  live_stats_.retries.Add(1);
  PDS2_M_COUNT("dml.net.retries", 1);
}

void NetSim::Start() {
  assert(!started_);
  started_ = true;
  if (pool_ != nullptr) {
    // Per-node streams forked in index order: every node's randomness is a
    // pure function of (seed, node index), independent of scheduling.
    node_rngs_.reserve(nodes_.size());
    for (size_t i = 0; i < nodes_.size(); ++i) node_rngs_.push_back(rng_.Fork());
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    NodeContext ctx(*this, i);
    nodes_[i]->OnStart(ctx);
  }
}

void NetSim::SendFrom(size_t from, size_t to, Bytes payload,
                      obs::TraceContext trace) {
  assert(to < nodes_.size());
  live_stats_.messages_sent.Add(1);
  live_stats_.bytes_sent.Add(payload.size());
  PDS2_M_COUNT("dml.net.messages_sent", 1);
  PDS2_M_COUNT("dml.net.bytes_sent", payload.size());

  // The installed fault model is consulted first: a partition blocks the
  // link outright; link faults stack extra loss / latency / corruption on
  // top of the homogeneous NetConfig link. All RNG draws below are gated on
  // their probability being positive so that runs without faults consume
  // the exact same stream as before the fault layer existed.
  LinkFaultHook::Effect effect;
  if (fault_hook_ != nullptr) {
    effect = fault_hook_->OnLink(from, to, clock_.Now());
  }
  if (effect.blocked) {
    live_stats_.partition_drops.Add(1);
    live_stats_.messages_dropped.Add(1);
    PDS2_M_COUNT("dml.net.partition_drops", 1);
    PDS2_M_COUNT("dml.net.messages_dropped", 1);
    return;
  }
  if (config_.drop_rate > 0.0 && rng_.NextBool(config_.drop_rate)) {
    live_stats_.messages_dropped.Add(1);
    PDS2_M_COUNT("dml.net.messages_dropped", 1);
    return;
  }
  if (effect.extra_drop > 0.0 && rng_.NextBool(effect.extra_drop)) {
    live_stats_.messages_dropped.Add(1);
    PDS2_M_COUNT("dml.net.messages_dropped", 1);
    return;
  }

  SimTime latency = config_.base_latency;
  if (config_.latency_jitter > 0) {
    latency += rng_.NextU64(config_.latency_jitter);
  }
  if (config_.bandwidth_bytes_per_sec > 0) {
    latency += static_cast<SimTime>(
        static_cast<double>(payload.size()) /
        config_.bandwidth_bytes_per_sec * common::kMicrosPerSecond);
  }
  if (effect.latency_mult != 1.0) {
    latency = static_cast<SimTime>(static_cast<double>(latency) *
                                   effect.latency_mult);
  }

  if (effect.corrupt_rate > 0.0 && !payload.empty() &&
      rng_.NextBool(effect.corrupt_rate)) {
    payload[rng_.NextU64(payload.size())] ^=
        static_cast<uint8_t>(1 + rng_.NextU64(255));
    live_stats_.messages_corrupted.Add(1);
    PDS2_M_COUNT("dml.net.messages_corrupted", 1);
  }

  PdsEvent event;
  event.time = clock_.Now() + latency;
  event.seq = seq_++;
  event.kind = PdsEvent::Kind::kMessage;
  event.target = to;
  event.from = from;
  event.payload = std::move(payload);
  event.target_epoch = epoch_[to];
  event.trace = trace;
  queue_.push(std::move(event));
}

void NetSim::SetTimerFor(size_t node, SimTime delay, uint64_t timer_id,
                         obs::TraceContext trace) {
  PdsEvent event;
  event.time = clock_.Now() + delay;
  event.seq = seq_++;
  event.kind = PdsEvent::Kind::kTimer;
  event.target = node;
  event.timer_id = timer_id;
  event.target_epoch = epoch_[node];
  event.trace = trace;
  queue_.push(std::move(event));
}

void NetSim::SetOnline(size_t node, bool online) {
  assert(node < online_.size());
  const bool was_online = online_[node];
  online_[node] = online;
  if (!online && was_online) {
    // Crash: start a new life. Everything scheduled against the old life
    // (timers, in-flight messages) is dropped at fire time via AdmitEvent.
    ++epoch_[node];
  }
  if (started_ && online && !was_online) {
    NodeContext ctx(*this, node);
    nodes_[node]->OnRestart(ctx);
  }
}

bool NetSim::AdmitEvent(const PdsEvent& event) {
  const bool stale = event.target_epoch != epoch_[event.target];
  if (online_[event.target] && !stale) return true;
  if (event.kind == PdsEvent::Kind::kMessage) {
    live_stats_.messages_dropped.Add(1);
    PDS2_M_COUNT("dml.net.messages_dropped", 1);
  } else {
    live_stats_.timers_dropped_offline.Add(1);
    PDS2_M_COUNT("dml.net.timers_dropped_offline", 1);
  }
  return false;
}

void NetSim::RunUntil(SimTime t) {
  assert(started_);
  PDS2_TRACE_SPAN_SIM("dml.net.run_until", &clock_);
  if (pool_ != nullptr) {
    RunUntilParallel(t);
    return;
  }
  while (!queue_.empty() && queue_.top().time <= t) {
    PdsEvent event = queue_.top();
    queue_.pop();
    clock_.AdvanceTo(event.time);
    if (!AdmitEvent(event)) continue;
    NodeContext ctx(*this, event.target);
    // Delivery re-establishes the sender's causal context: the handler
    // span parents under the span that sent the message (or armed the
    // timer), and is labeled with the receiving node's identity. All
    // three scopes are single-branch no-ops while tracing is disabled.
    obs::TraceContextScope trace_scope(event.trace);
    obs::NodeScope node_scope("", node_names_[event.target]);
    if (event.kind == PdsEvent::Kind::kMessage) {
      live_stats_.messages_delivered.Add(1);
      PDS2_M_COUNT("dml.net.messages_delivered", 1);
      if (event.target >= bytes_received_per_node_.size()) {
        bytes_received_per_node_.resize(event.target + 1, 0);
      }
      bytes_received_per_node_[event.target] += event.payload.size();
      obs::ScopedSpan span("dml.net.deliver", &clock_);
      nodes_[event.target]->OnMessage(ctx, event.from, event.payload);
    } else {
      obs::ScopedSpan span("dml.net.timer", &clock_);
      nodes_[event.target]->OnTimer(ctx, event.timer_id);
    }
  }
  clock_.AdvanceTo(t);
}

void NetSim::RunUntilParallel(SimTime t) {
  while (!queue_.empty() && queue_.top().time <= t) {
    // One batch: every pending event within `batch_window_` of the earliest
    // one, treated as concurrent and stamped at the batch start time. New
    // events produced by the batch are scheduled relative to that stamp, so
    // an event can fire at most `batch_window_` early — the bounded
    // approximation that buys parallelism (0 = exact-tie batching only).
    const SimTime batch_time = queue_.top().time;
    const SimTime horizon = std::min(batch_time + batch_window_, t);
    clock_.AdvanceTo(batch_time);

    std::vector<PdsEvent> batch;
    while (!queue_.empty() && queue_.top().time <= horizon) {
      batch.push_back(queue_.top());
      queue_.pop();
    }

    // Offline filtering and delivery accounting stay sequential, in event
    // order, exactly as in the sequential loop.
    std::vector<PdsEvent*> live;
    live.reserve(batch.size());
    for (PdsEvent& event : batch) {
      if (!AdmitEvent(event)) continue;
      if (event.kind == PdsEvent::Kind::kMessage) {
        live_stats_.messages_delivered.Add(1);
        PDS2_M_COUNT("dml.net.messages_delivered", 1);
        if (event.target >= bytes_received_per_node_.size()) {
          bytes_received_per_node_.resize(event.target + 1, 0);
        }
        bytes_received_per_node_[event.target] += event.payload.size();
      }
      live.push_back(&event);
    }

    // Group events by target node, preserving sequence order inside each
    // group: one task per node, so a node's handlers never run concurrently
    // with themselves and only ever touch that node's state and RNG.
    std::vector<std::vector<size_t>> groups;
    std::vector<size_t> group_of_node(nodes_.size(), SIZE_MAX);
    for (size_t idx = 0; idx < live.size(); ++idx) {
      const size_t target = live[idx]->target;
      if (group_of_node[target] == SIZE_MAX) {
        group_of_node[target] = groups.size();
        groups.emplace_back();
      }
      groups[group_of_node[target]].push_back(idx);
    }

    std::vector<NodeContext::Outbox> outboxes(live.size());
    auto run_group = [&](size_t g) {
      for (size_t idx : groups[g]) {
        PdsEvent& event = *live[idx];
        NodeContext ctx(*this, event.target, &outboxes[idx]);
        // Same causal stitching as the sequential loop; each worker
        // thread has its own open-span stack, so installing the remote
        // context here is what parents this handler (and the sends it
        // buffers in the outbox) under the sender's span.
        obs::TraceContextScope trace_scope(event.trace);
        obs::NodeScope node_scope("", node_names_[event.target]);
        if (event.kind == PdsEvent::Kind::kMessage) {
          obs::ScopedSpan span("dml.net.deliver", &clock_);
          nodes_[event.target]->OnMessage(ctx, event.from, event.payload);
        } else {
          obs::ScopedSpan span("dml.net.timer", &clock_);
          nodes_[event.target]->OnTimer(ctx, event.timer_id);
        }
      }
    };
    if (pool_->NumThreads() > 1 && groups.size() > 1) {
      pool_->ParallelFor(0, groups.size(), run_group);
    } else {
      for (size_t g = 0; g < groups.size(); ++g) run_group(g);
    }

    // Apply buffered side effects in event-sequence order. All shared-RNG
    // draws (drop, jitter) happen here, sequentially — deterministic for
    // any pool size.
    for (size_t idx = 0; idx < live.size(); ++idx) {
      for (NodeContext::Outbox::PendingSend& send : outboxes[idx].sends) {
        SendFrom(live[idx]->target, send.to, std::move(send.payload),
                 send.trace);
      }
      for (const NodeContext::Outbox::PendingTimer& timer :
           outboxes[idx].timers) {
        SetTimerFor(live[idx]->target, timer.delay, timer.timer_id,
                    timer.trace);
      }
      if (outboxes[idx].retries > 0) {
        live_stats_.retries.Add(outboxes[idx].retries);
        PDS2_M_COUNT("dml.net.retries", outboxes[idx].retries);
      }
    }
  }
  clock_.AdvanceTo(t);
}

}  // namespace pds2::dml
