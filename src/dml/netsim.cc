#include "dml/netsim.h"

#include <algorithm>
#include <cassert>

#include "common/thread_pool.h"
#include "obs/trace.h"

namespace pds2::dml {

using common::Bytes;
using common::SimTime;

SimTime NodeContext::Now() const { return sim_.Now(); }
size_t NodeContext::NumNodes() const { return sim_.NumNodes(); }
bool NodeContext::IsOnline(size_t node) const { return sim_.IsOnline(node); }
void NodeContext::Send(size_t to, Bytes payload) {
  if (outbox_ != nullptr) {
    Outbox::Op op;
    op.event_index = outbox_->current_event;
    op.kind = Outbox::OpKind::kSend;
    op.node = static_cast<uint32_t>(to);
    op.payload = std::move(payload);
    op.trace = obs::CurrentTraceContext();
    outbox_->ops.push_back(std::move(op));
    return;
  }
  sim_.SendFrom(self_, to, std::move(payload), obs::CurrentTraceContext());
}
void NodeContext::SetTimer(SimTime delay, uint64_t timer_id) {
  if (outbox_ != nullptr) {
    Outbox::Op op;
    op.event_index = outbox_->current_event;
    op.kind = Outbox::OpKind::kTimer;
    op.delay = delay;
    op.timer_id = timer_id;
    op.trace = obs::CurrentTraceContext();
    outbox_->ops.push_back(std::move(op));
    return;
  }
  sim_.SetTimerFor(self_, delay, timer_id, obs::CurrentTraceContext());
}
void NodeContext::SetOnline(size_t node, bool online) {
  if (outbox_ != nullptr) {
    Outbox::Op op;
    op.event_index = outbox_->current_event;
    op.kind = Outbox::OpKind::kChurn;
    op.node = static_cast<uint32_t>(node);
    op.online = online;
    outbox_->ops.push_back(std::move(op));
    return;
  }
  sim_.SetOnline(node, online);
}
common::Rng& NodeContext::rng() { return sim_.RngFor(self_); }
void NodeContext::CountRetry() {
  if (outbox_ != nullptr) {
    ++outbox_->retries;
    return;
  }
  sim_.CountRetryFor();
}

NetSim::NetSim(NetConfig config, uint64_t seed)
    : config_(config), rng_(seed) {
  stat_rows_.resize(1);
}

void NetSim::Reserve(size_t num_nodes) {
  nodes_.reserve(num_nodes);
  name_ids_.reserve(num_nodes);
  online_.reserve(num_nodes);
  epoch_.reserve(num_nodes);
  bytes_received_per_node_.reserve(num_nodes);
  if (pool_ != nullptr) node_rngs_.reserve(num_nodes);
}

void NetSim::EnableParallel(common::ThreadPool* pool, SimTime batch_window) {
  assert(!started_);
  assert(pool != nullptr);
  pool_ = pool;
  batch_window_ = batch_window;
  // Backfill private streams for nodes added before the switch, in index
  // order — together with the fork in AddNode this keeps every stream a
  // pure function of (seed, node index) regardless of whether a node was
  // added before or after EnableParallel.
  node_rngs_.reserve(nodes_.size());
  while (node_rngs_.size() < nodes_.size()) node_rngs_.push_back(rng_.Fork());
}

common::Rng& NetSim::RngFor(size_t node) {
  if (pool_ == nullptr) return rng_;
  assert(node < node_rngs_.size());
  return node_rngs_[node];
}

size_t NetSim::AddNode(std::unique_ptr<Node> node) {
  assert(!started_);
  nodes_.push_back(std::move(node));
  name_ids_.push_back(0);
  online_.push_back(true);
  epoch_.push_back(0);
  bytes_received_per_node_.push_back(0);
  // Fork this node's private stream immediately (the old code forked all
  // streams at Start(), so a node added after EnableParallel had no stream
  // and RngFor read out of bounds). Forking here keeps the stream a pure
  // function of (seed, node index) and leaves sequential-mode rng_
  // consumption untouched.
  if (pool_ != nullptr) node_rngs_.push_back(rng_.Fork());
  return nodes_.size() - 1;
}

void NetSim::SetNodeName(size_t node, std::string name) {
  assert(node < name_ids_.size());
  if (name_ids_[node] != 0) {
    name_pool_[name_ids_[node] - 1] = std::move(name);
    return;
  }
  name_pool_.push_back(std::move(name));
  name_ids_[node] = static_cast<uint32_t>(name_pool_.size());
}

std::string NetSim::NodeName(size_t node) const {
  assert(node < name_ids_.size());
  const uint32_t id = name_ids_[node];
  if (id != 0) return name_pool_[id - 1];
  return "node/" + std::to_string(node);
}

NetStats NetSim::stats() const {
  NetStats stats;
  for (const StatRow& row : stat_rows_) {
    stats.events_processed += row.events_processed;
    stats.messages_sent += row.messages_sent;
    stats.messages_delivered += row.messages_delivered;
    stats.messages_dropped += row.messages_dropped;
    stats.bytes_sent += row.bytes_sent;
    stats.partition_drops += row.partition_drops;
    stats.messages_corrupted += row.messages_corrupted;
    stats.retries += row.retries;
    stats.timers_dropped_offline += row.timers_dropped_offline;
  }
  stats.bytes_received_per_node = bytes_received_per_node_;
  return stats;
}

void NetSim::CountRetryFor() {
  stat_rows_[0].retries += 1;
  PDS2_M_COUNT("dml.net.retries", 1);
}

size_t NetSim::NumPartitions() const {
  constexpr size_t kMaxPartitions = 64;
  return std::min(kMaxPartitions, std::max<size_t>(1, nodes_.size()));
}

size_t NetSim::PartitionOf(size_t node) const {
  // Contiguous block partitioning: partition p owns node indices
  // [p*n/P, (p+1)*n/P) — neighbouring nodes share a partition, so one
  // worker touches one contiguous range of every per-node array.
  return node * NumPartitions() / nodes_.size();
}

void NetSim::Start() {
  assert(!started_);
  started_ = true;
  if (pool_ != nullptr) {
    const size_t partitions = NumPartitions();
    stat_rows_.resize(1 + partitions);
    partition_outboxes_.resize(partitions);
    partition_events_.resize(partitions);
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    NodeContext ctx(*this, i);
    nodes_[i]->OnStart(ctx);
  }
}

void NetSim::ScheduleEvent(SimTime time, PdsEvent event) {
  if (time < queue_.frontier()) {
    // A windowed parallel batch popped the wheel ahead of the clock; this
    // event lands behind the frontier. Park it in the retro heap — it is
    // strictly earlier than everything left in the wheel (see netsim.h).
    retro_.push_back(RetroEntry{time, retro_seq_++, std::move(event)});
    std::push_heap(retro_.begin(), retro_.end(), RetroLater{});
    return;
  }
  queue_.Schedule(time, std::move(event));
}

bool NetSim::NextEventTime(SimTime bound, SimTime* time) {
  if (!retro_.empty() && retro_.front().time <= bound) {
    *time = retro_.front().time;  // always earlier than any wheel event
    return true;
  }
  return queue_.PeekNextTime(bound, time);
}

bool NetSim::PopNext(SimTime bound, SimTime* time, PdsEvent* event) {
  if (!retro_.empty() && retro_.front().time <= bound) {
    std::pop_heap(retro_.begin(), retro_.end(), RetroLater{});
    *time = retro_.back().time;
    *event = std::move(retro_.back().event);
    retro_.pop_back();
    return true;
  }
  return queue_.PopUntil(bound, time, event);
}

void NetSim::SendFrom(size_t from, size_t to, Bytes payload,
                      obs::TraceContext trace) {
  assert(to < nodes_.size());
  StatRow& row = stat_rows_[0];
  row.messages_sent += 1;
  row.bytes_sent += payload.size();
  PDS2_M_COUNT("dml.net.messages_sent", 1);
  PDS2_M_COUNT("dml.net.bytes_sent", payload.size());

  // The installed fault model is consulted first: a partition blocks the
  // link outright; link faults stack extra loss / latency / corruption on
  // top of the homogeneous NetConfig link. All RNG draws below are gated on
  // their probability being positive so that runs without faults consume
  // the exact same stream as before the fault layer existed. SendFrom only
  // ever runs on the merge/main thread, in event order, so these global
  // draws are deterministic at any pool size.
  LinkFaultHook::Effect effect;
  if (fault_hook_ != nullptr) {
    effect = fault_hook_->OnLink(from, to, clock_.Now());
  }
  if (effect.blocked) {
    row.partition_drops += 1;
    row.messages_dropped += 1;
    PDS2_M_COUNT("dml.net.partition_drops", 1);
    PDS2_M_COUNT("dml.net.messages_dropped", 1);
    return;
  }
  if (config_.drop_rate > 0.0 && rng_.NextBool(config_.drop_rate)) {
    row.messages_dropped += 1;
    PDS2_M_COUNT("dml.net.messages_dropped", 1);
    return;
  }
  if (effect.extra_drop > 0.0 && rng_.NextBool(effect.extra_drop)) {
    row.messages_dropped += 1;
    PDS2_M_COUNT("dml.net.messages_dropped", 1);
    return;
  }

  SimTime latency = config_.base_latency;
  if (config_.latency_jitter > 0) {
    latency += rng_.NextU64(config_.latency_jitter);
  }
  if (config_.bandwidth_bytes_per_sec > 0) {
    latency += static_cast<SimTime>(
        static_cast<double>(payload.size()) /
        config_.bandwidth_bytes_per_sec * common::kMicrosPerSecond);
  }
  if (effect.latency_mult != 1.0) {
    latency = static_cast<SimTime>(static_cast<double>(latency) *
                                   effect.latency_mult);
  }

  if (effect.corrupt_rate > 0.0 && !payload.empty() &&
      rng_.NextBool(effect.corrupt_rate)) {
    payload[rng_.NextU64(payload.size())] ^=
        static_cast<uint8_t>(1 + rng_.NextU64(255));
    row.messages_corrupted += 1;
    PDS2_M_COUNT("dml.net.messages_corrupted", 1);
  }

  PdsEvent event;
  event.kind = PdsEvent::Kind::kMessage;
  event.target = static_cast<uint32_t>(to);
  event.from = static_cast<uint32_t>(from);
  event.target_epoch = epoch_[to];
  event.payload = MsgBuf(std::move(payload));
  event.trace = trace;
  ScheduleEvent(clock_.Now() + latency, std::move(event));
}

void NetSim::SetTimerFor(size_t node, SimTime delay, uint64_t timer_id,
                         obs::TraceContext trace) {
  PdsEvent event;
  event.kind = PdsEvent::Kind::kTimer;
  event.target = static_cast<uint32_t>(node);
  event.timer_id = timer_id;
  event.target_epoch = epoch_[node];
  event.trace = trace;
  ScheduleEvent(clock_.Now() + delay, std::move(event));
}

void NetSim::SetOnline(size_t node, bool online) {
  assert(node < online_.size());
  assert(!in_batch_);  // use NodeContext::SetOnline inside a parallel batch
  const bool was_online = online_[node];
  online_[node] = online;
  if (!online && was_online) {
    // Crash: start a new life. Everything scheduled against the old life
    // (timers, in-flight messages) is dropped at fire time via AdmitEvent.
    ++epoch_[node];
  }
  if (started_ && online && !was_online) {
    NodeContext ctx(*this, node);
    nodes_[node]->OnRestart(ctx);
  }
}

bool NetSim::AdmitEvent(const PdsEvent& event, StatRow& row) {
  const bool stale = event.target_epoch != epoch_[event.target];
  if (online_[event.target] && !stale) return true;
  if (event.kind == PdsEvent::Kind::kMessage) {
    row.messages_dropped += 1;
    PDS2_M_COUNT("dml.net.messages_dropped", 1);
  } else {
    row.timers_dropped_offline += 1;
    PDS2_M_COUNT("dml.net.timers_dropped_offline", 1);
  }
  return false;
}

void NetSim::DispatchEvent(PdsEvent& event, NodeContext& ctx, StatRow& row,
                           Bytes& scratch) {
  // Delivery re-establishes the sender's causal context: the handler span
  // parents under the span that sent the message (or armed the timer), and
  // is labeled with the receiving node's identity. All scopes are
  // single-branch no-ops while tracing is disabled — including the node
  // label, which is only formatted when a tracer will read it.
  obs::TraceContextScope trace_scope(event.trace);
  obs::NodeScope node_scope(
      "", obs::TracingEnabled() ? NodeName(event.target) : std::string());
  if (event.kind == PdsEvent::Kind::kMessage) {
    row.messages_delivered += 1;
    PDS2_M_COUNT("dml.net.messages_delivered", 1);
    bytes_received_per_node_[event.target] += event.payload.size();
    obs::ScopedSpan span("dml.net.deliver", &clock_);
    nodes_[event.target]->OnMessage(ctx, event.from,
                                    event.payload.AsBytes(scratch));
  } else {
    obs::ScopedSpan span("dml.net.timer", &clock_);
    nodes_[event.target]->OnTimer(ctx, event.timer_id);
  }
}

void NetSim::SetTickHook(SimTime interval,
                         std::function<void(SimTime)> hook) {
  tick_interval_ = hook ? interval : 0;
  tick_hook_ = std::move(hook);
  next_tick_ = clock_.Now() + tick_interval_;
}

void NetSim::FireTicksBefore(SimTime bound) {
  while (tick_interval_ > 0 && next_tick_ < bound) {
    const SimTime tick = next_tick_;
    next_tick_ += tick_interval_;
    clock_.AdvanceTo(tick);
    tick_hook_(tick);
  }
}

void NetSim::FireTicksThrough(SimTime bound) {
  while (tick_interval_ > 0 && next_tick_ <= bound) {
    const SimTime tick = next_tick_;
    next_tick_ += tick_interval_;
    clock_.AdvanceTo(tick);
    tick_hook_(tick);
  }
}

void NetSim::RunUntil(SimTime t) {
  assert(started_);
  PDS2_TRACE_SPAN_SIM("dml.net.run_until", &clock_);
  if (pool_ != nullptr) {
    RunUntilParallel(t);
    return;
  }
  SimTime event_time = 0;
  PdsEvent event;
  while (PopNext(t, &event_time, &event)) {
    // Ticks strictly before this event fire first; an event stamped at
    // exactly the tick time executes before the tick observes it.
    FireTicksBefore(event_time);
    clock_.AdvanceTo(event_time);
    stat_rows_[0].events_processed += 1;
    if (!AdmitEvent(event, stat_rows_[0])) continue;
    NodeContext ctx(*this, event.target);
    DispatchEvent(event, ctx, stat_rows_[0], delivery_scratch_);
  }
  FireTicksThrough(t);
  clock_.AdvanceTo(t);
}

void NetSim::RunUntilParallel(SimTime t) {
  const size_t num_partitions = NumPartitions();
  SimTime batch_time = 0;
  while (NextEventTime(t, &batch_time)) {
    // One batch: every pending event within `batch_window_` of the earliest
    // one, treated as concurrent and stamped at the batch start time. New
    // events produced by the batch are scheduled relative to that stamp, so
    // an event can fire at most `batch_window_` early — the bounded
    // approximation that buys parallelism (0 = exact-tie batching only).
    const SimTime horizon = std::min(batch_time + batch_window_, t);
    // Ticks due strictly before this batch's stamp fire now, sequentially,
    // against a quiescent sim — batch formation is pool-independent, so
    // tick placement is too.
    FireTicksBefore(batch_time);
    clock_.AdvanceTo(batch_time);

    batch_.clear();
    {
      SimTime event_time = 0;
      PdsEvent event;
      while (PopNext(horizon, &event_time, &event)) {
        batch_.push_back(std::move(event));
      }
    }
    stat_rows_[0].events_processed += batch_.size();

    // Bucket the batch by target partition, preserving batch order inside
    // each bucket: one task per partition, so a node's handlers never run
    // concurrently with themselves, and each worker touches one contiguous
    // block of the per-node arrays plus its own outbox and stats row.
    active_partitions_.clear();
    for (size_t idx = 0; idx < batch_.size(); ++idx) {
      const size_t p = PartitionOf(batch_[idx].target);
      if (partition_events_[p].empty()) active_partitions_.push_back(p);
      partition_events_[p].push_back(static_cast<uint32_t>(idx));
    }

    // Admission (offline/stale filtering), delivery accounting and handler
    // execution all happen inside the partition worker: churn is deferred
    // to the merge phase below, so online_/epoch_ are frozen for the whole
    // batch and the checks are race-free and order-independent.
    auto run_partition = [&](size_t a) {
      const size_t p = active_partitions_[a];
      NodeContext::Outbox& outbox = partition_outboxes_[p];
      StatRow& row = stat_rows_[1 + p];
      for (const uint32_t idx : partition_events_[p]) {
        PdsEvent& event = batch_[idx];
        outbox.current_event = idx;
        if (!AdmitEvent(event, row)) continue;
        NodeContext ctx(*this, event.target, &outbox);
        // Each worker thread has its own open-span stack, so installing
        // the remote context inside DispatchEvent is what parents this
        // handler (and the ops it buffers) under the sender's span.
        DispatchEvent(event, ctx, row, outbox.delivery_scratch);
      }
    };
    in_batch_ = true;
    if (pool_->NumThreads() > 1 && active_partitions_.size() > 1) {
      pool_->ParallelFor(0, active_partitions_.size(), run_partition);
    } else {
      for (size_t a = 0; a < active_partitions_.size(); ++a) {
        run_partition(a);
      }
    }
    in_batch_ = false;

    // Merge: apply buffered side effects in batch event order. Each
    // partition's op list is already sorted by event index (the worker
    // processed its events in batch order), so the merge is one linear
    // walk with a cursor per partition — no sorting. All shared-RNG draws
    // (drop, jitter, corruption) happen here, sequentially, as do churn
    // transitions and their OnRestart callbacks — deterministic for any
    // pool size.
    partition_cursors_.assign(num_partitions, 0);
    for (size_t idx = 0; idx < batch_.size(); ++idx) {
      const size_t p = PartitionOf(batch_[idx].target);
      NodeContext::Outbox& outbox = partition_outboxes_[p];
      size_t& cursor = partition_cursors_[p];
      while (cursor < outbox.ops.size() &&
             outbox.ops[cursor].event_index == idx) {
        NodeContext::Outbox::Op& op = outbox.ops[cursor++];
        switch (op.kind) {
          case NodeContext::Outbox::OpKind::kSend:
            SendFrom(batch_[idx].target, op.node, std::move(op.payload),
                     op.trace);
            break;
          case NodeContext::Outbox::OpKind::kTimer:
            SetTimerFor(batch_[idx].target, op.delay, op.timer_id, op.trace);
            break;
          case NodeContext::Outbox::OpKind::kChurn:
            SetOnline(op.node, op.online);
            break;
        }
      }
    }
    for (const size_t p : active_partitions_) {
      NodeContext::Outbox& outbox = partition_outboxes_[p];
      if (outbox.retries > 0) {
        stat_rows_[0].retries += outbox.retries;
        PDS2_M_COUNT("dml.net.retries", outbox.retries);
      }
      outbox.ops.clear();
      outbox.retries = 0;
      partition_events_[p].clear();
    }
  }
  FireTicksThrough(t);
  clock_.AdvanceTo(t);
}

}  // namespace pds2::dml
