#ifndef PDS2_DML_EVENT_WHEEL_H_
#define PDS2_DML_EVENT_WHEEL_H_

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/sim_clock.h"

namespace pds2::dml {

/// Hierarchical timer wheel — the NetSim event queue. Replaces the old
/// std::priority_queue (O(log n) per operation, with n in the millions at
/// 10^5-10^6 simulated nodes) with amortized O(1) schedule and pop at
/// discrete-event-simulator densities.
///
/// Four levels of 256 slots each, one simulated microsecond of resolution
/// at level 0: level k spans 256^(k+1) us, so the wheels cover 2^32 us
/// (~71.6 simulated minutes) ahead of the processed frontier; anything
/// further lands in an overflow min-heap ordered by (time, schedule seq)
/// that migrates into the wheels as soon as the frontier comes within the
/// span — eagerly, so an overflow event keeps its FIFO rank even against a
/// same-timestamp event scheduled later straight into the wheels. An
/// event's level is picked by the highest byte in
/// which its timestamp differs from the frontier (`time ^ base_`), the
/// classic hashed-wheel rule; advancing the frontier cascades one
/// higher-level slot down into the finer wheels.
///
/// Ordering contract (matches the old priority queue exactly): events pop
/// in nondecreasing timestamp order, and events with the *same* timestamp
/// pop in schedule order (FIFO). The FIFO half holds structurally: a
/// level-0 slot covers exactly one microsecond, slots are appended to and
/// drained front-to-back, and a cascade for time T always completes before
/// any direct level-0 insert for T can happen (a direct insert requires
/// the frontier to already be inside T's 256 us window, which is what
/// triggered the cascade).
///
/// The wheel never rewinds: Schedule requires time >= the frontier, which
/// NetSim guarantees because events are scheduled at `clock.Now() + delay`
/// and the frontier is only advanced up to the RunUntil bound.
///
/// Events live in an internal free-listed arena; slots hold 32-bit arena
/// references, so steady-state scheduling allocates nothing once the
/// arena and slot vectors have grown to the simulation's natural depth.
template <typename Event>
class EventWheel {
 public:
  using SimTime = common::SimTime;

  static constexpr int kLevels = 4;
  static constexpr int kSlotBits = 8;
  static constexpr size_t kSlotsPerLevel = size_t{1} << kSlotBits;  // 256
  /// Horizon (relative to the frontier) beyond which events overflow.
  static constexpr uint64_t kWheelSpan = uint64_t{1}
                                         << (kLevels * kSlotBits);  // 2^32

  EventWheel() {
    for (int level = 0; level < kLevels; ++level) {
      slots_[level].resize(kSlotsPerLevel);
    }
  }

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  /// The processed frontier: every stored event has time >= frontier().
  SimTime frontier() const { return base_; }

  /// Inserts an event due at `time`. Requires time >= frontier().
  void Schedule(SimTime time, Event event) {
    assert(time >= base_);
    const uint32_t ref = AllocItem(time, std::move(event));
    Place(time, ref);
    ++size_;
  }

  /// Timestamp of the earliest pending event, provided it is <= `bound`.
  /// Returns false when the wheel is empty or the earliest event is due
  /// after `bound`. May advance the frontier (cascading higher-level
  /// slots down), but never beyond `bound` — so a later Schedule at any
  /// time >= bound remains valid.
  bool PeekNextTime(SimTime bound, SimTime* time) {
    while (size_ > 0) {
      // Pull overflow events that have come within the wheel span into the
      // wheels. This runs before any slot is inspected and re-runs after
      // every frontier change, so an overflow event is always filed into
      // its slot before a later Schedule for the same timestamp could be —
      // which is what preserves its FIFO rank.
      while (!overflow_.empty() &&
             (overflow_.front().time ^ base_) < kWheelSpan) {
        std::pop_heap(overflow_.begin(), overflow_.end(), OverflowLater{});
        const OverflowEntry entry = overflow_.back();
        overflow_.pop_back();
        Place(entry.time, entry.ref);
      }
      // Level 0 first: an occupied slot at or after the cursor holds the
      // earliest pending events (one exact microsecond per slot).
      const size_t cursor0 = static_cast<size_t>(base_) & kSlotMask;
      size_t slot;
      if (FindOccupied(0, cursor0, &slot)) {
        const SimTime t = (base_ & ~static_cast<SimTime>(kSlotMask)) |
                          static_cast<SimTime>(slot);
        if (t > bound) return false;
        *time = t;
        return true;
      }
      // The current 256 us window is spent: advance to the next occupied
      // higher-level slot and cascade it down. Levels are strictly
      // ordered in time, so the first occupied slot found this way is the
      // earliest remaining region of the simulation.
      bool cascaded = false;
      for (int level = 1; level < kLevels && !cascaded; ++level) {
        const size_t cursor = Cursor(level);
        size_t next;
        if (!FindOccupied(level, cursor + 1, &next)) continue;
        const int shift = level * kSlotBits;
        const SimTime window_mask =
            (SimTime{1} << (shift + kSlotBits)) - 1;
        const SimTime new_base = (base_ & ~window_mask) |
                                 (static_cast<SimTime>(next) << shift);
        if (new_base > bound) return false;  // earliest event is > bound
        base_ = new_base;
        Drain(level, next);
        cascaded = true;
      }
      if (cascaded) continue;
      // Wheels empty; everything pending sits in the overflow heap. Jump
      // the frontier to its earliest entry; the migration loop above files
      // it (and everything else now in range) on the next iteration.
      assert(!overflow_.empty());
      const SimTime min_time = overflow_.front().time;
      if (min_time > bound) return false;
      base_ = min_time;
    }
    return false;
  }

  /// Removes the earliest event if it is due at or before `bound`.
  bool PopUntil(SimTime bound, SimTime* time, Event* out) {
    SimTime t;
    if (!PeekNextTime(bound, &t)) return false;
    const size_t slot = static_cast<size_t>(t) & kSlotMask;
    std::vector<uint32_t>& refs = slots_[0][slot];
    size_t& head = heads0_[slot];
    assert(head < refs.size());
    const uint32_t ref = refs[head++];
    if (head == refs.size()) {
      refs.clear();
      head = 0;
      MarkEmpty(0, slot);
    }
    *time = arena_[ref].time;
    *out = std::move(arena_[ref].event);
    FreeItem(ref);
    --size_;
    return true;
  }

 private:
  static constexpr size_t kSlotMask = kSlotsPerLevel - 1;
  static constexpr size_t kBitmapWords = kSlotsPerLevel / 64;

  struct Item {
    SimTime time = 0;
    Event event{};
  };

  size_t Cursor(int level) const {
    return static_cast<size_t>(base_ >> (level * kSlotBits)) & kSlotMask;
  }

  uint32_t AllocItem(SimTime time, Event event) {
    uint32_t ref;
    if (!free_.empty()) {
      ref = free_.back();
      free_.pop_back();
      arena_[ref].time = time;
      arena_[ref].event = std::move(event);
    } else {
      ref = static_cast<uint32_t>(arena_.size());
      arena_.push_back(Item{time, std::move(event)});
    }
    return ref;
  }

  void FreeItem(uint32_t ref) {
    arena_[ref].event = Event{};  // release payload resources eagerly
    free_.push_back(ref);
  }

  struct OverflowEntry {
    SimTime time = 0;
    uint64_t seq = 0;   // schedule order, breaks same-time ties FIFO
    uint32_t ref = 0;
  };
  struct OverflowLater {
    bool operator()(const OverflowEntry& a, const OverflowEntry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Files `ref` into the level selected by the highest byte in which its
  /// time differs from the frontier (or overflow beyond the wheel span).
  void Place(SimTime time, uint32_t ref) {
    const uint64_t diff = time ^ base_;
    if (diff >= kWheelSpan) {
      overflow_.push_back(OverflowEntry{time, overflow_seq_++, ref});
      std::push_heap(overflow_.begin(), overflow_.end(), OverflowLater{});
      return;
    }
    int level = 0;
    if (diff >= (uint64_t{1} << kSlotBits)) {
      level = (std::bit_width(diff) - 1) / kSlotBits;
    }
    const size_t slot =
        static_cast<size_t>(time >> (level * kSlotBits)) & kSlotMask;
    slots_[level][slot].push_back(ref);
    bitmap_[level][slot / 64] |= uint64_t{1} << (slot % 64);
  }

  /// Re-files every event of a higher-level slot now that the frontier
  /// entered its window (they land at strictly lower levels). Stored order
  /// is preserved, which is what keeps same-timestamp events FIFO.
  void Drain(int level, size_t slot) {
    std::vector<uint32_t>& refs = slots_[level][slot];
    MarkEmpty(level, slot);
    drain_scratch_.swap(refs);  // refs is now the (empty) old scratch
    for (const uint32_t ref : drain_scratch_) {
      Place(arena_[ref].time, ref);
    }
    drain_scratch_.clear();
  }

  void MarkEmpty(int level, size_t slot) {
    bitmap_[level][slot / 64] &= ~(uint64_t{1} << (slot % 64));
  }

  /// First occupied slot index >= `from` at `level`; false if none.
  bool FindOccupied(int level, size_t from, size_t* slot) const {
    if (from >= kSlotsPerLevel) return false;
    size_t word = from / 64;
    uint64_t bits = bitmap_[level][word] & (~uint64_t{0} << (from % 64));
    while (true) {
      if (bits != 0) {
        *slot = word * 64 + static_cast<size_t>(std::countr_zero(bits));
        return true;
      }
      if (++word >= kBitmapWords) return false;
      bits = bitmap_[level][word];
    }
  }

  SimTime base_ = 0;  // processed frontier; all events are >= base_
  size_t size_ = 0;
  std::vector<Item> arena_;
  std::vector<uint32_t> free_;
  std::vector<std::vector<uint32_t>> slots_[kLevels];
  uint64_t bitmap_[kLevels][kBitmapWords] = {};
  /// Per-slot consumed prefix of the level-0 slot being drained (only the
  /// slot PopUntil is currently serving ever has a non-zero head).
  size_t heads0_[kSlotsPerLevel] = {};
  std::vector<OverflowEntry> overflow_;  // min-heap on (time, seq)
  uint64_t overflow_seq_ = 0;
  std::vector<uint32_t> drain_scratch_;
};

}  // namespace pds2::dml

#endif  // PDS2_DML_EVENT_WHEEL_H_
