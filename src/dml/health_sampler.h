#ifndef PDS2_DML_HEALTH_SAMPLER_H_
#define PDS2_DML_HEALTH_SAMPLER_H_

#include "dml/netsim.h"
#include "obs/health.h"
#include "obs/time_series.h"
#include "obs/trace.h"

namespace pds2::dml {

/// Wires the health plane into a DES run: every `interval` of sim time the
/// simulator (between events, on the driving thread — see
/// NetSim::SetTickHook) snapshots the metrics registry into `ts` stamped
/// with both wall and sim time, then evaluates `monitor`'s rules at the new
/// sample. Tick placement is a pure function of the event schedule, so a
/// seeded run produces the identical sample/alert stream at any pool size.
/// `monitor` may be null (sampling only). Replaces any previous tick hook.
inline void AttachHealthSampler(NetSim& sim, common::SimTime interval,
                                obs::TimeSeries* ts,
                                obs::HealthMonitor* monitor = nullptr) {
  sim.SetTickHook(interval, [ts, monitor](common::SimTime t) {
    ts->Sample(obs::WallNowNs(), /*has_sim=*/true, t);
    if (monitor != nullptr) monitor->EvaluateLatest();
  });
}

}  // namespace pds2::dml

#endif  // PDS2_DML_HEALTH_SAMPLER_H_
