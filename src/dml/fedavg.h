#ifndef PDS2_DML_FEDAVG_H_
#define PDS2_DML_FEDAVG_H_

#include <memory>
#include <vector>

#include "dml/netsim.h"
#include "ml/model.h"
#include "ml/sgd.h"

namespace pds2::dml {

/// Federated-averaging parameters (McMahan et al. [17]).
struct FedAvgConfig {
  double client_fraction = 1.0;       // C: clients sampled per round
  ml::SgdConfig local_sgd;            // E local epochs on each client
  common::SimTime round_timeout = 5 * common::kMicrosPerSecond;
};

/// The central aggregator — the component whose bottleneck, single point of
/// failure and privacy exposure motivate gossip learning in the paper. Node
/// index 0 by convention.
class FedServerNode : public Node {
 public:
  FedServerNode(std::unique_ptr<ml::Model> model, FedAvgConfig config,
                std::vector<size_t> client_ids);

  void OnStart(NodeContext& ctx) override;
  /// A restarted server abandons the in-flight round (its timeout timer
  /// died with the crash) and opens a new one.
  void OnRestart(NodeContext& ctx) override { BeginRound(ctx); }
  void OnMessage(NodeContext& ctx, size_t from,
                 const common::Bytes& payload) override;
  void OnTimer(NodeContext& ctx, uint64_t timer_id) override;

  const ml::Model& model() const { return *model_; }
  uint64_t rounds_completed() const { return rounds_completed_; }

 private:
  void BeginRound(NodeContext& ctx);
  void FinishRound(NodeContext& ctx);

  std::unique_ptr<ml::Model> model_;
  FedAvgConfig config_;
  std::vector<size_t> client_ids_;

  uint64_t round_ = 0;
  uint64_t rounds_completed_ = 0;
  size_t awaiting_ = 0;
  std::vector<ml::Vec> round_params_;
  std::vector<double> round_weights_;
};

/// A federated client: on a "train" request it loads the global parameters,
/// runs E local epochs on its private data and returns the updated
/// parameters with its sample count.
class FedClientNode : public Node {
 public:
  FedClientNode(std::unique_ptr<ml::Model> model, ml::Dataset local_data,
                ml::SgdConfig local_sgd);

  void OnMessage(NodeContext& ctx, size_t from,
                 const common::Bytes& payload) override;

  size_t local_samples() const { return data_.Size(); }

 private:
  std::unique_ptr<ml::Model> model_;
  ml::Dataset data_;
  ml::SgdConfig local_sgd_;
};

}  // namespace pds2::dml

#endif  // PDS2_DML_FEDAVG_H_
