#ifndef PDS2_DML_RUMOR_H_
#define PDS2_DML_RUMOR_H_

#include <cstdint>

#include "dml/netsim.h"

namespace pds2::dml {

/// Rumor-spread (push epidemic) parameters.
struct RumorConfig {
  common::SimTime push_interval = 200 * common::kMicrosPerMilli;
  size_t fanout = 2;  // peers contacted per round once infected
};

/// Minimal push-epidemic endpoint used to exercise NetSim itself at
/// 10^5-10^6 nodes (the scale determinism tests and bench_scale): a seeded
/// node pushes a one-byte rumor to `fanout` uniformly random peers every
/// jittered `push_interval`; a node that hears the rumor becomes infected
/// and starts pushing too. The protocol state is two words per node, so a
/// sweep measures the simulator — event queue, churn, parallel batches —
/// rather than any model math. Every random draw (timer jitter, peer
/// choice) comes from ctx.rng(), i.e. the node's private stream in
/// parallel mode, which is what makes runs bit-identical across pool
/// sizes. Crash semantics: the timer chain dies with the node (NetSim
/// drops old-life timers) but the infection bit survives, so OnRestart
/// re-desynchronizes and resumes pushing.
class RumorNode : public Node {
 public:
  explicit RumorNode(RumorConfig config) : config_(config) {}

  /// Marks this node infected before Start() — the rumor's origin.
  void Seed() { infected_ = true; }

  void OnStart(NodeContext& ctx) override { Arm(ctx); }
  void OnRestart(NodeContext& ctx) override { Arm(ctx); }
  void OnMessage(NodeContext& ctx, size_t from,
                 const common::Bytes& payload) override;
  void OnTimer(NodeContext& ctx, uint64_t timer_id) override;

  bool infected() const { return infected_; }
  /// Sim time this node first heard the rumor (0 for the seed).
  common::SimTime infected_at() const { return infected_at_; }
  uint64_t pushes() const { return pushes_; }

 private:
  void Arm(NodeContext& ctx);

  RumorConfig config_;
  bool infected_ = false;
  common::SimTime infected_at_ = 0;
  uint64_t pushes_ = 0;
};

}  // namespace pds2::dml

#endif  // PDS2_DML_RUMOR_H_
