#include "dml/rumor.h"

namespace pds2::dml {

namespace {
constexpr uint8_t kRumorByte = 0x52;  // 'R'
}  // namespace

void RumorNode::Arm(NodeContext& ctx) {
  // Jittered period desynchronizes the fleet: without it every node fires
  // in the same microsecond and the wheel degenerates into a handful of
  // giant slots.
  const common::SimTime delay =
      config_.push_interval / 2 + ctx.rng().NextU64(config_.push_interval);
  ctx.SetTimer(delay, 0);
}

void RumorNode::OnMessage(NodeContext& ctx, size_t from,
                          const common::Bytes& payload) {
  (void)from;
  if (payload.empty() || payload[0] != kRumorByte) return;
  if (!infected_) {
    infected_ = true;
    infected_at_ = ctx.Now();
  }
}

void RumorNode::OnTimer(NodeContext& ctx, uint64_t timer_id) {
  (void)timer_id;
  if (infected_) {
    for (size_t i = 0; i < config_.fanout; ++i) {
      // Uniform peer pick may land on the fault injector's node index —
      // it ignores stray traffic, so this only costs a vanishing fraction
      // of pushes at scale.
      const size_t peer = ctx.rng().NextU64(ctx.NumNodes());
      if (peer == ctx.self()) continue;
      ctx.Send(peer, common::Bytes{kRumorByte});
      ++pushes_;
    }
  }
  ctx.SetTimer(config_.push_interval, 0);
}

}  // namespace pds2::dml
