#ifndef PDS2_DML_NETSIM_H_
#define PDS2_DML_NETSIM_H_

#include <memory>
#include <queue>
#include <vector>

#include <string>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/sim_clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pds2::common {
class ThreadPool;
}  // namespace pds2::common

namespace pds2::dml {

/// Link model of the simulated network.
struct NetConfig {
  common::SimTime base_latency = 10 * common::kMicrosPerMilli;
  common::SimTime latency_jitter = 5 * common::kMicrosPerMilli;
  double drop_rate = 0.0;                    // independent per message
  double bandwidth_bytes_per_sec = 1.0e6;    // serialization delay per link
};

/// Network-wide counters (experiments E2/E3 and the chaos harness read
/// these). Since PR 3 this is a point-in-time *view* materialized by
/// NetSim::stats() from the simulator's live obs::Counter set; the same
/// counts are mirrored into the global obs::Registry under "dml.net.*".
struct NetStats {
  uint64_t messages_sent = 0;
  uint64_t messages_delivered = 0;
  uint64_t messages_dropped = 0;     // by loss or offline receiver
  uint64_t bytes_sent = 0;
  // Fault-injection visibility (see LinkFaultHook / FaultInjector).
  uint64_t partition_drops = 0;          // blocked by an active partition
  uint64_t messages_corrupted = 0;       // payload flipped in flight
  uint64_t retries = 0;                  // protocol-reported retransmissions
  uint64_t timers_dropped_offline = 0;   // timers lost to an offline node
  /// Bytes received per node — exposes hotspots (the federated server).
  std::vector<uint64_t> bytes_received_per_node;
};

class NetSim;

/// Per-link fault model consulted on every send. Implementations (e.g.
/// FaultInjector) derive the effect from sim-time alone so that replaying
/// the same seed reproduces the same run. The hook must be deterministic:
/// it is called once per send, in event order, and must not draw from any
/// RNG itself (the simulator makes all randomized decisions from the
/// returned probabilities).
class LinkFaultHook {
 public:
  virtual ~LinkFaultHook() = default;
  struct Effect {
    bool blocked = false;       // partitioned: drop silently at send time
    double extra_drop = 0.0;    // extra independent loss probability
    double latency_mult = 1.0;  // multiplies the delivery latency
    double corrupt_rate = 0.0;  // probability of flipping one payload byte
  };
  virtual Effect OnLink(size_t from, size_t to, common::SimTime now) = 0;
};

/// The facilities a node may use from inside a callback.
class NodeContext {
 public:
  NodeContext(NetSim& sim, size_t self) : sim_(sim), self_(self) {}

  size_t self() const { return self_; }
  common::SimTime Now() const;
  size_t NumNodes() const;
  bool IsOnline(size_t node) const;

  /// Sends a message; it arrives after latency + size/bandwidth, unless
  /// dropped or the receiver is offline at delivery time.
  void Send(size_t to, common::Bytes payload);

  /// Arms a one-shot timer that fires OnTimer(timer_id) after `delay`.
  void SetTimer(common::SimTime delay, uint64_t timer_id);

  /// Records one protocol-level retransmission in NetStats::retries —
  /// called by protocols (e.g. the validator sync backoff) so experiment
  /// harnesses can see recovery effort without reaching into the protocol.
  void CountRetry();

  /// The simulator-wide RNG in sequential mode; this node's private stream
  /// in parallel mode (see NetSim::EnableParallel).
  common::Rng& rng();

 private:
  friend class NetSim;

  /// Side effects buffered during a parallel batch; the simulator applies
  /// them in deterministic event order after the batch joins. The trace
  /// context is captured here, on the worker thread, where the sender's
  /// delivery span is still installed — by the time the outbox drains on
  /// the main thread that context is gone.
  struct Outbox {
    struct PendingSend {
      size_t to;
      common::Bytes payload;
      obs::TraceContext trace;
    };
    struct PendingTimer {
      common::SimTime delay;
      uint64_t timer_id;
      obs::TraceContext trace;
    };
    std::vector<PendingSend> sends;
    std::vector<PendingTimer> timers;
    uint64_t retries = 0;
  };

  NodeContext(NetSim& sim, size_t self, Outbox* outbox)
      : sim_(sim), self_(self), outbox_(outbox) {}

  NetSim& sim_;
  size_t self_;
  Outbox* outbox_ = nullptr;  // non-null only inside a parallel batch
};

/// A protocol endpoint. Implementations: GossipNode, FedServerNode,
/// FedClientNode, and any future aggregation method (the architecture's
/// §II-F flexibility point).
class Node {
 public:
  virtual ~Node() = default;
  /// Called once when the simulation starts.
  virtual void OnStart(NodeContext& ctx) { (void)ctx; }
  /// Called when the node rejoins after churn (SetOnline false -> true).
  /// A crash invalidates every timer the node had armed (counted in
  /// NetStats::timers_dropped_offline), so timer-driven protocols must
  /// re-arm here or stay silent forever. Default: no-op.
  virtual void OnRestart(NodeContext& ctx) { (void)ctx; }
  /// Called when a message addressed to this node is delivered.
  virtual void OnMessage(NodeContext& ctx, size_t from,
                         const common::Bytes& payload) = 0;
  /// Called when a timer armed by this node fires.
  virtual void OnTimer(NodeContext& ctx, uint64_t timer_id) {
    (void)ctx;
    (void)timer_id;
  }
};

/// Deterministic discrete-event network simulator. By default
/// single-threaded: events (message deliveries, timers) execute in
/// timestamp order, ties broken by insertion sequence. Nodes can be taken
/// offline and back online to model churn; messages to offline nodes are
/// lost (no retransmission — protocol robustness under loss is part of what
/// the experiments measure).
///
/// Parallel mode (EnableParallel): events inside a small time window are
/// treated as concurrent and their per-node handlers — the LocalUpdate /
/// gossip-push steps that dominate DML round cost — run on a ThreadPool.
/// Determinism is preserved at any pool size: each node draws from its own
/// RNG stream, handlers buffer their sends/timers in per-event outboxes,
/// and the simulator applies those outboxes (and all shared-RNG draws for
/// drop/jitter) in event-sequence order after the batch joins.
class NetSim {
 public:
  NetSim(NetConfig config, uint64_t seed);

  /// Registers a node; returns its index.
  size_t AddNode(std::unique_ptr<Node> node);

  /// Opts into parallel batch execution on `pool`. Must be called before
  /// Start(). Events whose timestamps fall within `batch_window` of the
  /// earliest pending event execute as one concurrent batch stamped at the
  /// batch's start time (0 = only exact timestamp ties batch together).
  /// Results are identical for every pool size, including 1; they differ
  /// from sequential mode only because nodes use private RNG streams.
  void EnableParallel(common::ThreadPool* pool,
                      common::SimTime batch_window = 0);

  /// Delivers OnStart to every node. Call once, after adding all nodes.
  void Start();

  /// Processes events until the clock passes `t` (events at exactly `t`
  /// are processed).
  void RunUntil(common::SimTime t);

  /// Churn control. An offline node receives neither messages nor timers.
  /// A crash (online -> offline) starts a new life for the node: timers
  /// armed — and messages addressed to it — before the crash are dropped
  /// even if they come due after the restart, exactly as a real process
  /// loses its state when it dies. Drops are counted in NetStats
  /// (timers_dropped_offline / messages_dropped). On rejoin the node's
  /// OnRestart hook runs so protocols can re-arm.
  void SetOnline(size_t node, bool online);
  bool IsOnline(size_t node) const { return online_[node]; }

  /// Installs a per-link fault model (partitions, asymmetric degradation,
  /// payload corruption). Call before Start(). nullptr disables.
  void SetLinkFaultHook(LinkFaultHook* hook) { fault_hook_ = hook; }

  common::SimTime Now() const { return clock_.Now(); }
  size_t NumNodes() const { return nodes_.size(); }
  Node* node(size_t i) { return nodes_[i].get(); }

  /// Logical label used by the tracing layer for spans executed on this
  /// node ("validator/2", defaults to "node/<i>"). Callable any time.
  void SetNodeName(size_t node, std::string name);
  const std::string& NodeName(size_t node) const { return node_names_[node]; }

  /// Point-in-time copy of the live counters (racy-but-consistent when the
  /// parallel mode is active; exact between RunUntil calls).
  NetStats stats() const;
  /// The simulator clock, for sim-time spans (PDS2_TRACE_SPAN_SIM).
  const common::SimClock* sim_clock() const { return &clock_; }
  common::Rng& rng() { return rng_; }

  // Internal API used by NodeContext. The trace context rides the message
  // envelope (never the payload): delivery installs it as the remote
  // parent of the receiver's handler span, which is how one marketplace
  // trace stays connected across simulated nodes.
  void SendFrom(size_t from, size_t to, common::Bytes payload,
                obs::TraceContext trace = {});
  void SetTimerFor(size_t node, common::SimTime delay, uint64_t timer_id,
                   obs::TraceContext trace = {});
  common::Rng& RngFor(size_t node);
  void CountRetryFor();

 private:
  struct PdsEvent {
    common::SimTime time = 0;
    uint64_t seq = 0;  // FIFO tie-break
    enum class Kind { kMessage, kTimer } kind = Kind::kMessage;
    size_t target = 0;
    size_t from = 0;        // messages
    common::Bytes payload;
    uint64_t timer_id = 0;  // timers
    uint64_t target_epoch = 0;  // target's life at schedule time
    obs::TraceContext trace;    // sender's span at schedule time
  };
  struct EventLater {
    bool operator()(const PdsEvent& a, const PdsEvent& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void RunUntilParallel(common::SimTime t);

  /// True when `event` is addressed to a live target (online and same
  /// life); otherwise records the drop in stats and returns false.
  bool AdmitEvent(const PdsEvent& event);

  NetConfig config_;
  common::Rng rng_;
  common::SimClock clock_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::string> node_names_;
  std::vector<bool> online_;
  std::vector<uint64_t> epoch_;  // bumped on every crash
  LinkFaultHook* fault_hook_ = nullptr;
  std::priority_queue<PdsEvent, std::vector<PdsEvent>, EventLater> queue_;
  /// Live per-simulator counters (NetStats is the snapshot view). Kept
  /// per-instance so multiple sims in one process — the norm in tests —
  /// never bleed counts into each other; increments are additionally
  /// mirrored to the global registry for process-wide exports.
  struct LiveStats {
    obs::Counter messages_sent;
    obs::Counter messages_delivered;
    obs::Counter messages_dropped;
    obs::Counter bytes_sent;
    obs::Counter partition_drops;
    obs::Counter messages_corrupted;
    obs::Counter retries;
    obs::Counter timers_dropped_offline;
  };
  LiveStats live_stats_;
  std::vector<uint64_t> bytes_received_per_node_;
  uint64_t seq_ = 0;
  bool started_ = false;

  // Parallel-mode state (EnableParallel).
  common::ThreadPool* pool_ = nullptr;
  common::SimTime batch_window_ = 0;
  std::vector<common::Rng> node_rngs_;  // one private stream per node
};

}  // namespace pds2::dml

#endif  // PDS2_DML_NETSIM_H_
