#ifndef PDS2_DML_NETSIM_H_
#define PDS2_DML_NETSIM_H_

#include <cstring>
#include <functional>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/sim_clock.h"
#include "dml/event_wheel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pds2::common {
class ThreadPool;
}  // namespace pds2::common

namespace pds2::dml {

/// Link model of the simulated network.
struct NetConfig {
  common::SimTime base_latency = 10 * common::kMicrosPerMilli;
  common::SimTime latency_jitter = 5 * common::kMicrosPerMilli;
  double drop_rate = 0.0;                    // independent per message
  double bandwidth_bytes_per_sec = 1.0e6;    // serialization delay per link
};

/// Network-wide counters (experiments E2/E3 and the chaos harness read
/// these). Since PR 9 this is a point-in-time *view* materialized by
/// NetSim::stats() from per-partition struct-of-arrays rows (see
/// NetSim::StatRow); the same counts are still mirrored into the global
/// obs::Registry under "dml.net.*" while metrics are enabled.
struct NetStats {
  /// Events popped from the queue (message deliveries + timer fires,
  /// including ones dropped at admission) — the simulator's unit of work,
  /// which is what bench_scale's events/sec throughput counts.
  uint64_t events_processed = 0;
  uint64_t messages_sent = 0;
  uint64_t messages_delivered = 0;
  uint64_t messages_dropped = 0;     // by loss or offline receiver
  uint64_t bytes_sent = 0;
  // Fault-injection visibility (see LinkFaultHook / FaultInjector).
  uint64_t partition_drops = 0;          // blocked by an active partition
  uint64_t messages_corrupted = 0;       // payload flipped in flight
  uint64_t retries = 0;                  // protocol-reported retransmissions
  uint64_t timers_dropped_offline = 0;   // timers lost to an offline node
  /// Bytes received per node — exposes hotspots (the federated server).
  std::vector<uint64_t> bytes_received_per_node;
};

/// Compact message payload with a small-buffer optimization: payloads up
/// to kInlineCapacity bytes live inside the event itself (no heap), larger
/// ones keep their heap buffer. At 10^5-10^6 simulated nodes the event
/// queue holds millions of in-flight messages; small control payloads —
/// gossip rumors, acks, heartbeats — dominate, and storing them inline
/// removes one allocation per send plus the pointer chase per delivery.
class MsgBuf {
 public:
  static constexpr size_t kInlineCapacity = 24;

  MsgBuf() : size_(0) {}
  explicit MsgBuf(common::Bytes bytes) {
    if (bytes.size() <= kInlineCapacity) {
      size_ = static_cast<uint32_t>(bytes.size());
      if (!bytes.empty()) std::memcpy(u_.inline_buf, bytes.data(), size_);
    } else {
      size_ = kHeapTag;
      new (&u_.heap) common::Bytes(std::move(bytes));
    }
  }
  MsgBuf(MsgBuf&& other) noexcept { MoveFrom(other); }
  MsgBuf& operator=(MsgBuf&& other) noexcept {
    if (this != &other) {
      Destroy();
      MoveFrom(other);
    }
    return *this;
  }
  MsgBuf(const MsgBuf&) = delete;
  MsgBuf& operator=(const MsgBuf&) = delete;
  ~MsgBuf() { Destroy(); }

  bool inline_storage() const { return size_ != kHeapTag; }
  size_t size() const {
    return inline_storage() ? size_ : u_.heap.size();
  }
  const uint8_t* data() const {
    return inline_storage() ? u_.inline_buf : u_.heap.data();
  }
  uint8_t* mutable_data() {
    return inline_storage() ? u_.inline_buf : u_.heap.data();
  }

  /// The payload as a Bytes reference for handler delivery: heap payloads
  /// are returned directly, inline payloads are copied into `scratch`
  /// (which reuses its capacity across deliveries — no allocation in
  /// steady state).
  const common::Bytes& AsBytes(common::Bytes& scratch) const {
    if (!inline_storage()) return u_.heap;
    scratch.assign(u_.inline_buf, u_.inline_buf + size_);
    return scratch;
  }

 private:
  static constexpr uint32_t kHeapTag = 0xFFFFFFFFu;

  void Destroy() {
    if (!inline_storage()) std::destroy_at(&u_.heap);
  }
  void MoveFrom(MsgBuf& other) {
    size_ = other.size_;
    if (other.inline_storage()) {
      if (size_ > 0) std::memcpy(u_.inline_buf, other.u_.inline_buf, size_);
    } else {
      new (&u_.heap) common::Bytes(std::move(other.u_.heap));
      std::destroy_at(&other.u_.heap);
    }
    other.size_ = 0;
  }

  union U {
    uint8_t inline_buf[kInlineCapacity];
    common::Bytes heap;
    U() {}
    ~U() {}
  } u_;
  uint32_t size_;  // kHeapTag selects the heap member
};

class NetSim;

/// Per-link fault model consulted on every send. Implementations (e.g.
/// FaultInjector) derive the effect from sim-time alone so that replaying
/// the same seed reproduces the same run. The hook must be deterministic:
/// it is called once per send, in event order, and must not draw from any
/// RNG itself (the simulator makes all randomized decisions from the
/// returned probabilities).
class LinkFaultHook {
 public:
  virtual ~LinkFaultHook() = default;
  struct Effect {
    bool blocked = false;       // partitioned: drop silently at send time
    double extra_drop = 0.0;    // extra independent loss probability
    double latency_mult = 1.0;  // multiplies the delivery latency
    double corrupt_rate = 0.0;  // probability of flipping one payload byte
  };
  virtual Effect OnLink(size_t from, size_t to, common::SimTime now) = 0;
};

/// The facilities a node may use from inside a callback.
class NodeContext {
 public:
  NodeContext(NetSim& sim, size_t self) : sim_(sim), self_(self) {}

  size_t self() const { return self_; }
  common::SimTime Now() const;
  size_t NumNodes() const;
  bool IsOnline(size_t node) const;

  /// Sends a message; it arrives after latency + size/bandwidth, unless
  /// dropped or the receiver is offline at delivery time.
  void Send(size_t to, common::Bytes payload);

  /// Arms a one-shot timer that fires OnTimer(timer_id) after `delay`.
  void SetTimer(common::SimTime delay, uint64_t timer_id);

  /// Takes a node offline / brings it back (see NetSim::SetOnline). Safe
  /// from inside a parallel batch: the transition is buffered and applied
  /// on the merge thread in deterministic event order, after the batch
  /// joins — which is what lets FaultInjector churn a parallel run.
  void SetOnline(size_t node, bool online);

  /// Records one protocol-level retransmission in NetStats::retries —
  /// called by protocols (e.g. the validator sync backoff) so experiment
  /// harnesses can see recovery effort without reaching into the protocol.
  void CountRetry();

  /// The simulator-wide RNG in sequential mode; this node's private stream
  /// in parallel mode (see NetSim::EnableParallel).
  common::Rng& rng();

 private:
  friend class NetSim;

  /// Side effects buffered during a parallel batch by all events of one
  /// partition; the simulator replays them in deterministic event order
  /// after the batch joins. Ops are tagged with the batch-wide index of
  /// the event whose handler emitted them; because a partition processes
  /// its events in batch order, each partition's op list is already
  /// sorted by that tag and the merge is a single linear walk. The trace
  /// context is captured here, on the worker thread, where the sender's
  /// delivery span is still installed — by the time the outbox drains on
  /// the merge thread that context is gone.
  struct Outbox {
    enum class OpKind : uint8_t { kSend, kTimer, kChurn };
    struct Op {
      uint32_t event_index = 0;  // index into the batch's admitted events
      OpKind kind = OpKind::kSend;
      uint32_t node = 0;              // send target / churned node
      bool online = false;            // churn direction
      common::SimTime delay = 0;      // timer delay
      uint64_t timer_id = 0;          // timer id
      common::Bytes payload;          // send payload
      obs::TraceContext trace;
    };
    std::vector<Op> ops;
    uint64_t retries = 0;
    uint32_t current_event = 0;  // set by the drain loop before each handler
    common::Bytes delivery_scratch;  // reused per-partition payload buffer
  };

  NodeContext(NetSim& sim, size_t self, Outbox* outbox)
      : sim_(sim), self_(self), outbox_(outbox) {}

  NetSim& sim_;
  size_t self_;
  Outbox* outbox_ = nullptr;  // non-null only inside a parallel batch
};

/// A protocol endpoint. Implementations: GossipNode, FedServerNode,
/// FedClientNode, and any future aggregation method (the architecture's
/// §II-F flexibility point).
class Node {
 public:
  virtual ~Node() = default;
  /// Called once when the simulation starts.
  virtual void OnStart(NodeContext& ctx) { (void)ctx; }
  /// Called when the node rejoins after churn (SetOnline false -> true).
  /// A crash invalidates every timer the node had armed (counted in
  /// NetStats::timers_dropped_offline), so timer-driven protocols must
  /// re-arm here or stay silent forever. Default: no-op.
  virtual void OnRestart(NodeContext& ctx) { (void)ctx; }
  /// Called when a message addressed to this node is delivered.
  virtual void OnMessage(NodeContext& ctx, size_t from,
                         const common::Bytes& payload) = 0;
  /// Called when a timer armed by this node fires.
  virtual void OnTimer(NodeContext& ctx, uint64_t timer_id) {
    (void)ctx;
    (void)timer_id;
  }
};

/// Deterministic discrete-event network simulator, engineered to hold
/// 10^5-10^6 nodes: the event queue is a hierarchical timer wheel
/// (EventWheel — O(1) schedule/pop), per-node state lives in flat
/// struct-of-arrays vectors (online bits, 32-bit epochs, interned names,
/// RNG streams), message payloads are small-buffer MsgBufs, and the live
/// counters are per-partition cache-line-aligned rows instead of shared
/// atomics. By default single-threaded: events (message deliveries,
/// timers) execute in timestamp order, ties broken by schedule order.
/// Nodes can be taken offline and back online to model churn; messages to
/// offline nodes are lost (no retransmission — protocol robustness under
/// loss is part of what the experiments measure).
///
/// Parallel mode (EnableParallel): events inside a small time window are
/// treated as concurrent and their handlers run on a ThreadPool, grouped
/// by *partition* — a contiguous block of node indices, so one task
/// covers many nodes and the per-node arrays it touches are disjoint
/// cache-line ranges. Determinism is preserved at any pool size: each
/// node draws from its own RNG stream, handlers buffer their
/// sends/timers/churn in per-partition outboxes, and the simulator
/// replays those outboxes (and all shared-RNG draws for drop/jitter) in
/// batch event order after the join. Partition count is a pure function
/// of the node count, never of the pool size.
class NetSim {
 public:
  NetSim(NetConfig config, uint64_t seed);

  /// Pre-sizes every per-node array. Optional; calling it before a large
  /// AddNode loop avoids repeated growth at 10^5-10^6 nodes.
  void Reserve(size_t num_nodes);

  /// Registers a node; returns its index.
  size_t AddNode(std::unique_ptr<Node> node);

  /// Opts into parallel batch execution on `pool`. Must be called before
  /// Start(). Events whose timestamps fall within `batch_window` of the
  /// earliest pending event execute as one concurrent batch stamped at the
  /// batch's start time (0 = only exact timestamp ties batch together).
  /// Results are identical for every pool size, including 1; they differ
  /// from sequential mode only because nodes use private RNG streams.
  void EnableParallel(common::ThreadPool* pool,
                      common::SimTime batch_window = 0);

  /// Delivers OnStart to every node. Call once, after adding all nodes.
  void Start();

  /// Processes events until the clock passes `t` (events at exactly `t`
  /// are processed).
  void RunUntil(common::SimTime t);

  /// Churn control. An offline node receives neither messages nor timers.
  /// A crash (online -> offline) starts a new life for the node: timers
  /// armed — and messages addressed to it — before the crash are dropped
  /// even if they come due after the restart, exactly as a real process
  /// loses its state when it dies. Drops are counted in NetStats
  /// (timers_dropped_offline / messages_dropped). On rejoin the node's
  /// OnRestart hook runs so protocols can re-arm. From inside a parallel
  /// batch use NodeContext::SetOnline, which defers the transition to the
  /// deterministic merge phase.
  void SetOnline(size_t node, bool online);
  bool IsOnline(size_t node) const { return online_[node]; }

  /// Installs a per-link fault model (partitions, asymmetric degradation,
  /// payload corruption). Call before Start(). nullptr disables.
  void SetLinkFaultHook(LinkFaultHook* hook) { fault_hook_ = hook; }

  /// Installs a deterministic periodic tick: `hook(t)` runs with the sim
  /// clock at exactly `t` for t = Now+interval, Now+2*interval, ... — always
  /// on the driving thread, between events (never inside a parallel batch),
  /// ordered so an event stamped at the tick time executes first. Batch
  /// formation is pool-size-independent, so tick placement is bit-identical
  /// at 1 vs N threads — this is what drives health-plane sampling on
  /// 10^5-node runs. The hook must observe, not mutate, the simulation
  /// (snapshot metrics, evaluate rules); interval 0 or a null hook disables.
  void SetTickHook(common::SimTime interval,
                   std::function<void(common::SimTime)> hook);

  common::SimTime Now() const { return clock_.Now(); }
  size_t NumNodes() const { return nodes_.size(); }
  Node* node(size_t i) { return nodes_[i].get(); }

  /// Logical label used by the tracing layer for spans executed on this
  /// node ("validator/2", defaults to "node/<i>"). Callable any time.
  /// Custom names are interned: a node without one costs 4 bytes, not a
  /// std::string, and the default label is formatted on demand.
  void SetNodeName(size_t node, std::string name);
  std::string NodeName(size_t node) const;

  /// Point-in-time copy of the live counters (exact between RunUntil
  /// calls; do not call concurrently with a running parallel batch).
  NetStats stats() const;
  /// The simulator clock, for sim-time spans (PDS2_TRACE_SPAN_SIM).
  const common::SimClock* sim_clock() const { return &clock_; }
  common::Rng& rng() { return rng_; }

  // Internal API used by NodeContext. The trace context rides the message
  // envelope (never the payload): delivery installs it as the remote
  // parent of the receiver's handler span, which is how one marketplace
  // trace stays connected across simulated nodes.
  void SendFrom(size_t from, size_t to, common::Bytes payload,
                obs::TraceContext trace = {});
  void SetTimerFor(size_t node, common::SimTime delay, uint64_t timer_id,
                   obs::TraceContext trace = {});
  common::Rng& RngFor(size_t node);
  void CountRetryFor();

  /// Number of parallel partitions node state is split into — a pure
  /// function of the node count (never of the pool size), so partition
  /// assignment cannot introduce scheduling dependence.
  size_t NumPartitions() const;

 private:
  /// One queued event. Compact on purpose: 32-bit node indices and
  /// epochs (10^6 nodes and restarts fit comfortably), a small-buffer
  /// payload, no heap indirection for control-sized messages. The old
  /// FIFO tie-break sequence number is gone — the timer wheel preserves
  /// schedule order for same-timestamp events structurally.
  struct PdsEvent {
    enum class Kind : uint8_t { kMessage, kTimer } kind = Kind::kMessage;
    uint32_t target = 0;
    uint32_t from = 0;          // messages
    uint32_t target_epoch = 0;  // target's life at schedule time
    uint64_t timer_id = 0;      // timers
    MsgBuf payload;
    obs::TraceContext trace;    // sender's span at schedule time
  };

  /// Cache-line-aligned struct-of-arrays row of the live counters. Row 0
  /// belongs to the sequential loop and the merge phase; in parallel mode
  /// each partition owns row 1 + partition, so hot counters are written
  /// without atomics and without false sharing, and stats() sums the rows.
  struct alignas(64) StatRow {
    uint64_t events_processed = 0;
    uint64_t messages_sent = 0;
    uint64_t messages_delivered = 0;
    uint64_t messages_dropped = 0;
    uint64_t bytes_sent = 0;
    uint64_t partition_drops = 0;
    uint64_t messages_corrupted = 0;
    uint64_t retries = 0;
    uint64_t timers_dropped_offline = 0;
  };

  void RunUntilParallel(common::SimTime t);

  /// Fires the tick hook for every pending tick time strictly before
  /// `bound` (FireTicksBefore) or up to and including it (FireTicksThrough),
  /// advancing the clock to each tick time.
  void FireTicksBefore(common::SimTime bound);
  void FireTicksThrough(common::SimTime bound);

  /// True when `event` is addressed to a live target (online and same
  /// life); otherwise records the drop in `row` and returns false. Reads
  /// only state that is frozen during a parallel batch (churn is
  /// deferred), so partition workers may call it concurrently.
  bool AdmitEvent(const PdsEvent& event, StatRow& row);

  /// Delivery accounting + handler dispatch for one admitted event.
  /// `ctx` carries the partition outbox in parallel mode (nullptr ==
  /// sequential: side effects apply immediately).
  void DispatchEvent(PdsEvent& event, NodeContext& ctx, StatRow& row,
                     common::Bytes& scratch);

  size_t PartitionOf(size_t node) const;

  /// Routes an event to the wheel, or — when a windowed parallel batch
  /// has already advanced the wheel's frontier past `time` — to the small
  /// retro heap. Retro events are strictly earlier than everything left
  /// in the wheel (the wheel's frontier never passes the last RunUntil
  /// bound, and every wheel event at or before that bound was popped), so
  /// the two structures never have to break a timestamp tie against each
  /// other; within the retro heap, ties pop FIFO by insertion sequence.
  void ScheduleEvent(common::SimTime time, PdsEvent event);
  bool NextEventTime(common::SimTime bound, common::SimTime* time);
  bool PopNext(common::SimTime bound, common::SimTime* time,
               PdsEvent* event);

  NetConfig config_;
  common::Rng rng_;
  common::SimClock clock_;
  std::vector<std::unique_ptr<Node>> nodes_;
  /// Interned node names: 0 = default ("node/<i>", formatted on demand),
  /// otherwise 1-based index into name_pool_.
  std::vector<uint32_t> name_ids_;
  std::vector<std::string> name_pool_;
  std::vector<bool> online_;
  std::vector<uint32_t> epoch_;  // bumped on every crash
  LinkFaultHook* fault_hook_ = nullptr;
  /// Periodic observation tick (SetTickHook). next_tick_ is the next time
  /// the hook is due; 0 interval = disabled.
  common::SimTime tick_interval_ = 0;
  common::SimTime next_tick_ = 0;
  std::function<void(common::SimTime)> tick_hook_;
  EventWheel<PdsEvent> queue_;
  /// Live counters, struct-of-arrays by partition (see StatRow). Kept
  /// per-instance so multiple sims in one process — the norm in tests —
  /// never bleed counts into each other; increments are additionally
  /// mirrored to the global registry for process-wide exports while
  /// metrics are enabled.
  std::vector<StatRow> stat_rows_;
  std::vector<uint64_t> bytes_received_per_node_;
  common::Bytes delivery_scratch_;  // sequential-mode payload reuse
  bool started_ = false;

  /// Events scheduled behind the wheel frontier by a windowed parallel
  /// batch (see ScheduleEvent). Min-heap on (time, insertion seq) kept in
  /// a vector with std::push_heap/pop_heap; empty except transiently when
  /// batch_window_ > 0.
  struct RetroEntry {
    common::SimTime time = 0;
    uint64_t seq = 0;
    PdsEvent event;
  };
  struct RetroLater {
    bool operator()(const RetroEntry& a, const RetroEntry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::vector<RetroEntry> retro_;
  uint64_t retro_seq_ = 0;

  // Parallel-mode state (EnableParallel).
  common::ThreadPool* pool_ = nullptr;
  common::SimTime batch_window_ = 0;
  std::vector<common::Rng> node_rngs_;  // one private stream per node
  bool in_batch_ = false;  // guards direct SetOnline during a batch
  // Reused batch scratch (cleared, not reallocated, every batch).
  std::vector<PdsEvent> batch_;
  std::vector<NodeContext::Outbox> partition_outboxes_;
  std::vector<std::vector<uint32_t>> partition_events_;
  std::vector<size_t> active_partitions_;
  std::vector<size_t> partition_cursors_;
};

}  // namespace pds2::dml

#endif  // PDS2_DML_NETSIM_H_
