#include "dml/gossip.h"

#include "common/serial.h"
#include "obs/metrics.h"

namespace pds2::dml {

using common::Bytes;
using common::Reader;
using common::Writer;

namespace {
constexpr uint64_t kPushTimer = 1;
}  // namespace

GossipNode::GossipNode(std::unique_ptr<ml::Model> model, ml::Dataset local_data,
                       GossipConfig config)
    : model_(std::move(model)),
      data_(std::move(local_data)),
      config_(config) {}

void GossipNode::OnStart(NodeContext& ctx) {
  // Desynchronize the first push across nodes.
  ctx.SetTimer(ctx.rng().NextU64(config_.push_interval) + 1, kPushTimer);
}

Bytes GossipNode::EncodeState() const {
  Writer w;
  w.PutDoubleVector(model_->GetParams());
  w.PutU64(age_);
  w.PutU64(data_.Size());
  return w.Take();
}

void GossipNode::LocalUpdate(NodeContext& ctx) {
  if (data_.Size() == 0) return;
  ml::Train(*model_, data_, config_.local_sgd, ctx.rng(), config_.dp);
  ++age_;
}

void GossipNode::OnTimer(NodeContext& ctx, uint64_t timer_id) {
  if (timer_id != kPushTimer) return;
  if (age_ == 0) LocalUpdate(ctx);  // first wake-up: train before pushing

  // Push to `fanout` uniformly random peers (self excluded).
  const size_t n = ctx.NumNodes();
  if (n > 1) {
    for (size_t k = 0; k < config_.fanout; ++k) {
      size_t peer = ctx.rng().NextU64(n - 1);
      if (peer >= ctx.self()) ++peer;
      ctx.Send(peer, EncodeState());
      PDS2_M_COUNT("dml.gossip.pushes", 1);
    }
  }
  ctx.SetTimer(config_.push_interval, kPushTimer);
}

void GossipNode::OnMessage(NodeContext& ctx, size_t /*from*/,
                           const Bytes& payload) {
  Reader r(payload);
  auto params = r.GetDoubleVector();
  auto peer_age = r.GetU64();
  auto peer_samples = r.GetU64();
  if (!params.ok() || !peer_age.ok() || !peer_samples.ok()) return;
  if (params->size() != model_->NumParams()) return;
  (void)peer_samples;

  switch (config_.merge_rule) {
    case GossipMergeRule::kAgeWeighted: {
      // A fresher peer model carries more accumulated updates and gets
      // proportionally more weight (Ormándi et al.).
      const double own_w = static_cast<double>(age_);
      const double peer_w = static_cast<double>(*peer_age);
      if (own_w + peer_w == 0.0) {
        model_->SetParams(*params);
      } else {
        model_->SetParams(ml::WeightedAverage({model_->GetParams(), *params},
                                              {own_w + 1e-9, peer_w + 1e-9}));
      }
      break;
    }
    case GossipMergeRule::kPlainAverage:
      model_->SetParams(ml::Lerp(model_->GetParams(), *params, 0.5));
      break;
    case GossipMergeRule::kOverwrite:
      model_->SetParams(*params);
      break;
  }
  age_ = std::max(age_, *peer_age);
  PDS2_M_COUNT("dml.gossip.merges", 1);

  // Local update on own data after absorbing the peer model.
  LocalUpdate(ctx);
}

}  // namespace pds2::dml
