#include "market/marketplace.h"

#include <algorithm>
#include <optional>
#include <set>

#include "chain/contracts/actor_registry.h"
#include "common/hex.h"
#include "common/serial.h"
#include "crypto/sha256.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tee/enclave.h"
#include "tee/training_kernel.h"

namespace pds2::market {

using common::Bytes;
using common::Reader;
using common::Result;
using common::Status;
using common::ToBytes;
using common::Writer;

namespace {
constexpr uint64_t kDefaultGas = 20'000'000;
}  // namespace

Marketplace::Marketplace(MarketConfig config)
    : config_(std::move(config)), attestation_(config_.seed ^ 0xa77e57) {
  store::ArtifactStoreOptions store_options;
  store_options.dir = config_.artifact_dir;
  auto opened = store::ArtifactStore::Open(store_options);
  if (!opened.ok()) {
    // A broken durable directory must not take the marketplace down:
    // results fall back to in-memory distribution (cannot fail).
    opened = store::ArtifactStore::Open({});
  }
  artifact_store_ = std::move(*opened);

  std::vector<Bytes> validator_keys;
  for (size_t i = 0; i < config_.num_validators; ++i) {
    validators_.push_back(crypto::SigningKey::FromSeed(
        ToBytes("pds2.validator." + std::to_string(config_.seed) + "." +
                std::to_string(i))));
    validator_keys.push_back(validators_.back().PublicKey());
  }
  chain::ChainConfig chain_config;
  chain_config.thread_pool = config_.thread_pool;
  chain_ = std::make_unique<chain::Blockchain>(
      validator_keys, chain::ContractRegistry::CreateDefault(), chain_config);

  // Governance bootstrap: validator 0 holds the funding treasury (enough
  // for ~1e6 actors) and deploys the actor registry.
  const chain::Address v0 =
      chain::AddressFromPublicKey(validators_[0].PublicKey());
  (void)chain_->CreditGenesis(v0, config_.genesis_balance * 1'000'000ULL);
  auto receipt =
      Execute(validators_[0], chain::Address{}, 0, kDefaultGas,
              chain::CallPayload{"actors", 0, "deploy", Bytes{}});
  if (receipt.ok() && receipt->success) {
    actor_registry_instance_ = *chain::InstanceIdFromReceipt(*receipt);
  }
}

void Marketplace::SetHealthSampling(obs::TimeSeries* ts,
                                    obs::HealthMonitor* monitor) {
  health_ts_ = ts;
  health_monitor_ = ts != nullptr ? monitor : nullptr;
}

Status Marketplace::Tick() {
  now_ += config_.block_interval;
  const size_t turn = chain_->Height() % validators_.size();
  Status status;
  {
    // Block production is the proposing validator's work, whoever's span we
    // are inside: the chain.produce_block span carries that validator's
    // identity while staying parented under the submitting actor's stage.
    obs::NodeScope node_scope("validator/", turn);
    auto block = chain_->ProduceBlock(validators_[turn], now_);
    status = block.ok() ? Status::Ok() : block.status();
  }
  if (health_ts_ != nullptr) {
    health_ts_->Sample(obs::WallNowNs(), /*has_sim=*/true, now_);
    if (health_monitor_ != nullptr) health_monitor_->EvaluateLatest();
  }
  return status;
}

Result<chain::Receipt> Marketplace::Execute(const crypto::SigningKey& sender,
                                            const chain::Address& to,
                                            uint64_t value, uint64_t gas_limit,
                                            chain::CallPayload payload) {
  const chain::Address sender_addr =
      chain::AddressFromPublicKey(sender.PublicKey());
  chain::Transaction tx =
      chain::Transaction::Make(sender, chain_->GetNonce(sender_addr), to,
                               value, gas_limit, std::move(payload));
  PDS2_RETURN_IF_ERROR(chain_->SubmitTransaction(tx));
  PDS2_RETURN_IF_ERROR(Tick());
  return chain_->GetReceipt(tx.Id());
}

Status Marketplace::RegisterActor(const crypto::SigningKey& key,
                                  uint64_t roles,
                                  const std::string& metadata) {
  if (actor_registry_instance_ == 0) {
    return Status::Internal("actor registry not deployed");
  }
  Writer args;
  args.PutBytes(key.PublicKey());
  args.PutU64(roles);
  args.PutString(metadata);
  PDS2_ASSIGN_OR_RETURN(
      chain::Receipt receipt,
      Execute(key, chain::Address{}, 0, kDefaultGas,
              chain::CallPayload{"actors", actor_registry_instance_,
                                 "register", args.Take()}));
  if (!receipt.success) return Status::Internal(receipt.error);
  return Status::Ok();
}

ProviderAgent& Marketplace::AddProvider(const std::string& name) {
  providers_.push_back(
      std::make_unique<ProviderAgent>(name, config_.seed + ++actor_seed_));
  ProviderAgent& provider = *providers_.back();
  (void)Execute(validators_[0], provider.address(), config_.genesis_balance,
                kDefaultGas, chain::CallPayload{});
  (void)RegisterActor(provider.key(), chain::contracts::kRoleProvider, name);
  return provider;
}

ExecutorAgent& Marketplace::AddExecutor(const std::string& name) {
  executors_.push_back(std::make_unique<ExecutorAgent>(
      name, config_.seed + ++actor_seed_, attestation_));
  ExecutorAgent& executor = *executors_.back();
  (void)Execute(validators_[0], executor.address(), config_.genesis_balance,
                kDefaultGas, chain::CallPayload{});
  (void)RegisterActor(executor.key(), chain::contracts::kRoleExecutor, name);
  return executor;
}

ConsumerAgent& Marketplace::AddConsumer(const std::string& name) {
  consumers_.push_back(
      std::make_unique<ConsumerAgent>(name, config_.seed + ++actor_seed_));
  ConsumerAgent& consumer = *consumers_.back();
  (void)Execute(validators_[0], consumer.address(), config_.genesis_balance,
                kDefaultGas, chain::CallPayload{});
  (void)RegisterActor(consumer.key(), chain::contracts::kRoleConsumer, name);
  return consumer;
}

Result<common::Bytes> Marketplace::RegisterDatasetNft(
    ProviderAgent& provider, const std::string& dataset_name) {
  if (dataset_registry_instance_ == 0) {
    Writer args;
    args.PutString("pds2-datasets");
    PDS2_ASSIGN_OR_RETURN(
        chain::Receipt receipt,
        Execute(validators_[0], chain::Address{}, 0, kDefaultGas,
                chain::CallPayload{"erc721", 0, "deploy", args.Take()}));
    if (!receipt.success) return Status::Internal(receipt.error);
    PDS2_ASSIGN_OR_RETURN(dataset_registry_instance_,
                          chain::InstanceIdFromReceipt(receipt));
  }

  PDS2_ASSIGN_OR_RETURN(storage::DatasetSummary summary,
                        provider.store().Summary(dataset_name));
  Writer mint;
  mint.PutBytes(summary.commitment);
  mint.PutBytes(summary.metadata.Serialize());
  PDS2_ASSIGN_OR_RETURN(
      chain::Receipt receipt,
      Execute(provider.key(), chain::Address{}, 0, kDefaultGas,
              chain::CallPayload{"erc721", dataset_registry_instance_, "mint",
                                 mint.Take()}));
  if (!receipt.success) {
    return Status::Internal("dataset NFT mint failed: " + receipt.error);
  }
  return summary.commitment;
}

Result<chain::Address> Marketplace::DatasetOwner(
    const common::Bytes& commitment) const {
  if (dataset_registry_instance_ == 0) {
    return Status::NotFound("no datasets registered yet");
  }
  Writer q;
  q.PutBytes(commitment);
  return chain_->Query("erc721", dataset_registry_instance_, "owner_of",
                       q.Take());
}

Result<ml::Vec> Marketplace::FetchResult(const RunReport& report) const {
  PDS2_ASSIGN_OR_RETURN(Bytes blob,
                        artifact_store_->Get(report.result_address));
  if (crypto::Sha256::Hash(blob) != report.result_hash) {
    return Status::Corruption(
        "stored result does not match the on-chain result hash");
  }
  Reader r(blob);
  PDS2_ASSIGN_OR_RETURN(ml::Vec params, r.GetDoubleVector());
  return params;
}

Result<store::Advert> Marketplace::AdvertiseDataset(
    ProviderAgent& provider, const std::string& dataset_name, uint64_t price) {
  PDS2_ASSIGN_OR_RETURN(storage::DatasetSummary summary,
                        provider.store().Summary(dataset_name));
  store::Advert advert;
  advert.content_hash = summary.commitment;
  advert.provider = provider.name();
  advert.tags = summary.metadata.types;
  advert.size_bytes = summary.num_records;
  advert.price = price;
  discovery_index_.Upsert(advert);
  PDS2_M_COUNT("market.dataset_adverts", 1);
  return advert;
}

// Pays the reduced reuse fee for a memoized artifact through the ledger.
// The split mirrors finalize: the executor share (current spec's permille)
// divides evenly among the producing executors, the remainder goes to the
// producing providers by their recorded weights. Every token moves as a
// plain ledger transfer from the consumer, so conservation is inherited
// from the chain; integer-division dust simply never leaves the consumer.
Status Marketplace::SettleReuseFee(ConsumerAgent& consumer,
                                   const store::MemoEntry& entry,
                                   const WorkloadSpec& spec,
                                   RunReport& report) {
  const uint64_t fee = spec.reward_pool * config_.reuse_fee_permille / 1000;
  if (fee == 0) return Status::Ok();

  auto resolve =
      [&](const store::MemoBeneficiary& b) -> std::optional<chain::Address> {
    if (b.role == store::MemoBeneficiary::Role::kProvider) {
      for (auto& p : providers_) {
        if (p->name() == b.account) return p->address();
      }
    } else {
      for (auto& e : executors_) {
        if (e->name() == b.account) return e->address();
      }
    }
    return std::nullopt;
  };

  uint64_t executor_count = 0;
  uint64_t provider_weight_total = 0;
  for (const store::MemoBeneficiary& b : entry.beneficiaries) {
    if (b.role == store::MemoBeneficiary::Role::kExecutor) {
      executor_count++;
    } else {
      provider_weight_total += b.weight;
    }
  }
  const uint64_t executor_pool =
      provider_weight_total == 0
          ? fee
          : fee * spec.executor_reward_permille / 1000;
  const uint64_t provider_pool = fee - executor_pool;

  for (const store::MemoBeneficiary& b : entry.beneficiaries) {
    uint64_t amount = 0;
    if (b.role == store::MemoBeneficiary::Role::kExecutor) {
      if (executor_count > 0) amount = executor_pool / executor_count;
    } else if (provider_weight_total > 0) {
      amount = static_cast<uint64_t>(
          static_cast<unsigned __int128>(provider_pool) * b.weight /
          provider_weight_total);
    }
    if (amount == 0) continue;
    std::optional<chain::Address> to = resolve(b);
    if (!to.has_value()) continue;  // beneficiary left; share stays unpaid
    obs::NodeScope scope("consumer/", consumer.name());
    PDS2_ASSIGN_OR_RETURN(
        chain::Receipt receipt,
        Execute(consumer.key(), *to, amount, kDefaultGas, chain::CallPayload{}));
    if (!receipt.success) {
      return Status::Internal("reuse fee transfer failed: " + receipt.error);
    }
    report.reuse_fee += amount;
    if (b.role == store::MemoBeneficiary::Role::kExecutor) {
      report.executor_rewards[b.account] += amount;
    } else {
      report.provider_rewards[b.account] += amount;
    }
  }
  return Status::Ok();
}

Result<RunReport> Marketplace::RunWorkload(ConsumerAgent& consumer,
                                           const WorkloadSpec& spec,
                                           const RunOptions& options) {
  PDS2_RETURN_IF_ERROR(spec.Validate());
  if (executors_.empty()) {
    return Status::FailedPrecondition("no executors registered");
  }

  // The whole lifecycle plus one span per Fig. 2 stage, all against the
  // marketplace's simulated clock (now_ advances one block interval per
  // produced block). Stage spans are closed explicitly at each phase
  // boundary; an early return ends whichever are still open.
  obs::ScopedSpan run_span("market.run_workload", &now_);
  PDS2_M_COUNT("market.workloads_started", 1);

  RunReport report;
  const uint64_t gas_before = chain_->TotalGasUsed();
  const uint64_t height_before = chain_->Height();
  auto audit = [&report](std::string line) {
    report.audit_log.push_back(std::move(line));
  };
  // Execute() with the acting role's node identity installed, so the
  // chain.submit_tx span (and through its link, the block that executes
  // the tx) is attributed to the consumer/provider/executor that acted —
  // Tick() re-labels the production itself with the proposing validator.
  auto execute_as = [&](const char* role, const std::string& actor,
                        const crypto::SigningKey& sender,
                        const chain::Address& to, uint64_t value,
                        uint64_t gas_limit, chain::CallPayload payload) {
    obs::NodeScope scope(role, actor);
    return Execute(sender, to, value, gas_limit, std::move(payload));
  };

  // --- Phase 1 (Fig. 2): consumer submits the workload specification. ----
  obs::ScopedSpan span_post("market.post", &now_);
  Writer deploy_args;
  deploy_args.PutBytes(spec.SpecHash());
  deploy_args.PutU64(spec.reward_pool);
  deploy_args.PutU64(spec.min_providers);
  deploy_args.PutU64(spec.max_providers);
  deploy_args.PutU64(spec.executor_reward_permille);
  const common::SimTime deadline =
      spec.deadline == 0 ? now_ + 3600 * common::kMicrosPerSecond
                         : spec.deadline;
  deploy_args.PutU64(deadline);
  deploy_args.PutString("gossip");
  deploy_args.PutU64(spec.executor_stake);
  PDS2_ASSIGN_OR_RETURN(
      chain::Receipt deploy_receipt,
      execute_as("consumer/", consumer.name(), consumer.key(),
                 chain::Address{}, spec.reward_pool, kDefaultGas,
                 chain::CallPayload{"workload", 0, "deploy",
                                    deploy_args.Take()}));
  if (!deploy_receipt.success) {
    return Status::Internal("workload deploy failed: " + deploy_receipt.error);
  }
  PDS2_ASSIGN_OR_RETURN(report.instance,
                        chain::InstanceIdFromReceipt(deploy_receipt));
  audit("deployed workload '" + spec.name + "' as instance " +
        std::to_string(report.instance) + ", escrow " +
        std::to_string(spec.reward_pool));

  // Abort helper used on every failure past this point. The contract only
  // lets a consumer reclaim a *running* workload's escrow past its
  // deadline (executors who did honest work must not be rug-pulled), so if
  // the immediate abort is refused the marketplace waits the deadline out
  // in simulated time and claims the refund then — every failed run ends
  // refunded, never with tokens stranded in the contract.
  auto abort_and_fail = [&](const Status& cause) -> Status {
    PDS2_M_COUNT("market.workloads_aborted", 1);
    auto aborted = execute_as(
        "consumer/", consumer.name(), consumer.key(), chain::Address{}, 0,
        kDefaultGas,
        chain::CallPayload{"workload", report.instance, "abort", {}});
    if (aborted.ok() && !aborted->success && now_ <= deadline) {
      now_ = deadline;  // the next block's timestamp lands past the deadline
      (void)execute_as(
          "consumer/", consumer.name(), consumer.key(), chain::Address{}, 0,
          kDefaultGas,
          chain::CallPayload{"workload", report.instance, "abort", {}});
      audit("abort deferred to the workload deadline; escrow reclaimed");
    }
    return cause;
  };

  span_post.End();

  // --- Phase 2: storage subsystems match data; providers decide. ---------
  obs::ScopedSpan span_match("market.match", &now_);
  struct Participation {
    ProviderAgent* provider;
    storage::DatasetSummary offer;
    ExecutorAgent* executor;
  };
  std::vector<Participation> participations;
  // Discovery-assisted matching: when providers have gossiped dataset
  // adverts, the ones whose advertised type tags cover the spec's
  // requirement are consulted first — the consumer asks the network who
  // claims to have the data before knocking on every door. An empty index
  // degrades to the plain registration-order walk.
  std::vector<ProviderAgent*> match_order;
  if (discovery_index_.size() > 0 && !spec.requirement.required_types.empty()) {
    std::set<std::string> advertised;
    for (const std::string& type : spec.requirement.required_types) {
      for (const store::Advert& ad : discovery_index_.FindByTag(type)) {
        advertised.insert(ad.provider);
      }
    }
    for (auto& provider : providers_) {
      if (advertised.count(provider->name()) > 0) {
        match_order.push_back(provider.get());
      }
    }
    for (auto& provider : providers_) {
      if (advertised.count(provider->name()) == 0) {
        match_order.push_back(provider.get());
      }
    }
    if (!advertised.empty()) {
      audit("discovery index ranked " + std::to_string(advertised.size()) +
            " advertised providers first");
    }
  } else {
    for (auto& provider : providers_) match_order.push_back(provider.get());
  }
  for (ProviderAgent* provider : match_order) {
    if (participations.size() >=
        static_cast<size_t>(spec.max_providers)) {
      break;
    }
    auto offer = [&] {
      obs::NodeScope scope("provider/", provider->name());
      obs::ScopedSpan span("market.provider.evaluate", &now_);
      return provider->EvaluateWorkload(config_.ontology, spec);
    }();
    if (!offer.has_value()) continue;
    participations.push_back({provider, std::move(*offer), nullptr});
  }
  audit(std::to_string(participations.size()) + " providers accepted");
  if (participations.size() < spec.min_providers) {
    return abort_and_fail(Status::FailedPrecondition(
        "only " + std::to_string(participations.size()) +
        " providers accepted (need " + std::to_string(spec.min_providers) +
        "); workload aborted and escrow refunded"));
  }

  span_match.End();

  // --- Substitution probe (store/memo.h): the matched inputs plus the
  // training fingerprint and the enclave code measurement fully determine
  // the result, so if the network already computed this exact function the
  // consumer fetches the attested artifact instead of paying for training.
  // The artifact is trusted only after it verifies against the *chain*:
  // the source workload's anchored artifact address and agreed result
  // hash. Any verification failure falls back to an honest recompute.
  {
    std::vector<Bytes> input_hashes;
    for (const Participation& p : participations) {
      input_hashes.push_back(p.offer.commitment);
    }
    report.memo_key = store::ComputeMemoKey(
        tee::MeasureKernel("pds2.training", tee::TrainingKernel::kVersion),
        std::move(input_hashes), spec.TrainingFingerprint());
  }
  const store::MemoEntry* memo_hit =
      config_.enable_substitution ? memo_index_.Lookup(report.memo_key)
                                  : nullptr;
  if (memo_hit != nullptr) {
    obs::ScopedSpan span_subst("market.substitute", &now_);
    PDS2_M_COUNT("market.substitution_probes_hit", 1);
    auto verified_fetch = [&]() -> Result<Bytes> {
      PDS2_ASSIGN_OR_RETURN(
          Bytes anchored,
          chain_->Query("workload", memo_hit->source_instance, "artifact",
                        {}));
      if (anchored != memo_hit->artifact_address) {
        return Status::Corruption("memo entry disagrees with chain anchor");
      }
      PDS2_ASSIGN_OR_RETURN(
          Bytes agreed_hash,
          chain_->Query("workload", memo_hit->source_instance, "result", {}));
      if (agreed_hash != memo_hit->result_hash) {
        return Status::Corruption("memo result hash disagrees with chain");
      }
      PDS2_ASSIGN_OR_RETURN(Bytes blob,
                            artifact_store_->Get(memo_hit->artifact_address));
      if (crypto::Sha256::Hash(blob) != memo_hit->result_hash) {
        return Status::Corruption("fetched artifact fails hash verification");
      }
      return blob;
    };
    auto blob = verified_fetch();
    if (blob.ok()) {
      Reader blob_reader(*blob);
      auto params = blob_reader.GetDoubleVector();
      if (params.ok()) {
        audit("memo key hit: artifact " +
              common::HexPrefix(memo_hit->artifact_address, 12) +
              " verified against the anchor of instance " +
              std::to_string(memo_hit->source_instance));
        // Release this run's escrow (still in Accepting, so the abort
        // refunds immediately), then settle the reduced reuse fee.
        (void)execute_as(
            "consumer/", consumer.name(), consumer.key(), chain::Address{}, 0,
            kDefaultGas,
            chain::CallPayload{"workload", report.instance, "abort", {}});
        PDS2_RETURN_IF_ERROR(
            SettleReuseFee(consumer, *memo_hit, spec, report));
        report.substituted = true;
        report.reused_from_instance = memo_hit->source_instance;
        report.result_hash = memo_hit->result_hash;
        report.result_address = memo_hit->artifact_address;
        report.model_params = *params;
        report.num_providers = participations.size();
        report.gas_used = chain_->TotalGasUsed() - gas_before;
        report.blocks_produced = chain_->Height() - height_before;
        audit("substituted memoized result; reuse fee " +
              std::to_string(report.reuse_fee) + " of pool " +
              std::to_string(spec.reward_pool) + " settled");
        PDS2_M_COUNT("market.workloads_substituted", 1);
        return report;
      }
      audit("substitution declined: " + params.status().ToString());
    } else {
      audit("substitution declined: " + blob.status().ToString());
      PDS2_M_COUNT("market.substitution_verify_failures", 1);
    }
  }

  // --- Phase 3: providers pick executors, verify attestation, send data.
  // Providers with their own hardware (Fig. 3) pin their preferred
  // executor; the rest are assigned round-robin across third parties. An
  // executor that crashes during setup or fails attestation is dropped and
  // its providers re-assigned to surviving executors — their sealed shards
  // simply go to a different attested enclave; a dead compute node costs
  // its own reward, not the workload.
  obs::ScopedSpan span_attest("market.attest_seal", &now_);
  std::map<ExecutorAgent*, std::vector<SealedContribution>> per_executor;
  std::set<ExecutorAgent*> failed_executors;
  auto drop_executor = [&](ExecutorAgent* executor, const Status& cause) {
    failed_executors.insert(executor);
    per_executor.erase(executor);
    report.dropped_executors.push_back(executor->name());
    PDS2_M_COUNT("market.executors_dropped", 1);
    audit("dropped executor " + executor->name() + ": " + cause.ToString());
  };
  for (size_t i = 0; i < participations.size(); ++i) {
    Participation& p = participations[i];
    // Candidate order: the pinned executor first (if any), then round-robin
    // over the full set so a drop falls back to the next healthy one.
    std::vector<ExecutorAgent*> candidates;
    if (!p.provider->preferred_executor().empty()) {
      for (auto& candidate : executors_) {
        if (candidate->name() == p.provider->preferred_executor()) {
          candidates.push_back(candidate.get());
          break;
        }
      }
    }
    for (size_t k = 0; k < executors_.size(); ++k) {
      ExecutorAgent* candidate = executors_[(i + k) % executors_.size()].get();
      if (candidates.empty() || candidates[0] != candidate) {
        candidates.push_back(candidate);
      }
    }
    p.executor = nullptr;
    for (ExecutorAgent* candidate : candidates) {
      if (failed_executors.count(candidate) > 0) continue;
      if (per_executor.find(candidate) == per_executor.end()) {
        Status setup = [&] {
          obs::NodeScope scope("executor/", candidate->name());
          obs::ScopedSpan span("market.executor.setup", &now_);
          return candidate->Setup(spec);
        }();
        if (!setup.ok()) {
          drop_executor(candidate, setup);
          continue;
        }
        per_executor[candidate] = {};
      }
      const tee::AttestationQuote quote = candidate->QuoteFor(report.instance);
      auto contribution = [&] {
        obs::NodeScope scope("provider/", p.provider->name());
        obs::ScopedSpan span("market.provider.prepare", &now_);
        return p.provider->PrepareContribution(
            p.offer, spec, report.instance, quote,
            attestation_.RootPublicKey(), candidate->enclave().Measurement(),
            candidate->key().PublicKey());
      }();
      if (!contribution.ok()) {
        // The provider refused to release data: the quote did not verify.
        // The provider's trust decision is authoritative (§II-E) — the
        // executor is dropped, and this provider tries the next one.
        drop_executor(candidate, contribution.status());
        continue;
      }
      auto loaded = [&] {
        obs::NodeScope scope("executor/", candidate->name());
        obs::ScopedSpan span("market.executor.accept", &now_);
        return candidate->AcceptContribution(*contribution);
      }();
      if (!loaded.ok()) {
        // In-enclave validation (§IV-C) may reject the data; the provider
        // is excluded rather than the workload failing.
        audit("excluded " + p.provider->name() + ": " +
              loaded.status().ToString());
        break;
      }
      per_executor[candidate].push_back(std::move(*contribution));
      p.executor = candidate;
      break;
    }
  }
  participations.erase(
      std::remove_if(participations.begin(), participations.end(),
                     [&](const Participation& p) {
                       return p.executor == nullptr ||
                              failed_executors.count(p.executor) > 0;
                     }),
      participations.end());
  if (participations.size() < spec.min_providers) {
    return abort_and_fail(Status::FailedPrecondition(
        failed_executors.size() == executors_.size()
            ? "no executor passed attestation and setup"
            : "too few providers passed in-enclave validation"));
  }
  // Executors whose every assigned provider was excluded sit this one out.
  for (auto it = per_executor.begin(); it != per_executor.end();) {
    it = it->second.empty() ? per_executor.erase(it) : std::next(it);
  }
  report.num_providers = participations.size();
  report.num_executors = per_executor.size();
  audit("data sealed to " + std::to_string(per_executor.size()) +
        " attested executors");
  span_attest.End();

  // --- Phase 4: executors register participation (certs go on-chain). ----
  obs::ScopedSpan span_register("market.register_executors", &now_);
  for (auto& [executor, contributions] : per_executor) {
    Writer args;
    args.PutBytes(executor->key().PublicKey());
    args.PutU32(static_cast<uint32_t>(contributions.size()));
    for (const auto& c : contributions) args.PutBytes(c.cert.Serialize());
    PDS2_ASSIGN_OR_RETURN(
        chain::Receipt receipt,
        execute_as("executor/", executor->name(), executor->key(),
                   chain::Address{}, spec.executor_stake, kDefaultGas,
                   chain::CallPayload{"workload", report.instance,
                                      "register_executor", args.Take()}));
    if (!receipt.success) {
      return abort_and_fail(
          Status::Internal("executor registration failed: " + receipt.error));
    }
  }
  audit(spec.executor_stake > 0
            ? "all executor registrations validated on-chain, " +
                  std::to_string(spec.executor_stake) + " tokens bonded each"
            : "all executor registrations validated on-chain");
  span_register.End();

  // --- Phase 5: governance starts the workload. ---------------------------
  obs::ScopedSpan span_start("market.start", &now_);
  PDS2_ASSIGN_OR_RETURN(
      chain::Receipt start_receipt,
      execute_as("consumer/", consumer.name(), consumer.key(),
                 chain::Address{}, 0, kDefaultGas,
                 chain::CallPayload{"workload", report.instance, "start", {}}));
  if (!start_receipt.success) {
    return abort_and_fail(Status::Internal(start_receipt.error));
  }
  audit("workload started");
  span_start.End();

  // Runtime attestation re-audit (paper §II-D): now that executors are
  // bonded, the consumer re-verifies each enclave's quote. A quote that was
  // valid at sealing time but fails now (rollback, compromise) is reported
  // on-chain — the report converts the executor's bond into a slash at
  // settlement, which is exactly what the bond exists for.
  for (auto& [executor, contributions] : per_executor) {
    (void)contributions;
    const tee::AttestationQuote audit_quote =
        executor->AuditQuote(report.instance);
    const Status verified =
        tee::VerifyQuote(audit_quote, attestation_.RootPublicKey(),
                         executor->enclave().Measurement());
    if (verified.ok()) continue;
    Writer fault_args;
    fault_args.PutBytes(executor->address());
    auto reported = execute_as(
        "consumer/", consumer.name(), consumer.key(), chain::Address{}, 0,
        kDefaultGas,
        chain::CallPayload{"workload", report.instance, "report_attestation",
                           fault_args.Take()});
    if (reported.ok() && reported->success) {
      PDS2_M_COUNT("market.attestation_faults_reported", 1);
      audit("runtime attestation audit failed for " + executor->name() +
            "; fault reported on-chain");
    }
  }

  obs::ScopedSpan span_train("market.train_aggregate", &now_);
  // --- Phase 6: in-enclave training + decentralized aggregation. An
  // executor that crashes here is already registered on-chain: it is
  // dropped from the run (its reward share passes to the survivors at
  // finalize) and the remaining quorum carries the workload. Only losing
  // the whole quorum aborts.
  std::vector<ExecutorAgent*> active;
  for (auto& [executor, _] : per_executor) active.push_back(executor);
  std::sort(active.begin(), active.end(),
            [](const ExecutorAgent* a, const ExecutorAgent* b) {
              return a->name() < b->name();  // canonical order
            });
  // Registration-time roster, kept for the reward report (phase 8):
  // executors dropped from here on still appear there, with 0 tokens.
  const std::vector<ExecutorAgent*> registered = active;
  auto drop_lost = [&](ExecutorAgent* executor, const Status& cause) {
    report.dropped_executors.push_back(executor->name());
    PDS2_M_COUNT("market.executors_dropped", 1);
    audit("lost executor " + executor->name() + ": " + cause.ToString());
  };
  std::vector<std::pair<ml::Vec, uint64_t>> states;
  {
    std::vector<ExecutorAgent*> live;
    for (ExecutorAgent* executor : active) {
      auto trained = [&] {
        obs::NodeScope scope("executor/", executor->name());
        obs::ScopedSpan span("market.executor.train", &now_);
        return executor->Train();
      }();
      if (!trained.ok()) {
        drop_lost(executor, trained.status());
        continue;
      }
      auto params = executor->Params();
      auto samples = executor->SampleCount();
      if (!params.ok() || !samples.ok()) {
        drop_lost(executor,
                  params.ok() ? samples.status() : params.status());
        continue;
      }
      live.push_back(executor);
      states.emplace_back(std::move(*params), *samples);
    }
    active = std::move(live);
  }
  if (active.empty()) {
    return abort_and_fail(Status::FailedPrecondition(
        "every executor crashed before training completed"));
  }
  ml::Vec final_params;
  if (spec.aggregation == AggregationMethod::kTeeStar && active.size() > 1) {
    // Star topology: the first (canonical) live executor's enclave
    // aggregates; everyone else adopts the distributed result. If the
    // aggregator dies, the next live executor takes over the star center.
    while (!active.empty()) {
      auto merged = [&] {
        obs::NodeScope scope("executor/", active[0]->name());
        obs::ScopedSpan span("market.executor.merge", &now_);
        return active[0]->MergeAll(states);
      }();
      if (merged.ok()) {
        final_params = *merged;
        break;
      }
      drop_lost(active[0], merged.status());
      active.erase(active.begin());
    }
    if (active.empty()) {
      return abort_and_fail(Status::FailedPrecondition(
          "every executor crashed during aggregation"));
    }
    uint64_t total_samples = 0;
    for (const auto& [_, samples] : states) total_samples += samples;
    std::vector<ExecutorAgent*> adopted_ok = {active[0]};
    for (size_t i = 1; i < active.size(); ++i) {
      auto adopted = [&] {
        obs::NodeScope scope("executor/", active[i]->name());
        obs::ScopedSpan span("market.executor.merge", &now_);
        return active[i]->MergeAll({{final_params, total_samples}});
      }();
      if (!adopted.ok()) {
        drop_lost(active[i], adopted.status());
        continue;
      }
      adopted_ok.push_back(active[i]);
    }
    audit("aggregation: TEE-hosted star via " + active[0]->name());
    active = std::move(adopted_ok);
  } else {
    // Deterministic all-reduce: every executor merges the same state list.
    std::vector<ExecutorAgent*> merged_ok;
    for (ExecutorAgent* executor : active) {
      auto merged = [&] {
        obs::NodeScope scope("executor/", executor->name());
        obs::ScopedSpan span("market.executor.merge", &now_);
        return executor->MergeAll(states);
      }();
      if (!merged.ok()) {
        drop_lost(executor, merged.status());
        continue;
      }
      final_params = *merged;
      merged_ok.push_back(executor);
    }
    if (merged_ok.empty()) {
      return abort_and_fail(Status::FailedPrecondition(
          "every executor crashed during aggregation"));
    }
    active = std::move(merged_ok);
  }
  Writer params_writer;
  params_writer.PutDoubleVector(final_params);
  const Bytes result_blob = params_writer.Take();
  const Bytes result_hash = crypto::Sha256::Hash(result_blob);
  // Executors publish the result blob off-chain; only its hash goes on
  // the ledger (the chain "is not used for storing any ... code or data").
  // The content-addressed store chunks and dedups it, and the address is
  // anchored on-chain at finalize for substitution consumers.
  PDS2_ASSIGN_OR_RETURN(report.result_address,
                        artifact_store_->Put(result_blob));
  audit("decentralized aggregation complete; result " +
        common::HexPrefix(result_hash, 12));
  span_train.End();

  obs::ScopedSpan span_vote("market.vote", &now_);
  // --- Phase 7: every surviving executor puts its vote on record (the
  // contract accepts late votes after the quorum completes the workload,
  // because finalize pays only executors whose vote matches the result).
  // An executor that crashes before voting forfeits its reward share; only
  // an unattainable quorum aborts the run.
  for (ExecutorAgent* executor : active) {
    if (executor->injected_fault() == ExecutorFault::kVote) {
      drop_lost(executor,
                Status::Unavailable("crashed before submitting its result"));
      continue;
    }
    // Byzantine voters commit on-chain to a result they never computed (or
    // computed from a tampered model update). The commitment is what makes
    // the fraud provable: finalize compares every recorded vote against
    // the agreed result and slashes the minority cheaters' bonds.
    Bytes vote_hash = result_hash;
    if (executor->injected_fault() == ExecutorFault::kWrongVote ||
        executor->injected_fault() == ExecutorFault::kTamperedUpdate) {
      Bytes tampered = result_hash;
      common::Append(tampered,
                     ToBytes(executor->injected_fault() ==
                                     ExecutorFault::kWrongVote
                                 ? "wrong-vote"
                                 : "tampered-update"));
      vote_hash = crypto::Sha256::Hash(tampered);
      audit("executor " + executor->name() +
            " voted for a divergent result (injected fraud)");
    }
    Writer args;
    args.PutBytes(vote_hash);
    PDS2_ASSIGN_OR_RETURN(
        chain::Receipt receipt,
        execute_as("executor/", executor->name(), executor->key(),
                   chain::Address{}, 0, kDefaultGas,
                   chain::CallPayload{"workload", report.instance,
                                      "submit_result", args.Take()}));
    if (!receipt.success) {
      drop_lost(executor, Status::Internal("result submission failed: " +
                                           receipt.error));
    }
  }
  auto agreed = chain_->Query("workload", report.instance, "result", {});
  if (!agreed.ok() || *agreed != result_hash) {
    return abort_and_fail(Status::Internal(
        "no on-chain result agreement reached (quorum unattainable)"));
  }
  report.result_hash = result_hash;
  report.model_params = final_params;
  audit("executor quorum agreed on the result");
  span_vote.End();

  // --- Phase 8: consumer finalizes; contract pays out. ---------------------
  obs::ScopedSpan span_finalize("market.finalize", &now_);
  std::map<std::string, uint64_t> balances_before;
  for (const auto& p : participations) {
    balances_before[p.provider->name()] =
        chain_->GetBalance(p.provider->address());
  }
  for (ExecutorAgent* executor : registered) {
    balances_before[executor->name()] = chain_->GetBalance(executor->address());
  }

  Writer fin;
  fin.PutU32(static_cast<uint32_t>(participations.size()));
  std::vector<std::pair<std::string, uint64_t>> settled_weights;
  for (const auto& p : participations) {
    uint64_t weight = p.offer.num_records;
    if (spec.reward_policy == RewardPolicy::kShapley) {
      auto it = options.provider_weights.find(p.provider->name());
      if (it != options.provider_weights.end()) weight = it->second;
    }
    fin.PutBytes(p.provider->address());
    fin.PutU64(std::max<uint64_t>(1, weight));
    settled_weights.emplace_back(p.provider->name(),
                                 std::max<uint64_t>(1, weight));
  }
  const uint64_t burned_before = chain_->BurnedTotal();
  PDS2_ASSIGN_OR_RETURN(
      chain::Receipt fin_receipt,
      execute_as("consumer/", consumer.name(), consumer.key(),
                 chain::Address{}, 0, kDefaultGas,
                 chain::CallPayload{"workload", report.instance, "finalize",
                                    fin.Take()}));
  if (!fin_receipt.success) {
    return abort_and_fail(Status::Internal(fin_receipt.error));
  }
  report.tokens_burned = chain_->BurnedTotal() - burned_before;
  // Name the slashed executors from the settlement's audit events.
  for (const chain::Event& event : fin_receipt.events) {
    if (event.name != "ExecutorSlashed") continue;
    Reader ev(event.data);
    auto addr = ev.GetBytes();
    auto stake = ev.GetU64();
    if (!addr.ok() || !stake.ok()) continue;
    for (ExecutorAgent* executor : registered) {
      if (executor->address() == *addr) {
        report.slashed_executors[executor->name()] = *stake;
        PDS2_M_COUNT("market.executors_slashed", 1);
        audit("slashed executor " + executor->name() + ": bond of " +
              std::to_string(*stake) + " forfeited (half to consumer, half "
              "burned)");
      }
    }
  }
  for (const auto& p : participations) {
    report.provider_rewards[p.provider->name()] =
        chain_->GetBalance(p.provider->address()) -
        balances_before[p.provider->name()];
  }
  for (ExecutorAgent* executor : registered) {
    uint64_t delta = chain_->GetBalance(executor->address()) -
                     balances_before[executor->name()];
    // An honest executor's balance delta includes its refunded bond; the
    // report keeps "rewards" meaning rewards.
    if (report.slashed_executors.count(executor->name()) == 0) {
      delta -= std::min(delta, spec.executor_stake);
    }
    report.executor_rewards[executor->name()] = delta;
  }
  audit("escrow discharged; rewards distributed");
  span_finalize.End();

  // --- Publication: pin the artifact, anchor its address on-chain, and
  // memoize the computation so future identical workloads substitute
  // instead of retraining. Publication is best-effort — the workload is
  // already settled, so a failure here costs only future cache hits.
  {
    obs::ScopedSpan span_publish("market.publish_artifact", &now_);
    (void)artifact_store_->AddRoot(report.result_address);
    Writer anchor_args;
    anchor_args.PutBytes(report.result_address);
    anchor_args.PutBytes(result_hash);
    auto anchored = execute_as(
        "consumer/", consumer.name(), consumer.key(), chain::Address{}, 0,
        kDefaultGas,
        chain::CallPayload{"workload", report.instance, "anchor_artifact",
                           anchor_args.Take()});
    if (anchored.ok() && anchored->success) {
      audit("artifact " + common::HexPrefix(report.result_address, 12) +
            " anchored on-chain");
      store::MemoEntry entry;
      entry.memo_key = report.memo_key;
      entry.artifact_address = report.result_address;
      entry.result_hash = result_hash;
      entry.source_instance = report.instance;
      for (ExecutorAgent* executor : active) {
        entry.beneficiaries.push_back(
            {executor->name(), store::MemoBeneficiary::Role::kExecutor, 1});
      }
      for (const auto& [provider_name, weight] : settled_weights) {
        entry.beneficiaries.push_back(
            {provider_name, store::MemoBeneficiary::Role::kProvider, weight});
      }
      if (memo_index_.Insert(std::move(entry))) {
        PDS2_M_COUNT("market.memo_entries_published", 1);
      }
      store::Advert advert;
      advert.content_hash = report.result_address;
      advert.provider = consumer.name();
      advert.tags = {"model:" + spec.model_kind,
                     "memo:" + common::HexEncode(report.memo_key)};
      advert.size_bytes = result_blob.size();
      advert.price = spec.reward_pool * config_.reuse_fee_permille / 1000;
      discovery_index_.Upsert(advert);
    }
  }

  report.gas_used = chain_->TotalGasUsed() - gas_before;
  report.blocks_produced = chain_->Height() - height_before;
  PDS2_M_COUNT("market.workloads_completed", 1);
  // Settlement-stage counters (slashes, completion) land after the last
  // block's sample; one closing sample makes them visible to alert rules.
  if (health_ts_ != nullptr) {
    health_ts_->Sample(obs::WallNowNs(), /*has_sim=*/true, now_);
    if (health_monitor_ != nullptr) health_monitor_->EvaluateLatest();
  }
  return report;
}

}  // namespace pds2::market
