#include "market/actors.h"

#include "common/serial.h"
#include "crypto/sha256.h"
#include "tee/training_kernel.h"

namespace pds2::market {

using common::Bytes;
using common::Reader;
using common::Result;
using common::Status;
using common::ToBytes;
using common::Writer;

// ---------------------------------------------------------------------------
// ProviderAgent

ProviderAgent::ProviderAgent(std::string name, uint64_t seed)
    : name_(std::move(name)),
      key_(crypto::SigningKey::FromSeed(
          ToBytes("pds2.provider." + name_ + "." + std::to_string(seed)))),
      store_(crypto::Sha256::Hash(
          ToBytes("pds2.provider.master." + name_ + std::to_string(seed)))) {}

std::optional<storage::DatasetSummary> ProviderAgent::EvaluateWorkload(
    const storage::Ontology& ontology, const WorkloadSpec& spec) const {
  auto eligible = store_.Match(ontology, spec.requirement);
  if (eligible.empty()) return std::nullopt;

  // Contribute the largest eligible dataset.
  const storage::DatasetSummary* best = &eligible[0];
  for (const auto& summary : eligible) {
    if (summary.num_records > best->num_records) best = &summary;
  }

  // Acceptance policy: pessimistic expected share of the provider pool.
  const double provider_pool =
      static_cast<double>(spec.reward_pool) *
      static_cast<double>(1000 - spec.executor_reward_permille) / 1000.0;
  const double expected_share =
      provider_pool / static_cast<double>(spec.min_providers);
  if (expected_share <
      min_reward_per_record_ * static_cast<double>(best->num_records)) {
    return std::nullopt;
  }
  return *best;
}

Result<SealedContribution> ProviderAgent::PrepareContribution(
    const storage::DatasetSummary& offer, const WorkloadSpec& spec,
    uint64_t workload_instance, const tee::AttestationQuote& quote,
    const Bytes& root_public_key, const Bytes& expected_measurement,
    const Bytes& executor_chain_public_key) {
  (void)spec;
  // Trust decision (paper §II-E): the provider releases data only to an
  // enclave whose code identity it verified.
  PDS2_RETURN_IF_ERROR(
      tee::VerifyQuote(quote, root_public_key, expected_measurement));

  // The enclave's transport key is bound inside the report data.
  Reader report(quote.report_data);
  PDS2_ASSIGN_OR_RETURN(Bytes enclave_transport_key, report.GetBytes());

  PDS2_ASSIGN_OR_RETURN(Bytes transport_key,
                        key_.SharedSecret(enclave_transport_key));
  PDS2_ASSIGN_OR_RETURN(Bytes sealed,
                        store_.SealForTransfer(offer.name, transport_key));

  SealedContribution contribution;
  contribution.provider_name = name_;
  contribution.sealed_data = std::move(sealed);
  contribution.provider_public_key = key_.PublicKey();
  contribution.commitment = offer.commitment;
  contribution.num_records = offer.num_records;
  contribution.cert.workload_instance = workload_instance;
  contribution.cert.provider_public_key = key_.PublicKey();
  contribution.cert.executor_public_key = executor_chain_public_key;
  contribution.cert.data_commitment = offer.commitment;
  contribution.cert.num_records = offer.num_records;
  contribution.cert.Sign(key_);
  return contribution;
}

// ---------------------------------------------------------------------------
// ExecutorAgent

ExecutorAgent::ExecutorAgent(std::string name, uint64_t seed,
                             tee::AttestationService& attestation)
    : name_(std::move(name)),
      key_(crypto::SigningKey::FromSeed(
          ToBytes("pds2.executor." + name_ + "." + std::to_string(seed)))) {
  enclave_ = std::make_unique<tee::Enclave>(
      std::make_unique<tee::TrainingKernel>(),
      attestation.ProvisionDevice("tee." + name_),
      crypto::Sha256::Hash(ToBytes("fused." + name_ + std::to_string(seed))),
      seed);
}

tee::AttestationQuote ExecutorAgent::QuoteFor(uint64_t workload_instance) const {
  Writer w;
  w.PutU64(workload_instance);
  tee::AttestationQuote quote = enclave_->GenerateQuote(w.Take());
  if (fault_ == ExecutorFault::kAttestation && !quote.signature.empty()) {
    // A compromised / rolled-back enclave cannot produce a quote the root
    // of trust vouches for; one flipped bit is how providers see that.
    quote.signature[0] ^= 0x01;
  }
  return quote;
}

tee::AttestationQuote ExecutorAgent::AuditQuote(
    uint64_t workload_instance) const {
  Writer w;
  w.PutU64(workload_instance);
  tee::AttestationQuote quote = enclave_->GenerateQuote(w.Take());
  if (fault_ == ExecutorFault::kFalseAttestation && !quote.signature.empty()) {
    quote.signature[0] ^= 0x01;
  }
  return quote;
}

Status ExecutorAgent::Setup(const WorkloadSpec& spec) {
  if (fault_ == ExecutorFault::kSetup) {
    return Status::Unavailable("executor " + name_ + " crashed during setup");
  }
  Writer w;
  w.PutString(spec.model_kind);
  w.PutU64(spec.features);
  w.PutU64(spec.hidden_units);
  w.PutDouble(spec.learning_rate);
  w.PutU64(spec.epochs);
  w.PutU64(spec.batch_size);
  w.PutDouble(spec.l2);
  w.PutBool(spec.dp_enabled);
  w.PutDouble(spec.dp_clip);
  w.PutDouble(spec.dp_noise);
  w.PutBool(spec.validation.enabled);
  w.PutDouble(spec.validation.feature_min);
  w.PutDouble(spec.validation.feature_max);
  w.PutDouble(spec.validation.min_label_fraction);
  contributions_.clear();
  auto result = enclave_->Ecall("configure", w.Take());
  return result.ok() ? Status::Ok() : result.status();
}

Result<uint64_t> ExecutorAgent::AcceptContribution(
    const SealedContribution& c) {
  Writer w;
  w.PutBytes(c.sealed_data);
  w.PutBytes(c.provider_public_key);
  w.PutBytes(c.commitment);
  PDS2_ASSIGN_OR_RETURN(Bytes out, enclave_->Ecall("load_data", w.Take()));
  Reader r(out);
  PDS2_ASSIGN_OR_RETURN(uint64_t loaded, r.GetU64());
  contributions_.push_back(c);
  return loaded;
}

Result<ml::Vec> ExecutorAgent::Train() {
  if (fault_ == ExecutorFault::kTrain) {
    return Status::Unavailable("executor " + name_ + " crashed mid-training");
  }
  PDS2_ASSIGN_OR_RETURN(Bytes out, enclave_->Ecall("train", {}));
  Reader r(out);
  PDS2_ASSIGN_OR_RETURN(ml::Vec params, r.GetDoubleVector());
  return params;
}

Result<ml::Vec> ExecutorAgent::Params() const {
  PDS2_ASSIGN_OR_RETURN(Bytes out, enclave_->Ecall("get_params", {}));
  Reader r(out);
  PDS2_ASSIGN_OR_RETURN(ml::Vec params, r.GetDoubleVector());
  return params;
}

Result<uint64_t> ExecutorAgent::SampleCount() const {
  PDS2_ASSIGN_OR_RETURN(Bytes out, enclave_->Ecall("sample_count", {}));
  Reader r(out);
  PDS2_ASSIGN_OR_RETURN(uint64_t count, r.GetU64());
  return count;
}

Result<ml::Vec> ExecutorAgent::MergeAll(
    const std::vector<std::pair<ml::Vec, uint64_t>>& peer_states) {
  Writer w;
  w.PutU32(static_cast<uint32_t>(peer_states.size()));
  for (const auto& [params, samples] : peer_states) {
    w.PutDoubleVector(params);
    w.PutU64(samples);
  }
  PDS2_ASSIGN_OR_RETURN(Bytes out, enclave_->Ecall("merge_all", w.Take()));
  Reader r(out);
  PDS2_ASSIGN_OR_RETURN(ml::Vec params, r.GetDoubleVector());
  return params;
}

// ---------------------------------------------------------------------------
// ConsumerAgent

ConsumerAgent::ConsumerAgent(std::string name, uint64_t seed)
    : name_(std::move(name)),
      key_(crypto::SigningKey::FromSeed(
          ToBytes("pds2.consumer." + name_ + "." + std::to_string(seed)))) {}

}  // namespace pds2::market
