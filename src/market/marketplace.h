#ifndef PDS2_MARKET_MARKETPLACE_H_
#define PDS2_MARKET_MARKETPLACE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chain/chain.h"
#include "market/actors.h"
#include "market/spec.h"
#include "storage/content_store.h"
#include "storage/semantic.h"
#include "tee/attestation.h"

namespace pds2::market {

/// Marketplace-wide configuration.
struct MarketConfig {
  size_t num_validators = 3;
  uint64_t genesis_balance = 1'000'000'000'000ULL;  // per created actor
  uint64_t seed = 1;
  common::SimTime block_interval = common::kMicrosPerSecond;
  storage::Ontology ontology = storage::Ontology::StandardIot();
};

/// Extra per-run inputs a consumer may supply.
struct RunOptions {
  /// Externally computed provider weights (by provider name), used when the
  /// spec's reward policy is kShapley. Missing providers default to their
  /// record counts.
  std::map<std::string, uint64_t> provider_weights;
};

/// The outcome of one full workload lifecycle.
struct RunReport {
  uint64_t instance = 0;
  common::Bytes result_hash;
  common::Bytes result_address;  // content address in the result store
  ml::Vec model_params;
  size_t num_providers = 0;
  size_t num_executors = 0;
  std::map<std::string, uint64_t> provider_rewards;  // name -> tokens
  std::map<std::string, uint64_t> executor_rewards;  // name -> tokens
  uint64_t gas_used = 0;        // chain gas consumed by this run's txs
  uint64_t blocks_produced = 0; // chain progress during the run
  /// Executors lost along the way (failed attestation, crashed during
  /// setup/training, or never voted). Registered-but-dropped executors
  /// appear in executor_rewards with 0 tokens.
  std::vector<std::string> dropped_executors;
  /// Executors whose bond was slashed at finalize (minority-vote fraud or
  /// a consumer-reported attestation mismatch), name -> forfeited stake.
  std::map<std::string, uint64_t> slashed_executors;
  /// Tokens destroyed by slashing during this run (the burned half of each
  /// forfeited bond; the other half compensated the consumer).
  uint64_t tokens_burned = 0;
  std::vector<std::string> audit_log;
};

/// The PDS2 marketplace facade: wires the governance blockchain, the
/// attestation root, provider storage subsystems and TEE executors, and
/// drives the Fig. 2 lifecycle end to end:
///
///   submit spec -> notify/match providers -> providers verify attestation
///   and seal data to executors (with certificates) -> executors register
///   on-chain -> start -> in-enclave training + decentralized aggregation
///   -> result quorum on-chain -> finalize -> rewards distributed.
class Marketplace {
 public:
  explicit Marketplace(MarketConfig config = {});

  chain::Blockchain& chain() { return *chain_; }
  tee::AttestationService& attestation() { return attestation_; }
  const storage::Ontology& ontology() const { return config_.ontology; }
  common::SimTime Now() const { return now_; }

  /// Produces one block from the pending transactions.
  common::Status Tick();

  // --- Actor onboarding (funds the account, registers the actor role) ----
  ProviderAgent& AddProvider(const std::string& name);
  ExecutorAgent& AddExecutor(const std::string& name);
  ConsumerAgent& AddConsumer(const std::string& name);

  std::vector<std::unique_ptr<ProviderAgent>>& providers() {
    return providers_;
  }
  std::vector<std::unique_ptr<ExecutorAgent>>& executors() {
    return executors_;
  }

  /// Runs a complete workload lifecycle for `consumer`. On failure the
  /// contract is aborted (escrow refunded) before the error is returned.
  common::Result<RunReport> RunWorkload(ConsumerAgent& consumer,
                                        const WorkloadSpec& spec,
                                        const RunOptions& options = {});

  /// Convenience: submits a transaction from `sender`, produces a block,
  /// and returns the receipt (with automatic nonce management).
  common::Result<chain::Receipt> Execute(const crypto::SigningKey& sender,
                                         const chain::Address& to,
                                         uint64_t value, uint64_t gas_limit,
                                         chain::CallPayload payload);

  /// Registers a provider's dataset as an ERC-721 data NFT (paper §III-A:
  /// datasets are registered "by means of their hashes" and modeled as
  /// non-fungible tokens). Token id = the dataset's Merkle commitment;
  /// token metadata = the serialized semantic metadata. The shared data
  /// registry is deployed lazily on first use. Returns the token id.
  common::Result<common::Bytes> RegisterDatasetNft(
      ProviderAgent& provider, const std::string& dataset_name);

  /// Resolves the on-chain owner of a registered dataset commitment.
  common::Result<chain::Address> DatasetOwner(
      const common::Bytes& commitment) const;

  /// Retrieves a finished workload's model from the off-chain result store
  /// by its report and verifies it against the on-chain result hash — the
  /// consumer-side integrity check of Fig. 2's final step. Corruption if
  /// the stored blob does not hash to the agreed result.
  common::Result<ml::Vec> FetchResult(const RunReport& report) const;

 private:
  common::Status RegisterActor(const crypto::SigningKey& key, uint64_t roles,
                               const std::string& metadata);

  MarketConfig config_;
  std::vector<crypto::SigningKey> validators_;
  std::unique_ptr<chain::Blockchain> chain_;
  tee::AttestationService attestation_;
  common::SimTime now_ = 0;
  uint64_t actor_registry_instance_ = 0;
  uint64_t dataset_registry_instance_ = 0;  // lazily deployed erc721

  std::vector<std::unique_ptr<ProviderAgent>> providers_;
  std::vector<std::unique_ptr<ExecutorAgent>> executors_;
  std::vector<std::unique_ptr<ConsumerAgent>> consumers_;
  uint64_t actor_seed_ = 0;

  // Off-chain result distribution (the chain stores only hashes).
  storage::ContentStore result_store_;
};

}  // namespace pds2::market

#endif  // PDS2_MARKET_MARKETPLACE_H_
