#ifndef PDS2_MARKET_MARKETPLACE_H_
#define PDS2_MARKET_MARKETPLACE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chain/chain.h"
#include "market/actors.h"
#include "market/spec.h"
#include "obs/health.h"
#include "obs/time_series.h"
#include "storage/semantic.h"
#include "store/artifact_store.h"
#include "store/discovery.h"
#include "store/memo.h"
#include "tee/attestation.h"

namespace pds2::market {

/// Marketplace-wide configuration.
struct MarketConfig {
  size_t num_validators = 3;
  uint64_t genesis_balance = 1'000'000'000'000ULL;  // per created actor
  uint64_t seed = 1;
  common::SimTime block_interval = common::kMicrosPerSecond;
  storage::Ontology ontology = storage::Ontology::StandardIot();
  /// Memoized computation (store/memo.h): when a workload's memo key
  /// resolves, the attested artifact is fetched and a reduced reuse fee is
  /// settled instead of recomputing. Off by default: substitution changes
  /// the run's economics, so callers opt in.
  bool enable_substitution = false;
  /// Reuse fee as a fraction of the (avoided) reward pool, in permille.
  uint64_t reuse_fee_permille = 100;
  /// Durable directory for the artifact store; empty = in-memory.
  std::string artifact_dir;
  /// Pool for the chain's parallel validation/execution (see
  /// ChainConfig::thread_pool). nullptr = process-wide pool; any size is
  /// bit-identical, which is what the health plane's 1-vs-N alert
  /// determinism checks sweep.
  common::ThreadPool* thread_pool = nullptr;
};

/// Extra per-run inputs a consumer may supply.
struct RunOptions {
  /// Externally computed provider weights (by provider name), used when the
  /// spec's reward policy is kShapley. Missing providers default to their
  /// record counts.
  std::map<std::string, uint64_t> provider_weights;
};

/// The outcome of one full workload lifecycle.
struct RunReport {
  uint64_t instance = 0;
  common::Bytes result_hash;
  common::Bytes result_address;  // content address in the result store
  ml::Vec model_params;
  size_t num_providers = 0;
  size_t num_executors = 0;
  std::map<std::string, uint64_t> provider_rewards;  // name -> tokens
  std::map<std::string, uint64_t> executor_rewards;  // name -> tokens
  uint64_t gas_used = 0;        // chain gas consumed by this run's txs
  uint64_t blocks_produced = 0; // chain progress during the run
  /// Executors lost along the way (failed attestation, crashed during
  /// setup/training, or never voted). Registered-but-dropped executors
  /// appear in executor_rewards with 0 tokens.
  std::vector<std::string> dropped_executors;
  /// Executors whose bond was slashed at finalize (minority-vote fraud or
  /// a consumer-reported attestation mismatch), name -> forfeited stake.
  std::map<std::string, uint64_t> slashed_executors;
  /// Tokens destroyed by slashing during this run (the burned half of each
  /// forfeited bond; the other half compensated the consumer).
  uint64_t tokens_burned = 0;
  std::vector<std::string> audit_log;
  /// Substitution (memoized computation): true when this run settled by
  /// reusing an already-computed artifact instead of training.
  bool substituted = false;
  uint64_t reuse_fee = 0;            // tokens paid for the reused artifact
  uint64_t reused_from_instance = 0; // workload that anchored the artifact
  common::Bytes memo_key;            // this run's memoization key
};

/// The PDS2 marketplace facade: wires the governance blockchain, the
/// attestation root, provider storage subsystems and TEE executors, and
/// drives the Fig. 2 lifecycle end to end:
///
///   submit spec -> notify/match providers -> providers verify attestation
///   and seal data to executors (with certificates) -> executors register
///   on-chain -> start -> in-enclave training + decentralized aggregation
///   -> result quorum on-chain -> finalize -> rewards distributed.
class Marketplace {
 public:
  explicit Marketplace(MarketConfig config = {});

  chain::Blockchain& chain() { return *chain_; }
  tee::AttestationService& attestation() { return attestation_; }
  const storage::Ontology& ontology() const { return config_.ontology; }
  common::SimTime Now() const { return now_; }

  /// Produces one block from the pending transactions.
  common::Status Tick();

  /// Wires the health plane into the lifecycle clock: after every Tick()
  /// (one block interval of sim time) the registry is sampled into `ts` at
  /// sim time Now() and, when `monitor` is non-null, its rules are
  /// evaluated at the new sample. Pass nullptrs to detach. The marketplace
  /// is single-driver, so sampling here is deterministic per seed.
  void SetHealthSampling(obs::TimeSeries* ts,
                         obs::HealthMonitor* monitor = nullptr);

  // --- Actor onboarding (funds the account, registers the actor role) ----
  ProviderAgent& AddProvider(const std::string& name);
  ExecutorAgent& AddExecutor(const std::string& name);
  ConsumerAgent& AddConsumer(const std::string& name);

  std::vector<std::unique_ptr<ProviderAgent>>& providers() {
    return providers_;
  }
  std::vector<std::unique_ptr<ExecutorAgent>>& executors() {
    return executors_;
  }

  /// Runs a complete workload lifecycle for `consumer`. On failure the
  /// contract is aborted (escrow refunded) before the error is returned.
  common::Result<RunReport> RunWorkload(ConsumerAgent& consumer,
                                        const WorkloadSpec& spec,
                                        const RunOptions& options = {});

  /// Convenience: submits a transaction from `sender`, produces a block,
  /// and returns the receipt (with automatic nonce management).
  common::Result<chain::Receipt> Execute(const crypto::SigningKey& sender,
                                         const chain::Address& to,
                                         uint64_t value, uint64_t gas_limit,
                                         chain::CallPayload payload);

  /// Registers a provider's dataset as an ERC-721 data NFT (paper §III-A:
  /// datasets are registered "by means of their hashes" and modeled as
  /// non-fungible tokens). Token id = the dataset's Merkle commitment;
  /// token metadata = the serialized semantic metadata. The shared data
  /// registry is deployed lazily on first use. Returns the token id.
  common::Result<common::Bytes> RegisterDatasetNft(
      ProviderAgent& provider, const std::string& dataset_name);

  /// Resolves the on-chain owner of a registered dataset commitment.
  common::Result<chain::Address> DatasetOwner(
      const common::Bytes& commitment) const;

  /// Retrieves a finished workload's model from the off-chain artifact
  /// store by its report and verifies it against the on-chain result hash —
  /// the consumer-side integrity check of Fig. 2's final step. Corruption
  /// if the stored blob does not hash to the agreed result.
  common::Result<ml::Vec> FetchResult(const RunReport& report) const;

  /// Publishes a discovery advert for one of the provider's registered
  /// datasets: (dataset commitment, semantic type tags, record count,
  /// asking price). Consumers' workload matching prefers providers whose
  /// adverts cover the spec's required types. Returns the advert.
  common::Result<store::Advert> AdvertiseDataset(ProviderAgent& provider,
                                                 const std::string& dataset_name,
                                                 uint64_t price);

  /// The marketplace's view of the gossip discovery index. In-process runs
  /// share one index; networked deployments converge theirs via
  /// store::DiscoveryNode (see discovery tests + E17).
  store::DiscoveryIndex& discovery_index() { return discovery_index_; }
  /// The memoized-computation cache consulted by RunWorkload.
  store::MemoIndex& memo_index() { return memo_index_; }
  /// The content-addressed artifact store backing result distribution.
  store::ArtifactStore& artifact_store() { return *artifact_store_; }

 private:
  common::Status RegisterActor(const crypto::SigningKey& key, uint64_t roles,
                               const std::string& metadata);

  MarketConfig config_;
  std::vector<crypto::SigningKey> validators_;
  std::unique_ptr<chain::Blockchain> chain_;
  tee::AttestationService attestation_;
  common::SimTime now_ = 0;
  obs::TimeSeries* health_ts_ = nullptr;
  obs::HealthMonitor* health_monitor_ = nullptr;
  uint64_t actor_registry_instance_ = 0;
  uint64_t dataset_registry_instance_ = 0;  // lazily deployed erc721

  std::vector<std::unique_ptr<ProviderAgent>> providers_;
  std::vector<std::unique_ptr<ExecutorAgent>> executors_;
  std::vector<std::unique_ptr<ConsumerAgent>> consumers_;
  uint64_t actor_seed_ = 0;

  // Off-chain result distribution (the chain stores only hashes): results
  // live in the content-addressed store, deduplicated and GC-rooted, with
  // their addresses anchored on-chain at finalize.
  std::unique_ptr<store::ArtifactStore> artifact_store_;
  store::MemoIndex memo_index_;
  store::DiscoveryIndex discovery_index_;

  common::Status SettleReuseFee(ConsumerAgent& consumer,
                                const store::MemoEntry& entry,
                                const WorkloadSpec& spec, RunReport& report);
};

}  // namespace pds2::market

#endif  // PDS2_MARKET_MARKETPLACE_H_
