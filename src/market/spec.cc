#include "market/spec.h"

#include "common/serial.h"
#include "crypto/sha256.h"

namespace pds2::market {

using common::Bytes;
using common::Reader;
using common::Result;
using common::Status;
using common::Writer;

Bytes WorkloadSpec::Serialize() const {
  Writer w;
  w.PutString(name);
  w.PutBytes(requirement.Serialize());
  w.PutBool(validation.enabled);
  w.PutDouble(validation.feature_min);
  w.PutDouble(validation.feature_max);
  w.PutDouble(validation.min_label_fraction);
  w.PutString(model_kind);
  w.PutU64(features);
  w.PutU64(hidden_units);
  w.PutDouble(learning_rate);
  w.PutU64(epochs);
  w.PutU64(batch_size);
  w.PutDouble(l2);
  w.PutBool(dp_enabled);
  w.PutDouble(dp_clip);
  w.PutDouble(dp_noise);
  w.PutU64(reward_pool);
  w.PutU64(min_providers);
  w.PutU64(max_providers);
  w.PutU64(executor_reward_permille);
  w.PutU64(deadline);
  w.PutU8(static_cast<uint8_t>(reward_policy));
  w.PutU8(static_cast<uint8_t>(aggregation));
  w.PutU64(executor_stake);
  return w.Take();
}

Result<WorkloadSpec> WorkloadSpec::Deserialize(const Bytes& data) {
  Reader r(data);
  WorkloadSpec spec;
  PDS2_ASSIGN_OR_RETURN(spec.name, r.GetString());
  PDS2_ASSIGN_OR_RETURN(Bytes req_bytes, r.GetBytes());
  PDS2_ASSIGN_OR_RETURN(spec.requirement,
                        storage::DataRequirement::Deserialize(req_bytes));
  PDS2_ASSIGN_OR_RETURN(spec.validation.enabled, r.GetBool());
  PDS2_ASSIGN_OR_RETURN(spec.validation.feature_min, r.GetDouble());
  PDS2_ASSIGN_OR_RETURN(spec.validation.feature_max, r.GetDouble());
  PDS2_ASSIGN_OR_RETURN(spec.validation.min_label_fraction, r.GetDouble());
  PDS2_ASSIGN_OR_RETURN(spec.model_kind, r.GetString());
  PDS2_ASSIGN_OR_RETURN(spec.features, r.GetU64());
  PDS2_ASSIGN_OR_RETURN(spec.hidden_units, r.GetU64());
  PDS2_ASSIGN_OR_RETURN(spec.learning_rate, r.GetDouble());
  PDS2_ASSIGN_OR_RETURN(spec.epochs, r.GetU64());
  PDS2_ASSIGN_OR_RETURN(spec.batch_size, r.GetU64());
  PDS2_ASSIGN_OR_RETURN(spec.l2, r.GetDouble());
  PDS2_ASSIGN_OR_RETURN(spec.dp_enabled, r.GetBool());
  PDS2_ASSIGN_OR_RETURN(spec.dp_clip, r.GetDouble());
  PDS2_ASSIGN_OR_RETURN(spec.dp_noise, r.GetDouble());
  PDS2_ASSIGN_OR_RETURN(spec.reward_pool, r.GetU64());
  PDS2_ASSIGN_OR_RETURN(spec.min_providers, r.GetU64());
  PDS2_ASSIGN_OR_RETURN(spec.max_providers, r.GetU64());
  PDS2_ASSIGN_OR_RETURN(spec.executor_reward_permille, r.GetU64());
  PDS2_ASSIGN_OR_RETURN(spec.deadline, r.GetU64());
  PDS2_ASSIGN_OR_RETURN(uint8_t policy, r.GetU8());
  if (policy > 1) return Status::Corruption("invalid reward policy");
  spec.reward_policy = static_cast<RewardPolicy>(policy);
  PDS2_ASSIGN_OR_RETURN(uint8_t aggregation, r.GetU8());
  if (aggregation > 1) return Status::Corruption("invalid aggregation method");
  spec.aggregation = static_cast<AggregationMethod>(aggregation);
  // Optional trailing bond (pre-staking encodings omit it).
  if (!r.AtEnd()) {
    PDS2_ASSIGN_OR_RETURN(spec.executor_stake, r.GetU64());
  }
  if (!r.AtEnd()) return Status::Corruption("trailing bytes in spec");
  return spec;
}

Bytes WorkloadSpec::SpecHash() const {
  return crypto::Sha256::Hash(Serialize());
}

Bytes WorkloadSpec::TrainingFingerprint() const {
  Writer w;
  w.PutString("pds2.memo.spec.v1");
  w.PutString(model_kind);
  w.PutU64(features);
  w.PutU64(hidden_units);
  w.PutDouble(learning_rate);
  w.PutU64(epochs);
  w.PutU64(batch_size);
  w.PutDouble(l2);
  w.PutBool(dp_enabled);
  w.PutDouble(dp_clip);
  w.PutDouble(dp_noise);
  w.PutBool(validation.enabled);
  w.PutDouble(validation.feature_min);
  w.PutDouble(validation.feature_max);
  w.PutDouble(validation.min_label_fraction);
  w.PutU8(static_cast<uint8_t>(aggregation));
  return crypto::Sha256::Hash(w.Take());
}

Status WorkloadSpec::Validate() const {
  if (name.empty()) return Status::InvalidArgument("workload needs a name");
  if (features == 0) return Status::InvalidArgument("zero features");
  if (reward_pool == 0) return Status::InvalidArgument("zero reward pool");
  if (min_providers == 0 || max_providers < min_providers) {
    return Status::InvalidArgument("invalid provider bounds");
  }
  if (executor_reward_permille > 1000) {
    return Status::InvalidArgument("executor share above 100%");
  }
  if (model_kind == "mlp" && hidden_units == 0) {
    return Status::InvalidArgument("mlp needs hidden units");
  }
  return Status::Ok();
}

}  // namespace pds2::market
