#ifndef PDS2_MARKET_VALUATION_H_
#define PDS2_MARKET_VALUATION_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "market/actors.h"
#include "market/spec.h"
#include "rewards/shapley.h"
#include "tee/attestation.h"
#include "tee/enclave.h"

namespace pds2::market {

/// Privacy-preserving data valuation (paper §IV-A meets §III-B): the
/// consumer rents a dedicated valuation enclave; each participating
/// provider — after verifying its attestation, exactly as with a training
/// executor — seals its dataset to it; data-Shapley weights are then
/// estimated with the *in-enclave* coalition utility (`coalition_eval`),
/// so the consumer learns coalition accuracies and final weights, never
/// records. The resulting integer weights plug directly into
/// `RunOptions::provider_weights` for an on-chain kShapley settlement.
class ValuationService {
 public:
  ValuationService(tee::AttestationService& attestation, uint64_t seed);

  /// The valuation enclave (providers verify its quote before sealing).
  const tee::Enclave& enclave() const { return *enclave_; }

  /// Configures the enclave kernel with the workload's model/hyperparams.
  common::Status Setup(const WorkloadSpec& spec);

  /// One provider contributes: attestation check, ECDH, sealed transfer,
  /// in-enclave commitment verification. Returns the provider's coalition
  /// index.
  common::Result<size_t> AddContribution(
      ProviderAgent& provider, const storage::DatasetSummary& offer,
      const WorkloadSpec& spec, const common::Bytes& attestation_root);

  /// Truncated-Monte-Carlo data Shapley over the enclave utility, scored
  /// against the consumer's validation set. Returns per-provider integer
  /// weights (scaled to sum to ~`weight_scale`) keyed by provider name.
  common::Result<std::map<std::string, uint64_t>> ComputeWeights(
      const ml::Dataset& validation, size_t permutations, double tolerance,
      common::Rng& rng, uint64_t weight_scale = 1'000'000);

  /// Raw (possibly negative) Shapley estimates from the last ComputeWeights
  /// call, by coalition index.
  const std::vector<double>& last_values() const { return last_values_; }
  /// Number of in-enclave utility evaluations the last run needed.
  size_t last_utility_calls() const { return last_utility_calls_; }

 private:
  crypto::SigningKey identity_;
  mutable std::unique_ptr<tee::Enclave> enclave_;
  std::vector<std::string> provider_names_;
  std::vector<double> last_values_;
  size_t last_utility_calls_ = 0;
};

}  // namespace pds2::market

#endif  // PDS2_MARKET_VALUATION_H_
