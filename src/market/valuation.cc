#include "market/valuation.h"

#include <algorithm>

#include "common/serial.h"
#include "crypto/sha256.h"
#include "storage/provider_store.h"
#include "tee/training_kernel.h"

namespace pds2::market {

using common::Bytes;
using common::Reader;
using common::Result;
using common::Status;
using common::ToBytes;
using common::Writer;

ValuationService::ValuationService(tee::AttestationService& attestation,
                                   uint64_t seed)
    : identity_(crypto::SigningKey::FromSeed(
          ToBytes("pds2.valuation." + std::to_string(seed)))) {
  enclave_ = std::make_unique<tee::Enclave>(
      std::make_unique<tee::TrainingKernel>(),
      attestation.ProvisionDevice("valuation." + std::to_string(seed)),
      crypto::Sha256::Hash(ToBytes("valuation.fused." + std::to_string(seed))),
      seed);
}

Status ValuationService::Setup(const WorkloadSpec& spec) {
  Writer w;
  w.PutString(spec.model_kind);
  w.PutU64(spec.features);
  w.PutU64(spec.hidden_units);
  w.PutDouble(spec.learning_rate);
  w.PutU64(spec.epochs);
  w.PutU64(spec.batch_size);
  w.PutDouble(spec.l2);
  w.PutBool(false);  // valuation probes run without DP noise
  w.PutDouble(1.0);
  w.PutDouble(0.0);
  w.PutBool(spec.validation.enabled);
  w.PutDouble(spec.validation.feature_min);
  w.PutDouble(spec.validation.feature_max);
  w.PutDouble(spec.validation.min_label_fraction);
  provider_names_.clear();
  auto result = enclave_->Ecall("configure", w.Take());
  return result.ok() ? Status::Ok() : result.status();
}

Result<size_t> ValuationService::AddContribution(
    ProviderAgent& provider, const storage::DatasetSummary& offer,
    const WorkloadSpec& spec, const Bytes& attestation_root) {
  // The provider applies the same trust protocol as with an executor:
  // quote verification against the root, then sealing to the enclave key.
  const tee::AttestationQuote quote = enclave_->GenerateQuote({});
  PDS2_ASSIGN_OR_RETURN(
      SealedContribution contribution,
      provider.PrepareContribution(offer, spec, /*workload_instance=*/0,
                                   quote, attestation_root,
                                   enclave_->Measurement(),
                                   identity_.PublicKey()));
  Writer load;
  load.PutBytes(contribution.sealed_data);
  load.PutBytes(contribution.provider_public_key);
  load.PutBytes(contribution.commitment);
  PDS2_ASSIGN_OR_RETURN(Bytes out, enclave_->Ecall("load_data", load.Take()));
  (void)out;
  provider_names_.push_back(provider.name());
  return provider_names_.size() - 1;
}

Result<std::map<std::string, uint64_t>> ValuationService::ComputeWeights(
    const ml::Dataset& validation, size_t permutations, double tolerance,
    common::Rng& rng, uint64_t weight_scale) {
  if (provider_names_.empty()) {
    return Status::FailedPrecondition("no contributions to value");
  }
  const Bytes eval_bytes = storage::SerializeDataset(validation);

  // Utility oracle: one ecall per distinct coalition (memoized).
  Status oracle_error = Status::Ok();
  rewards::CachedUtility utility(
      [this, &eval_bytes, &oracle_error](const std::vector<size_t>& coalition) {
        if (coalition.empty()) return 0.5;
        Writer w;
        w.PutU32(static_cast<uint32_t>(coalition.size()));
        for (size_t idx : coalition) w.PutU32(static_cast<uint32_t>(idx));
        w.PutBytes(eval_bytes);
        auto result = enclave_->Ecall("coalition_eval", w.Take());
        if (!result.ok()) {
          if (oracle_error.ok()) oracle_error = result.status();
          return 0.5;
        }
        Reader r(*result);
        auto acc = r.GetDouble();
        return acc.ok() ? *acc : 0.5;
      });

  auto tmc = rewards::TruncatedMonteCarloShapley(
      provider_names_.size(), std::ref(utility), permutations, tolerance, rng);
  PDS2_RETURN_IF_ERROR(oracle_error);
  last_values_ = tmc.values;
  last_utility_calls_ = utility.misses();

  const std::vector<double> normalized = rewards::NormalizeToRewards(
      tmc.values, static_cast<double>(weight_scale));
  std::map<std::string, uint64_t> weights;
  for (size_t i = 0; i < provider_names_.size(); ++i) {
    weights[provider_names_[i]] =
        std::max<uint64_t>(1, static_cast<uint64_t>(normalized[i]));
  }
  return weights;
}

}  // namespace pds2::market
