#ifndef PDS2_MARKET_ACTORS_H_
#define PDS2_MARKET_ACTORS_H_

#include <memory>
#include <optional>
#include <string>

#include "chain/contracts/workload.h"
#include "chain/types.h"
#include "market/spec.h"
#include "storage/provider_store.h"
#include "tee/attestation.h"
#include "tee/enclave.h"

namespace pds2::market {

/// A provider's sealed, certified contribution to one workload: everything
/// an executor needs (and nothing more — the data is opened only inside the
/// enclave).
struct SealedContribution {
  std::string provider_name;
  common::Bytes sealed_data;
  common::Bytes provider_public_key;
  common::Bytes commitment;
  uint64_t num_records = 0;
  chain::contracts::ParticipationCert cert;
};

/// A data provider (seller): owns a signing identity, a storage subsystem,
/// and an acceptance policy. Never hands out plaintext data — contributions
/// leave only as sealed transfers to attested enclaves.
class ProviderAgent {
 public:
  ProviderAgent(std::string name, uint64_t seed);

  const std::string& name() const { return name_; }
  const crypto::SigningKey& key() const { return key_; }
  chain::Address address() const {
    return chain::AddressFromPublicKey(key_.PublicKey());
  }
  storage::ProviderStorage& store() { return store_; }

  /// Acceptance policy: minimum tokens per contributed record the provider
  /// expects from its (pessimistic, min_providers-way) share of the pool.
  void set_min_reward_per_record(double v) { min_reward_per_record_ = v; }

  /// Hardware-control choice (paper Fig. 3): a provider that owns TEE
  /// hardware can pin execution to its own executor instead of a third
  /// party. Empty = any executor (fully outsourced).
  void set_preferred_executor(std::string executor_name) {
    preferred_executor_ = std::move(executor_name);
  }
  const std::string& preferred_executor() const { return preferred_executor_; }

  /// The dataset this provider would contribute, or nullopt if nothing is
  /// eligible or the expected reward is below the provider's floor.
  std::optional<storage::DatasetSummary> EvaluateWorkload(
      const storage::Ontology& ontology, const WorkloadSpec& spec) const;

  /// Verifies the executor enclave's attestation, derives the transport key
  /// (ECDH with the enclave's key), seals the dataset and signs the
  /// participation certificate. Fails — and releases nothing — when the
  /// quote does not verify against `root_public_key` + measurement.
  common::Result<SealedContribution> PrepareContribution(
      const storage::DatasetSummary& offer, const WorkloadSpec& spec,
      uint64_t workload_instance, const tee::AttestationQuote& quote,
      const common::Bytes& root_public_key,
      const common::Bytes& expected_measurement,
      const common::Bytes& executor_chain_public_key);

 private:
  std::string name_;
  crypto::SigningKey key_;
  storage::ProviderStorage store_;
  double min_reward_per_record_ = 0.0;
  std::string preferred_executor_;
};

/// Lifecycle stage at which an executor is scripted to fail — the chaos
/// harness's model of a crashed or compromised compute node. The stage
/// determines what the rest of the marketplace observes: a bad quote, a
/// dead enclave, or a registered executor that never votes.
enum class ExecutorFault {
  kNone = 0,
  kAttestation,  // quote signature corrupt: providers refuse to seal data
  kSetup,        // crashes when the enclave is configured
  kTrain,        // crashes mid-training, after on-chain registration
  kVote,         // trains, then crashes before submitting its result
  // --- Byzantine (fraud, not crash): registered, bonded, then cheats. ----
  kWrongVote,         // deliberately votes for a result it never computed
  kTamperedUpdate,    // tampers with its model update, so its result hash
                      // diverges from the honest quorum's
  kFalseAttestation,  // bonds with a valid quote, then fails the runtime
                      // re-audit (rolled-back / compromised enclave)
};

/// An executor: TEE-equipped compute node. Holds a chain identity (for
/// registration and rewards) and an enclave running the training kernel.
class ExecutorAgent {
 public:
  ExecutorAgent(std::string name, uint64_t seed,
                tee::AttestationService& attestation);

  const std::string& name() const { return name_; }
  const crypto::SigningKey& key() const { return key_; }
  chain::Address address() const {
    return chain::AddressFromPublicKey(key_.PublicKey());
  }
  const tee::Enclave& enclave() const { return *enclave_; }

  /// Quote binding this enclave to the given workload instance.
  tee::AttestationQuote QuoteFor(uint64_t workload_instance) const;

  /// Quote for the consumer's *runtime* re-audit. Differs from QuoteFor
  /// only under kFalseAttestation: that fault presents a valid quote at
  /// seal/registration time (so the executor bonds first) and a corrupt one
  /// here — the rolled-back-enclave scenario the bond exists to punish.
  tee::AttestationQuote AuditQuote(uint64_t workload_instance) const;

  /// Configures the enclave kernel for a workload (resets any prior data).
  common::Status Setup(const WorkloadSpec& spec);

  /// Loads a sealed contribution into the enclave; returns records loaded.
  common::Result<uint64_t> AcceptContribution(const SealedContribution& c);
  const std::vector<SealedContribution>& contributions() const {
    return contributions_;
  }

  /// Local training inside the enclave; returns the (host-visible) params.
  common::Result<ml::Vec> Train();

  common::Result<ml::Vec> Params() const;
  common::Result<uint64_t> SampleCount() const;

  /// Deterministic all-reduce step (see TrainingKernel::merge_all).
  common::Result<ml::Vec> MergeAll(
      const std::vector<std::pair<ml::Vec, uint64_t>>& peer_states);

  /// Scripts this executor to fail at the given lifecycle stage (chaos
  /// testing). kNone restores normal operation.
  void InjectFault(ExecutorFault fault) { fault_ = fault; }
  ExecutorFault injected_fault() const { return fault_; }

 private:
  std::string name_;
  crypto::SigningKey key_;
  mutable std::unique_ptr<tee::Enclave> enclave_;
  std::vector<SealedContribution> contributions_;
  ExecutorFault fault_ = ExecutorFault::kNone;
};

/// A consumer (buyer): just a funded chain identity plus the workload it
/// wants run; all of its power is exercised through the workload contract.
class ConsumerAgent {
 public:
  ConsumerAgent(std::string name, uint64_t seed);

  const std::string& name() const { return name_; }
  const crypto::SigningKey& key() const { return key_; }
  chain::Address address() const {
    return chain::AddressFromPublicKey(key_.PublicKey());
  }

 private:
  std::string name_;
  crypto::SigningKey key_;
};

}  // namespace pds2::market

#endif  // PDS2_MARKET_ACTORS_H_
