#ifndef PDS2_MARKET_SPEC_H_
#define PDS2_MARKET_SPEC_H_

#include <string>

#include "common/bytes.h"
#include "common/result.h"
#include "common/sim_clock.h"
#include "storage/semantic.h"

namespace pds2::market {

/// How provider rewards are weighted at settlement.
enum class RewardPolicy : uint8_t {
  kByRecords = 0,  // proportional to contributed records (default)
  kShapley = 1,    // data-Shapley weights computed by the consumer
};

/// How executors aggregate their local models (paper §II-F: "consumers may
/// direct the executors to use one of several decentralized aggregation
/// mechanisms").
enum class AggregationMethod : uint8_t {
  /// Symmetric all-reduce: every executor merges the full state list and
  /// computes the result independently (default).
  kAllReduce = 0,
  /// Star topology with a TEE-hosted aggregator: the first executor's
  /// enclave merges everyone's parameters and redistributes — the
  /// "replace the central aggregator with trusted hardware" design the
  /// paper cites ([20], [21]). Cheaper in messages, but the aggregator
  /// enclave is a liveness (not privacy) single point.
  kTeeStar = 1,
};

/// Executor-side (in-enclave) data validation (paper §IV-C): requirements
/// too complex for metadata matching are checked on the actual records,
/// privately, inside the enclave before the data joins the training set.
struct DataValidation {
  bool enabled = false;
  double feature_min = -1e30;        // every feature value within
  double feature_max = 1e30;         //   [feature_min, feature_max]
  double min_label_fraction = 0.0;   // minority-class share (binary tasks)
};

/// A complete workload specification — the "binding contract" a consumer
/// submits (paper §II-C): input-data preconditions, the training task,
/// rewards, and the conditions for starting.
struct WorkloadSpec {
  std::string name;

  // Input-data preconditions (matched by the storage subsystems).
  storage::DataRequirement requirement;
  // Deep preconditions, verified on the records inside the enclave.
  DataValidation validation;

  // The training task.
  std::string model_kind = "logistic";  // logistic | linear | mlp | softmax:<k>
  uint64_t features = 0;
  uint64_t hidden_units = 0;            // mlp only
  double learning_rate = 0.2;
  uint64_t epochs = 5;
  uint64_t batch_size = 16;
  double l2 = 0.0;
  bool dp_enabled = false;              // §IV-D mitigation
  double dp_clip = 1.0;
  double dp_noise = 0.0;

  // Contract economics and conditions.
  uint64_t reward_pool = 0;
  uint64_t min_providers = 1;
  uint64_t max_providers = 64;
  uint64_t executor_reward_permille = 100;
  /// Accountability bond each executor escrows at registration; refunded at
  /// settlement unless the executor provably misbehaved (wrong result vote,
  /// or a consumer-reported attestation mismatch), in which case half goes
  /// to the consumer and half is burned. 0 = no bonding (legacy behaviour).
  uint64_t executor_stake = 0;
  common::SimTime deadline = 0;
  RewardPolicy reward_policy = RewardPolicy::kByRecords;
  AggregationMethod aggregation = AggregationMethod::kAllReduce;

  common::Bytes Serialize() const;
  static common::Result<WorkloadSpec> Deserialize(const common::Bytes& data);

  /// SHA-256 of the serialized spec — registered on-chain at deployment.
  common::Bytes SpecHash() const;

  /// Hash of only the fields that determine the computed result: the
  /// training task and the in-enclave validation gates. Economics, naming
  /// and deadlines are excluded, so two workloads that would train the
  /// same model share one memoization key (store/memo.h) even when their
  /// prices differ.
  common::Bytes TrainingFingerprint() const;

  /// Sanity-checks field combinations before submission.
  common::Status Validate() const;
};

}  // namespace pds2::market

#endif  // PDS2_MARKET_SPEC_H_
