#ifndef PDS2_TEE_OBLIVIOUS_H_
#define PDS2_TEE_OBLIVIOUS_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"

namespace pds2::tee {

/// Records the sequence of logical memory accesses an algorithm performs —
/// the side channel an SGX adversary observes through page faults and cache
/// probing ([12] Ohrimenko et al.). Two runs over different data are
/// side-channel-safe when their traces are identical.
class MemoryTrace {
 public:
  void RecordRead(size_t index) { accesses_.push_back({'R', index}); }
  void RecordWrite(size_t index) { accesses_.push_back({'W', index}); }
  void RecordCompare(size_t a, size_t b) {
    accesses_.push_back({'C', a});
    accesses_.push_back({'C', b});
  }

  const std::vector<std::pair<char, size_t>>& accesses() const {
    return accesses_;
  }
  size_t size() const { return accesses_.size(); }
  bool operator==(const MemoryTrace& other) const {
    return accesses_ == other.accesses_;
  }

  /// Digest of the trace, for cheap equality over long traces.
  common::Bytes Digest() const;

 private:
  std::vector<std::pair<char, size_t>> accesses_;
};

/// Branchless select: returns a when cond, else b, with no data-dependent
/// control flow.
uint64_t ObliviousSelect(bool cond, uint64_t a, uint64_t b);

/// Branchless compare-and-swap used by the oblivious sort.
void ObliviousMinMax(uint64_t& a, uint64_t& b);

/// Data-oblivious sort (Batcher odd-even mergesort): the comparison
/// sequence depends only on the input size, never the values. O(n log^2 n)
/// compare-exchanges. Optionally records the access trace.
void ObliviousSort(std::vector<uint64_t>& values, MemoryTrace* trace = nullptr);

/// Ordinary quicksort-flavored sort whose access pattern leaks the data
/// (the baseline for experiment E9). Optionally records the access trace.
void LeakySort(std::vector<uint64_t>& values, MemoryTrace* trace = nullptr);

/// Oblivious linear scan aggregation: sums values[i] where flags[i], but
/// touches every element identically regardless of the flags.
uint64_t ObliviousFilteredSum(const std::vector<uint64_t>& values,
                              const std::vector<bool>& flags,
                              MemoryTrace* trace = nullptr);

}  // namespace pds2::tee

#endif  // PDS2_TEE_OBLIVIOUS_H_
