#include "tee/attestation.h"

#include "common/serial.h"

namespace pds2::tee {

using common::Bytes;
using common::Reader;
using common::Result;
using common::Status;
using common::Writer;

namespace {
constexpr char kCertDomain[] = "pds2.tee.cert";
constexpr char kQuoteDomain[] = "pds2.tee.quote";
}  // namespace

Bytes DeviceProvision::CertifiedBytes(const std::string& device_id,
                                      const Bytes& public_key) {
  Writer w;
  w.PutString(device_id);
  w.PutBytes(public_key);
  return w.Take();
}

AttestationService::AttestationService(uint64_t seed)
    : root_key_(crypto::SigningKey::FromSeed(
          common::ToBytes("pds2.attestation.root." + std::to_string(seed)))),
      root_public_key_(root_key_.PublicKey()) {}

DeviceProvision AttestationService::ProvisionDevice(
    const std::string& device_id) {
  DeviceProvision provision{
      device_id,
      crypto::SigningKey::FromSeed(common::ToBytes(
          "pds2.device." + device_id + "." + std::to_string(counter_++))),
      {}};
  provision.certificate = root_key_.SignWithDomain(
      kCertDomain, DeviceProvision::CertifiedBytes(
                       device_id, provision.attestation_key.PublicKey()));
  return provision;
}

Bytes AttestationQuote::SignedBytes() const {
  Writer w;
  w.PutBytes(measurement);
  w.PutBytes(report_data);
  w.PutString(device_id);
  return w.Take();
}

Bytes AttestationQuote::Serialize() const {
  Writer w;
  w.PutBytes(measurement);
  w.PutBytes(report_data);
  w.PutString(device_id);
  w.PutBytes(device_public_key);
  w.PutBytes(device_certificate);
  w.PutBytes(signature);
  return w.Take();
}

Result<AttestationQuote> AttestationQuote::Deserialize(const Bytes& data) {
  Reader r(data);
  AttestationQuote quote;
  PDS2_ASSIGN_OR_RETURN(quote.measurement, r.GetBytes());
  PDS2_ASSIGN_OR_RETURN(quote.report_data, r.GetBytes());
  PDS2_ASSIGN_OR_RETURN(quote.device_id, r.GetString());
  PDS2_ASSIGN_OR_RETURN(quote.device_public_key, r.GetBytes());
  PDS2_ASSIGN_OR_RETURN(quote.device_certificate, r.GetBytes());
  PDS2_ASSIGN_OR_RETURN(quote.signature, r.GetBytes());
  if (!r.AtEnd()) return Status::Corruption("trailing bytes in quote");
  return quote;
}

Status VerifyQuote(const AttestationQuote& quote,
                   const Bytes& root_public_key,
                   const Bytes& expected_measurement) {
  // 1. The device key must be certified by the root of trust.
  PDS2_RETURN_IF_ERROR(crypto::VerifySignatureWithDomain(
      root_public_key, kCertDomain,
      DeviceProvision::CertifiedBytes(quote.device_id,
                                      quote.device_public_key),
      quote.device_certificate));
  // 2. The quote itself must be signed by that device key.
  PDS2_RETURN_IF_ERROR(crypto::VerifySignatureWithDomain(
      quote.device_public_key, kQuoteDomain, quote.SignedBytes(),
      quote.signature));
  // 3. The enclave identity must match what the verifier expects.
  if (quote.measurement != expected_measurement) {
    return Status::Unauthenticated(
        "enclave measurement does not match the expected code identity");
  }
  return Status::Ok();
}

}  // namespace pds2::tee
