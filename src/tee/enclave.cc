#include "tee/enclave.h"

#include "common/serial.h"
#include "crypto/cipher.h"
#include "crypto/sha256.h"

namespace pds2::tee {

using common::Bytes;
using common::Result;
using common::Writer;

namespace {
constexpr char kQuoteDomain[] = "pds2.tee.quote";
}  // namespace

Bytes MeasureKernel(const std::string& name, uint64_t version) {
  Writer w;
  w.PutString("pds2.enclave.measurement");
  w.PutString(name);
  w.PutU64(version);
  return crypto::Sha256::Hash(w.data());
}

Enclave::Enclave(std::unique_ptr<EnclaveKernel> kernel,
                 DeviceProvision provision, Bytes device_secret,
                 uint64_t entropy_seed)
    : kernel_(std::move(kernel)),
      provision_(std::move(provision)),
      device_secret_(std::move(device_secret)),
      measurement_(MeasureKernel(kernel_->Name(), kernel_->Version())),
      transport_key_(crypto::SigningKey::FromSeed(crypto::Sha256::Hash2(
          device_secret_,
          crypto::Sha256::Hash2(measurement_,
                                common::ToBytes(std::to_string(entropy_seed)))))),
      transport_public_key_(transport_key_.PublicKey()),
      rng_(entropy_seed) {}

AttestationQuote Enclave::GenerateQuote(const Bytes& user_data) const {
  AttestationQuote quote;
  quote.measurement = measurement_;
  // Bind the transport key into the report so a verifier knows encrypting
  // to it reaches exactly this enclave.
  Writer report;
  report.PutBytes(transport_public_key_);
  report.PutBytes(user_data);
  quote.report_data = report.Take();
  quote.device_id = provision_.device_id;
  quote.device_public_key = provision_.attestation_key.PublicKey();
  quote.device_certificate = provision_.certificate;
  quote.signature = provision_.attestation_key.SignWithDomain(
      kQuoteDomain, quote.SignedBytes());
  return quote;
}

Result<Bytes> Enclave::DeriveTransportKey(const Bytes& peer_public_key) const {
  return transport_key_.SharedSecret(peer_public_key);
}

Bytes Enclave::SealingKey() const {
  // Bound to device AND measurement: neither another device nor another
  // enclave identity can derive it (MRENCLAVE sealing policy).
  Bytes base = crypto::Sha256::Hash2(device_secret_, measurement_);
  return crypto::DeriveKey(base, "pds2.tee.seal", 32);
}

Bytes Enclave::Seal(const Bytes& data) const {
  crypto::AuthCipher cipher(SealingKey());
  Writer nonce;
  nonce.PutU64(seal_nonce_++);
  return cipher.Seal(data, nonce.Take());
}

Result<Bytes> Enclave::Unseal(const Bytes& sealed) const {
  crypto::AuthCipher cipher(SealingKey());
  return cipher.Open(sealed);
}

namespace {

// Adapter handing the kernel exactly the two capabilities it may use.
class ServicesAdapter : public EnclaveServices {
 public:
  ServicesAdapter(common::Rng& rng, const crypto::SigningKey& transport_key)
      : rng_(rng), transport_key_(transport_key) {}

  common::Rng& Entropy() override { return rng_; }

  Result<Bytes> DeriveTransportKey(const Bytes& peer_public_key) override {
    return transport_key_.SharedSecret(peer_public_key);
  }

 private:
  common::Rng& rng_;
  const crypto::SigningKey& transport_key_;
};

}  // namespace

Result<Bytes> Enclave::Ecall(const std::string& method, const Bytes& input) {
  ++ecall_count_;
  ServicesAdapter services(rng_, transport_key_);
  return kernel_->Handle(method, input, services);
}

}  // namespace pds2::tee
