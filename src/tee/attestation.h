#ifndef PDS2_TEE_ATTESTATION_H_
#define PDS2_TEE_ATTESTATION_H_

#include <string>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/schnorr.h"

namespace pds2::tee {

/// A device's provisioned attestation identity: its quoting key plus the
/// root-signed certificate binding that key to the device id. Stands in for
/// the EPID/DCAP provisioning a real SGX machine gets from Intel.
struct DeviceProvision {
  std::string device_id;
  crypto::SigningKey attestation_key;
  common::Bytes certificate;  // root signature over (device_id, public key)

  /// Bytes the root signs when certifying a device.
  static common::Bytes CertifiedBytes(const std::string& device_id,
                                      const common::Bytes& public_key);
};

/// The attestation root of trust (the "Intel Attestation Service" of the
/// simulation). Provisions devices and publishes the root public key every
/// verifier pins.
class AttestationService {
 public:
  explicit AttestationService(uint64_t seed);

  const common::Bytes& RootPublicKey() const { return root_public_key_; }

  /// Issues a quoting key + certificate to a device.
  DeviceProvision ProvisionDevice(const std::string& device_id);

 private:
  crypto::SigningKey root_key_;
  common::Bytes root_public_key_;
  uint64_t counter_ = 0;
};

/// A remote-attestation quote: proof, checkable against the root key alone,
/// that an enclave with `measurement` on a certified device produced
/// `report_data`. PDS2 binds the enclave's transport public key into
/// report_data so providers know their data can only be opened inside the
/// attested enclave.
struct AttestationQuote {
  common::Bytes measurement;
  common::Bytes report_data;
  std::string device_id;
  common::Bytes device_public_key;
  common::Bytes device_certificate;
  common::Bytes signature;  // device key over (measurement, report_data)

  common::Bytes SignedBytes() const;
  common::Bytes Serialize() const;
  static common::Result<AttestationQuote> Deserialize(
      const common::Bytes& data);
};

/// Full verification chain: device certificate against the root key, then
/// the quote signature against the device key, then the measurement against
/// the expected one. Unauthenticated on any failure.
common::Status VerifyQuote(const AttestationQuote& quote,
                           const common::Bytes& root_public_key,
                           const common::Bytes& expected_measurement);

}  // namespace pds2::tee

#endif  // PDS2_TEE_ATTESTATION_H_
