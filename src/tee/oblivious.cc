#include "tee/oblivious.h"

#include <algorithm>

#include "crypto/sha256.h"

namespace pds2::tee {

common::Bytes MemoryTrace::Digest() const {
  crypto::Sha256 h;
  for (const auto& [kind, index] : accesses_) {
    uint8_t buf[9];
    buf[0] = static_cast<uint8_t>(kind);
    for (int i = 0; i < 8; ++i) buf[1 + i] = static_cast<uint8_t>(index >> (8 * i));
    h.Update(buf, sizeof(buf));
  }
  return h.Finish();
}

uint64_t ObliviousSelect(bool cond, uint64_t a, uint64_t b) {
  // mask = all-ones when cond; arithmetic on both operands always runs.
  const uint64_t mask = ~(static_cast<uint64_t>(cond) - 1);
  return (a & mask) | (b & ~mask);
}

void ObliviousMinMax(uint64_t& a, uint64_t& b) {
  const bool swap = a > b;
  const uint64_t lo = ObliviousSelect(swap, b, a);
  const uint64_t hi = ObliviousSelect(swap, a, b);
  a = lo;
  b = hi;
}

namespace {

// Compare-exchange positions i < j; always reads and writes both.
void CompareExchange(std::vector<uint64_t>& v, size_t i, size_t j,
                     MemoryTrace* trace) {
  if (trace != nullptr) {
    trace->RecordRead(i);
    trace->RecordRead(j);
  }
  ObliviousMinMax(v[i], v[j]);
  if (trace != nullptr) {
    trace->RecordWrite(i);
    trace->RecordWrite(j);
  }
}

}  // namespace

void ObliviousSort(std::vector<uint64_t>& values, MemoryTrace* trace) {
  const size_t n = values.size();
  if (n < 2) return;
  // Pad to a power of two with +infinity sentinels; the padded positions
  // take part in the fixed comparison network like any other.
  size_t padded = 1;
  while (padded < n) padded <<= 1;
  values.resize(padded, UINT64_MAX);

  // Batcher odd-even mergesort network (iterative form): the schedule of
  // (i, i+k) pairs is a function of `padded` only.
  for (size_t p = 1; p < padded; p <<= 1) {
    for (size_t k = p; k >= 1; k >>= 1) {
      for (size_t j = k % p; j + k < padded; j += 2 * k) {
        for (size_t i = 0; i < k; ++i) {
          const size_t lo = i + j;
          const size_t hi = i + j + k;
          if (lo / (2 * p) == hi / (2 * p)) {
            CompareExchange(values, lo, hi, trace);
          }
        }
      }
    }
  }
  values.resize(n);
}

void LeakySort(std::vector<uint64_t>& values, MemoryTrace* trace) {
  // Insertion sort: its accesses (and early exits) depend on the data —
  // the archetypal leaky access pattern.
  for (size_t i = 1; i < values.size(); ++i) {
    uint64_t key = values[i];
    if (trace != nullptr) trace->RecordRead(i);
    size_t j = i;
    while (j > 0 && values[j - 1] > key) {
      if (trace != nullptr) {
        trace->RecordRead(j - 1);
        trace->RecordWrite(j);
      }
      values[j] = values[j - 1];
      --j;
    }
    values[j] = key;
    if (trace != nullptr) trace->RecordWrite(j);
  }
}

uint64_t ObliviousFilteredSum(const std::vector<uint64_t>& values,
                              const std::vector<bool>& flags,
                              MemoryTrace* trace) {
  uint64_t sum = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    if (trace != nullptr) trace->RecordRead(i);
    // Every element is read and multiplied; the flag only masks the value.
    sum += ObliviousSelect(i < flags.size() && flags[i], values[i], 0);
  }
  return sum;
}

}  // namespace pds2::tee
