#include "tee/training_kernel.h"

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "common/serial.h"
#include "ml/metrics.h"
#include "storage/provider_store.h"

namespace pds2::tee {

using common::Bytes;
using common::Reader;
using common::Result;
using common::Status;
using common::Writer;

common::Status TrainingKernel::Configure(const Bytes& input,
                                         EnclaveServices& services) {
  Reader r(input);
  PDS2_ASSIGN_OR_RETURN(std::string model_kind, r.GetString());
  PDS2_ASSIGN_OR_RETURN(uint64_t features, r.GetU64());
  PDS2_ASSIGN_OR_RETURN(uint64_t hidden, r.GetU64());
  PDS2_ASSIGN_OR_RETURN(double lr, r.GetDouble());
  PDS2_ASSIGN_OR_RETURN(uint64_t epochs, r.GetU64());
  PDS2_ASSIGN_OR_RETURN(uint64_t batch, r.GetU64());
  PDS2_ASSIGN_OR_RETURN(double l2, r.GetDouble());
  PDS2_ASSIGN_OR_RETURN(bool dp, r.GetBool());
  PDS2_ASSIGN_OR_RETURN(double clip, r.GetDouble());
  PDS2_ASSIGN_OR_RETURN(double noise, r.GetDouble());
  PDS2_ASSIGN_OR_RETURN(validate_, r.GetBool());
  PDS2_ASSIGN_OR_RETURN(feature_min_, r.GetDouble());
  PDS2_ASSIGN_OR_RETURN(feature_max_, r.GetDouble());
  PDS2_ASSIGN_OR_RETURN(min_label_fraction_, r.GetDouble());

  if (features == 0) return Status::InvalidArgument("zero features");

  if (model_kind == "logistic") {
    model_ = std::make_unique<ml::LogisticRegressionModel>(features);
  } else if (model_kind == "linear") {
    model_ = std::make_unique<ml::LinearRegressionModel>(features);
  } else if (model_kind == "mlp") {
    if (hidden == 0) return Status::InvalidArgument("mlp needs hidden units");
    model_ = std::make_unique<ml::MlpModel>(features, hidden,
                                            services.Entropy());
  } else if (model_kind.rfind("softmax:", 0) == 0) {
    const uint64_t classes = std::strtoull(model_kind.c_str() + 8, nullptr, 10);
    if (classes < 2) return Status::InvalidArgument("bad class count");
    model_ = std::make_unique<ml::SoftmaxRegressionModel>(features, classes);
  } else {
    return Status::InvalidArgument("unknown model kind: " + model_kind);
  }

  sgd_config_.learning_rate = lr;
  sgd_config_.epochs = epochs;
  sgd_config_.batch_size = batch == 0 ? 16 : batch;
  sgd_config_.l2 = l2;
  dp_config_.enabled = dp;
  dp_config_.clip_norm = clip;
  dp_config_.noise_multiplier = noise;
  data_ = ml::Dataset{};
  samples_seen_ = 0;
  initial_params_ = model_->GetParams();
  provider_spans_.clear();
  return Status::Ok();
}

common::Status TrainingKernel::ValidateIncoming(
    const ml::Dataset& incoming) const {
  if (!validate_) return Status::Ok();
  size_t positives = 0;
  for (size_t i = 0; i < incoming.Size(); ++i) {
    for (double v : incoming.x[i]) {
      if (v < feature_min_ || v > feature_max_) {
        return Status::FailedPrecondition(
            "in-enclave validation: feature value out of the declared range");
      }
    }
    if (incoming.y[i] > 0.5) ++positives;
  }
  if (min_label_fraction_ > 0.0 && incoming.Size() > 0) {
    const double pos_fraction =
        static_cast<double>(positives) / static_cast<double>(incoming.Size());
    const double minority = std::min(pos_fraction, 1.0 - pos_fraction);
    if (minority < min_label_fraction_) {
      return Status::FailedPrecondition(
          "in-enclave validation: dataset too label-imbalanced");
    }
  }
  return Status::Ok();
}

Result<Bytes> TrainingKernel::Handle(const std::string& method,
                                     const Bytes& input,
                                     EnclaveServices& services) {
  if (method == "configure") {
    PDS2_RETURN_IF_ERROR(Configure(input, services));
    return Bytes{};
  }

  if (method == "load_data") {
    Reader r(input);
    PDS2_ASSIGN_OR_RETURN(Bytes sealed, r.GetBytes());
    PDS2_ASSIGN_OR_RETURN(Bytes provider_pubkey, r.GetBytes());
    PDS2_ASSIGN_OR_RETURN(Bytes commitment, r.GetBytes());
    PDS2_ASSIGN_OR_RETURN(Bytes transport_key,
                          services.DeriveTransportKey(provider_pubkey));
    PDS2_ASSIGN_OR_RETURN(
        ml::Dataset incoming,
        storage::ProviderStorage::OpenTransfer(sealed, transport_key,
                                               commitment));
    if (model_ == nullptr) {
      return Status::FailedPrecondition("kernel not configured");
    }
    PDS2_RETURN_IF_ERROR(ValidateIncoming(incoming));
    const size_t begin = data_.Size();
    data_.Append(incoming);
    provider_spans_.emplace_back(begin, data_.Size());
    Writer w;
    w.PutU64(incoming.Size());
    return w.Take();
  }

  if (model_ == nullptr) {
    return Status::FailedPrecondition("kernel not configured");
  }

  if (method == "train") {
    ml::TrainStats stats = ml::Train(*model_, data_, sgd_config_,
                                     services.Entropy(), dp_config_);
    samples_seen_ = data_.Size();
    Writer w;
    w.PutDoubleVector(model_->GetParams());
    w.PutU64(stats.steps);
    return w.Take();
  }

  if (method == "set_params") {
    Reader r(input);
    PDS2_ASSIGN_OR_RETURN(ml::Vec params, r.GetDoubleVector());
    if (params.size() != model_->NumParams()) {
      return Status::InvalidArgument("parameter size mismatch");
    }
    model_->SetParams(params);
    return Bytes{};
  }

  if (method == "get_params") {
    Writer w;
    w.PutDoubleVector(model_->GetParams());
    return w.Take();
  }

  if (method == "merge") {
    Reader r(input);
    PDS2_ASSIGN_OR_RETURN(ml::Vec peer_params, r.GetDoubleVector());
    PDS2_ASSIGN_OR_RETURN(uint64_t peer_samples, r.GetU64());
    if (peer_params.size() != model_->NumParams()) {
      return Status::InvalidArgument("parameter size mismatch");
    }
    const double own = static_cast<double>(samples_seen_);
    const double peer = static_cast<double>(peer_samples);
    if (own + peer <= 0) {
      model_->SetParams(peer_params);
    } else {
      model_->SetParams(ml::WeightedAverage(
          {model_->GetParams(), peer_params}, {own > 0 ? own : 1e-9, peer}));
    }
    samples_seen_ = static_cast<uint64_t>(own + peer);
    return Bytes{};
  }

  if (method == "merge_all") {
    Reader r(input);
    PDS2_ASSIGN_OR_RETURN(uint32_t n, r.GetU32());
    if (n == 0) return Status::InvalidArgument("merge_all with no inputs");
    std::vector<ml::Vec> all_params;
    std::vector<double> weights;
    uint64_t total_samples = 0;
    for (uint32_t i = 0; i < n; ++i) {
      PDS2_ASSIGN_OR_RETURN(ml::Vec params, r.GetDoubleVector());
      PDS2_ASSIGN_OR_RETURN(uint64_t samples, r.GetU64());
      if (params.size() != model_->NumParams()) {
        return Status::InvalidArgument("parameter size mismatch in merge_all");
      }
      all_params.push_back(std::move(params));
      weights.push_back(static_cast<double>(std::max<uint64_t>(1, samples)));
      total_samples += samples;
    }
    model_->SetParams(ml::WeightedAverage(all_params, weights));
    samples_seen_ = total_samples;
    Writer w;
    w.PutDoubleVector(model_->GetParams());
    return w.Take();
  }

  if (method == "sample_count") {
    Writer w;
    w.PutU64(samples_seen_);
    return w.Take();
  }

  if (method == "coalition_eval") {
    Reader r(input);
    PDS2_ASSIGN_OR_RETURN(uint32_t k, r.GetU32());
    std::vector<size_t> members;
    for (uint32_t i = 0; i < k; ++i) {
      PDS2_ASSIGN_OR_RETURN(uint32_t idx, r.GetU32());
      if (idx >= provider_spans_.size()) {
        return Status::OutOfRange("unknown provider index in coalition");
      }
      members.push_back(idx);
    }
    PDS2_ASSIGN_OR_RETURN(Bytes eval_bytes, r.GetBytes());
    PDS2_ASSIGN_OR_RETURN(ml::Dataset eval,
                          storage::DeserializeDataset(eval_bytes));

    ml::Dataset coalition_data;
    for (size_t idx : members) {
      const auto [begin, end] = provider_spans_[idx];
      for (size_t row = begin; row < end; ++row) {
        coalition_data.x.push_back(data_.x[row]);
        coalition_data.y.push_back(data_.y[row]);
      }
    }

    // Fresh model from the configured initialization; the kernel's live
    // training state is untouched. Deterministic training seed keeps the
    // utility a pure set function (Shapley axioms need that).
    auto probe = model_->Clone();
    probe->SetParams(initial_params_);
    common::Rng train_rng(0x5eed);
    ml::Train(*probe, coalition_data, sgd_config_, train_rng, dp_config_);
    Writer w;
    w.PutDouble(ml::Accuracy(*probe, eval));
    return w.Take();
  }

  if (method == "evaluate") {
    Reader r(input);
    PDS2_ASSIGN_OR_RETURN(Bytes dataset_bytes, r.GetBytes());
    PDS2_ASSIGN_OR_RETURN(ml::Dataset eval,
                          storage::DeserializeDataset(dataset_bytes));
    Writer w;
    w.PutDouble(ml::Accuracy(*model_, eval));
    w.PutDouble(model_->MeanLoss(eval));
    return w.Take();
  }

  return Status::NotFound("training kernel: unknown method " + method);
}

}  // namespace pds2::tee
