#ifndef PDS2_TEE_ENCLAVE_H_
#define PDS2_TEE_ENCLAVE_H_

#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/result.h"
#include "common/rng.h"
#include "tee/attestation.h"

namespace pds2::tee {

/// Enclave facilities available to kernel code (and only to kernel code):
/// private entropy and the enclave's ECDH capability. The transport secret
/// itself is never handed out.
class EnclaveServices {
 public:
  virtual ~EnclaveServices() = default;
  virtual common::Rng& Entropy() = 0;
  virtual common::Result<common::Bytes> DeriveTransportKey(
      const common::Bytes& peer_public_key) = 0;
};

/// The "code" loaded into an enclave. A kernel's identity (name + version)
/// determines the enclave measurement; its state lives exclusively inside
/// the enclave and is reachable only through Ecall — the software analogue
/// of SGX's EPC isolation. Host code holding an Enclave can invoke methods
/// but can never inspect kernel state.
class EnclaveKernel {
 public:
  virtual ~EnclaveKernel() = default;

  virtual std::string Name() const = 0;
  virtual uint64_t Version() const = 0;

  /// Handles one enclave call.
  virtual common::Result<common::Bytes> Handle(const std::string& method,
                                               const common::Bytes& input,
                                               EnclaveServices& services) = 0;
};

/// Computes the measurement (MRENCLAVE analogue) of a kernel identity.
common::Bytes MeasureKernel(const std::string& name, uint64_t version);

/// A simulated SGX enclave: measured launch, remote attestation, sealed
/// storage bound to (device, measurement), an enclave-private transport key
/// for ECDH with providers, and ecall-only access to the kernel.
class Enclave {
 public:
  /// "EINIT": creates an enclave running `kernel` on the device described
  /// by `provision`. `device_secret` models the CPU's fused sealing secret.
  Enclave(std::unique_ptr<EnclaveKernel> kernel, DeviceProvision provision,
          common::Bytes device_secret, uint64_t entropy_seed);

  Enclave(Enclave&&) = default;
  Enclave& operator=(Enclave&&) = default;

  /// The enclave's code identity.
  const common::Bytes& Measurement() const { return measurement_; }

  /// The enclave's transport public key. The matching secret never leaves
  /// the enclave; providers encrypt data to it after checking a quote.
  const common::Bytes& TransportPublicKey() const {
    return transport_public_key_;
  }

  /// Remote attestation: a quote over `user_data` plus the transport key,
  /// verifiable against the attestation root.
  AttestationQuote GenerateQuote(const common::Bytes& user_data) const;

  /// Derives the shared transport key with a peer (ECDH inside the
  /// enclave).
  common::Result<common::Bytes> DeriveTransportKey(
      const common::Bytes& peer_public_key) const;

  /// Seals data so only this enclave identity on this device can unseal it
  /// (key = KDF(device_secret, measurement)).
  common::Bytes Seal(const common::Bytes& data) const;
  common::Result<common::Bytes> Unseal(const common::Bytes& sealed) const;

  /// The only door into the enclave: dispatches to the kernel.
  common::Result<common::Bytes> Ecall(const std::string& method,
                                      const common::Bytes& input);

  /// Number of ecalls served (host-visible telemetry; contents are not).
  uint64_t EcallCount() const { return ecall_count_; }

 private:
  common::Bytes SealingKey() const;

  std::unique_ptr<EnclaveKernel> kernel_;
  DeviceProvision provision_;
  common::Bytes device_secret_;
  common::Bytes measurement_;
  crypto::SigningKey transport_key_;
  common::Bytes transport_public_key_;
  common::Rng rng_;
  uint64_t ecall_count_ = 0;
  // mutable: sealing uses a fresh nonce per call.
  mutable uint64_t seal_nonce_ = 0;
};

}  // namespace pds2::tee

#endif  // PDS2_TEE_ENCLAVE_H_
