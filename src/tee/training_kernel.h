#ifndef PDS2_TEE_TRAINING_KERNEL_H_
#define PDS2_TEE_TRAINING_KERNEL_H_

#include <memory>
#include <string>

#include "ml/model.h"
#include "ml/sgd.h"
#include "tee/enclave.h"

namespace pds2::tee {

/// The standard PDS2 model-training workload kernel. Providers' data enters
/// sealed to the enclave's transport key and is decrypted, verified against
/// its Merkle commitment, and accumulated entirely inside the enclave; the
/// host only ever sees (and gossips) model parameters. This realizes the
/// paper's §II-E requirement that even executors cannot access the data
/// they compute on.
///
/// Ecall methods (all arguments serialized with common::Writer):
///   "configure"  (string model, u64 features, u64 hidden, double lr,
///                 u64 epochs, u64 batch, double l2,
///                 bool dp, double clip, double noise,
///                 bool validate, double feat_min, double feat_max,
///                 double min_label_fraction) -> ()
///       model in {"logistic", "linear", "mlp", "softmax:<classes>"}
///       The validate block enables in-enclave data checks (§IV-C): every
///       incoming record's features must lie in [feat_min, feat_max] and
///       binary datasets must not be more imbalanced than
///       min_label_fraction; violating datasets are rejected wholesale.
///   "load_data"  (bytes sealed, bytes provider_pubkey, bytes commitment)
///                -> u64 records_loaded
///       Derives the transport key via enclave ECDH, opens the transfer,
///       verifies the commitment, appends to the private training set.
///   "train"      () -> (doubles params, u64 steps)
///   "set_params" (doubles params) -> ()
///   "get_params" () -> doubles params
///   "merge"      (doubles peer_params, u64 peer_samples) -> ()
///       Sample-count-weighted average (gossip merge rule).
///   "merge_all"  (u32 n, n x (doubles params, u64 samples)) -> doubles
///       Deterministic sample-weighted all-reduce: every executor feeding
///       the same inputs in the same canonical order computes bit-identical
///       parameters, so their on-chain result hashes agree.
///   "sample_count" () -> u64
///   "evaluate"   (bytes serialized_dataset) -> (double accuracy, double loss)
///   "coalition_eval" (u32 k, k x u32 provider_index, bytes eval_dataset)
///                -> double accuracy
///       Trains a FRESH model (from the configured initialization) on the
///       union of the given providers' contributions and scores it on the
///       supplied evaluation set — all inside the enclave. This is the
///       utility oracle for privacy-preserving data-Shapley valuation
///       (paper §IV-A): the host learns coalition accuracies, never data.
class TrainingKernel : public EnclaveKernel {
 public:
  static constexpr uint64_t kVersion = 3;

  std::string Name() const override { return "pds2.training"; }
  uint64_t Version() const override { return kVersion; }

  common::Result<common::Bytes> Handle(const std::string& method,
                                       const common::Bytes& input,
                                       EnclaveServices& services) override;

 private:
  common::Status Configure(const common::Bytes& input,
                           EnclaveServices& services);

  common::Status ValidateIncoming(const ml::Dataset& incoming) const;

  std::unique_ptr<ml::Model> model_;
  ml::SgdConfig sgd_config_;
  ml::DpConfig dp_config_;
  ml::Dataset data_;           // never leaves the enclave
  uint64_t samples_seen_ = 0;  // training samples backing current params
  ml::Vec initial_params_;     // configured initialization (coalition_eval)
  // Record span [begin, end) contributed by each load_data call, in order.
  std::vector<std::pair<size_t, size_t>> provider_spans_;

  // In-enclave validation policy (configure's validate block).
  bool validate_ = false;
  double feature_min_ = -1e30;
  double feature_max_ = 1e30;
  double min_label_fraction_ = 0.0;
};

}  // namespace pds2::tee

#endif  // PDS2_TEE_TRAINING_KERNEL_H_
