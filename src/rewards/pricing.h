#ifndef PDS2_REWARDS_PRICING_H_
#define PDS2_REWARDS_PRICING_H_

#include <vector>

#include "common/rng.h"
#include "ml/dataset.h"
#include "ml/model.h"

namespace pds2::rewards {

/// Model-based pricing (Chen, Koutris & Kumar [32], §IV-A): the platform
/// trains one optimal model instance and sells degraded versions — Gaussian
/// noise is injected into the parameters with variance inversely
/// proportional to the buyer's budget, so paying more buys accuracy.
class ModelPricer {
 public:
  /// `full_price` is the budget that buys the noise-free model;
  /// `noise_scale` calibrates degradation for smaller budgets: the injected
  /// per-parameter stddev is noise_scale * (full_price / budget - 1).
  ModelPricer(const ml::Model& optimal_model, double full_price,
              double noise_scale);

  /// A model instance degraded according to `budget` (clamped to
  /// (0, full_price]). Deterministic given the rng state.
  std::unique_ptr<ml::Model> PriceOut(double budget, common::Rng& rng) const;

  /// The noise stddev applied at `budget`.
  double NoiseStddev(double budget) const;

  double full_price() const { return full_price_; }

 private:
  std::unique_ptr<ml::Model> optimal_;
  double full_price_;
  double noise_scale_;
};

/// One point of a price/accuracy curve.
struct PricePoint {
  double budget = 0.0;
  double noise_stddev = 0.0;
  double accuracy = 0.0;
};

/// Sweeps budgets and measures the delivered accuracy on `test`, averaging
/// `trials` noise draws per budget. The curve must be (stochastically)
/// non-decreasing in budget — the arbitrage-freeness the scheme needs.
std::vector<PricePoint> PriceAccuracyCurve(const ModelPricer& pricer,
                                           const ml::Dataset& test,
                                           const std::vector<double>& budgets,
                                           size_t trials, common::Rng& rng);

}  // namespace pds2::rewards

#endif  // PDS2_REWARDS_PRICING_H_
