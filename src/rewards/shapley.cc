#include "rewards/shapley.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "common/thread_pool.h"
#include "ml/metrics.h"
#include "ml/model.h"
#include "ml/sgd.h"

namespace pds2::rewards {

using common::Result;
using common::Rng;
using common::Status;

namespace {

// C(n, k) table-free binomial for the exact Shapley weights; n <= 20 so
// doubles are exact.
double Binomial(size_t n, size_t k) {
  double result = 1.0;
  for (size_t i = 0; i < k; ++i) {
    result *= static_cast<double>(n - i) / static_cast<double>(i + 1);
  }
  return result;
}

std::vector<size_t> MaskToCoalition(uint64_t mask, size_t n) {
  std::vector<size_t> coalition;
  for (size_t i = 0; i < n; ++i) {
    if ((mask >> i) & 1) coalition.push_back(i);
  }
  return coalition;
}

}  // namespace

double CachedUtility::operator()(const std::vector<size_t>& coalition) const {
  uint64_t mask = 0;
  for (size_t i : coalition) {
    assert(i < 64);
    mask |= uint64_t{1} << i;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(mask);
    if (it != cache_.end()) return it->second;
  }
  // The utility is a pure set function, so concurrent misses on the same
  // mask compute the same value; the first insert wins and the duplicate
  // work is bounded by the number of workers.
  const double value = inner_(coalition);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = cache_.emplace(mask, value);
  if (inserted) ++misses_;
  return it->second;
}

size_t CachedUtility::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

Result<std::vector<double>> ExactShapley(size_t n, const UtilityFn& utility) {
  if (n == 0) return std::vector<double>{};
  if (n > 20) {
    return Status::InvalidArgument(
        "exact Shapley is exponential; refusing n > 20 (use the Monte-Carlo "
        "estimators)");
  }

  // Cache all subset utilities once.
  const uint64_t full = uint64_t{1} << n;
  std::vector<double> value(full);
  for (uint64_t mask = 0; mask < full; ++mask) {
    value[mask] = utility(MaskToCoalition(mask, n));
  }

  // phi_i = sum over S not containing i of
  //   |S|! (n-|S|-1)! / n! * (v(S+i) - v(S)).
  std::vector<double> shapley(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t bit = uint64_t{1} << i;
    for (uint64_t mask = 0; mask < full; ++mask) {
      if (mask & bit) continue;
      const size_t s = static_cast<size_t>(__builtin_popcountll(mask));
      const double weight =
          1.0 / (static_cast<double>(n) * Binomial(n - 1, s));
      shapley[i] += weight * (value[mask | bit] - value[mask]);
    }
  }
  return shapley;
}

std::vector<double> MonteCarloShapley(size_t n, const UtilityFn& utility,
                                      size_t permutations, Rng& rng) {
  std::vector<double> shapley(n, 0.0);
  if (n == 0 || permutations == 0) return shapley;

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  const double empty_value = utility({});

  for (size_t p = 0; p < permutations; ++p) {
    rng.Shuffle(order);
    std::vector<size_t> coalition;
    double previous = empty_value;
    for (size_t i : order) {
      coalition.push_back(i);
      // Utilities are coalition (set) functions: keep a sorted copy so the
      // cache hits regardless of arrival order.
      std::vector<size_t> sorted = coalition;
      std::sort(sorted.begin(), sorted.end());
      const double current = utility(sorted);
      shapley[i] += current - previous;
      previous = current;
    }
  }
  for (double& v : shapley) v /= static_cast<double>(permutations);
  return shapley;
}

std::vector<double> ParallelMonteCarloShapley(size_t n,
                                              const UtilityFn& utility,
                                              size_t permutations,
                                              uint64_t seed,
                                              common::ThreadPool* pool) {
  std::vector<double> shapley(n, 0.0);
  if (n == 0 || permutations == 0) return shapley;

  const double empty_value = utility({});

  // Marginal contributions indexed (permutation, player). Execution order
  // never matters: permutation p's stream depends only on (seed, p), each
  // worker writes a disjoint row, and the reduction below runs in fixed
  // permutation order — hence bit-identical results at any pool size.
  std::vector<double> deltas(permutations * n, 0.0);
  auto run_permutation = [&](size_t p) {
    uint64_t stream = seed + 0x9e3779b97f4a7c15ULL * (p + 1);
    common::Rng rng(common::SplitMix64(stream));
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    rng.Shuffle(order);

    std::vector<size_t> coalition;
    coalition.reserve(n);
    double previous = empty_value;
    for (size_t i : order) {
      coalition.push_back(i);
      std::vector<size_t> sorted = coalition;
      std::sort(sorted.begin(), sorted.end());
      const double current = utility(sorted);
      deltas[p * n + i] = current - previous;
      previous = current;
    }
  };

  if (pool != nullptr && pool->NumThreads() > 1) {
    pool->ParallelFor(0, permutations, run_permutation);
  } else {
    for (size_t p = 0; p < permutations; ++p) run_permutation(p);
  }

  for (size_t p = 0; p < permutations; ++p) {
    for (size_t i = 0; i < n; ++i) shapley[i] += deltas[p * n + i];
  }
  for (double& v : shapley) v /= static_cast<double>(permutations);
  return shapley;
}

TmcResult TruncatedMonteCarloShapley(size_t n, const UtilityFn& utility,
                                     size_t permutations, double tolerance,
                                     Rng& rng) {
  TmcResult result;
  result.values.assign(n, 0.0);
  if (n == 0 || permutations == 0) return result;

  std::vector<size_t> full(n);
  std::iota(full.begin(), full.end(), 0);
  const double grand_value = utility(full);
  const double empty_value = utility({});
  result.utility_calls = 2;

  std::vector<size_t> order = full;
  for (size_t p = 0; p < permutations; ++p) {
    rng.Shuffle(order);
    std::vector<size_t> coalition;
    double previous = empty_value;
    for (size_t i : order) {
      if (std::abs(grand_value - previous) < tolerance) {
        // Truncation: remaining players contribute ~nothing this pass.
        break;
      }
      coalition.push_back(i);
      std::vector<size_t> sorted = coalition;
      std::sort(sorted.begin(), sorted.end());
      const double current = utility(sorted);
      ++result.utility_calls;
      result.values[i] += current - previous;
      previous = current;
    }
  }
  for (double& v : result.values) v /= static_cast<double>(permutations);
  return result;
}

std::vector<double> SizeProportionalShares(const std::vector<size_t>& sizes,
                                           double total) {
  const double sum = static_cast<double>(
      std::accumulate(sizes.begin(), sizes.end(), size_t{0}));
  std::vector<double> shares(sizes.size(), 0.0);
  if (sum <= 0) return shares;
  for (size_t i = 0; i < sizes.size(); ++i) {
    shares[i] = total * static_cast<double>(sizes[i]) / sum;
  }
  return shares;
}

std::vector<double> LeaveOneOut(size_t n, const UtilityFn& utility) {
  std::vector<double> values(n, 0.0);
  if (n == 0) return values;
  std::vector<size_t> everyone(n);
  std::iota(everyone.begin(), everyone.end(), 0);
  const double grand = utility(everyone);
  for (size_t i = 0; i < n; ++i) {
    std::vector<size_t> without;
    without.reserve(n - 1);
    for (size_t j = 0; j < n; ++j) {
      if (j != i) without.push_back(j);
    }
    values[i] = grand - utility(without);
  }
  return values;
}

std::vector<double> BanzhafIndex(size_t n, const UtilityFn& utility,
                                 size_t samples, Rng& rng) {
  std::vector<double> values(n, 0.0);
  if (n == 0 || samples == 0) return values;
  for (size_t s = 0; s < samples; ++s) {
    // Uniformly random coalition of all players, then toggle each i.
    std::vector<bool> in(n);
    for (size_t i = 0; i < n; ++i) in[i] = rng.NextBool(0.5);
    for (size_t i = 0; i < n; ++i) {
      std::vector<size_t> with_i, without_i;
      for (size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        if (in[j]) {
          with_i.push_back(j);
          without_i.push_back(j);
        }
      }
      with_i.push_back(i);
      std::sort(with_i.begin(), with_i.end());
      values[i] += utility(with_i) - utility(without_i);
    }
  }
  for (double& v : values) v /= static_cast<double>(samples);
  return values;
}

std::vector<double> NormalizeToRewards(const std::vector<double>& values,
                                       double total) {
  std::vector<double> clamped(values.size());
  double sum = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    clamped[i] = std::max(0.0, values[i]);
    sum += clamped[i];
  }
  if (sum <= 0.0) {
    // Degenerate game: nobody added value; split evenly.
    const double even = values.empty() ? 0.0 : total / values.size();
    std::fill(clamped.begin(), clamped.end(), even);
    return clamped;
  }
  for (double& v : clamped) v = v / sum * total;
  return clamped;
}

UtilityFn MakeMlUtility(const std::vector<ml::Dataset>& provider_data,
                        const ml::Dataset& test, uint64_t train_seed) {
  const size_t features = test.NumFeatures();
  return [&provider_data, &test, features,
          train_seed](const std::vector<size_t>& coalition) {
    if (coalition.empty()) return 0.5;  // majority-guess baseline
    ml::Dataset merged;
    for (size_t i : coalition) merged.Append(provider_data[i]);
    if (merged.Size() == 0) return 0.5;
    ml::LogisticRegressionModel model(features);
    ml::SgdConfig config;
    config.epochs = 8;
    config.learning_rate = 0.2;
    common::Rng rng(train_seed);  // fixed: utility is a pure set function
    ml::Train(model, merged, config, rng);
    return ml::Accuracy(model, test);
  };
}

}  // namespace pds2::rewards
