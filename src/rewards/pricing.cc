#include "rewards/pricing.h"

#include <algorithm>

#include "ml/metrics.h"

namespace pds2::rewards {

ModelPricer::ModelPricer(const ml::Model& optimal_model, double full_price,
                         double noise_scale)
    : optimal_(optimal_model.Clone()),
      full_price_(full_price),
      noise_scale_(noise_scale) {}

double ModelPricer::NoiseStddev(double budget) const {
  const double clamped = std::clamp(budget, full_price_ * 1e-3, full_price_);
  return noise_scale_ * (full_price_ / clamped - 1.0);
}

std::unique_ptr<ml::Model> ModelPricer::PriceOut(double budget,
                                                 common::Rng& rng) const {
  auto model = optimal_->Clone();
  const double stddev = NoiseStddev(budget);
  if (stddev > 0.0) {
    ml::Vec params = model->GetParams();
    for (double& p : params) p += rng.NextGaussian(0.0, stddev);
    model->SetParams(params);
  }
  return model;
}

std::vector<PricePoint> PriceAccuracyCurve(const ModelPricer& pricer,
                                           const ml::Dataset& test,
                                           const std::vector<double>& budgets,
                                           size_t trials, common::Rng& rng) {
  std::vector<PricePoint> curve;
  curve.reserve(budgets.size());
  for (double budget : budgets) {
    PricePoint point;
    point.budget = budget;
    point.noise_stddev = pricer.NoiseStddev(budget);
    double acc_sum = 0.0;
    for (size_t t = 0; t < trials; ++t) {
      auto model = pricer.PriceOut(budget, rng);
      acc_sum += ml::Accuracy(*model, test);
    }
    point.accuracy = acc_sum / static_cast<double>(trials);
    curve.push_back(point);
  }
  return curve;
}

}  // namespace pds2::rewards
