#ifndef PDS2_REWARDS_SHAPLEY_H_
#define PDS2_REWARDS_SHAPLEY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "ml/dataset.h"

namespace pds2::common {
class ThreadPool;
}  // namespace pds2::common

namespace pds2::rewards {

/// Value of a coalition of players (providers), identified by index. The
/// canonical instantiation is "accuracy of a model trained on the union of
/// the coalition's datasets" (Data Shapley, [30]).
using UtilityFn = std::function<double(const std::vector<size_t>&)>;

/// Exact Shapley values by subset enumeration: O(2^n) utility evaluations.
/// Fails (InvalidArgument) for n > 20 — the exponential wall the paper
/// calls out in §IV-A is a real constraint, not a soft warning.
common::Result<std::vector<double>> ExactShapley(size_t n,
                                                 const UtilityFn& utility);

/// Monte-Carlo permutation estimator: samples `permutations` random player
/// orders and averages marginal contributions. Unbiased; error shrinks as
/// 1/sqrt(permutations).
std::vector<double> MonteCarloShapley(size_t n, const UtilityFn& utility,
                                      size_t permutations, common::Rng& rng);

/// Monte-Carlo permutation estimator parallelized over permutations. Each
/// permutation p draws from its own RNG stream derived from (seed, p), and
/// marginal contributions are reduced in permutation order, so the result is
/// bit-identical for every pool size — pool == nullptr (or 1 thread) IS the
/// sequential reference. `utility` must be safe to call concurrently
/// (CachedUtility is; MakeMlUtility's closure is pure).
std::vector<double> ParallelMonteCarloShapley(size_t n,
                                              const UtilityFn& utility,
                                              size_t permutations,
                                              uint64_t seed,
                                              common::ThreadPool* pool);

/// Truncated Monte-Carlo (Ghorbani & Zou [30]): within each sampled
/// permutation, stops scanning once the running coalition's utility is
/// within `tolerance` of the grand coalition's — the remaining players get
/// zero marginal for that permutation. Far fewer utility calls on
/// diminishing-returns games.
struct TmcResult {
  std::vector<double> values;
  size_t utility_calls = 0;
};
TmcResult TruncatedMonteCarloShapley(size_t n, const UtilityFn& utility,
                                     size_t permutations, double tolerance,
                                     common::Rng& rng);

/// The naive baseline the paper says "does not work well" ([27]): split
/// `total` proportionally to dataset sizes, ignoring data quality.
std::vector<double> SizeProportionalShares(const std::vector<size_t>& sizes,
                                           double total);

/// Leave-one-out valuation: phi_i = v(N) - v(N \ {i}). Only n+1 utility
/// calls, but blind to redundancy (two providers with identical data both
/// score ~0). A cheap middle ground the tests compare against Shapley.
std::vector<double> LeaveOneOut(size_t n, const UtilityFn& utility);

/// Banzhaf index estimated by sampling: the average marginal contribution
/// of player i over uniformly random coalitions of the others. Unlike
/// Shapley it weights all coalition sizes equally (and is not efficient —
/// values need not sum to v(N)).
std::vector<double> BanzhafIndex(size_t n, const UtilityFn& utility,
                                 size_t samples, common::Rng& rng);

/// Normalizes raw values to non-negative weights summing to `total`
/// (negative Shapley values — actively harmful data — are clamped to 0, so
/// they earn nothing rather than owing money).
std::vector<double> NormalizeToRewards(const std::vector<double>& values,
                                       double total);

/// Caching wrapper: memoizes coalition utilities by bitmask (n <= 63) so
/// repeated evaluations (exact enumeration, MC permutations) pay for each
/// distinct coalition once. Safe to call from multiple pool workers: the
/// cache is mutex-guarded and the (pure) inner utility is evaluated outside
/// the lock, so concurrent misses on the same coalition may compute twice
/// but always store the same value. misses() counts distinct coalitions
/// inserted.
class CachedUtility {
 public:
  explicit CachedUtility(UtilityFn inner) : inner_(std::move(inner)) {}

  double operator()(const std::vector<size_t>& coalition) const;
  size_t misses() const;

 private:
  UtilityFn inner_;
  mutable std::mutex mu_;
  mutable std::map<uint64_t, double> cache_;
  mutable size_t misses_ = 0;
};

/// Builds the standard ML utility: logistic regression trained on the
/// union of the coalition members' datasets, scored by accuracy on `test`.
/// Deterministic per coalition (fixed training seed) so Shapley axioms hold
/// exactly in tests.
UtilityFn MakeMlUtility(const std::vector<ml::Dataset>& provider_data,
                        const ml::Dataset& test, uint64_t train_seed);

}  // namespace pds2::rewards

#endif  // PDS2_REWARDS_SHAPLEY_H_
