#include "common/logging.h"

#include <atomic>
#include <cstdio>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace pds2::common {

namespace {

LogLevel g_level = LogLevel::kWarn;

// Installed sink; nullptr means "use the default stderr sink". Atomic so
// ThreadPool workers can log while a test swaps sinks on the main thread.
std::atomic<LogSink*> g_sink{nullptr};

const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

void CountRecord(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      PDS2_M_COUNT("log.debug", 1);
      break;
    case LogLevel::kInfo:
      PDS2_M_COUNT("log.info", 1);
      break;
    case LogLevel::kWarn:
      PDS2_M_COUNT("log.warn", 1);
      break;
    case LogLevel::kError:
      PDS2_M_COUNT("log.error", 1);
      break;
  }
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

void StderrLogSink::Write(const LogRecord& record) {
  std::string line = record.message;
  for (const auto& [key, value] : record.fields) {
    line += ' ';
    line += key;
    line += '=';
    line += value;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LogLevelName(record.level),
               record.file, record.line, line.c_str());
}

LogSink* SetLogSink(LogSink* sink) {
  return g_sink.exchange(sink, std::memory_order_acq_rel);
}

void LogDispatch(LogRecord&& record) {
  record.file = Basename(record.file);
  CountRecord(record.level);
  {
    // The flight recorder keeps the most recent log lines alongside spans
    // so a post-mortem dump shows what the process was saying when it died.
    obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
    if (recorder.enabled()) recorder.OnLog(record);
  }
  LogSink* sink = g_sink.load(std::memory_order_acquire);
  if (sink != nullptr) {
    sink->Write(record);
    return;
  }
  static StderrLogSink default_sink;
  default_sink.Write(record);
}

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg) {
  LogRecord record;
  record.level = level;
  record.file = file;
  record.line = line;
  record.message = msg;
  LogDispatch(std::move(record));
}

}  // namespace pds2::common
