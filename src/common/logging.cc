#include "common/logging.h"

#include <cstdio>

namespace pds2::common {

namespace {

LogLevel g_level = LogLevel::kWarn;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg) {
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), Basename(file),
               line, msg.c_str());
}

}  // namespace pds2::common
