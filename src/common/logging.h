#ifndef PDS2_COMMON_LOGGING_H_
#define PDS2_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace pds2::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
/// Default is kWarn so tests and benchmarks stay quiet.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits one formatted line to stderr (internal; use the PDS2_LOG macro).
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg);

namespace internal_logging {

/// Stream-style collector used by the macro below.
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogLine() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

}  // namespace pds2::common

#define PDS2_LOG(level)                                                     \
  if (::pds2::common::LogLevel::level < ::pds2::common::GetLogLevel()) {    \
  } else                                                                    \
    ::pds2::common::internal_logging::LogLine(                              \
        ::pds2::common::LogLevel::level, __FILE__, __LINE__)

#endif  // PDS2_COMMON_LOGGING_H_
