#ifndef PDS2_COMMON_LOGGING_H_
#define PDS2_COMMON_LOGGING_H_

#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace pds2::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
/// Default is kWarn so tests and benchmarks stay quiet.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Inline so header-only consumers (e.g. pds2_obs, which pds2_common links
// against and therefore cannot depend on) can format levels without
// pulling in logging.cc.
inline const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

/// One fully assembled log event, as handed to the active sink.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  const char* file = "";  // basename of the emitting source file
  int line = 0;
  std::string message;
  /// Structured key=value fields attached via PDS2_LOG(...).Field(k, v).
  std::vector<std::pair<std::string, std::string>> fields;
};

/// Destination for log records. Write() must be thread-safe: PDS2_LOG fires
/// from ThreadPool workers.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(const LogRecord& record) = 0;
};

/// Default sink: one formatted line per record to stderr, fields appended
/// as key=value.
class StderrLogSink : public LogSink {
 public:
  void Write(const LogRecord& record) override;
};

/// Test sink: captures records in memory for assertions.
class CaptureLogSink : public LogSink {
 public:
  void Write(const LogRecord& record) override {
    std::lock_guard<std::mutex> lock(mu_);
    records_.push_back(record);
  }

  std::vector<LogRecord> Records() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_;
  }

  size_t Count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_.size();
  }

  /// True if any captured message contains `needle`.
  bool Contains(const std::string& needle) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const LogRecord& record : records_) {
      if (record.message.find(needle) != std::string::npos) return true;
    }
    return false;
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    records_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::vector<LogRecord> records_;
};

/// Replaces the process-wide sink; pass nullptr to restore the default
/// stderr sink. The previous sink is returned so tests can reinstall it.
/// The caller keeps ownership of `sink` and must outlive its installation.
LogSink* SetLogSink(LogSink* sink);

/// Routes one record through the active sink (internal; use PDS2_LOG).
void LogDispatch(LogRecord&& record);

/// Back-compat helper for direct callers.
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg);

namespace internal_logging {

/// Stream-style collector used by the macro below.
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line) {
    record_.level = level;
    record_.file = file;
    record_.line = line;
  }
  ~LogLine() {
    record_.message = stream_.str();
    LogDispatch(std::move(record_));
  }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

  /// Attaches a structured key=value field (value is streamed to string).
  template <typename T>
  LogLine& Field(const std::string& key, const T& value) {
    std::ostringstream s;
    s << value;
    record_.fields.emplace_back(key, s.str());
    return *this;
  }

 private:
  LogRecord record_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

}  // namespace pds2::common

#define PDS2_LOG(level)                                                     \
  if (::pds2::common::LogLevel::level < ::pds2::common::GetLogLevel()) {    \
  } else                                                                    \
    ::pds2::common::internal_logging::LogLine(                              \
        ::pds2::common::LogLevel::level, __FILE__, __LINE__)

#endif  // PDS2_COMMON_LOGGING_H_
