#include "common/serial.h"

#include <cstring>

namespace pds2::common {

void Writer::PutU8(uint8_t v) { data_.push_back(v); }

void Writer::PutU16(uint16_t v) {
  for (int i = 0; i < 2; ++i) data_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void Writer::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) data_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void Writer::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) data_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void Writer::PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }

void Writer::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void Writer::PutBool(bool v) { PutU8(v ? 1 : 0); }

void Writer::PutBytes(const Bytes& b) {
  PutU32(static_cast<uint32_t>(b.size()));
  data_.insert(data_.end(), b.begin(), b.end());
}

void Writer::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  data_.insert(data_.end(), s.begin(), s.end());
}

void Writer::PutRaw(const Bytes& b) {
  data_.insert(data_.end(), b.begin(), b.end());
}

void Writer::PutU64Vector(const std::vector<uint64_t>& v) {
  PutU32(static_cast<uint32_t>(v.size()));
  for (uint64_t x : v) PutU64(x);
}

void Writer::PutDoubleVector(const std::vector<double>& v) {
  PutU32(static_cast<uint32_t>(v.size()));
  for (double x : v) PutDouble(x);
}

Status Reader::Need(size_t n) {
  if (data_.size() - pos_ < n) {
    return Status::Corruption("serialized buffer truncated");
  }
  return Status::Ok();
}

Result<uint8_t> Reader::GetU8() {
  PDS2_RETURN_IF_ERROR(Need(1));
  return data_[pos_++];
}

Result<uint16_t> Reader::GetU16() {
  PDS2_RETURN_IF_ERROR(Need(2));
  uint16_t v = 0;
  for (int i = 0; i < 2; ++i) v |= static_cast<uint16_t>(data_[pos_++]) << (8 * i);
  return v;
}

Result<uint32_t> Reader::GetU32() {
  PDS2_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

Result<uint64_t> Reader::GetU64() {
  PDS2_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

Result<int64_t> Reader::GetI64() {
  PDS2_ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return static_cast<int64_t>(v);
}

Result<double> Reader::GetDouble() {
  PDS2_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<bool> Reader::GetBool() {
  PDS2_ASSIGN_OR_RETURN(uint8_t v, GetU8());
  if (v > 1) return Status::Corruption("invalid bool encoding");
  return v == 1;
}

Result<Bytes> Reader::GetBytes() {
  PDS2_ASSIGN_OR_RETURN(uint32_t n, GetU32());
  return GetRaw(n);
}

Result<std::string> Reader::GetString() {
  PDS2_ASSIGN_OR_RETURN(Bytes b, GetBytes());
  return std::string(b.begin(), b.end());
}

Result<Bytes> Reader::GetRaw(size_t n) {
  PDS2_RETURN_IF_ERROR(Need(n));
  Bytes out(data_.begin() + static_cast<ptrdiff_t>(pos_),
            data_.begin() + static_cast<ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Result<std::vector<uint64_t>> Reader::GetU64Vector() {
  PDS2_ASSIGN_OR_RETURN(uint32_t n, GetU32());
  PDS2_RETURN_IF_ERROR(Need(static_cast<size_t>(n) * 8));
  std::vector<uint64_t> v;
  v.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    auto r = GetU64();
    v.push_back(r.value());
  }
  return v;
}

Result<std::vector<double>> Reader::GetDoubleVector() {
  PDS2_ASSIGN_OR_RETURN(uint32_t n, GetU32());
  PDS2_RETURN_IF_ERROR(Need(static_cast<size_t>(n) * 8));
  std::vector<double> v;
  v.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    auto r = GetDouble();
    v.push_back(r.value());
  }
  return v;
}

}  // namespace pds2::common
