#include "common/fault.h"

#include <algorithm>
#include <atomic>
#include <string>

#include "common/rng.h"
#include "obs/flight_recorder.h"

namespace pds2::common {

namespace {

const char* CrashPointName(CrashPoint point) {
  switch (point) {
    case CrashPoint::kNone:
      return "none";
    case CrashPoint::kLogMidAppend:
      return "log-mid-append";
    case CrashPoint::kLogPreFsync:
      return "log-pre-fsync";
    case CrashPoint::kSnapshotMidWrite:
      return "snapshot-mid-write";
    case CrashPoint::kSnapshotPostRename:
      return "snapshot-post-rename";
  }
  return "unknown";
}

// The armed scripted-crash point. Atomic so sanitizer builds running the
// durability chaos suite under TSan see no race between the arming test
// thread and a storage write on a pool thread.
std::atomic<CrashPoint> g_armed_crash{CrashPoint::kNone};
std::atomic<uint64_t> g_crashes_fired{0};

}  // namespace

void ArmCrash(CrashPoint point) {
  g_armed_crash.store(point, std::memory_order_release);
}

void DisarmCrash() {
  g_armed_crash.store(CrashPoint::kNone, std::memory_order_release);
}

bool CrashRequested(CrashPoint point) {
  if (point == CrashPoint::kNone) return false;
  CrashPoint expected = point;
  if (g_armed_crash.compare_exchange_strong(expected, CrashPoint::kNone,
                                            std::memory_order_acq_rel)) {
    g_crashes_fired.fetch_add(1, std::memory_order_relaxed);
    // The scripted kill is about to take effect: capture the black box
    // while the dying code path is still on the stack.
    obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
    if (recorder.enabled()) {
      recorder.Note(std::string("crash point fired: ") +
                    CrashPointName(point));
      (void)recorder.DumpNow(std::string("crashpoint-") +
                             CrashPointName(point));
    }
    return true;
  }
  return false;
}

uint64_t CrashesFired() {
  return g_crashes_fired.load(std::memory_order_relaxed);
}

namespace {

size_t GroupOf(const PartitionEvent& partition, size_t node) {
  if (node >= partition.group_of_node.size()) return 0;
  return partition.group_of_node[node];
}

}  // namespace

bool FaultPlan::Reachable(size_t from, size_t to, SimTime now) const {
  for (const PartitionEvent& partition : partitions) {
    if (now < partition.start || now >= partition.heal) continue;
    if (GroupOf(partition, from) != GroupOf(partition, to)) return false;
  }
  return true;
}

FaultPlan::LinkEffect FaultPlan::EffectAt(size_t from, size_t to,
                                          SimTime now) const {
  LinkEffect effect;
  effect.corrupt_rate = corrupt_rate;
  if (!Reachable(from, to, now)) {
    effect.blocked = true;
    return effect;
  }
  for (const LinkFault& fault : link_faults) {
    if (fault.from != from || fault.to != to) continue;
    if (now < fault.start || now >= fault.end) continue;
    // Independent loss processes compose multiplicatively on the survival
    // probability; latency multipliers compose directly.
    effect.extra_drop =
        1.0 - (1.0 - effect.extra_drop) * (1.0 - fault.extra_drop);
    effect.latency_mult *= fault.latency_mult;
  }
  return effect;
}

SimTime FaultPlan::LastTransition() const {
  SimTime last = 0;
  for (const ChurnEvent& event : churn) last = std::max(last, event.at);
  for (const PartitionEvent& partition : partitions) {
    last = std::max(last, partition.heal);
  }
  for (const LinkFault& fault : link_faults) last = std::max(last, fault.end);
  return last;
}

FaultPlan FaultPlan::Random(uint64_t seed, size_t num_nodes, SimTime duration,
                            const FaultProfile& profile) {
  FaultPlan plan;
  plan.corrupt_rate = profile.corrupt_rate;
  if (num_nodes == 0 || duration == 0) return plan;
  Rng rng(seed ^ 0xfa017'5c4ed'01eULL);

  // Crash/restart pairs. Crashes land in the first 60% of the run and every
  // node is back online by 90%, so convergence past LastTransition() is a
  // fair liveness question.
  std::vector<size_t> nodes(num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) nodes[i] = i;
  rng.Shuffle(nodes);
  const size_t crashers = static_cast<size_t>(
      profile.crash_fraction * static_cast<double>(num_nodes));
  const SimTime restart_cap = duration - duration / 10;
  for (size_t k = 0; k < crashers && k < num_nodes; ++k) {
    ChurnEvent crash;
    crash.node = nodes[k];
    crash.at = duration / 10 + rng.NextU64(duration / 2);
    crash.restart = false;
    SimTime downtime = profile.min_downtime;
    if (profile.max_downtime > profile.min_downtime) {
      downtime += rng.NextU64(profile.max_downtime - profile.min_downtime);
    }
    ChurnEvent restart;
    restart.node = crash.node;
    restart.at = std::min(crash.at + downtime, restart_cap);
    restart.restart = true;
    plan.churn.push_back(crash);
    plan.churn.push_back(restart);
  }
  std::sort(plan.churn.begin(), plan.churn.end(),
            [](const ChurnEvent& a, const ChurnEvent& b) { return a.at < b.at; });

  // Two-group partition episodes, each healing within the run.
  for (size_t p = 0; p < profile.num_partitions; ++p) {
    PartitionEvent partition;
    partition.start = duration / 10 + rng.NextU64(duration / 2);
    SimTime width = profile.min_partition;
    if (profile.max_partition > profile.min_partition) {
      width += rng.NextU64(profile.max_partition - profile.min_partition);
    }
    partition.heal = std::min(partition.start + width, restart_cap);
    partition.group_of_node.resize(num_nodes, 0);
    // Guarantee both groups are non-empty (a one-sided "partition" is a
    // no-op and would silently weaken the schedule).
    partition.group_of_node[rng.NextU64(num_nodes)] = 1;
    for (size_t i = 0; i < num_nodes; ++i) {
      if (rng.NextBool(0.5)) partition.group_of_node[i] = 1;
    }
    bool has_zero = false;
    for (size_t g : partition.group_of_node) has_zero |= (g == 0);
    if (!has_zero) partition.group_of_node[rng.NextU64(num_nodes)] = 0;
    plan.partitions.push_back(std::move(partition));
  }

  // Byzantine validator assignments: distinct nodes, behaviour drawn
  // uniformly from the non-kNone values. Seed-derived like everything else,
  // so a cell (seed, f) names exactly one adversary configuration.
  if (profile.num_byzantine_validators > 0) {
    std::vector<size_t> byz_nodes(num_nodes);
    for (size_t i = 0; i < num_nodes; ++i) byz_nodes[i] = i;
    rng.Shuffle(byz_nodes);
    const size_t count =
        std::min(profile.num_byzantine_validators, num_nodes);
    constexpr ByzantineBehavior kBehaviors[] = {
        ByzantineBehavior::kEquivocate, ByzantineBehavior::kInvalidStateRoot,
        ByzantineBehavior::kGasCheat, ByzantineBehavior::kWithhold};
    for (size_t k = 0; k < count; ++k) {
      ByzantineValidatorSpec spec;
      spec.node = byz_nodes[k];
      spec.behavior = kBehaviors[rng.NextU64(std::size(kBehaviors))];
      plan.byzantine_validators.push_back(spec);
    }
  }

  // Byzantine executor assignments: a seed-chosen subset of executor slots
  // (indices over num_nodes; harnesses with a different executor count take
  // the index modulo theirs), fault bytes cycling through the profile list.
  if (profile.byzantine_executor_fraction > 0.0) {
    std::vector<size_t> exec_slots(num_nodes);
    for (size_t i = 0; i < num_nodes; ++i) exec_slots[i] = i;
    rng.Shuffle(exec_slots);
    const size_t count = static_cast<size_t>(
        profile.byzantine_executor_fraction * static_cast<double>(num_nodes) +
        0.5);
    for (size_t k = 0; k < count && k < num_nodes; ++k) {
      ByzantineExecutorSpec spec;
      spec.executor = exec_slots[k];
      spec.fault = profile.byzantine_executor_faults.empty()
                       ? 0
                       : profile.byzantine_executor_faults
                             [k % profile.byzantine_executor_faults.size()];
      plan.byzantine_executors.push_back(spec);
    }
  }

  // Directed link degradations.
  if (profile.link_fault_rate > 0.0) {
    for (size_t from = 0; from < num_nodes; ++from) {
      for (size_t to = 0; to < num_nodes; ++to) {
        if (from == to || !rng.NextBool(profile.link_fault_rate)) continue;
        LinkFault fault;
        fault.from = from;
        fault.to = to;
        fault.start = rng.NextU64(duration / 2);
        fault.end = std::min(fault.start + duration / 4 + 1, restart_cap);
        fault.extra_drop = rng.NextDouble(0.0, profile.max_extra_drop);
        fault.latency_mult = rng.NextDouble(1.0, profile.max_latency_mult);
        plan.link_faults.push_back(fault);
      }
    }
  }
  return plan;
}

}  // namespace pds2::common
