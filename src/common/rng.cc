#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace pds2::common {

namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextU64(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling: discard values in the biased tail.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextU64());  // full range
  return lo + static_cast<int64_t>(NextU64(span));
}

double Rng::NextDouble() {
  // 53 significant bits.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller transform.
  double u1 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

Bytes Rng::NextBytes(size_t n) {
  Bytes out(n);
  size_t i = 0;
  while (i + 8 <= n) {
    uint64_t r = NextU64();
    for (int k = 0; k < 8; ++k) out[i++] = static_cast<uint8_t>(r >> (8 * k));
  }
  if (i < n) {
    uint64_t r = NextU64();
    while (i < n) {
      out[i++] = static_cast<uint8_t>(r);
      r >>= 8;
    }
  }
  return out;
}

Rng Rng::Fork() { return Rng(NextU64() ^ 0xa5a5a5a5deadbeefULL); }

}  // namespace pds2::common
