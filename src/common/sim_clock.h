#ifndef PDS2_COMMON_SIM_CLOCK_H_
#define PDS2_COMMON_SIM_CLOCK_H_

#include <cstdint>

namespace pds2::common {

/// Simulated timestamp in microseconds since an arbitrary epoch. Every
/// timestamp in the platform (block times, data readings, certificates,
/// network events) uses simulated time, never wall-clock time, so runs are
/// deterministic.
using SimTime = uint64_t;

constexpr SimTime kMicrosPerMilli = 1000;
constexpr SimTime kMicrosPerSecond = 1000 * kMicrosPerMilli;

/// Monotonic simulated clock, advanced explicitly by its owner (the network
/// simulator, the chain, or a test).
class SimClock {
 public:
  explicit SimClock(SimTime start = 0) : now_(start) {}

  SimTime Now() const { return now_; }

  /// Moves the clock forward by `delta` microseconds.
  void Advance(SimTime delta) { now_ += delta; }

  /// Jumps to an absolute time; ignored if `t` is in the past (the clock is
  /// monotonic).
  void AdvanceTo(SimTime t) {
    if (t > now_) now_ = t;
  }

 private:
  SimTime now_;
};

}  // namespace pds2::common

#endif  // PDS2_COMMON_SIM_CLOCK_H_
