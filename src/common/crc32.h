#ifndef PDS2_COMMON_CRC32_H_
#define PDS2_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

#include "common/bytes.h"

namespace pds2::common {

/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected), the checksum
/// RocksDB and leveldb use for log records. Guards every block-log record
/// and snapshot payload against torn writes and bit rot; it detects all
/// single-bit errors and any truncation that chops a record mid-payload.
uint32_t Crc32c(const uint8_t* data, size_t size);

inline uint32_t Crc32c(const Bytes& data) {
  return Crc32c(data.data(), data.size());
}

}  // namespace pds2::common

#endif  // PDS2_COMMON_CRC32_H_
