#ifndef PDS2_COMMON_SERIAL_H_
#define PDS2_COMMON_SERIAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace pds2::common {

/// Appends fixed-width little-endian primitives and length-prefixed
/// containers to a byte buffer. The canonical wire format for everything
/// that is hashed, signed, or stored by the platform: transactions, blocks,
/// certificates, sealed blobs, model snapshots.
class Writer {
 public:
  Writer() = default;

  void PutU8(uint8_t v);
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v);
  void PutDouble(double v);
  void PutBool(bool v);
  /// Length-prefixed (u32) raw bytes.
  void PutBytes(const Bytes& b);
  /// Length-prefixed (u32) UTF-8 string.
  void PutString(const std::string& s);
  /// Raw bytes with no length prefix (caller knows the size).
  void PutRaw(const Bytes& b);

  void PutU64Vector(const std::vector<uint64_t>& v);
  void PutDoubleVector(const std::vector<double>& v);

  const Bytes& data() const { return data_; }
  Bytes Take() { return std::move(data_); }

 private:
  Bytes data_;
};

/// Reads back what Writer wrote. Every getter fails with Corruption if the
/// buffer is exhausted, so malformed wire data is rejected rather than
/// silently misparsed.
class Reader {
 public:
  explicit Reader(const Bytes& data) : data_(data) {}

  Result<uint8_t> GetU8();
  Result<uint16_t> GetU16();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int64_t> GetI64();
  Result<double> GetDouble();
  Result<bool> GetBool();
  Result<Bytes> GetBytes();
  Result<std::string> GetString();
  Result<Bytes> GetRaw(size_t n);

  Result<std::vector<uint64_t>> GetU64Vector();
  Result<std::vector<double>> GetDoubleVector();

  /// True when every byte has been consumed. Deserializers should check
  /// this to reject trailing garbage.
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  Status Need(size_t n);

  const Bytes& data_;
  size_t pos_ = 0;
};

}  // namespace pds2::common

#endif  // PDS2_COMMON_SERIAL_H_
