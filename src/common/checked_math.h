#ifndef PDS2_COMMON_CHECKED_MATH_H_
#define PDS2_COMMON_CHECKED_MATH_H_

#include <cstdint>
#include <limits>

namespace pds2::common {

/// Overflow-checked uint64 arithmetic for money paths (fees, balances,
/// escrow). The ledger must never wrap: a gas_limit chosen so that
/// `gas_limit * gas_price` overflows would otherwise wrap the worst-case
/// fee to near zero and pass the affordability check. Every settlement
/// computation goes through these helpers and rejects on overflow.

/// `*out = a + b`; false (out untouched) when the sum exceeds uint64.
inline bool CheckedAdd(uint64_t a, uint64_t b, uint64_t* out) {
#if defined(__GNUC__) || defined(__clang__)
  uint64_t result;
  if (__builtin_add_overflow(a, b, &result)) return false;
  *out = result;
  return true;
#else
  if (a > std::numeric_limits<uint64_t>::max() - b) return false;
  *out = a + b;
  return true;
#endif
}

/// `*out = a * b`; false (out untouched) when the product exceeds uint64.
inline bool CheckedMul(uint64_t a, uint64_t b, uint64_t* out) {
#if defined(__GNUC__) || defined(__clang__)
  uint64_t result;
  if (__builtin_mul_overflow(a, b, &result)) return false;
  *out = result;
  return true;
#else
  if (b != 0 && a > std::numeric_limits<uint64_t>::max() / b) return false;
  *out = a * b;
  return true;
#endif
}

/// `a + b`, clamped to uint64 max instead of wrapping. For aggregate
/// statistics where rejecting is not an option and wrap-around would be
/// silently wrong.
inline uint64_t SaturatingAdd(uint64_t a, uint64_t b) {
  uint64_t sum;
  return CheckedAdd(a, b, &sum) ? sum
                                : std::numeric_limits<uint64_t>::max();
}

}  // namespace pds2::common

#endif  // PDS2_COMMON_CHECKED_MATH_H_
