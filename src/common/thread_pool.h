#ifndef PDS2_COMMON_THREAD_POOL_H_
#define PDS2_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace pds2::common {

/// Fixed-size thread pool powering every parallel hot path in the library
/// (block signature verification, Merkle construction, Monte-Carlo Shapley
/// sampling, network-simulation batches).
///
/// Determinism contract: the pool itself never introduces nondeterminism.
/// Chunk boundaries depend only on (range, chunk count), never on thread
/// count or scheduling, so a caller that (a) derives any randomness from the
/// chunk/item index and (b) combines partial results in chunk order produces
/// bit-identical output for every pool size — including 1, which executes
/// everything inline on the calling thread in ascending order (exactly the
/// pre-parallel sequential code path).
///
/// Re-entrancy: work scheduled from inside a worker of the same pool runs
/// inline on that worker (both Submit and the ParallelFor family), so nested
/// parallelism can never deadlock waiting for an occupied worker.
class ThreadPool {
 public:
  /// `num_threads == 0` resolves to DefaultThreadCount().
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t NumThreads() const { return num_threads_; }

  /// Schedules one task. The future reports completion and propagates any
  /// exception the task throws. Called from a worker of this pool, the task
  /// executes inline (the returned future is already satisfied).
  std::future<void> Submit(std::function<void()> task);

  /// Invokes `body(i)` for every i in [begin, end), possibly concurrently.
  /// Blocks until all indices completed. Exceptions are collected and the
  /// one from the lowest-numbered chunk is rethrown after the join.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& body);

  /// Splits [0, n) into at most `num_chunks` balanced contiguous chunks and
  /// invokes `body(chunk_index, chunk_begin, chunk_end)` for each, possibly
  /// concurrently. Chunk boundaries are a pure function of (n, num_chunks)
  /// — see ChunkBegin — which is what makes deterministic per-chunk RNG
  /// seeding possible regardless of pool size.
  void ParallelForChunks(
      size_t n, size_t num_chunks,
      const std::function<void(size_t, size_t, size_t)>& body);

  /// First index of `chunk` when [0, n) is split into `num_chunks` balanced
  /// parts (chunk == num_chunks yields n). Requires num_chunks >= 1.
  static size_t ChunkBegin(size_t n, size_t num_chunks, size_t chunk);

  /// PDS2_THREADS environment override if set to a positive integer,
  /// otherwise hardware_concurrency() (minimum 1).
  static size_t DefaultThreadCount();

  /// Process-wide shared pool sized by DefaultThreadCount(). Intended for
  /// call sites that have no pool plumbed through; tests and benches build
  /// their own pools to sweep thread counts.
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  size_t num_threads_;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace pds2::common

#endif  // PDS2_COMMON_THREAD_POOL_H_
