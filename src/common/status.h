#ifndef PDS2_COMMON_STATUS_H_
#define PDS2_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace pds2::common {

/// Machine-readable category of a failure. Mirrors the RocksDB/Arrow error
/// model: the library never throws; every fallible operation returns a
/// Status (or a Result<T>, see result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,
  kFailedPrecondition,
  kOutOfRange,
  kUnauthenticated,   // signature / attestation / certificate failure
  kInsufficientFunds, // blockchain balance or escrow underflow
  kCorruption,        // serialization / integrity check failure
  kResourceExhausted, // gas limit, capacity limits
  kUnavailable,       // simulated network / node failure
  kInternal,
};

/// Returns a stable human-readable name ("Ok", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Result of an operation that can fail but returns no value.
///
/// Cheap to copy in the OK case (no allocation). Construction of error
/// statuses goes through the named factories, e.g.
/// `Status::InvalidArgument("negative reward")`.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unauthenticated(std::string msg) {
    return Status(StatusCode::kUnauthenticated, std::move(msg));
  }
  static Status InsufficientFunds(std::string msg) {
    return Status(StatusCode::kInsufficientFunds, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

}  // namespace pds2::common

/// Propagates a non-OK Status from the current function, RocksDB-style.
#define PDS2_RETURN_IF_ERROR(expr)                          \
  do {                                                      \
    ::pds2::common::Status _pds2_status = (expr);           \
    if (!_pds2_status.ok()) return _pds2_status;            \
  } while (0)

#endif  // PDS2_COMMON_STATUS_H_
