#ifndef PDS2_COMMON_HEX_H_
#define PDS2_COMMON_HEX_H_

#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/result.h"

namespace pds2::common {

/// Lowercase hex encoding, e.g. {0xde, 0xad} -> "dead".
std::string HexEncode(const Bytes& data);

/// Decodes a hex string (upper or lower case). Fails with InvalidArgument
/// on odd length or non-hex characters.
Result<Bytes> HexDecode(std::string_view hex);

/// First `n` hex characters of `data`, for compact display of hashes and
/// addresses in logs ("a3f9c02e...").
std::string HexPrefix(const Bytes& data, size_t n = 8);

}  // namespace pds2::common

#endif  // PDS2_COMMON_HEX_H_
