#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <exception>

#include "obs/metrics.h"

namespace pds2::common {

namespace {

// Set while a thread is executing inside WorkerLoop; lets re-entrant calls
// detect "I am already on a worker of this pool" and run inline instead of
// blocking on a queue the current thread is supposed to drain.
thread_local const ThreadPool* g_current_pool = nullptr;

// Chunks per thread for the per-index ParallelFor: small enough to keep
// scheduling overhead negligible, large enough to smooth out uneven bodies.
constexpr size_t kChunksPerThread = 4;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads)
    : num_threads_(num_threads == 0 ? DefaultThreadCount() : num_threads) {
  workers_.reserve(num_threads_);
  for (size_t i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  g_current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    PDS2_M_GAUGE_ADD("pool.queue_depth", -1);
    PDS2_M_COUNT("pool.tasks_executed", 1);
    task();
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  auto packaged =
      std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> future = packaged->get_future();
  if (g_current_pool == this) {
    PDS2_M_COUNT("pool.tasks_inline", 1);
    (*packaged)();
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.emplace_back([packaged] { (*packaged)(); });
  }
  PDS2_M_GAUGE_ADD("pool.queue_depth", 1);
  cv_.notify_one();
  return future;
}

size_t ThreadPool::ChunkBegin(size_t n, size_t num_chunks, size_t chunk) {
  return n / num_chunks * chunk + std::min(chunk, n % num_chunks);
}

void ThreadPool::ParallelForChunks(
    size_t n, size_t num_chunks,
    const std::function<void(size_t, size_t, size_t)>& body) {
  if (n == 0 || num_chunks == 0) return;
  num_chunks = std::min(num_chunks, n);

  auto run_chunk = [&](size_t chunk) {
    body(chunk, ChunkBegin(n, num_chunks, chunk),
         ChunkBegin(n, num_chunks, chunk + 1));
  };

  if (num_threads_ <= 1 || num_chunks == 1 || g_current_pool == this) {
    PDS2_M_COUNT("pool.tasks_inline", num_chunks);
    for (size_t chunk = 0; chunk < num_chunks; ++chunk) run_chunk(chunk);
    return;
  }

  struct JoinState {
    std::mutex mu;
    std::condition_variable done;
    size_t remaining;
    std::vector<std::exception_ptr> errors;
  };
  JoinState join;
  join.remaining = num_chunks;
  join.errors.resize(num_chunks);

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
      queue_.emplace_back([&join, &run_chunk, chunk] {
        try {
          run_chunk(chunk);
        } catch (...) {
          join.errors[chunk] = std::current_exception();
        }
        std::lock_guard<std::mutex> done_lock(join.mu);
        if (--join.remaining == 0) join.done.notify_one();
      });
    }
  }
  PDS2_M_GAUGE_ADD("pool.queue_depth", num_chunks);
  PDS2_M_COUNT("pool.parallel_for_calls", 1);
  cv_.notify_all();

  std::unique_lock<std::mutex> wait_lock(join.mu);
  join.done.wait(wait_lock, [&join] { return join.remaining == 0; });
  for (std::exception_ptr& error : join.errors) {
    if (error) std::rethrow_exception(error);
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& body) {
  if (end <= begin) return;
  ParallelForChunks(end - begin, num_threads_ * kChunksPerThread,
                    [&](size_t /*chunk*/, size_t lo, size_t hi) {
                      for (size_t i = lo; i < hi; ++i) body(begin + i);
                    });
}

size_t ThreadPool::DefaultThreadCount() {
  if (const char* env = std::getenv("PDS2_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 1 && parsed <= 1024) {
      return static_cast<size_t>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(DefaultThreadCount());
  return pool;
}

}  // namespace pds2::common
