#ifndef PDS2_COMMON_RNG_H_
#define PDS2_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"

namespace pds2::common {

/// SplitMix64 step, used to expand a single 64-bit seed into the xoshiro
/// state. Public so modules can derive independent sub-seeds.
uint64_t SplitMix64(uint64_t& state);

/// Deterministic pseudo-random generator (xoshiro256** seeded through
/// SplitMix64). All randomness in the library flows through instances of
/// this class so that every simulation and experiment is reproducible from
/// a single seed. NOT a cryptographically secure RNG; crypto key material
/// quality is irrelevant here because adversaries in the simulation do not
/// attack the RNG.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform in [0, bound). `bound` must be > 0. Uses rejection sampling to
  /// avoid modulo bias.
  uint64_t NextU64(uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Gaussian with given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// True with probability p.
  bool NextBool(double p);

  /// `n` uniform random bytes.
  Bytes NextBytes(size_t n);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    if (v.empty()) return;
    for (size_t i = v.size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextU64(i + 1));
      using std::swap;
      swap(v[i], v[j]);
    }
  }

  /// A new Rng whose stream is independent of (but derived from) this one.
  /// Used to hand each simulated node / agent its own generator.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace pds2::common

#endif  // PDS2_COMMON_RNG_H_
