#include "common/crc32.h"

#include <array>

namespace pds2::common {

namespace {

// Table-driven byte-at-a-time CRC-32C over the reflected Castagnoli
// polynomial. The table is computed once at static-init time; throughput is
// ample for log records that are immediately fsync'd anyway.
std::array<uint32_t, 256> MakeTable() {
  constexpr uint32_t kPolyReflected = 0x82F63B78u;  // 0x1EDC6F41 reflected
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPolyReflected : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32c(const uint8_t* data, size_t size) {
  static const std::array<uint32_t, 256> kTable = MakeTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ data[i]) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace pds2::common
