#include "common/bytes.h"

namespace pds2::common {

bool ConstantTimeEquals(const Bytes& a, const Bytes& b) {
  if (a.size() != b.size()) return false;
  uint8_t diff = 0;
  for (size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace pds2::common
