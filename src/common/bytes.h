#ifndef PDS2_COMMON_BYTES_H_
#define PDS2_COMMON_BYTES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pds2::common {

/// Raw binary data. Used for keys, hashes, ciphertexts, serialized
/// payloads — anything that crosses a module boundary as opaque bytes.
using Bytes = std::vector<uint8_t>;

/// Copies a string's characters into a byte vector.
inline Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// Reinterprets bytes as text. Only meaningful for byte strings that were
/// produced from text in the first place.
inline std::string ToString(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

/// Appends `src` to `dst`.
inline void Append(Bytes& dst, const Bytes& src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

/// Constant-time equality check, for comparing MACs and other secrets
/// without leaking the position of the first mismatch through timing.
bool ConstantTimeEquals(const Bytes& a, const Bytes& b);

}  // namespace pds2::common

#endif  // PDS2_COMMON_BYTES_H_
