#ifndef PDS2_COMMON_RESULT_H_
#define PDS2_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace pds2::common {

/// Either a value of type T or a non-OK Status. The value accessors assert
/// that the result is OK; call sites must check `ok()` (or use
/// PDS2_ASSIGN_OR_RETURN) before dereferencing.
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return some_t;` in functions returning
  /// Result<T>.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status: allows `return Status::NotFound(...)`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace pds2::common

/// `PDS2_ASSIGN_OR_RETURN(auto x, Compute());` — unwraps a Result<T> or
/// propagates its error status.
#define PDS2_ASSIGN_OR_RETURN(decl, expr)                       \
  PDS2_ASSIGN_OR_RETURN_IMPL_(                                  \
      PDS2_RESULT_CONCAT_(_pds2_result_, __LINE__), decl, expr)

#define PDS2_RESULT_CONCAT_INNER_(a, b) a##b
#define PDS2_RESULT_CONCAT_(a, b) PDS2_RESULT_CONCAT_INNER_(a, b)

#define PDS2_ASSIGN_OR_RETURN_IMPL_(tmp, decl, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  decl = std::move(tmp).value()

#endif  // PDS2_COMMON_RESULT_H_
