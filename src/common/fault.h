#ifndef PDS2_COMMON_FAULT_H_
#define PDS2_COMMON_FAULT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/sim_clock.h"

namespace pds2::common {

/// Points inside the storage layer's durable-write protocols where a
/// process crash leaves meaningfully different bytes on disk. Chaos tests
/// arm one of these to kill the *process model* (not a simulated node):
/// the write stops exactly as a SIGKILL would — possibly mid-record — and
/// the store refuses all further I/O until it is reopened, so the test
/// exercises the real recovery path against the torn on-disk state.
enum class CrashPoint : uint8_t {
  kNone = 0,
  kLogMidAppend,        // half of a block-log record reached the disk
  kLogPreFsync,         // full record written, crash before fsync
  kSnapshotMidWrite,    // snapshot tmp file half-written, never renamed
  kSnapshotPostRename,  // snapshot renamed in, crash before old-file GC
};

/// Arms a one-shot scripted crash: the next time the storage layer reaches
/// `point` it simulates the kill and the armed point resets to kNone.
/// Thread-compatible (tests arm from the driving thread only).
void ArmCrash(CrashPoint point);
void DisarmCrash();

/// Called by the storage layer at each crash point. Returns true exactly
/// once per ArmCrash when `point` matches the armed point (consuming it).
bool CrashRequested(CrashPoint point);

/// Number of scripted crashes fired since process start (test bookkeeping).
uint64_t CrashesFired();

/// One scheduled churn transition of a node.
struct ChurnEvent {
  SimTime at = 0;
  size_t node = 0;
  bool restart = false;  // false = crash (go offline), true = come back
};

/// A group-based network partition: while active, messages between nodes in
/// different groups are silently blocked (both directions are governed by
/// their own send-time check, so asymmetric heal ordering is well defined).
/// Nodes not listed in `group_of_node` (index >= size) are in group 0.
struct PartitionEvent {
  SimTime start = 0;
  SimTime heal = 0;                   // exclusive: healed at `heal`
  std::vector<size_t> group_of_node;  // group id per node index
};

/// Directed per-link degradation active during [start, end): extra
/// independent loss and a latency multiplier, modelling a congested or
/// flapping route that plain NetConfig (one homogeneous link model) cannot.
struct LinkFault {
  size_t from = 0;
  size_t to = 0;
  SimTime start = 0;
  SimTime end = 0;
  double extra_drop = 0.0;    // additional loss probability on this link
  double latency_mult = 1.0;  // multiplies the delivery latency
};

/// Byzantine (arbitrary, not just crash/omission) misbehaviours a scripted
/// validator can exhibit. The first three are *provable*: the cheater signs
/// two different headers at one height (the cheating variant plus the
/// correct one it needs to keep its slot), and any honest observer holding
/// the pair can convict it on chain (see chain/evidence.h). Withholding is
/// deliberately unprovable — silence is indistinguishable from a partition —
/// and is absorbed by the proposer_grace liveness fallback instead.
enum class ByzantineBehavior : uint8_t {
  kNone = 0,
  kEquivocate,        // two signed blocks at one height
  kInvalidStateRoot,  // block committing to a state it never computed
  kGasCheat,          // block whose gas-limit sum busts the block budget
  kWithhold,          // produces nothing in its slot
};

/// True for behaviours an honest node can prove on chain (and so slash).
inline bool IsProvable(ByzantineBehavior b) {
  return b == ByzantineBehavior::kEquivocate ||
         b == ByzantineBehavior::kInvalidStateRoot ||
         b == ByzantineBehavior::kGasCheat;
}

/// One scripted Byzantine validator.
struct ByzantineValidatorSpec {
  size_t node = 0;  // validator index
  ByzantineBehavior behavior = ByzantineBehavior::kNone;
};

/// One scripted Byzantine executor (marketplace actor). `fault` is the
/// market::ExecutorFault value to inject; kept as a raw byte so common does
/// not depend on market.
struct ByzantineExecutorSpec {
  size_t executor = 0;  // executor index
  uint8_t fault = 0;
};

/// Knobs for FaultPlan::Random. All times are absolute sim-time spans.
struct FaultProfile {
  /// Fraction of nodes that crash (and later restart) at least once.
  double crash_fraction = 0.5;
  SimTime min_downtime = 2 * kMicrosPerSecond;
  SimTime max_downtime = 8 * kMicrosPerSecond;
  /// Number of two-group partition episodes.
  size_t num_partitions = 1;
  SimTime min_partition = 3 * kMicrosPerSecond;
  SimTime max_partition = 10 * kMicrosPerSecond;
  /// Probability that a directed link gets a degradation window.
  double link_fault_rate = 0.0;
  double max_extra_drop = 0.5;
  double max_latency_mult = 4.0;
  /// Probability that a delivered payload has one byte flipped in flight.
  double corrupt_rate = 0.0;
  /// Number of validators scripted with a seed-chosen Byzantine behaviour
  /// (distinct nodes, behaviour drawn uniformly from the non-kNone values).
  size_t num_byzantine_validators = 0;
  /// Fraction of marketplace executors scripted with a Byzantine fault.
  /// The concrete fault byte cycles through the provable executor faults;
  /// the harness maps it onto market::ExecutorFault.
  double byzantine_executor_fraction = 0.0;
  /// Executor-fault bytes to cycle through when byzantine_executor_fraction
  /// is set (market::ExecutorFault values; empty means byte 0).
  std::vector<uint8_t> byzantine_executor_faults;
};

/// A deterministic, replayable schedule of faults. The plan is pure data:
/// the same plan applied to the same simulation seed reproduces the same
/// run bit for bit. Generated plans derive every choice from a single seed
/// (FaultPlan::Random), hand-written plans are just brace-initialized.
struct FaultPlan {
  std::vector<ChurnEvent> churn;  // kept sorted by `at`
  std::vector<PartitionEvent> partitions;
  std::vector<LinkFault> link_faults;
  double corrupt_rate = 0.0;  // network-wide payload corruption probability
  std::vector<ByzantineValidatorSpec> byzantine_validators;
  std::vector<ByzantineExecutorSpec> byzantine_executors;

  /// Aggregate effect of the plan on one directed link at time `now`.
  struct LinkEffect {
    bool blocked = false;       // partitioned: message silently dropped
    double extra_drop = 0.0;    // combined independent extra loss
    double latency_mult = 1.0;  // combined latency multiplier
    double corrupt_rate = 0.0;  // payload corruption probability
  };
  LinkEffect EffectAt(size_t from, size_t to, SimTime now) const;

  /// True when no active partition separates `from` and `to` at `now`.
  bool Reachable(size_t from, size_t to, SimTime now) const;

  /// The sim-time of the last scheduled fault transition (0 for an empty
  /// plan). Chaos harnesses run past this point to give protocols time to
  /// recover before asserting convergence.
  SimTime LastTransition() const;

  /// Seed-driven schedule over `num_nodes` nodes and `duration` sim-time.
  /// Every crash gets a matching restart no later than 90% of `duration`,
  /// and every partition heals within the run, so liveness assertions stay
  /// meaningful. The result is a pure function of the arguments.
  static FaultPlan Random(uint64_t seed, size_t num_nodes, SimTime duration,
                          const FaultProfile& profile = {});
};

}  // namespace pds2::common

#endif  // PDS2_COMMON_FAULT_H_
