#ifndef PDS2_CRYPTO_BIGNUM_H_
#define PDS2_CRYPTO_BIGNUM_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/rng.h"

namespace pds2::crypto {

/// Arbitrary-precision unsigned integer with 64-bit limbs (little-endian
/// limb order). Backs the Paillier cryptosystem and Schnorr scalar
/// arithmetic. Implements schoolbook multiplication and Knuth Algorithm D
/// division — ample for the 512–2048 bit moduli used here, and the
/// (substantial) cost of Paillier operations is itself one of the measured
/// quantities in experiment E1.
class BigUint {
 public:
  /// Zero.
  BigUint() = default;
  /// From a single machine word.
  explicit BigUint(uint64_t v);

  /// From big-endian bytes (the natural order for hashes and wire formats).
  static BigUint FromBytesBE(const common::Bytes& bytes);
  /// From a lowercase/uppercase hex string (no 0x prefix). Empty = zero.
  static common::Result<BigUint> FromHex(const std::string& hex);
  /// From a base-10 string of digits.
  static common::Result<BigUint> FromDecimal(const std::string& dec);

  /// Uniform random value < bound (bound must be nonzero).
  static BigUint RandomBelow(const BigUint& bound, common::Rng& rng);
  /// Uniform random value with exactly `bits` bits (MSB set).
  static BigUint RandomBits(size_t bits, common::Rng& rng);
  /// Random probable prime with exactly `bits` bits (Miller–Rabin,
  /// `rounds` witnesses).
  static BigUint RandomPrime(size_t bits, common::Rng& rng, int rounds = 24);

  bool IsZero() const { return limbs_.empty(); }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  bool IsOne() const { return limbs_.size() == 1 && limbs_[0] == 1; }

  /// Number of significant bits (0 for zero).
  size_t BitLength() const;
  /// Value of bit `i` (false beyond the MSB).
  bool Bit(size_t i) const;

  /// Low 64 bits.
  uint64_t Low64() const { return limbs_.empty() ? 0 : limbs_[0]; }

  /// Big-endian byte serialization, minimal length (empty for zero).
  common::Bytes ToBytesBE() const;
  /// Big-endian, left-padded with zeros to exactly `width` bytes. Fails
  /// (OutOfRange) if the value does not fit.
  common::Result<common::Bytes> ToBytesBEPadded(size_t width) const;
  std::string ToHex() const;
  std::string ToDecimal() const;

  // Comparison.
  int Compare(const BigUint& other) const;  // -1, 0, +1
  bool operator==(const BigUint& o) const { return Compare(o) == 0; }
  bool operator!=(const BigUint& o) const { return Compare(o) != 0; }
  bool operator<(const BigUint& o) const { return Compare(o) < 0; }
  bool operator<=(const BigUint& o) const { return Compare(o) <= 0; }
  bool operator>(const BigUint& o) const { return Compare(o) > 0; }
  bool operator>=(const BigUint& o) const { return Compare(o) >= 0; }

  // Arithmetic (pure functions; operands unchanged).
  BigUint Add(const BigUint& o) const;
  /// Requires *this >= o (asserts in debug; wraps as if unsigned otherwise
  /// is never produced — callers uphold the precondition).
  BigUint Sub(const BigUint& o) const;
  BigUint Mul(const BigUint& o) const;
  /// Quotient and remainder; divisor must be nonzero.
  std::pair<BigUint, BigUint> DivMod(const BigUint& divisor) const;
  BigUint Mod(const BigUint& m) const { return DivMod(m).second; }

  BigUint ShiftLeft(size_t bits) const;
  BigUint ShiftRight(size_t bits) const;

  /// (a * b) mod m.
  static BigUint MulMod(const BigUint& a, const BigUint& b, const BigUint& m);
  /// (base ^ exp) mod m, square-and-multiply. m must be > 1.
  static BigUint PowMod(const BigUint& base, const BigUint& exp,
                        const BigUint& m);
  static BigUint Gcd(BigUint a, BigUint b);
  /// Least common multiple.
  static BigUint Lcm(const BigUint& a, const BigUint& b);
  /// Modular inverse of a mod m; fails (InvalidArgument) when
  /// gcd(a, m) != 1.
  static common::Result<BigUint> InvMod(const BigUint& a, const BigUint& m);

  /// Miller–Rabin probable-prime test with `rounds` random witnesses.
  static bool IsProbablePrime(const BigUint& n, common::Rng& rng,
                              int rounds = 24);

  const std::vector<uint64_t>& limbs() const { return limbs_; }

 private:
  void Trim();

  // Little-endian limbs; no trailing zero limbs (canonical form).
  std::vector<uint64_t> limbs_;
};

}  // namespace pds2::crypto

#endif  // PDS2_CRYPTO_BIGNUM_H_
