#include "crypto/ed25519.h"

#include <cassert>

namespace pds2::crypto {

using common::Bytes;
using common::Result;
using common::Status;

namespace {

using u128 = unsigned __int128;

constexpr uint64_t kMask51 = (uint64_t{1} << 51) - 1;

// 2*p in radix-2^51, added before subtraction to keep limbs non-negative.
constexpr uint64_t kTwoP0 = 0xfffffffffffdaULL;  // 2*(2^51 - 19)
constexpr uint64_t kTwoPn = 0xffffffffffffeULL;  // 2*(2^51 - 1)

}  // namespace

void Fe25519::Carry() {
  // Propagate carries; fold the top carry back with factor 19
  // (2^255 = 19 mod p).
  for (int pass = 0; pass < 2; ++pass) {
    uint64_t c = 0;
    for (int i = 0; i < 5; ++i) {
      limbs_[i] += c;
      c = limbs_[i] >> 51;
      limbs_[i] &= kMask51;
    }
    limbs_[0] += 19 * c;
  }
}

Fe25519 Fe25519::FromU64(uint64_t v) {
  Fe25519 out;
  out.limbs_[0] = v & kMask51;
  out.limbs_[1] = v >> 51;
  return out;
}

Fe25519 Fe25519::FromBytes(const Bytes& b) {
  assert(b.size() >= 32);
  auto load64 = [&](size_t off) {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(b[off + i]) << (8 * i);
    return v;
  };
  Fe25519 out;
  out.limbs_[0] = load64(0) & kMask51;
  out.limbs_[1] = (load64(6) >> 3) & kMask51;
  out.limbs_[2] = (load64(12) >> 6) & kMask51;
  out.limbs_[3] = (load64(19) >> 1) & kMask51;
  out.limbs_[4] = (load64(24) >> 12) & kMask51;
  return out;
}

Bytes Fe25519::ToBytes() const {
  // Fully reduce: carry, then conditionally subtract p (twice suffices for
  // loosely reduced values).
  Fe25519 t = *this;
  t.Carry();
  for (int round = 0; round < 2; ++round) {
    // Compute t - p and keep it if non-negative.
    uint64_t borrow = 0;
    std::array<uint64_t, 5> diff;
    const uint64_t p0 = kMask51 - 18;  // 2^51 - 19
    for (int i = 0; i < 5; ++i) {
      const uint64_t sub = (i == 0 ? p0 : kMask51) + borrow;
      if (t.limbs_[i] >= sub) {
        diff[i] = t.limbs_[i] - sub;
        borrow = 0;
      } else {
        diff[i] = t.limbs_[i] + (uint64_t{1} << 51) - sub;
        borrow = 1;
      }
    }
    if (borrow == 0) t.limbs_ = diff;
  }

  // Pack 5x51 bits into 32 bytes little-endian.
  Bytes out(32, 0);
  u128 acc = 0;
  int acc_bits = 0;
  size_t byte = 0;
  for (int i = 0; i < 5; ++i) {
    acc |= static_cast<u128>(t.limbs_[i]) << acc_bits;
    acc_bits += 51;
    while (acc_bits >= 8 && byte < 32) {
      out[byte++] = static_cast<uint8_t>(acc);
      acc >>= 8;
      acc_bits -= 8;
    }
  }
  while (byte < 32) {
    out[byte++] = static_cast<uint8_t>(acc);
    acc >>= 8;
  }
  return out;
}

Fe25519 Fe25519::Add(const Fe25519& a, const Fe25519& b) {
  Fe25519 out;
  for (int i = 0; i < 5; ++i) out.limbs_[i] = a.limbs_[i] + b.limbs_[i];
  out.Carry();
  return out;
}

Fe25519 Fe25519::Sub(const Fe25519& a, const Fe25519& b) {
  Fe25519 out;
  out.limbs_[0] = a.limbs_[0] + kTwoP0 - b.limbs_[0];
  for (int i = 1; i < 5; ++i) {
    out.limbs_[i] = a.limbs_[i] + kTwoPn - b.limbs_[i];
  }
  out.Carry();
  return out;
}

Fe25519 Fe25519::Mul(const Fe25519& f, const Fe25519& g) {
  const uint64_t* a = f.limbs_.data();
  const uint64_t* b = g.limbs_.data();

  // Terms with index >= 5 wrap with factor 19.
  const uint64_t b1_19 = b[1] * 19;
  const uint64_t b2_19 = b[2] * 19;
  const uint64_t b3_19 = b[3] * 19;
  const uint64_t b4_19 = b[4] * 19;

  u128 t0 = static_cast<u128>(a[0]) * b[0] + static_cast<u128>(a[1]) * b4_19 +
            static_cast<u128>(a[2]) * b3_19 + static_cast<u128>(a[3]) * b2_19 +
            static_cast<u128>(a[4]) * b1_19;
  u128 t1 = static_cast<u128>(a[0]) * b[1] + static_cast<u128>(a[1]) * b[0] +
            static_cast<u128>(a[2]) * b4_19 + static_cast<u128>(a[3]) * b3_19 +
            static_cast<u128>(a[4]) * b2_19;
  u128 t2 = static_cast<u128>(a[0]) * b[2] + static_cast<u128>(a[1]) * b[1] +
            static_cast<u128>(a[2]) * b[0] + static_cast<u128>(a[3]) * b4_19 +
            static_cast<u128>(a[4]) * b3_19;
  u128 t3 = static_cast<u128>(a[0]) * b[3] + static_cast<u128>(a[1]) * b[2] +
            static_cast<u128>(a[2]) * b[1] + static_cast<u128>(a[3]) * b[0] +
            static_cast<u128>(a[4]) * b4_19;
  u128 t4 = static_cast<u128>(a[0]) * b[4] + static_cast<u128>(a[1]) * b[3] +
            static_cast<u128>(a[2]) * b[2] + static_cast<u128>(a[3]) * b[1] +
            static_cast<u128>(a[4]) * b[0];

  // Carry chain over the 128-bit accumulators.
  Fe25519 out;
  uint64_t carry;
  out.limbs_[0] = static_cast<uint64_t>(t0) & kMask51;
  carry = static_cast<uint64_t>(t0 >> 51);
  t1 += carry;
  out.limbs_[1] = static_cast<uint64_t>(t1) & kMask51;
  carry = static_cast<uint64_t>(t1 >> 51);
  t2 += carry;
  out.limbs_[2] = static_cast<uint64_t>(t2) & kMask51;
  carry = static_cast<uint64_t>(t2 >> 51);
  t3 += carry;
  out.limbs_[3] = static_cast<uint64_t>(t3) & kMask51;
  carry = static_cast<uint64_t>(t3 >> 51);
  t4 += carry;
  out.limbs_[4] = static_cast<uint64_t>(t4) & kMask51;
  carry = static_cast<uint64_t>(t4 >> 51);
  out.limbs_[0] += carry * 19;
  out.Carry();
  return out;
}

namespace {

// MSB-first square-and-multiply over an exponent given as 32 LE bytes.
Fe25519 PowBytesLe(const Fe25519& base, const uint8_t exp_le[32]) {
  Fe25519 result = Fe25519::FromU64(1);
  bool started = false;
  for (int byte = 31; byte >= 0; --byte) {
    for (int bit = 7; bit >= 0; --bit) {
      if (started) result = Fe25519::Square(result);
      if ((exp_le[byte] >> bit) & 1) {
        result = Fe25519::Mul(result, base);
        started = true;
      }
    }
  }
  return result;
}

}  // namespace

Fe25519 Fe25519::Invert(const Fe25519& a) {
  // Exponent p - 2 = 2^255 - 21: bytes eb ff .. ff 7f.
  uint8_t exp[32];
  exp[0] = 0xeb;
  for (int i = 1; i < 31; ++i) exp[i] = 0xff;
  exp[31] = 0x7f;
  return PowBytesLe(a, exp);
}

Fe25519 Fe25519::PowP38(const Fe25519& a) {
  // Exponent (p + 3) / 8 = 2^252 - 2: bytes fe ff .. ff 0f.
  uint8_t exp[32];
  exp[0] = 0xfe;
  for (int i = 1; i < 31; ++i) exp[i] = 0xff;
  exp[31] = 0x0f;
  return PowBytesLe(a, exp);
}

bool Fe25519::IsZero() const {
  Bytes b = ToBytes();
  uint8_t acc = 0;
  for (uint8_t v : b) acc |= v;
  return acc == 0;
}

bool Fe25519::Equals(const Fe25519& other) const {
  return ToBytes() == other.ToBytes();
}

bool Fe25519::IsNegative() const { return ToBytes()[0] & 1; }

// ---------------------------------------------------------------------------
// Curve constants, computed once.

namespace {

struct CurveConstants {
  Fe25519 d;        // -121665 / 121666
  Fe25519 d2;       // 2 * d
  Fe25519 sqrt_m1;  // sqrt(-1) = 2^((p-1)/4)
};

const CurveConstants& Constants() {
  static const CurveConstants* consts = [] {
    auto* c = new CurveConstants();
    const Fe25519 num = Fe25519::Sub(Fe25519(), Fe25519::FromU64(121665));
    const Fe25519 den_inv = Fe25519::Invert(Fe25519::FromU64(121666));
    c->d = Fe25519::Mul(num, den_inv);
    c->d2 = Fe25519::Add(c->d, c->d);
    // sqrt(-1) = 2^((p-1)/4); exponent (p-1)/4 = (2^255 - 20)/4 = 2^253 - 5:
    // bytes fb ff .. ff 1f.
    uint8_t exp[32];
    exp[0] = 0xfb;
    for (int i = 1; i < 31; ++i) exp[i] = 0xff;
    exp[31] = 0x1f;
    Fe25519 base = Fe25519::FromU64(2);
    Fe25519 result = Fe25519::FromU64(1);
    for (int byte = 31; byte >= 0; --byte) {
      for (int bit = 7; bit >= 0; --bit) {
        result = Fe25519::Square(result);
        if ((exp[byte] >> bit) & 1) result = Fe25519::Mul(result, base);
      }
    }
    c->sqrt_m1 = result;
    return c;
  }();
  return *consts;
}

}  // namespace

bool EdPoint::OnCurve(const Fe25519& x, const Fe25519& y) {
  // -x^2 + y^2 == 1 + d x^2 y^2
  const Fe25519 xx = Fe25519::Square(x);
  const Fe25519 yy = Fe25519::Square(y);
  const Fe25519 lhs = Fe25519::Sub(yy, xx);
  const Fe25519 dxxyy = Fe25519::Mul(Constants().d, Fe25519::Mul(xx, yy));
  const Fe25519 rhs = Fe25519::Add(Fe25519::FromU64(1), dxxyy);
  return lhs.Equals(rhs);
}

EdPoint EdPoint::FromAffine(const Fe25519& x, const Fe25519& y) {
  EdPoint p;
  p.x_ = x;
  p.y_ = y;
  p.z_ = Fe25519::FromU64(1);
  p.t_ = Fe25519::Mul(x, y);
  return p;
}

EdPoint EdPoint::Identity() {
  return FromAffine(Fe25519(), Fe25519::FromU64(1));
}

const EdPoint& EdPoint::Base() {
  static const EdPoint* base = [] {
    // y = 4/5; recover even x from the curve equation.
    const Fe25519 y =
        Fe25519::Mul(Fe25519::FromU64(4), Fe25519::Invert(Fe25519::FromU64(5)));
    const Fe25519 yy = Fe25519::Square(y);
    const Fe25519 u = Fe25519::Sub(yy, Fe25519::FromU64(1));  // y^2 - 1
    const Fe25519 v =
        Fe25519::Add(Fe25519::Mul(Constants().d, yy), Fe25519::FromU64(1));
    // Candidate root of u/v: (u/v)^((p+3)/8).
    const Fe25519 uv = Fe25519::Mul(u, Fe25519::Invert(v));
    Fe25519 x = Fe25519::PowP38(uv);
    if (!Fe25519::Square(x).Equals(uv)) {
      x = Fe25519::Mul(x, Constants().sqrt_m1);
    }
    assert(Fe25519::Square(x).Equals(uv));
    if (x.IsNegative()) x = Fe25519::Sub(Fe25519(), x);  // pick even root
    assert(OnCurve(x, y));
    return new EdPoint(FromAffine(x, y));
  }();
  return *base;
}

const BigUint& EdPoint::GroupOrder() {
  static const BigUint* order = [] {
    auto r = BigUint::FromDecimal(
        "7237005577332262213973186563042994240857116359379907606001950938285"
        "454250989");  // 2^252 + 27742317777372353535851937790883648493
    assert(r.ok());
    return new BigUint(std::move(r).value());
  }();
  return *order;
}

EdPoint EdPoint::Add(const EdPoint& p, const EdPoint& q) {
  // RFC 8032 extended-coordinates addition (a = -1).
  using F = Fe25519;
  const F a = F::Mul(F::Sub(p.y_, p.x_), F::Sub(q.y_, q.x_));
  const F b = F::Mul(F::Add(p.y_, p.x_), F::Add(q.y_, q.x_));
  const F c = F::Mul(F::Mul(p.t_, Constants().d2), q.t_);
  const F d = F::Mul(F::Add(p.z_, p.z_), q.z_);
  const F e = F::Sub(b, a);
  const F f = F::Sub(d, c);
  const F g = F::Add(d, c);
  const F h = F::Add(b, a);
  EdPoint out;
  out.x_ = F::Mul(e, f);
  out.y_ = F::Mul(g, h);
  out.t_ = F::Mul(e, h);
  out.z_ = F::Mul(f, g);
  return out;
}

EdPoint EdPoint::Double(const EdPoint& p) {
  using F = Fe25519;
  const F a = F::Square(p.x_);
  const F b = F::Square(p.y_);
  const F zz = F::Square(p.z_);
  const F c = F::Add(zz, zz);
  const F h = F::Add(a, b);
  const F xy = F::Add(p.x_, p.y_);
  const F e = F::Sub(h, F::Square(xy));
  const F g = F::Sub(a, b);
  const F f = F::Add(c, g);
  EdPoint out;
  out.x_ = F::Mul(e, f);
  out.y_ = F::Mul(g, h);
  out.t_ = F::Mul(e, h);
  out.z_ = F::Mul(f, g);
  return out;
}

EdPoint EdPoint::ScalarMul(const BigUint& k, const EdPoint& p) {
  EdPoint acc = Identity();
  const size_t bits = k.BitLength();
  for (size_t i = bits; i-- > 0;) {
    acc = Double(acc);
    if (k.Bit(i)) acc = Add(acc, p);
  }
  return acc;
}

EdPoint EdPoint::ScalarBaseMul(const BigUint& k) {
  return ScalarMul(k, Base());
}

EdPoint EdPoint::MultiScalarMul(const std::vector<BigUint>& scalars,
                                const std::vector<EdPoint>& points) {
  assert(scalars.size() == points.size());
  const size_t n = scalars.size();
  if (n == 0) return Identity();

  // Below this size the bucket setup dominates; plain double-and-add wins.
  if (n < 4) {
    EdPoint acc = Identity();
    for (size_t i = 0; i < n; ++i) {
      acc = Add(acc, ScalarMul(scalars[i], points[i]));
    }
    return acc;
  }

  // Fixed-width little-endian limbs for cheap window extraction.
  size_t max_bits = 0;
  std::vector<std::array<uint64_t, 4>> limbs(n, {0, 0, 0, 0});
  for (size_t i = 0; i < n; ++i) {
    const auto& sl = scalars[i].limbs();
    assert(sl.size() <= 4 && "scalar exceeds 256 bits");
    for (size_t j = 0; j < sl.size() && j < 4; ++j) limbs[i][j] = sl[j];
    if (scalars[i].BitLength() > max_bits) max_bits = scalars[i].BitLength();
  }
  if (max_bits == 0) return Identity();

  // Window width c balances the per-window bucket walk (2^c additions)
  // against the per-point additions (n per window): pick 2^(c+1) ~ n.
  size_t c = 4;
  while (c < 12 && (size_t{1} << (c + 1)) < n) ++c;
  const uint64_t digit_mask = (uint64_t{1} << c) - 1;

  auto window_digit = [&](size_t i, size_t bit) -> uint64_t {
    const size_t limb = bit / 64, off = bit % 64;
    uint64_t d = limbs[i][limb] >> off;
    if (off + c > 64 && limb + 1 < 4) d |= limbs[i][limb + 1] << (64 - off);
    return d & digit_mask;
  };

  const size_t num_windows = (max_bits + c - 1) / c;
  std::vector<EdPoint> buckets(size_t{1} << c, Identity());
  std::vector<bool> used(buckets.size(), false);
  EdPoint result = Identity();
  for (size_t w = num_windows; w-- > 0;) {
    for (size_t k = 0; k < c; ++k) result = Double(result);
    std::fill(used.begin(), used.end(), false);
    for (size_t i = 0; i < n; ++i) {
      const uint64_t d = window_digit(i, w * c);
      if (d == 0) continue;
      buckets[d] = used[d] ? Add(buckets[d], points[i]) : points[i];
      used[d] = true;
    }
    // sum_b b * bucket[b] through suffix sums: running accumulates the
    // buckets from the top, so adding it once per step weights bucket b by
    // exactly b.
    EdPoint running = Identity();
    EdPoint window_sum = Identity();
    bool any = false;
    for (size_t b = buckets.size(); b-- > 1;) {
      if (used[b]) {
        running = any ? Add(running, buckets[b]) : buckets[b];
        any = true;
      }
      if (any) window_sum = Add(window_sum, running);
    }
    if (any) result = Add(result, window_sum);
  }
  return result;
}

void EdPoint::ToAffine(Fe25519* x, Fe25519* y) const {
  const Fe25519 z_inv = Fe25519::Invert(z_);
  *x = Fe25519::Mul(x_, z_inv);
  *y = Fe25519::Mul(y_, z_inv);
}

Bytes EdPoint::Encode() const {
  Fe25519 x, y;
  ToAffine(&x, &y);
  Bytes out = x.ToBytes();
  Bytes yb = y.ToBytes();
  out.insert(out.end(), yb.begin(), yb.end());
  return out;
}

Result<EdPoint> EdPoint::Decode(const Bytes& enc) {
  if (enc.size() != 64) {
    return Status::InvalidArgument("point encoding must be 64 bytes");
  }
  Bytes xb(enc.begin(), enc.begin() + 32);
  Bytes yb(enc.begin() + 32, enc.end());
  const Fe25519 x = Fe25519::FromBytes(xb);
  const Fe25519 y = Fe25519::FromBytes(yb);
  if (!OnCurve(x, y)) {
    return Status::InvalidArgument("encoded point not on curve");
  }
  return FromAffine(x, y);
}

bool EdPoint::Equals(const EdPoint& other) const {
  // Cross-multiply to avoid inversions: X1*Z2 == X2*Z1 and same for Y.
  const Fe25519 lhs_x = Fe25519::Mul(x_, other.z_);
  const Fe25519 rhs_x = Fe25519::Mul(other.x_, z_);
  const Fe25519 lhs_y = Fe25519::Mul(y_, other.z_);
  const Fe25519 rhs_y = Fe25519::Mul(other.y_, z_);
  return lhs_x.Equals(rhs_x) && lhs_y.Equals(rhs_y);
}

}  // namespace pds2::crypto
