#ifndef PDS2_CRYPTO_SCHNORR_H_
#define PDS2_CRYPTO_SCHNORR_H_

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/rng.h"
#include "crypto/bignum.h"
#include "crypto/ed25519.h"

namespace pds2::crypto {

/// Size of a serialized public key (affine point, x || y, 32 bytes each).
constexpr size_t kPublicKeySize = 64;
/// Size of a signature: R (64) || s (32, big-endian).
constexpr size_t kSignatureSize = 96;

/// A Schnorr signing key over the edwards25519 group with SHA-256 as the
/// challenge hash (deterministic nonces, RFC-6979 style). This is the
/// signature scheme of the whole platform: transactions, blocks,
/// certificates, attestation quotes and device readings are all signed with
/// it.
class SigningKey {
 public:
  /// Fresh random key.
  static SigningKey Generate(common::Rng& rng);
  /// Deterministic key from a seed (used to give simulated devices and
  /// actors stable identities).
  static SigningKey FromSeed(const common::Bytes& seed);

  /// Serialized public key.
  const common::Bytes& PublicKey() const { return public_key_; }

  /// Signs a message. Deterministic: same key + message => same signature.
  common::Bytes Sign(const common::Bytes& message) const;

  /// Signs a domain-separated message ("pds2.tx", "pds2.block", ...), so a
  /// signature from one context can never be replayed in another.
  common::Bytes SignWithDomain(const std::string& domain,
                               const common::Bytes& message) const;

  /// Diffie-Hellman shared secret with a peer's public key: both sides
  /// derive SHA-256(secret * PeerPoint). Providers and executors use this
  /// to agree on a transport key without any online key exchange. Fails on
  /// a malformed peer key.
  common::Result<common::Bytes> SharedSecret(
      const common::Bytes& peer_public_key) const;

 private:
  SigningKey(BigUint secret, common::Bytes public_key)
      : secret_(std::move(secret)), public_key_(std::move(public_key)) {}

  BigUint secret_;
  common::Bytes public_key_;
};

/// Verifies `signature` over `message` against `public_key`. Returns OK on
/// a valid signature, Unauthenticated otherwise.
common::Status VerifySignature(const common::Bytes& public_key,
                               const common::Bytes& message,
                               const common::Bytes& signature);

/// Domain-separated verification, mirror of SignWithDomain.
common::Status VerifySignatureWithDomain(const common::Bytes& public_key,
                                         const std::string& domain,
                                         const common::Bytes& message,
                                         const common::Bytes& signature);

/// The exact bytes SignWithDomain signs (domain || 0x00 || message).
/// Exposed so batch callers can pre-compose domain-separated messages.
common::Bytes DomainSeparatedMessage(const std::string& domain,
                                     const common::Bytes& message);

/// One (public key, message, signature) triple for batch verification.
/// The message must already be domain-separated if the signature was made
/// with SignWithDomain (see DomainSeparatedMessage).
struct BatchVerifyEntry {
  common::Bytes public_key;
  common::Bytes message;
  common::Bytes signature;
};

/// Verifies a whole batch with one randomized linear combination,
///   (sum z_i s_i) * B == sum z_i * R_i + sum (z_i c_i) * P_i,
/// evaluated by Pippenger multi-scalar multiplication — amortized cost per
/// signature shrinks with batch size (~5-10x fewer point operations than
/// independent verification at block-sized batches). The coefficients z_i
/// are 128-bit and derived Fiat-Shamir style from a hash of the entire
/// batch, so the check is deterministic yet an adversary cannot choose
/// signatures that cancel (false-accept probability ~2^-128).
///
/// Returns true iff every signature verifies. On false the caller should
/// fall back to per-entry VerifySignature to locate the failures (a batch
/// cannot name the culprit).
bool VerifySignatureBatch(const std::vector<BatchVerifyEntry>& entries);

}  // namespace pds2::crypto

#endif  // PDS2_CRYPTO_SCHNORR_H_
