#include "crypto/schnorr.h"

#include "crypto/sha256.h"

namespace pds2::crypto {

using common::Bytes;
using common::Status;

namespace {

// Hash arbitrary bytes to a scalar mod the group order.
BigUint HashToScalar(const Bytes& data) {
  return BigUint::FromBytesBE(Sha256::Hash(data)).Mod(EdPoint::GroupOrder());
}

Bytes WithDomain(const std::string& domain, const Bytes& message) {
  Bytes out = common::ToBytes(domain);
  out.push_back(0);  // unambiguous separator
  common::Append(out, message);
  return out;
}

}  // namespace

SigningKey SigningKey::Generate(common::Rng& rng) {
  return FromSeed(rng.NextBytes(32));
}

SigningKey SigningKey::FromSeed(const Bytes& seed) {
  Bytes expanded = Sha256::Hash2(common::ToBytes("pds2.key.seed"), seed);
  BigUint secret = BigUint::FromBytesBE(expanded).Mod(EdPoint::GroupOrder());
  if (secret.IsZero()) secret = BigUint(1);  // vanishingly unlikely
  Bytes public_key = EdPoint::ScalarBaseMul(secret).Encode();
  return SigningKey(std::move(secret), std::move(public_key));
}

Bytes SigningKey::Sign(const Bytes& message) const {
  // Deterministic nonce: r = H(secret || message || "nonce") mod l.
  Bytes nonce_input = secret_.ToBytesBE();
  common::Append(nonce_input, message);
  common::Append(nonce_input, common::ToBytes("pds2.sig.nonce"));
  BigUint r = HashToScalar(nonce_input);
  if (r.IsZero()) r = BigUint(1);

  const EdPoint big_r = EdPoint::ScalarBaseMul(r);
  Bytes r_enc = big_r.Encode();

  // Challenge c = H(R || P || message) mod l.
  Bytes challenge_input = r_enc;
  common::Append(challenge_input, public_key_);
  common::Append(challenge_input, message);
  const BigUint c = HashToScalar(challenge_input);

  // s = r + c * secret mod l.
  const BigUint& order = EdPoint::GroupOrder();
  const BigUint s = r.Add(BigUint::MulMod(c, secret_, order)).Mod(order);

  Bytes sig = std::move(r_enc);
  auto s_bytes = s.ToBytesBEPadded(32);
  // s < l < 2^253 always fits in 32 bytes.
  common::Append(sig, s_bytes.value());
  return sig;
}

Bytes SigningKey::SignWithDomain(const std::string& domain,
                                 const Bytes& message) const {
  return Sign(WithDomain(domain, message));
}

common::Result<Bytes> SigningKey::SharedSecret(
    const Bytes& peer_public_key) const {
  PDS2_ASSIGN_OR_RETURN(EdPoint peer, EdPoint::Decode(peer_public_key));
  const EdPoint shared = EdPoint::ScalarMul(secret_, peer);
  return Sha256::Hash2(common::ToBytes("pds2.dh"), shared.Encode());
}

Status VerifySignature(const Bytes& public_key, const Bytes& message,
                       const Bytes& signature) {
  if (public_key.size() != kPublicKeySize) {
    return Status::Unauthenticated("malformed public key");
  }
  if (signature.size() != kSignatureSize) {
    return Status::Unauthenticated("malformed signature");
  }

  Bytes r_enc(signature.begin(), signature.begin() + kPublicKeySize);
  Bytes s_bytes(signature.begin() + kPublicKeySize, signature.end());

  auto big_r = EdPoint::Decode(r_enc);
  if (!big_r.ok()) return Status::Unauthenticated("signature R not on curve");
  auto pub = EdPoint::Decode(public_key);
  if (!pub.ok()) return Status::Unauthenticated("public key not on curve");

  const BigUint s = BigUint::FromBytesBE(s_bytes);
  const BigUint& order = EdPoint::GroupOrder();
  if (s >= order) return Status::Unauthenticated("signature s out of range");

  Bytes challenge_input = r_enc;
  common::Append(challenge_input, public_key);
  common::Append(challenge_input, message);
  const BigUint c = HashToScalar(challenge_input);

  // Check s*B == R + c*P.
  const EdPoint lhs = EdPoint::ScalarBaseMul(s);
  const EdPoint rhs = EdPoint::Add(*big_r, EdPoint::ScalarMul(c, *pub));
  if (!lhs.Equals(rhs)) {
    return Status::Unauthenticated("signature verification failed");
  }
  return Status::Ok();
}

Status VerifySignatureWithDomain(const Bytes& public_key,
                                 const std::string& domain,
                                 const Bytes& message,
                                 const Bytes& signature) {
  return VerifySignature(public_key, WithDomain(domain, message), signature);
}

}  // namespace pds2::crypto
