#include "crypto/schnorr.h"

#include "crypto/sha256.h"

namespace pds2::crypto {

using common::Bytes;
using common::Status;

namespace {

// Hash arbitrary bytes to a scalar mod the group order.
BigUint HashToScalar(const Bytes& data) {
  return BigUint::FromBytesBE(Sha256::Hash(data)).Mod(EdPoint::GroupOrder());
}

Bytes WithDomain(const std::string& domain, const Bytes& message) {
  Bytes out = common::ToBytes(domain);
  out.push_back(0);  // unambiguous separator
  common::Append(out, message);
  return out;
}

}  // namespace

SigningKey SigningKey::Generate(common::Rng& rng) {
  return FromSeed(rng.NextBytes(32));
}

SigningKey SigningKey::FromSeed(const Bytes& seed) {
  Bytes expanded = Sha256::Hash2(common::ToBytes("pds2.key.seed"), seed);
  BigUint secret = BigUint::FromBytesBE(expanded).Mod(EdPoint::GroupOrder());
  if (secret.IsZero()) secret = BigUint(1);  // vanishingly unlikely
  Bytes public_key = EdPoint::ScalarBaseMul(secret).Encode();
  return SigningKey(std::move(secret), std::move(public_key));
}

Bytes SigningKey::Sign(const Bytes& message) const {
  // Deterministic nonce: r = H(secret || message || "nonce") mod l.
  Bytes nonce_input = secret_.ToBytesBE();
  common::Append(nonce_input, message);
  common::Append(nonce_input, common::ToBytes("pds2.sig.nonce"));
  BigUint r = HashToScalar(nonce_input);
  if (r.IsZero()) r = BigUint(1);

  const EdPoint big_r = EdPoint::ScalarBaseMul(r);
  Bytes r_enc = big_r.Encode();

  // Challenge c = H(R || P || message) mod l.
  Bytes challenge_input = r_enc;
  common::Append(challenge_input, public_key_);
  common::Append(challenge_input, message);
  const BigUint c = HashToScalar(challenge_input);

  // s = r + c * secret mod l.
  const BigUint& order = EdPoint::GroupOrder();
  const BigUint s = r.Add(BigUint::MulMod(c, secret_, order)).Mod(order);

  Bytes sig = std::move(r_enc);
  auto s_bytes = s.ToBytesBEPadded(32);
  // s < l < 2^253 always fits in 32 bytes.
  common::Append(sig, s_bytes.value());
  return sig;
}

Bytes SigningKey::SignWithDomain(const std::string& domain,
                                 const Bytes& message) const {
  return Sign(WithDomain(domain, message));
}

common::Result<Bytes> SigningKey::SharedSecret(
    const Bytes& peer_public_key) const {
  PDS2_ASSIGN_OR_RETURN(EdPoint peer, EdPoint::Decode(peer_public_key));
  const EdPoint shared = EdPoint::ScalarMul(secret_, peer);
  return Sha256::Hash2(common::ToBytes("pds2.dh"), shared.Encode());
}

Status VerifySignature(const Bytes& public_key, const Bytes& message,
                       const Bytes& signature) {
  if (public_key.size() != kPublicKeySize) {
    return Status::Unauthenticated("malformed public key");
  }
  if (signature.size() != kSignatureSize) {
    return Status::Unauthenticated("malformed signature");
  }

  Bytes r_enc(signature.begin(), signature.begin() + kPublicKeySize);
  Bytes s_bytes(signature.begin() + kPublicKeySize, signature.end());

  auto big_r = EdPoint::Decode(r_enc);
  if (!big_r.ok()) return Status::Unauthenticated("signature R not on curve");
  auto pub = EdPoint::Decode(public_key);
  if (!pub.ok()) return Status::Unauthenticated("public key not on curve");

  const BigUint s = BigUint::FromBytesBE(s_bytes);
  const BigUint& order = EdPoint::GroupOrder();
  if (s >= order) return Status::Unauthenticated("signature s out of range");

  Bytes challenge_input = r_enc;
  common::Append(challenge_input, public_key);
  common::Append(challenge_input, message);
  const BigUint c = HashToScalar(challenge_input);

  // Check s*B == R + c*P.
  const EdPoint lhs = EdPoint::ScalarBaseMul(s);
  const EdPoint rhs = EdPoint::Add(*big_r, EdPoint::ScalarMul(c, *pub));
  if (!lhs.Equals(rhs)) {
    return Status::Unauthenticated("signature verification failed");
  }
  return Status::Ok();
}

Status VerifySignatureWithDomain(const Bytes& public_key,
                                 const std::string& domain,
                                 const Bytes& message,
                                 const Bytes& signature) {
  return VerifySignature(public_key, WithDomain(domain, message), signature);
}

Bytes DomainSeparatedMessage(const std::string& domain, const Bytes& message) {
  return WithDomain(domain, message);
}

bool VerifySignatureBatch(const std::vector<BatchVerifyEntry>& entries) {
  const size_t n = entries.size();
  if (n == 0) return true;
  if (n == 1) {
    return VerifySignature(entries[0].public_key, entries[0].message,
                           entries[0].signature)
        .ok();
  }

  const BigUint& order = EdPoint::GroupOrder();

  // Structural checks, point decoding and per-entry challenges. Any
  // malformed entry fails the batch outright — exactly what individual
  // verification would conclude about it.
  std::vector<EdPoint> big_r, pub;
  std::vector<BigUint> s(n), c(n);
  big_r.reserve(n);
  pub.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const BatchVerifyEntry& e = entries[i];
    if (e.public_key.size() != kPublicKeySize ||
        e.signature.size() != kSignatureSize) {
      return false;
    }
    Bytes r_enc(e.signature.begin(), e.signature.begin() + kPublicKeySize);
    Bytes s_bytes(e.signature.begin() + kPublicKeySize, e.signature.end());
    auto r_point = EdPoint::Decode(r_enc);
    if (!r_point.ok()) return false;
    auto p_point = EdPoint::Decode(e.public_key);
    if (!p_point.ok()) return false;
    s[i] = BigUint::FromBytesBE(s_bytes);
    if (s[i] >= order) return false;

    Bytes challenge_input = std::move(r_enc);
    common::Append(challenge_input, e.public_key);
    common::Append(challenge_input, e.message);
    c[i] = HashToScalar(challenge_input);
    big_r.push_back(std::move(r_point).value());
    pub.push_back(std::move(p_point).value());
  }

  // Deterministic Fiat-Shamir coefficients: one digest over the whole batch
  // (so every z_i depends on every entry), then z_i = H(digest || i)
  // truncated to 128 bits and forced nonzero.
  Sha256 batch_hash;
  batch_hash.Update("pds2.sig.batch");
  for (const BatchVerifyEntry& e : entries) {
    batch_hash.Update(e.public_key);
    batch_hash.Update(e.signature);
    batch_hash.Update(Sha256::Hash(e.message));
  }
  const Bytes digest = batch_hash.Finish();

  std::vector<EdPoint> points;
  std::vector<BigUint> scalars;
  points.reserve(2 * n);
  scalars.reserve(2 * n);
  BigUint z_dot_s;  // sum z_i * s_i mod order
  for (size_t i = 0; i < n; ++i) {
    Bytes index(8);
    for (int b = 0; b < 8; ++b) {
      index[b] = static_cast<uint8_t>((i >> (8 * (7 - b))) & 0xff);
    }
    Bytes z_bytes = Sha256::Hash2(digest, index);
    z_bytes.resize(16);  // 128-bit coefficient
    BigUint z = BigUint::FromBytesBE(z_bytes);
    if (z.IsZero()) z = BigUint(1);  // z = 0 would exempt entry i

    scalars.push_back(z);
    points.push_back(big_r[i]);
    scalars.push_back(BigUint::MulMod(z, c[i], order));
    points.push_back(pub[i]);
    z_dot_s = z_dot_s.Add(BigUint::MulMod(z, s[i], order)).Mod(order);
  }

  const EdPoint lhs = EdPoint::ScalarBaseMul(z_dot_s);
  const EdPoint rhs = EdPoint::MultiScalarMul(scalars, points);
  return lhs.Equals(rhs);
}

}  // namespace pds2::crypto
