#include "crypto/cipher.h"

#include "crypto/sha256.h"

namespace pds2::crypto {

using common::Bytes;
using common::Result;
using common::Status;

namespace {
constexpr size_t kNonceSize = 16;
constexpr size_t kTagSize = kSha256DigestSize;
}  // namespace

AuthCipher::AuthCipher(const Bytes& key)
    : enc_key_(DeriveKey(key, "pds2.cipher.enc", 32)),
      mac_key_(DeriveKey(key, "pds2.cipher.mac", 32)) {}

Bytes AuthCipher::Keystream(const Bytes& nonce, size_t len) const {
  Bytes stream;
  stream.reserve(len);
  uint64_t counter = 0;
  while (stream.size() < len) {
    Sha256 h;
    h.Update(enc_key_);
    h.Update(nonce);
    uint8_t ctr[8];
    for (int i = 0; i < 8; ++i) ctr[i] = static_cast<uint8_t>(counter >> (8 * i));
    h.Update(ctr, sizeof(ctr));
    Bytes block = h.Finish();
    const size_t take = std::min(block.size(), len - stream.size());
    stream.insert(stream.end(), block.begin(),
                  block.begin() + static_cast<ptrdiff_t>(take));
    ++counter;
  }
  return stream;
}

Bytes AuthCipher::Seal(const Bytes& plaintext, const Bytes& nonce_seed) const {
  Bytes nonce = Sha256::Hash(nonce_seed);
  nonce.resize(kNonceSize);

  Bytes stream = Keystream(nonce, plaintext.size());
  Bytes out = nonce;
  out.reserve(kNonceSize + plaintext.size() + kTagSize);
  for (size_t i = 0; i < plaintext.size(); ++i) {
    out.push_back(plaintext[i] ^ stream[i]);
  }
  // Tag over nonce || ciphertext (everything emitted so far).
  Bytes tag = HmacSha256(mac_key_, out);
  common::Append(out, tag);
  return out;
}

Result<Bytes> AuthCipher::Open(const Bytes& sealed) const {
  if (sealed.size() < kNonceSize + kTagSize) {
    return Status::Corruption("sealed blob too short");
  }
  const size_t body_len = sealed.size() - kTagSize;
  Bytes body(sealed.begin(), sealed.begin() + static_cast<ptrdiff_t>(body_len));
  Bytes tag(sealed.begin() + static_cast<ptrdiff_t>(body_len), sealed.end());

  Bytes expected = HmacSha256(mac_key_, body);
  if (!common::ConstantTimeEquals(tag, expected)) {
    return Status::Unauthenticated("MAC verification failed");
  }

  Bytes nonce(body.begin(), body.begin() + kNonceSize);
  const size_t ct_len = body.size() - kNonceSize;
  Bytes stream = Keystream(nonce, ct_len);
  Bytes plaintext(ct_len);
  for (size_t i = 0; i < ct_len; ++i) {
    plaintext[i] = body[kNonceSize + i] ^ stream[i];
  }
  return plaintext;
}

}  // namespace pds2::crypto
