#ifndef PDS2_CRYPTO_PAILLIER_H_
#define PDS2_CRYPTO_PAILLIER_H_

#include <cstdint>

#include "common/result.h"
#include "common/rng.h"
#include "crypto/bignum.h"

namespace pds2::crypto {

/// Public half of a Paillier key pair: additively homomorphic encryption
/// with plaintext space Z_n. Using the standard g = n + 1 simplification.
class PaillierPublicKey {
 public:
  PaillierPublicKey(BigUint n, BigUint n_squared)
      : n_(std::move(n)), n_squared_(std::move(n_squared)) {}

  const BigUint& n() const { return n_; }
  const BigUint& n_squared() const { return n_squared_; }

  /// Encrypts m (must be < n): c = (1 + m*n) * r^n mod n^2.
  common::Result<BigUint> Encrypt(const BigUint& m, common::Rng& rng) const;

  /// Homomorphic addition: Dec(AddCiphertexts(E(a), E(b))) = a + b mod n.
  BigUint AddCiphertexts(const BigUint& c1, const BigUint& c2) const;

  /// Homomorphic scalar multiplication: Dec(c^k) = k * m mod n.
  BigUint ScalarMul(const BigUint& c, const BigUint& k) const;

  /// Encodes a signed 64-bit value into Z_n (negatives map to n - |v|).
  BigUint EncodeSigned(int64_t v) const;
  /// Inverse of EncodeSigned; values in the upper half of Z_n decode as
  /// negative. Fails if the magnitude exceeds int64.
  common::Result<int64_t> DecodeSigned(const BigUint& m) const;

 private:
  BigUint n_;
  BigUint n_squared_;
};

/// Full Paillier key pair (decryption capability).
class PaillierKeyPair {
 public:
  /// Generates a key with an n of roughly `modulus_bits` bits (two random
  /// primes of modulus_bits/2). 1024 is the library default — deliberately
  /// realistic so experiment E1 measures genuine HE cost.
  static PaillierKeyPair Generate(size_t modulus_bits, common::Rng& rng);

  const PaillierPublicKey& public_key() const { return public_key_; }

  /// Decrypts: m = L(c^lambda mod n^2) * mu mod n, L(x) = (x-1)/n.
  common::Result<BigUint> Decrypt(const BigUint& c) const;

 private:
  PaillierKeyPair(PaillierPublicKey pub, BigUint lambda, BigUint mu)
      : public_key_(std::move(pub)),
        lambda_(std::move(lambda)),
        mu_(std::move(mu)) {}

  PaillierPublicKey public_key_;
  BigUint lambda_;  // lcm(p-1, q-1)
  BigUint mu_;      // (L(g^lambda mod n^2))^-1 mod n
};

}  // namespace pds2::crypto

#endif  // PDS2_CRYPTO_PAILLIER_H_
