#ifndef PDS2_CRYPTO_SHA256_H_
#define PDS2_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <string_view>

#include "common/bytes.h"

namespace pds2::crypto {

/// Digest size of SHA-256 in bytes.
constexpr size_t kSha256DigestSize = 32;

/// Incremental SHA-256 (FIPS 180-4). Used as the platform-wide content
/// hash: block hashes, transaction ids, Merkle nodes, enclave measurements,
/// content addresses and key derivation all go through this.
class Sha256 {
 public:
  Sha256();

  /// Absorbs more input.
  void Update(const uint8_t* data, size_t len);
  void Update(const common::Bytes& data) { Update(data.data(), data.size()); }
  void Update(std::string_view s) {
    Update(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

  /// Pads and produces the digest. The object must not be reused afterwards.
  common::Bytes Finish();

  /// One-shot convenience.
  static common::Bytes Hash(const common::Bytes& data);
  static common::Bytes Hash(std::string_view data);
  /// Hash of the concatenation a || b (common case for Merkle nodes).
  static common::Bytes Hash2(const common::Bytes& a, const common::Bytes& b);

 private:
  void ProcessBlock(const uint8_t* block);

  std::array<uint32_t, 8> state_;
  uint64_t total_len_ = 0;
  uint8_t buffer_[64];
  size_t buffer_len_ = 0;
};

/// HMAC-SHA256 (RFC 2104).
common::Bytes HmacSha256(const common::Bytes& key, const common::Bytes& msg);

/// HKDF-style key derivation: HMAC(key, info || counter) stream, truncated
/// to `out_len` bytes. Used to derive sealing and transport keys.
common::Bytes DeriveKey(const common::Bytes& key, std::string_view info,
                        size_t out_len);

}  // namespace pds2::crypto

#endif  // PDS2_CRYPTO_SHA256_H_
