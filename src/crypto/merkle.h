#ifndef PDS2_CRYPTO_MERKLE_H_
#define PDS2_CRYPTO_MERKLE_H_

#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace pds2::common {
class ThreadPool;
}  // namespace pds2::common

namespace pds2::crypto {

/// One step of a Merkle inclusion proof: the sibling hash and whether it
/// sits on the left of the path node.
struct MerkleStep {
  common::Bytes sibling;
  bool sibling_is_left = false;
};

/// Inclusion proof for a single leaf.
using MerkleProof = std::vector<MerkleStep>;

/// Binary SHA-256 Merkle tree over a list of leaf byte-strings. Leaves are
/// hashed with a 0x00 prefix and interior nodes with 0x01, preventing
/// leaf/node second-preimage confusion. Odd nodes are promoted (not
/// duplicated). The blockchain uses this for transaction roots; the storage
/// subsystem uses it for dataset commitments.
class MerkleTree {
 public:
  /// Builds the tree. An empty input yields the hash of the empty string as
  /// root (a defined sentinel). With a pool, each level is hashed
  /// level-parallel (nodes within a level are independent); the resulting
  /// tree is bit-identical for every pool size because node positions are
  /// fixed by the input alone.
  explicit MerkleTree(const std::vector<common::Bytes>& leaves,
                      common::ThreadPool* pool = nullptr);

  const common::Bytes& Root() const { return root_; }
  size_t LeafCount() const { return leaf_count_; }

  /// Proof for leaf `index`; fails with OutOfRange on a bad index.
  common::Result<MerkleProof> Prove(size_t index) const;

  /// Verifies that `leaf_data` is at some position under `root`.
  static bool Verify(const common::Bytes& root, const common::Bytes& leaf_data,
                     const MerkleProof& proof);

  /// Hash applied to raw leaf data (0x00-prefixed SHA-256).
  static common::Bytes HashLeaf(const common::Bytes& data);

 private:
  // levels_[0] = leaf hashes, last level = {root}.
  std::vector<std::vector<common::Bytes>> levels_;
  common::Bytes root_;
  size_t leaf_count_ = 0;
};

}  // namespace pds2::crypto

#endif  // PDS2_CRYPTO_MERKLE_H_
