#ifndef PDS2_CRYPTO_ED25519_H_
#define PDS2_CRYPTO_ED25519_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/bignum.h"

namespace pds2::crypto {

/// Element of GF(2^255 - 19) in radix-2^51 representation (five 51-bit
/// limbs, curve25519-donna style). Operations keep limbs loosely reduced;
/// ToBytes performs full canonical reduction.
class Fe25519 {
 public:
  /// Zero element.
  Fe25519() : limbs_{0, 0, 0, 0, 0} {}
  /// Small constant.
  static Fe25519 FromU64(uint64_t v);
  /// From 32 little-endian bytes (top bit ignored, per convention).
  static Fe25519 FromBytes(const common::Bytes& b);
  /// Canonical 32 little-endian bytes.
  common::Bytes ToBytes() const;

  static Fe25519 Add(const Fe25519& a, const Fe25519& b);
  static Fe25519 Sub(const Fe25519& a, const Fe25519& b);
  static Fe25519 Mul(const Fe25519& a, const Fe25519& b);
  static Fe25519 Square(const Fe25519& a) { return Mul(a, a); }
  /// Multiplicative inverse via Fermat (x^(p-2)); inverse of 0 is 0.
  static Fe25519 Invert(const Fe25519& a);
  /// x^((p+3)/8), the square-root candidate exponentiation.
  static Fe25519 PowP38(const Fe25519& a);

  bool IsZero() const;
  bool Equals(const Fe25519& other) const;
  /// Least significant bit of the canonical representation ("sign" of x in
  /// Ed25519 conventions).
  bool IsNegative() const;

 private:
  void Carry();

  std::array<uint64_t, 5> limbs_;
};

/// A point on edwards25519 (-x^2 + y^2 = 1 + d x^2 y^2) in extended
/// homogeneous coordinates (X : Y : Z : T), XY = ZT.
class EdPoint {
 public:
  /// Identity element (0, 1).
  static EdPoint Identity();
  /// The standard base point B (y = 4/5, even x), derived at first use by
  /// square-root recovery — no magic constants.
  static const EdPoint& Base();
  /// Order of the prime-order subgroup, l = 2^252 + 27742...8493.
  static const BigUint& GroupOrder();

  static EdPoint Add(const EdPoint& p, const EdPoint& q);
  static EdPoint Double(const EdPoint& p);
  /// Scalar multiplication, double-and-add (not constant-time; the
  /// simulated adversary model does not include timing attacks on the
  /// simulator host).
  static EdPoint ScalarMul(const BigUint& k, const EdPoint& p);
  /// k * Base().
  static EdPoint ScalarBaseMul(const BigUint& k);
  /// sum_i scalars[i] * points[i] via Pippenger's bucket method — the
  /// workhorse of batch signature verification, roughly an order of
  /// magnitude fewer point operations than independent ScalarMul calls at
  /// block-sized inputs. Scalars must be < 2^256 (callers pass values
  /// reduced mod the group order). Sizes must match.
  static EdPoint MultiScalarMul(const std::vector<BigUint>& scalars,
                                const std::vector<EdPoint>& points);

  /// Affine coordinates (x, y), each canonical.
  void ToAffine(Fe25519* x, Fe25519* y) const;
  /// 64-byte encoding: x(32 LE) || y(32 LE).
  common::Bytes Encode() const;
  /// Rejects encodings whose coordinates are not on the curve.
  static common::Result<EdPoint> Decode(const common::Bytes& enc);

  bool Equals(const EdPoint& other) const;
  bool IsIdentity() const { return Equals(Identity()); }

  /// True if (x, y) satisfies the curve equation.
  static bool OnCurve(const Fe25519& x, const Fe25519& y);

 private:
  EdPoint() = default;
  static EdPoint FromAffine(const Fe25519& x, const Fe25519& y);

  Fe25519 x_, y_, z_, t_;
};

}  // namespace pds2::crypto

#endif  // PDS2_CRYPTO_ED25519_H_
