#include "crypto/bignum.h"

#include <algorithm>
#include <cassert>

namespace pds2::crypto {

using common::Bytes;
using common::Result;
using common::Status;

namespace {

using u128 = unsigned __int128;

// Small primes for fast trial division before Miller-Rabin.
constexpr uint64_t kSmallPrimes[] = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251};

}  // namespace

BigUint::BigUint(uint64_t v) {
  if (v != 0) limbs_.push_back(v);
}

void BigUint::Trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUint BigUint::FromBytesBE(const Bytes& bytes) {
  BigUint out;
  size_t n = bytes.size();
  out.limbs_.assign((n + 7) / 8, 0);
  for (size_t i = 0; i < n; ++i) {
    // bytes[n-1-i] is the i-th least significant byte.
    out.limbs_[i / 8] |= static_cast<uint64_t>(bytes[n - 1 - i]) << (8 * (i % 8));
  }
  out.Trim();
  return out;
}

Result<BigUint> BigUint::FromHex(const std::string& hex) {
  BigUint out;
  for (char c : hex) {
    int v;
    if (c >= '0' && c <= '9') v = c - '0';
    else if (c >= 'a' && c <= 'f') v = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') v = c - 'A' + 10;
    else return Status::InvalidArgument("non-hex character");
    out = out.ShiftLeft(4).Add(BigUint(static_cast<uint64_t>(v)));
  }
  return out;
}

Result<BigUint> BigUint::FromDecimal(const std::string& dec) {
  if (dec.empty()) return Status::InvalidArgument("empty decimal string");
  BigUint out;
  const BigUint ten(10);
  for (char c : dec) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("non-decimal character");
    }
    out = out.Mul(ten).Add(BigUint(static_cast<uint64_t>(c - '0')));
  }
  return out;
}

BigUint BigUint::RandomBelow(const BigUint& bound, common::Rng& rng) {
  assert(!bound.IsZero());
  const size_t bits = bound.BitLength();
  const size_t limbs = (bits + 63) / 64;
  for (;;) {
    BigUint candidate;
    candidate.limbs_.resize(limbs);
    for (auto& l : candidate.limbs_) l = rng.NextU64();
    // Mask off excess bits in the top limb.
    const size_t top_bits = bits - (limbs - 1) * 64;
    if (top_bits < 64) {
      candidate.limbs_.back() &= (uint64_t{1} << top_bits) - 1;
    }
    candidate.Trim();
    if (candidate < bound) return candidate;
  }
}

BigUint BigUint::RandomBits(size_t bits, common::Rng& rng) {
  assert(bits > 0);
  const size_t limbs = (bits + 63) / 64;
  BigUint out;
  out.limbs_.resize(limbs);
  for (auto& l : out.limbs_) l = rng.NextU64();
  const size_t top_bits = bits - (limbs - 1) * 64;
  if (top_bits < 64) {
    out.limbs_.back() &= (uint64_t{1} << top_bits) - 1;
  }
  out.limbs_.back() |= uint64_t{1} << (top_bits - 1);  // force exact width
  out.Trim();
  return out;
}

BigUint BigUint::RandomPrime(size_t bits, common::Rng& rng, int rounds) {
  assert(bits >= 8);
  for (;;) {
    BigUint candidate = RandomBits(bits, rng);
    candidate.limbs_[0] |= 1;  // odd
    if (IsProbablePrime(candidate, rng, rounds)) return candidate;
  }
}

size_t BigUint::BitLength() const {
  if (limbs_.empty()) return 0;
  const uint64_t top = limbs_.back();
  return (limbs_.size() - 1) * 64 +
         (64 - static_cast<size_t>(__builtin_clzll(top)));
}

bool BigUint::Bit(size_t i) const {
  const size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1;
}

Bytes BigUint::ToBytesBE() const {
  if (limbs_.empty()) return {};
  const size_t bytes = (BitLength() + 7) / 8;
  Bytes out(bytes);
  for (size_t i = 0; i < bytes; ++i) {
    out[bytes - 1 - i] =
        static_cast<uint8_t>(limbs_[i / 8] >> (8 * (i % 8)));
  }
  return out;
}

Result<Bytes> BigUint::ToBytesBEPadded(size_t width) const {
  Bytes minimal = ToBytesBE();
  if (minimal.size() > width) {
    return Status::OutOfRange("value does not fit in requested width");
  }
  Bytes out(width - minimal.size(), 0);
  out.insert(out.end(), minimal.begin(), minimal.end());
  return out;
}

std::string BigUint::ToHex() const {
  if (limbs_.empty()) return "0";
  static const char* digits = "0123456789abcdef";
  std::string out;
  Bytes be = ToBytesBE();
  for (uint8_t b : be) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xf]);
  }
  // Strip at most one leading zero nibble.
  if (out.size() > 1 && out[0] == '0') out.erase(out.begin());
  return out;
}

std::string BigUint::ToDecimal() const {
  if (limbs_.empty()) return "0";
  std::string out;
  BigUint v = *this;
  const BigUint ten(10);
  while (!v.IsZero()) {
    auto [q, r] = v.DivMod(ten);
    out.push_back(static_cast<char>('0' + r.Low64()));
    v = std::move(q);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

int BigUint::Compare(const BigUint& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) {
      return limbs_[i] < other.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

BigUint BigUint::Add(const BigUint& o) const {
  BigUint out;
  const size_t n = std::max(limbs_.size(), o.limbs_.size());
  out.limbs_.resize(n);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    u128 sum = static_cast<u128>(i < limbs_.size() ? limbs_[i] : 0) +
               (i < o.limbs_.size() ? o.limbs_[i] : 0) + carry;
    out.limbs_[i] = static_cast<uint64_t>(sum);
    carry = static_cast<uint64_t>(sum >> 64);
  }
  if (carry) out.limbs_.push_back(carry);
  return out;
}

BigUint BigUint::Sub(const BigUint& o) const {
  assert(*this >= o);
  BigUint out;
  out.limbs_.resize(limbs_.size());
  uint64_t borrow = 0;
  for (size_t i = 0; i < limbs_.size(); ++i) {
    const uint64_t rhs = i < o.limbs_.size() ? o.limbs_[i] : 0;
    u128 lhs = limbs_[i];
    u128 need = static_cast<u128>(rhs) + borrow;
    if (lhs >= need) {
      out.limbs_[i] = static_cast<uint64_t>(lhs - need);
      borrow = 0;
    } else {
      out.limbs_[i] = static_cast<uint64_t>((lhs + (static_cast<u128>(1) << 64)) - need);
      borrow = 1;
    }
  }
  out.Trim();
  return out;
}

BigUint BigUint::Mul(const BigUint& o) const {
  if (IsZero() || o.IsZero()) return BigUint();
  BigUint out;
  out.limbs_.assign(limbs_.size() + o.limbs_.size(), 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t carry = 0;
    const uint64_t a = limbs_[i];
    for (size_t j = 0; j < o.limbs_.size(); ++j) {
      u128 cur = static_cast<u128>(a) * o.limbs_[j] + out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    out.limbs_[i + o.limbs_.size()] += carry;
  }
  out.Trim();
  return out;
}

BigUint BigUint::ShiftLeft(size_t bits) const {
  if (IsZero() || bits == 0) {
    BigUint copy = *this;
    return copy;
  }
  const size_t limb_shift = bits / 64;
  const size_t bit_shift = bits % 64;
  BigUint out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= limbs_[i] << bit_shift;
    if (bit_shift != 0) {
      out.limbs_[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
    }
  }
  out.Trim();
  return out;
}

BigUint BigUint::ShiftRight(size_t bits) const {
  const size_t limb_shift = bits / 64;
  if (limb_shift >= limbs_.size()) return BigUint();
  const size_t bit_shift = bits % 64;
  BigUint out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    out.limbs_[i] = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      out.limbs_[i] |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
  }
  out.Trim();
  return out;
}

std::pair<BigUint, BigUint> BigUint::DivMod(const BigUint& divisor) const {
  assert(!divisor.IsZero());
  if (*this < divisor) return {BigUint(), *this};

  // Single-limb fast path.
  if (divisor.limbs_.size() == 1) {
    const uint64_t d = divisor.limbs_[0];
    BigUint q;
    q.limbs_.resize(limbs_.size());
    u128 rem = 0;
    for (size_t i = limbs_.size(); i-- > 0;) {
      u128 cur = (rem << 64) | limbs_[i];
      q.limbs_[i] = static_cast<uint64_t>(cur / d);
      rem = cur % d;
    }
    q.Trim();
    return {q, BigUint(static_cast<uint64_t>(rem))};
  }

  // Knuth Algorithm D (TAOCP Vol.2, 4.3.1).
  const size_t n = divisor.limbs_.size();
  const size_t m = limbs_.size() - n;

  // D1: normalize so the divisor's top limb has its MSB set.
  const int shift = __builtin_clzll(divisor.limbs_.back());
  BigUint u = ShiftLeft(static_cast<size_t>(shift));
  BigUint v = divisor.ShiftLeft(static_cast<size_t>(shift));
  u.limbs_.resize(limbs_.size() + 1, 0);  // extra high limb for D3 overflow
  v.limbs_.resize(n, 0);

  BigUint q;
  q.limbs_.assign(m + 1, 0);

  const uint64_t v1 = v.limbs_[n - 1];
  const uint64_t v2 = v.limbs_[n - 2];

  for (size_t j = m + 1; j-- > 0;) {
    // D3: estimate qhat from the top three dividend limbs.
    u128 numerator = (static_cast<u128>(u.limbs_[j + n]) << 64) | u.limbs_[j + n - 1];
    u128 qhat = numerator / v1;
    u128 rhat = numerator % v1;
    const u128 kBase = static_cast<u128>(1) << 64;
    while (qhat >= kBase ||
           qhat * v2 > ((rhat << 64) | u.limbs_[j + n - 2])) {
      --qhat;
      rhat += v1;
      if (rhat >= kBase) break;
    }

    // D4: multiply and subtract u[j..j+n] -= qhat * v.
    u128 borrow = 0;
    u128 carry = 0;
    for (size_t i = 0; i < n; ++i) {
      u128 p = qhat * v.limbs_[i] + carry;
      carry = p >> 64;
      uint64_t p_lo = static_cast<uint64_t>(p);
      u128 sub = static_cast<u128>(u.limbs_[j + i]) - p_lo - borrow;
      u.limbs_[j + i] = static_cast<uint64_t>(sub);
      borrow = (sub >> 64) ? 1 : 0;  // sub underflowed iff top bits set
    }
    u128 sub = static_cast<u128>(u.limbs_[j + n]) - carry - borrow;
    u.limbs_[j + n] = static_cast<uint64_t>(sub);
    bool negative = (sub >> 64) != 0;

    // D5/D6: if we subtracted too much, add back one divisor.
    if (negative) {
      --qhat;
      u128 carry2 = 0;
      for (size_t i = 0; i < n; ++i) {
        u128 sum = static_cast<u128>(u.limbs_[j + i]) + v.limbs_[i] + carry2;
        u.limbs_[j + i] = static_cast<uint64_t>(sum);
        carry2 = sum >> 64;
      }
      u.limbs_[j + n] += static_cast<uint64_t>(carry2);
    }
    q.limbs_[j] = static_cast<uint64_t>(qhat);
  }

  q.Trim();
  u.Trim();
  BigUint r = u.ShiftRight(static_cast<size_t>(shift));
  return {q, r};
}

BigUint BigUint::MulMod(const BigUint& a, const BigUint& b, const BigUint& m) {
  return a.Mul(b).Mod(m);
}

BigUint BigUint::PowMod(const BigUint& base, const BigUint& exp,
                        const BigUint& m) {
  assert(m > BigUint(1));
  BigUint result(1);
  BigUint b = base.Mod(m);
  const size_t bits = exp.BitLength();
  for (size_t i = 0; i < bits; ++i) {
    if (exp.Bit(i)) result = MulMod(result, b, m);
    b = MulMod(b, b, m);
  }
  return result;
}

BigUint BigUint::Gcd(BigUint a, BigUint b) {
  while (!b.IsZero()) {
    BigUint r = a.Mod(b);
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigUint BigUint::Lcm(const BigUint& a, const BigUint& b) {
  if (a.IsZero() || b.IsZero()) return BigUint();
  BigUint g = Gcd(a, b);
  return a.DivMod(g).first.Mul(b);
}

Result<BigUint> BigUint::InvMod(const BigUint& a, const BigUint& m) {
  // Extended Euclid on non-negative values, tracking coefficients with an
  // explicit sign to stay within unsigned arithmetic.
  BigUint r0 = m;
  BigUint r1 = a.Mod(m);
  BigUint t0;      // coefficient of m
  BigUint t1(1);   // coefficient of a
  bool t0_neg = false, t1_neg = false;

  while (!r1.IsZero()) {
    auto [q, r2] = r0.DivMod(r1);
    // t2 = t0 - q * t1 (signed).
    BigUint qt = q.Mul(t1);
    BigUint t2;
    bool t2_neg;
    if (t0_neg == t1_neg) {
      // Same sign: t0 - q*t1 may flip sign.
      if (t0 >= qt) {
        t2 = t0.Sub(qt);
        t2_neg = t0_neg;
      } else {
        t2 = qt.Sub(t0);
        t2_neg = !t0_neg;
      }
    } else {
      // Opposite signs: magnitudes add, sign follows t0.
      t2 = t0.Add(qt);
      t2_neg = t0_neg;
    }
    r0 = std::move(r1);
    r1 = std::move(r2);
    t0 = std::move(t1);
    t0_neg = t1_neg;
    t1 = std::move(t2);
    t1_neg = t2_neg;
  }

  if (!r0.IsOne()) {
    return Status::InvalidArgument("value not invertible modulo m");
  }
  BigUint inv = t0.Mod(m);
  if (t0_neg && !inv.IsZero()) inv = m.Sub(inv);
  return inv;
}

bool BigUint::IsProbablePrime(const BigUint& n, common::Rng& rng, int rounds) {
  if (n < BigUint(2)) return false;
  for (uint64_t p : kSmallPrimes) {
    const BigUint bp(p);
    if (n == bp) return true;
    if (n.Mod(bp).IsZero()) return false;
  }

  // Write n-1 = d * 2^s with d odd.
  const BigUint one(1);
  const BigUint n_minus_1 = n.Sub(one);
  BigUint d = n_minus_1;
  size_t s = 0;
  while (!d.IsOdd()) {
    d = d.ShiftRight(1);
    ++s;
  }

  const BigUint two(2);
  const BigUint n_minus_3 = n.Sub(BigUint(3));
  for (int round = 0; round < rounds; ++round) {
    const BigUint a = RandomBelow(n_minus_3, rng).Add(two);  // in [2, n-2]
    BigUint x = PowMod(a, d, n);
    if (x.IsOne() || x == n_minus_1) continue;
    bool composite = true;
    for (size_t i = 1; i < s; ++i) {
      x = MulMod(x, x, n);
      if (x == n_minus_1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

}  // namespace pds2::crypto
