#ifndef PDS2_CRYPTO_CIPHER_H_
#define PDS2_CRYPTO_CIPHER_H_

#include "common/bytes.h"
#include "common/result.h"

namespace pds2::crypto {

/// Authenticated symmetric encryption in encrypt-then-MAC composition:
/// keystream = SHA-256 in counter mode keyed via HKDF("enc"), integrity by
/// HMAC-SHA256 keyed via HKDF("mac") over nonce || ciphertext. This is the
/// sealing primitive of the TEE simulator and the transport protection for
/// provider data in flight to executors.
///
/// Wire format: nonce(16) || ciphertext || tag(32).
class AuthCipher {
 public:
  /// `key` may be any length; sub-keys are derived from it.
  explicit AuthCipher(const common::Bytes& key);

  /// Encrypts and authenticates. `nonce_seed` lets callers pass a unique
  /// per-message value (e.g. a counter or random bytes); it is hashed into
  /// the 16-byte nonce.
  common::Bytes Seal(const common::Bytes& plaintext,
                     const common::Bytes& nonce_seed) const;

  /// Verifies the tag (constant time) and decrypts. Fails with
  /// Unauthenticated on any tampering and Corruption on malformed framing.
  common::Result<common::Bytes> Open(const common::Bytes& sealed) const;

 private:
  common::Bytes Keystream(const common::Bytes& nonce, size_t len) const;

  common::Bytes enc_key_;
  common::Bytes mac_key_;
};

}  // namespace pds2::crypto

#endif  // PDS2_CRYPTO_CIPHER_H_
