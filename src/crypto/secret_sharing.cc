#include "crypto/secret_sharing.h"

#include <unordered_set>

namespace pds2::crypto {

using common::Result;
using common::Status;

namespace {

using u128 = unsigned __int128;

// Arithmetic mod p = 2^61 - 1.
uint64_t FieldReduce(u128 v) {
  // Fold the high bits twice: x = hi*2^61 + lo = hi + lo (mod p).
  uint64_t lo = static_cast<uint64_t>(v & kShamirPrime);
  uint64_t hi = static_cast<uint64_t>(v >> 61);
  uint64_t r = lo + hi;
  // r can be up to ~2^64; fold once more.
  r = (r & kShamirPrime) + (r >> 61);
  if (r >= kShamirPrime) r -= kShamirPrime;
  return r;
}

uint64_t FieldAdd(uint64_t a, uint64_t b) {
  uint64_t r = a + b;
  if (r >= kShamirPrime) r -= kShamirPrime;
  return r;
}

uint64_t FieldSub(uint64_t a, uint64_t b) {
  return a >= b ? a - b : a + kShamirPrime - b;
}

uint64_t FieldMul(uint64_t a, uint64_t b) {
  return FieldReduce(static_cast<u128>(a) * b);
}

uint64_t FieldPow(uint64_t base, uint64_t exp) {
  uint64_t result = 1;
  while (exp) {
    if (exp & 1) result = FieldMul(result, base);
    base = FieldMul(base, base);
    exp >>= 1;
  }
  return result;
}

uint64_t FieldInv(uint64_t a) { return FieldPow(a, kShamirPrime - 2); }

uint64_t RandomField(common::Rng& rng) { return rng.NextU64(kShamirPrime); }

}  // namespace

std::vector<uint64_t> AdditiveShare(uint64_t secret, size_t n,
                                    common::Rng& rng) {
  std::vector<uint64_t> shares(n);
  uint64_t sum = 0;
  for (size_t i = 0; i + 1 < n; ++i) {
    shares[i] = rng.NextU64();
    sum += shares[i];
  }
  if (n > 0) shares[n - 1] = secret - sum;  // wraps mod 2^64 by design
  return shares;
}

uint64_t AdditiveReconstruct(const std::vector<uint64_t>& shares) {
  uint64_t sum = 0;
  for (uint64_t s : shares) sum += s;
  return sum;
}

BeaverTriple MakeBeaverTriple(common::Rng& rng) {
  BeaverTriple t;
  const uint64_t a = rng.NextU64();
  const uint64_t b = rng.NextU64();
  const uint64_t c = a * b;  // mod 2^64
  auto split = [&rng](uint64_t v, uint64_t out[2]) {
    out[0] = rng.NextU64();
    out[1] = v - out[0];
  };
  split(a, t.a_share);
  split(b, t.b_share);
  split(c, t.c_share);
  return t;
}

Result<std::vector<ShamirShare>> ShamirSplit(uint64_t secret, size_t t,
                                             size_t n, common::Rng& rng) {
  if (t == 0 || t > n) {
    return Status::InvalidArgument("threshold must satisfy 1 <= t <= n");
  }
  if (secret >= kShamirPrime) {
    return Status::InvalidArgument("secret not below field modulus");
  }
  if (n >= kShamirPrime) {
    return Status::InvalidArgument("too many shares for field size");
  }

  // Random polynomial of degree t-1 with f(0) = secret.
  std::vector<uint64_t> coeffs(t);
  coeffs[0] = secret;
  for (size_t i = 1; i < t; ++i) coeffs[i] = RandomField(rng);

  std::vector<ShamirShare> shares(n);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t x = static_cast<uint64_t>(i + 1);
    // Horner evaluation.
    uint64_t y = 0;
    for (size_t j = t; j-- > 0;) y = FieldAdd(FieldMul(y, x), coeffs[j]);
    shares[i] = {x, y};
  }
  return shares;
}

Result<uint64_t> ShamirReconstruct(const std::vector<ShamirShare>& shares) {
  if (shares.empty()) return Status::InvalidArgument("no shares given");
  std::unordered_set<uint64_t> seen;
  for (const ShamirShare& s : shares) {
    if (!seen.insert(s.x).second) {
      return Status::InvalidArgument("duplicate share x-coordinate");
    }
    if (s.x == 0 || s.x >= kShamirPrime || s.y >= kShamirPrime) {
      return Status::InvalidArgument("share out of field range");
    }
  }

  // Lagrange interpolation at x = 0.
  uint64_t secret = 0;
  for (size_t i = 0; i < shares.size(); ++i) {
    // basis_i(0) = prod_j (0 - x_j) / (x_i - x_j). Using (x_j - x_i) in the
    // denominator flips its sign (k-1) times, exactly cancelling the
    // (-1)^(k-1) from the numerator's (0 - x_j) factors, so plain products
    // of x_j and (x_j - x_i) are already correct.
    uint64_t num = 1, den = 1;
    for (size_t j = 0; j < shares.size(); ++j) {
      if (i == j) continue;
      num = FieldMul(num, shares[j].x);
      den = FieldMul(den, FieldSub(shares[j].x, shares[i].x));
    }
    const uint64_t basis = FieldMul(num, FieldInv(den));
    secret = FieldAdd(secret, FieldMul(shares[i].y, basis));
  }
  return secret;
}

}  // namespace pds2::crypto
