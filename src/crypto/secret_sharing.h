#ifndef PDS2_CRYPTO_SECRET_SHARING_H_
#define PDS2_CRYPTO_SECRET_SHARING_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace pds2::crypto {

// ---------------------------------------------------------------------------
// Additive secret sharing over Z_{2^64}.
//
// The SMC backend of experiment E1: values are split into n shares that sum
// (mod 2^64) to the secret; linear operations run share-wise, and
// multiplications use Beaver triples from a trusted dealer (the "untrusted
// third party" of Falcon-style protocols).

/// Splits `secret` into `n` additive shares.
std::vector<uint64_t> AdditiveShare(uint64_t secret, size_t n,
                                    common::Rng& rng);

/// Recombines additive shares.
uint64_t AdditiveReconstruct(const std::vector<uint64_t>& shares);

/// A multiplication triple a*b = c, secret-shared between two parties.
struct BeaverTriple {
  uint64_t a_share[2];
  uint64_t b_share[2];
  uint64_t c_share[2];
};

/// Dealer-generated Beaver triple for a 2-party multiplication.
BeaverTriple MakeBeaverTriple(common::Rng& rng);

// ---------------------------------------------------------------------------
// Shamir secret sharing over GF(p), p = 2^61 - 1 (Mersenne prime).
//
// Used by the storage subsystem for key escrow (the paper's related work
// stores split decryption keys at "Key Keepers"); any t of n shares
// reconstruct, fewer reveal nothing.

/// The Shamir field modulus.
constexpr uint64_t kShamirPrime = (uint64_t{1} << 61) - 1;

/// One Shamir share: (x, f(x)).
struct ShamirShare {
  uint64_t x = 0;
  uint64_t y = 0;
};

/// Splits `secret` (< kShamirPrime) into `n` shares with threshold `t`
/// (any t reconstruct). Fails if t == 0, t > n or secret out of range.
common::Result<std::vector<ShamirShare>> ShamirSplit(uint64_t secret,
                                                     size_t t, size_t n,
                                                     common::Rng& rng);

/// Reconstructs the secret from >= t distinct shares (Lagrange at x = 0).
/// Fails on duplicates or empty input. With fewer than t genuine shares the
/// result is (by design) unrelated to the secret.
common::Result<uint64_t> ShamirReconstruct(
    const std::vector<ShamirShare>& shares);

}  // namespace pds2::crypto

#endif  // PDS2_CRYPTO_SECRET_SHARING_H_
