#include "crypto/paillier.h"

#include <cassert>

namespace pds2::crypto {

using common::Result;
using common::Status;

Result<BigUint> PaillierPublicKey::Encrypt(const BigUint& m,
                                           common::Rng& rng) const {
  if (m >= n_) return Status::InvalidArgument("plaintext not below n");
  // With g = n+1: g^m = 1 + m*n (mod n^2).
  const BigUint g_to_m = BigUint(1).Add(m.Mul(n_)).Mod(n_squared_);
  // Random r in [1, n) coprime with n (overwhelmingly likely; retry if not).
  for (;;) {
    BigUint r = BigUint::RandomBelow(n_, rng);
    if (r.IsZero()) continue;
    if (!BigUint::Gcd(r, n_).IsOne()) continue;
    const BigUint r_to_n = BigUint::PowMod(r, n_, n_squared_);
    return BigUint::MulMod(g_to_m, r_to_n, n_squared_);
  }
}

BigUint PaillierPublicKey::AddCiphertexts(const BigUint& c1,
                                          const BigUint& c2) const {
  return BigUint::MulMod(c1, c2, n_squared_);
}

BigUint PaillierPublicKey::ScalarMul(const BigUint& c, const BigUint& k) const {
  return BigUint::PowMod(c, k, n_squared_);
}

BigUint PaillierPublicKey::EncodeSigned(int64_t v) const {
  if (v >= 0) return BigUint(static_cast<uint64_t>(v));
  return n_.Sub(BigUint(static_cast<uint64_t>(-v)));
}

Result<int64_t> PaillierPublicKey::DecodeSigned(const BigUint& m) const {
  const BigUint half = n_.ShiftRight(1);
  if (m <= half) {
    if (m.BitLength() > 63) return Status::OutOfRange("decoded value too large");
    return static_cast<int64_t>(m.Low64());
  }
  const BigUint neg = n_.Sub(m);
  if (neg.BitLength() > 63) return Status::OutOfRange("decoded value too large");
  return -static_cast<int64_t>(neg.Low64());
}

PaillierKeyPair PaillierKeyPair::Generate(size_t modulus_bits,
                                          common::Rng& rng) {
  assert(modulus_bits >= 64);
  const size_t prime_bits = modulus_bits / 2;
  BigUint p, q, n;
  do {
    p = BigUint::RandomPrime(prime_bits, rng);
    q = BigUint::RandomPrime(prime_bits, rng);
    n = p.Mul(q);
  } while (p == q);

  const BigUint n_squared = n.Mul(n);
  const BigUint one(1);
  const BigUint lambda = BigUint::Lcm(p.Sub(one), q.Sub(one));

  // mu = (L(g^lambda mod n^2))^-1 mod n, with g = n+1 so
  // g^lambda mod n^2 = 1 + lambda*n mod n^2, hence L(...) = lambda mod n.
  const BigUint l_value = lambda.Mod(n);
  auto mu = BigUint::InvMod(l_value, n);
  // lambda is coprime with n for distinct primes p, q.
  assert(mu.ok());

  return PaillierKeyPair(PaillierPublicKey(n, n_squared), lambda,
                         std::move(mu).value());
}

Result<BigUint> PaillierKeyPair::Decrypt(const BigUint& c) const {
  const BigUint& n = public_key_.n();
  const BigUint& n2 = public_key_.n_squared();
  if (c >= n2) return Status::InvalidArgument("ciphertext not below n^2");
  const BigUint u = BigUint::PowMod(c, lambda_, n2);
  if (u.IsZero()) return Status::InvalidArgument("invalid ciphertext");
  // L(u) = (u - 1) / n; u = 1 (mod n) for valid ciphertexts.
  const BigUint l = u.Sub(BigUint(1)).DivMod(n).first;
  return BigUint::MulMod(l, mu_, n);
}

}  // namespace pds2::crypto
