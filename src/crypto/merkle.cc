#include "crypto/merkle.h"

#include "common/thread_pool.h"
#include "crypto/sha256.h"

namespace pds2::crypto {

using common::Bytes;
using common::Result;
using common::Status;

namespace {

// Below this many nodes a level is hashed inline; pool dispatch overhead
// would swamp the SHA-256 work.
constexpr size_t kParallelLevelThreshold = 32;

Bytes HashNode(const Bytes& left, const Bytes& right) {
  Sha256 h;
  const uint8_t prefix = 0x01;
  h.Update(&prefix, 1);
  h.Update(left);
  h.Update(right);
  return h.Finish();
}

// Fills out[i] = fn(i) for i in [0, count), on the pool when it pays off.
void FillLevel(std::vector<Bytes>& out, size_t count,
               common::ThreadPool* pool,
               const std::function<Bytes(size_t)>& fn) {
  if (pool != nullptr && pool->NumThreads() > 1 &&
      count >= kParallelLevelThreshold) {
    pool->ParallelFor(0, count, [&](size_t i) { out[i] = fn(i); });
  } else {
    for (size_t i = 0; i < count; ++i) out[i] = fn(i);
  }
}

}  // namespace

Bytes MerkleTree::HashLeaf(const Bytes& data) {
  Sha256 h;
  const uint8_t prefix = 0x00;
  h.Update(&prefix, 1);
  h.Update(data);
  return h.Finish();
}

MerkleTree::MerkleTree(const std::vector<Bytes>& leaves,
                       common::ThreadPool* pool)
    : leaf_count_(leaves.size()) {
  if (leaves.empty()) {
    root_ = Sha256::Hash(Bytes{});
    return;
  }
  std::vector<Bytes> level(leaves.size());
  FillLevel(level, leaves.size(), pool,
            [&](size_t i) { return HashLeaf(leaves[i]); });
  levels_.push_back(std::move(level));

  while (levels_.back().size() > 1) {
    const std::vector<Bytes>& prev = levels_.back();
    const size_t pairs = prev.size() / 2;
    std::vector<Bytes> next(pairs);
    FillLevel(next, pairs, pool, [&](size_t i) {
      return HashNode(prev[2 * i], prev[2 * i + 1]);
    });
    if (prev.size() % 2 == 1) next.push_back(prev.back());  // promote odd node
    levels_.push_back(std::move(next));
  }
  root_ = levels_.back()[0];
}

Result<MerkleProof> MerkleTree::Prove(size_t index) const {
  if (index >= leaf_count_) {
    return Status::OutOfRange("leaf index beyond tree size");
  }
  MerkleProof proof;
  size_t pos = index;
  for (size_t lvl = 0; lvl + 1 < levels_.size(); ++lvl) {
    const std::vector<Bytes>& level = levels_[lvl];
    const size_t sibling = (pos % 2 == 0) ? pos + 1 : pos - 1;
    if (sibling < level.size()) {
      proof.push_back({level[sibling], /*sibling_is_left=*/pos % 2 == 1});
    }
    pos /= 2;
  }
  return proof;
}

bool MerkleTree::Verify(const Bytes& root, const Bytes& leaf_data,
                        const MerkleProof& proof) {
  Bytes node = HashLeaf(leaf_data);
  for (const MerkleStep& step : proof) {
    node = step.sibling_is_left ? HashNode(step.sibling, node)
                                : HashNode(node, step.sibling);
  }
  return node == root;
}

}  // namespace pds2::crypto
