#ifndef PDS2_AUTH_DEVICE_H_
#define PDS2_AUTH_DEVICE_H_

#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/sim_clock.h"
#include "crypto/schnorr.h"

namespace pds2::auth {

/// One sensor reading, signed at the device before it ever leaves it
/// (paper §IV-B: "data should be signed directly by the device to minimize
/// the risk of forgery, and include timestamps to prevent the user from
/// creating multiple copies and reselling them").
struct SignedReading {
  std::string device_id;
  uint64_t sequence = 0;            // strictly increasing per device
  common::SimTime timestamp = 0;
  std::vector<double> values;       // sensor channels
  common::Bytes signature;

  common::Bytes SigningBytes() const;
  common::Bytes Serialize() const;
  static common::Result<SignedReading> Deserialize(const common::Bytes& data);

  static const char* Domain() { return "pds2.reading"; }
};

/// A manufacturer: the root that endorses device keys. The endorsement is
/// the paper's "seal of quality" — verifiers decide which manufacturers
/// they trust.
class Manufacturer {
 public:
  explicit Manufacturer(const std::string& name);

  const std::string& name() const { return name_; }
  const common::Bytes& PublicKey() const { return public_key_; }

  /// Issues a device certificate over (device_id, device public key).
  common::Bytes CertifyDevice(const std::string& device_id,
                              const common::Bytes& device_public_key) const;

  static common::Bytes CertifiedBytes(const std::string& device_id,
                                      const common::Bytes& device_public_key);
  static const char* Domain() { return "pds2.device.cert"; }

 private:
  std::string name_;
  crypto::SigningKey key_;
  common::Bytes public_key_;
};

/// A simulated IoT device with a burned-in key, a manufacturer certificate
/// and a monotonic sequence counter. Emits signed, timestamped readings.
class Device {
 public:
  Device(std::string device_id, const Manufacturer& manufacturer);

  const std::string& id() const { return id_; }
  const common::Bytes& PublicKey() const { return public_key_; }
  const common::Bytes& Certificate() const { return certificate_; }
  const std::string& manufacturer_name() const { return manufacturer_name_; }

  /// Produces the next signed reading.
  SignedReading Emit(common::SimTime timestamp, std::vector<double> values);

 private:
  std::string id_;
  crypto::SigningKey key_;
  common::Bytes public_key_;
  common::Bytes certificate_;
  std::string manufacturer_name_;
  uint64_t next_sequence_ = 0;
};

/// Why a reading was rejected (counted separately by experiment E7).
enum class RejectReason {
  kAccepted = 0,
  kUnknownDevice,
  kUntrustedManufacturer,
  kBadDeviceCertificate,
  kBadSignature,
  kReplayedSequence,
  kStaleTimestamp,
};

const char* RejectReasonName(RejectReason reason);

/// Executor-side verification pipeline: checks manufacturer trust, the
/// device certificate chain, the reading signature, replay (per-device
/// sequence numbers) and staleness (timestamp window). Stateful: remembers
/// the highest sequence seen per device.
class ReadingVerifier {
 public:
  /// `max_age` bounds how old a reading's timestamp may be relative to the
  /// verification time.
  explicit ReadingVerifier(common::SimTime max_age);

  /// Declares a manufacturer's key trusted.
  void TrustManufacturer(const std::string& name,
                         const common::Bytes& public_key);

  /// Registers a device (id, public key, certificate, manufacturer).
  common::Status RegisterDevice(const std::string& device_id,
                                const common::Bytes& public_key,
                                const common::Bytes& certificate,
                                const std::string& manufacturer);

  /// Verifies one reading at `now`. kAccepted advances the replay window.
  RejectReason Verify(const SignedReading& reading, common::SimTime now);

  /// Convenience batch verification; returns per-reason counts.
  std::map<RejectReason, size_t> VerifyBatch(
      const std::vector<SignedReading>& readings, common::SimTime now);

 private:
  struct DeviceRecord {
    common::Bytes public_key;
    uint64_t highest_sequence_seen = 0;
    bool any_seen = false;
  };

  common::SimTime max_age_;
  std::map<std::string, common::Bytes> trusted_manufacturers_;
  std::map<std::string, DeviceRecord> devices_;
};

}  // namespace pds2::auth

#endif  // PDS2_AUTH_DEVICE_H_
