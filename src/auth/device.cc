#include "auth/device.h"

#include "common/serial.h"

namespace pds2::auth {

using common::Bytes;
using common::Reader;
using common::Result;
using common::Status;
using common::ToBytes;
using common::Writer;

Bytes SignedReading::SigningBytes() const {
  Writer w;
  w.PutString(device_id);
  w.PutU64(sequence);
  w.PutU64(timestamp);
  w.PutDoubleVector(values);
  return w.Take();
}

Bytes SignedReading::Serialize() const {
  Writer w;
  w.PutRaw(SigningBytes());
  w.PutBytes(signature);
  return w.Take();
}

Result<SignedReading> SignedReading::Deserialize(const Bytes& data) {
  Reader r(data);
  SignedReading reading;
  PDS2_ASSIGN_OR_RETURN(reading.device_id, r.GetString());
  PDS2_ASSIGN_OR_RETURN(reading.sequence, r.GetU64());
  PDS2_ASSIGN_OR_RETURN(reading.timestamp, r.GetU64());
  PDS2_ASSIGN_OR_RETURN(reading.values, r.GetDoubleVector());
  PDS2_ASSIGN_OR_RETURN(reading.signature, r.GetBytes());
  if (!r.AtEnd()) return Status::Corruption("trailing bytes in reading");
  return reading;
}

Manufacturer::Manufacturer(const std::string& name)
    : name_(name),
      key_(crypto::SigningKey::FromSeed(ToBytes("pds2.manufacturer." + name))),
      public_key_(key_.PublicKey()) {}

Bytes Manufacturer::CertifiedBytes(const std::string& device_id,
                                   const Bytes& device_public_key) {
  Writer w;
  w.PutString(device_id);
  w.PutBytes(device_public_key);
  return w.Take();
}

Bytes Manufacturer::CertifyDevice(const std::string& device_id,
                                  const Bytes& device_public_key) const {
  return key_.SignWithDomain(Domain(),
                             CertifiedBytes(device_id, device_public_key));
}

Device::Device(std::string device_id, const Manufacturer& manufacturer)
    : id_(std::move(device_id)),
      key_(crypto::SigningKey::FromSeed(ToBytes("pds2.devkey." + id_))),
      public_key_(key_.PublicKey()),
      certificate_(manufacturer.CertifyDevice(id_, public_key_)),
      manufacturer_name_(manufacturer.name()) {}

SignedReading Device::Emit(common::SimTime timestamp,
                           std::vector<double> values) {
  SignedReading reading;
  reading.device_id = id_;
  reading.sequence = next_sequence_++;
  reading.timestamp = timestamp;
  reading.values = std::move(values);
  reading.signature =
      key_.SignWithDomain(SignedReading::Domain(), reading.SigningBytes());
  return reading;
}

const char* RejectReasonName(RejectReason reason) {
  switch (reason) {
    case RejectReason::kAccepted:
      return "accepted";
    case RejectReason::kUnknownDevice:
      return "unknown_device";
    case RejectReason::kUntrustedManufacturer:
      return "untrusted_manufacturer";
    case RejectReason::kBadDeviceCertificate:
      return "bad_device_certificate";
    case RejectReason::kBadSignature:
      return "bad_signature";
    case RejectReason::kReplayedSequence:
      return "replayed_sequence";
    case RejectReason::kStaleTimestamp:
      return "stale_timestamp";
  }
  return "?";
}

ReadingVerifier::ReadingVerifier(common::SimTime max_age)
    : max_age_(max_age) {}

void ReadingVerifier::TrustManufacturer(const std::string& name,
                                        const Bytes& public_key) {
  trusted_manufacturers_[name] = public_key;
}

Status ReadingVerifier::RegisterDevice(const std::string& device_id,
                                       const Bytes& public_key,
                                       const Bytes& certificate,
                                       const std::string& manufacturer) {
  auto it = trusted_manufacturers_.find(manufacturer);
  if (it == trusted_manufacturers_.end()) {
    return Status::PermissionDenied("manufacturer not trusted: " +
                                    manufacturer);
  }
  PDS2_RETURN_IF_ERROR(crypto::VerifySignatureWithDomain(
      it->second, Manufacturer::Domain(),
      Manufacturer::CertifiedBytes(device_id, public_key), certificate));
  devices_[device_id] = DeviceRecord{public_key, 0, false};
  return Status::Ok();
}

RejectReason ReadingVerifier::Verify(const SignedReading& reading,
                                     common::SimTime now) {
  auto it = devices_.find(reading.device_id);
  if (it == devices_.end()) return RejectReason::kUnknownDevice;
  DeviceRecord& record = it->second;

  if (!crypto::VerifySignatureWithDomain(record.public_key,
                                         SignedReading::Domain(),
                                         reading.SigningBytes(),
                                         reading.signature)
           .ok()) {
    return RejectReason::kBadSignature;
  }
  if (record.any_seen && reading.sequence <= record.highest_sequence_seen) {
    return RejectReason::kReplayedSequence;
  }
  if (reading.timestamp + max_age_ < now) {
    return RejectReason::kStaleTimestamp;
  }
  record.highest_sequence_seen = reading.sequence;
  record.any_seen = true;
  return RejectReason::kAccepted;
}

std::map<RejectReason, size_t> ReadingVerifier::VerifyBatch(
    const std::vector<SignedReading>& readings, common::SimTime now) {
  std::map<RejectReason, size_t> counts;
  for (const SignedReading& reading : readings) {
    ++counts[Verify(reading, now)];
  }
  return counts;
}

}  // namespace pds2::auth
