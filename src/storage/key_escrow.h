#ifndef PDS2_STORAGE_KEY_ESCROW_H_
#define PDS2_STORAGE_KEY_ESCROW_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/rng.h"
#include "crypto/secret_sharing.h"

namespace pds2::storage {

/// Threshold key escrow in the style of the "Key Keeper" design from the
/// paper's related work (Zheng et al.): a provider splits a storage key
/// into Shamir shares held by independent keepers; any `threshold` of them
/// can reconstruct it, fewer learn nothing. Guards against losing access to
/// one's own encrypted data without trusting any single third party.
class KeyEscrow {
 public:
  /// `keepers` identifies the escrow nodes (indices 1..n internally).
  KeyEscrow(size_t num_keepers, size_t threshold);

  /// Splits a 32-byte key into per-keeper shares (4 field elements per
  /// keeper, one per 8-byte key segment). Fails on bad parameters.
  common::Status Deposit(const common::Bytes& key32, common::Rng& rng);

  /// Reconstructs the key from the shares of `keeper_indices` (0-based).
  /// Fails unless at least `threshold` distinct keepers are given.
  common::Result<common::Bytes> Recover(
      const std::vector<size_t>& keeper_indices) const;

  size_t num_keepers() const { return num_keepers_; }
  size_t threshold() const { return threshold_; }

 private:
  size_t num_keepers_;
  size_t threshold_;
  // keeper index -> 8 shares (two field elements per 8-byte segment: the
  // key segment is split into two 30-bit halves to fit below the prime).
  std::map<size_t, std::vector<crypto::ShamirShare>> shares_;
};

}  // namespace pds2::storage

#endif  // PDS2_STORAGE_KEY_ESCROW_H_
