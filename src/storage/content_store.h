#ifndef PDS2_STORAGE_CONTENT_STORE_H_
#define PDS2_STORAGE_CONTENT_STORE_H_

#include <map>

#include "common/bytes.h"
#include "common/result.h"

namespace pds2::storage {

/// Content-addressed blob store in the spirit of Swarm/IPFS (the storage
/// backends the paper's related work uses). Blobs are split into fixed-size
/// chunks; a manifest lists the chunk addresses; the blob's address is the
/// manifest's hash. Identical chunks are stored once (deduplication).
class ContentStore {
 public:
  static constexpr size_t kChunkSize = 4096;

  /// Stores a blob, returns its content address.
  common::Bytes Put(const common::Bytes& blob);

  /// Retrieves a blob by address; NotFound for unknown addresses,
  /// Corruption if a referenced chunk is missing or mismatched.
  common::Result<common::Bytes> Get(const common::Bytes& address) const;

  bool Has(const common::Bytes& address) const;

  /// Number of distinct chunks held.
  size_t ChunkCount() const { return chunks_.size(); }
  /// Total bytes across distinct chunks (deduplicated footprint).
  size_t StoredBytes() const { return stored_bytes_; }

 private:
  std::map<common::Bytes, common::Bytes> chunks_;     // hash -> chunk
  std::map<common::Bytes, common::Bytes> manifests_;  // address -> manifest
  size_t stored_bytes_ = 0;
};

}  // namespace pds2::storage

#endif  // PDS2_STORAGE_CONTENT_STORE_H_
