#ifndef PDS2_STORAGE_SEMANTIC_H_
#define PDS2_STORAGE_SEMANTIC_H_

#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace pds2::storage {

/// A small ontology: a forest of class names with single inheritance
/// ("iot/temperature" is-a "iot/sensor"). The data-discovery layer (paper
/// §IV-C) reasons over it to decide whether a provider's metadata satisfies
/// a workload's requirements without ever reading the data.
class Ontology {
 public:
  /// Adds a class, optionally under a parent. Fails if the class exists or
  /// the parent does not.
  common::Status AddClass(const std::string& name,
                          const std::string& parent = "");

  bool HasClass(const std::string& name) const;

  /// True if `cls` equals `ancestor` or transitively derives from it.
  bool IsSubclassOf(const std::string& cls, const std::string& ancestor) const;

  /// The standard PDS2 IoT ontology used by the examples and benchmarks:
  /// iot -> {sensor -> {temperature, humidity, heart_rate, location},
  ///         wearable -> {smartwatch, fitness_band}}.
  static Ontology StandardIot();

  /// Wire encoding, so consumers can ship custom ontologies inside
  /// workload specs and storage subsystems reason over the same taxonomy.
  common::Bytes Serialize() const;
  static common::Result<Ontology> Deserialize(const common::Bytes& data);

  size_t NumClasses() const { return parents_.size(); }

 private:
  std::map<std::string, std::string> parents_;  // class -> parent ("" = root)
};

/// Machine-readable description a provider attaches to a dataset. Only
/// metadata — never the data — is visible to the storage subsystem and the
/// marketplace, which is exactly the §IV-C trade-off: richer metadata means
/// better matching but more leakage.
struct SemanticMetadata {
  std::vector<std::string> types;             // ontology classes
  std::map<std::string, double> numeric;      // e.g. {"sampling_hz", 10}
  std::map<std::string, std::string> text;    // e.g. {"region", "EU"}

  common::Bytes Serialize() const;
  static common::Result<SemanticMetadata> Deserialize(
      const common::Bytes& data);
};

/// One property constraint inside a data requirement.
struct PropertyConstraint {
  enum class Kind : uint8_t { kNumericRange = 0, kTextEquals = 1 };
  Kind kind = Kind::kNumericRange;
  std::string key;
  double min = 0.0;   // numeric range (inclusive)
  double max = 0.0;
  std::string value;  // text equality
};

/// A workload's declarative input-data requirements. A dataset is eligible
/// when it carries (a subclass of) every required type, satisfies every
/// property constraint, and has at least `min_records` records.
struct DataRequirement {
  std::vector<std::string> required_types;
  std::vector<PropertyConstraint> constraints;
  uint64_t min_records = 0;

  bool Matches(const Ontology& ontology, const SemanticMetadata& metadata,
               uint64_t num_records) const;

  common::Bytes Serialize() const;
  static common::Result<DataRequirement> Deserialize(const common::Bytes& data);
};

}  // namespace pds2::storage

#endif  // PDS2_STORAGE_SEMANTIC_H_
