#ifndef PDS2_STORAGE_CHAIN_STORE_H_
#define PDS2_STORAGE_CHAIN_STORE_H_

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "chain/chain.h"
#include "common/result.h"

namespace pds2::storage {

/// Durability knobs for a ChainStore.
struct ChainStoreOptions {
  /// A WorldState snapshot is cut every `snapshot_interval` committed
  /// blocks (0 = never). Snapshots bound recovery replay: reopening loads
  /// the newest valid snapshot and re-executes only the log tail behind it.
  uint64_t snapshot_interval = 64;
  /// fsync every log record and snapshot before reporting it durable.
  /// Turning this off trades the post-OS-crash guarantee for throughput;
  /// process-crash tolerance (torn-tail truncation) is unaffected.
  bool fsync = true;
  /// Newest snapshot files retained after a successful snapshot write; the
  /// bounded on-disk footprint of the snapshot side.
  size_t keep_snapshots = 2;
  /// During recovery, additionally replay the whole chain from genesis on a
  /// scratch replica forced onto a single-thread pool and require the
  /// recovered state digest to bit-match it. Catches both a snapshot that
  /// is internally consistent but belongs to a different genesis AND any
  /// divergence introduced by the optimistic parallel block executor (the
  /// reference replay cannot take the lane path). Costs O(chain) —
  /// benchmarks turn it off to measure the snapshot speedup
  /// (EXPERIMENTS.md E13).
  bool paranoid_recovery = true;
};

/// What recovery found and did when a durable chain was reopened.
struct RecoveryInfo {
  uint64_t log_blocks = 0;       // CRC-valid blocks decoded from the log
  uint64_t truncated_bytes = 0;  // torn/corrupt log tail dropped on open
  bool used_snapshot = false;
  uint64_t snapshot_height = 0;  // height of the snapshot restored (if any)
  uint64_t replayed_blocks = 0;  // blocks re-executed through validation
};

/// The chain durability layer: an append-only, length-prefixed,
/// CRC-32C-checksummed block log plus periodic whole-state snapshots
/// written with a write-to-temp-then-rename protocol. Attached to a
/// Blockchain as its CommitListener, it persists every committed block
/// (ProduceBlock and ApplyExternalBlock) so a restarted process resumes
/// from disk instead of a genesis full-sync.
///
/// Crash model: a scripted common::CrashPoint (armed by chaos tests) stops
/// a write exactly where a SIGKILL would — possibly mid-record — and marks
/// the store dead; every later operation fails with Unavailable until the
/// directory is reopened. Recovery (OpenBlockchain) truncates a torn final
/// record, ignores unrenamed snapshot temp files, falls back across corrupt
/// snapshots, and verifies the recovered head state root before handing the
/// chain back.
///
/// On-disk layout under `dir`:
///   blocks.log          8-byte magic, then records [u32 len][u32 crc][block]
///   snapshot-<height>   8-byte magic, [u32 len][u32 crc][chain snapshot]
///   *.tmp               in-flight snapshot/log writes; garbage on reopen
class ChainStore : public chain::CommitListener {
 public:
  /// Opens (creating if needed) the store directory, scans the block log —
  /// validating record CRCs and truncating a torn tail in place — and
  /// removes leftover temp files. The decoded blocks are exposed via
  /// recovered_blocks() for OpenBlockchain to replay.
  static common::Result<std::unique_ptr<ChainStore>> Open(
      const std::string& dir, ChainStoreOptions options = {});

  ~ChainStore() override;
  ChainStore(const ChainStore&) = delete;
  ChainStore& operator=(const ChainStore&) = delete;

  /// CommitListener: appends the block; cuts a snapshot every
  /// snapshot_interval blocks. Failures (including scripted crashes) are
  /// recorded in last_error() — the in-memory chain is not rolled back.
  void OnBlockCommitted(const chain::Blockchain& chain,
                        const chain::Block& block) override;

  /// Appends one block record (length + CRC + payload) and fsyncs it.
  common::Status AppendBlock(const chain::Block& block);

  /// Writes a snapshot of the chain's current state atomically
  /// (temp + fsync + rename) and garbage-collects old snapshots.
  common::Status WriteSnapshot(const chain::Blockchain& chain);

  /// Replaces the entire log (and all snapshots) with the given chain's
  /// history — the fork-adoption path: the old log described an orphaned
  /// branch, so it is atomically rewritten, not appended to.
  common::Status Rewrite(const chain::Blockchain& chain);

  /// Blocks decoded from the log when the store was opened.
  const std::vector<chain::Block>& recovered_blocks() const {
    return recovered_blocks_;
  }
  /// Snapshot heights present on disk when opened (ascending).
  const std::vector<uint64_t>& snapshot_heights() const {
    return snapshot_heights_;
  }
  /// Reads and CRC-checks the snapshot file at `height`, returning the
  /// chain snapshot payload. Corruption on any mismatch; never crashes.
  common::Result<common::Bytes> LoadSnapshot(uint64_t height) const;

  /// Bytes of torn/corrupt log tail dropped when the store was opened.
  uint64_t truncated_bytes() const { return truncated_bytes_; }
  /// True after a scripted CrashPoint fired; reopen the directory to
  /// continue (mirrors a killed process).
  bool dead() const { return dead_; }
  /// Last append/snapshot failure observed by OnBlockCommitted.
  const common::Status& last_error() const { return last_error_; }
  uint64_t blocks_logged() const { return blocks_logged_; }
  uint64_t last_snapshot_height() const { return last_snapshot_height_; }
  const std::string& dir() const { return dir_; }
  const ChainStoreOptions& options() const { return options_; }

 private:
  ChainStore(std::string dir, ChainStoreOptions options);

  common::Status ScanLog();
  common::Status OpenAppendHandle();
  common::Status SyncFile(std::FILE* file);
  common::Status SyncDir();
  std::string LogPath() const;
  std::string SnapshotPath(uint64_t height) const;
  void GarbageCollectSnapshots();
  void CloseAppendHandle();

  std::string dir_;
  ChainStoreOptions options_;
  std::FILE* log_file_ = nullptr;  // append handle
  bool dead_ = false;
  common::Status last_error_;

  std::vector<chain::Block> recovered_blocks_;
  std::vector<uint64_t> record_end_offsets_;  // log offset after each block
  std::vector<uint64_t> snapshot_heights_;    // ascending
  uint64_t truncated_bytes_ = 0;
  uint64_t blocks_logged_ = 0;
  uint64_t last_snapshot_height_ = 0;
};

/// One genesis allocation for rebuilding a chain from an empty directory
/// (mirrors p2p::GenesisAlloc without depending on the p2p module).
struct GenesisAccount {
  chain::Address address;
  uint64_t amount = 0;
};

/// A recovered durable chain: the replica, its attached store (already
/// registered as the chain's commit listener), and what recovery did.
struct RecoveredChain {
  std::unique_ptr<chain::Blockchain> chain;
  std::unique_ptr<ChainStore> store;
  RecoveryInfo info;
};

/// Opens the durable chain in `dir`: loads the newest valid snapshot (if
/// any), replays the log tail through the normal block validation path, and
/// verifies the recovered head state root. An empty/missing directory
/// yields a fresh chain with the genesis allocations applied. The returned
/// chain persists every subsequent commit through the returned store.
///
/// `registry_factory` builds the contract registry for the replica (and for
/// the scratch replicas recovery verification needs); nullptr uses
/// chain::ContractRegistry::CreateDefault.
common::Result<RecoveredChain> OpenBlockchain(
    const std::string& dir, std::vector<common::Bytes> validator_public_keys,
    const std::vector<GenesisAccount>& genesis,
    chain::ChainConfig config = {}, ChainStoreOptions store_options = {},
    std::function<std::unique_ptr<chain::ContractRegistry>()>
        registry_factory = nullptr);

}  // namespace pds2::storage

#endif  // PDS2_STORAGE_CHAIN_STORE_H_
