#include "storage/provider_store.h"

#include "common/serial.h"
#include "crypto/cipher.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"

namespace pds2::storage {

using common::Bytes;
using common::Reader;
using common::Result;
using common::Status;
using common::Writer;

std::vector<Bytes> SerializeRecords(const ml::Dataset& data) {
  std::vector<Bytes> records;
  records.reserve(data.Size());
  for (size_t i = 0; i < data.Size(); ++i) {
    Writer w;
    w.PutDoubleVector(data.x[i]);
    w.PutDouble(data.y[i]);
    records.push_back(w.Take());
  }
  return records;
}

Bytes SerializeDataset(const ml::Dataset& data) {
  Writer w;
  w.PutU64(data.Size());
  for (size_t i = 0; i < data.Size(); ++i) {
    w.PutDoubleVector(data.x[i]);
    w.PutDouble(data.y[i]);
  }
  return w.Take();
}

Result<ml::Dataset> DeserializeDataset(const Bytes& bytes) {
  Reader r(bytes);
  ml::Dataset data;
  PDS2_ASSIGN_OR_RETURN(uint64_t n, r.GetU64());
  data.x.reserve(n);
  data.y.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    PDS2_ASSIGN_OR_RETURN(ml::Vec row, r.GetDoubleVector());
    PDS2_ASSIGN_OR_RETURN(double label, r.GetDouble());
    data.x.push_back(std::move(row));
    data.y.push_back(label);
  }
  if (!r.AtEnd()) return Status::Corruption("trailing bytes in dataset");
  return data;
}

Bytes DatasetCommitment(const ml::Dataset& data) {
  return crypto::MerkleTree(SerializeRecords(data)).Root();
}

ProviderStorage::ProviderStorage(Bytes master_key)
    : master_key_(std::move(master_key)) {}

Status ProviderStorage::AddDataset(const std::string& name,
                                   const ml::Dataset& data,
                                   SemanticMetadata metadata) {
  if (data.Size() == 0) {
    return Status::InvalidArgument("refusing to register an empty dataset");
  }
  if (index_.count(name) != 0) {
    return Status::AlreadyExists("dataset already registered: " + name);
  }

  // Encrypt at rest under a per-dataset key derived from the master key.
  const Bytes dataset_key =
      crypto::DeriveKey(master_key_, "pds2.storage." + name, 32);
  crypto::AuthCipher cipher(dataset_key);
  const Bytes sealed =
      cipher.Seal(SerializeDataset(data), common::ToBytes(name));

  IndexEntry entry;
  entry.address = store_.Put(sealed);
  entry.summary.name = name;
  entry.summary.num_records = data.Size();
  entry.summary.commitment = DatasetCommitment(data);
  entry.summary.metadata = std::move(metadata);
  index_.emplace(name, std::move(entry));
  return Status::Ok();
}

std::vector<DatasetSummary> ProviderStorage::Match(
    const Ontology& ontology, const DataRequirement& requirement) const {
  std::vector<DatasetSummary> eligible;
  for (const auto& [name, entry] : index_) {
    if (requirement.Matches(ontology, entry.summary.metadata,
                            entry.summary.num_records)) {
      eligible.push_back(entry.summary);
    }
  }
  return eligible;
}

Result<DatasetSummary> ProviderStorage::Summary(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return Status::NotFound("unknown dataset: " + name);
  return it->second.summary;
}

Result<ml::Dataset> ProviderStorage::Load(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return Status::NotFound("unknown dataset: " + name);
  PDS2_ASSIGN_OR_RETURN(Bytes sealed, store_.Get(it->second.address));
  const Bytes dataset_key =
      crypto::DeriveKey(master_key_, "pds2.storage." + name, 32);
  crypto::AuthCipher cipher(dataset_key);
  PDS2_ASSIGN_OR_RETURN(Bytes plain, cipher.Open(sealed));
  return DeserializeDataset(plain);
}

Result<Bytes> ProviderStorage::SealForTransfer(
    const std::string& name, const Bytes& transport_key) const {
  PDS2_ASSIGN_OR_RETURN(ml::Dataset data, Load(name));
  crypto::AuthCipher cipher(transport_key);
  Bytes nonce_seed = common::ToBytes("transfer." + name);
  return cipher.Seal(SerializeDataset(data), nonce_seed);
}

Result<ml::Dataset> ProviderStorage::OpenTransfer(
    const Bytes& sealed, const Bytes& transport_key,
    const Bytes& expected_commitment) {
  crypto::AuthCipher cipher(transport_key);
  PDS2_ASSIGN_OR_RETURN(Bytes plain, cipher.Open(sealed));
  PDS2_ASSIGN_OR_RETURN(ml::Dataset data, DeserializeDataset(plain));
  if (DatasetCommitment(data) != expected_commitment) {
    return Status::FailedPrecondition(
        "received data does not match the certified commitment");
  }
  return data;
}

}  // namespace pds2::storage
