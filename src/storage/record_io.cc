#include "storage/record_io.h"

#include "common/crc32.h"

namespace pds2::storage {

using common::Bytes;
using common::Reader;
using common::Result;
using common::Status;
using common::Writer;

Bytes EncodeCrcRecord(const Bytes& payload) {
  Writer w;
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutU32(common::Crc32c(payload));
  w.PutRaw(payload);
  return w.Take();
}

Result<Bytes> ReadCrcRecord(Reader& r) {
  if (r.remaining() < kRecordFrameBytes) {
    return Status::NotFound("end of record stream");
  }
  PDS2_ASSIGN_OR_RETURN(uint32_t len, r.GetU32());
  PDS2_ASSIGN_OR_RETURN(uint32_t crc, r.GetU32());
  if (r.remaining() < len) return Status::Corruption("torn record payload");
  PDS2_ASSIGN_OR_RETURN(Bytes payload, r.GetRaw(len));
  if (common::Crc32c(payload) != crc) {
    return Status::Corruption("record crc mismatch");
  }
  return payload;
}

Result<Bytes> DecodeCrcRecord(const Bytes& record) {
  Reader r(record);
  auto payload = ReadCrcRecord(r);
  if (!payload.ok()) {
    return payload.status().code() == common::StatusCode::kNotFound
               ? Status::Corruption("record too short")
               : payload.status();
  }
  if (!r.AtEnd()) return Status::Corruption("trailing bytes after record");
  return payload;
}

}  // namespace pds2::storage
