#include "storage/content_store.h"

#include "common/serial.h"
#include "crypto/sha256.h"

namespace pds2::storage {

using common::Bytes;
using common::Reader;
using common::Result;
using common::Status;
using common::Writer;

Bytes ContentStore::Put(const Bytes& blob) {
  Writer manifest;
  manifest.PutU64(blob.size());
  const size_t n_chunks = (blob.size() + kChunkSize - 1) / kChunkSize;
  manifest.PutU32(static_cast<uint32_t>(n_chunks));
  for (size_t i = 0; i < n_chunks; ++i) {
    const size_t begin = i * kChunkSize;
    const size_t end = std::min(blob.size(), begin + kChunkSize);
    Bytes chunk(blob.begin() + static_cast<ptrdiff_t>(begin),
                blob.begin() + static_cast<ptrdiff_t>(end));
    Bytes chunk_hash = crypto::Sha256::Hash(chunk);
    auto [it, inserted] = chunks_.emplace(chunk_hash, std::move(chunk));
    if (inserted) stored_bytes_ += it->second.size();
    manifest.PutBytes(chunk_hash);
  }
  Bytes manifest_bytes = manifest.Take();
  Bytes address = crypto::Sha256::Hash(manifest_bytes);
  manifests_.emplace(address, std::move(manifest_bytes));
  return address;
}

Result<Bytes> ContentStore::Get(const Bytes& address) const {
  auto it = manifests_.find(address);
  if (it == manifests_.end()) {
    return Status::NotFound("unknown content address");
  }
  Reader r(it->second);
  PDS2_ASSIGN_OR_RETURN(uint64_t total_size, r.GetU64());
  PDS2_ASSIGN_OR_RETURN(uint32_t n_chunks, r.GetU32());
  Bytes blob;
  blob.reserve(total_size);
  for (uint32_t i = 0; i < n_chunks; ++i) {
    PDS2_ASSIGN_OR_RETURN(Bytes chunk_hash, r.GetBytes());
    auto chunk_it = chunks_.find(chunk_hash);
    if (chunk_it == chunks_.end()) {
      return Status::Corruption("referenced chunk missing");
    }
    common::Append(blob, chunk_it->second);
  }
  if (blob.size() != total_size) {
    return Status::Corruption("reassembled size mismatch");
  }
  return blob;
}

bool ContentStore::Has(const Bytes& address) const {
  return manifests_.count(address) != 0;
}

}  // namespace pds2::storage
