#ifndef PDS2_STORAGE_RECORD_IO_H_
#define PDS2_STORAGE_RECORD_IO_H_

#include "common/bytes.h"
#include "common/result.h"
#include "common/serial.h"

namespace pds2::storage {

/// CRC-32C framed records — the shared on-disk unit of the storage layer.
/// One record is `[u32 len][u32 crc][payload]`; the frame detects torn
/// writes (truncated payload) and bit rot (crc mismatch) without trusting
/// the payload's own format. Used by the chain block log, chain snapshots,
/// and the content-addressed artifact store's pack/manifest/root files.

/// Record frame overhead in bytes (len + crc).
inline constexpr size_t kRecordFrameBytes = 8;

/// Encodes one framed record.
common::Bytes EncodeCrcRecord(const common::Bytes& payload);

/// Reads the next framed record from `r`. NotFound when fewer than
/// kRecordFrameBytes remain (clean end of a record stream), Corruption for
/// a torn payload or a crc mismatch. On success the reader is positioned at
/// the next record.
common::Result<common::Bytes> ReadCrcRecord(common::Reader& r);

/// Decodes a complete standalone record (frame + payload, nothing else),
/// e.g. a snapshot file body. Corruption on any framing violation or
/// trailing bytes.
common::Result<common::Bytes> DecodeCrcRecord(const common::Bytes& record);

}  // namespace pds2::storage

#endif  // PDS2_STORAGE_RECORD_IO_H_
