#include "storage/chain_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "common/crc32.h"
#include "common/fault.h"
#include "storage/record_io.h"
#include "common/thread_pool.h"
#include "common/logging.h"
#include "common/serial.h"
#include "obs/metrics.h"
#include "obs/stopwatch.h"

namespace pds2::storage {

namespace fs = std::filesystem;

using common::Bytes;
using common::CrashPoint;
using common::Reader;
using common::Result;
using common::Status;
using common::Writer;

namespace {

// 8-byte file magics. The trailing byte is a format version; bumping it
// makes old readers fail cleanly with "bad magic" instead of misparsing.
constexpr char kLogMagic[8] = {'P', 'D', 'S', '2', 'L', 'O', 'G', '\x01'};
constexpr char kSnapshotMagic[8] = {'P', 'D', 'S', '2',
                                    'S', 'N', 'P', '\x01'};
constexpr char kSnapshotPrefix[] = "snapshot-";
constexpr char kTmpSuffix[] = ".tmp";

bool HasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// One log/snapshot record, in the storage layer's shared CRC framing
// ([u32 len][u32 crc][payload]; see storage/record_io.h).
Bytes EncodeRecord(const Bytes& payload) { return EncodeCrcRecord(payload); }

Status ReadFileBytes(const std::string& path, Bytes* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open file: " + path);
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return Status::Ok();
}

}  // namespace

ChainStore::ChainStore(std::string dir, ChainStoreOptions options)
    : dir_(std::move(dir)), options_(options) {}

ChainStore::~ChainStore() { CloseAppendHandle(); }

void ChainStore::CloseAppendHandle() {
  if (log_file_ != nullptr) {
    std::fclose(log_file_);
    log_file_ = nullptr;
  }
}

std::string ChainStore::LogPath() const { return dir_ + "/blocks.log"; }

std::string ChainStore::SnapshotPath(uint64_t height) const {
  return dir_ + "/" + kSnapshotPrefix + std::to_string(height);
}

Status ChainStore::SyncFile(std::FILE* file) {
  if (std::fflush(file) != 0) {
    return Status::Internal(std::string("fflush failed: ") +
                            std::strerror(errno));
  }
  if (!options_.fsync) return Status::Ok();
  obs::Stopwatch watch;
  if (::fsync(::fileno(file)) != 0) {
    return Status::Internal(std::string("fsync failed: ") +
                            std::strerror(errno));
  }
  PDS2_M_OBSERVE("store.fsync_us", watch.ElapsedUs());
  return Status::Ok();
}

Status ChainStore::SyncDir() {
  if (!options_.fsync) return Status::Ok();
  const int fd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Internal(std::string("cannot open dir for fsync: ") +
                            std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::Internal(std::string("dir fsync failed: ") +
                            std::strerror(errno));
  }
  return Status::Ok();
}

Result<std::unique_ptr<ChainStore>> ChainStore::Open(
    const std::string& dir, ChainStoreOptions options) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create store directory " + dir + ": " +
                            ec.message());
  }
  std::unique_ptr<ChainStore> store(new ChainStore(dir, options));

  // Garbage-collect unrenamed temp files (a crash mid-snapshot leaves one
  // behind; its content never became visible to recovery) and index the
  // snapshots that did get renamed in.
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (HasSuffix(name, kTmpSuffix)) {
      fs::remove(entry.path(), ec);
      continue;
    }
    if (name.rfind(kSnapshotPrefix, 0) == 0) {
      const std::string digits = name.substr(std::strlen(kSnapshotPrefix));
      if (digits.empty() || digits.size() > 19 ||
          digits.find_first_not_of("0123456789") != std::string::npos) {
        continue;  // not a height we could have written
      }
      store->snapshot_heights_.push_back(std::stoull(digits));
    }
  }
  std::sort(store->snapshot_heights_.begin(), store->snapshot_heights_.end());

  PDS2_RETURN_IF_ERROR(store->ScanLog());
  PDS2_RETURN_IF_ERROR(store->OpenAppendHandle());
  return store;
}

Status ChainStore::ScanLog() {
  const std::string path = LogPath();
  std::error_code ec;
  const bool exists = fs::exists(path, ec);
  Bytes buf;
  if (exists) PDS2_RETURN_IF_ERROR(ReadFileBytes(path, &buf));

  if (buf.empty()) {
    // Fresh (or created-then-killed-before-magic) log: write the magic.
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      return Status::Internal("cannot create block log: " + path);
    }
    std::fwrite(kLogMagic, 1, sizeof(kLogMagic), f);
    Status sync = SyncFile(f);
    std::fclose(f);
    PDS2_RETURN_IF_ERROR(sync);
    return SyncDir();
  }
  if (buf.size() < sizeof(kLogMagic) ||
      std::memcmp(buf.data(), kLogMagic, sizeof(kLogMagic)) != 0) {
    return Status::Corruption("bad block log magic: " + path);
  }

  Reader r(buf);
  (void)r.GetRaw(sizeof(kLogMagic));
  uint64_t valid_bytes = sizeof(kLogMagic);
  while (true) {
    auto payload = ReadCrcRecord(r);  // torn or bit-rotted frames fail here
    if (!payload.ok()) break;
    auto block = chain::Block::Deserialize(*payload);
    if (!block.ok()) break;
    recovered_blocks_.push_back(std::move(*block));
    valid_bytes += kRecordFrameBytes + payload->size();
    record_end_offsets_.push_back(valid_bytes);
  }
  blocks_logged_ = recovered_blocks_.size();

  if (valid_bytes < buf.size()) {
    // Torn or corrupt tail: every record after the first bad one is
    // unusable anyway (blocks chain by parent hash), so truncate the log
    // back to the last clean record boundary.
    truncated_bytes_ = buf.size() - valid_bytes;
    fs::resize_file(path, valid_bytes, ec);
    if (ec) {
      return Status::Internal("cannot truncate torn log tail: " +
                              ec.message());
    }
    PDS2_M_COUNT("store.log_truncations", 1);
    PDS2_LOG(kWarn) << "chain store " << dir_ << ": truncated "
                    << truncated_bytes_ << " torn log bytes after block "
                    << recovered_blocks_.size();
  }
  return Status::Ok();
}

Status ChainStore::OpenAppendHandle() {
  CloseAppendHandle();
  log_file_ = std::fopen(LogPath().c_str(), "ab");
  if (log_file_ == nullptr) {
    return Status::Internal("cannot open block log for append: " + LogPath());
  }
  return Status::Ok();
}

Status ChainStore::AppendBlock(const chain::Block& block) {
  if (dead_) {
    return Status::Unavailable("chain store crashed; reopen to continue");
  }
  PDS2_M_TIME_US("store.append_us");
  const Bytes record = EncodeRecord(block.Serialize());

  if (common::CrashRequested(CrashPoint::kLogMidAppend)) {
    // The process dies with only half the record flushed to the OS — the
    // classic torn write. Recovery must drop this record.
    std::fwrite(record.data(), 1, record.size() / 2, log_file_);
    std::fflush(log_file_);
    dead_ = true;
    PDS2_M_COUNT("store.crashes_simulated", 1);
    return Status::Unavailable("simulated crash mid-append");
  }

  if (std::fwrite(record.data(), 1, record.size(), log_file_) !=
      record.size()) {
    dead_ = true;  // the log tail is now indeterminate; force a reopen
    return Status::Internal("short write appending block record");
  }

  if (common::CrashRequested(CrashPoint::kLogPreFsync)) {
    // Full record handed to the OS, process dies before fsync. Within one
    // machine the page cache survives a process kill, so recovery sees the
    // whole record — it may legitimately keep this block.
    std::fflush(log_file_);
    dead_ = true;
    PDS2_M_COUNT("store.crashes_simulated", 1);
    return Status::Unavailable("simulated crash before fsync");
  }

  PDS2_RETURN_IF_ERROR(SyncFile(log_file_));
  ++blocks_logged_;
  record_end_offsets_.push_back(
      (record_end_offsets_.empty() ? sizeof(kLogMagic)
                                   : record_end_offsets_.back()) +
      record.size());
  PDS2_M_COUNT("store.log_appends", 1);
  PDS2_M_OBSERVE("store.log_record_bytes", record.size());
  return Status::Ok();
}

Status ChainStore::WriteSnapshot(const chain::Blockchain& chain) {
  if (dead_) {
    return Status::Unavailable("chain store crashed; reopen to continue");
  }
  PDS2_M_TIME_US("store.snapshot_us");
  const uint64_t height = chain.Height();
  const Bytes payload = chain.EncodeSnapshotState();
  const Bytes record = EncodeRecord(payload);
  const std::string final_path = SnapshotPath(height);
  const std::string tmp_path = final_path + kTmpSuffix;

  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot create snapshot temp file: " + tmp_path);
  }
  std::fwrite(kSnapshotMagic, 1, sizeof(kSnapshotMagic), f);

  if (common::CrashRequested(CrashPoint::kSnapshotMidWrite)) {
    // Half the snapshot reaches the temp file; the rename never happens, so
    // recovery never even considers these bytes.
    std::fwrite(record.data(), 1, record.size() / 2, f);
    std::fclose(f);
    dead_ = true;
    PDS2_M_COUNT("store.crashes_simulated", 1);
    return Status::Unavailable("simulated crash mid-snapshot");
  }

  const size_t written = std::fwrite(record.data(), 1, record.size(), f);
  Status sync = written == record.size()
                    ? SyncFile(f)
                    : Status::Internal("short write in snapshot temp file");
  std::fclose(f);
  PDS2_RETURN_IF_ERROR(sync);

  // The atomic cut-over: readers see either the old snapshot set or the
  // new file, never a half-written one.
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    return Status::Internal("snapshot rename failed: " + ec.message());
  }
  PDS2_RETURN_IF_ERROR(SyncDir());
  snapshot_heights_.push_back(height);
  std::sort(snapshot_heights_.begin(), snapshot_heights_.end());
  snapshot_heights_.erase(
      std::unique(snapshot_heights_.begin(), snapshot_heights_.end()),
      snapshot_heights_.end());
  last_snapshot_height_ = height;
  PDS2_M_COUNT("store.snapshots_written", 1);
  PDS2_M_OBSERVE("store.snapshot_bytes", record.size());

  if (common::CrashRequested(CrashPoint::kSnapshotPostRename)) {
    // Snapshot is durable but the old-snapshot GC never runs; recovery
    // just sees one extra stale file and ignores it.
    dead_ = true;
    PDS2_M_COUNT("store.crashes_simulated", 1);
    return Status::Unavailable("simulated crash after snapshot rename");
  }

  GarbageCollectSnapshots();
  return Status::Ok();
}

void ChainStore::GarbageCollectSnapshots() {
  while (snapshot_heights_.size() > options_.keep_snapshots) {
    std::error_code ec;
    fs::remove(SnapshotPath(snapshot_heights_.front()), ec);
    snapshot_heights_.erase(snapshot_heights_.begin());
  }
}

Result<Bytes> ChainStore::LoadSnapshot(uint64_t height) const {
  Bytes buf;
  PDS2_RETURN_IF_ERROR(ReadFileBytes(SnapshotPath(height), &buf));
  Reader r(buf);
  auto magic = r.GetRaw(sizeof(kSnapshotMagic));
  if (!magic.ok() ||
      std::memcmp(magic->data(), kSnapshotMagic, sizeof(kSnapshotMagic)) !=
          0) {
    return Status::Corruption("bad snapshot magic at height " +
                              std::to_string(height));
  }
  auto payload = ReadCrcRecord(r);
  if (!payload.ok()) {
    return Status::Corruption("snapshot checksum mismatch at height " +
                              std::to_string(height));
  }
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes in snapshot at height " +
                              std::to_string(height));
  }
  return *payload;
}

Status ChainStore::Rewrite(const chain::Blockchain& chain) {
  if (dead_) {
    return Status::Unavailable("chain store crashed; reopen to continue");
  }
  // Fork adoption replaced the chain's history; the log on disk describes
  // an orphaned branch. Rebuild it atomically next to the old one and
  // rename over, then drop every snapshot (their heights indexed the old
  // branch).
  const std::string tmp_path = LogPath() + kTmpSuffix;
  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot create log rewrite file: " + tmp_path);
  }
  std::fwrite(kLogMagic, 1, sizeof(kLogMagic), f);
  std::vector<uint64_t> offsets;
  uint64_t offset = sizeof(kLogMagic);
  bool short_write = false;
  for (const chain::Block& block : chain.blocks()) {
    const Bytes record = EncodeRecord(block.Serialize());
    if (std::fwrite(record.data(), 1, record.size(), f) != record.size()) {
      short_write = true;
      break;
    }
    offset += record.size();
    offsets.push_back(offset);
  }
  Status sync = short_write ? Status::Internal("short write rewriting log")
                            : SyncFile(f);
  std::fclose(f);
  if (!sync.ok()) {
    std::error_code ec;
    fs::remove(tmp_path, ec);
    return sync;
  }
  CloseAppendHandle();
  std::error_code ec;
  fs::rename(tmp_path, LogPath(), ec);
  if (ec) {
    return Status::Internal("log rewrite rename failed: " + ec.message());
  }
  PDS2_RETURN_IF_ERROR(SyncDir());
  for (uint64_t height : snapshot_heights_) {
    fs::remove(SnapshotPath(height), ec);
  }
  snapshot_heights_.clear();
  last_snapshot_height_ = 0;
  record_end_offsets_ = std::move(offsets);
  blocks_logged_ = chain.Height();
  PDS2_RETURN_IF_ERROR(OpenAppendHandle());
  PDS2_M_COUNT("store.log_rewrites", 1);
  if (options_.snapshot_interval > 0 && chain.Height() > 0) {
    return WriteSnapshot(chain);
  }
  return Status::Ok();
}

void ChainStore::OnBlockCommitted(const chain::Blockchain& chain,
                                  const chain::Block& block) {
  Status status = AppendBlock(block);
  if (status.ok() && options_.snapshot_interval > 0 &&
      chain.Height() % options_.snapshot_interval == 0) {
    status = WriteSnapshot(chain);
  }
  if (!status.ok()) {
    last_error_ = status;
    PDS2_LOG(kWarn) << "chain store " << dir_ << ": commit of block "
                    << block.header.number
                    << " not persisted: " << status.ToString();
  }
}

Result<RecoveredChain> OpenBlockchain(
    const std::string& dir, std::vector<common::Bytes> validator_public_keys,
    const std::vector<GenesisAccount>& genesis, chain::ChainConfig config,
    ChainStoreOptions store_options,
    std::function<std::unique_ptr<chain::ContractRegistry>()>
        registry_factory) {
  if (!registry_factory) {
    registry_factory = [] { return chain::ContractRegistry::CreateDefault(); };
  }
  PDS2_ASSIGN_OR_RETURN(std::unique_ptr<ChainStore> store,
                        ChainStore::Open(dir, store_options));
  obs::Stopwatch watch;
  const std::vector<chain::Block>& blocks = store->recovered_blocks();

  RecoveryInfo info;
  info.log_blocks = blocks.size();
  info.truncated_bytes = store->truncated_bytes();

  auto fresh_chain = [&] {
    return std::make_unique<chain::Blockchain>(validator_public_keys,
                                               registry_factory(), config);
  };
  auto replay_from_genesis =
      [&](uint64_t upto, const chain::ChainConfig& replay_config)
      -> Result<std::unique_ptr<chain::Blockchain>> {
    auto replica = std::make_unique<chain::Blockchain>(
        validator_public_keys, registry_factory(), replay_config);
    for (const GenesisAccount& alloc : genesis) {
      PDS2_RETURN_IF_ERROR(replica->CreditGenesis(alloc.address, alloc.amount));
    }
    for (uint64_t h = 0; h < upto; ++h) {
      Status status = replica->ApplyExternalBlock(blocks[h]);
      if (!status.ok()) {
        return Status::Corruption("log replay failed at block " +
                                  std::to_string(h) + ": " +
                                  status.ToString());
      }
    }
    return replica;
  };

  // Newest usable snapshot first; a corrupt or inconsistent snapshot is
  // skipped, falling back to older ones and finally to a genesis replay.
  std::unique_ptr<chain::Blockchain> replica;
  uint64_t restored_height = 0;
  const std::vector<uint64_t> heights = store->snapshot_heights();
  for (auto it = heights.rbegin(); it != heights.rend() && !replica; ++it) {
    const uint64_t height = *it;
    if (height == 0 || height > blocks.size()) continue;
    auto payload = store->LoadSnapshot(height);
    if (!payload.ok()) {
      PDS2_LOG(kWarn) << "chain store " << dir << ": snapshot " << height
                      << " unusable: " << payload.status().ToString();
      continue;
    }
    auto candidate = fresh_chain();
    std::vector<chain::Block> history(blocks.begin(), blocks.begin() + height);
    Status status =
        candidate->RestoreFromSnapshot(*payload, std::move(history));
    if (!status.ok()) {
      PDS2_LOG(kWarn) << "chain store " << dir << ": snapshot " << height
                      << " rejected: " << status.ToString();
      continue;
    }
    replica = std::move(candidate);
    restored_height = height;
    info.used_snapshot = true;
    info.snapshot_height = height;
  }
  if (!replica) {
    PDS2_ASSIGN_OR_RETURN(replica, replay_from_genesis(0, config));
  }

  // Replay the log tail through the normal validation path (proposer turn,
  // signatures, tx root, state root — identical to live replication).
  for (uint64_t h = restored_height; h < blocks.size(); ++h) {
    Status status = replica->ApplyExternalBlock(blocks[h]);
    if (!status.ok()) {
      return Status::Corruption("log replay failed at block " +
                                std::to_string(h) + ": " + status.ToString());
    }
    ++info.replayed_blocks;
  }

  // Recovery invariant: the recovered world state must be exactly the one
  // the head block committed to.
  if (replica->Height() > 0 &&
      replica->StateDigest() != replica->blocks().back().header.state_root) {
    return Status::Corruption("recovered state root mismatch at head");
  }
  // Optionally cross-check the recovered state against an uninterrupted
  // genesis replay on a forced-sequential replica — bit-identical or we
  // refuse. This guards two shortcuts at once: a snapshot that is
  // internally consistent but belongs to a different history, and the
  // optimistic parallel block executor (the recovery replay above runs on
  // the configured pool; the reference re-run cannot take the lane path).
  const bool parallel_replay_possible =
      config.thread_pool != nullptr && config.thread_pool->NumThreads() > 1;
  if (store_options.paranoid_recovery &&
      (info.used_snapshot || parallel_replay_possible)) {
    common::ThreadPool sequential_pool(1);
    chain::ChainConfig sequential_config = config;
    sequential_config.thread_pool = &sequential_pool;
    PDS2_ASSIGN_OR_RETURN(
        std::unique_ptr<chain::Blockchain> reference,
        replay_from_genesis(blocks.size(), sequential_config));
    if (reference->StateDigest() != replica->StateDigest()) {
      return Status::Corruption(
          "recovered state diverges from sequential full replay");
    }
  }

  PDS2_M_OBSERVE("store.recovery_replay_us", watch.ElapsedUs());
  PDS2_M_COUNT("store.recoveries", 1);
  replica->SetCommitListener(store.get());
  RecoveredChain result;
  result.chain = std::move(replica);
  result.store = std::move(store);
  result.info = info;
  return result;
}

}  // namespace pds2::storage
