#include "storage/key_escrow.h"

namespace pds2::storage {

using common::Bytes;
using common::Result;
using common::Status;
using crypto::ShamirShare;

namespace {
// A 32-byte key is escrowed as 8 independent 4-byte segments; 32-bit
// values sit comfortably below the 2^61-1 field modulus.
constexpr size_t kSegments = 8;
constexpr size_t kSegmentBytes = 4;
}  // namespace

KeyEscrow::KeyEscrow(size_t num_keepers, size_t threshold)
    : num_keepers_(num_keepers), threshold_(threshold) {}

Status KeyEscrow::Deposit(const Bytes& key32, common::Rng& rng) {
  if (key32.size() != kSegments * kSegmentBytes) {
    return Status::InvalidArgument("escrowed key must be 32 bytes");
  }
  if (threshold_ == 0 || threshold_ > num_keepers_) {
    return Status::InvalidArgument("invalid escrow threshold");
  }
  shares_.clear();
  for (size_t seg = 0; seg < kSegments; ++seg) {
    uint64_t value = 0;
    for (size_t b = 0; b < kSegmentBytes; ++b) {
      value = (value << 8) | key32[seg * kSegmentBytes + b];
    }
    auto split = crypto::ShamirSplit(value, threshold_, num_keepers_, rng);
    PDS2_RETURN_IF_ERROR(split.status());
    for (size_t keeper = 0; keeper < num_keepers_; ++keeper) {
      shares_[keeper].push_back((*split)[keeper]);
    }
  }
  return Status::Ok();
}

Result<Bytes> KeyEscrow::Recover(
    const std::vector<size_t>& keeper_indices) const {
  if (shares_.empty()) {
    return Status::FailedPrecondition("no key deposited");
  }
  if (keeper_indices.size() < threshold_) {
    return Status::PermissionDenied("not enough keepers to reconstruct");
  }
  Bytes key(kSegments * kSegmentBytes);
  for (size_t seg = 0; seg < kSegments; ++seg) {
    std::vector<ShamirShare> segment_shares;
    for (size_t keeper : keeper_indices) {
      auto it = shares_.find(keeper);
      if (it == shares_.end()) {
        return Status::NotFound("unknown keeper index");
      }
      segment_shares.push_back(it->second[seg]);
    }
    PDS2_ASSIGN_OR_RETURN(uint64_t value,
                          crypto::ShamirReconstruct(segment_shares));
    for (size_t b = 0; b < kSegmentBytes; ++b) {
      key[seg * kSegmentBytes + b] =
          static_cast<uint8_t>(value >> (8 * (kSegmentBytes - 1 - b)));
    }
  }
  return key;
}

}  // namespace pds2::storage
