#ifndef PDS2_STORAGE_PROVIDER_STORE_H_
#define PDS2_STORAGE_PROVIDER_STORE_H_

#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "ml/dataset.h"
#include "storage/content_store.h"
#include "storage/semantic.h"

namespace pds2::storage {

/// Canonical per-record serialization (features || label). The unit of the
/// dataset Merkle commitment, so executors can verify that the data they
/// received is exactly what the provider's certificate committed to.
std::vector<common::Bytes> SerializeRecords(const ml::Dataset& data);

/// Whole-dataset wire encoding and its inverse.
common::Bytes SerializeDataset(const ml::Dataset& data);
common::Result<ml::Dataset> DeserializeDataset(const common::Bytes& bytes);

/// Merkle root over the per-record serialization — the `data_commitment`
/// carried in participation certificates.
common::Bytes DatasetCommitment(const ml::Dataset& data);

/// What the storage subsystem is willing to reveal about a dataset without
/// authorization: metadata, size and commitment — never records.
struct DatasetSummary {
  std::string name;
  uint64_t num_records = 0;
  common::Bytes commitment;
  SemanticMetadata metadata;
};

/// A provider's storage subsystem (paper §II-C): keeps the data encrypted
/// at rest in a content-addressed store, matches it against workload
/// requirements using metadata only, and releases it exclusively as sealed
/// transfers to executors the provider authorized.
class ProviderStorage {
 public:
  /// `master_key` encrypts everything at rest (derived per dataset).
  explicit ProviderStorage(common::Bytes master_key);

  /// Registers a dataset. Fails on duplicate names or empty data.
  common::Status AddDataset(const std::string& name, const ml::Dataset& data,
                            SemanticMetadata metadata);

  /// Summaries of all datasets eligible for `requirement`.
  std::vector<DatasetSummary> Match(const Ontology& ontology,
                                    const DataRequirement& requirement) const;

  /// Summary of one dataset by name.
  common::Result<DatasetSummary> Summary(const std::string& name) const;

  /// Decrypts a dataset back out of the store (the owner's own access path).
  common::Result<ml::Dataset> Load(const std::string& name) const;

  /// Seals a dataset for transfer under a transport key the provider
  /// negotiated with an executor (ECDH). Only this call ever exposes
  /// records, and only in authenticated-encrypted form.
  common::Result<common::Bytes> SealForTransfer(
      const std::string& name, const common::Bytes& transport_key) const;

  /// Executor-side: opens a sealed transfer and verifies the records match
  /// the certificate's commitment. Unauthenticated on tampering, and
  /// FailedPrecondition if the commitment disagrees.
  static common::Result<ml::Dataset> OpenTransfer(
      const common::Bytes& sealed, const common::Bytes& transport_key,
      const common::Bytes& expected_commitment);

  size_t DatasetCount() const { return index_.size(); }
  /// Bytes held by the underlying content store (encrypted at rest).
  size_t StoredBytes() const { return store_.StoredBytes(); }

 private:
  struct IndexEntry {
    common::Bytes address;  // content address of the encrypted blob
    DatasetSummary summary;
  };

  common::Bytes master_key_;
  ContentStore store_;
  std::map<std::string, IndexEntry> index_;
};

}  // namespace pds2::storage

#endif  // PDS2_STORAGE_PROVIDER_STORE_H_
