#include "storage/semantic.h"

#include "common/serial.h"

namespace pds2::storage {

using common::Bytes;
using common::Reader;
using common::Result;
using common::Status;
using common::Writer;

Status Ontology::AddClass(const std::string& name, const std::string& parent) {
  if (name.empty()) return Status::InvalidArgument("empty class name");
  if (parents_.count(name) != 0) {
    return Status::AlreadyExists("class already defined: " + name);
  }
  if (!parent.empty() && parents_.count(parent) == 0) {
    return Status::NotFound("unknown parent class: " + parent);
  }
  parents_[name] = parent;
  return Status::Ok();
}

bool Ontology::HasClass(const std::string& name) const {
  return parents_.count(name) != 0;
}

bool Ontology::IsSubclassOf(const std::string& cls,
                            const std::string& ancestor) const {
  std::string current = cls;
  while (!current.empty()) {
    if (current == ancestor) return true;
    auto it = parents_.find(current);
    if (it == parents_.end()) return false;
    current = it->second;
  }
  return false;
}

Ontology Ontology::StandardIot() {
  Ontology o;
  (void)o.AddClass("iot");
  (void)o.AddClass("iot/sensor", "iot");
  (void)o.AddClass("iot/sensor/temperature", "iot/sensor");
  (void)o.AddClass("iot/sensor/humidity", "iot/sensor");
  (void)o.AddClass("iot/sensor/heart_rate", "iot/sensor");
  (void)o.AddClass("iot/sensor/location", "iot/sensor");
  (void)o.AddClass("iot/wearable", "iot");
  (void)o.AddClass("iot/wearable/smartwatch", "iot/wearable");
  (void)o.AddClass("iot/wearable/fitness_band", "iot/wearable");
  return o;
}

Bytes Ontology::Serialize() const {
  Writer w;
  w.PutU32(static_cast<uint32_t>(parents_.size()));
  for (const auto& [name, parent] : parents_) {
    w.PutString(name);
    w.PutString(parent);
  }
  return w.Take();
}

Result<Ontology> Ontology::Deserialize(const Bytes& data) {
  Reader r(data);
  Ontology ontology;
  PDS2_ASSIGN_OR_RETURN(uint32_t n, r.GetU32());
  // std::map iteration is name-ordered, which does not guarantee parents
  // precede children; insert classes first, then validate parent links.
  std::map<std::string, std::string> entries;
  for (uint32_t i = 0; i < n; ++i) {
    PDS2_ASSIGN_OR_RETURN(std::string name, r.GetString());
    PDS2_ASSIGN_OR_RETURN(std::string parent, r.GetString());
    if (name.empty()) return Status::Corruption("empty ontology class");
    if (!entries.emplace(name, parent).second) {
      return Status::Corruption("duplicate ontology class");
    }
  }
  for (const auto& [name, parent] : entries) {
    if (!parent.empty() && entries.count(parent) == 0) {
      return Status::Corruption("ontology parent missing: " + parent);
    }
  }
  ontology.parents_ = std::move(entries);
  return ontology;
}

Bytes SemanticMetadata::Serialize() const {
  Writer w;
  w.PutU32(static_cast<uint32_t>(types.size()));
  for (const auto& t : types) w.PutString(t);
  w.PutU32(static_cast<uint32_t>(numeric.size()));
  for (const auto& [k, v] : numeric) {
    w.PutString(k);
    w.PutDouble(v);
  }
  w.PutU32(static_cast<uint32_t>(text.size()));
  for (const auto& [k, v] : text) {
    w.PutString(k);
    w.PutString(v);
  }
  return w.Take();
}

Result<SemanticMetadata> SemanticMetadata::Deserialize(const Bytes& data) {
  Reader r(data);
  SemanticMetadata meta;
  PDS2_ASSIGN_OR_RETURN(uint32_t n_types, r.GetU32());
  for (uint32_t i = 0; i < n_types; ++i) {
    PDS2_ASSIGN_OR_RETURN(std::string t, r.GetString());
    meta.types.push_back(std::move(t));
  }
  PDS2_ASSIGN_OR_RETURN(uint32_t n_numeric, r.GetU32());
  for (uint32_t i = 0; i < n_numeric; ++i) {
    PDS2_ASSIGN_OR_RETURN(std::string k, r.GetString());
    PDS2_ASSIGN_OR_RETURN(double v, r.GetDouble());
    meta.numeric[k] = v;
  }
  PDS2_ASSIGN_OR_RETURN(uint32_t n_text, r.GetU32());
  for (uint32_t i = 0; i < n_text; ++i) {
    PDS2_ASSIGN_OR_RETURN(std::string k, r.GetString());
    PDS2_ASSIGN_OR_RETURN(std::string v, r.GetString());
    meta.text[k] = v;
  }
  return meta;
}

bool DataRequirement::Matches(const Ontology& ontology,
                              const SemanticMetadata& metadata,
                              uint64_t num_records) const {
  if (num_records < min_records) return false;

  for (const std::string& required : required_types) {
    bool found = false;
    for (const std::string& have : metadata.types) {
      if (ontology.IsSubclassOf(have, required)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }

  for (const PropertyConstraint& c : constraints) {
    if (c.kind == PropertyConstraint::Kind::kNumericRange) {
      auto it = metadata.numeric.find(c.key);
      if (it == metadata.numeric.end()) return false;
      if (it->second < c.min || it->second > c.max) return false;
    } else {
      auto it = metadata.text.find(c.key);
      if (it == metadata.text.end()) return false;
      if (it->second != c.value) return false;
    }
  }
  return true;
}

Bytes DataRequirement::Serialize() const {
  Writer w;
  w.PutU32(static_cast<uint32_t>(required_types.size()));
  for (const auto& t : required_types) w.PutString(t);
  w.PutU32(static_cast<uint32_t>(constraints.size()));
  for (const auto& c : constraints) {
    w.PutU8(static_cast<uint8_t>(c.kind));
    w.PutString(c.key);
    w.PutDouble(c.min);
    w.PutDouble(c.max);
    w.PutString(c.value);
  }
  w.PutU64(min_records);
  return w.Take();
}

Result<DataRequirement> DataRequirement::Deserialize(const Bytes& data) {
  Reader r(data);
  DataRequirement req;
  PDS2_ASSIGN_OR_RETURN(uint32_t n_types, r.GetU32());
  for (uint32_t i = 0; i < n_types; ++i) {
    PDS2_ASSIGN_OR_RETURN(std::string t, r.GetString());
    req.required_types.push_back(std::move(t));
  }
  PDS2_ASSIGN_OR_RETURN(uint32_t n_constraints, r.GetU32());
  for (uint32_t i = 0; i < n_constraints; ++i) {
    PropertyConstraint c;
    PDS2_ASSIGN_OR_RETURN(uint8_t kind, r.GetU8());
    if (kind > 1) return Status::Corruption("invalid constraint kind");
    c.kind = static_cast<PropertyConstraint::Kind>(kind);
    PDS2_ASSIGN_OR_RETURN(c.key, r.GetString());
    PDS2_ASSIGN_OR_RETURN(c.min, r.GetDouble());
    PDS2_ASSIGN_OR_RETURN(c.max, r.GetDouble());
    PDS2_ASSIGN_OR_RETURN(c.value, r.GetString());
    req.constraints.push_back(std::move(c));
  }
  PDS2_ASSIGN_OR_RETURN(req.min_records, r.GetU64());
  return req;
}

}  // namespace pds2::storage
