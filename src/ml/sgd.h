#ifndef PDS2_ML_SGD_H_
#define PDS2_ML_SGD_H_

#include "common/rng.h"
#include "ml/dataset.h"
#include "ml/model.h"

namespace pds2::ml {

/// Mini-batch SGD hyper-parameters.
struct SgdConfig {
  double learning_rate = 0.1;
  size_t epochs = 5;
  size_t batch_size = 16;
  double l2 = 0.0;  // weight decay coefficient
};

/// Differential-privacy options for DP-SGD (per-example gradient clipping
/// plus Gaussian noise on the summed batch gradient).
struct DpConfig {
  bool enabled = false;
  double clip_norm = 1.0;
  double noise_multiplier = 0.0;  // sigma; noise stddev = sigma * clip_norm
};

/// Summary of a training run.
struct TrainStats {
  size_t steps = 0;             // gradient steps taken
  double final_train_loss = 0;  // mean loss after training
};

/// Trains `model` in place with mini-batch SGD. With `dp.enabled`, runs
/// DP-SGD instead: each example's gradient is clipped to dp.clip_norm, the
/// batch sum is perturbed with N(0, (sigma*clip)^2) per coordinate, then
/// averaged. Empty datasets are a no-op.
TrainStats Train(Model& model, const Dataset& data, const SgdConfig& config,
                 common::Rng& rng, const DpConfig& dp = {});

}  // namespace pds2::ml

#endif  // PDS2_ML_SGD_H_
