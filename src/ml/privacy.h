#ifndef PDS2_ML_PRIVACY_H_
#define PDS2_ML_PRIVACY_H_

#include <cstddef>

#include "ml/dataset.h"
#include "ml/model.h"

namespace pds2::ml {

/// (epsilon, delta) differential-privacy estimate for `steps` applications
/// of the Gaussian mechanism with the given noise multiplier (sigma,
/// relative to the clipping bound, i.e. sensitivity 1). Uses the analytic
/// single-shot bound eps_step = sqrt(2 ln(1.25/delta)) / sigma combined
/// with advanced composition:
///   eps_total = sqrt(2 k ln(1/delta)) * eps + k * eps * (e^eps - 1).
/// Infinite when sigma == 0.
double GaussianDpEpsilon(double noise_multiplier, size_t steps, double delta);

/// Result of a loss-threshold membership-inference attack (the standard
/// Yeom-style attack: training members tend to have lower loss).
struct MembershipAttackResult {
  double attack_accuracy = 0.5;  // best balanced accuracy over thresholds
  double advantage = 0.0;        // 2 * (accuracy - 0.5), in [0, 1]
  double mean_member_loss = 0.0;
  double mean_nonmember_loss = 0.0;
};

/// Runs the attack: scores every member/non-member example by model loss
/// and finds the threshold maximizing balanced accuracy. An advantage near
/// zero means the model leaks (almost) no membership information through
/// its losses — the property DP training should restore (paper §IV-D).
MembershipAttackResult MembershipInferenceAttack(const Model& model,
                                                 const Dataset& members,
                                                 const Dataset& nonmembers);

}  // namespace pds2::ml

#endif  // PDS2_ML_PRIVACY_H_
