#include "ml/privacy.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace pds2::ml {

double GaussianDpEpsilon(double noise_multiplier, size_t steps, double delta) {
  if (noise_multiplier <= 0.0 || steps == 0) {
    return std::numeric_limits<double>::infinity();
  }
  const double eps_step =
      std::sqrt(2.0 * std::log(1.25 / delta)) / noise_multiplier;
  const double k = static_cast<double>(steps);
  return std::sqrt(2.0 * k * std::log(1.0 / delta)) * eps_step +
         k * eps_step * (std::exp(eps_step) - 1.0);
}

MembershipAttackResult MembershipInferenceAttack(const Model& model,
                                                 const Dataset& members,
                                                 const Dataset& nonmembers) {
  MembershipAttackResult result;
  if (members.Size() == 0 || nonmembers.Size() == 0) return result;

  std::vector<double> member_losses(members.Size());
  std::vector<double> nonmember_losses(nonmembers.Size());
  double member_sum = 0.0, nonmember_sum = 0.0;
  for (size_t i = 0; i < members.Size(); ++i) {
    member_losses[i] = model.ExampleLoss(members.x[i], members.y[i]);
    member_sum += member_losses[i];
  }
  for (size_t i = 0; i < nonmembers.Size(); ++i) {
    nonmember_losses[i] = model.ExampleLoss(nonmembers.x[i], nonmembers.y[i]);
    nonmember_sum += nonmember_losses[i];
  }
  result.mean_member_loss = member_sum / static_cast<double>(members.Size());
  result.mean_nonmember_loss =
      nonmember_sum / static_cast<double>(nonmembers.Size());

  // Sweep thresholds: predict "member" when loss <= t. Candidate
  // thresholds are all observed loss values.
  std::vector<double> thresholds = member_losses;
  thresholds.insert(thresholds.end(), nonmember_losses.begin(),
                    nonmember_losses.end());
  std::sort(thresholds.begin(), thresholds.end());
  thresholds.erase(std::unique(thresholds.begin(), thresholds.end()),
                   thresholds.end());

  std::sort(member_losses.begin(), member_losses.end());
  std::sort(nonmember_losses.begin(), nonmember_losses.end());

  double best_acc = 0.5;
  for (double t : thresholds) {
    // True positive rate: members with loss <= t.
    const double tpr =
        static_cast<double>(std::upper_bound(member_losses.begin(),
                                             member_losses.end(), t) -
                            member_losses.begin()) /
        static_cast<double>(member_losses.size());
    const double fpr =
        static_cast<double>(std::upper_bound(nonmember_losses.begin(),
                                             nonmember_losses.end(), t) -
                            nonmember_losses.begin()) /
        static_cast<double>(nonmember_losses.size());
    const double balanced_acc = 0.5 * (tpr + (1.0 - fpr));
    best_acc = std::max(best_acc, balanced_acc);
  }

  result.attack_accuracy = best_acc;
  result.advantage = 2.0 * (best_acc - 0.5);
  return result;
}

}  // namespace pds2::ml
