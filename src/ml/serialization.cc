#include "ml/serialization.h"

#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/serial.h"

namespace pds2::ml {

using common::Bytes;
using common::Reader;
using common::Result;
using common::Status;
using common::Writer;

common::Bytes SerializeModel(const Model& model) {
  Writer w;
  w.PutString("pds2.model.v1");
  w.PutString(model.Architecture());
  w.PutDoubleVector(model.GetParams());
  return w.Take();
}

namespace {

// Splits "kind:a:b" into tokens.
std::vector<std::string> SplitColon(const std::string& s) {
  std::vector<std::string> out;
  size_t begin = 0;
  for (;;) {
    const size_t colon = s.find(':', begin);
    if (colon == std::string::npos) {
      out.push_back(s.substr(begin));
      return out;
    }
    out.push_back(s.substr(begin, colon - begin));
    begin = colon + 1;
  }
}

Result<size_t> ParseDim(const std::string& token) {
  if (token.empty()) return Status::Corruption("empty dimension");
  char* end = nullptr;
  const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || v == 0 || v > 1'000'000) {
    return Status::Corruption("bad dimension: " + token);
  }
  return static_cast<size_t>(v);
}

}  // namespace

Result<std::unique_ptr<Model>> DeserializeModel(const Bytes& data) {
  Reader r(data);
  PDS2_ASSIGN_OR_RETURN(std::string magic, r.GetString());
  if (magic != "pds2.model.v1") {
    return Status::Corruption("not a model snapshot");
  }
  PDS2_ASSIGN_OR_RETURN(std::string architecture, r.GetString());
  PDS2_ASSIGN_OR_RETURN(Vec params, r.GetDoubleVector());
  if (!r.AtEnd()) return Status::Corruption("trailing bytes in snapshot");

  const std::vector<std::string> tokens = SplitColon(architecture);
  std::unique_ptr<Model> model;
  if (tokens[0] == "linear" && tokens.size() == 2) {
    PDS2_ASSIGN_OR_RETURN(size_t d, ParseDim(tokens[1]));
    model = std::make_unique<LinearRegressionModel>(d);
  } else if (tokens[0] == "logistic" && tokens.size() == 2) {
    PDS2_ASSIGN_OR_RETURN(size_t d, ParseDim(tokens[1]));
    model = std::make_unique<LogisticRegressionModel>(d);
  } else if (tokens[0] == "softmax" && tokens.size() == 3) {
    PDS2_ASSIGN_OR_RETURN(size_t d, ParseDim(tokens[1]));
    PDS2_ASSIGN_OR_RETURN(size_t classes, ParseDim(tokens[2]));
    if (classes < 2) return Status::Corruption("softmax needs >= 2 classes");
    model = std::make_unique<SoftmaxRegressionModel>(d, classes);
  } else if (tokens[0] == "mlp" && tokens.size() == 3) {
    PDS2_ASSIGN_OR_RETURN(size_t d, ParseDim(tokens[1]));
    PDS2_ASSIGN_OR_RETURN(size_t hidden, ParseDim(tokens[2]));
    common::Rng init_rng(0);  // initialization is overwritten by SetParams
    model = std::make_unique<MlpModel>(d, hidden, init_rng);
  } else {
    return Status::InvalidArgument("unknown architecture: " + architecture);
  }

  if (params.size() != model->NumParams()) {
    return Status::Corruption("parameter count does not match architecture");
  }
  model->SetParams(params);
  return model;
}

}  // namespace pds2::ml
