#ifndef PDS2_ML_DATASET_H_
#define PDS2_ML_DATASET_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "ml/linalg.h"

namespace pds2::ml {

/// A labelled dataset: one feature row per example plus a numeric label
/// (class index for classification, target value for regression).
struct Dataset {
  std::vector<Vec> x;
  std::vector<double> y;

  size_t Size() const { return x.size(); }
  size_t NumFeatures() const { return x.empty() ? 0 : x[0].size(); }

  /// Appends all examples of `other` (feature widths must match).
  void Append(const Dataset& other);
  /// New dataset containing the examples at `indices`.
  Dataset Subset(const std::vector<size_t>& indices) const;
};

// ---------------------------------------------------------------------------
// Synthetic generators. All experiment workloads are generated (the paper's
// IoT user data is unavailable by construction); generators are
// deterministic given the Rng.

/// Binary classification: two Gaussian clusters in d dimensions whose means
/// are `separation` apart along a random direction. Labels 0/1.
Dataset MakeTwoGaussians(size_t n, size_t d, double separation,
                         common::Rng& rng);

/// Linear regression: y = w.x + b + noise, with the true weights returned
/// through `w_true` (bias appended last) for recovery checks.
Dataset MakeLinearRegression(size_t n, size_t d, double noise_stddev,
                             common::Rng& rng, Vec* w_true = nullptr);

/// Multiclass: `classes` Gaussian clusters at random centers. Labels are
/// class indices 0..classes-1.
Dataset MakeGaussianClusters(size_t n, size_t d, size_t classes,
                             double spread, common::Rng& rng);

/// Flips the label of each example with probability `rate` (binary labels
/// only). Models a low-quality or malicious data provider.
void CorruptLabels(Dataset& data, double rate, common::Rng& rng);

// ---------------------------------------------------------------------------
// Splitting and partitioning.

/// Random (train, test) split; `test_fraction` in (0, 1).
std::pair<Dataset, Dataset> TrainTestSplit(const Dataset& data,
                                           double test_fraction,
                                           common::Rng& rng);

/// Shuffles and splits into `k` near-equal IID partitions.
std::vector<Dataset> PartitionIid(const Dataset& data, size_t k,
                                  common::Rng& rng);

/// Label-skewed partitioning: examples are sorted by label and dealt out in
/// contiguous shards, so each partition sees few labels — the standard
/// non-IID stress for decentralized learning.
std::vector<Dataset> PartitionByLabel(const Dataset& data, size_t k,
                                      size_t shards_per_node,
                                      common::Rng& rng);

/// Partitions with heterogeneous sizes drawn proportionally to `weights`
/// (each weight > 0). Every example lands in exactly one partition.
std::vector<Dataset> PartitionWeighted(const Dataset& data,
                                       const std::vector<double>& weights,
                                       common::Rng& rng);

}  // namespace pds2::ml

#endif  // PDS2_ML_DATASET_H_
