#include "ml/sgd.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace pds2::ml {

TrainStats Train(Model& model, const Dataset& data, const SgdConfig& config,
                 common::Rng& rng, const DpConfig& dp) {
  TrainStats stats;
  if (data.Size() == 0) return stats;
  assert(config.batch_size > 0);

  const size_t n = data.Size();
  const size_t num_params = model.NumParams();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  Vec batch_grad(num_params);
  Vec example_grad(num_params);

  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t start = 0; start < n; start += config.batch_size) {
      const size_t end = std::min(n, start + config.batch_size);
      const double batch_n = static_cast<double>(end - start);
      std::fill(batch_grad.begin(), batch_grad.end(), 0.0);

      if (dp.enabled) {
        // DP-SGD: clip each example's gradient before summing.
        for (size_t k = start; k < end; ++k) {
          const size_t i = order[k];
          std::fill(example_grad.begin(), example_grad.end(), 0.0);
          model.AccumulateGradient(data.x[i], data.y[i], example_grad);
          const double norm = Norm2(example_grad);
          const double factor =
              norm > dp.clip_norm ? dp.clip_norm / norm : 1.0;
          Axpy(factor, example_grad, batch_grad);
        }
        // Gaussian noise calibrated to the clipping bound.
        const double sigma = dp.noise_multiplier * dp.clip_norm;
        if (sigma > 0.0) {
          for (double& g : batch_grad) g += rng.NextGaussian(0.0, sigma);
        }
      } else {
        for (size_t k = start; k < end; ++k) {
          const size_t i = order[k];
          model.AccumulateGradient(data.x[i], data.y[i], batch_grad);
        }
      }

      Vec params = model.GetParams();
      if (config.l2 > 0.0) Axpy(config.l2 * batch_n, params, batch_grad);
      Axpy(-config.learning_rate / batch_n, batch_grad, params);
      model.SetParams(params);
      ++stats.steps;
    }
  }

  stats.final_train_loss = model.MeanLoss(data);
  return stats;
}

}  // namespace pds2::ml
