#include "ml/metrics.h"

#include <algorithm>
#include <vector>

namespace pds2::ml {

double Accuracy(const Model& model, const Dataset& data) {
  if (data.Size() == 0) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < data.Size(); ++i) {
    if (model.PredictLabel(data.x[i]) == data.y[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.Size());
}

double MeanSquaredError(const Model& model, const Dataset& data) {
  if (data.Size() == 0) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < data.Size(); ++i) {
    const double err = model.PredictLabel(data.x[i]) - data.y[i];
    total += err * err;
  }
  return total / static_cast<double>(data.Size());
}

double MeanLoss(const Model& model, const Dataset& data) {
  return model.MeanLoss(data);
}

double AucRoc(const Dataset& data,
              const std::function<double(const Vec&)>& score) {
  // Rank statistic: AUC = (sum of positive ranks - n+(n+ + 1)/2) / (n+ n-).
  struct Scored {
    double s;
    bool positive;
  };
  std::vector<Scored> scored;
  scored.reserve(data.Size());
  size_t positives = 0;
  for (size_t i = 0; i < data.Size(); ++i) {
    const bool positive = data.y[i] > 0.5;
    positives += positive ? 1 : 0;
    scored.push_back({score(data.x[i]), positive});
  }
  const size_t negatives = data.Size() - positives;
  if (positives == 0 || negatives == 0) return 0.5;

  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) { return a.s < b.s; });

  // Assign average ranks to ties.
  double positive_rank_sum = 0.0;
  size_t i = 0;
  while (i < scored.size()) {
    size_t j = i;
    while (j < scored.size() && scored[j].s == scored[i].s) ++j;
    const double avg_rank = (static_cast<double>(i + 1) +
                             static_cast<double>(j)) / 2.0;  // 1-based
    for (size_t k = i; k < j; ++k) {
      if (scored[k].positive) positive_rank_sum += avg_rank;
    }
    i = j;
  }
  const double n_pos = static_cast<double>(positives);
  const double n_neg = static_cast<double>(negatives);
  return (positive_rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg);
}

double AucRoc(const LogisticRegressionModel& model, const Dataset& data) {
  return AucRoc(data,
                [&model](const Vec& x) { return model.PredictProbability(x); });
}

}  // namespace pds2::ml
