#include "ml/dataset.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace pds2::ml {

void Dataset::Append(const Dataset& other) {
  assert(x.empty() || other.x.empty() ||
         x[0].size() == other.x[0].size());
  x.insert(x.end(), other.x.begin(), other.x.end());
  y.insert(y.end(), other.y.begin(), other.y.end());
}

Dataset Dataset::Subset(const std::vector<size_t>& indices) const {
  Dataset out;
  out.x.reserve(indices.size());
  out.y.reserve(indices.size());
  for (size_t i : indices) {
    assert(i < Size());
    out.x.push_back(x[i]);
    out.y.push_back(y[i]);
  }
  return out;
}

Dataset MakeTwoGaussians(size_t n, size_t d, double separation,
                         common::Rng& rng) {
  assert(d > 0);
  // Random unit direction for the class offset.
  Vec direction(d);
  for (double& v : direction) v = rng.NextGaussian();
  const double norm = Norm2(direction);
  for (double& v : direction) v /= norm;

  Dataset data;
  data.x.reserve(n);
  data.y.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double label = rng.NextBool(0.5) ? 1.0 : 0.0;
    const double offset = (label > 0.5 ? 0.5 : -0.5) * separation;
    Vec row(d);
    for (size_t j = 0; j < d; ++j) {
      row[j] = rng.NextGaussian() + offset * direction[j];
    }
    data.x.push_back(std::move(row));
    data.y.push_back(label);
  }
  return data;
}

Dataset MakeLinearRegression(size_t n, size_t d, double noise_stddev,
                             common::Rng& rng, Vec* w_true) {
  Vec w(d + 1);  // last entry is the bias
  for (double& v : w) v = rng.NextGaussian();
  if (w_true != nullptr) *w_true = w;

  Dataset data;
  data.x.reserve(n);
  data.y.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Vec row(d);
    for (double& v : row) v = rng.NextGaussian();
    double target = w[d];
    for (size_t j = 0; j < d; ++j) target += w[j] * row[j];
    target += rng.NextGaussian(0.0, noise_stddev);
    data.x.push_back(std::move(row));
    data.y.push_back(target);
  }
  return data;
}

Dataset MakeGaussianClusters(size_t n, size_t d, size_t classes,
                             double spread, common::Rng& rng) {
  assert(classes >= 2);
  std::vector<Vec> centers(classes, Vec(d));
  for (auto& c : centers) {
    for (double& v : c) v = rng.NextGaussian(0.0, spread);
  }
  Dataset data;
  data.x.reserve(n);
  data.y.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t cls = rng.NextU64(classes);
    Vec row(d);
    for (size_t j = 0; j < d; ++j) row[j] = centers[cls][j] + rng.NextGaussian();
    data.x.push_back(std::move(row));
    data.y.push_back(static_cast<double>(cls));
  }
  return data;
}

void CorruptLabels(Dataset& data, double rate, common::Rng& rng) {
  for (double& label : data.y) {
    if (rng.NextBool(rate)) label = label > 0.5 ? 0.0 : 1.0;
  }
}

std::pair<Dataset, Dataset> TrainTestSplit(const Dataset& data,
                                           double test_fraction,
                                           common::Rng& rng) {
  assert(test_fraction > 0.0 && test_fraction < 1.0);
  std::vector<size_t> idx(data.Size());
  std::iota(idx.begin(), idx.end(), 0);
  rng.Shuffle(idx);
  const size_t test_n = static_cast<size_t>(
      static_cast<double>(data.Size()) * test_fraction);
  std::vector<size_t> test_idx(idx.begin(), idx.begin() + static_cast<ptrdiff_t>(test_n));
  std::vector<size_t> train_idx(idx.begin() + static_cast<ptrdiff_t>(test_n), idx.end());
  return {data.Subset(train_idx), data.Subset(test_idx)};
}

std::vector<Dataset> PartitionIid(const Dataset& data, size_t k,
                                  common::Rng& rng) {
  assert(k > 0);
  std::vector<size_t> idx(data.Size());
  std::iota(idx.begin(), idx.end(), 0);
  rng.Shuffle(idx);
  std::vector<Dataset> parts(k);
  for (size_t i = 0; i < idx.size(); ++i) {
    parts[i % k].x.push_back(data.x[idx[i]]);
    parts[i % k].y.push_back(data.y[idx[i]]);
  }
  return parts;
}

std::vector<Dataset> PartitionByLabel(const Dataset& data, size_t k,
                                      size_t shards_per_node,
                                      common::Rng& rng) {
  assert(k > 0 && shards_per_node > 0);
  std::vector<size_t> idx(data.Size());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
    return data.y[a] < data.y[b];
  });

  const size_t total_shards = k * shards_per_node;
  const size_t shard_size = std::max<size_t>(1, idx.size() / total_shards);
  std::vector<size_t> shard_order(total_shards);
  std::iota(shard_order.begin(), shard_order.end(), 0);
  rng.Shuffle(shard_order);

  std::vector<Dataset> parts(k);
  for (size_t s = 0; s < total_shards; ++s) {
    const size_t node = s / shards_per_node;
    const size_t shard = shard_order[s];
    const size_t begin = shard * shard_size;
    const size_t end = (shard == total_shards - 1) ? idx.size()
                                                   : std::min(idx.size(), begin + shard_size);
    for (size_t i = begin; i < end; ++i) {
      parts[node].x.push_back(data.x[idx[i]]);
      parts[node].y.push_back(data.y[idx[i]]);
    }
  }
  return parts;
}

std::vector<Dataset> PartitionWeighted(const Dataset& data,
                                       const std::vector<double>& weights,
                                       common::Rng& rng) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    assert(w > 0.0);
    total += w;
  }
  std::vector<size_t> idx(data.Size());
  std::iota(idx.begin(), idx.end(), 0);
  rng.Shuffle(idx);

  std::vector<Dataset> parts(weights.size());
  // Cumulative allocation so that all examples are used exactly once.
  size_t assigned = 0;
  double cumulative = 0.0;
  for (size_t p = 0; p < weights.size(); ++p) {
    cumulative += weights[p];
    const size_t upto =
        (p == weights.size() - 1)
            ? idx.size()
            : static_cast<size_t>(cumulative / total *
                                  static_cast<double>(idx.size()));
    for (; assigned < upto; ++assigned) {
      parts[p].x.push_back(data.x[idx[assigned]]);
      parts[p].y.push_back(data.y[idx[assigned]]);
    }
  }
  return parts;
}

}  // namespace pds2::ml
