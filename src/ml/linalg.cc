#include "ml/linalg.h"

#include <cassert>
#include <cmath>

namespace pds2::ml {

double Dot(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

void Axpy(double alpha, const Vec& x, Vec& y) {
  assert(x.size() == y.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void Scale(double alpha, Vec& x) {
  for (double& v : x) v *= alpha;
}

double Norm2(const Vec& x) { return std::sqrt(Dot(x, x)); }

Vec Lerp(const Vec& a, const Vec& b, double t) {
  assert(a.size() == b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = (1.0 - t) * a[i] + t * b[i];
  return out;
}

Vec WeightedAverage(const std::vector<Vec>& vecs,
                    const std::vector<double>& weights) {
  assert(!vecs.empty());
  assert(vecs.size() == weights.size());
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);
  Vec out(vecs[0].size(), 0.0);
  for (size_t i = 0; i < vecs.size(); ++i) {
    assert(vecs[i].size() == out.size());
    Axpy(weights[i] / total, vecs[i], out);
  }
  return out;
}

Vec Matrix::MatVec(const Vec& x) const {
  assert(x.size() == cols_);
  Vec out(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    const double* row = &data_[r * cols_];
    for (size_t c = 0; c < cols_; ++c) sum += row[c] * x[c];
    out[r] = sum;
  }
  return out;
}

Vec Matrix::MatVecTransposed(const Vec& x) const {
  assert(x.size() == rows_);
  Vec out(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    for (size_t c = 0; c < cols_; ++c) out[c] += row[c] * x[r];
  }
  return out;
}

}  // namespace pds2::ml
