#ifndef PDS2_ML_LINALG_H_
#define PDS2_ML_LINALG_H_

#include <cstddef>
#include <vector>

namespace pds2::ml {

/// Dense vector of doubles. ML parameters and feature rows use this
/// directly; gossip learning merges models as flat Vec parameter blocks.
using Vec = std::vector<double>;

/// Dot product; vectors must have equal length.
double Dot(const Vec& a, const Vec& b);

/// y += alpha * x (in place).
void Axpy(double alpha, const Vec& x, Vec& y);

/// x *= alpha (in place).
void Scale(double alpha, Vec& x);

/// Euclidean norm.
double Norm2(const Vec& x);

/// Element-wise convex combination: (1 - t) * a + t * b.
Vec Lerp(const Vec& a, const Vec& b, double t);

/// Weighted average of several parameter vectors (weights need not be
/// normalized; they are divided by their sum). All vectors must share one
/// length and at least one weight must be positive.
Vec WeightedAverage(const std::vector<Vec>& vecs,
                    const std::vector<double>& weights);

/// Dense row-major matrix, minimal by design: the models here only need
/// matvec and outer-product accumulation.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols) : rows_(rows), cols_(cols),
                                     data_(rows * cols, 0.0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// out = M * x. x.size() must equal cols().
  Vec MatVec(const Vec& x) const;
  /// out = M^T * x. x.size() must equal rows().
  Vec MatVecTransposed(const Vec& x) const;

  Vec& data() { return data_; }
  const Vec& data() const { return data_; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  Vec data_;
};

}  // namespace pds2::ml

#endif  // PDS2_ML_LINALG_H_
