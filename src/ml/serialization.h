#ifndef PDS2_ML_SERIALIZATION_H_
#define PDS2_ML_SERIALIZATION_H_

#include <memory>

#include "common/bytes.h"
#include "common/result.h"
#include "ml/model.h"

namespace pds2::ml {

/// Self-describing model snapshot: architecture header + parameters.
/// Consumers persist purchased models with this; the snapshot can be
/// rehydrated without knowing the workload spec that produced it.
common::Bytes SerializeModel(const Model& model);

/// Rehydrates a model snapshot. Fails with Corruption on malformed input
/// and InvalidArgument on unknown architectures.
common::Result<std::unique_ptr<Model>> DeserializeModel(
    const common::Bytes& data);

}  // namespace pds2::ml

#endif  // PDS2_ML_SERIALIZATION_H_
