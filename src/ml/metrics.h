#ifndef PDS2_ML_METRICS_H_
#define PDS2_ML_METRICS_H_

#include <functional>

#include "ml/dataset.h"
#include "ml/model.h"

namespace pds2::ml {

/// Fraction of examples whose predicted label equals the true label
/// (classification). Empty datasets score 0.
double Accuracy(const Model& model, const Dataset& data);

/// Mean squared error between PredictLabel and y (regression).
double MeanSquaredError(const Model& model, const Dataset& data);

/// Mean per-example loss (the model's own loss function).
double MeanLoss(const Model& model, const Dataset& data);

/// Area under the ROC curve for a binary scorer. `score` maps a feature
/// row to a real number where higher means "more likely class 1"; labels
/// must be 0/1. Computed exactly via the rank statistic; ties get half
/// credit. Returns 0.5 when either class is absent.
double AucRoc(const Dataset& data,
              const std::function<double(const Vec&)>& score);

/// AUC of a LogisticRegressionModel / MlpModel-style probability scorer.
double AucRoc(const LogisticRegressionModel& model, const Dataset& data);

}  // namespace pds2::ml

#endif  // PDS2_ML_METRICS_H_
