#include "ml/model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pds2::ml {

namespace {

double Sigmoid(double z) {
  if (z >= 0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

// Clamped log for numerically safe cross-entropy.
double SafeLog(double p) { return std::log(std::max(p, 1e-12)); }

}  // namespace

double Model::MeanLoss(const Dataset& data) const {
  if (data.Size() == 0) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < data.Size(); ++i) {
    total += ExampleLoss(data.x[i], data.y[i]);
  }
  return total / static_cast<double>(data.Size());
}

// ---------------------------------------------------------------------------
// LinearRegressionModel

LinearRegressionModel::LinearRegressionModel(size_t num_features)
    : weights_(num_features + 1, 0.0) {}

std::unique_ptr<Model> LinearRegressionModel::Clone() const {
  return std::make_unique<LinearRegressionModel>(*this);
}

void LinearRegressionModel::SetParams(const Vec& params) {
  assert(params.size() == weights_.size());
  weights_ = params;
}

double LinearRegressionModel::PredictLabel(const Vec& x) const {
  assert(x.size() + 1 == weights_.size());
  double z = weights_.back();
  for (size_t i = 0; i < x.size(); ++i) z += weights_[i] * x[i];
  return z;
}

double LinearRegressionModel::ExampleLoss(const Vec& x, double y) const {
  const double err = PredictLabel(x) - y;
  return 0.5 * err * err;
}

void LinearRegressionModel::AccumulateGradient(const Vec& x, double y,
                                               Vec& grad) const {
  assert(grad.size() == weights_.size());
  const double err = PredictLabel(x) - y;
  for (size_t i = 0; i < x.size(); ++i) grad[i] += err * x[i];
  grad.back() += err;
}

// ---------------------------------------------------------------------------
// LogisticRegressionModel

LogisticRegressionModel::LogisticRegressionModel(size_t num_features)
    : weights_(num_features + 1, 0.0) {}

std::unique_ptr<Model> LogisticRegressionModel::Clone() const {
  return std::make_unique<LogisticRegressionModel>(*this);
}

void LogisticRegressionModel::SetParams(const Vec& params) {
  assert(params.size() == weights_.size());
  weights_ = params;
}

double LogisticRegressionModel::PredictProbability(const Vec& x) const {
  assert(x.size() + 1 == weights_.size());
  double z = weights_.back();
  for (size_t i = 0; i < x.size(); ++i) z += weights_[i] * x[i];
  return Sigmoid(z);
}

double LogisticRegressionModel::PredictLabel(const Vec& x) const {
  return PredictProbability(x) >= 0.5 ? 1.0 : 0.0;
}

double LogisticRegressionModel::ExampleLoss(const Vec& x, double y) const {
  const double p = PredictProbability(x);
  return -(y * SafeLog(p) + (1.0 - y) * SafeLog(1.0 - p));
}

void LogisticRegressionModel::AccumulateGradient(const Vec& x, double y,
                                                 Vec& grad) const {
  assert(grad.size() == weights_.size());
  const double err = PredictProbability(x) - y;
  for (size_t i = 0; i < x.size(); ++i) grad[i] += err * x[i];
  grad.back() += err;
}

// ---------------------------------------------------------------------------
// SoftmaxRegressionModel

SoftmaxRegressionModel::SoftmaxRegressionModel(size_t num_features,
                                               size_t num_classes)
    : num_features_(num_features),
      num_classes_(num_classes),
      params_((num_features + 1) * num_classes, 0.0) {
  assert(num_classes >= 2);
}

std::unique_ptr<Model> SoftmaxRegressionModel::Clone() const {
  return std::make_unique<SoftmaxRegressionModel>(*this);
}

void SoftmaxRegressionModel::SetParams(const Vec& params) {
  assert(params.size() == params_.size());
  params_ = params;
}

Vec SoftmaxRegressionModel::ClassScores(const Vec& x) const {
  assert(x.size() == num_features_);
  const size_t stride = num_features_ + 1;
  Vec logits(num_classes_);
  for (size_t c = 0; c < num_classes_; ++c) {
    const double* w = &params_[c * stride];
    double z = w[num_features_];
    for (size_t i = 0; i < num_features_; ++i) z += w[i] * x[i];
    logits[c] = z;
  }
  const double max_logit = *std::max_element(logits.begin(), logits.end());
  double sum = 0.0;
  for (double& z : logits) {
    z = std::exp(z - max_logit);
    sum += z;
  }
  for (double& z : logits) z /= sum;
  return logits;
}

double SoftmaxRegressionModel::PredictLabel(const Vec& x) const {
  const Vec probs = ClassScores(x);
  return static_cast<double>(
      std::max_element(probs.begin(), probs.end()) - probs.begin());
}

double SoftmaxRegressionModel::ExampleLoss(const Vec& x, double y) const {
  const Vec probs = ClassScores(x);
  const size_t cls = static_cast<size_t>(y);
  assert(cls < num_classes_);
  return -SafeLog(probs[cls]);
}

void SoftmaxRegressionModel::AccumulateGradient(const Vec& x, double y,
                                                Vec& grad) const {
  assert(grad.size() == params_.size());
  const Vec probs = ClassScores(x);
  const size_t stride = num_features_ + 1;
  const size_t true_cls = static_cast<size_t>(y);
  for (size_t c = 0; c < num_classes_; ++c) {
    const double err = probs[c] - (c == true_cls ? 1.0 : 0.0);
    double* g = &grad[c * stride];
    for (size_t i = 0; i < num_features_; ++i) g[i] += err * x[i];
    g[num_features_] += err;
  }
}

// ---------------------------------------------------------------------------
// MlpModel

MlpModel::MlpModel(size_t num_features, size_t hidden_units, common::Rng& rng)
    : num_features_(num_features),
      hidden_(hidden_units),
      params_(hidden_units * num_features + hidden_units + hidden_units + 1) {
  assert(hidden_units > 0);
  // Xavier-style initialization for the first layer; zeros elsewhere.
  const double scale = 1.0 / std::sqrt(static_cast<double>(num_features));
  for (size_t i = 0; i < hidden_ * num_features_; ++i) {
    params_[i] = rng.NextGaussian(0.0, scale);
  }
  const size_t w2_off = hidden_ * num_features_ + hidden_;
  const double scale2 = 1.0 / std::sqrt(static_cast<double>(hidden_));
  for (size_t i = 0; i < hidden_; ++i) {
    params_[w2_off + i] = rng.NextGaussian(0.0, scale2);
  }
}

std::unique_ptr<Model> MlpModel::Clone() const {
  return std::make_unique<MlpModel>(*this);
}

void MlpModel::SetParams(const Vec& params) {
  assert(params.size() == params_.size());
  params_ = params;
}

double MlpModel::PredictProbability(const Vec& x) const {
  assert(x.size() == num_features_);
  const double* w1 = params_.data();
  const double* b1 = w1 + hidden_ * num_features_;
  const double* w2 = b1 + hidden_;
  const double b2 = w2[hidden_];

  double out = b2;
  for (size_t h = 0; h < hidden_; ++h) {
    double z = b1[h];
    const double* row = w1 + h * num_features_;
    for (size_t i = 0; i < num_features_; ++i) z += row[i] * x[i];
    out += w2[h] * std::tanh(z);
  }
  return Sigmoid(out);
}

double MlpModel::PredictLabel(const Vec& x) const {
  return PredictProbability(x) >= 0.5 ? 1.0 : 0.0;
}

double MlpModel::ExampleLoss(const Vec& x, double y) const {
  const double p = PredictProbability(x);
  return -(y * SafeLog(p) + (1.0 - y) * SafeLog(1.0 - p));
}

void MlpModel::AccumulateGradient(const Vec& x, double y, Vec& grad) const {
  assert(grad.size() == params_.size());
  const double* w1 = params_.data();
  const double* b1 = w1 + hidden_ * num_features_;
  const double* w2 = b1 + hidden_;
  const double b2 = w2[hidden_];

  // Forward pass, keeping hidden activations.
  Vec a(hidden_);
  double out = b2;
  for (size_t h = 0; h < hidden_; ++h) {
    double z = b1[h];
    const double* row = w1 + h * num_features_;
    for (size_t i = 0; i < num_features_; ++i) z += row[i] * x[i];
    a[h] = std::tanh(z);
    out += w2[h] * a[h];
  }
  const double p = Sigmoid(out);
  const double delta_out = p - y;  // dL/d(pre-sigmoid output)

  // Backward pass.
  double* g_w1 = grad.data();
  double* g_b1 = g_w1 + hidden_ * num_features_;
  double* g_w2 = g_b1 + hidden_;
  g_w2[hidden_] += delta_out;  // b2
  for (size_t h = 0; h < hidden_; ++h) {
    g_w2[h] += delta_out * a[h];
    const double delta_h = delta_out * w2[h] * (1.0 - a[h] * a[h]);
    g_b1[h] += delta_h;
    double* g_row = g_w1 + h * num_features_;
    for (size_t i = 0; i < num_features_; ++i) g_row[i] += delta_h * x[i];
  }
}

}  // namespace pds2::ml
