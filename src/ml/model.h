#ifndef PDS2_ML_MODEL_H_
#define PDS2_ML_MODEL_H_

#include <memory>
#include <string>

#include "ml/dataset.h"
#include "ml/linalg.h"

namespace pds2::ml {

/// Abstract trainable model with a flat parameter vector. The flat-vector
/// view is what makes decentralized aggregation generic: gossip merging and
/// FedAvg both operate on GetParams()/SetParams() without knowing the
/// architecture.
class Model {
 public:
  virtual ~Model() = default;

  /// Deep copy with identical parameters.
  virtual std::unique_ptr<Model> Clone() const = 0;

  /// Self-describing architecture string ("logistic:5", "mlp:5:4",
  /// "softmax:5:3", "linear:5") used by the model snapshot format.
  virtual std::string Architecture() const = 0;

  virtual size_t NumParams() const = 0;
  virtual Vec GetParams() const = 0;
  virtual void SetParams(const Vec& params) = 0;

  /// Predicted label: class index for classifiers, value for regressors.
  virtual double PredictLabel(const Vec& x) const = 0;

  /// Loss of a single example under the current parameters.
  virtual double ExampleLoss(const Vec& x, double y) const = 0;

  /// Adds this example's loss gradient (w.r.t. the flat parameters) into
  /// `grad`, which must have NumParams() entries.
  virtual void AccumulateGradient(const Vec& x, double y, Vec& grad) const = 0;

  /// Mean loss over a dataset.
  double MeanLoss(const Dataset& data) const;
};

/// Ordinary least squares via SGD: y_hat = w.x + b, squared loss.
class LinearRegressionModel : public Model {
 public:
  explicit LinearRegressionModel(size_t num_features);

  std::unique_ptr<Model> Clone() const override;
  std::string Architecture() const override {
    return "linear:" + std::to_string(weights_.size() - 1);
  }
  size_t NumParams() const override { return weights_.size(); }
  Vec GetParams() const override { return weights_; }
  void SetParams(const Vec& params) override;
  double PredictLabel(const Vec& x) const override;
  double ExampleLoss(const Vec& x, double y) const override;
  void AccumulateGradient(const Vec& x, double y, Vec& grad) const override;

 private:
  Vec weights_;  // [w_0..w_{d-1}, bias]
};

/// Binary logistic regression: p = sigmoid(w.x + b), log loss, labels 0/1.
class LogisticRegressionModel : public Model {
 public:
  explicit LogisticRegressionModel(size_t num_features);

  std::unique_ptr<Model> Clone() const override;
  std::string Architecture() const override {
    return "logistic:" + std::to_string(weights_.size() - 1);
  }
  size_t NumParams() const override { return weights_.size(); }
  Vec GetParams() const override { return weights_; }
  void SetParams(const Vec& params) override;
  double PredictLabel(const Vec& x) const override;
  double ExampleLoss(const Vec& x, double y) const override;
  void AccumulateGradient(const Vec& x, double y, Vec& grad) const override;

  /// P(y = 1 | x).
  double PredictProbability(const Vec& x) const;

 private:
  Vec weights_;
};

/// Multiclass softmax regression with cross-entropy loss.
class SoftmaxRegressionModel : public Model {
 public:
  SoftmaxRegressionModel(size_t num_features, size_t num_classes);

  std::unique_ptr<Model> Clone() const override;
  std::string Architecture() const override {
    return "softmax:" + std::to_string(num_features_) + ":" +
           std::to_string(num_classes_);
  }
  size_t NumParams() const override { return params_.size(); }
  Vec GetParams() const override { return params_; }
  void SetParams(const Vec& params) override;
  double PredictLabel(const Vec& x) const override;
  double ExampleLoss(const Vec& x, double y) const override;
  void AccumulateGradient(const Vec& x, double y, Vec& grad) const override;

  size_t num_classes() const { return num_classes_; }

 private:
  Vec ClassScores(const Vec& x) const;  // softmax probabilities

  size_t num_features_;
  size_t num_classes_;
  Vec params_;  // per class: [w_0..w_{d-1}, bias]
};

/// One-hidden-layer MLP (tanh activation) with a sigmoid output for binary
/// classification. Deliberately small — the evaluation compares systems,
/// not architectures — but a genuine nonlinear model with backprop.
class MlpModel : public Model {
 public:
  MlpModel(size_t num_features, size_t hidden_units, common::Rng& rng);

  std::unique_ptr<Model> Clone() const override;
  std::string Architecture() const override {
    return "mlp:" + std::to_string(num_features_) + ":" +
           std::to_string(hidden_);
  }
  size_t NumParams() const override { return params_.size(); }
  Vec GetParams() const override { return params_; }
  void SetParams(const Vec& params) override;
  double PredictLabel(const Vec& x) const override;
  double ExampleLoss(const Vec& x, double y) const override;
  void AccumulateGradient(const Vec& x, double y, Vec& grad) const override;

  double PredictProbability(const Vec& x) const;

 private:
  // Layout: W1 (hidden x d) || b1 (hidden) || w2 (hidden) || b2 (1).
  size_t num_features_;
  size_t hidden_;
  Vec params_;
};

}  // namespace pds2::ml

#endif  // PDS2_ML_MODEL_H_
