#!/usr/bin/env python3
"""Validates the BENCH_parallel.json report against its documented schema.

BENCH_parallel.json is the shared flat-object report written by
bench::MergeParallelReport ({"section": {...}, ...}). This checks the
sections the parallel-execution work commits to (EXPERIMENTS.md E15 and
the E6b consensus sweep): required keys, cell shapes, and the recorded
acceptance floors — 4-thread apply >= 2.0x over the sequential baseline
at 0% conflict and >= 1.0x at 100%. Wired into CTest under the
`parallel` label against the checked-in artifact; also usable by hand:

  check_bench_schema.py BENCH_parallel.json

Exits 0 when every check passes, 1 otherwise. Stdlib only.
"""

import argparse
import json
import sys

_errors = []


def fail(msg):
    _errors.append(msg)


def is_num(x):
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def require(obj, where, key, pred, what):
    if key not in obj:
        fail("%s: missing required key %r" % (where, key))
        return None
    if not pred(obj[key]):
        fail("%s: key %r must be %s" % (where, key, what))
        return None
    return obj[key]


def check_consensus(section):
    where = "consensus"
    require(section, where, "txs_per_block", is_num, "a number")
    require(section, where, "per_entry_verify_ms", is_num, "a number")
    require(section, where, "cached_apply_extra_verifies",
            lambda v: is_num(v) and v == 0,
            "0 (the warm cache must re-verify nothing)")
    sweep = require(section, where, "sweep",
                    lambda v: isinstance(v, list) and v, "a non-empty list")
    if sweep is None:
        return
    for i, entry in enumerate(sweep):
        w = "consensus sweep[%d]" % i
        if not isinstance(entry, dict):
            fail("%s: not an object" % w)
            continue
        require(entry, w, "threads", is_num, "a number")
        require(entry, w, "apply_ms", is_num, "a number")
        require(entry, w, "speedup", is_num, "a number")


CELL_KEYS = [
    "per_entry_verify_ms", "serial_exec_ms", "sequential_baseline_ms",
    "apply_ms_1t", "apply_ms_2t", "apply_ms_4t",
    "speedup_vs_sequential_4t", "lanes_per_block",
    "parallel_blocks", "serial_blocks", "aborted_speculations",
]


def check_parallel_exec(section):
    where = "parallel_exec"
    require(section, where, "accounts", is_num, "a number")
    require(section, where, "txs_per_block", is_num, "a number")
    require(section, where, "hardware_threads", is_num, "a number")
    cells = require(section, where, "cells",
                    lambda v: isinstance(v, list) and v, "a non-empty list")
    if cells is None:
        return
    by_conflict = {}
    for i, cell in enumerate(cells):
        w = "parallel_exec cells[%d]" % i
        if not isinstance(cell, dict):
            fail("%s: not an object" % w)
            continue
        conflict = require(cell, w, "conflict_pct", is_num, "a number")
        for key in CELL_KEYS:
            require(cell, w, key, is_num, "a number")
        if conflict is not None:
            by_conflict[conflict] = cell

    missing = sorted(set([0, 25, 50, 100]) - set(by_conflict))
    if missing:
        fail("parallel_exec: conflict sweep missing cells for %s%%" % missing)
        return

    # The recorded acceptance floors for the optimistic lane executor.
    free = by_conflict[0].get("speedup_vs_sequential_4t", 0)
    if free < 2.0:
        fail("parallel_exec: 0%%-conflict 4-thread speedup %.2f < 2.0" % free)
    contended = by_conflict[100].get("speedup_vs_sequential_4t", 0)
    if contended < 1.0:
        fail("parallel_exec: 100%%-conflict 4-thread speedup %.2f < 1.0"
             % contended)
    # At full contention every transfer shares the hot account: one lane,
    # so the executor must have fallen back to the serial path.
    if by_conflict[100].get("parallel_blocks", -1) != 0:
        fail("parallel_exec: 100%%-conflict cell took the lane path")
    if by_conflict[0].get("parallel_blocks", 0) < 1:
        fail("parallel_exec: 0%%-conflict cell never took the lane path")
    if by_conflict[0].get("lanes_per_block", 0) <= 1:
        fail("parallel_exec: 0%%-conflict cell has <= 1 lane per block")


def check_shapley(section):
    require(section, "shapley", "all_identical", lambda v: v is True,
            "true (bit-identical results at every pool size)")


def check_byzantine(doc):
    """BENCH_byzantine.json: the E16 accountability safety floors.

    These are pinned, not advisory: 0 honest-fork divergences, a 100%
    slash rate for every provable behaviour, no slash for withholding
    (it is not provable), exact supply conservation, and bit-identical
    honest heads across executor pool sizes.
    """
    where = "byzantine summary"
    summary = doc.get("summary")
    if not isinstance(summary, dict):
        fail("report: missing required section 'summary'")
    else:
        require(summary, where, "honest_divergences",
                lambda v: is_num(v) and v == 0,
                "0 (honest replicas must never fork)")
        require(summary, where, "provable_slash_rate",
                lambda v: is_num(v) and v == 1.0,
                "1.0 (every provable offender loses its stake)")
        require(summary, where, "withhold_slashed",
                lambda v: is_num(v) and v == 0,
                "0 (withholding is not provable, never slashed)")
        require(summary, where, "supply_conserved", lambda v: v is True,
                "true (balances + stakes + burned is invariant)")
        require(summary, where, "threads_identical", lambda v: v is True,
                "true (slashing is consensus-critical and deterministic)")
        require(summary, where, "executor_floors_ok", lambda v: v is True,
                "true (every executor fraud completed, slashed, conserved)")

    section = doc.get("validator_accountability")
    if not isinstance(section, dict):
        fail("report: missing required section 'validator_accountability'")
    else:
        cells = require(section, "validator_accountability", "cells",
                        lambda v: isinstance(v, list) and v,
                        "a non-empty list")
        behaviors = set()
        for i, cell in enumerate(cells or []):
            w = "validator_accountability cells[%d]" % i
            if not isinstance(cell, dict):
                fail("%s: not an object" % w)
                continue
            behaviors.add(cell.get("behavior"))
            require(cell, w, "honest_divergences",
                    lambda v: is_num(v) and v == 0, "0")
            require(cell, w, "supply_conserved", lambda v: v is True, "true")
            expected = 1.0 if cell.get("provable") else 0.0
            require(cell, w, "slash_rate",
                    lambda v, e=expected: is_num(v) and v == e,
                    "%.1f for provable=%s" % (expected,
                                              cell.get("provable")))
        missing = {"equivocate", "invalid_root", "gas_cheat",
                   "withhold"} - behaviors
        if missing:
            fail("validator_accountability: missing behaviours %s"
                 % sorted(missing))

    section = doc.get("executor_accountability")
    if not isinstance(section, dict):
        fail("report: missing required section 'executor_accountability'")
    else:
        cells = require(section, "executor_accountability", "cells",
                        lambda v: isinstance(v, list) and v,
                        "a non-empty list")
        faults = set()
        for i, cell in enumerate(cells or []):
            w = "executor_accountability cells[%d]" % i
            if not isinstance(cell, dict):
                fail("%s: not an object" % w)
                continue
            faults.add(cell.get("fault"))
            require(cell, w, "completion_rate",
                    lambda v: is_num(v) and v == 1.0,
                    "1.0 (a cheating minority cannot stall the lifecycle)")
            require(cell, w, "slash_rate", lambda v: is_num(v) and v == 1.0,
                    "1.0 (every cheating executor forfeits its bond)")
            require(cell, w, "supply_conserved", lambda v: v is True, "true")
            require(cell, w, "avg_tokens_burned",
                    lambda v: is_num(v) and v > 0,
                    "> 0 (half of each forfeited bond is destroyed)")
        missing = {"wrong_vote", "tampered_update",
                   "false_attestation"} - faults
        if missing:
            fail("executor_accountability: missing faults %s"
                 % sorted(missing))


def check_discovery(doc):
    """BENCH_discovery.json: the E17 store/memoization/discovery floors.

    Pinned acceptance criteria: every pair's second run hit the cache, a
    cache hit is at least 5x faster than training from scratch, every
    substituted artifact verified against its chain anchor (rate exactly
    1.0), the chunked store actually deduplicated overlapping revisions
    (ratio > 1.0), and the gossip index converged bit-identically across
    two runs of the same fault-injected seed.
    """
    where = "discovery"
    section = doc.get("discovery")
    if not isinstance(section, dict):
        fail("report: missing required section 'discovery'")
        return
    pairs = require(section, where, "pairs",
                    lambda v: is_num(v) and v > 0, "a positive number")
    require(section, where, "cache_hits",
            lambda v: is_num(v) and v == pairs,
            "== pairs (every identical rerun must hit the cache)")
    require(section, where, "hit_miss_speedup_median",
            lambda v: is_num(v) and v >= 5.0,
            ">= 5.0 (cache hit must dominate train-from-scratch)")
    require(section, where, "artifact_verify_rate",
            lambda v: is_num(v) and v == 1.0,
            "1.0 (every substituted artifact verifies against its anchor)")
    require(section, where, "dedup_ratio",
            lambda v: is_num(v) and v > 1.0,
            "> 1.0 (overlapping revisions must share chunks)")
    require(section, where, "discovery_converge_s",
            lambda v: is_num(v) and v > 0,
            "> 0 (the churned gossip index must converge)")
    require(section, where, "discovery_deterministic", lambda v: v is True,
            "true (same seed -> bit-identical digests)")

    metadata = doc.get("metadata")
    if not isinstance(metadata, dict):
        fail("report: missing required section 'metadata'")
    else:
        require(metadata, "metadata", "threads_effective",
                lambda v: is_num(v) and v >= 1, ">= 1")
        require(metadata, "metadata", "hardware_concurrency",
                lambda v: is_num(v) and v >= 1, ">= 1")
        require(metadata, "metadata", "pds2_threads_env",
                lambda v: isinstance(v, str), "a string")


def check_scale(doc):
    """BENCH_scale.json: the E18 NetSim-at-scale floors.

    Pinned acceptance criteria: the churn + rumor-convergence sweep reaches
    at least 10^5 nodes, the simulator sustains at least 100k events/sec at
    some sweep point, the 1-vs-N-thread rerun was bit-identical, and every
    churned sweep cell actually converged (99.9% infected within the sim
    budget) while exercising churn.
    """
    where = "scale"
    section = doc.get("scale")
    if not isinstance(section, dict):
        fail("report: missing required section 'scale'")
        return
    require(section, where, "max_nodes",
            lambda v: is_num(v) and v >= 100_000,
            ">= 100000 (the sweep must reach 10^5 nodes)")
    require(section, where, "max_events_per_sec",
            lambda v: is_num(v) and v >= 100_000,
            ">= 100000 events/sec at the best sweep point")
    require(section, where, "deterministic_across_threads",
            lambda v: v is True,
            "true (1 vs N threads must be bit-identical)")
    sweep = require(section, where, "sweep",
                    lambda v: isinstance(v, list) and v, "a non-empty list")
    for i, cell in enumerate(sweep or []):
        w = "scale sweep[%d]" % i
        if not isinstance(cell, dict):
            fail("%s: not an object" % w)
            continue
        require(cell, w, "nodes", lambda v: is_num(v) and v > 0,
                "a positive number")
        require(cell, w, "events", lambda v: is_num(v) and v > 0,
                "a positive number")
        require(cell, w, "events_per_sec", lambda v: is_num(v) and v > 0,
                "a positive number")
        require(cell, w, "converge_sim_s", lambda v: is_num(v) and v > 0,
                "> 0 (the epidemic must have converged)")
        require(cell, w, "infected_fraction",
                lambda v: is_num(v) and v >= 0.999,
                ">= 0.999 (99.9% of nodes infected)")
        require(cell, w, "churn_transitions", lambda v: is_num(v) and v > 0,
                "> 0 (the sweep runs under churn)")
    # The 10^6-node smoke is optional (env-skippable on slow hosts), but a
    # recorded run must be self-consistent.
    smoke = section.get("million_smoke")
    if isinstance(smoke, dict) and smoke.get("ran") is True:
        require(smoke, "scale million_smoke", "nodes",
                lambda v: is_num(v) and v >= 1_000_000, ">= 1000000")
        require(smoke, "scale million_smoke", "events",
                lambda v: is_num(v) and v > 0, "a positive number")
        require(smoke, "scale million_smoke", "events_per_sec",
                lambda v: is_num(v) and v > 0, "a positive number")


def check_observability(doc):
    """BENCH_observability.json: the E12/E19 observability floors.

    Pinned acceptance criteria for the health plane (E19): enabling
    per-block sampling + full-rule-pack evaluation costs at most 2% of
    the lifecycle, a constructed-but-unattached plane costs ~nothing,
    every injected fault class fires exactly its mapped alerts (precision
    and recall both 1.0), an alert lands within 3 samples of the first
    bad sample, and the alert stream digest is bit-identical at 1 vs N
    pool threads. The E12 section is shape-checked only — its wall-clock
    deltas are noisy on shared hosts and the E19 arms supersede them.
    """
    e12 = doc.get("marketplace_lifecycle_overhead")
    if isinstance(e12, dict):
        where = "marketplace_lifecycle_overhead"
        require(e12, where, "trials", lambda v: is_num(v) and v > 0,
                "a positive number")
        require(e12, where, "enabled_overhead_pct", is_num, "a number")
        require(e12, where, "spans_per_lifecycle",
                lambda v: is_num(v) and v > 0,
                "> 0 (tracing must have recorded spans)")

    where = "health"
    section = doc.get("health")
    if not isinstance(section, dict):
        fail("report: missing required section 'health'")
        return
    require(section, where, "trials", lambda v: is_num(v) and v > 0,
            "a positive number")
    require(section, where, "enabled_overhead_pct",
            lambda v: is_num(v) and v <= 2.0,
            "<= 2.0 (sampling + rule evaluation within the budget)")
    require(section, where, "disabled_overhead_pct",
            lambda v: is_num(v) and v <= 1.0,
            "<= 1.0 (an unattached health plane costs ~nothing)")
    require(section, where, "samples_per_lifecycle",
            lambda v: is_num(v) and v > 0,
            "> 0 (the sampler must have run)")
    require(section, where, "rules_per_sample",
            lambda v: is_num(v) and v > 0,
            "> 0 (the default rule pack must be loaded)")
    require(section, where, "alert_precision",
            lambda v: is_num(v) and v == 1.0,
            "1.0 (no rule fires outside its mapped fault class)")
    require(section, where, "alert_recall",
            lambda v: is_num(v) and v == 1.0,
            "1.0 (every injected fault class fires its mapped rules)")
    require(section, where, "max_detection_latency_samples",
            lambda v: is_num(v) and v <= 3,
            "<= 3 samples from first bad sample to fire")
    require(section, where, "threads_identical", lambda v: v is True,
            "true (same seed -> bit-identical alert stream at 1 vs N)")


def check_metadata_if_present(doc):
    """Shared thread-context metadata, validated wherever a report has it.

    Older committed artifacts predate the metadata emitter, so absence is
    not an error outside BENCH_discovery.json — but a present section must
    be well-formed.
    """
    metadata = doc.get("metadata")
    if not isinstance(metadata, dict):
        return
    require(metadata, "metadata", "threads_effective",
            lambda v: is_num(v) and v >= 1, ">= 1")
    require(metadata, "metadata", "hardware_concurrency",
            lambda v: is_num(v) and v >= 1, ">= 1")
    require(metadata, "metadata", "pds2_threads_env",
            lambda v: isinstance(v, str), "a string")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="BENCH_parallel.json to validate")
    args = parser.parse_args()

    try:
        with open(args.report, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print("FAIL: cannot parse %s: %s" % (args.report, e), file=sys.stderr)
        return 1
    if not isinstance(doc, dict):
        print("FAIL: report is not a JSON object", file=sys.stderr)
        return 1

    # BENCH_discovery.json is recognized by its "discovery" section and
    # validated against the E17 store/memoization floors.
    if "discovery" in doc:
        check_discovery(doc)
        if _errors:
            for msg in _errors:
                print("FAIL: %s" % msg, file=sys.stderr)
            print("%d schema violation(s)" % len(_errors), file=sys.stderr)
            return 1
        print("bench schema OK")
        return 0

    # BENCH_scale.json is recognized by its "scale" section and validated
    # against the E18 NetSim-at-scale floors.
    if "scale" in doc:
        check_scale(doc)
        check_metadata_if_present(doc)
        if _errors:
            for msg in _errors:
                print("FAIL: %s" % msg, file=sys.stderr)
            print("%d schema violation(s)" % len(_errors), file=sys.stderr)
            return 1
        print("bench schema OK")
        return 0

    # BENCH_observability.json is recognized by its health / lifecycle-
    # overhead sections and validated against the E19 health-plane floors.
    if "health" in doc or "marketplace_lifecycle_overhead" in doc:
        check_observability(doc)
        check_metadata_if_present(doc)
        if _errors:
            for msg in _errors:
                print("FAIL: %s" % msg, file=sys.stderr)
            print("%d schema violation(s)" % len(_errors), file=sys.stderr)
            return 1
        print("bench schema OK")
        return 0

    # BENCH_byzantine.json is recognized by its accountability sections and
    # validated against the E16 safety floors instead of the E15 schema.
    if "validator_accountability" in doc or "summary" in doc:
        check_byzantine(doc)
        check_metadata_if_present(doc)
        if _errors:
            for msg in _errors:
                print("FAIL: %s" % msg, file=sys.stderr)
            print("%d schema violation(s)" % len(_errors), file=sys.stderr)
            return 1
        print("bench schema OK")
        return 0

    for name in ("consensus", "parallel_exec"):
        if name not in doc or not isinstance(doc[name], dict):
            fail("report: missing required section %r" % name)
    if "consensus" in doc and isinstance(doc["consensus"], dict):
        check_consensus(doc["consensus"])
    if "parallel_exec" in doc and isinstance(doc["parallel_exec"], dict):
        check_parallel_exec(doc["parallel_exec"])
    if "shapley" in doc and isinstance(doc["shapley"], dict):
        check_shapley(doc["shapley"])
    check_metadata_if_present(doc)

    if _errors:
        for msg in _errors:
            print("FAIL: %s" % msg, file=sys.stderr)
        print("%d schema violation(s)" % len(_errors), file=sys.stderr)
        return 1
    print("bench schema OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
