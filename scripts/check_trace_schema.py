#!/usr/bin/env python3
"""Validates PDS2 trace exports against the documented schema.

Checks the JSON-lines span export written by obs::Tracer::WriteJsonLines
and the Chrome trace_event document written by obs::WriteChromeTrace (see
docs/PROTOCOL.md, "Trace export schema"). Wired into CTest under the
`trace` label; also usable by hand:

  check_trace_schema.py --tool build/tools/pds2_trace   # run the demo + check
  check_trace_schema.py run.jsonl [--chrome run.json]   # check existing files

Exits 0 when every check passes, 1 otherwise. Stdlib only.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

SPAN_REQUIRED = {
    "id": int,
    "parent": int,
    "trace": int,
    "name": str,
    "node": str,
    "thread": int,
    "wall_start_ns": int,
    "wall_dur_ns": int,
}
SPAN_OPTIONAL = {
    "links": list,
    "sim_start_us": int,
    "sim_dur_us": int,
}

_errors = []


def fail(msg):
    _errors.append(msg)


def check_span_line(line_no, obj):
    where = "span line %d" % line_no
    for key, kind in SPAN_REQUIRED.items():
        if key not in obj:
            fail("%s: missing required key %r" % (where, key))
            return None
        if not isinstance(obj[key], kind) or isinstance(obj[key], bool):
            fail("%s: key %r must be %s" % (where, key, kind.__name__))
            return None
    for key in obj:
        if key not in SPAN_REQUIRED and key not in SPAN_OPTIONAL:
            fail("%s: unknown key %r" % (where, key))
            return None
    if obj["id"] < 1:
        fail("%s: span ids are 1-based, got %d" % (where, obj["id"]))
    if obj["parent"] < 0 or obj["trace"] < 1:
        fail("%s: bad parent/trace id" % where)
    if not obj["name"]:
        fail("%s: empty span name" % where)
    if "links" in obj:
        if not all(isinstance(x, int) and x >= 1 for x in obj["links"]):
            fail("%s: links must be positive span ids" % where)
        if obj["id"] in obj["links"]:
            fail("%s: span links to itself" % where)
    # Sim fields travel as a pair.
    if ("sim_start_us" in obj) != ("sim_dur_us" in obj):
        fail("%s: sim_start_us and sim_dur_us must appear together" % where)
    return obj


def check_span_export(path):
    """Parses and validates the JSON-lines export; returns span list."""
    spans = []
    with open(path, "r", encoding="utf-8") as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                fail("span line %d: not valid JSON (%s)" % (line_no, e))
                continue
            if not isinstance(obj, dict):
                fail("span line %d: not a JSON object" % line_no)
                continue
            obj = check_span_line(line_no, obj)
            if obj is not None:
                spans.append(obj)

    ids = [s["id"] for s in spans]
    id_set = set(ids)
    if len(id_set) != len(ids):
        fail("span export: duplicate span ids")
    for s in spans:
        if s["parent"] != 0 and s["parent"] not in id_set:
            fail("span %d: parent %d not in export" % (s["id"], s["parent"]))
        for link in s.get("links", []):
            if link not in id_set:
                fail("span %d: link %d not in export" % (s["id"], link))
    # One trace id per connected parent chain: a child shares its parent's.
    by_id = {s["id"]: s for s in spans}
    for s in spans:
        parent = by_id.get(s["parent"])
        if parent is not None and s["trace"] != parent["trace"]:
            fail("span %d: trace %d differs from parent's %d"
                 % (s["id"], s["trace"], parent["trace"]))
    return spans


def check_demo_connectivity(spans):
    """The seeded demo must export one connected workload DAG spanning
    at least three node roles (the ISSUE's acceptance shape)."""
    roots = [s for s in spans if s["name"] == "market.run_workload"]
    if not roots:
        fail("demo export: no market.run_workload span")
        return
    adjacency = {s["id"]: set() for s in spans}
    for s in spans:
        for other in [s["parent"]] + s.get("links", []):
            if other in adjacency:
                adjacency[s["id"]].add(other)
                adjacency[other].add(s["id"])
    seen = set()
    frontier = [roots[0]["id"]]
    while frontier:
        cur = frontier.pop()
        if cur in seen:
            continue
        seen.add(cur)
        frontier.extend(adjacency[cur])
    by_id = {s["id"]: s for s in spans}
    roles = {by_id[i]["node"] for i in seen if by_id[i]["node"]}
    if len(seen) < 10:
        fail("demo export: workload component has only %d spans" % len(seen))
    if len(roles) < 3:
        fail("demo export: workload spans %d roles, need >= 3: %s"
             % (len(roles), sorted(roles)))


def check_chrome_trace(path, expect_spans=None):
    with open(path, "r", encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail("chrome trace: not valid JSON (%s)" % e)
            return
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("chrome trace: missing traceEvents")
        return
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("chrome trace: traceEvents is not a list")
        return

    pids = set()
    complete_ids = set()
    flows = {}
    for i, ev in enumerate(events):
        where = "chrome event %d" % i
        if not isinstance(ev, dict) or "ph" not in ev:
            fail("%s: not an event object" % where)
            continue
        ph = ev["ph"]
        if ph == "M":
            if ev.get("name") != "process_name" or \
                    not ev.get("args", {}).get("name"):
                fail("%s: metadata event without a process name" % where)
            pids.add(ev.get("pid"))
        elif ph == "X":
            for key in ("pid", "tid", "ts", "dur", "name", "cat", "args"):
                if key not in ev:
                    fail("%s: complete event missing %r" % (where, key))
                    break
            else:
                if ev["pid"] not in pids:
                    fail("%s: pid %r has no process_name metadata"
                         % (where, ev["pid"]))
                if "id" not in ev["args"]:
                    fail("%s: args.id (span id) missing" % where)
                else:
                    complete_ids.add(ev["args"]["id"])
                if ev["dur"] < 0 or ev["ts"] < 0:
                    fail("%s: negative timestamp" % where)
        elif ph in ("s", "f"):
            flows.setdefault(ev.get("id"), []).append(ph)
        else:
            fail("%s: unexpected phase %r" % (where, ph))

    for flow_id, phases in sorted(flows.items()):
        if sorted(phases) != ["f", "s"]:
            fail("chrome flow %r: needs exactly one 's' and one 'f', got %s"
                 % (flow_id, phases))
    if expect_spans is not None:
        exportable = {s["id"] for s in expect_spans if "sim_start_us" in s}
        if not exportable <= complete_ids:
            missing = sorted(exportable - complete_ids)[:5]
            fail("chrome trace: sim-time spans missing from export: %s..."
                 % missing)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("jsonl", nargs="?", help="span JSON-lines export")
    parser.add_argument("--chrome", help="Chrome trace_event JSON to check")
    parser.add_argument("--tool", help="pds2_trace binary: run its --demo "
                        "and check both outputs")
    args = parser.parse_args()

    if bool(args.tool) == bool(args.jsonl):
        parser.error("pass exactly one of --tool or a jsonl file")

    if args.tool:
        with tempfile.TemporaryDirectory(prefix="pds2-trace-") as tmp:
            jsonl = os.path.join(tmp, "demo.jsonl")
            chrome = os.path.join(tmp, "demo-chrome.json")
            cmd = [args.tool, "--demo", "--demo-out", jsonl,
                   "--chrome", chrome]
            proc = subprocess.run(cmd, capture_output=True, text=True)
            if proc.returncode != 0:
                fail("pds2_trace --demo failed (%d): %s"
                     % (proc.returncode, proc.stderr.strip()))
            else:
                if "critical path (sim time)" not in proc.stdout:
                    fail("pds2_trace report lacks a sim-time critical path")
                spans = check_span_export(jsonl)
                check_demo_connectivity(spans)
                check_chrome_trace(chrome, expect_spans=spans)
    else:
        spans = check_span_export(args.jsonl)
        if args.chrome:
            check_chrome_trace(args.chrome, expect_spans=spans)

    if _errors:
        for msg in _errors:
            print("FAIL: %s" % msg, file=sys.stderr)
        print("%d schema violation(s)" % len(_errors), file=sys.stderr)
        return 1
    print("trace schema OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
