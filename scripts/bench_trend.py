#!/usr/bin/env python3
"""Compares freshly generated BENCH_*.json reports against the committed
baselines at the repo root and prints a per-metric trend table.

Benches drop their reports next to the binary (build/bench/BENCH_*.json);
the repo root holds the committed reference copies. This walks every
numeric leaf shared by a fresh/baseline pair, prints the delta, and flags
probable regressions using a direction heuristic on the metric name
(latencies/overheads should not grow, rates/speedups should not shrink).

  bench_trend.py [--fresh-dir build/bench] [--baseline-dir .]
                 [--threshold-pct 25] [--strict]

Exit code is 0 unless --strict is given AND a regression beyond the
threshold was found. The default is non-strict so the CTest wiring is a
visibility tool, not a tier-1 gate: committed artifacts age (different
hosts, different thread counts) and a stale baseline must not break the
build. Stdlib only.
"""

import argparse
import glob
import json
import os
import sys

# Metrics where growth is bad. Checked before _HIGHER_IS_BETTER.
_LOWER_IS_BETTER = (
    "_ms", "_us", "_ns", "latency", "overhead", "gas", "aborted",
    "dropped", "divergences", "slashed_honest", "miss",
)
# Metrics where shrinkage is bad.
_HIGHER_IS_BETTER = (
    "speedup", "per_sec", "rate", "precision", "recall", "accuracy",
    "hits", "dedup_ratio", "infected_fraction", "spans",
)

# Context/config leaves: changes are reported but never regressions.
_NEUTRAL = (
    "trials", "threads", "seed", "nodes", "accounts", "cells", "pairs",
    "hardware_concurrency", "samples_per_lifecycle", "rules_per_sample",
    "fault_cells", "alerts_expected", "alerts_fired", "txs_per_block",
    "blocks", "events", "features",
)


# Boolean invariants (flattened to 0/1): any flip to 0 is a regression.
# Checked first so e.g. "threads_identical" is not swallowed by the
# neutral "threads" marker.
_INVARIANTS = ("identical", "conserved", "deterministic", "floors_ok")


def direction(path):
    """-1 lower-is-better, +1 higher-is-better, 0 neutral/unknown."""
    lowered = path.lower()
    for marker in _INVARIANTS:
        if marker in lowered:
            return +1
    for marker in _NEUTRAL:
        if marker in lowered:
            return 0
    for marker in _LOWER_IS_BETTER:
        if marker in lowered:
            return -1
    for marker in _HIGHER_IS_BETTER:
        if marker in lowered:
            return +1
    return 0


def numeric_leaves(node, prefix=""):
    """Flattens a report into {dotted.path: number}. Bools count as 0/1 so
    a flipped invariant (threads_identical, supply_conserved) shows up."""
    out = {}
    if isinstance(node, dict):
        for key, value in sorted(node.items()):
            out.update(numeric_leaves(value, prefix + key + "."))
    elif isinstance(node, list):
        for i, value in enumerate(node):
            out.update(numeric_leaves(value, prefix + "%d." % i))
    elif isinstance(node, bool):
        out[prefix[:-1]] = 1.0 if node else 0.0
    elif isinstance(node, (int, float)):
        out[prefix[:-1]] = float(node)
    return out


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
        return doc if isinstance(doc, dict) else None
    except (OSError, json.JSONDecodeError):
        return None


def compare(name, fresh, baseline, threshold_pct):
    regressions = []
    fresh_leaves = numeric_leaves(fresh)
    base_leaves = numeric_leaves(baseline)
    shared = sorted(set(fresh_leaves) & set(base_leaves))
    if not shared:
        print("  (no shared numeric metrics)")
        return regressions
    for path in shared:
        new, old = fresh_leaves[path], base_leaves[path]
        if old == new:
            continue  # stable metrics stay out of the table
        delta_pct = float("inf") if old == 0 else (new - old) / abs(old) * 100
        sign = direction(path)
        worse = sign != 0 and sign * (new - old) < 0
        flag = ""
        if worse and abs(delta_pct) > threshold_pct:
            flag = "  <-- REGRESSION"
            regressions.append("%s %s: %.4g -> %.4g (%+.1f%%)"
                               % (name, path, old, new, delta_pct))
        elif worse:
            flag = "  (worse, within threshold)"
        print("  %-58s %12.4g -> %-12.4g %+8.1f%%%s"
              % (path, old, new, delta_pct, flag))
    only_fresh = sorted(set(fresh_leaves) - set(base_leaves))
    if only_fresh:
        print("  new metrics (no baseline): %s" % ", ".join(only_fresh))
    return regressions


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh-dir", default="build/bench",
                        help="directory with freshly generated BENCH_*.json")
    parser.add_argument("--baseline-dir", default=".",
                        help="directory with committed baseline BENCH_*.json")
    parser.add_argument("--threshold-pct", type=float, default=25.0,
                        help="flag regressions beyond this percent delta")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when a flagged regression exists")
    args = parser.parse_args()

    pattern = os.path.join(args.fresh_dir, "BENCH_*.json")
    fresh_paths = sorted(glob.glob(pattern))
    if not fresh_paths:
        print("bench trend: no fresh reports under %s -- run the benches "
              "first; nothing to compare" % args.fresh_dir)
        return 0

    regressions = []
    compared = 0
    for fresh_path in fresh_paths:
        name = os.path.basename(fresh_path)
        baseline_path = os.path.join(args.baseline_dir, name)
        fresh = load(fresh_path)
        baseline = load(baseline_path)
        if fresh is None:
            print("== %s: fresh report unparseable, skipped" % name)
            continue
        if baseline is None:
            print("== %s: no committed baseline, skipped" % name)
            continue
        print("== %s (fresh vs committed, changed metrics only)" % name)
        regressions += compare(name, fresh, baseline, args.threshold_pct)
        compared += 1

    print("bench trend: %d report(s) compared, %d flagged regression(s)"
          % (compared, len(regressions)))
    for msg in regressions:
        print("REGRESSION: %s" % msg, file=sys.stderr)
    return 1 if (args.strict and regressions) else 0


if __name__ == "__main__":
    sys.exit(main())
