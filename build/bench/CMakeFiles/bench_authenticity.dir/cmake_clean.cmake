file(REMOVE_RECURSE
  "CMakeFiles/bench_authenticity.dir/bench_authenticity.cpp.o"
  "CMakeFiles/bench_authenticity.dir/bench_authenticity.cpp.o.d"
  "bench_authenticity"
  "bench_authenticity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_authenticity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
