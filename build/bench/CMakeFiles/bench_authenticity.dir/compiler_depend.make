# Empty compiler generated dependencies file for bench_authenticity.
# This may be replaced when dependencies are built.
