# Empty dependencies file for bench_oblivious_primitives.
# This may be replaced when dependencies are built.
