file(REMOVE_RECURSE
  "CMakeFiles/bench_oblivious_primitives.dir/bench_oblivious_primitives.cpp.o"
  "CMakeFiles/bench_oblivious_primitives.dir/bench_oblivious_primitives.cpp.o.d"
  "bench_oblivious_primitives"
  "bench_oblivious_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_oblivious_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
