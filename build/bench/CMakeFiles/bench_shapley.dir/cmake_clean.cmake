file(REMOVE_RECURSE
  "CMakeFiles/bench_shapley.dir/bench_shapley.cpp.o"
  "CMakeFiles/bench_shapley.dir/bench_shapley.cpp.o.d"
  "bench_shapley"
  "bench_shapley.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shapley.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
