# Empty dependencies file for bench_privacy_leakage.
# This may be replaced when dependencies are built.
