file(REMOVE_RECURSE
  "CMakeFiles/bench_privacy_leakage.dir/bench_privacy_leakage.cpp.o"
  "CMakeFiles/bench_privacy_leakage.dir/bench_privacy_leakage.cpp.o.d"
  "bench_privacy_leakage"
  "bench_privacy_leakage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_privacy_leakage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
