# Empty dependencies file for bench_gossip_scalability.
# This may be replaced when dependencies are built.
