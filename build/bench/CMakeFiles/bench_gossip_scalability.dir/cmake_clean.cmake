file(REMOVE_RECURSE
  "CMakeFiles/bench_gossip_scalability.dir/bench_gossip_scalability.cpp.o"
  "CMakeFiles/bench_gossip_scalability.dir/bench_gossip_scalability.cpp.o.d"
  "bench_gossip_scalability"
  "bench_gossip_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gossip_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
