# Empty compiler generated dependencies file for bench_valuation.
# This may be replaced when dependencies are built.
