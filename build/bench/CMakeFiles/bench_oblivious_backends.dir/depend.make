# Empty dependencies file for bench_oblivious_backends.
# This may be replaced when dependencies are built.
