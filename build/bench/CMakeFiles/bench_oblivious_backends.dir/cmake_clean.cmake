file(REMOVE_RECURSE
  "CMakeFiles/bench_oblivious_backends.dir/bench_oblivious_backends.cpp.o"
  "CMakeFiles/bench_oblivious_backends.dir/bench_oblivious_backends.cpp.o.d"
  "bench_oblivious_backends"
  "bench_oblivious_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_oblivious_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
