file(REMOVE_RECURSE
  "CMakeFiles/bench_gossip_vs_fed.dir/bench_gossip_vs_fed.cpp.o"
  "CMakeFiles/bench_gossip_vs_fed.dir/bench_gossip_vs_fed.cpp.o.d"
  "bench_gossip_vs_fed"
  "bench_gossip_vs_fed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gossip_vs_fed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
