# Empty compiler generated dependencies file for bench_gossip_vs_fed.
# This may be replaced when dependencies are built.
