file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_gossip.dir/bench_ablation_gossip.cpp.o"
  "CMakeFiles/bench_ablation_gossip.dir/bench_ablation_gossip.cpp.o.d"
  "bench_ablation_gossip"
  "bench_ablation_gossip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_gossip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
