# Empty compiler generated dependencies file for bench_governance.
# This may be replaced when dependencies are built.
