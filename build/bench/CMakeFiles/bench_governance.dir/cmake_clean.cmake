file(REMOVE_RECURSE
  "CMakeFiles/bench_governance.dir/bench_governance.cpp.o"
  "CMakeFiles/bench_governance.dir/bench_governance.cpp.o.d"
  "bench_governance"
  "bench_governance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_governance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
