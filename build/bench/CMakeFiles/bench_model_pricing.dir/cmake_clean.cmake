file(REMOVE_RECURSE
  "CMakeFiles/bench_model_pricing.dir/bench_model_pricing.cpp.o"
  "CMakeFiles/bench_model_pricing.dir/bench_model_pricing.cpp.o.d"
  "bench_model_pricing"
  "bench_model_pricing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
