# Empty dependencies file for bench_model_pricing.
# This may be replaced when dependencies are built.
