# Empty dependencies file for pds2_rewards.
# This may be replaced when dependencies are built.
