file(REMOVE_RECURSE
  "CMakeFiles/pds2_rewards.dir/pricing.cc.o"
  "CMakeFiles/pds2_rewards.dir/pricing.cc.o.d"
  "CMakeFiles/pds2_rewards.dir/shapley.cc.o"
  "CMakeFiles/pds2_rewards.dir/shapley.cc.o.d"
  "libpds2_rewards.a"
  "libpds2_rewards.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pds2_rewards.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
