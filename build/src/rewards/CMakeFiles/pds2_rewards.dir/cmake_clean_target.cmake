file(REMOVE_RECURSE
  "libpds2_rewards.a"
)
