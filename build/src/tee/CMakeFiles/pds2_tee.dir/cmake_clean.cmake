file(REMOVE_RECURSE
  "CMakeFiles/pds2_tee.dir/attestation.cc.o"
  "CMakeFiles/pds2_tee.dir/attestation.cc.o.d"
  "CMakeFiles/pds2_tee.dir/enclave.cc.o"
  "CMakeFiles/pds2_tee.dir/enclave.cc.o.d"
  "CMakeFiles/pds2_tee.dir/oblivious.cc.o"
  "CMakeFiles/pds2_tee.dir/oblivious.cc.o.d"
  "CMakeFiles/pds2_tee.dir/training_kernel.cc.o"
  "CMakeFiles/pds2_tee.dir/training_kernel.cc.o.d"
  "libpds2_tee.a"
  "libpds2_tee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pds2_tee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
