# Empty compiler generated dependencies file for pds2_tee.
# This may be replaced when dependencies are built.
