
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tee/attestation.cc" "src/tee/CMakeFiles/pds2_tee.dir/attestation.cc.o" "gcc" "src/tee/CMakeFiles/pds2_tee.dir/attestation.cc.o.d"
  "/root/repo/src/tee/enclave.cc" "src/tee/CMakeFiles/pds2_tee.dir/enclave.cc.o" "gcc" "src/tee/CMakeFiles/pds2_tee.dir/enclave.cc.o.d"
  "/root/repo/src/tee/oblivious.cc" "src/tee/CMakeFiles/pds2_tee.dir/oblivious.cc.o" "gcc" "src/tee/CMakeFiles/pds2_tee.dir/oblivious.cc.o.d"
  "/root/repo/src/tee/training_kernel.cc" "src/tee/CMakeFiles/pds2_tee.dir/training_kernel.cc.o" "gcc" "src/tee/CMakeFiles/pds2_tee.dir/training_kernel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pds2_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/pds2_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/pds2_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/pds2_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
