file(REMOVE_RECURSE
  "libpds2_tee.a"
)
