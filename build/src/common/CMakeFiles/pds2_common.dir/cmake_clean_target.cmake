file(REMOVE_RECURSE
  "libpds2_common.a"
)
