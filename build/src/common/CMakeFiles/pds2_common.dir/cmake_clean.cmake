file(REMOVE_RECURSE
  "CMakeFiles/pds2_common.dir/bytes.cc.o"
  "CMakeFiles/pds2_common.dir/bytes.cc.o.d"
  "CMakeFiles/pds2_common.dir/hex.cc.o"
  "CMakeFiles/pds2_common.dir/hex.cc.o.d"
  "CMakeFiles/pds2_common.dir/logging.cc.o"
  "CMakeFiles/pds2_common.dir/logging.cc.o.d"
  "CMakeFiles/pds2_common.dir/rng.cc.o"
  "CMakeFiles/pds2_common.dir/rng.cc.o.d"
  "CMakeFiles/pds2_common.dir/serial.cc.o"
  "CMakeFiles/pds2_common.dir/serial.cc.o.d"
  "CMakeFiles/pds2_common.dir/status.cc.o"
  "CMakeFiles/pds2_common.dir/status.cc.o.d"
  "libpds2_common.a"
  "libpds2_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pds2_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
