# Empty compiler generated dependencies file for pds2_common.
# This may be replaced when dependencies are built.
