
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/content_store.cc" "src/storage/CMakeFiles/pds2_storage.dir/content_store.cc.o" "gcc" "src/storage/CMakeFiles/pds2_storage.dir/content_store.cc.o.d"
  "/root/repo/src/storage/key_escrow.cc" "src/storage/CMakeFiles/pds2_storage.dir/key_escrow.cc.o" "gcc" "src/storage/CMakeFiles/pds2_storage.dir/key_escrow.cc.o.d"
  "/root/repo/src/storage/provider_store.cc" "src/storage/CMakeFiles/pds2_storage.dir/provider_store.cc.o" "gcc" "src/storage/CMakeFiles/pds2_storage.dir/provider_store.cc.o.d"
  "/root/repo/src/storage/semantic.cc" "src/storage/CMakeFiles/pds2_storage.dir/semantic.cc.o" "gcc" "src/storage/CMakeFiles/pds2_storage.dir/semantic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pds2_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/pds2_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/pds2_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
