# Empty compiler generated dependencies file for pds2_storage.
# This may be replaced when dependencies are built.
