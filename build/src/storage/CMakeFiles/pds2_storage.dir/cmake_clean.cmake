file(REMOVE_RECURSE
  "CMakeFiles/pds2_storage.dir/content_store.cc.o"
  "CMakeFiles/pds2_storage.dir/content_store.cc.o.d"
  "CMakeFiles/pds2_storage.dir/key_escrow.cc.o"
  "CMakeFiles/pds2_storage.dir/key_escrow.cc.o.d"
  "CMakeFiles/pds2_storage.dir/provider_store.cc.o"
  "CMakeFiles/pds2_storage.dir/provider_store.cc.o.d"
  "CMakeFiles/pds2_storage.dir/semantic.cc.o"
  "CMakeFiles/pds2_storage.dir/semantic.cc.o.d"
  "libpds2_storage.a"
  "libpds2_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pds2_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
