file(REMOVE_RECURSE
  "libpds2_storage.a"
)
