file(REMOVE_RECURSE
  "libpds2_ml.a"
)
