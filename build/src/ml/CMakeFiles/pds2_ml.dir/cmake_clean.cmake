file(REMOVE_RECURSE
  "CMakeFiles/pds2_ml.dir/dataset.cc.o"
  "CMakeFiles/pds2_ml.dir/dataset.cc.o.d"
  "CMakeFiles/pds2_ml.dir/linalg.cc.o"
  "CMakeFiles/pds2_ml.dir/linalg.cc.o.d"
  "CMakeFiles/pds2_ml.dir/metrics.cc.o"
  "CMakeFiles/pds2_ml.dir/metrics.cc.o.d"
  "CMakeFiles/pds2_ml.dir/model.cc.o"
  "CMakeFiles/pds2_ml.dir/model.cc.o.d"
  "CMakeFiles/pds2_ml.dir/privacy.cc.o"
  "CMakeFiles/pds2_ml.dir/privacy.cc.o.d"
  "CMakeFiles/pds2_ml.dir/serialization.cc.o"
  "CMakeFiles/pds2_ml.dir/serialization.cc.o.d"
  "CMakeFiles/pds2_ml.dir/sgd.cc.o"
  "CMakeFiles/pds2_ml.dir/sgd.cc.o.d"
  "libpds2_ml.a"
  "libpds2_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pds2_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
