# Empty compiler generated dependencies file for pds2_ml.
# This may be replaced when dependencies are built.
