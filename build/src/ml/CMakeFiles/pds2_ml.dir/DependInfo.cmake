
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/dataset.cc" "src/ml/CMakeFiles/pds2_ml.dir/dataset.cc.o" "gcc" "src/ml/CMakeFiles/pds2_ml.dir/dataset.cc.o.d"
  "/root/repo/src/ml/linalg.cc" "src/ml/CMakeFiles/pds2_ml.dir/linalg.cc.o" "gcc" "src/ml/CMakeFiles/pds2_ml.dir/linalg.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/ml/CMakeFiles/pds2_ml.dir/metrics.cc.o" "gcc" "src/ml/CMakeFiles/pds2_ml.dir/metrics.cc.o.d"
  "/root/repo/src/ml/model.cc" "src/ml/CMakeFiles/pds2_ml.dir/model.cc.o" "gcc" "src/ml/CMakeFiles/pds2_ml.dir/model.cc.o.d"
  "/root/repo/src/ml/privacy.cc" "src/ml/CMakeFiles/pds2_ml.dir/privacy.cc.o" "gcc" "src/ml/CMakeFiles/pds2_ml.dir/privacy.cc.o.d"
  "/root/repo/src/ml/serialization.cc" "src/ml/CMakeFiles/pds2_ml.dir/serialization.cc.o" "gcc" "src/ml/CMakeFiles/pds2_ml.dir/serialization.cc.o.d"
  "/root/repo/src/ml/sgd.cc" "src/ml/CMakeFiles/pds2_ml.dir/sgd.cc.o" "gcc" "src/ml/CMakeFiles/pds2_ml.dir/sgd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pds2_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
