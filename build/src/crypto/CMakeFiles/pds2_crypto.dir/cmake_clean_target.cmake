file(REMOVE_RECURSE
  "libpds2_crypto.a"
)
