
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/bignum.cc" "src/crypto/CMakeFiles/pds2_crypto.dir/bignum.cc.o" "gcc" "src/crypto/CMakeFiles/pds2_crypto.dir/bignum.cc.o.d"
  "/root/repo/src/crypto/cipher.cc" "src/crypto/CMakeFiles/pds2_crypto.dir/cipher.cc.o" "gcc" "src/crypto/CMakeFiles/pds2_crypto.dir/cipher.cc.o.d"
  "/root/repo/src/crypto/ed25519.cc" "src/crypto/CMakeFiles/pds2_crypto.dir/ed25519.cc.o" "gcc" "src/crypto/CMakeFiles/pds2_crypto.dir/ed25519.cc.o.d"
  "/root/repo/src/crypto/merkle.cc" "src/crypto/CMakeFiles/pds2_crypto.dir/merkle.cc.o" "gcc" "src/crypto/CMakeFiles/pds2_crypto.dir/merkle.cc.o.d"
  "/root/repo/src/crypto/paillier.cc" "src/crypto/CMakeFiles/pds2_crypto.dir/paillier.cc.o" "gcc" "src/crypto/CMakeFiles/pds2_crypto.dir/paillier.cc.o.d"
  "/root/repo/src/crypto/schnorr.cc" "src/crypto/CMakeFiles/pds2_crypto.dir/schnorr.cc.o" "gcc" "src/crypto/CMakeFiles/pds2_crypto.dir/schnorr.cc.o.d"
  "/root/repo/src/crypto/secret_sharing.cc" "src/crypto/CMakeFiles/pds2_crypto.dir/secret_sharing.cc.o" "gcc" "src/crypto/CMakeFiles/pds2_crypto.dir/secret_sharing.cc.o.d"
  "/root/repo/src/crypto/sha256.cc" "src/crypto/CMakeFiles/pds2_crypto.dir/sha256.cc.o" "gcc" "src/crypto/CMakeFiles/pds2_crypto.dir/sha256.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pds2_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
