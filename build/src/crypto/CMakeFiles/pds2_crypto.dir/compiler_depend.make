# Empty compiler generated dependencies file for pds2_crypto.
# This may be replaced when dependencies are built.
