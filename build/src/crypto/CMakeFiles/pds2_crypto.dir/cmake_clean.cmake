file(REMOVE_RECURSE
  "CMakeFiles/pds2_crypto.dir/bignum.cc.o"
  "CMakeFiles/pds2_crypto.dir/bignum.cc.o.d"
  "CMakeFiles/pds2_crypto.dir/cipher.cc.o"
  "CMakeFiles/pds2_crypto.dir/cipher.cc.o.d"
  "CMakeFiles/pds2_crypto.dir/ed25519.cc.o"
  "CMakeFiles/pds2_crypto.dir/ed25519.cc.o.d"
  "CMakeFiles/pds2_crypto.dir/merkle.cc.o"
  "CMakeFiles/pds2_crypto.dir/merkle.cc.o.d"
  "CMakeFiles/pds2_crypto.dir/paillier.cc.o"
  "CMakeFiles/pds2_crypto.dir/paillier.cc.o.d"
  "CMakeFiles/pds2_crypto.dir/schnorr.cc.o"
  "CMakeFiles/pds2_crypto.dir/schnorr.cc.o.d"
  "CMakeFiles/pds2_crypto.dir/secret_sharing.cc.o"
  "CMakeFiles/pds2_crypto.dir/secret_sharing.cc.o.d"
  "CMakeFiles/pds2_crypto.dir/sha256.cc.o"
  "CMakeFiles/pds2_crypto.dir/sha256.cc.o.d"
  "libpds2_crypto.a"
  "libpds2_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pds2_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
