file(REMOVE_RECURSE
  "CMakeFiles/pds2_dml.dir/experiment.cc.o"
  "CMakeFiles/pds2_dml.dir/experiment.cc.o.d"
  "CMakeFiles/pds2_dml.dir/fedavg.cc.o"
  "CMakeFiles/pds2_dml.dir/fedavg.cc.o.d"
  "CMakeFiles/pds2_dml.dir/gossip.cc.o"
  "CMakeFiles/pds2_dml.dir/gossip.cc.o.d"
  "CMakeFiles/pds2_dml.dir/netsim.cc.o"
  "CMakeFiles/pds2_dml.dir/netsim.cc.o.d"
  "libpds2_dml.a"
  "libpds2_dml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pds2_dml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
