# Empty dependencies file for pds2_dml.
# This may be replaced when dependencies are built.
