file(REMOVE_RECURSE
  "libpds2_dml.a"
)
