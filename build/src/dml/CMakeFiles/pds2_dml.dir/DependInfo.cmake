
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dml/experiment.cc" "src/dml/CMakeFiles/pds2_dml.dir/experiment.cc.o" "gcc" "src/dml/CMakeFiles/pds2_dml.dir/experiment.cc.o.d"
  "/root/repo/src/dml/fedavg.cc" "src/dml/CMakeFiles/pds2_dml.dir/fedavg.cc.o" "gcc" "src/dml/CMakeFiles/pds2_dml.dir/fedavg.cc.o.d"
  "/root/repo/src/dml/gossip.cc" "src/dml/CMakeFiles/pds2_dml.dir/gossip.cc.o" "gcc" "src/dml/CMakeFiles/pds2_dml.dir/gossip.cc.o.d"
  "/root/repo/src/dml/netsim.cc" "src/dml/CMakeFiles/pds2_dml.dir/netsim.cc.o" "gcc" "src/dml/CMakeFiles/pds2_dml.dir/netsim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pds2_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/pds2_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
