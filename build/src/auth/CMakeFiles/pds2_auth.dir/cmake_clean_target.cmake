file(REMOVE_RECURSE
  "libpds2_auth.a"
)
