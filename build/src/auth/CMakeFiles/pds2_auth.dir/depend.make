# Empty dependencies file for pds2_auth.
# This may be replaced when dependencies are built.
