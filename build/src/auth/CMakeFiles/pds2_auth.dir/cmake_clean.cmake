file(REMOVE_RECURSE
  "CMakeFiles/pds2_auth.dir/device.cc.o"
  "CMakeFiles/pds2_auth.dir/device.cc.o.d"
  "libpds2_auth.a"
  "libpds2_auth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pds2_auth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
