# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("crypto")
subdirs("ml")
subdirs("chain")
subdirs("storage")
subdirs("tee")
subdirs("dml")
subdirs("rewards")
subdirs("auth")
subdirs("market")
subdirs("p2p")
