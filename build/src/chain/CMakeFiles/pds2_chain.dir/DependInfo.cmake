
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chain/block.cc" "src/chain/CMakeFiles/pds2_chain.dir/block.cc.o" "gcc" "src/chain/CMakeFiles/pds2_chain.dir/block.cc.o.d"
  "/root/repo/src/chain/chain.cc" "src/chain/CMakeFiles/pds2_chain.dir/chain.cc.o" "gcc" "src/chain/CMakeFiles/pds2_chain.dir/chain.cc.o.d"
  "/root/repo/src/chain/contract.cc" "src/chain/CMakeFiles/pds2_chain.dir/contract.cc.o" "gcc" "src/chain/CMakeFiles/pds2_chain.dir/contract.cc.o.d"
  "/root/repo/src/chain/contracts/actor_registry.cc" "src/chain/CMakeFiles/pds2_chain.dir/contracts/actor_registry.cc.o" "gcc" "src/chain/CMakeFiles/pds2_chain.dir/contracts/actor_registry.cc.o.d"
  "/root/repo/src/chain/contracts/erc20.cc" "src/chain/CMakeFiles/pds2_chain.dir/contracts/erc20.cc.o" "gcc" "src/chain/CMakeFiles/pds2_chain.dir/contracts/erc20.cc.o.d"
  "/root/repo/src/chain/contracts/erc721.cc" "src/chain/CMakeFiles/pds2_chain.dir/contracts/erc721.cc.o" "gcc" "src/chain/CMakeFiles/pds2_chain.dir/contracts/erc721.cc.o.d"
  "/root/repo/src/chain/contracts/workload.cc" "src/chain/CMakeFiles/pds2_chain.dir/contracts/workload.cc.o" "gcc" "src/chain/CMakeFiles/pds2_chain.dir/contracts/workload.cc.o.d"
  "/root/repo/src/chain/gas.cc" "src/chain/CMakeFiles/pds2_chain.dir/gas.cc.o" "gcc" "src/chain/CMakeFiles/pds2_chain.dir/gas.cc.o.d"
  "/root/repo/src/chain/state.cc" "src/chain/CMakeFiles/pds2_chain.dir/state.cc.o" "gcc" "src/chain/CMakeFiles/pds2_chain.dir/state.cc.o.d"
  "/root/repo/src/chain/transaction.cc" "src/chain/CMakeFiles/pds2_chain.dir/transaction.cc.o" "gcc" "src/chain/CMakeFiles/pds2_chain.dir/transaction.cc.o.d"
  "/root/repo/src/chain/types.cc" "src/chain/CMakeFiles/pds2_chain.dir/types.cc.o" "gcc" "src/chain/CMakeFiles/pds2_chain.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pds2_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/pds2_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
