file(REMOVE_RECURSE
  "CMakeFiles/pds2_chain.dir/block.cc.o"
  "CMakeFiles/pds2_chain.dir/block.cc.o.d"
  "CMakeFiles/pds2_chain.dir/chain.cc.o"
  "CMakeFiles/pds2_chain.dir/chain.cc.o.d"
  "CMakeFiles/pds2_chain.dir/contract.cc.o"
  "CMakeFiles/pds2_chain.dir/contract.cc.o.d"
  "CMakeFiles/pds2_chain.dir/contracts/actor_registry.cc.o"
  "CMakeFiles/pds2_chain.dir/contracts/actor_registry.cc.o.d"
  "CMakeFiles/pds2_chain.dir/contracts/erc20.cc.o"
  "CMakeFiles/pds2_chain.dir/contracts/erc20.cc.o.d"
  "CMakeFiles/pds2_chain.dir/contracts/erc721.cc.o"
  "CMakeFiles/pds2_chain.dir/contracts/erc721.cc.o.d"
  "CMakeFiles/pds2_chain.dir/contracts/workload.cc.o"
  "CMakeFiles/pds2_chain.dir/contracts/workload.cc.o.d"
  "CMakeFiles/pds2_chain.dir/gas.cc.o"
  "CMakeFiles/pds2_chain.dir/gas.cc.o.d"
  "CMakeFiles/pds2_chain.dir/state.cc.o"
  "CMakeFiles/pds2_chain.dir/state.cc.o.d"
  "CMakeFiles/pds2_chain.dir/transaction.cc.o"
  "CMakeFiles/pds2_chain.dir/transaction.cc.o.d"
  "CMakeFiles/pds2_chain.dir/types.cc.o"
  "CMakeFiles/pds2_chain.dir/types.cc.o.d"
  "libpds2_chain.a"
  "libpds2_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pds2_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
