file(REMOVE_RECURSE
  "libpds2_chain.a"
)
