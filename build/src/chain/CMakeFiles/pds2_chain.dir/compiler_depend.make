# Empty compiler generated dependencies file for pds2_chain.
# This may be replaced when dependencies are built.
