file(REMOVE_RECURSE
  "libpds2_p2p.a"
)
