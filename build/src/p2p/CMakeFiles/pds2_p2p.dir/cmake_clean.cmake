file(REMOVE_RECURSE
  "CMakeFiles/pds2_p2p.dir/validator_network.cc.o"
  "CMakeFiles/pds2_p2p.dir/validator_network.cc.o.d"
  "libpds2_p2p.a"
  "libpds2_p2p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pds2_p2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
