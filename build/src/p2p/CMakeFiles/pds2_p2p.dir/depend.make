# Empty dependencies file for pds2_p2p.
# This may be replaced when dependencies are built.
