file(REMOVE_RECURSE
  "CMakeFiles/pds2_market.dir/actors.cc.o"
  "CMakeFiles/pds2_market.dir/actors.cc.o.d"
  "CMakeFiles/pds2_market.dir/marketplace.cc.o"
  "CMakeFiles/pds2_market.dir/marketplace.cc.o.d"
  "CMakeFiles/pds2_market.dir/spec.cc.o"
  "CMakeFiles/pds2_market.dir/spec.cc.o.d"
  "CMakeFiles/pds2_market.dir/valuation.cc.o"
  "CMakeFiles/pds2_market.dir/valuation.cc.o.d"
  "libpds2_market.a"
  "libpds2_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pds2_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
