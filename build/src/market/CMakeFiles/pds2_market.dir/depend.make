# Empty dependencies file for pds2_market.
# This may be replaced when dependencies are built.
