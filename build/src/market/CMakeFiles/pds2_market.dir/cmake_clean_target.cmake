file(REMOVE_RECURSE
  "libpds2_market.a"
)
