# Empty dependencies file for iot_fleet.
# This may be replaced when dependencies are built.
