file(REMOVE_RECURSE
  "CMakeFiles/medical_study.dir/medical_study.cpp.o"
  "CMakeFiles/medical_study.dir/medical_study.cpp.o.d"
  "medical_study"
  "medical_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medical_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
