# Empty compiler generated dependencies file for marketplace_economics.
# This may be replaced when dependencies are built.
