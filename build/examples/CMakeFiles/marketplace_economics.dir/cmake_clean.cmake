file(REMOVE_RECURSE
  "CMakeFiles/marketplace_economics.dir/marketplace_economics.cpp.o"
  "CMakeFiles/marketplace_economics.dir/marketplace_economics.cpp.o.d"
  "marketplace_economics"
  "marketplace_economics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marketplace_economics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
