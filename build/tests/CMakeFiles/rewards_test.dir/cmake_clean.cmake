file(REMOVE_RECURSE
  "CMakeFiles/rewards_test.dir/rewards/rewards_test.cc.o"
  "CMakeFiles/rewards_test.dir/rewards/rewards_test.cc.o.d"
  "rewards_test"
  "rewards_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rewards_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
