# Empty dependencies file for rewards_test.
# This may be replaced when dependencies are built.
