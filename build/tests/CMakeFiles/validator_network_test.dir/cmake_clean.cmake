file(REMOVE_RECURSE
  "CMakeFiles/validator_network_test.dir/p2p/validator_network_test.cc.o"
  "CMakeFiles/validator_network_test.dir/p2p/validator_network_test.cc.o.d"
  "validator_network_test"
  "validator_network_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validator_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
