
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/chain/invariants_test.cc" "tests/CMakeFiles/invariants_test.dir/chain/invariants_test.cc.o" "gcc" "tests/CMakeFiles/invariants_test.dir/chain/invariants_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/market/CMakeFiles/pds2_market.dir/DependInfo.cmake"
  "/root/repo/build/src/auth/CMakeFiles/pds2_auth.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/pds2_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/dml/CMakeFiles/pds2_dml.dir/DependInfo.cmake"
  "/root/repo/build/src/rewards/CMakeFiles/pds2_rewards.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/pds2_tee.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/pds2_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/pds2_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/pds2_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pds2_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
