# Empty compiler generated dependencies file for workload_contract_test.
# This may be replaced when dependencies are built.
