file(REMOVE_RECURSE
  "CMakeFiles/workload_contract_test.dir/chain/workload_contract_test.cc.o"
  "CMakeFiles/workload_contract_test.dir/chain/workload_contract_test.cc.o.d"
  "workload_contract_test"
  "workload_contract_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_contract_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
