file(REMOVE_RECURSE
  "CMakeFiles/auth_test.dir/auth/auth_test.cc.o"
  "CMakeFiles/auth_test.dir/auth/auth_test.cc.o.d"
  "auth_test"
  "auth_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
