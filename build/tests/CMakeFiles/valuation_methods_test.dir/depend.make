# Empty dependencies file for valuation_methods_test.
# This may be replaced when dependencies are built.
