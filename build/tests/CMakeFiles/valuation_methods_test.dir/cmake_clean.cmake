file(REMOVE_RECURSE
  "CMakeFiles/valuation_methods_test.dir/rewards/valuation_methods_test.cc.o"
  "CMakeFiles/valuation_methods_test.dir/rewards/valuation_methods_test.cc.o.d"
  "valuation_methods_test"
  "valuation_methods_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/valuation_methods_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
