
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dml/learning_test.cc" "tests/CMakeFiles/learning_test.dir/dml/learning_test.cc.o" "gcc" "tests/CMakeFiles/learning_test.dir/dml/learning_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dml/CMakeFiles/pds2_dml.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/pds2_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pds2_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
