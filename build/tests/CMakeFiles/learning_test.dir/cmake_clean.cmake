file(REMOVE_RECURSE
  "CMakeFiles/learning_test.dir/dml/learning_test.cc.o"
  "CMakeFiles/learning_test.dir/dml/learning_test.cc.o.d"
  "learning_test"
  "learning_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
