// E4b — Privacy-preserving (in-enclave) data valuation.
//
// Extension of E4 closing the paper's §IV-A loop inside the platform:
// coalition utilities are evaluated by the `coalition_eval` ecall of a
// dedicated valuation enclave, so the consumer obtains Shapley weights
// without ever seeing records. Reports cost (ecalls, wall time) versus
// provider count and confirms the noisy provider is priced down.

#include <cstdio>

#include "bench_util.h"
#include "market/marketplace.h"
#include "market/valuation.h"

namespace {

using namespace pds2;

storage::SemanticMetadata Meta() {
  storage::SemanticMetadata meta;
  meta.types = {"iot/sensor"};
  return meta;
}

}  // namespace

int main() {
  bench::Banner("E4b: in-enclave Shapley valuation",
                "data value computed inside the TEE (IV-A x III-B)");

  std::printf("%6s | %12s %12s %10s | %16s %16s\n", "n", "ecalls",
              "wall ms", "perms", "clean avg wt", "noisy wt");

  for (size_t n : {4u, 6u, 8u, 10u}) {
    market::MarketConfig config;
    config.seed = 100 + n;
    market::Marketplace m(config);
    common::Rng rng(n);

    ml::Dataset all = ml::MakeTwoGaussians(250 * n + 600, 6, 2.5, rng);
    auto [train, validation] =
        ml::TrainTestSplit(all, 600.0 / static_cast<double>(all.Size()), rng);
    auto parts = ml::PartitionIid(train, n, rng);
    ml::CorruptLabels(parts[n - 1], 0.45, rng);  // last provider is noisy

    market::WorkloadSpec spec;
    spec.name = "valuation-bench";
    spec.requirement.required_types = {"iot/sensor"};
    spec.model_kind = "logistic";
    spec.features = 6;
    spec.epochs = 6;
    spec.reward_pool = 1;
    spec.min_providers = 1;

    market::ValuationService valuation(m.attestation(), 500 + n);
    if (!valuation.Setup(spec).ok()) return 1;

    for (size_t i = 0; i < n; ++i) {
      auto& p = m.AddProvider("p" + std::to_string(i));
      (void)p.store().AddDataset("d", parts[i], Meta());
      auto offer = p.EvaluateWorkload(m.ontology(), spec);
      auto added = valuation.AddContribution(p, *offer, spec,
                                             m.attestation().RootPublicKey());
      if (!added.ok()) {
        std::printf("contribution failed: %s\n",
                    added.status().ToString().c_str());
        return 1;
      }
    }

    const size_t perms = 20;
    common::Rng mc_rng(77);
    bench::Timer timer;
    auto weights = valuation.ComputeWeights(validation, perms, 0.01, mc_rng);
    const double wall_ms = timer.ElapsedMs();
    if (!weights.ok()) {
      std::printf("valuation failed: %s\n",
                  weights.status().ToString().c_str());
      return 1;
    }

    uint64_t clean_total = 0;
    for (size_t i = 0; i + 1 < n; ++i) {
      clean_total += weights->at("p" + std::to_string(i));
    }
    const uint64_t noisy = weights->at("p" + std::to_string(n - 1));
    std::printf("%6zu | %12zu %12.1f %10zu | %16llu %16llu\n", n,
                valuation.last_utility_calls(), wall_ms, perms,
                static_cast<unsigned long long>(clean_total / (n - 1)),
                static_cast<unsigned long long>(noisy));
  }
  std::printf("\n(noisy provider consistently valued far below clean "
              "providers; ecalls stay well under 2^n thanks to truncated "
              "Monte-Carlo + memoization)\n");
  return 0;
}
