// E6b — Replicated governance under realistic networking (paper §III-A).
//
// The governance layer must stay consistent when validators communicate
// over a lossy wide-area network. This harness runs the full-mesh PoA
// validator network over the DES and reports chain progress, replica
// divergence and sync-protocol activity across packet-loss rates, plus
// block propagation under growing validator sets.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "p2p/validator_network.h"

namespace {

using namespace pds2;

struct RunOutcome {
  uint64_t min_height = 0;
  uint64_t max_height = 0;
  uint64_t syncs = 0;
  uint64_t messages = 0;
  bool balances_agree = true;
};

RunOutcome Run(size_t validators, double drop_rate, uint64_t seed) {
  crypto::SigningKey alice = crypto::SigningKey::FromSeed(common::ToBytes("a"));
  const chain::Address bob = chain::AddressFromPublicKey(
      crypto::SigningKey::FromSeed(common::ToBytes("b")).PublicKey());
  std::vector<p2p::GenesisAlloc> genesis = {
      {chain::AddressFromPublicKey(alice.PublicKey()), 1'000'000'000}};

  dml::NetConfig net;
  net.base_latency = 30 * common::kMicrosPerMilli;
  net.latency_jitter = 20 * common::kMicrosPerMilli;
  net.drop_rate = drop_rate;

  std::vector<p2p::ValidatorNode*> nodes;
  auto sim = p2p::MakeValidatorNetwork(validators, genesis,
                                       common::kMicrosPerSecond, net, seed,
                                       &nodes);
  sim->Start();

  // A trickle of transfers submitted at rotating validators.
  for (uint64_t i = 0; i < 10; ++i) {
    chain::Transaction tx = chain::Transaction::Make(
        alice, i, bob, 10, 100000, chain::CallPayload{});
    dml::NodeContext ctx(*sim, i % validators);
    (void)nodes[i % validators]->SubmitTransaction(tx, ctx);
    sim->RunUntil((i + 1) * 2 * common::kMicrosPerSecond);
  }
  sim->RunUntil(40 * common::kMicrosPerSecond);

  RunOutcome outcome;
  outcome.min_height = UINT64_MAX;
  uint64_t reference_balance = nodes[0]->chain().GetBalance(bob);
  for (p2p::ValidatorNode* node : nodes) {
    outcome.min_height = std::min(outcome.min_height, node->chain().Height());
    outcome.max_height = std::max(outcome.max_height, node->chain().Height());
    outcome.syncs += node->sync_requests_sent();
    if (node->chain().GetBalance(bob) != reference_balance) {
      outcome.balances_agree = false;
    }
  }
  outcome.messages = sim->stats().messages_sent;
  return outcome;
}

}  // namespace

int main() {
  bench::Banner("E6b: replicated governance over a lossy network",
                "replicas converge; the sync protocol absorbs packet loss");

  std::printf("-- (a) packet-loss sweep (4 validators, 40 s) --\n");
  std::printf("%10s %12s %12s %10s %12s %14s\n", "loss", "min height",
              "max height", "syncs", "messages", "state agree");
  for (double loss : {0.0, 0.05, 0.1, 0.2, 0.3}) {
    RunOutcome o = Run(4, loss, 11);
    std::printf("%10.2f %12llu %12llu %10llu %12llu %14s\n", loss,
                static_cast<unsigned long long>(o.min_height),
                static_cast<unsigned long long>(o.max_height),
                static_cast<unsigned long long>(o.syncs),
                static_cast<unsigned long long>(o.messages),
                o.balances_agree ? "yes" : "NO");
  }

  std::printf("\n-- (b) validator-set sweep (5%% loss) --\n");
  std::printf("%12s %12s %12s %14s\n", "validators", "min height",
              "messages", "msgs/block");
  for (size_t n : {3u, 5u, 9u, 13u}) {
    RunOutcome o = Run(n, 0.05, 13);
    std::printf("%12zu %12llu %12llu %14.0f\n", n,
                static_cast<unsigned long long>(o.min_height),
                static_cast<unsigned long long>(o.messages),
                o.min_height > 0
                    ? static_cast<double>(o.messages) /
                          static_cast<double>(o.min_height)
                    : 0.0);
  }
  std::printf("\n(full-mesh broadcast: traffic grows quadratically in the "
              "validator count — PoA committees stay small)\n");
  return 0;
}
